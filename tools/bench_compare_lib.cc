#include "bench_compare_lib.h"

#include <algorithm>
#include <fstream>
#include <map>
#include <sstream>

#include "obs/exporter.h"

namespace dcs {
namespace bench_compare {
namespace {

bool EndsWith(const std::string& name, const char* suffix) {
  const std::size_t n = std::string::traits_type::length(suffix);
  return name.size() >= n &&
         name.compare(name.size() - n, n, suffix) == 0;
}

// The thresholds are one-sided: only the "worse" direction gates. Faster,
// smaller, or more accurate than the baseline is never a regression.
bool IsRegression(MetricClass cls, double baseline, double current,
                  const BenchCompareOptions& options) {
  switch (cls) {
    case MetricClass::kTiming:
      return current > baseline * options.timing_factor;
    case MetricClass::kMemory:
      return current >
             baseline * (1.0 + options.memory_tolerance) +
                 options.memory_floor_mb;
    case MetricClass::kQuality:
      return current < baseline * (1.0 - options.quality_tolerance);
    case MetricClass::kInfo:
      return false;
  }
  return false;
}

}  // namespace

const char* MetricClassName(MetricClass cls) {
  switch (cls) {
    case MetricClass::kTiming:
      return "timing";
    case MetricClass::kMemory:
      return "memory";
    case MetricClass::kQuality:
      return "quality";
    case MetricClass::kInfo:
      return "info";
  }
  return "info";
}

MetricClass ClassifyMetric(const std::string& name) {
  // epochs_per_sec is throughput: timing-class, but higher is better, so
  // it is judged on its reciprocal (see CompareSnapshots).
  if (EndsWith(name, "_s") || EndsWith(name, "_ms") ||
      EndsWith(name, "_ns") || EndsWith(name, "_per_sec")) {
    return MetricClass::kTiming;
  }
  if (EndsWith(name, "_mb")) return MetricClass::kMemory;
  if (EndsWith(name, "_ratio")) return MetricClass::kQuality;
  return MetricClass::kInfo;
}

BenchCompareResult CompareSnapshots(const MetricsSnapshot& baseline,
                                    const MetricsSnapshot& current,
                                    const BenchCompareOptions& options) {
  const auto bench_gauges = [](const MetricsSnapshot& snapshot) {
    std::map<std::string, double> gauges;
    for (const MetricsSnapshot::Entry& entry : snapshot.entries) {
      if (entry.type != MetricType::kGauge) continue;
      if (entry.name.rfind("bench.", 0) != 0) continue;
      gauges[entry.name] = entry.gauge_value;
    }
    return gauges;
  };
  const std::map<std::string, double> base = bench_gauges(baseline);
  const std::map<std::string, double> cur = bench_gauges(current);

  BenchCompareResult result;
  for (const auto& [name, value] : base) {
    if (!cur.contains(name)) result.baseline_only.push_back(name);
  }
  for (const auto& [name, value] : cur) {
    const auto it = base.find(name);
    if (it == base.end()) {
      result.current_only.push_back(name);
      continue;
    }
    MetricDelta delta;
    delta.name = name;
    delta.cls = ClassifyMetric(name);
    delta.baseline = it->second;
    delta.current = value;
    delta.ratio = it->second != 0.0 ? value / it->second : 1.0;
    // Throughput reads "higher is better"; judge the implied per-item time
    // instead so the timing factor applies in one direction everywhere.
    double judged_base = it->second;
    double judged_cur = value;
    if (EndsWith(name, "_per_sec") && judged_base > 0.0 &&
        judged_cur > 0.0) {
      judged_base = 1.0 / judged_base;
      judged_cur = 1.0 / judged_cur;
    }
    delta.regression =
        IsRegression(delta.cls, judged_base, judged_cur, options);
    if (delta.regression) ++result.num_regressions;
    result.deltas.push_back(std::move(delta));
  }
  return result;
}

std::string FormatResult(const BenchCompareResult& result) {
  std::ostringstream os;
  std::size_t width = 4;
  for (const MetricDelta& delta : result.deltas) {
    width = std::max(width, delta.name.size());
  }
  os << "  " << std::string(width - 4, ' ')
     << "name   class     baseline     current   ratio\n";
  char buf[128];
  for (const MetricDelta& delta : result.deltas) {
    std::snprintf(buf, sizeof(buf), "  %*s %7s %11.4g %11.4g %7.3f%s\n",
                  static_cast<int>(width), delta.name.c_str(),
                  MetricClassName(delta.cls), delta.baseline, delta.current,
                  delta.ratio, delta.regression ? "  REGRESSION" : "");
    os << buf;
  }
  if (!result.baseline_only.empty() || !result.current_only.empty()) {
    os << "  (" << result.baseline_only.size() << " baseline-only, "
       << result.current_only.size()
       << " current-only metrics not compared)\n";
  }
  if (result.deltas.empty()) {
    os << "no overlapping bench.* gauges — nothing compared\n";
  } else if (result.num_regressions == 0) {
    os << "OK: " << result.deltas.size()
       << " metrics within thresholds\n";
  } else {
    os << "FAIL: " << result.num_regressions << " of "
       << result.deltas.size() << " metrics regressed\n";
  }
  return os.str();
}

bool LoadSnapshotFile(const std::string& path, MetricsSnapshot* out,
                      std::string* error) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    *error = "cannot open " + path;
    return false;
  }
  std::ostringstream text;
  text << in.rdbuf();
  const Status status = ParseJsonLines(text.str(), out);
  if (!status.ok()) {
    *error = path + ": " + status.ToString();
    return false;
  }
  return true;
}

}  // namespace bench_compare
}  // namespace dcs
