// dcs_lint — project-specific determinism and hygiene linter.
//
// Enforces the DCS invariants no generic static analyzer knows about:
// reproducible randomness, hash-order-free analysis output, timing-free
// pipelines, the observability metric-name grammar, and tolerance-based
// threshold comparisons. See docs/STATIC_ANALYSIS.md for the rule catalog
// and the `// dcs-lint: allow(<rule>)` suppression syntax.
//
// Usage:
//   dcs_lint [--root <dir>] [--fail-on-findings] [--format=text|github]
//            [--list-rules] [files...]
//
// With no file arguments, walks src/, tools/, tests/, bench/, and examples/
// under the root (default: the current directory). --format=github emits
// GitHub Actions workflow commands (::error file=...,line=...::) so findings
// surface as inline annotations on the PR diff. Exit status is 0 when
// clean, 1 when findings exist and --fail-on-findings was given, 2 on usage
// errors.

#include <cstdio>
#include <string>
#include <vector>

#include "dcs_lint_lib.h"

namespace {

void PrintUsage() {
  std::printf(
      "usage: dcs_lint [--root <dir>] [--fail-on-findings] "
      "[--format=text|github] [--list-rules] [files...]\n"
      "Project determinism linter; see docs/STATIC_ANALYSIS.md.\n");
}

/// Escapes a message for a GitHub Actions workflow-command data section:
/// %, \r, and \n would otherwise terminate or corrupt the command.
std::string GithubEscape(const std::string& text) {
  std::string out;
  out.reserve(text.size());
  for (const char c : text) {
    switch (c) {
      case '%':
        out += "%25";
        break;
      case '\r':
        out += "%0D";
        break;
      case '\n':
        out += "%0A";
        break;
      default:
        out += c;
    }
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  dcs::lint::LintOptions options;
  options.root = ".";
  bool fail_on_findings = false;
  bool github_format = false;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      PrintUsage();
      return 0;
    } else if (arg == "--list-rules") {
      for (const auto& [rule, description] : dcs::lint::RuleCatalog()) {
        std::printf("%-22s %s\n", rule.c_str(), description.c_str());
      }
      return 0;
    } else if (arg == "--fail-on-findings") {
      fail_on_findings = true;
    } else if (arg == "--format=text") {
      github_format = false;
    } else if (arg == "--format=github") {
      github_format = true;
    } else if (arg == "--root") {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "--root requires a directory argument\n");
        return 2;
      }
      options.root = argv[++i];
    } else if (!arg.empty() && arg[0] == '-') {
      std::fprintf(stderr, "unknown flag: %s\n", arg.c_str());
      PrintUsage();
      return 2;
    } else {
      options.files.emplace_back(arg);
    }
  }

  const std::vector<dcs::lint::Finding> findings =
      dcs::lint::LintTree(options);
  for (const dcs::lint::Finding& finding : findings) {
    if (github_format) {
      // One annotation per finding, pinned to the offending line; the rule
      // slug rides in the title so the annotation names its own suppression.
      std::printf("::error file=%s,line=%zu,title=dcs-lint %s::%s\n",
                  finding.file.c_str(), finding.line, finding.rule.c_str(),
                  GithubEscape(finding.message).c_str());
    } else {
      std::printf("%s\n", finding.ToString().c_str());
    }
  }
  std::printf("dcs_lint: %zu finding(s)\n", findings.size());
  return (fail_on_findings && !findings.empty()) ? 1 : 0;
}
