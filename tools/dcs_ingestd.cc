// dcs_ingestd — the analysis center's framed digest ingestion daemon
// (docs/DISTRIBUTED.md).
//
// Listens on TCP (loopback) and/or a Unix-domain socket for digest frames
// (src/netio/frame.h), feeds them through the accept → parse → validate →
// dispatch pipeline into a continuous-operation EpochRing, and prints one
// line per closed epoch as reports stream out.
//
//   dcs_ingestd (--uds /tmp/dcs.sock | --tcp-port N [N=0: ephemeral, port
//       printed on stdout]) [--threads 1] [--server-threads <threads>]
//       [--ring-capacity 8]
//       [--shed-policy block|drop-oldest|degrade] [--analysis-budget 1]
//       [--expected-routers 0] [--bitmap-bits 8192] [--n-prime 128]
//       [--beta 12] [--er-threshold 0] [--max-epochs 0] [--exit-on-idle]
//       [--max-rejects 64] [--metrics-out <path>]
//
// --max-epochs N exits after N epoch reports have streamed out;
// --exit-on-idle exits once every accepted connection has hung up (the
// scripted-run mode: senders connect, ship, disconnect, and the daemon
// closes the remaining epochs at full fidelity on the way out). With
// neither, runs until SIGINT/SIGTERM. The feeding side is
// `dcs_workbench send` or any DigestSender client.
//
//   dcs_ingestd --self-test
// Spins the full loopback pipeline in-process (server on an ephemeral UDS,
// a sender shipping synthesized digests, reports drained) and exits 0 on
// success — the ctest smoke that the daemon wiring works end to end.

#include <unistd.h>

#include <csignal>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "analysis/analysis_context.h"
#include "common/thread_pool.h"
#include "dcs/epoch_ring.h"
#include "netio/digest_sender.h"
#include "netio/dispatch.h"
#include "netio/ingest_server.h"
#include "obs/exporter.h"
#include "obs/metrics.h"
#include "sketch/collector.h"
#include "traffic/content_catalog.h"
#include "traffic/trace_synthesizer.h"

namespace dcs {
namespace {

// Same minimal --name value / --switch parser as dcs_workbench.
class Flags {
 public:
  Status Parse(int argc, char** argv, int first) {
    for (int i = first; i < argc; ++i) {
      std::string arg = argv[i];
      if (arg.rfind("--", 0) != 0) {
        return Status::InvalidArgument("unexpected argument: " + arg);
      }
      arg = arg.substr(2);
      if (i + 1 < argc && std::strncmp(argv[i + 1], "--", 2) != 0) {
        values_[arg] = argv[++i];
      } else {
        values_[arg] = "";  // Boolean switch.
      }
    }
    return Status::Ok();
  }

  bool Has(const std::string& name) const { return values_.contains(name); }

  std::string Get(const std::string& name, const std::string& fallback) const {
    const auto it = values_.find(name);
    return it == values_.end() ? fallback : it->second;
  }

  std::int64_t GetInt(const std::string& name, std::int64_t fallback) const {
    const auto it = values_.find(name);
    if (it == values_.end() || it->second.empty()) return fallback;
    return std::strtoll(it->second.c_str(), nullptr, 10);
  }

 private:
  std::map<std::string, std::string> values_;
};

std::sig_atomic_t volatile g_signalled = 0;

void OnSignal(int) { g_signalled = 1; }

void PrintReport(const DcsReport& report) {
  const char* disposition = report.shed                ? "shed"
                            : report.degraded_analysis ? "degraded"
                                                       : "analyzed";
  std::printf("epoch %llu: %s, %llu digests (%llu rejected), %u routers, "
              "aligned %s, unaligned %s\n",
              static_cast<unsigned long long>(report.epoch_id), disposition,
              static_cast<unsigned long long>(report.digests_accepted),
              static_cast<unsigned long long>(report.digests_rejected),
              report.observed_routers,
              report.aligned.common_content_detected ? "DETECTED" : "clean",
              report.unaligned.common_content_detected ? "DETECTED" : "clean");
  std::fflush(stdout);
}

Status DumpMetrics(const std::string& path) {
  const std::string text =
      SnapshotToJsonLines(MetricsRegistry::Global().Snapshot());
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return Status::IoError("cannot write " + path);
  const std::size_t written = std::fwrite(text.data(), 1, text.size(), f);
  std::fclose(f);
  if (written != text.size()) return Status::IoError("short write " + path);
  return Status::Ok();
}

Status BuildRingOptions(const Flags& flags, EpochRingOptions* out) {
  EpochRingOptions options;
  options.capacity =
      static_cast<std::size_t>(flags.GetInt("ring-capacity", 8));
  const std::string policy = flags.Get("shed-policy", "block");
  if (policy == "block") {
    options.policy = ShedPolicy::kBlock;
  } else if (policy == "drop-oldest") {
    options.policy = ShedPolicy::kDropOldest;
  } else if (policy == "degrade") {
    options.policy = ShedPolicy::kDegrade;
  } else {
    return Status::InvalidArgument(
        "--shed-policy must be block|drop-oldest|degrade");
  }
  options.analysis_budget_per_offer =
      static_cast<std::size_t>(flags.GetInt("analysis-budget", 1));
  options.aligned.sketch.num_bits =
      static_cast<std::size_t>(flags.GetInt("bitmap-bits", 8192));
  options.aligned.n_prime =
      static_cast<std::size_t>(flags.GetInt("n-prime", 128));
  options.aligned.detector.first_iteration_hopefuls = options.aligned.n_prime;
  options.aligned.detector.hopefuls = options.aligned.n_prime / 2;
  options.aligned.incremental_weights = true;
  options.unaligned.er_threshold =
      static_cast<std::size_t>(flags.GetInt("er-threshold", 0));
  options.unaligned.detector.beta =
      static_cast<std::size_t>(flags.GetInt("beta", 12));
  options.ingest.expected_routers =
      static_cast<std::uint32_t>(flags.GetInt("expected-routers", 0));
  *out = options;
  return Status::Ok();
}

Status CmdServe(const Flags& flags) {
  const std::int64_t threads = flags.GetInt("threads", 1);
  if (threads < 1) return Status::InvalidArgument("--threads must be >= 1");
  std::unique_ptr<ThreadPool> pool;
  AnalysisContext context;
  if (threads > 1) {
    pool = std::make_unique<ThreadPool>(static_cast<std::size_t>(threads));
    context.pool = pool.get();
  }
  // --server-threads N > 1 fans connection reads + frame parsing out on a
  // worker pool per poll round; decoded digests still funnel through the
  // single ordered offer stage, so the report stream is unchanged (the
  // loopback differential suite is the proof). Defaults to --threads, so
  // one flag scales the whole daemon; the analysis pool doubles as the
  // read pool (the stages never overlap — both run inside the poll round).
  const std::int64_t server_threads =
      flags.GetInt("server-threads", threads);
  if (server_threads < 1) {
    return Status::InvalidArgument("--server-threads must be >= 1");
  }
  std::unique_ptr<ThreadPool> server_pool;
  ThreadPool* read_pool = nullptr;
  if (server_threads > 1) {
    if (server_threads == threads) {
      read_pool = pool.get();
    } else {
      server_pool =
          std::make_unique<ThreadPool>(static_cast<std::size_t>(server_threads));
      read_pool = server_pool.get();
    }
  }
  EpochRingOptions ring_options;
  DCS_RETURN_IF_ERROR(BuildRingOptions(flags, &ring_options));
  EpochRing ring(ring_options, context);
  FrameDispatcher dispatcher(&ring, pool.get());

  const std::int64_t max_epochs = flags.GetInt("max-epochs", 0);
  const bool exit_on_idle = flags.Has("exit-on-idle");
  std::uint64_t emitted = 0;
  const IngestServer* server_ptr = nullptr;
  IngestServerOptions server_options;
  server_options.pool = read_pool;
  server_options.max_rejects_per_connection =
      static_cast<std::uint64_t>(flags.GetInt("max-rejects", 64));
  // Streams reports as their epochs close; stops on signal, --max-epochs,
  // or (with --exit-on-idle) once every accepted connection has hung up —
  // undrained epochs are then closed at full fidelity below. Runs on the
  // serve thread, the only thread that touches the ring.
  server_options.after_round = [&ring, &emitted, &server_ptr, max_epochs,
                                exit_on_idle]() {
    for (const DcsReport& report : ring.TakeReports()) {
      PrintReport(report);
      ++emitted;
    }
    if (g_signalled != 0) return false;
    if (max_epochs > 0 && emitted >= static_cast<std::uint64_t>(max_epochs)) {
      return false;
    }
    if (exit_on_idle && server_ptr != nullptr) {
      const IngestServerStats& stats = server_ptr->stats();
      if (stats.connections_accepted > 0 &&
          stats.connections_accepted == stats.connections_closed) {
        return false;
      }
    }
    return true;
  };
  IngestServer server(server_options, &dispatcher);
  server_ptr = &server;

  const std::string uds = flags.Get("uds", "");
  if (!uds.empty()) {
    DCS_RETURN_IF_ERROR(server.ListenUds(uds));
    std::printf("listening on uds %s\n", uds.c_str());
  }
  if (flags.Has("tcp-port")) {
    DCS_RETURN_IF_ERROR(server.ListenTcp(
        static_cast<std::uint16_t>(flags.GetInt("tcp-port", 0))));
    std::printf("listening on tcp 127.0.0.1:%u\n", server.bound_tcp_port());
  }
  if (uds.empty() && !flags.Has("tcp-port")) {
    return Status::InvalidArgument("--uds or --tcp-port required");
  }
  std::fflush(stdout);

  std::signal(SIGINT, OnSignal);
  std::signal(SIGTERM, OnSignal);

  DCS_RETURN_IF_ERROR(server.Serve());

  // End of service: close out the still-open epochs at full fidelity.
  ring.Drain();
  for (const DcsReport& report : ring.TakeReports()) {
    PrintReport(report);
    ++emitted;
  }
  const DispatchStats& stats = dispatcher.stats();
  std::printf("ingestd: %llu frames (%llu rejects), %llu digests offered, "
              "%llu accepted, %llu rejected, %llu epochs reported\n",
              static_cast<unsigned long long>(stats.frames),
              static_cast<unsigned long long>(stats.frame_rejects),
              static_cast<unsigned long long>(stats.digests_offered),
              static_cast<unsigned long long>(stats.digests_accepted),
              static_cast<unsigned long long>(stats.digests_rejected),
              static_cast<unsigned long long>(emitted));
  const std::string metrics_out = flags.Get("metrics-out", "");
  if (!metrics_out.empty()) DCS_RETURN_IF_ERROR(DumpMetrics(metrics_out));
  return Status::Ok();
}

// In-process loopback smoke: synthesize traffic, collect digests, serve on
// an ephemeral UDS, ship every digest through a real socket, and check the
// report stream arrived intact.
Status CmdSelfTest() {
  // The scenario mirrors tests/test_integration.cc's known-detectable
  // configuration: 25 of 30 routers carry a 20-packet aligned object.
  constexpr std::uint32_t kRouters = 30;
  constexpr std::uint64_t kEpochs = 3;

  ScenarioOptions scenario;
  scenario.num_routers = kRouters;
  scenario.background_packets_per_router = 8000;
  scenario.seed = 11;
  PlantedContent plant;
  plant.content_id = 77;
  plant.content_bytes = 536 * 20;
  for (std::uint32_t r = 0; r < 25; ++r) plant.router_ids.push_back(r);
  plant.aligned = true;
  scenario.planted = {plant};
  ContentCatalog catalog(1234);
  const std::vector<PacketTrace> traces = SynthesizeScenario(scenario, catalog);

  BitmapSketchOptions sketch;
  sketch.num_bits = 1 << 13;
  std::vector<Digest> digests;
  for (std::uint32_t r = 0; r < kRouters; ++r) {
    AlignedCollector collector(r, sketch);
    digests.push_back(
        collector.ProcessEpoch(traces[r].SplitIntoEpochs(traces[r].size())[0]));
  }

  EpochRingOptions ring_options;
  ring_options.capacity = 4;
  ring_options.aligned.sketch = sketch;
  ring_options.aligned.n_prime = 128;
  ring_options.aligned.detector.first_iteration_hopefuls = 128;
  ring_options.aligned.detector.hopefuls = 64;
  ring_options.aligned.incremental_weights = true;
  EpochRing ring(ring_options, AnalysisContext{});
  FrameDispatcher dispatcher(&ring, nullptr);
  IngestServerOptions server_options;
  IngestServer server(server_options, &dispatcher);

  const std::string uds_path =
      (std::filesystem::temp_directory_path() /
       ("dcs_ingestd_selftest_" + std::to_string(::getpid()) + ".sock"))
          .string();
  DCS_RETURN_IF_ERROR(server.ListenUds(uds_path));

  Status serve_status;
  std::thread serve_thread(
      [&server, &serve_status] { serve_status = server.Serve(); });

  Status send_status;
  {
    DigestSender sender;
    send_status = DigestSender::ConnectUds(uds_path, &sender);
    if (send_status.ok()) {
      for (std::uint64_t epoch = 0; epoch < kEpochs && send_status.ok();
           ++epoch) {
        for (Digest& digest : digests) {
          digest.epoch_id = epoch;
          const CodecMode mode =
              epoch % 2 == 0 ? CodecMode::kSparse : CodecMode::kRaw;
          send_status = sender.Send(digest, mode);
          if (!send_status.ok()) break;
        }
      }
    }
    // Sender closes here: the server sees EOF and flushes the connection.
  }
  // Wait for every digest to land, then stop the server. Repeated zero-delay
  // sleeps keep this a scheduling yield, not a timing assumption.
  const std::uint64_t expected = kRouters * kEpochs;
  while (send_status.ok() &&
         dispatcher.stats().digests_offered < expected &&
         serve_thread.joinable()) {
    std::this_thread::yield();
  }
  server.RequestStop();
  serve_thread.join();
  DCS_RETURN_IF_ERROR(serve_status);
  DCS_RETURN_IF_ERROR(send_status);

  ring.Drain();
  const std::vector<DcsReport> reports = ring.TakeReports();
  if (dispatcher.stats().digests_accepted != expected) {
    return Status::Internal("self-test: expected " + std::to_string(expected) +
                            " accepted digests, got " +
                            std::to_string(dispatcher.stats().digests_accepted));
  }
  if (reports.size() != kEpochs) {
    return Status::Internal("self-test: expected " + std::to_string(kEpochs) +
                            " reports, got " + std::to_string(reports.size()));
  }
  for (const DcsReport& report : reports) {
    if (report.digests_accepted != kRouters) {
      return Status::Internal("self-test: epoch report missing digests");
    }
    if (!report.aligned.common_content_detected) {
      return Status::Internal("self-test: planted content not detected");
    }
  }
  std::printf("self-test: %llu digests over loopback uds, %zu epoch reports, "
              "planted content detected in all\n",
              static_cast<unsigned long long>(expected), reports.size());
  return Status::Ok();
}

void PrintUsage() {
  std::printf(
      "usage: dcs_ingestd (--uds <path> | --tcp-port <port>) [--flags]\n"
      "       dcs_ingestd --self-test\n"
      "see the comment block at the top of tools/dcs_ingestd.cc\n");
}

int Main(int argc, char** argv) {
  Flags flags;
  const Status parse_status = flags.Parse(argc, argv, 1);
  if (!parse_status.ok()) {
    std::fprintf(stderr, "%s\n", parse_status.ToString().c_str());
    return 1;
  }
  if (flags.Has("help")) {
    PrintUsage();
    return 0;
  }
  if (flags.Has("metrics-out")) MetricsRegistry::Global().set_enabled(true);
  const Status status = flags.Has("self-test") ? CmdSelfTest() : CmdServe(flags);
  if (!status.ok()) {
    std::fprintf(stderr, "%s\n", status.ToString().c_str());
    if (status.code() == Status::Code::kInvalidArgument) PrintUsage();
    return 1;
  }
  return 0;
}

}  // namespace
}  // namespace dcs

int main(int argc, char** argv) { return dcs::Main(argc, argv); }
