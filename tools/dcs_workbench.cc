// dcs_workbench — operational CLI for the DCS pipeline.
//
// Drives the three deployment stages through their on-disk formats:
//
//   dcs_workbench synthesize --out-dir /tmp/dcs [--routers 24] [--packets 5000]
//       [--content-packets 15] [--content-routers 18] [--unaligned]
//       [--instances 3] [--seed 42] [--no-content]
//     Writes router_<i>.trace files with synthetic traffic and (optionally)
//     a planted common content.
//
//   dcs_workbench collect --in-dir /tmp/dcs --out-dir /tmp/dcs
//       [--mode aligned|unaligned] [--bitmap-bits 8192] [--groups 16]
//     Runs the per-router streaming sketches over each trace and writes
//     router_<i>.digest (the encoded wire format).
//
//   dcs_workbench analyze --in-dir /tmp/dcs [--mode aligned|unaligned]
//       [--n-prime 128] [--er-threshold 0] [--beta 12] [--threads 1]
//       [--expected-routers 0] [--fault-plan "seed=7,drop=0.1,flip=0.1"]
//       [--ring-epochs 0] [--ring-capacity 4] [--shed-policy block]
//       [--epoch-stride 1]
//     Stacks the digests at the analysis center and prints the report.
//     --threads N > 1 runs the analysis on an N-worker pool — the aligned
//     pipeline (weight screen, ASID search, core scan) and the whole
//     unaligned pipeline (row weights, lambda calibration, pair scan,
//     min-degree peeling, survivor expansion); the report is bit-identical
//     at any thread count (docs/PARALLELISM.md).
//     --expected-routers N turns on hardened ingestion (docs/ROBUSTNESS.md):
//     rejected digests are reported instead of aborting the run, and the
//     report carries thresholds recalibrated for the routers that actually
//     made it. --fault-plan runs every digest through the deterministic
//     fault injector first (src/testing/fault_injector.h) to rehearse a
//     lossy or hostile collection network; see FaultSpec::Parse for the
//     key=value syntax.
//
//     --ring-epochs N replays the on-disk digests as N consecutive epochs
//     through the continuous-operation EpochRing (docs/STREAMING.md)
//     instead of a one-shot analysis: each epoch re-stamps the digests'
//     epoch_id (FaultInjector::RewriteEpoch) so the ring exercises slot
//     recycling and incremental weights exactly as a live deployment
//     would. --ring-capacity (default 4) sizes the window; --shed-policy
//     block|drop-oldest|degrade picks the back-pressure response;
//     --epoch-stride S > 1 offers epochs 0, S, 2S, ... so each arrival
//     forces S-1 head closes against the per-offer analysis budget —
//     the way to watch the shed policies actually fire from the CLI.
//
//   dcs_workbench send --in-dir /tmp/dcs (--uds /tmp/dcs.sock | --tcp-port N)
//       [--host 127.0.0.1] [--codec raw|sparse|auto] [--epochs 1]
//       [--epoch-stride 1] [--coalesce-bytes 0]
//     Ships the on-disk digests to a running dcs_ingestd over the framed
//     digest plane (docs/DISTRIBUTED.md), re-stamped as consecutive epochs
//     exactly like the --ring-epochs replay: epoch-major, router-minor, so
//     the server's report stream matches an in-process ring replay of the
//     same digests. --codec picks the per-frame payload codec (auto = keep
//     sparse only when it saves wire bytes).
//
//   dcs_workbench demo
//     Runs all three stages in a temporary directory.
//
// Any command also accepts:
//   --metrics             Enable the observability registry and print a
//                         metric summary table after the command finishes.
//   --metrics-out <path>  Like --metrics, but dump the snapshot as JSON
//                         lines to <path> instead of a table.

#include <cstdio>
#include <cstring>
#include <filesystem>
#include <iostream>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "dcs/dcs.h"
#include "netio/digest_sender.h"
#include "obs/exporter.h"
#include "obs/metrics.h"
#include "testing/fault_injector.h"
#include "traffic/content_catalog.h"
#include "traffic/trace_synthesizer.h"

namespace dcs {
namespace {

// ----------------------------------------------------------------------
// Minimal flag parsing: --name value pairs plus boolean --name switches.
// ----------------------------------------------------------------------

class Flags {
 public:
  Status Parse(int argc, char** argv, int first) {
    for (int i = first; i < argc; ++i) {
      std::string arg = argv[i];
      if (arg.rfind("--", 0) != 0) {
        return Status::InvalidArgument("unexpected argument: " + arg);
      }
      arg = arg.substr(2);
      if (i + 1 < argc && std::strncmp(argv[i + 1], "--", 2) != 0) {
        values_[arg] = argv[++i];
      } else {
        values_[arg] = "";  // Boolean switch.
      }
    }
    return Status::Ok();
  }

  bool Has(const std::string& name) const { return values_.contains(name); }

  std::string Get(const std::string& name, const std::string& fallback) const {
    const auto it = values_.find(name);
    return it == values_.end() ? fallback : it->second;
  }

  std::int64_t GetInt(const std::string& name, std::int64_t fallback) const {
    const auto it = values_.find(name);
    if (it == values_.end() || it->second.empty()) return fallback;
    return std::strtoll(it->second.c_str(), nullptr, 10);
  }

 private:
  std::map<std::string, std::string> values_;
};

std::string TracePath(const std::string& dir, std::uint32_t router) {
  return dir + "/router_" + std::to_string(router) + ".trace";
}

std::string DigestPath(const std::string& dir, std::uint32_t router) {
  return dir + "/router_" + std::to_string(router) + ".digest";
}

Status WriteBytes(const std::string& path,
                  const std::vector<std::uint8_t>& bytes) {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) return Status::IoError("cannot write " + path);
  const std::size_t written = std::fwrite(bytes.data(), 1, bytes.size(), f);
  std::fclose(f);
  if (written != bytes.size()) return Status::IoError("short write " + path);
  return Status::Ok();
}

Status ReadBytes(const std::string& path, std::vector<std::uint8_t>* out) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return Status::NotFound("cannot read " + path);
  std::fseek(f, 0, SEEK_END);
  const long size = std::ftell(f);
  std::fseek(f, 0, SEEK_SET);
  out->resize(static_cast<std::size_t>(size));
  const std::size_t read = std::fread(out->data(), 1, out->size(), f);
  std::fclose(f);
  if (read != out->size()) return Status::IoError("short read " + path);
  return Status::Ok();
}

// ----------------------------------------------------------------------
// Stage 1: synthesize traces.
// ----------------------------------------------------------------------

Status CmdSynthesize(const Flags& flags) {
  const std::string out_dir = flags.Get("out-dir", "");
  if (out_dir.empty()) return Status::InvalidArgument("--out-dir required");
  std::error_code ec;
  std::filesystem::create_directories(out_dir, ec);

  ScenarioOptions scenario;
  scenario.num_routers =
      static_cast<std::size_t>(flags.GetInt("routers", 24));
  scenario.background_packets_per_router =
      static_cast<std::size_t>(flags.GetInt("packets", 5000));
  scenario.seed = static_cast<std::uint64_t>(flags.GetInt("seed", 42));

  if (!flags.Has("no-content")) {
    PlantedContent plant;
    plant.content_id = static_cast<std::uint64_t>(
        flags.GetInt("content-id", 1));
    plant.content_bytes =
        static_cast<std::size_t>(flags.GetInt("content-packets", 15)) * 536;
    const auto content_routers = static_cast<std::uint32_t>(
        flags.GetInt("content-routers",
                     static_cast<std::int64_t>(scenario.num_routers * 3 / 4)));
    for (std::uint32_t r = 0; r < content_routers; ++r) {
      plant.router_ids.push_back(r);
    }
    plant.aligned = !flags.Has("unaligned");
    plant.instances_per_router =
        static_cast<std::size_t>(flags.GetInt("instances", plant.aligned
                                                               ? 1
                                                               : 3));
    scenario.planted = {plant};
  }

  ContentCatalog catalog(static_cast<std::uint64_t>(
      flags.GetInt("catalog-seed", 7)));
  const std::vector<PacketTrace> traces =
      SynthesizeScenario(scenario, catalog);
  for (std::uint32_t r = 0; r < traces.size(); ++r) {
    DCS_RETURN_IF_ERROR(traces[r].WriteToFile(TracePath(out_dir, r)));
  }
  std::printf("synthesize: wrote %zu traces (~%zu packets each) to %s\n",
              traces.size(), traces[0].size(), out_dir.c_str());
  return Status::Ok();
}

// ----------------------------------------------------------------------
// Stage 2: per-router collection.
// ----------------------------------------------------------------------

Status CmdCollect(const Flags& flags) {
  const std::string in_dir = flags.Get("in-dir", "");
  const std::string out_dir = flags.Get("out-dir", in_dir);
  if (in_dir.empty()) return Status::InvalidArgument("--in-dir required");
  const bool unaligned = flags.Get("mode", "aligned") == "unaligned";

  Rng offsets_rng(static_cast<std::uint64_t>(flags.GetInt("seed", 2026)));
  std::uint32_t routers = 0;
  std::uint64_t digest_bytes = 0;
  std::uint64_t raw_bytes = 0;
  for (std::uint32_t r = 0;; ++r) {
    PacketTrace trace;
    const Status status =
        PacketTrace::ReadFromFile(TracePath(in_dir, r), &trace);
    if (status.code() == Status::Code::kNotFound) break;
    DCS_RETURN_IF_ERROR(status);
    const auto epochs = trace.SplitIntoEpochs(trace.size());

    Digest digest;
    if (unaligned) {
      FlowSplitOptions opts;
      opts.num_groups =
          static_cast<std::size_t>(flags.GetInt("groups", 16));
      UnalignedCollector collector(r, opts, &offsets_rng);
      digest = collector.ProcessEpoch(epochs[0]);
    } else {
      BitmapSketchOptions opts;
      opts.num_bits =
          static_cast<std::size_t>(flags.GetInt("bitmap-bits", 8192));
      AlignedCollector collector(r, opts);
      digest = collector.ProcessEpoch(epochs[0]);
    }
    const std::vector<std::uint8_t> encoded = digest.Encode();
    DCS_RETURN_IF_ERROR(WriteBytes(DigestPath(out_dir, r), encoded));
    digest_bytes += encoded.size();
    raw_bytes += digest.raw_bytes_covered;
    ++routers;
  }
  if (routers == 0) return Status::NotFound("no traces in " + in_dir);
  std::printf("collect: %u digests (%s), %.1f MB traffic -> %.1f KB digests "
              "(%.0fx)\n",
              routers, unaligned ? "unaligned" : "aligned",
              static_cast<double>(raw_bytes) / 1e6,
              static_cast<double>(digest_bytes) / 1e3,
              static_cast<double>(raw_bytes) /
                  static_cast<double>(digest_bytes));
  return Status::Ok();
}

// ----------------------------------------------------------------------
// Stage 3: central analysis.
// ----------------------------------------------------------------------

// Continuous-operation replay: the digest files become the payload of
// every epoch in [0, ring_epochs) * stride, re-stamped per epoch, offered
// to an EpochRing. Prints one line per closed epoch plus the ring and
// tracker totals.
Status RunRingReplay(const Flags& flags, const EpochRingOptions& options,
                     const AnalysisContext& context, FaultInjector* injector,
                     std::uint32_t num_digest_files,
                     const std::string& in_dir) {
  const std::int64_t ring_epochs = flags.GetInt("ring-epochs", 0);
  const std::int64_t stride = flags.GetInt("epoch-stride", 1);
  if (stride < 1) return Status::InvalidArgument("--epoch-stride must be >= 1");

  std::vector<std::vector<std::uint8_t>> payloads(num_digest_files);
  for (std::uint32_t r = 0; r < num_digest_files; ++r) {
    DCS_RETURN_IF_ERROR(ReadBytes(DigestPath(in_dir, r), &payloads[r]));
  }

  EpochRing ring(options, context);
  std::uint64_t accepted = 0;
  std::uint64_t rejected = 0;
  for (std::int64_t i = 0; i < ring_epochs; ++i) {
    const std::uint64_t epoch =
        static_cast<std::uint64_t>(i) * static_cast<std::uint64_t>(stride);
    for (std::uint32_t r = 0; r < num_digest_files; ++r) {
      std::vector<std::vector<std::uint8_t>> delivered;
      std::vector<std::uint8_t> stamped =
          FaultInjector::RewriteEpoch(payloads[r], epoch);
      if (injector != nullptr) {
        delivered = injector->Apply(r, stamped);
      } else {
        delivered.push_back(std::move(stamped));
      }
      for (const std::vector<std::uint8_t>& message : delivered) {
        Digest digest;
        Status status = Digest::Decode(message, &digest);
        if (status.ok()) status = ring.Offer(std::move(digest));
        if (status.ok()) {
          ++accepted;
        } else {
          ++rejected;
        }
      }
    }
  }
  ring.Drain();

  const std::vector<DcsReport> reports = ring.TakeReports();
  std::printf("ring: %s policy, capacity %zu, %lld offered epochs "
              "(stride %lld), %llu digests accepted, %llu rejected\n",
              ShedPolicyName(options.policy), options.capacity,
              static_cast<long long>(ring_epochs),
              static_cast<long long>(stride),
              static_cast<unsigned long long>(accepted),
              static_cast<unsigned long long>(rejected));
  for (const DcsReport& report : reports) {
    const char* disposition = report.shed               ? "shed"
                              : report.degraded_analysis ? "degraded"
                                                         : "analyzed";
    std::printf("  epoch %llu: %s, %llu digests, aligned %s, unaligned %s\n",
                static_cast<unsigned long long>(report.epoch_id), disposition,
                static_cast<unsigned long long>(report.digests_accepted),
                report.aligned.common_content_detected ? "DETECTED" : "clean",
                report.unaligned.common_content_detected ? "DETECTED"
                                                         : "clean");
  }
  const RingStats& stats = ring.stats();
  std::printf("ring stats: %llu analyzed, %llu shed, %llu degraded, "
              "%llu blocked advances, max in flight %zu\n",
              static_cast<unsigned long long>(stats.epochs_analyzed),
              static_cast<unsigned long long>(stats.epochs_shed),
              static_cast<unsigned long long>(stats.epochs_degraded),
              static_cast<unsigned long long>(stats.blocked_advances),
              stats.max_in_flight);
  std::printf("tracker: %llu epochs, %llu gaps, %s\n",
              static_cast<unsigned long long>(ring.tracker().epochs_seen()),
              static_cast<unsigned long long>(ring.tracker().gaps_seen()),
              ring.tracker().PersistentDetection() ? "PERSISTENT ALARM"
                                                   : "no persistent alarm");
  return Status::Ok();
}

Status CmdAnalyze(const Flags& flags) {
  const std::string in_dir = flags.Get("in-dir", "");
  if (in_dir.empty()) return Status::InvalidArgument("--in-dir required");
  const bool unaligned = flags.Get("mode", "aligned") == "unaligned";

  AlignedPipelineOptions aligned;
  aligned.sketch.num_bits =
      static_cast<std::size_t>(flags.GetInt("bitmap-bits", 8192));
  aligned.n_prime = static_cast<std::size_t>(flags.GetInt("n-prime", 128));
  aligned.detector.first_iteration_hopefuls = aligned.n_prime;
  aligned.detector.hopefuls = aligned.n_prime / 2;

  UnalignedPipelineOptions unaligned_opts;
  unaligned_opts.er_threshold =
      static_cast<std::size_t>(flags.GetInt("er-threshold", 0));
  unaligned_opts.detector.beta =
      static_cast<std::size_t>(flags.GetInt("beta", 12));
  unaligned_opts.detector.expand_min_edges =
      static_cast<std::size_t>(flags.GetInt("expand-min-edges", 2));

  const std::int64_t threads = flags.GetInt("threads", 1);
  if (threads < 1) return Status::InvalidArgument("--threads must be >= 1");
  std::unique_ptr<ThreadPool> pool;
  AnalysisContext context;
  if (threads > 1) {
    pool = std::make_unique<ThreadPool>(static_cast<std::size_t>(threads));
    context.pool = pool.get();
  }
  // Hardened ingestion: either flag opts in. Rejections are reported and
  // survived instead of aborting the run.
  IngestOptions ingest;
  ingest.expected_routers =
      static_cast<std::uint32_t>(flags.GetInt("expected-routers", 0));
  const std::string fault_plan_text = flags.Get("fault-plan", "");
  const bool hardened = ingest.expected_routers > 0 || flags.Has("fault-plan");
  if (hardened) {
    // Pin the reference epoch instead of locking to the first arrival: a
    // forged epoch_id in the first message must not get every honest
    // router quarantined as "stale". The collectors in this repo always
    // stamp epoch 0, so 0 is the right default.
    ingest.lock_epoch_to_first = false;
    ingest.expected_epoch =
        static_cast<std::uint64_t>(flags.GetInt("expected-epoch", 0));
  }

  // The plan needs the router count up front: count the digest files.
  std::uint32_t num_digest_files = 0;
  while (std::filesystem::exists(DigestPath(in_dir, num_digest_files))) {
    ++num_digest_files;
  }
  if (num_digest_files == 0) {
    return Status::NotFound("no digests in " + in_dir);
  }

  std::unique_ptr<FaultInjector> injector;
  if (flags.Has("fault-plan")) {
    FaultSpec spec;
    DCS_RETURN_IF_ERROR(FaultSpec::Parse(fault_plan_text, &spec));
    FaultPlan plan = MaterializeFaultPlan(spec, num_digest_files);
    std::printf("fault plan: %s\n", plan.ToString().c_str());
    injector = std::make_unique<FaultInjector>(std::move(plan));
  }

  if (flags.GetInt("ring-epochs", 0) > 0) {
    EpochRingOptions ring_options;
    ring_options.capacity =
        static_cast<std::size_t>(flags.GetInt("ring-capacity", 4));
    const std::string policy = flags.Get("shed-policy", "block");
    if (policy == "block") {
      ring_options.policy = ShedPolicy::kBlock;
    } else if (policy == "drop-oldest") {
      ring_options.policy = ShedPolicy::kDropOldest;
    } else if (policy == "degrade") {
      ring_options.policy = ShedPolicy::kDegrade;
    } else {
      return Status::InvalidArgument(
          "--shed-policy must be block|drop-oldest|degrade");
    }
    ring_options.aligned = aligned;
    ring_options.aligned.incremental_weights = true;
    ring_options.unaligned = unaligned_opts;
    ring_options.ingest = ingest;
    return RunRingReplay(flags, ring_options, context, injector.get(),
                         num_digest_files, in_dir);
  }

  DcsMonitor monitor(aligned, unaligned_opts, context, ingest);
  std::uint32_t accepted = 0;
  for (std::uint32_t r = 0; r < num_digest_files; ++r) {
    std::vector<std::uint8_t> bytes;
    DCS_RETURN_IF_ERROR(ReadBytes(DigestPath(in_dir, r), &bytes));
    std::vector<std::vector<std::uint8_t>> delivered;
    if (injector != nullptr) {
      delivered = injector->Apply(r, bytes);
    } else {
      delivered.push_back(std::move(bytes));
    }
    for (const std::vector<std::uint8_t>& message : delivered) {
      const Status status = monitor.AddEncodedDigest(message);
      if (status.ok()) {
        ++accepted;
      } else if (hardened) {
        std::printf("analyze: router %u message rejected: %s\n", r,
                    status.ToString().c_str());
      } else {
        return status;
      }
    }
  }
  std::printf("analyze: %u digests loaded\n", accepted);
  if (hardened) {
    std::printf("%s\n", monitor.ingest_stats().ToString().c_str());
  }

  if (unaligned) {
    const UnalignedReport report = monitor.AnalyzeUnaligned();
    std::printf("%s\n", report.ToString().c_str());
    if (report.common_content_detected) {
      std::printf("routers:");
      for (std::uint32_t r : report.routers) std::printf(" %u", r);
      std::printf("\nclusters: %zu\n", report.clusters.size());
    }
  } else {
    const AlignedReport report = monitor.AnalyzeAligned();
    std::printf("%s\n", report.ToString().c_str());
    if (report.common_content_detected) {
      std::printf("routers:");
      for (std::uint32_t r : report.routers) std::printf(" %u", r);
      std::printf("\nsignature columns: %zu\n",
                  report.signature_columns.size());
    }
  }
  return Status::Ok();
}

// ----------------------------------------------------------------------
// Stage 2.5: ship digests to a remote analysis center (dcs_ingestd).
// ----------------------------------------------------------------------

Status CmdSend(const Flags& flags) {
  const std::string in_dir = flags.Get("in-dir", "");
  if (in_dir.empty()) return Status::InvalidArgument("--in-dir required");
  const std::string uds = flags.Get("uds", "");
  const std::int64_t port = flags.GetInt("tcp-port", 0);
  if (uds.empty() && port == 0) {
    return Status::InvalidArgument("--uds or --tcp-port required");
  }
  const std::string codec_name = flags.Get("codec", "auto");
  CodecMode mode;
  if (codec_name == "raw") {
    mode = CodecMode::kRaw;
  } else if (codec_name == "sparse") {
    mode = CodecMode::kSparse;
  } else if (codec_name == "auto") {
    mode = CodecMode::kAuto;
  } else {
    return Status::InvalidArgument("--codec must be raw|sparse|auto");
  }
  const std::int64_t epochs = flags.GetInt("epochs", 1);
  const std::int64_t stride = flags.GetInt("epoch-stride", 1);
  if (epochs < 1 || stride < 1) {
    return Status::InvalidArgument("--epochs and --epoch-stride must be >= 1");
  }

  std::vector<Digest> digests;
  for (std::uint32_t r = 0;; ++r) {
    std::vector<std::uint8_t> bytes;
    const Status status = ReadBytes(DigestPath(in_dir, r), &bytes);
    if (status.code() == Status::Code::kNotFound) break;
    DCS_RETURN_IF_ERROR(status);
    Digest digest;
    DCS_RETURN_IF_ERROR(Digest::Decode(bytes, &digest));
    digests.push_back(std::move(digest));
  }
  if (digests.empty()) return Status::NotFound("no digests in " + in_dir);

  // --coalesce-bytes batches frames on the sender before each socket write
  // (0 = ship every frame immediately); the fan-in knob for runs that
  // replay many epochs per connection.
  SenderOptions sender_options;
  sender_options.coalesce_bytes =
      static_cast<std::size_t>(flags.GetInt("coalesce-bytes", 0));
  DigestSender sender;
  if (!uds.empty()) {
    DCS_RETURN_IF_ERROR(DigestSender::ConnectUds(uds, &sender, sender_options));
  } else {
    DCS_RETURN_IF_ERROR(DigestSender::ConnectTcp(
        flags.Get("host", "127.0.0.1"), static_cast<std::uint16_t>(port),
        &sender, sender_options));
  }
  // Epoch-major, router-minor: the canonical replay order, so the server's
  // report stream is comparable with `analyze --ring-epochs`.
  for (std::int64_t e = 0; e < epochs; ++e) {
    for (Digest& digest : digests) {
      digest.epoch_id =
          static_cast<std::uint64_t>(e) * static_cast<std::uint64_t>(stride);
      DCS_RETURN_IF_ERROR(sender.Send(digest, mode));
    }
  }
  DCS_RETURN_IF_ERROR(sender.Flush());
  const SenderStats& stats = sender.stats();
  std::printf("send: %llu frames (%llu raw, %llu sparse), %llu bytes, "
              "codec %s\n",
              static_cast<unsigned long long>(stats.frames_sent),
              static_cast<unsigned long long>(stats.raw_frames),
              static_cast<unsigned long long>(stats.sparse_frames),
              static_cast<unsigned long long>(stats.bytes_sent),
              CodecModeName(mode));
  sender.Close();
  return Status::Ok();
}

Status CmdDemo() {
  const std::string dir =
      (std::filesystem::temp_directory_path() / "dcs_workbench_demo")
          .string();
  std::filesystem::remove_all(dir);
  std::printf("== demo in %s ==\n", dir.c_str());
  Flags synth;
  char arg_out[] = "--out-dir";
  char* synth_argv[] = {arg_out, const_cast<char*>(dir.c_str())};
  DCS_RETURN_IF_ERROR(synth.Parse(2, synth_argv, 0));
  DCS_RETURN_IF_ERROR(CmdSynthesize(synth));
  char arg_in[] = "--in-dir";
  char* dir_argv[] = {arg_in, const_cast<char*>(dir.c_str())};
  Flags collect;
  DCS_RETURN_IF_ERROR(collect.Parse(2, dir_argv, 0));
  DCS_RETURN_IF_ERROR(CmdCollect(collect));
  Flags analyze;
  DCS_RETURN_IF_ERROR(analyze.Parse(2, dir_argv, 0));
  return CmdAnalyze(analyze);
}

// Writes the final registry snapshot: JSON lines to --metrics-out when
// given, otherwise a summary table on stdout.
Status DumpMetrics(const Flags& flags) {
  MetricsSnapshot snapshot = MetricsRegistry::Global().Snapshot();
  const std::string out = flags.Get("metrics-out", "");
  if (out.empty()) {
    std::printf("\n== metrics ==\n");
    PrintSnapshotTable(snapshot, std::cout);
    return Status::Ok();
  }
  const std::string text = SnapshotToJsonLines(snapshot);
  std::FILE* f = std::fopen(out.c_str(), "w");
  if (f == nullptr) return Status::IoError("cannot write " + out);
  const std::size_t written = std::fwrite(text.data(), 1, text.size(), f);
  std::fclose(f);
  if (written != text.size()) return Status::IoError("short write " + out);
  std::printf("metrics: wrote %zu metrics to %s\n", snapshot.entries.size(),
              out.c_str());
  return Status::Ok();
}

void PrintUsage() {
  std::printf(
      "usage: dcs_workbench <synthesize|collect|analyze|send|demo> "
      "[--flags]\n"
      "       [--metrics] [--metrics-out <path>]\n"
      "see the comment block at the top of tools/dcs_workbench.cc\n");
}

int Main(int argc, char** argv) {
  if (argc < 2) {
    PrintUsage();
    return 1;
  }
  const std::string command = argv[1];
  if (command == "--help" || command == "-h" || command == "help") {
    PrintUsage();
    return 0;
  }
  Flags flags;
  const Status parse_status = flags.Parse(argc, argv, 2);
  if (!parse_status.ok()) {
    std::fprintf(stderr, "%s\n", parse_status.ToString().c_str());
    return 1;
  }
  const bool metrics = flags.Has("metrics") || flags.Has("metrics-out");
  if (metrics) MetricsRegistry::Global().set_enabled(true);
  Status status;
  if (command == "synthesize") {
    status = CmdSynthesize(flags);
  } else if (command == "collect") {
    status = CmdCollect(flags);
  } else if (command == "analyze") {
    status = CmdAnalyze(flags);
  } else if (command == "send") {
    status = CmdSend(flags);
  } else if (command == "demo") {
    status = CmdDemo();
  } else {
    PrintUsage();
    return 1;
  }
  if (status.ok() && metrics) status = DumpMetrics(flags);
  if (!status.ok()) {
    std::fprintf(stderr, "%s\n", status.ToString().c_str());
    return 1;
  }
  return 0;
}

}  // namespace
}  // namespace dcs

int main(int argc, char** argv) { return dcs::Main(argc, argv); }
