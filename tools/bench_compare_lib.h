#ifndef DCS_TOOLS_BENCH_COMPARE_LIB_H_
#define DCS_TOOLS_BENCH_COMPARE_LIB_H_

#include <cstddef>
#include <string>
#include <vector>

#include "obs/metrics.h"

namespace dcs {
namespace bench_compare {

/// How a metric is judged. Classification is by name suffix (the bench
/// naming convention bench.<bench>.<scenario>.<quantity> makes the
/// quantity the suffix), because the snapshot format carries no unit or
/// direction metadata.
enum class MetricClass {
  /// Wall-clock quantities (suffix _s, _ms, _ns, _per_sec): real but
  /// machine-dependent, so regressions are gated on a lenient
  /// multiplicative factor — a CI runner is not the machine that produced
  /// the committed snapshot.
  kTiming,
  /// Memory quantities (suffix _mb): stable across machines for the same
  /// workload; moderate relative tolerance plus an absolute floor for
  /// allocator noise.
  kMemory,
  /// Quality quantities (suffix _ratio): nearly deterministic, tight
  /// relative tolerance; only a decrease can regress.
  kQuality,
  /// Everything else (counts, speedups): reported, never gated. Speedup is
  /// informational because a single-core CI container measures scheduling
  /// overhead, not scaling.
  kInfo,
};

const char* MetricClassName(MetricClass cls);

/// Classifies a metric name by its suffix.
MetricClass ClassifyMetric(const std::string& name);

struct BenchCompareOptions {
  /// kTiming: regression when current > baseline * timing_factor.
  double timing_factor = 4.0;
  /// kMemory: regression when current > baseline * (1 + memory_tolerance)
  /// + memory_floor_mb.
  double memory_tolerance = 0.5;
  double memory_floor_mb = 16.0;
  /// kQuality: regression when current < baseline * (1 - quality_tolerance).
  double quality_tolerance = 0.10;
};

/// One compared metric (present in both snapshots, bench.-prefixed gauge).
struct MetricDelta {
  std::string name;
  MetricClass cls = MetricClass::kInfo;
  double baseline = 0.0;
  double current = 0.0;
  /// current / baseline; 1.0 when the baseline is zero.
  double ratio = 1.0;
  bool regression = false;
};

struct BenchCompareResult {
  std::vector<MetricDelta> deltas;  // Sorted by name.
  std::size_t num_regressions = 0;
  /// bench.-prefixed gauges present in exactly one snapshot (scenario
  /// mismatch — e.g. a full run compared against a smoke run covers extra
  /// scenarios). Never a failure by itself, but an empty intersection is.
  std::vector<std::string> baseline_only;
  std::vector<std::string> current_only;
};

/// Compares every bench.-prefixed gauge present in both snapshots.
/// Non-bench metrics (pipeline counters the run happened to touch) and
/// non-gauges are ignored: only the quantities a bench deliberately
/// exported describe its result.
BenchCompareResult CompareSnapshots(const MetricsSnapshot& baseline,
                                    const MetricsSnapshot& current,
                                    const BenchCompareOptions& options);

/// Renders the result as an aligned table plus a verdict line.
std::string FormatResult(const BenchCompareResult& result);

/// Loads a JSON-lines snapshot from a file. Returns false (with a message
/// in *error) when the file is unreadable or malformed.
bool LoadSnapshotFile(const std::string& path, MetricsSnapshot* out,
                      std::string* error);

}  // namespace bench_compare
}  // namespace dcs

#endif  // DCS_TOOLS_BENCH_COMPARE_LIB_H_
