#ifndef DCS_TOOLS_DCS_LINT_LIB_H_
#define DCS_TOOLS_DCS_LINT_LIB_H_

#include <filesystem>
#include <string>
#include <utility>
#include <vector>

namespace dcs {
namespace lint {

/// One rule violation at a specific source line.
struct Finding {
  std::string file;   ///< Path as reported (relative to the scan root).
  std::size_t line = 0;  ///< 1-based.
  std::string rule;   ///< Rule slug, e.g. "unseeded-rng".
  std::string message;

  std::string ToString() const;
};

/// Rule slugs, in reporting order. Each is usable in a suppression comment:
///   // dcs-lint: allow(unseeded-rng)
/// on the offending line or the line directly above it.
extern const char* const kRuleUnseededRng;
extern const char* const kRuleUnorderedIteration;
extern const char* const kRuleWallClock;
extern const char* const kRuleMetricName;
extern const char* const kRuleFloatEquality;
extern const char* const kRuleTargetIntrinsics;
extern const char* const kRuleRawSyncPrimitive;
extern const char* const kRuleManualLockUnlock;

/// All rule slugs with a one-line description, for --list-rules and docs.
std::vector<std::pair<std::string, std::string>> RuleCatalog();

/// Extracts metric-name prefixes (the segment before the first '.') from the
/// observability catalog markdown: every backticked dotted token in the file,
/// e.g. `ingest.rejected.decode` contributes "ingest". This makes
/// docs/OBSERVABILITY.md the source of truth for the prefix grammar.
std::vector<std::string> ParseCatalogPrefixes(const std::string& markdown);

struct LintOptions {
  /// Scan root; rule scoping is decided by paths relative to this.
  std::filesystem::path root;
  /// Explicit files to lint (absolute or root-relative). Empty = walk the
  /// default directories (src, tools, tests, bench, examples) under root.
  std::vector<std::filesystem::path> files;
  /// Metric-name prefixes. Empty = parse from root/docs/OBSERVABILITY.md;
  /// if that file is missing the metric-name rule is skipped.
  std::vector<std::string> catalog_prefixes;
};

/// Lints one file's contents as if it lived at `rel_path` under the root.
/// `rel_path` must use forward slashes; it drives per-rule scoping.
std::vector<Finding> LintContent(const std::string& rel_path,
                                 const std::string& content,
                                 const std::vector<std::string>& prefixes);

/// Walks / reads per LintOptions and lints every file. Findings are sorted
/// by (file, line, rule) so output is deterministic.
std::vector<Finding> LintTree(const LintOptions& options);

}  // namespace lint
}  // namespace dcs

#endif  // DCS_TOOLS_DCS_LINT_LIB_H_
