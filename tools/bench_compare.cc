// Diffs two bench snapshots (JSON lines from the obs exporter) and fails
// when the current run regressed past noise-aware thresholds. Usage:
//
//   bench_compare <baseline.json> <current.json> [--timing-factor <f>]
//                 [--memory-tolerance <frac>] [--quality-tolerance <frac>]
//
// Only bench.-prefixed gauges present in BOTH files are compared, so a
// committed full-scale snapshot can gate a CI smoke run as long as the
// bench emits scale-independent metric names for the shared scenarios
// (see docs/STREAMING.md and the bench.* catalog in docs/OBSERVABILITY.md).
// Exit codes: 0 clean, 1 regression, 2 usage/IO error, 3 no overlap.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "bench_compare_lib.h"

int main(int argc, char** argv) {
  using namespace dcs::bench_compare;
  BenchCompareOptions options;
  std::string baseline_path;
  std::string current_path;
  for (int i = 1; i < argc; ++i) {
    const auto flag_value = [&](const char* name, double* out) {
      if (std::strcmp(argv[i], name) != 0 || i + 1 >= argc) return false;
      *out = std::strtod(argv[++i], nullptr);
      return true;
    };
    if (flag_value("--timing-factor", &options.timing_factor) ||
        flag_value("--memory-tolerance", &options.memory_tolerance) ||
        flag_value("--quality-tolerance", &options.quality_tolerance)) {
      continue;
    }
    if (argv[i][0] == '-') {
      std::fprintf(stderr,
                   "usage: %s <baseline.json> <current.json> "
                   "[--timing-factor <f>] [--memory-tolerance <frac>] "
                   "[--quality-tolerance <frac>]\n",
                   argv[0]);
      return std::strcmp(argv[i], "--help") == 0 ? 0 : 2;
    }
    if (baseline_path.empty()) {
      baseline_path = argv[i];
    } else if (current_path.empty()) {
      current_path = argv[i];
    } else {
      std::fprintf(stderr, "unexpected argument: %s\n", argv[i]);
      return 2;
    }
  }
  if (current_path.empty()) {
    std::fprintf(stderr, "usage: %s <baseline.json> <current.json>\n",
                 argv[0]);
    return 2;
  }

  dcs::MetricsSnapshot baseline;
  dcs::MetricsSnapshot current;
  std::string error;
  if (!LoadSnapshotFile(baseline_path, &baseline, &error) ||
      !LoadSnapshotFile(current_path, &current, &error)) {
    std::fprintf(stderr, "bench_compare: %s\n", error.c_str());
    return 2;
  }

  const BenchCompareResult result =
      CompareSnapshots(baseline, current, options);
  std::fputs(FormatResult(result).c_str(), stdout);
  if (result.deltas.empty()) return 3;
  return result.num_regressions > 0 ? 1 : 0;
}
