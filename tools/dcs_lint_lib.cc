#include "dcs_lint_lib.h"

#include <algorithm>
#include <cctype>
#include <fstream>
#include <iterator>
#include <regex>
#include <sstream>
#include <tuple>

namespace dcs {
namespace lint {

const char* const kRuleUnseededRng = "unseeded-rng";
const char* const kRuleUnorderedIteration = "unordered-iteration";
const char* const kRuleWallClock = "wall-clock";
const char* const kRuleMetricName = "metric-name";
const char* const kRuleFloatEquality = "float-equality";
const char* const kRuleTargetIntrinsics = "target-intrinsics";
const char* const kRuleRawSyncPrimitive = "raw-sync-primitive";
const char* const kRuleManualLockUnlock = "manual-lock-unlock";

std::vector<std::pair<std::string, std::string>> RuleCatalog() {
  return {
      {kRuleUnseededRng,
       "std::mt19937 / rand() / random_device outside src/common/rng.cc; "
       "all randomness must flow through the seeded dcs::Rng"},
      {kRuleUnorderedIteration,
       "iteration over std::unordered_{map,set} in src/analysis/; hash-order "
       "leaks break the bit-identical parallel-merge guarantee"},
      {kRuleWallClock,
       "wall-clock reads (std::chrono clocks, time(), gettimeofday) outside "
       "src/obs/; analysis output must not depend on timing"},
      {kRuleMetricName,
       "metric-name literal whose prefix is not in the "
       "docs/OBSERVABILITY.md catalog, or that violates the "
       "lowercase.dotted_name grammar"},
      {kRuleFloatEquality,
       "float/double == or != against a floating literal in threshold code; "
       "compare with an explicit tolerance"},
      {kRuleTargetIntrinsics,
       "target-specific SIMD intrinsics or intrinsic headers outside "
       "src/common/bit_kernels_avx2.cc; all ISA-specific code must live in "
       "the one TU built with target flags, behind the dispatch table"},
      {kRuleRawSyncPrimitive,
       "raw std synchronization primitive (std::mutex, lock_guard, "
       "unique_lock, condition_variable, ...) outside src/common/sync.*; "
       "use the annotated dcs::Mutex/MutexLock/CondVar wrappers so clang "
       "-Wthread-safety and the debug lock-order validator see the lock"},
      {kRuleManualLockUnlock,
       "direct .lock()/.unlock() call outside src/common/sync.*; locks are "
       "RAII-only (dcs::MutexLock) so no early return or exception can "
       "leave a mutex held"},
  };
}

std::string Finding::ToString() const {
  std::ostringstream out;
  out << file << ":" << line << ": [" << rule << "] " << message;
  return out.str();
}

namespace {

/// Comment/string-aware views of one source file. Both preserve the exact
/// line structure (every replaced character becomes a space) so regex hits
/// map 1:1 onto source lines.
struct LexedFile {
  std::string code;        ///< Comments blanked; string literals kept.
  std::string code_nostr;  ///< Comments and literal *contents* blanked.
};

LexedFile Lex(const std::string& text) {
  enum class State {
    kNormal,
    kLineComment,
    kBlockComment,
    kString,
    kChar,
    kRawString,
  };
  LexedFile out;
  out.code.reserve(text.size());
  out.code_nostr.reserve(text.size());
  State state = State::kNormal;
  std::string raw_terminator;  // For kRawString: ")delim\"".
  for (std::size_t i = 0; i < text.size(); ++i) {
    const char c = text[i];
    const char next = i + 1 < text.size() ? text[i + 1] : '\0';
    if (c == '\n') {  // Line structure survives every state.
      out.code += '\n';
      out.code_nostr += '\n';
      if (state == State::kLineComment) state = State::kNormal;
      continue;
    }
    switch (state) {
      case State::kNormal:
        if (c == '/' && next == '/') {
          state = State::kLineComment;
          out.code += "  ";
          out.code_nostr += "  ";
          ++i;
        } else if (c == '/' && next == '*') {
          state = State::kBlockComment;
          out.code += "  ";
          out.code_nostr += "  ";
          ++i;
        } else if (c == 'R' && next == '"' &&
                   (i == 0 || (!std::isalnum(static_cast<unsigned char>(
                                   text[i - 1])) &&
                               text[i - 1] != '_'))) {
          // Raw string: R"delim( ... )delim".
          std::size_t p = i + 2;
          std::string delim;
          while (p < text.size() && text[p] != '(') delim += text[p++];
          state = State::kRawString;
          raw_terminator = ")" + delim + "\"";
          for (std::size_t k = i; k <= p && k < text.size(); ++k) {
            out.code += text[k];
            out.code_nostr += text[k] == '(' ? '"' : ' ';
          }
          i = p;
        } else if (c == '"') {
          state = State::kString;
          out.code += c;
          out.code_nostr += c;
        } else if (c == '\'') {
          state = State::kChar;
          out.code += c;
          out.code_nostr += c;
        } else {
          out.code += c;
          out.code_nostr += c;
        }
        break;
      case State::kLineComment:
        out.code += ' ';
        out.code_nostr += ' ';
        break;
      case State::kBlockComment:
        if (c == '*' && next == '/') {
          state = State::kNormal;
          out.code += "  ";
          out.code_nostr += "  ";
          ++i;
        } else {
          out.code += ' ';
          out.code_nostr += ' ';
        }
        break;
      case State::kString:
        if (c == '\\' && next != '\0') {
          out.code += c;
          out.code += next;
          out.code_nostr += "  ";
          ++i;
        } else if (c == '"') {
          state = State::kNormal;
          out.code += c;
          out.code_nostr += c;
        } else {
          out.code += c;
          out.code_nostr += ' ';
        }
        break;
      case State::kChar:
        if (c == '\\' && next != '\0') {
          out.code += c;
          out.code += next;
          out.code_nostr += "  ";
          ++i;
        } else if (c == '\'') {
          state = State::kNormal;
          out.code += c;
          out.code_nostr += c;
        } else {
          out.code += c;
          out.code_nostr += ' ';
        }
        break;
      case State::kRawString:
        if (text.compare(i, raw_terminator.size(), raw_terminator) == 0) {
          out.code += raw_terminator;
          out.code_nostr += '"';
          for (std::size_t k = 1; k < raw_terminator.size(); ++k) {
            out.code_nostr += ' ';
          }
          i += raw_terminator.size() - 1;
          state = State::kNormal;
        } else {
          out.code += c;
          out.code_nostr += ' ';
        }
        break;
    }
  }
  return out;
}

std::vector<std::string> SplitLines(const std::string& text) {
  std::vector<std::string> lines;
  std::size_t start = 0;
  while (start <= text.size()) {
    const std::size_t nl = text.find('\n', start);
    if (nl == std::string::npos) {
      lines.push_back(text.substr(start));
      break;
    }
    lines.push_back(text.substr(start, nl - start));
    start = nl + 1;
  }
  return lines;
}

std::size_t LineOfOffset(const std::string& text, std::size_t offset) {
  return 1 + static_cast<std::size_t>(
                 std::count(text.begin(), text.begin() + static_cast<std::ptrdiff_t>(offset), '\n'));
}

bool StartsWith(const std::string& s, const char* prefix) {
  return s.rfind(prefix, 0) == 0;
}

/// True when `raw_lines[line-1]` or the line above carries a
/// `dcs-lint: allow(<rule>)` suppression naming this rule.
bool Suppressed(const std::vector<std::string>& raw_lines, std::size_t line,
                const std::string& rule) {
  const auto has_allow = [&rule](const std::string& text) {
    const std::size_t at = text.find("dcs-lint: allow(");
    if (at == std::string::npos) return false;
    const std::size_t open = text.find('(', at);
    const std::size_t close = text.find(')', open);
    if (close == std::string::npos) return false;
    std::string inside = text.substr(open + 1, close - open - 1);
    std::istringstream stream(inside);
    std::string item;
    while (std::getline(stream, item, ',')) {
      const std::size_t b = item.find_first_not_of(" \t");
      const std::size_t e = item.find_last_not_of(" \t");
      if (b != std::string::npos && item.substr(b, e - b + 1) == rule) {
        return true;
      }
    }
    return false;
  };
  if (line >= 1 && line <= raw_lines.size() && has_allow(raw_lines[line - 1])) {
    return true;
  }
  return line >= 2 && has_allow(raw_lines[line - 2]);
}

struct FileContext {
  const std::string& rel_path;
  const std::vector<std::string>& raw_lines;
  const LexedFile& lexed;
  std::vector<Finding>* findings;

  void Emit(std::size_t line, const char* rule, std::string message) const {
    if (Suppressed(raw_lines, line, rule)) return;
    findings->push_back(Finding{rel_path, line, rule, std::move(message)});
  }
};

/// Applies `re` line-by-line over `view` and emits one finding per matching
/// line (first match only; one diagnostic per line keeps output readable).
void EmitLineMatches(const FileContext& ctx, const std::string& view,
                     const std::regex& re, const char* rule,
                     const std::string& message) {
  const std::vector<std::string> lines = SplitLines(view);
  for (std::size_t i = 0; i < lines.size(); ++i) {
    if (std::regex_search(lines[i], re)) {
      ctx.Emit(i + 1, rule, message);
    }
  }
}

// ---------------------------------------------------------------------------
// Rule: unseeded-rng
// ---------------------------------------------------------------------------

void CheckUnseededRng(const FileContext& ctx) {
  if (ctx.rel_path == "src/common/rng.cc") return;
  static const std::regex re(
      R"(\bstd\s*::\s*(mt19937(_64)?|minstd_rand0?|random_device)\b|\b(mt19937(_64)?|random_device)\b|(^|[^\w:])s?rand\s*\(|\bdrand48\b)");
  EmitLineMatches(ctx, ctx.lexed.code_nostr, re, kRuleUnseededRng,
                  "randomness outside common/rng.cc; use the seeded dcs::Rng "
                  "(common/rng.h) so every run is reproducible");
}

// ---------------------------------------------------------------------------
// Rule: unordered-iteration
// ---------------------------------------------------------------------------

void CheckUnorderedIteration(const FileContext& ctx) {
  if (!StartsWith(ctx.rel_path, "src/analysis/")) return;
  const std::string& code = ctx.lexed.code_nostr;

  // Pass 1: names declared as std::unordered_{map,set}<...>.
  std::vector<std::string> unordered_names;
  static const std::regex decl_re(R"(\bstd\s*::\s*unordered_(map|set)\s*<)");
  for (auto it = std::sregex_iterator(code.begin(), code.end(), decl_re);
       it != std::sregex_iterator(); ++it) {
    // Skip the balanced template argument list, then read the declared name.
    std::size_t p = static_cast<std::size_t>(it->position()) +
                    static_cast<std::size_t>(it->length());
    int depth = 1;
    while (p < code.size() && depth > 0) {
      if (code[p] == '<') ++depth;
      if (code[p] == '>') --depth;
      ++p;
    }
    while (p < code.size() &&
           (std::isspace(static_cast<unsigned char>(code[p])) ||
            code[p] == '&')) {
      ++p;
    }
    std::string name;
    while (p < code.size() && (std::isalnum(static_cast<unsigned char>(
                                   code[p])) ||
                               code[p] == '_')) {
      name += code[p++];
    }
    if (!name.empty() && name != "const") unordered_names.push_back(name);
  }
  if (unordered_names.empty()) return;

  // Pass 2: range-for over, or explicit iterator walks of, those names.
  for (const std::string& name : unordered_names) {
    const std::regex iter_re(
        "for\\s*\\([^;)]*:\\s*\\*?" + name + "\\s*\\)|\\b" + name +
        "\\s*\\.\\s*(begin|cbegin)\\s*\\(");
    EmitLineMatches(
        ctx, code, iter_re, kRuleUnorderedIteration,
        "iteration over unordered container '" + name +
            "' in src/analysis/ — hash order is not deterministic across "
            "platforms; sort keys first or use an ordered structure "
            "(bit-identical-merge rule)");
  }
}

// ---------------------------------------------------------------------------
// Rule: wall-clock
// ---------------------------------------------------------------------------

void CheckWallClock(const FileContext& ctx) {
  const bool in_scope = (StartsWith(ctx.rel_path, "src/") &&
                         !StartsWith(ctx.rel_path, "src/obs/")) ||
                        StartsWith(ctx.rel_path, "tools/");
  if (!in_scope) return;
  static const std::regex re(
      R"(\bstd\s*::\s*chrono\s*::\s*(system_clock|steady_clock|high_resolution_clock)\b|\b(system_clock|steady_clock|high_resolution_clock)\s*::\s*now\b|\bgettimeofday\b|\bclock_gettime\b|\btime\s*\(\s*(nullptr|NULL|0)\s*\)|\bstd\s*::\s*clock\s*\()");
  EmitLineMatches(ctx, ctx.lexed.code_nostr, re, kRuleWallClock,
                  "wall-clock read outside src/obs/; route timing through "
                  "obs::ScopedStageTimer so analysis results stay "
                  "schedule-independent");
}

// ---------------------------------------------------------------------------
// Rule: metric-name
// ---------------------------------------------------------------------------

bool ValidMetricLiteral(const std::string& literal,
                        const std::vector<std::string>& prefixes,
                        std::string* why) {
  if (literal.empty()) {
    *why = "empty metric name";
    return false;
  }
  static const std::regex grammar(R"(^[a-z][a-z0-9_]*(\.[a-z0-9_]+)*\.?$)");
  if (!std::regex_match(literal, grammar)) {
    *why = "violates the lowercase dotted-name grammar";
    return false;
  }
  const std::size_t dot = literal.find('.');
  if (dot == std::string::npos) {
    *why = "has no subsystem prefix (expected '<subsystem>.<metric>')";
    return false;
  }
  const std::string prefix = literal.substr(0, dot);
  if (std::find(prefixes.begin(), prefixes.end(), prefix) == prefixes.end()) {
    *why = "prefix '" + prefix +
           "' is not in the docs/OBSERVABILITY.md catalog";
    return false;
  }
  return true;
}

void CheckMetricNames(const FileContext& ctx,
                      const std::vector<std::string>& prefixes) {
  const bool in_scope =
      StartsWith(ctx.rel_path, "src/") || StartsWith(ctx.rel_path, "tools/");
  if (!in_scope || prefixes.empty()) return;
  const std::string& code = ctx.lexed.code;
  // Matches both the call form `ObsCounter("...")` and the declaration form
  // `ScopedStageTimer timer("...")` (optional variable name before the paren).
  static const std::regex call_re(
      R"(\b(ObsCounter|ObsGauge|ObsHistogram|ScopedStageTimer)(\s+[A-Za-z_]\w*)?\s*\()");
  for (auto it = std::sregex_iterator(code.begin(), code.end(), call_re);
       it != std::sregex_iterator(); ++it) {
    const std::string callee = (*it)[1].str();
    // Scan the balanced argument list, collecting quoted literals.
    std::size_t p = static_cast<std::size_t>(it->position()) +
                    static_cast<std::size_t>(it->length());
    int depth = 1;
    std::vector<std::pair<std::string, std::size_t>> literals;
    while (p < code.size() && depth > 0) {
      if (code[p] == '(') ++depth;
      if (code[p] == ')') --depth;
      if (code[p] == '"') {
        const std::size_t start = ++p;
        while (p < code.size() && code[p] != '"') {
          if (code[p] == '\\') ++p;
          ++p;
        }
        literals.emplace_back(code.substr(start, p - start),
                              LineOfOffset(code, start));
      }
      ++p;
    }
    for (const auto& [literal, line] : literals) {
      if (callee == "ScopedStageTimer") {
        static const std::regex stage_grammar(R"(^[a-z][a-z0-9_]*$)");
        if (!std::regex_match(literal, stage_grammar)) {
          ctx.Emit(line, kRuleMetricName,
                   "stage name \"" + literal +
                       "\" must be a single lowercase [a-z0-9_] segment "
                       "(the registry composes the stage.<path>.ns metric)");
        }
      } else {
        std::string why;
        if (!ValidMetricLiteral(literal, prefixes, &why)) {
          ctx.Emit(line, kRuleMetricName,
                   "metric name \"" + literal + "\" " + why);
        }
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Rule: float-equality
// ---------------------------------------------------------------------------

void CheckFloatEquality(const FileContext& ctx) {
  const bool in_scope = StartsWith(ctx.rel_path, "src/analysis/") ||
                        StartsWith(ctx.rel_path, "src/dcs/") ||
                        StartsWith(ctx.rel_path, "src/common/stats_math");
  if (!in_scope) return;
  // A floating literal on either side of ==/!=. `x == 0.0` in threshold
  // code is exactly the bug class: thresholds come out of log-domain math
  // and are almost never exactly representable.
  static const std::regex re(
      R"((==|!=)\s*[-+]?(\d+\.\d*|\.\d+|\d+\.?\d*[eE][-+]?\d+)|(\d+\.\d*|\.\d+|\d+\.?\d*[eE][-+]?\d+)[fF]?\s*(==|!=))");
  EmitLineMatches(ctx, ctx.lexed.code_nostr, re, kRuleFloatEquality,
                  "floating-point equality comparison in threshold code; "
                  "compare against an explicit tolerance instead");
}

// ---------------------------------------------------------------------------
// Rule: target-intrinsics
// ---------------------------------------------------------------------------

void CheckTargetIntrinsics(const FileContext& ctx) {
  const bool in_scope =
      StartsWith(ctx.rel_path, "src/") || StartsWith(ctx.rel_path, "tools/");
  if (!in_scope) return;
  // The single translation unit built with target flags (-mavx2 on x86-64);
  // everything ISA-specific must live there, behind the BitKernelOps
  // dispatch table, so the rest of the tree stays portable and the scalar
  // CI leg keeps meaning something.
  if (ctx.rel_path == "src/common/bit_kernels_avx2.cc") return;
  static const std::regex re(
      R"(#\s*include\s*[<"]([a-z0-9]*mmintrin|immintrin|x86intrin|x86gprintrin|arm_neon|arm_sve)\.h[>"]|\b_mm\d*_\w+\s*\(|\b__m(128|256|512)[id]?\b|\bv(cntq|paddlq|ld1q|st1q|andq|orrq|addq|addvq|dupq|getq)_\w+|\buint(8x16|16x8|32x4|64x2)_t\b)");
  EmitLineMatches(ctx, ctx.lexed.code_nostr, re, kRuleTargetIntrinsics,
                  "target-specific intrinsics outside "
                  "src/common/bit_kernels_avx2.cc; add a kernel to the "
                  "dispatch table (common/bit_kernels.h) instead");
}

// ---------------------------------------------------------------------------
// Rule: raw-sync-primitive
// ---------------------------------------------------------------------------

bool IsSyncWrapperFile(const std::string& rel_path) {
  return rel_path == "src/common/sync.h" || rel_path == "src/common/sync.cc";
}

void CheckRawSyncPrimitive(const FileContext& ctx) {
  // The wrapper layer is the one place allowed to touch std primitives —
  // everything else goes through dcs::Mutex so the TSA annotations and the
  // lock-order validator actually see the lock.
  if (IsSyncWrapperFile(ctx.rel_path)) return;
  // Types and the headers that provide them. std::atomic stays legal: the
  // rule is about *locks* the analyses cannot see, not lock-free code.
  static const std::regex re(
      R"(\bstd\s*::\s*(mutex|timed_mutex|recursive_mutex|recursive_timed_mutex|shared_mutex|shared_timed_mutex|condition_variable(_any)?|lock_guard|scoped_lock|unique_lock|shared_lock|call_once|once_flag)\b|#\s*include\s*<(mutex|shared_mutex|condition_variable)>)");
  EmitLineMatches(ctx, ctx.lexed.code_nostr, re, kRuleRawSyncPrimitive,
                  "raw std synchronization primitive; use dcs::Mutex / "
                  "MutexLock / CondVar (common/sync.h) so clang "
                  "-Wthread-safety and the lock-order validator apply");
}

// ---------------------------------------------------------------------------
// Rule: manual-lock-unlock
// ---------------------------------------------------------------------------

void CheckManualLockUnlock(const FileContext& ctx) {
  if (IsSyncWrapperFile(ctx.rel_path)) return;
  // Lowercase lock()/unlock()/try_lock() are the std BasicLockable surface;
  // dcs::Mutex deliberately capitalizes Lock/Unlock/TryLock so a match here
  // is always a std primitive being driven by hand.
  static const std::regex re(
      R"((\.|->)\s*(lock|unlock|try_lock(_for|_until)?)\s*\()");
  EmitLineMatches(ctx, ctx.lexed.code_nostr, re, kRuleManualLockUnlock,
                  "manual lock()/unlock() call; scope the critical section "
                  "with RAII (dcs::MutexLock) instead");
}

}  // namespace

std::vector<std::string> ParseCatalogPrefixes(const std::string& markdown) {
  std::vector<std::string> prefixes;
  static const std::regex token_re(R"(`([a-z][a-z0-9_]*)\.[^`]*`)");
  for (auto it =
           std::sregex_iterator(markdown.begin(), markdown.end(), token_re);
       it != std::sregex_iterator(); ++it) {
    const std::string prefix = (*it)[1].str();
    if (std::find(prefixes.begin(), prefixes.end(), prefix) ==
        prefixes.end()) {
      prefixes.push_back(prefix);
    }
  }
  std::sort(prefixes.begin(), prefixes.end());
  return prefixes;
}

std::vector<Finding> LintContent(const std::string& rel_path,
                                 const std::string& content,
                                 const std::vector<std::string>& prefixes) {
  std::vector<Finding> findings;
  const LexedFile lexed = Lex(content);
  const std::vector<std::string> raw_lines = SplitLines(content);
  const FileContext ctx{rel_path, raw_lines, lexed, &findings};
  CheckUnseededRng(ctx);
  CheckUnorderedIteration(ctx);
  CheckWallClock(ctx);
  CheckMetricNames(ctx, prefixes);
  CheckFloatEquality(ctx);
  CheckTargetIntrinsics(ctx);
  CheckRawSyncPrimitive(ctx);
  CheckManualLockUnlock(ctx);
  return findings;
}

std::vector<Finding> LintTree(const LintOptions& options) {
  namespace fs = std::filesystem;
  std::vector<std::string> prefixes = options.catalog_prefixes;
  if (prefixes.empty()) {
    const fs::path catalog = options.root / "docs" / "OBSERVABILITY.md";
    std::ifstream in(catalog);
    if (in) {
      std::ostringstream buf;
      buf << in.rdbuf();
      prefixes = ParseCatalogPrefixes(buf.str());
    }
  }

  std::vector<fs::path> files = options.files;
  if (files.empty()) {
    for (const char* dir :
         {"src", "tools", "tests", "bench", "examples"}) {
      const fs::path base = options.root / dir;
      if (!fs::exists(base)) continue;
      for (const auto& entry : fs::recursive_directory_iterator(base)) {
        if (!entry.is_regular_file()) continue;
        const std::string ext = entry.path().extension().string();
        if (ext == ".h" || ext == ".cc" || ext == ".cpp") {
          files.push_back(entry.path());
        }
      }
    }
  }
  std::sort(files.begin(), files.end());

  std::vector<Finding> findings;
  for (const fs::path& file : files) {
    const fs::path abs = file.is_absolute() ? file : options.root / file;
    std::ifstream in(abs, std::ios::binary);
    if (!in) {
      findings.push_back(Finding{file.generic_string(), 0, "io-error",
                                 "could not read file"});
      continue;
    }
    std::ostringstream buf;
    buf << in.rdbuf();
    std::error_code ec;
    fs::path rel = fs::relative(abs, options.root, ec);
    if (ec || rel.empty() || *rel.begin() == "..") rel = file;
    auto file_findings =
        LintContent(rel.generic_string(), buf.str(), prefixes);
    findings.insert(findings.end(),
                    std::make_move_iterator(file_findings.begin()),
                    std::make_move_iterator(file_findings.end()));
  }
  std::sort(findings.begin(), findings.end(),
            [](const Finding& a, const Finding& b) {
              return std::tie(a.file, a.line, a.rule) <
                     std::tie(b.file, b.line, b.rule);
            });
  return findings;
}

}  // namespace lint
}  // namespace dcs
