#include "sketch/offset_sampling.h"

#include <string>

#include <gtest/gtest.h>

#include "net/packetizer.h"
#include "traffic/content_catalog.h"

namespace dcs {
namespace {

OffsetSamplingOptions SmallOptions() {
  OffsetSamplingOptions opts;
  opts.num_arrays = 10;
  opts.array_bits = 1024;
  opts.offset_period = 536;
  opts.fragment_len = 32;
  return opts;
}

Packet MakePacket(std::string payload) {
  Packet pkt;
  pkt.flow = FlowLabel{1, 2, 3, 4, 6};
  pkt.payload = std::move(payload);
  return pkt;
}

TEST(OffsetSamplingTest, DrawsOffsetsWithinPeriod) {
  Rng rng(1);
  OffsetSamplingArrays arrays(SmallOptions(), &rng);
  EXPECT_EQ(arrays.small_offsets().size(), 10u);
  EXPECT_EQ(arrays.large_offsets().size(), 20u);
  // Offsets leave room for a full fragment before their MSS boundary:
  // small offsets span the 536-byte period, large ones the 1460-byte one.
  for (std::uint32_t o : arrays.small_offsets()) EXPECT_LE(o, 536u - 32u);
  for (std::uint32_t o : arrays.large_offsets()) EXPECT_LE(o, 1460u - 32u);
}

TEST(OffsetSamplingTest, ShortPacketsSkipped) {
  Rng rng(2);
  OffsetSamplingArrays arrays(SmallOptions(), &rng);
  EXPECT_FALSE(arrays.Update(MakePacket(std::string(499, 'x'))));
  EXPECT_EQ(arrays.packets_recorded(), 0u);
  EXPECT_TRUE(arrays.Update(MakePacket(std::string(536, 'x'))));
  EXPECT_EQ(arrays.packets_recorded(), 1u);
}

TEST(OffsetSamplingTest, SmallPacketSetsOneBitPerArray) {
  Rng rng(3);
  OffsetSamplingArrays arrays(SmallOptions(), &rng);
  ContentCatalog catalog(5);
  arrays.Update(MakePacket(catalog.ContentBytes(1, 536)));
  for (const BitVector& array : arrays.arrays()) {
    EXPECT_EQ(array.CountOnes(), 1u);
  }
}

TEST(OffsetSamplingTest, LargePacketSetsUpToTwoBitsPerArray) {
  Rng rng(4);
  OffsetSamplingArrays arrays(SmallOptions(), &rng);
  ContentCatalog catalog(5);
  arrays.Update(MakePacket(catalog.ContentBytes(2, 1460)));
  for (const BitVector& array : arrays.arrays()) {
    EXPECT_GE(array.CountOnes(), 1u);
    EXPECT_LE(array.CountOnes(), 2u);
  }
}

TEST(OffsetSamplingTest, CloneLayoutSharesOffsetsNotBits) {
  Rng rng(5);
  OffsetSamplingArrays a(SmallOptions(), &rng);
  OffsetSamplingArrays b = a.CloneLayout();
  EXPECT_EQ(a.small_offsets(), b.small_offsets());
  EXPECT_EQ(a.large_offsets(), b.large_offsets());
  ContentCatalog catalog(5);
  a.Update(MakePacket(catalog.ContentBytes(3, 536)));
  EXPECT_EQ(b.arrays()[0].CountOnes(), 0u);
}

TEST(OffsetSamplingTest, ResetKeepsOffsets) {
  Rng rng(6);
  OffsetSamplingArrays arrays(SmallOptions(), &rng);
  const auto offsets = arrays.small_offsets();
  ContentCatalog catalog(5);
  arrays.Update(MakePacket(catalog.ContentBytes(4, 536)));
  arrays.Reset();
  EXPECT_EQ(arrays.small_offsets(), offsets);
  EXPECT_EQ(arrays.packets_recorded(), 0u);
  for (const BitVector& array : arrays.arrays()) {
    EXPECT_EQ(array.CountOnes(), 0u);
  }
}

// The central matching property (Section IV-A): if two routers' offsets and
// the two instances' prefix lengths satisfy (l1 - l2) = (a_i - b_j) mod 536,
// then array i of router 1 and array j of router 2 share the content's
// fragment hashes.
TEST(OffsetSamplingTest, AlignedOffsetsProduceMatchingArrays) {
  OffsetSamplingOptions opts = SmallOptions();
  opts.num_arrays = 1;

  ContentCatalog catalog(11);
  const std::string content = catalog.ContentBytes(99, 536 * 40);
  PacketizerOptions packetizer;
  packetizer.mss = 536;
  const FlowLabel flow{1, 2, 3, 4, 6};

  // Same offsets (CloneLayout) and prefix lengths congruent mod 536
  // (l1 - l2 = 536 ≡ 0 = a - a): every content-carrying packet fragment
  // matches between the two routers.
  Rng rng(7);
  OffsetSamplingArrays router1(opts, &rng);
  OffsetSamplingArrays router2 = router1.CloneLayout();
  const std::string prefix1(536 + 64, 'P');
  const std::string prefix2(64, 'Q');
  for (const Packet& pkt :
       PacketizeObject(flow, prefix1, content, packetizer)) {
    router1.Update(pkt);
  }
  for (const Packet& pkt :
       PacketizeObject(flow, prefix2, content, packetizer)) {
    router2.Update(pkt);
  }

  // The two arrays must share most fragment hashes (~40 common indices; a
  // couple lost at object boundaries).
  const std::size_t common =
      router1.arrays()[0].CommonOnes(router2.arrays()[0]);
  EXPECT_GE(common, 35u);
}

// Counter-property: with non-matching offsets the arrays share essentially
// nothing beyond chance.
TEST(OffsetSamplingTest, MisalignedOffsetsDoNotMatch) {
  OffsetSamplingOptions opts = SmallOptions();
  opts.num_arrays = 1;
  ContentCatalog catalog(11);
  const std::string content = catalog.ContentBytes(99, 536 * 40);
  PacketizerOptions packetizer;
  packetizer.mss = 536;
  const FlowLabel flow{1, 2, 3, 4, 6};

  Rng rng(8);
  OffsetSamplingArrays router1(opts, &rng);
  OffsetSamplingArrays router2 = router1.CloneLayout();
  // Same offsets but prefix lengths differing by 7 (not 0 mod 536).
  for (const Packet& pkt :
       PacketizeObject(flow, std::string(100, 'P'), content, packetizer)) {
    router1.Update(pkt);
  }
  for (const Packet& pkt :
       PacketizeObject(flow, std::string(107, 'Q'), content, packetizer)) {
    router2.Update(pkt);
  }
  const std::size_t common =
      router1.arrays()[0].CommonOnes(router2.arrays()[0]);
  EXPECT_LE(common, 4u);  // ~40*40/1024 ~ 1.6 expected by chance.
}

// Large-packet path (Section II-D extension): content transmitted in
// 1460-byte segments matches across routers when prefix lengths align
// modulo the large MSS, using the large-offset set.
TEST(OffsetSamplingTest, LargePacketsMatchModuloLargeMss) {
  OffsetSamplingOptions opts = SmallOptions();
  opts.num_arrays = 1;
  ContentCatalog catalog(13);
  const std::string content = catalog.ContentBytes(55, 1460 * 40);
  PacketizerOptions packetizer;
  packetizer.mss = 1460;
  const FlowLabel flow{1, 2, 3, 4, 6};

  Rng rng(9);
  OffsetSamplingArrays router1(opts, &rng);
  OffsetSamplingArrays router2 = router1.CloneLayout();
  // Same offsets, prefixes congruent mod 1460 (1460 + 100 vs 100).
  for (const Packet& pkt : PacketizeObject(
           flow, std::string(1460 + 100, 'P'), content, packetizer)) {
    router1.Update(pkt);
  }
  for (const Packet& pkt : PacketizeObject(
           flow, std::string(100, 'Q'), content, packetizer)) {
    router2.Update(pkt);
  }
  const std::size_t common =
      router1.arrays()[0].CommonOnes(router2.arrays()[0]);
  EXPECT_GE(common, 35u);
}

TEST(OffsetSamplingTest, LargeOffsetsSpanTheLargePeriod) {
  // With offsets confined to [0, 536) the matching above would only work
  // for ~1/3 of prefix alignments; the large set must span [0, 1460).
  OffsetSamplingOptions opts = SmallOptions();
  opts.num_arrays = 32;
  Rng rng(10);
  OffsetSamplingArrays arrays(opts, &rng);
  std::uint32_t max_large = 0;
  for (std::uint32_t o : arrays.large_offsets()) {
    max_large = std::max(max_large, o);
    EXPECT_LE(o, 1460u - 32u);
  }
  EXPECT_GT(max_large, 536u);  // 64 draws: beyond 536 w.h.p.
}

}  // namespace
}  // namespace dcs
