#include "net/trace.h"

#include <cstdio>
#include <string>

#include <gtest/gtest.h>

namespace dcs {
namespace {

Packet MakePacket(std::uint32_t src, std::string payload) {
  Packet pkt;
  pkt.flow = FlowLabel{src, 2, 3, 4, 6};
  pkt.payload = std::move(payload);
  return pkt;
}

std::string TempPath(const char* name) {
  return std::string(::testing::TempDir()) + "/" + name;
}

TEST(TraceTest, SizeAndIndexing) {
  PacketTrace trace;
  EXPECT_TRUE(trace.empty());
  trace.Add(MakePacket(1, "aaa"));
  trace.Add(MakePacket(2, "bb"));
  EXPECT_EQ(trace.size(), 2u);
  EXPECT_EQ(trace[0].flow.src_ip, 1u);
  EXPECT_EQ(trace[1].payload, "bb");
}

TEST(TraceTest, TotalWireBytes) {
  PacketTrace trace;
  trace.Add(MakePacket(1, std::string(100, 'x')));
  trace.Add(MakePacket(2, std::string(60, 'y')));
  EXPECT_EQ(trace.TotalWireBytes(), 100u + 40u + 60u + 40u);
}

TEST(TraceTest, SplitIntoEpochs) {
  PacketTrace trace;
  for (std::uint32_t i = 0; i < 10; ++i) trace.Add(MakePacket(i, "p"));
  const auto epochs = trace.SplitIntoEpochs(4);
  ASSERT_EQ(epochs.size(), 3u);
  EXPECT_EQ(epochs[0].size(), 4u);
  EXPECT_EQ(epochs[1].size(), 4u);
  EXPECT_EQ(epochs[2].size(), 2u);
  EXPECT_EQ(epochs[1].begin()->flow.src_ip, 4u);
}

TEST(TraceTest, SplitExactMultiple) {
  PacketTrace trace;
  for (std::uint32_t i = 0; i < 8; ++i) trace.Add(MakePacket(i, "p"));
  EXPECT_EQ(trace.SplitIntoEpochs(4).size(), 2u);
}

TEST(TraceTest, FileRoundTrip) {
  PacketTrace trace;
  trace.Add(MakePacket(7, std::string(536, 'q')));
  trace.Add(MakePacket(8, ""));
  Packet odd;
  odd.flow = FlowLabel{1, 2, 3, 4, 17};
  odd.header_bytes = 28;
  odd.payload = "udp-ish";
  trace.Add(odd);

  const std::string path = TempPath("trace_roundtrip.bin");
  ASSERT_TRUE(trace.WriteToFile(path).ok());
  PacketTrace loaded;
  ASSERT_TRUE(PacketTrace::ReadFromFile(path, &loaded).ok());
  ASSERT_EQ(loaded.size(), 3u);
  EXPECT_EQ(loaded[0].payload, trace[0].payload);
  EXPECT_EQ(loaded[1].payload, "");
  EXPECT_EQ(loaded[2].flow.protocol, 17);
  EXPECT_EQ(loaded[2].header_bytes, 28u);
  std::remove(path.c_str());
}

TEST(TraceTest, ReadMissingFileIsNotFound) {
  PacketTrace out;
  const Status s = PacketTrace::ReadFromFile("/nonexistent/zzz.bin", &out);
  EXPECT_EQ(s.code(), Status::Code::kNotFound);
}

TEST(TraceTest, CorruptionDetected) {
  PacketTrace trace;
  trace.Add(MakePacket(7, "payload-bytes"));
  const std::string path = TempPath("trace_corrupt.bin");
  ASSERT_TRUE(trace.WriteToFile(path).ok());

  // Flip one payload byte in the middle of the file.
  std::FILE* f = std::fopen(path.c_str(), "r+b");
  ASSERT_NE(f, nullptr);
  std::fseek(f, 45, SEEK_SET);
  std::fputc('X', f);
  std::fclose(f);

  PacketTrace out;
  const Status s = PacketTrace::ReadFromFile(path, &out);
  EXPECT_EQ(s.code(), Status::Code::kCorruption) << s.ToString();
  std::remove(path.c_str());
}

TEST(TraceTest, TruncationDetected) {
  PacketTrace trace;
  trace.Add(MakePacket(7, std::string(100, 'z')));
  const std::string path = TempPath("trace_trunc.bin");
  ASSERT_TRUE(trace.WriteToFile(path).ok());
  ASSERT_EQ(::truncate(path.c_str(), 30), 0);
  PacketTrace out;
  EXPECT_EQ(PacketTrace::ReadFromFile(path, &out).code(),
            Status::Code::kCorruption);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace dcs
