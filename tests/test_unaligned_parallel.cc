// Differential determinism suite for the parallel unaligned pipeline,
// mirroring test_aligned_parallel.cc: λ calibration, correlation-graph
// construction, DetectUnalignedPattern / DetectMultipleUnalignedPatterns,
// and full DcsMonitor unaligned reports must be bit-identical between the
// serial path (no pool) and pools of 1, 2, and 8 threads. Every parallel
// stage merges per-shard results under a total order, so any divergence
// here is a scheduling leak into the detection output.

#include <cstdint>
#include <vector>

#include <gtest/gtest.h>

#include "analysis/lambda_table.h"
#include "analysis/unaligned_detector.h"
#include "analysis/unaligned_graph_builder.h"
#include "common/bit_matrix.h"
#include "common/rng.h"
#include "common/thread_pool.h"
#include "dcs/monitor.h"
#include "sketch/digest.h"

namespace dcs {
namespace {

// Builds a matrix of `groups` groups x `arrays` rows of `bits` bits, each
// row filled with ~fill ones at random.
BitMatrix RandomGroupMatrix(std::size_t groups, std::size_t arrays,
                            std::size_t bits, double fill, Rng* rng) {
  BitMatrix matrix(groups * arrays, bits);
  for (std::size_t r = 0; r < matrix.rows(); ++r) {
    for (std::size_t c = 0; c < bits; ++c) {
      if (rng->Bernoulli(fill)) matrix.Set(r, c);
    }
  }
  return matrix;
}

// Injects a shared signal: `count` common indices set in one row of each
// listed group.
void InjectSignal(BitMatrix* matrix, std::size_t arrays,
                  const std::vector<std::size_t>& groups, std::size_t count,
                  Rng* rng) {
  std::vector<std::size_t> indices;
  while (indices.size() < count) {
    indices.push_back(rng->UniformInt(matrix->cols()));
  }
  for (std::size_t g : groups) {
    const std::size_t row = g * arrays;  // First array of the group.
    for (std::size_t c : indices) matrix->Set(row, c);
  }
}

void ExpectSameDetection(const UnalignedDetection& serial,
                         const UnalignedDetection& pooled,
                         std::size_t num_threads) {
  EXPECT_EQ(serial.core, pooled.core) << num_threads << " threads";
  EXPECT_EQ(serial.second_core, pooled.second_core)
      << num_threads << " threads";
  EXPECT_EQ(serial.detected, pooled.detected) << num_threads << " threads";
}

// Shared fixture owning one pool per tested thread count.
class UnalignedParallelTest : public ::testing::Test {
 protected:
  UnalignedParallelTest() : pool1_(1), pool2_(2), pool8_(8) {}

  std::vector<ThreadPool*> pools() { return {&pool1_, &pool2_, &pool8_}; }

  ThreadPool pool1_;
  ThreadPool pool2_;
  ThreadPool pool8_;
};

TEST_F(UnalignedParallelTest, CalibrationMatchesLazyThresholds) {
  // A calibrated table must hold exactly the thresholds the lazy path
  // computes, and Calibrate must warm every pair of observed weights.
  const std::vector<std::uint32_t> weights = {0, 3, 17, 17, 64, 120, 121,
                                              256, 300, 301, 302, 511};
  for (ThreadPool* pool : pools()) {
    const LambdaTable calibrated(512, 1e-5);
    calibrated.Calibrate(weights, pool);
    const std::uint64_t after_calibration = calibrated.cache_misses();
    const LambdaTable lazy(512, 1e-5);
    for (std::uint32_t i : weights) {
      for (std::uint32_t j : weights) {
        if (i == 0 || j == 0) continue;
        EXPECT_EQ(calibrated.Threshold(i, j), lazy.Threshold(i, j))
            << i << "," << j << " @ " << pool->num_threads() << " threads";
      }
    }
    // Every lookup above hit the warm cache.
    EXPECT_EQ(calibrated.cache_misses(), after_calibration)
        << pool->num_threads() << " threads";
    // 10 distinct non-zero weights -> 55 unordered pairs, each computed
    // exactly once regardless of sharding.
    EXPECT_EQ(after_calibration, 55u) << pool->num_threads() << " threads";
  }
}

TEST_F(UnalignedParallelTest, GraphBuildMatchesSerial) {
  for (std::uint64_t seed = 1; seed <= 4; ++seed) {
    Rng rng(seed);
    BitMatrix matrix = RandomGroupMatrix(60, 4, 512, 0.2, &rng);
    InjectSignal(&matrix, 4, {3, 17, 29, 41, 55}, 100, &rng);
    const LambdaTable lambda(512, 1e-6);
    GraphBuilderOptions serial;
    serial.arrays_per_group = 4;
    const Graph reference = BuildCorrelationGraph(matrix, lambda, serial);
    EXPECT_GE(reference.num_edges(), 10u) << "seed " << seed;
    for (ThreadPool* pool : pools()) {
      GraphBuilderOptions parallel = serial;
      parallel.scan.pool = pool;
      // A fresh table per run: the pooled build must match even without
      // the serial build's warm cache.
      const LambdaTable cold(512, 1e-6);
      const Graph pooled = BuildCorrelationGraph(matrix, cold, parallel);
      EXPECT_EQ(reference.edges(), pooled.edges())
          << "seed " << seed << ", " << pool->num_threads() << " threads";
    }
  }
}

TEST_F(UnalignedParallelTest, SampledGraphBuildMatchesSerial) {
  Rng rng(9);
  BitMatrix matrix = RandomGroupMatrix(80, 3, 256, 0.25, &rng);
  InjectSignal(&matrix, 3, {0, 10, 20, 30, 40, 50, 60, 70}, 60, &rng);
  const LambdaTable lambda(256, 1e-5);
  GraphBuilderOptions serial;
  serial.arrays_per_group = 3;
  serial.scan.group_sample_rate = 0.4;
  serial.scan.sample_seed = 5;
  const Graph reference = BuildCorrelationGraph(matrix, lambda, serial);
  for (ThreadPool* pool : pools()) {
    GraphBuilderOptions parallel = serial;
    parallel.scan.pool = pool;
    const Graph pooled = BuildCorrelationGraph(matrix, lambda, parallel);
    EXPECT_EQ(reference.edges(), pooled.edges())
        << pool->num_threads() << " threads";
  }
}

// Two planted clusters: the first becomes the core, the second feeds the
// survivor expansion and second FindCore, covering every sharded stage of
// the detector.
Graph TwoClusterGraph(std::uint64_t seed) {
  Rng rng(seed);
  BitMatrix matrix = RandomGroupMatrix(64, 4, 512, 0.2, &rng);
  InjectSignal(&matrix, 4, {2, 7, 12, 17, 22, 27, 32, 37, 42, 47}, 110,
               &rng);
  InjectSignal(&matrix, 4, {3, 9, 15, 21, 33, 39, 45, 51}, 90, &rng);
  const LambdaTable lambda(512, 1e-5);
  GraphBuilderOptions opts;
  opts.arrays_per_group = 4;
  return BuildCorrelationGraph(matrix, lambda, opts);
}

TEST_F(UnalignedParallelTest, DetectionMatchesSerial) {
  UnalignedDetectorOptions options;
  options.beta = 8;
  options.expand_min_edges = 2;
  for (std::uint64_t seed = 11; seed <= 13; ++seed) {
    const Graph graph = TwoClusterGraph(seed);
    const UnalignedDetection reference =
        DetectUnalignedPattern(graph, options);
    EXPECT_EQ(reference.core.size(), 8u) << "seed " << seed;
    for (ThreadPool* pool : pools()) {
      ExpectSameDetection(
          reference,
          DetectUnalignedPattern(graph, options, AnalysisContext{pool}),
          pool->num_threads());
    }
  }
}

TEST_F(UnalignedParallelTest, MultiPatternMatchesSerial) {
  MultiPatternOptions options;
  options.detector.beta = 8;
  options.detector.expand_min_edges = 2;
  options.max_patterns = 3;
  options.p_background = 1e-3;
  for (std::uint64_t seed = 21; seed <= 23; ++seed) {
    const Graph graph = TwoClusterGraph(seed);
    const std::vector<UnalignedDetection> reference =
        DetectMultipleUnalignedPatterns(graph, options);
    EXPECT_GE(reference.size(), 1u) << "seed " << seed;
    for (ThreadPool* pool : pools()) {
      const std::vector<UnalignedDetection> pooled =
          DetectMultipleUnalignedPatterns(graph, options,
                                          AnalysisContext{pool});
      ASSERT_EQ(pooled.size(), reference.size())
          << "seed " << seed << ", " << pool->num_threads() << " threads";
      for (std::size_t i = 0; i < reference.size(); ++i) {
        ExpectSameDetection(reference[i], pooled[i], pool->num_threads());
      }
    }
  }
}

// ---------- Full monitor epoch ----------

Digest UnalignedDigest(std::uint32_t router, std::size_t groups,
                       std::size_t arrays, std::size_t bits, Rng* rng) {
  Digest digest;
  digest.router_id = router;
  digest.kind = DigestKind::kUnaligned;
  digest.num_groups = static_cast<std::uint32_t>(groups);
  digest.arrays_per_group = static_cast<std::uint32_t>(arrays);
  digest.rows.reserve(groups * arrays);
  for (std::size_t r = 0; r < groups * arrays; ++r) {
    BitVector row(bits);
    for (std::size_t c = 0; c < bits; ++c) {
      if (rng->Bernoulli(0.2)) row.Set(c);
    }
    digest.rows.push_back(std::move(row));
  }
  return digest;
}

// Routers 0..3, 12 groups each; the first group of routers 0-2 shares a
// strong signal so the epoch alarms.
std::vector<Digest> EpochDigests(std::uint64_t seed) {
  Rng rng(seed);
  const std::size_t bits = 512;
  const std::size_t arrays = 4;
  std::vector<Digest> digests;
  for (std::uint32_t r = 0; r < 4; ++r) {
    digests.push_back(UnalignedDigest(r, 12, arrays, bits, &rng));
  }
  std::vector<std::size_t> indices;
  while (indices.size() < 130) {
    indices.push_back(rng.UniformInt(bits));
  }
  for (std::uint32_t r = 0; r < 3; ++r) {
    for (std::uint32_t g : {0u, 4u, 8u}) {
      BitVector& row = digests[r].rows[g * arrays];
      for (std::size_t c : indices) row.Set(c);
    }
  }
  return digests;
}

void ExpectSameReport(const UnalignedReport& serial,
                      const UnalignedReport& pooled,
                      std::size_t num_threads) {
  EXPECT_EQ(serial.common_content_detected, pooled.common_content_detected)
      << num_threads << " threads";
  EXPECT_EQ(serial.largest_component, pooled.largest_component)
      << num_threads << " threads";
  EXPECT_EQ(serial.er_threshold, pooled.er_threshold)
      << num_threads << " threads";
  EXPECT_EQ(serial.groups, pooled.groups) << num_threads << " threads";
  EXPECT_EQ(serial.clusters, pooled.clusters) << num_threads << " threads";
  EXPECT_EQ(serial.routers, pooled.routers) << num_threads << " threads";
  EXPECT_EQ(serial.num_vertices, pooled.num_vertices)
      << num_threads << " threads";
  EXPECT_EQ(serial.num_edges, pooled.num_edges)
      << num_threads << " threads";
}

TEST_F(UnalignedParallelTest, MonitorReportsMatchSerial) {
  UnalignedPipelineOptions unaligned;
  unaligned.er_threshold = 6;
  unaligned.detector.beta = 9;
  unaligned.detector.expand_min_edges = 2;
  const AlignedPipelineOptions aligned;
  for (std::uint64_t seed = 31; seed <= 32; ++seed) {
    const std::vector<Digest> digests = EpochDigests(seed);
    DcsMonitor serial(aligned, unaligned);
    for (const Digest& d : digests) {
      ASSERT_TRUE(serial.AddDigest(d).ok());
    }
    const UnalignedReport reference = serial.AnalyzeUnaligned();
    EXPECT_TRUE(reference.common_content_detected) << "seed " << seed;
    const std::vector<UnalignedReport> reference_multi =
        serial.AnalyzeUnalignedAll(3);
    for (ThreadPool* pool : pools()) {
      DcsMonitor pooled(aligned, unaligned, AnalysisContext{pool});
      for (const Digest& d : digests) {
        ASSERT_TRUE(pooled.AddDigest(d).ok());
      }
      ExpectSameReport(reference, pooled.AnalyzeUnaligned(),
                       pool->num_threads());
      const std::vector<UnalignedReport> pooled_multi =
          pooled.AnalyzeUnalignedAll(3);
      ASSERT_EQ(pooled_multi.size(), reference_multi.size())
          << "seed " << seed << ", " << pool->num_threads() << " threads";
      for (std::size_t i = 0; i < reference_multi.size(); ++i) {
        ExpectSameReport(reference_multi[i], pooled_multi[i],
                         pool->num_threads());
      }
    }
  }
}

TEST_F(UnalignedParallelTest, DegenerateInputsAreSafeOnPools) {
  UnalignedDetectorOptions options;
  options.beta = 4;
  Graph empty(0);
  empty.Finalize();
  Graph tiny(3);
  tiny.AddEdge(0, 1);
  tiny.Finalize();
  for (ThreadPool* pool : pools()) {
    const AnalysisContext context{pool};
    EXPECT_TRUE(DetectUnalignedPattern(empty, options, context).core.empty());
    const UnalignedDetection detection =
        DetectUnalignedPattern(tiny, options, context);
    EXPECT_EQ(detection.core.size(), 3u);
    // One-group matrices produce pairless scans on every pool.
    BitMatrix one(2, 64);
    one.Set(0, 3);
    const LambdaTable lambda(64, 1e-3);
    GraphBuilderOptions builder;
    builder.arrays_per_group = 2;
    builder.scan.pool = pool;
    const Graph g = BuildCorrelationGraph(one, lambda, builder);
    EXPECT_EQ(g.num_vertices(), 1u);
    EXPECT_EQ(g.num_edges(), 0u);
  }
}

}  // namespace
}  // namespace dcs
