// Seeded fuzzing of the digest wire format (docs/ROBUSTNESS.md).
//
// Three properties, each over thousands of randomized trials:
//  1. Round trip: Decode(Encode(d)) == d for arbitrary digests, including
//     dense, sparse, empty, and zero-row shapes.
//  2. Integrity: any content-altering mutation of an encoding (bit flips,
//     truncation, garbage, inserted or deleted bytes) makes Decode return an
//     error Status — never a crash, hang, or silently wrong digest.
//  3. Resealed lies: mutations that *reseal* the checksum (forged epoch or
//     shape fields) must still never crash the decoder, and a shape lie must
//     never decode back to the original digest.
//
// Trial count comes from DCS_TRIALS (default 10000; CI's fuzz-corpus job
// raises it under ASan/UBSan). Master seeds come from
// tests/corpus/digest_fuzz_seeds.txt so every failure is replayable; the
// failure message prints the (seed, trial) pair to add to the corpus.

#include <cstdlib>
#include <fstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "sketch/digest.h"
#include "testing/fault_injector.h"

namespace dcs {
namespace {

std::vector<std::uint64_t> LoadCorpusSeeds() {
  std::vector<std::uint64_t> seeds;
  std::ifstream in(std::string(DCS_CORPUS_DIR) + "/digest_fuzz_seeds.txt");
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty() || line[0] == '#') continue;
    seeds.push_back(std::strtoull(line.c_str(), nullptr, 10));
  }
  return seeds;
}

std::size_t TotalTrials() {
  const char* env = std::getenv("DCS_TRIALS");
  if (env == nullptr || env[0] == '\0') return 10000;
  const long long n = std::strtoll(env, nullptr, 10);
  return n > 0 ? static_cast<std::size_t>(n) : 10000;
}

// A random digest spanning the whole shape space: both kinds, sparse and
// dense rows, occasionally zero rows or zero-size rows.
Digest RandomDigest(Rng* rng) {
  Digest digest;
  digest.router_id = static_cast<std::uint32_t>(rng->Next());
  digest.epoch_id = rng->Next();
  const std::uint64_t shape = rng->UniformInt(8);
  if (shape == 0) {
    // Degenerate: no rows at all (num_groups stays 1 so the header is
    // internally consistent for the monitor, but Decode doesn't care).
    digest.kind = rng->Bernoulli(0.5) ? DigestKind::kAligned
                                      : DigestKind::kUnaligned;
    digest.packets_covered = 0;
    digest.raw_bytes_covered = 0;
    return digest;
  }
  const std::size_t row_bits = 1 + rng->UniformInt(2048);
  std::size_t num_rows = 1;
  if (rng->Bernoulli(0.5)) {
    digest.kind = DigestKind::kAligned;
  } else {
    digest.kind = DigestKind::kUnaligned;
    digest.num_groups = static_cast<std::uint32_t>(1 + rng->UniformInt(6));
    digest.arrays_per_group =
        static_cast<std::uint32_t>(1 + rng->UniformInt(4));
    num_rows = static_cast<std::size_t>(digest.num_groups) *
               digest.arrays_per_group;
  }
  for (std::size_t r = 0; r < num_rows; ++r) {
    BitVector row(row_bits);
    // Per-row density: empty, sparse, half, or nearly full, so both row
    // encodings (and the dense/sparse break-even point) get fuzzed.
    const double density[] = {0.0, 0.01, 0.5, 0.97};
    const double d = density[rng->UniformInt(4)];
    for (std::size_t i = 0; i < row_bits; ++i) {
      if (rng->Bernoulli(d)) row.Set(i);
    }
    digest.rows.push_back(std::move(row));
  }
  digest.packets_covered = rng->UniformInt(1 << 20);
  digest.raw_bytes_covered = rng->UniformInt(1ULL << 30);
  return digest;
}

TEST(DigestFuzzTest, RoundTripProperty) {
  const std::vector<std::uint64_t> seeds = LoadCorpusSeeds();
  ASSERT_FALSE(seeds.empty());
  const std::size_t trials_per_seed =
      (TotalTrials() + seeds.size() - 1) / (2 * seeds.size()) + 1;
  for (const std::uint64_t seed : seeds) {
    Rng rng(seed);
    for (std::size_t t = 0; t < trials_per_seed; ++t) {
      const Digest original = RandomDigest(&rng);
      const std::vector<std::uint8_t> bytes = original.Encode();
      EXPECT_EQ(bytes.size(), original.EncodedSizeBytes())
          << "seed=" << seed << " trial=" << t;
      Digest decoded;
      const Status status = Digest::Decode(bytes, &decoded);
      ASSERT_TRUE(status.ok())
          << "seed=" << seed << " trial=" << t << ": " << status.ToString();
      EXPECT_TRUE(decoded == original) << "seed=" << seed << " trial=" << t;
    }
  }
}

TEST(DigestFuzzTest, MutatedEncodingsAlwaysError) {
  const std::vector<std::uint64_t> seeds = LoadCorpusSeeds();
  ASSERT_FALSE(seeds.empty());
  const std::size_t trials_per_seed =
      TotalTrials() / seeds.size() + 1;
  for (const std::uint64_t seed : seeds) {
    Rng rng(seed);
    for (std::size_t t = 0; t < trials_per_seed; ++t) {
      Rng shape_rng = rng.Fork();
      Rng mutate_rng = rng.Fork();
      const Digest original = RandomDigest(&shape_rng);
      const std::vector<std::uint8_t> mutated =
          FaultInjector::MutateForFuzz(original.Encode(), &mutate_rng);
      Digest decoded;
      const Status status = Digest::Decode(mutated, &decoded);
      // Every MutateForFuzz choice alters the buffer without resealing, so
      // the checksum (or a parse bound) must catch it.
      EXPECT_FALSE(status.ok()) << "seed=" << seed << " trial=" << t
                                << " size=" << mutated.size();
    }
  }
}

TEST(DigestFuzzTest, ResealedLiesNeverCrashAndNeverRoundTrip) {
  const std::vector<std::uint64_t> seeds = LoadCorpusSeeds();
  ASSERT_FALSE(seeds.empty());
  const std::size_t trials_per_seed =
      (TotalTrials() + seeds.size() - 1) / (4 * seeds.size()) + 1;
  for (const std::uint64_t seed : seeds) {
    Rng rng(seed);
    for (std::size_t t = 0; t < trials_per_seed; ++t) {
      Rng shape_rng = rng.Fork();
      Rng mutate_rng = rng.Fork();
      const Digest original = RandomDigest(&shape_rng);
      const std::vector<std::uint8_t> bytes = original.Encode();

      // Shape lie: resealed, so the checksum passes. The decoder must
      // survive (its DigestWireLayout allocation bounds are the backstop
      // for the absurd claims) and must never hand back the original.
      const std::vector<std::uint8_t> lied =
          FaultInjector::LieAboutShape(bytes, &mutate_rng);
      Digest decoded;
      const Status status = Digest::Decode(lied, &decoded);
      if (status.ok() && !original.rows.empty()) {
        // Exception: on a zero-row digest a row_bits lie is semantically
        // invisible (the field sizes rows that do not exist), so only
        // digests with rows must never round-trip through a lie.
        EXPECT_FALSE(decoded == original)
            << "seed=" << seed << " trial=" << t
            << ": shape lie decoded back to the original";
      }

      // Epoch lie: fully well-formed apart from the forged epoch_id — it
      // must decode, carrying exactly the forged value.
      const std::uint64_t forged_epoch = mutate_rng.Next();
      const std::vector<std::uint8_t> forged =
          FaultInjector::RewriteEpoch(bytes, forged_epoch);
      Digest forged_decoded;
      ASSERT_TRUE(Digest::Decode(forged, &forged_decoded).ok())
          << "seed=" << seed << " trial=" << t;
      EXPECT_EQ(forged_decoded.epoch_id, forged_epoch)
          << "seed=" << seed << " trial=" << t;
    }
  }
}

// The decoder's allocation bounds directly: a tiny message claiming absurd
// dimensions must be rejected before any row memory is reserved (under the
// CI fuzz-corpus job this runs with AddressSanitizer, which would flag the
// allocation itself).
TEST(DigestFuzzTest, AbsurdDimensionClaimsRejectedCheaply) {
  Digest digest;
  digest.kind = DigestKind::kAligned;
  digest.rows.push_back(BitVector(64));
  std::vector<std::uint8_t> bytes = digest.Encode();

  auto patch_u64 = [](std::vector<std::uint8_t>* b, std::size_t offset,
                      std::uint64_t v) {
    for (std::size_t i = 0; i < 8; ++i) {
      (*b)[offset + i] = static_cast<std::uint8_t>(v >> (8 * i));
    }
  };

  // num_rows far beyond what the message could carry.
  std::vector<std::uint8_t> lie = bytes;
  patch_u64(&lie, DigestWireLayout::kNumRowsOffset, 1ULL << 62);
  Digest::ResealChecksum(&lie);
  Digest out;
  EXPECT_EQ(Digest::Decode(lie, &out).code(), Status::Code::kCorruption);

  // row_bits beyond the per-row cap.
  lie = bytes;
  patch_u64(&lie, DigestWireLayout::kRowBitsOffset,
            DigestWireLayout::kMaxRowBits + 1);
  Digest::ResealChecksum(&lie);
  EXPECT_EQ(Digest::Decode(lie, &out).code(), Status::Code::kCorruption);

  // num_rows * row_bytes overflowing the total-allocation cap while each
  // value alone looks plausible.
  lie = bytes;
  patch_u64(&lie, DigestWireLayout::kNumRowsOffset, lie.size() - 1);
  patch_u64(&lie, DigestWireLayout::kRowBitsOffset,
            DigestWireLayout::kMaxRowBits);
  Digest::ResealChecksum(&lie);
  EXPECT_EQ(Digest::Decode(lie, &out).code(), Status::Code::kCorruption);
}

}  // namespace
}  // namespace dcs
