#include "analysis/synthetic_matrix.h"

#include <algorithm>
#include <cmath>

#include <gtest/gtest.h>

#include "analysis/weight_screen.h"

namespace dcs {
namespace {

SyntheticAlignedOptions SmallOptions() {
  SyntheticAlignedOptions opts;
  opts.m = 200;
  opts.n = 20000;
  opts.n_prime = 300;
  opts.pattern_rows = 40;
  opts.pattern_cols = 12;
  return opts;
}

TEST(SyntheticScreenedTest, ShapeAndGroundTruth) {
  Rng rng(1);
  const SyntheticScreened s = SampleScreenedAligned(SmallOptions(), &rng);
  EXPECT_EQ(s.screened.columns.size(), 300u);
  EXPECT_EQ(s.screened.num_rows, 200u);
  EXPECT_EQ(s.screened.num_source_columns, 20000u);
  EXPECT_EQ(s.pattern_rows.size(), 40u);
  EXPECT_TRUE(std::is_sorted(s.pattern_rows.begin(), s.pattern_rows.end()));
  EXPECT_EQ(s.is_pattern_column.size(), 300u);
}

TEST(SyntheticScreenedTest, WeightsDescendAndMatchBits) {
  Rng rng(2);
  const SyntheticScreened s = SampleScreenedAligned(SmallOptions(), &rng);
  for (std::size_t i = 0; i < s.screened.columns.size(); ++i) {
    EXPECT_EQ(s.screened.columns[i].CountOnes(), s.screened.weights[i])
        << "column " << i;
    if (i > 0) {
      EXPECT_GE(s.screened.weights[i - 1], s.screened.weights[i]);
    }
  }
}

TEST(SyntheticScreenedTest, PatternColumnsContainAllPatternRows) {
  Rng rng(3);
  const SyntheticScreened s = SampleScreenedAligned(SmallOptions(), &rng);
  std::size_t pattern_cols = 0;
  for (std::size_t i = 0; i < s.screened.columns.size(); ++i) {
    if (!s.is_pattern_column[i]) continue;
    ++pattern_cols;
    for (std::uint32_t r : s.pattern_rows) {
      EXPECT_TRUE(s.screened.columns[i].Test(r));
    }
  }
  EXPECT_EQ(pattern_cols, s.pattern_columns_in_screen);
  EXPECT_GT(pattern_cols, 0u);
}

TEST(SyntheticScreenedTest, NoPatternCaseHasBinomialWeights) {
  SyntheticAlignedOptions opts = SmallOptions();
  opts.pattern_rows = 0;
  opts.pattern_cols = 0;
  Rng rng(4);
  const SyntheticScreened s = SampleScreenedAligned(opts, &rng);
  EXPECT_TRUE(s.pattern_rows.empty());
  EXPECT_EQ(s.pattern_columns_in_screen, 0u);
  // Top columns of Binomial(200, 1/2): the cutoff should sit a few sigma
  // above the mean 100 (sigma ~ 7.1). 300/20000 => ~2.4 sigma.
  EXPECT_GT(s.screened.weights.back(), 110u);
  EXPECT_LT(s.screened.weights.front(), 145u);
}

// Cross-validation of the sampler against the literal matrix: the number of
// pattern columns surviving the screen must match in distribution. We
// compare means over repeated trials.
TEST(SyntheticScreenedTest, SamplerMatchesLiteralMatrixStatistics) {
  SyntheticAlignedOptions opts;
  opts.m = 100;
  opts.n = 4000;
  opts.n_prime = 120;
  opts.pattern_rows = 25;
  opts.pattern_cols = 10;
  constexpr int kTrials = 60;

  Rng rng_fast(5);
  double fast_mean = 0.0;
  for (int t = 0; t < kTrials; ++t) {
    fast_mean += static_cast<double>(
        SampleScreenedAligned(opts, &rng_fast).pattern_columns_in_screen);
  }
  fast_mean /= kTrials;

  Rng rng_lit(6);
  double literal_mean = 0.0;
  for (int t = 0; t < kTrials; ++t) {
    std::vector<std::uint32_t> pattern_rows;
    std::vector<std::size_t> pattern_cols;
    const BitMatrix matrix =
        SampleLiteralAligned(opts, &rng_lit, &pattern_rows, &pattern_cols);
    const ScreenedColumns screened =
        ScreenHeaviestColumns(matrix, opts.n_prime);
    std::size_t survivors = 0;
    for (std::size_t id : screened.original_ids) {
      if (std::binary_search(pattern_cols.begin(), pattern_cols.end(), id)) {
        ++survivors;
      }
    }
    literal_mean += static_cast<double>(survivors);
  }
  literal_mean /= kTrials;

  // Means agree within Monte-Carlo noise (sigma per trial ~ 1.5 columns).
  EXPECT_NEAR(fast_mean, literal_mean, 3.0 * 1.5 / std::sqrt(kTrials) * 2);
}

TEST(SampleLiteralAlignedTest, PatternPlantedExactly) {
  SyntheticAlignedOptions opts;
  opts.m = 50;
  opts.n = 500;
  opts.pattern_rows = 10;
  opts.pattern_cols = 6;
  Rng rng(7);
  std::vector<std::uint32_t> rows;
  std::vector<std::size_t> cols;
  const BitMatrix matrix = SampleLiteralAligned(opts, &rng, &rows, &cols);
  ASSERT_EQ(rows.size(), 10u);
  ASSERT_EQ(cols.size(), 6u);
  for (std::uint32_t r : rows) {
    for (std::size_t c : cols) {
      EXPECT_TRUE(matrix.Test(r, c)) << r << "," << c;
    }
  }
}

TEST(SampleLiteralAlignedTest, NoiseDensityIsHalf) {
  SyntheticAlignedOptions opts;
  opts.m = 64;
  opts.n = 1 << 12;
  Rng rng(8);
  std::vector<std::uint32_t> rows;
  std::vector<std::size_t> cols;
  const BitMatrix matrix = SampleLiteralAligned(opts, &rng, &rows, &cols);
  double ones = 0.0;
  for (std::size_t r = 0; r < opts.m; ++r) {
    ones += static_cast<double>(matrix.row(r).CountOnes());
  }
  const double density =
      ones / (static_cast<double>(opts.m) * static_cast<double>(opts.n));
  EXPECT_NEAR(density, 0.5, 0.01);
}

}  // namespace
}  // namespace dcs
