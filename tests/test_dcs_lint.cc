// Tests for the project determinism linter (tools/dcs_lint_lib.h).
//
// Each rule gets three fixtures: a positive hit, the same hit suppressed
// with `// dcs-lint: allow(<rule>)`, and a clean variant. A final suite
// self-scans the real source tree and asserts it is lint-clean — the same
// gate CI's static-analysis job enforces.

#include "dcs_lint_lib.h"

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <regex>
#include <sstream>
#include <string>
#include <vector>

#include "gtest/gtest.h"

namespace dcs {
namespace lint {
namespace {

const std::vector<std::string> kPrefixes = {"detector", "ingest", "monitor",
                                            "sketch"};

std::vector<std::string> RulesIn(const std::vector<Finding>& findings) {
  std::vector<std::string> rules;
  rules.reserve(findings.size());
  for (const Finding& f : findings) rules.push_back(f.rule);
  return rules;
}

bool HasRule(const std::vector<Finding>& findings, const std::string& rule) {
  const std::vector<std::string> rules = RulesIn(findings);
  return std::find(rules.begin(), rules.end(), rule) != rules.end();
}

// ---------------------------------------------------------------------------
// unseeded-rng
// ---------------------------------------------------------------------------

TEST(UnseededRngRuleTest, FlagsMt19937AndRandAndRandomDevice) {
  const auto f1 = LintContent("src/analysis/foo.cc",
                              "std::mt19937 gen;\n", kPrefixes);
  ASSERT_EQ(f1.size(), 1u);
  EXPECT_EQ(f1[0].rule, kRuleUnseededRng);
  EXPECT_EQ(f1[0].line, 1u);

  const auto f2 = LintContent("tests/foo.cc",
                              "int x = rand();\n", kPrefixes);
  EXPECT_TRUE(HasRule(f2, kRuleUnseededRng));

  const auto f3 = LintContent("bench/foo.cc",
                              "std::random_device rd;\n", kPrefixes);
  EXPECT_TRUE(HasRule(f3, kRuleUnseededRng));
}

TEST(UnseededRngRuleTest, SuppressionOnSameLineAndLineAbove) {
  const auto same = LintContent(
      "src/foo.cc",
      "std::mt19937 gen;  // dcs-lint: allow(unseeded-rng)\n", kPrefixes);
  EXPECT_TRUE(same.empty());

  const auto above = LintContent(
      "src/foo.cc",
      "// dcs-lint: allow(unseeded-rng)\nstd::mt19937 gen;\n", kPrefixes);
  EXPECT_TRUE(above.empty());

  // A suppression for a *different* rule does not apply.
  const auto other = LintContent(
      "src/foo.cc",
      "std::mt19937 gen;  // dcs-lint: allow(wall-clock)\n", kPrefixes);
  EXPECT_TRUE(HasRule(other, kRuleUnseededRng));
}

TEST(UnseededRngRuleTest, CleanCases) {
  // The project Rng is the sanctioned source.
  EXPECT_TRUE(LintContent("src/analysis/foo.cc",
                          "Rng rng(42);\nrng.UniformInt(7);\n", kPrefixes)
                  .empty());
  // common/rng.cc itself is exempt.
  EXPECT_TRUE(LintContent("src/common/rng.cc",
                          "std::random_device rd;\n", kPrefixes)
                  .empty());
  // Mentions in comments and strings are not code.
  EXPECT_TRUE(LintContent("src/foo.cc",
                          "// rand() would be wrong here\n"
                          "const char* s = \"mt19937\";\n",
                          kPrefixes)
                  .empty());
  // Identifiers merely containing 'rand' are fine.
  EXPECT_TRUE(LintContent("src/foo.cc", "int operand(int x);\n", kPrefixes)
                  .empty());
}

// ---------------------------------------------------------------------------
// unordered-iteration
// ---------------------------------------------------------------------------

constexpr const char* kUnorderedLoop =
    "std::unordered_map<int, int> counts;\n"
    "for (const auto& [k, v] : counts) {\n"
    "  use(k, v);\n"
    "}\n";

TEST(UnorderedIterationRuleTest, FlagsRangeForInAnalysis) {
  const auto findings =
      LintContent("src/analysis/foo.cc", kUnorderedLoop, kPrefixes);
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].rule, kRuleUnorderedIteration);
  EXPECT_EQ(findings[0].line, 2u);
}

TEST(UnorderedIterationRuleTest, FlagsExplicitBeginWalk) {
  const auto findings = LintContent(
      "src/analysis/foo.cc",
      "std::unordered_set<std::uint64_t> seen;\n"
      "auto it = seen.begin();\n",
      kPrefixes);
  EXPECT_TRUE(HasRule(findings, kRuleUnorderedIteration));
}

TEST(UnorderedIterationRuleTest, Suppressed) {
  const auto findings = LintContent(
      "src/analysis/foo.cc",
      "std::unordered_map<int, int> counts;\n"
      "// hash order irrelevant: results re-sorted below\n"
      "// dcs-lint: allow(unordered-iteration)\n"
      "for (const auto& [k, v] : counts) {\n"
      "}\n",
      kPrefixes);
  EXPECT_TRUE(findings.empty());
}

TEST(UnorderedIterationRuleTest, CleanCases) {
  // Lookup without iteration is fine.
  EXPECT_TRUE(LintContent("src/analysis/foo.cc",
                          "std::unordered_map<int, int> m;\n"
                          "m[3] = 4;\n"
                          "if (m.count(3)) use(m.at(3));\n",
                          kPrefixes)
                  .empty());
  // Same loop outside src/analysis/ is out of scope.
  EXPECT_TRUE(
      LintContent("src/baseline/foo.cc", kUnorderedLoop, kPrefixes).empty());
  // Iterating an ordered container with a similar name is fine.
  EXPECT_TRUE(LintContent("src/analysis/foo.cc",
                          "std::map<int, int> counts;\n"
                          "for (const auto& [k, v] : counts) use(k, v);\n",
                          kPrefixes)
                  .empty());
}

// ---------------------------------------------------------------------------
// wall-clock
// ---------------------------------------------------------------------------

TEST(WallClockRuleTest, FlagsChronoAndPosixClocks) {
  const auto f1 = LintContent(
      "src/analysis/foo.cc",
      "auto t = std::chrono::steady_clock::now();\n", kPrefixes);
  ASSERT_EQ(f1.size(), 1u);
  EXPECT_EQ(f1[0].rule, kRuleWallClock);

  const auto f2 =
      LintContent("src/dcs/foo.cc", "time_t t = time(nullptr);\n", kPrefixes);
  EXPECT_TRUE(HasRule(f2, kRuleWallClock));

  const auto f3 = LintContent("tools/foo.cc",
                              "gettimeofday(&tv, nullptr);\n", kPrefixes);
  EXPECT_TRUE(HasRule(f3, kRuleWallClock));
}

TEST(WallClockRuleTest, Suppressed) {
  const auto findings = LintContent(
      "src/dcs/foo.cc",
      "auto t = std::chrono::steady_clock::now();"
      "  // dcs-lint: allow(wall-clock)\n",
      kPrefixes);
  EXPECT_TRUE(findings.empty());
}

TEST(WallClockRuleTest, CleanCases) {
  // src/obs/ is the sanctioned home for clock reads.
  EXPECT_TRUE(LintContent("src/obs/stage_timer.cc",
                          "auto t = std::chrono::steady_clock::now();\n",
                          kPrefixes)
                  .empty());
  // Benches measure time by design; they are out of scope.
  EXPECT_TRUE(LintContent("bench/bench_foo.cc",
                          "auto t = std::chrono::steady_clock::now();\n",
                          kPrefixes)
                  .empty());
  // Durations without a clock read are fine.
  EXPECT_TRUE(LintContent("src/dcs/foo.cc",
                          "std::chrono::nanoseconds budget(5);\n", kPrefixes)
                  .empty());
}

// ---------------------------------------------------------------------------
// metric-name
// ---------------------------------------------------------------------------

TEST(MetricNameRuleTest, FlagsUncataloguedPrefixAndBadGrammar) {
  const auto f1 = LintContent(
      "src/dcs/foo.cc", "ObsCounter(\"monitr.digests\").Increment();\n",
      kPrefixes);
  ASSERT_EQ(f1.size(), 1u);
  EXPECT_EQ(f1[0].rule, kRuleMetricName);
  EXPECT_NE(f1[0].message.find("monitr"), std::string::npos);

  const auto f2 = LintContent(
      "src/dcs/foo.cc", "ObsGauge(\"Monitor.CamelCase\").Set(1);\n",
      kPrefixes);
  EXPECT_TRUE(HasRule(f2, kRuleMetricName));

  // No subsystem prefix at all.
  const auto f3 =
      LintContent("src/dcs/foo.cc", "ObsCounter(\"epochs\");\n", kPrefixes);
  EXPECT_TRUE(HasRule(f3, kRuleMetricName));

  // Stage names must be single segments (the registry adds stage.<path>.ns).
  const auto f4 = LintContent(
      "src/dcs/foo.cc", "ScopedStageTimer timer(\"stage.analyze.ns\");\n",
      kPrefixes);
  EXPECT_TRUE(HasRule(f4, kRuleMetricName));
}

TEST(MetricNameRuleTest, FindsLiteralsInsideMultilineAndTernaryCalls) {
  const auto findings = LintContent(
      "src/dcs/foo.cc",
      "ObsCounter(aligned\n"
      "               ? \"monitor.digests_received.aligned\"\n"
      "               : \"wrongprefix.digests_received.unaligned\")\n"
      "    .Increment();\n",
      kPrefixes);
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].line, 3u);
  EXPECT_NE(findings[0].message.find("wrongprefix"), std::string::npos);
}

TEST(MetricNameRuleTest, Suppressed) {
  const auto findings = LintContent(
      "src/dcs/foo.cc",
      "// dcs-lint: allow(metric-name)\n"
      "ObsCounter(\"experimental.not_yet_catalogued\").Increment();\n",
      kPrefixes);
  EXPECT_TRUE(findings.empty());
}

TEST(MetricNameRuleTest, CleanCases) {
  EXPECT_TRUE(LintContent("src/dcs/foo.cc",
                          "ObsCounter(\"ingest.accepted\").Increment();\n"
                          "ObsGauge(\"monitor.depth\").Set(3);\n"
                          "ScopedStageTimer timer(\"analyze_aligned\");\n",
                          kPrefixes)
                  .empty());
  // Dynamic names (no literal) are skipped — they are composed from
  // catalogued parts at runtime.
  EXPECT_TRUE(LintContent("src/dcs/foo.cc",
                          "ObsCounter(metric).Increment();\n", kPrefixes)
                  .empty());
  // Out of scope in tests/ (fixtures use throwaway names).
  EXPECT_TRUE(LintContent("tests/foo.cc",
                          "ObsCounter(\"test.race.x\").Increment();\n",
                          kPrefixes)
                  .empty());
}

TEST(MetricNameRuleTest, ParseCatalogPrefixes) {
  const std::string markdown =
      "| `sketch.aligned.packets_hashed` | counter | x |\n"
      "| `collector.{aligned,unaligned}.epochs` | counter | y |\n"
      "| `stage.<path>.ns` | histogram | z |\n"
      "Plain text with `not_a_metric` and `UPPER.case` stays out.\n";
  const std::vector<std::string> prefixes = ParseCatalogPrefixes(markdown);
  EXPECT_EQ(prefixes,
            (std::vector<std::string>{"collector", "sketch", "stage"}));
}

// ---------------------------------------------------------------------------
// float-equality
// ---------------------------------------------------------------------------

TEST(FloatEqualityRuleTest, FlagsEqualityAgainstFloatingLiterals) {
  const auto f1 = LintContent("src/analysis/foo.cc",
                              "if (weight == 0.5) return;\n", kPrefixes);
  ASSERT_EQ(f1.size(), 1u);
  EXPECT_EQ(f1[0].rule, kRuleFloatEquality);

  const auto f2 = LintContent("src/common/stats_math.cc",
                              "if (1e-9 != epsilon) abort();\n", kPrefixes);
  EXPECT_TRUE(HasRule(f2, kRuleFloatEquality));

  const auto f3 = LintContent("src/dcs/foo.cc",
                              "bool hit = threshold != 0.0;\n", kPrefixes);
  EXPECT_TRUE(HasRule(f3, kRuleFloatEquality));
}

TEST(FloatEqualityRuleTest, Suppressed) {
  const auto findings = LintContent(
      "src/analysis/foo.cc",
      "if (weight == 0.5) return;  // dcs-lint: allow(float-equality)\n",
      kPrefixes);
  EXPECT_TRUE(findings.empty());
}

TEST(FloatEqualityRuleTest, CleanCases) {
  // Integer equality is fine.
  EXPECT_TRUE(LintContent("src/analysis/foo.cc",
                          "if (count == 0) return;\n", kPrefixes)
                  .empty());
  // Ordered comparisons against floats are fine.
  EXPECT_TRUE(LintContent("src/analysis/foo.cc",
                          "if (p > 0.0 && p < 1.0) use(p);\n", kPrefixes)
                  .empty());
  // Out of scope outside threshold code.
  EXPECT_TRUE(LintContent("src/net/foo.cc",
                          "if (rate == 0.5) return;\n", kPrefixes)
                  .empty());
}

// ---------------------------------------------------------------------------
// target-intrinsics
// ---------------------------------------------------------------------------

TEST(TargetIntrinsicsRuleTest, FlagsIntrinsicHeadersCallsAndTypes) {
  const auto f1 = LintContent("src/common/bit_vector.cc",
                              "#include <immintrin.h>\n", kPrefixes);
  ASSERT_EQ(f1.size(), 1u);
  EXPECT_EQ(f1[0].rule, kRuleTargetIntrinsics);
  EXPECT_EQ(f1[0].line, 1u);

  const auto f2 = LintContent(
      "src/analysis/foo.cc",
      "__m256i acc = _mm256_and_si256(a, b);\n", kPrefixes);
  EXPECT_TRUE(HasRule(f2, kRuleTargetIntrinsics));

  const auto f3 = LintContent("tools/foo.cc",
                              "#include <arm_neon.h>\n"
                              "uint8x16_t bytes = vcntq_u8(v);\n",
                              kPrefixes);
  EXPECT_TRUE(HasRule(f3, kRuleTargetIntrinsics));
}

TEST(TargetIntrinsicsRuleTest, Suppressed) {
  const auto findings = LintContent(
      "src/common/foo.cc",
      "__m128i x;  // dcs-lint: allow(target-intrinsics)\n", kPrefixes);
  EXPECT_TRUE(findings.empty());
}

TEST(TargetIntrinsicsRuleTest, CleanCases) {
  // The dedicated SIMD TU is the one sanctioned home.
  EXPECT_TRUE(LintContent("src/common/bit_kernels_avx2.cc",
                          "#include <immintrin.h>\n"
                          "__m256i acc = _mm256_setzero_si256();\n",
                          kPrefixes)
                  .empty());
  // Portable bit twiddling is fine anywhere.
  EXPECT_TRUE(LintContent("src/common/bit_vector.cc",
                          "count += std::popcount(words[w]);\n", kPrefixes)
                  .empty());
  // Mentions in comments and strings are not code.
  EXPECT_TRUE(LintContent("src/common/foo.cc",
                          "// the AVX2 path uses _mm256_add_epi8(...)\n"
                          "const char* s = \"__m256i\";\n",
                          kPrefixes)
                  .empty());
  // Out of scope in tests/ and bench/ (fixtures like this file).
  EXPECT_TRUE(LintContent("tests/foo.cc",
                          "__m256i acc;\n", kPrefixes)
                  .empty());
}

// ---------------------------------------------------------------------------
// raw-sync-primitive
// ---------------------------------------------------------------------------

TEST(RawSyncPrimitiveRuleTest, FlagsStdPrimitivesAndHeaders) {
  const auto f1 = LintContent("src/dcs/foo.cc",
                              "std::mutex mu;\n", kPrefixes);
  ASSERT_EQ(f1.size(), 1u);
  EXPECT_EQ(f1[0].rule, kRuleRawSyncPrimitive);
  EXPECT_EQ(f1[0].line, 1u);

  const auto f2 = LintContent(
      "src/netio/foo.cc",
      "std::scoped_lock lock(mu);\nstd::condition_variable cv;\n", kPrefixes);
  ASSERT_EQ(f2.size(), 2u);
  EXPECT_EQ(f2[0].rule, kRuleRawSyncPrimitive);
  EXPECT_EQ(f2[1].rule, kRuleRawSyncPrimitive);

  const auto f3 =
      LintContent("tools/foo.cc", "#include <mutex>\n", kPrefixes);
  EXPECT_TRUE(HasRule(f3, kRuleRawSyncPrimitive));

  // Tests and benches are in scope too: fixture code sets the idiom people
  // copy, so only an explicit suppression may use a raw primitive there.
  const auto f4 = LintContent("tests/foo.cc",
                              "std::unique_lock<std::mutex> l(mu);\n",
                              kPrefixes);
  EXPECT_TRUE(HasRule(f4, kRuleRawSyncPrimitive));
}

TEST(RawSyncPrimitiveRuleTest, Suppressed) {
  const auto findings = LintContent(
      "tests/foo.cc",
      "std::mutex control;  // dcs-lint: allow(raw-sync-primitive)\n",
      kPrefixes);
  EXPECT_TRUE(findings.empty());
}

TEST(RawSyncPrimitiveRuleTest, CleanCases) {
  // The wrapper layer itself is the sanctioned home.
  EXPECT_TRUE(LintContent("src/common/sync.h",
                          "#include <mutex>\nstd::mutex mu_;\n", kPrefixes)
                  .empty());
  EXPECT_TRUE(LintContent("src/common/sync.cc",
                          "std::unique_lock<std::mutex> adopted(mu);\n",
                          kPrefixes)
                  .empty());
  // The annotated wrappers are the point of the rule.
  EXPECT_TRUE(LintContent("src/dcs/foo.cc",
                          "Mutex mu_{\"foo.mu\"};\nMutexLock lock(&mu_);\n",
                          kPrefixes)
                  .empty());
  // Lock-free atomics are deliberately out of scope.
  EXPECT_TRUE(LintContent("src/dcs/foo.cc",
                          "std::atomic<bool> stop_{false};\n", kPrefixes)
                  .empty());
  // Mentions in comments and strings are not code.
  EXPECT_TRUE(LintContent("src/dcs/foo.cc",
                          "// a std::mutex here would deadlock\n", kPrefixes)
                  .empty());
}

// ---------------------------------------------------------------------------
// manual-lock-unlock
// ---------------------------------------------------------------------------

TEST(ManualLockUnlockRuleTest, FlagsDirectLockAndUnlockCalls) {
  const auto f1 = LintContent("src/dcs/foo.cc",
                              "mu.lock();\nwork();\nmu.unlock();\n",
                              kPrefixes);
  ASSERT_EQ(f1.size(), 2u);
  EXPECT_EQ(f1[0].rule, kRuleManualLockUnlock);
  EXPECT_EQ(f1[0].line, 1u);
  EXPECT_EQ(f1[1].line, 3u);

  const auto f2 =
      LintContent("src/netio/foo.cc", "mu->try_lock();\n", kPrefixes);
  EXPECT_TRUE(HasRule(f2, kRuleManualLockUnlock));
}

TEST(ManualLockUnlockRuleTest, Suppressed) {
  const auto findings = LintContent(
      "src/dcs/foo.cc",
      "// dcs-lint: allow(manual-lock-unlock)\nmu.lock();\n", kPrefixes);
  EXPECT_TRUE(findings.empty());
}

TEST(ManualLockUnlockRuleTest, CleanCases) {
  // The capitalized dcs::Mutex surface is fine (MutexLock is the RAII
  // path; TryLock is legitimately call-by-hand because it cannot block).
  EXPECT_TRUE(LintContent("src/dcs/foo.cc",
                          "if (mu.TryLock()) { mu.Unlock(); }\n", kPrefixes)
                  .empty());
  // Identifiers merely containing 'lock' are fine.
  EXPECT_TRUE(LintContent("src/dcs/foo.cc",
                          "timer.clock();\nstate.lockstep(x);\n"
                          "if (blocked(queue)) return;\n",
                          kPrefixes)
                  .empty());
  // The wrapper layer drives the std primitives by construction.
  EXPECT_TRUE(LintContent("src/common/sync.cc",
                          "mu_.lock();\nmu_.unlock();\n", kPrefixes)
                  .empty());
}

// ---------------------------------------------------------------------------
// Rule catalog sanity.
// ---------------------------------------------------------------------------

TEST(RuleCatalogTest, ListsEveryRuleExactlyOnce) {
  const auto catalog = RuleCatalog();
  std::vector<std::string> slugs;
  for (const auto& [slug, description] : catalog) {
    slugs.push_back(slug);
    EXPECT_FALSE(description.empty());
  }
  std::vector<std::string> expected = {
      kRuleUnseededRng,    kRuleUnorderedIteration, kRuleWallClock,
      kRuleMetricName,     kRuleFloatEquality,      kRuleTargetIntrinsics,
      kRuleRawSyncPrimitive, kRuleManualLockUnlock};
  std::sort(slugs.begin(), slugs.end());
  std::sort(expected.begin(), expected.end());
  EXPECT_EQ(slugs, expected);
}

// Every rule slug in the docs/STATIC_ANALYSIS.md §3 table must exist in the
// linter and vice versa — the doc is part of the contract, and this guard
// is what keeps it from drifting when a rule is added or renamed.
TEST(RuleCatalogTest, DocTableMatchesCatalogBothWays) {
  std::ifstream in(std::filesystem::path(DCS_LINT_SOURCE_ROOT) / "docs" /
                   "STATIC_ANALYSIS.md");
  ASSERT_TRUE(in.good()) << "docs/STATIC_ANALYSIS.md not readable";
  std::vector<std::string> documented;
  std::string line;
  // A rule row is "| `slug` | scope | ..." — first cell, backticked,
  // lowercase-hyphen. Other backticked tokens on the line are prose.
  const std::regex row_re(R"(^\|\s*`([a-z][a-z0-9-]*)`\s*\|)");
  while (std::getline(in, line)) {
    std::smatch m;
    if (std::regex_search(line, m, row_re)) documented.push_back(m[1].str());
  }
  std::vector<std::string> implemented;
  for (const auto& [slug, description] : RuleCatalog()) {
    implemented.push_back(slug);
  }
  std::sort(documented.begin(), documented.end());
  std::sort(implemented.begin(), implemented.end());
  for (const std::string& slug : implemented) {
    EXPECT_TRUE(std::binary_search(documented.begin(), documented.end(), slug))
        << "rule '" << slug
        << "' is implemented but missing from the docs/STATIC_ANALYSIS.md "
           "rule table";
  }
  for (const std::string& slug : documented) {
    EXPECT_TRUE(
        std::binary_search(implemented.begin(), implemented.end(), slug))
        << "docs/STATIC_ANALYSIS.md documents rule '" << slug
        << "' which the linter does not implement";
  }
}

// ---------------------------------------------------------------------------
// Self-scan: the shipped tree must be clean. This is the same invocation
// CI's static-analysis job runs (dcs_lint --fail-on-findings), so a rule
// regression or a new violation fails here first.
// ---------------------------------------------------------------------------

TEST(SelfScanTest, RealTreeIsClean) {
  LintOptions options;
  options.root = DCS_LINT_SOURCE_ROOT;
  const std::vector<Finding> findings = LintTree(options);
  for (const Finding& finding : findings) {
    ADD_FAILURE() << finding.ToString();
  }
}

TEST(SelfScanTest, CatalogPrefixesParseFromRealDocs) {
  LintOptions options;
  options.root = DCS_LINT_SOURCE_ROOT;
  // The observability doc must keep yielding a non-trivial prefix set; if
  // someone reformats the tables away from backticked names, the metric rule
  // would silently stop checking anything.
  std::ifstream in(options.root / "docs" / "OBSERVABILITY.md");
  ASSERT_TRUE(in.good());
  std::ostringstream buf;
  buf << in.rdbuf();
  const std::vector<std::string> prefixes = ParseCatalogPrefixes(buf.str());
  EXPECT_GE(prefixes.size(), 8u);
  EXPECT_NE(std::find(prefixes.begin(), prefixes.end(), "ingest"),
            prefixes.end());
  EXPECT_NE(std::find(prefixes.begin(), prefixes.end(), "detector"),
            prefixes.end());
}

}  // namespace
}  // namespace lint
}  // namespace dcs
