#include "common/hash.h"

#include <set>
#include <string>

#include <gtest/gtest.h>

namespace dcs {
namespace {

TEST(HashTest, DeterministicForSameInput) {
  const std::string data = "the same payload bytes";
  EXPECT_EQ(Hash64(data, 1), Hash64(data, 1));
}

TEST(HashTest, SeedChangesOutput) {
  const std::string data = "payload";
  EXPECT_NE(Hash64(data, 1), Hash64(data, 2));
}

TEST(HashTest, SensitiveToEveryByte) {
  std::string data(64, 'a');
  const std::uint64_t base = Hash64(data, 7);
  for (std::size_t i = 0; i < data.size(); ++i) {
    std::string mutated = data;
    mutated[i] = 'b';
    EXPECT_NE(Hash64(mutated, 7), base) << "byte " << i;
  }
}

TEST(HashTest, LengthMatters) {
  const std::string data(32, 'x');
  EXPECT_NE(Hash64(data.substr(0, 8), 1), Hash64(data.substr(0, 9), 1));
  EXPECT_NE(Hash64(std::string_view(), 1), Hash64(std::string_view("a"), 1));
}

TEST(HashTest, EmptyInputIsStable) {
  EXPECT_EQ(Hash64(std::string_view(), 5), Hash64(std::string_view(), 5));
}

TEST(HashTest, OutputBitsAreBalanced) {
  // Over many inputs, each output bit should be set about half the time.
  constexpr int kSamples = 4096;
  int bit_counts[64] = {};
  for (int i = 0; i < kSamples; ++i) {
    const std::uint64_t h = Hash64(&i, sizeof(i), 42);
    for (int b = 0; b < 64; ++b) {
      bit_counts[b] += static_cast<int>((h >> static_cast<unsigned>(b)) & 1);
    }
  }
  for (int b = 0; b < 64; ++b) {
    EXPECT_NEAR(bit_counts[b], kSamples / 2, 6 * 32) << "bit " << b;
  }
}

TEST(HashTest, NoCollisionsOnSmallDenseInputs) {
  std::set<std::uint64_t> seen;
  for (std::uint32_t i = 0; i < 100000; ++i) {
    seen.insert(Hash64(&i, sizeof(i), 9));
  }
  EXPECT_EQ(seen.size(), 100000u);
}

TEST(Mix64Test, BijectionSmokeAndAvalanche) {
  EXPECT_NE(Mix64(0), Mix64(1));
  // Flipping one input bit should flip roughly half the output bits.
  const std::uint64_t a = Mix64(0x1234567890ABCDEFULL);
  const std::uint64_t b = Mix64(0x1234567890ABCDEEULL);
  const int flipped = __builtin_popcountll(a ^ b);
  EXPECT_GT(flipped, 16);
  EXPECT_LT(flipped, 48);
}

TEST(HashCombineTest, OrderMatters) {
  EXPECT_NE(HashCombine(1, 2), HashCombine(2, 1));
}

}  // namespace
}  // namespace dcs
