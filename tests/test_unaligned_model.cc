#include "analysis/unaligned_model.h"

#include <cmath>

#include <gtest/gtest.h>

#include "analysis/lambda_table.h"

namespace dcs {
namespace {

UnalignedModelOptions PaperOptions() { return UnalignedModelOptions{}; }

TEST(UnalignedModelTest, OffsetMatchProbabilityMatchesFormula) {
  const UnalignedSignalModel model(PaperOptions());
  // 1 - e^{-100/536} ~ 0.1702 (Section IV-A).
  EXPECT_NEAR(model.p_offset_match(), 1.0 - std::exp(-100.0 / 536.0), 1e-12);
}

TEST(UnalignedModelTest, MoreOffsetsIncreaseMatchProbability) {
  UnalignedModelOptions few = PaperOptions();
  few.num_offsets = 5;
  UnalignedModelOptions many = PaperOptions();
  many.num_offsets = 20;
  EXPECT_LT(UnalignedSignalModel(few).p_offset_match(),
            UnalignedSignalModel(many).p_offset_match());
  // Quadratic amplification: k=20 vs k=5 is ~16x in the exponent.
  EXPECT_NEAR(UnalignedSignalModel(many).p_offset_match(),
              1.0 - std::exp(-400.0 / 536.0), 1e-12);
}

TEST(UnalignedModelTest, BackgroundFillMatchesBloomArithmetic) {
  // Default 500 insertions: 1024 (1 - e^{-500/1024}) ~ 396 ones (~39% fill,
  // the Table-calibrated default). The paper's stated 586-insertion
  // workload lands near 44%.
  const UnalignedSignalModel model(PaperOptions());
  EXPECT_NEAR(model.background_row_ones(),
              1024.0 * (1.0 - std::exp(-500.0 / 1024.0)), 1e-9);
  UnalignedModelOptions paper_load = PaperOptions();
  paper_load.background_insertions = 586.0;
  EXPECT_NEAR(UnalignedSignalModel(paper_load).background_row_ones() / 1024.0,
              0.436, 0.01);
}

TEST(UnalignedModelTest, DistinctContentIndicesAccountForCollisions) {
  const UnalignedSignalModel model(PaperOptions());
  EXPECT_NEAR(model.distinct_content_indices(100),
              1024.0 * (1.0 - std::exp(-100.0 / 1024.0)), 1e-9);
  EXPECT_LT(model.distinct_content_indices(100), 100.0);
  EXPECT_GT(model.distinct_content_indices(100), 90.0);
}

TEST(UnalignedModelTest, PatternRowsAreFullerThanBackground) {
  const UnalignedSignalModel model(PaperOptions());
  EXPECT_GT(model.pattern_row_ones(100), model.background_row_ones());
  EXPECT_LT(model.pattern_row_ones(100),
            model.background_row_ones() + 100.0);
}

TEST(UnalignedModelTest, MatchExceedProbGrowsSteeplyWithContentSize) {
  // This is the mechanism behind Table I/II: the matched-pair signal sits
  // right at the threshold, so q(g) climbs steeply in g.
  const UnalignedSignalModel model(PaperOptions());
  const double p_star = LambdaTable::PStarFromEdgeProb(0.8e-4, 10);
  const double q80 = model.MatchExceedProb(80, p_star);
  const double q100 = model.MatchExceedProb(100, p_star);
  const double q120 = model.MatchExceedProb(120, p_star);
  const double q150 = model.MatchExceedProb(150, p_star);
  EXPECT_LT(q80, q100);
  EXPECT_LT(q100, q120);
  EXPECT_LT(q120, q150);
  EXPECT_GT(q150, 0.5);
  EXPECT_LT(q80, 0.5);
}

TEST(UnalignedModelTest, PatternEdgeProbBounds) {
  const UnalignedSignalModel model(PaperOptions());
  const double p1 = 0.8e-4;
  const double p_star = LambdaTable::PStarFromEdgeProb(p1, 10);
  for (std::size_t g : {80u, 100u, 120u, 150u}) {
    const double p2 = model.PatternEdgeProb(g, p_star, p1);
    EXPECT_GE(p2, p1);
    EXPECT_LE(p2, model.p_offset_match() + p1);
  }
}

TEST(UnalignedModelTest, TighterPStarLowersExceedProb) {
  const UnalignedSignalModel model(PaperOptions());
  EXPECT_LE(model.MatchExceedProb(100, 1e-7),
            model.MatchExceedProb(100, 1e-3));
}

}  // namespace
}  // namespace dcs
