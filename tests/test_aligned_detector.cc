#include "analysis/aligned_detector.h"

#include <algorithm>

#include <gtest/gtest.h>

#include "analysis/synthetic_matrix.h"

namespace dcs {
namespace {

AlignedDetectorOptions SmallDetectorOptions() {
  AlignedDetectorOptions opts;
  opts.first_iteration_hopefuls = 300;
  opts.hopefuls = 150;
  opts.max_iterations = 30;
  return opts;
}

// A comfortable planted instance: 40 of 200 routers, 14 packets, screen of
// 300 out of 20,000 columns.
SyntheticAlignedOptions PlantedCase() {
  SyntheticAlignedOptions opts;
  opts.m = 200;
  opts.n = 20000;
  opts.n_prime = 300;
  opts.pattern_rows = 40;
  opts.pattern_cols = 14;
  return opts;
}

TEST(AlignedDetectorTest, DetectsPlantedPattern) {
  AlignedDetector detector(SmallDetectorOptions());
  int detected = 0;
  int trials = 0;
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    Rng rng(seed);
    const SyntheticScreened s = SampleScreenedAligned(PlantedCase(), &rng);
    ++trials;
    const AlignedDetection detection = detector.Detect(s.screened);
    if (!detection.pattern_found) continue;
    ++detected;
    // Reported rows must be mostly true pattern rows.
    std::size_t true_rows = 0;
    for (std::uint32_t r : detection.rows) {
      if (std::binary_search(s.pattern_rows.begin(), s.pattern_rows.end(),
                             r)) {
        ++true_rows;
      }
    }
    EXPECT_GE(true_rows * 10, detection.rows.size() * 9)
        << "seed " << seed << ": rows are mostly genuine";
    EXPECT_GE(detection.rows.size(), 30u);
  }
  EXPECT_GE(detected, 4) << "detected " << detected << "/" << trials;
}

TEST(AlignedDetectorTest, NoFalsePositiveOnPureNoise) {
  SyntheticAlignedOptions opts = PlantedCase();
  opts.pattern_rows = 0;
  opts.pattern_cols = 0;
  AlignedDetector detector(SmallDetectorOptions());
  for (std::uint64_t seed = 10; seed < 15; ++seed) {
    Rng rng(seed);
    const SyntheticScreened s = SampleScreenedAligned(opts, &rng);
    const AlignedDetection detection = detector.Detect(s.screened);
    EXPECT_FALSE(detection.pattern_found) << "seed " << seed;
  }
}

TEST(AlignedDetectorTest, WeightTrajectoryShowsFlattenThenDive) {
  AlignedDetectorOptions opts = SmallDetectorOptions();
  opts.record_full_trajectory = true;
  AlignedDetector detector(opts);
  Rng rng(3);
  const SyntheticScreened s = SampleScreenedAligned(PlantedCase(), &rng);
  const AlignedDetection detection = detector.Detect(s.screened);
  const auto& w = detection.weight_trajectory;
  ASSERT_GE(w.size(), 6u);
  // Initial drop is steep (noise halving).
  EXPECT_LT(static_cast<double>(w[1]),
            0.8 * static_cast<double>(w[0]) + 1.0);
  // Around the stop iteration the curve has flattened: the loss per
  // iteration is small relative to the early halving.
  const std::size_t stop = detection.stop_iteration;  // b' value.
  ASSERT_GE(stop, 3u);
  const std::size_t idx = stop - 2;  // Trajectory index of iteration b'.
  ASSERT_GT(idx, 0u);
  ASSERT_LT(idx, w.size());
  EXPECT_GT(static_cast<double>(w[idx]),
            0.8 * static_cast<double>(w[idx - 1]));
}

TEST(AlignedDetectorTest, StopIterationTracksPatternColumnsInScreen) {
  // The termination procedure should stop within a couple of iterations of
  // the number of planted columns that survived the screen (15 in the
  // paper's Fig 7 example).
  AlignedDetector detector(SmallDetectorOptions());
  Rng rng(4);
  const SyntheticScreened s = SampleScreenedAligned(PlantedCase(), &rng);
  const AlignedDetection detection = detector.Detect(s.screened);
  ASSERT_TRUE(detection.pattern_found);
  const auto in_screen =
      static_cast<std::int64_t>(s.pattern_columns_in_screen);
  EXPECT_NEAR(static_cast<double>(detection.stop_iteration),
              static_cast<double>(in_screen), 2.5);
}

TEST(AlignedDetectorTest, ReportedColumnsAreScreenedPatternColumns) {
  AlignedDetector detector(SmallDetectorOptions());
  Rng rng(5);
  const SyntheticScreened s = SampleScreenedAligned(PlantedCase(), &rng);
  const AlignedDetection detection = detector.Detect(s.screened);
  ASSERT_TRUE(detection.pattern_found);
  // Synthetic ids: pattern columns occupy [0, b).
  std::size_t genuine = 0;
  for (std::size_t c : detection.columns) {
    if (c < PlantedCase().pattern_cols) ++genuine;
  }
  EXPECT_GE(genuine * 10, detection.columns.size() * 8);
}

TEST(AlignedDetectorTest, DegenerateInputsAreSafe) {
  AlignedDetector detector(SmallDetectorOptions());
  ScreenedColumns empty;
  EXPECT_FALSE(detector.Detect(empty).pattern_found);
  ScreenedColumns one;
  one.num_rows = 10;
  one.num_source_columns = 1;
  one.columns.push_back(BitVector(10));
  one.weights.push_back(0);
  one.original_ids.push_back(0);
  EXPECT_FALSE(detector.Detect(one).pattern_found);
}

TEST(AlignedDetectorTest, DetectInMatrixExpandsBeyondScreen) {
  // Literal small matrix: pattern columns below the screen cutoff must be
  // recovered by the final core scan (Fig 6 lines 10-14).
  SyntheticAlignedOptions opts;
  opts.m = 120;
  opts.n = 3000;
  opts.n_prime = 150;
  opts.pattern_rows = 50;
  opts.pattern_cols = 40;  // Plenty; many will miss the screen.
  Rng rng(6);
  std::vector<std::uint32_t> pattern_rows;
  std::vector<std::size_t> pattern_cols;
  const BitMatrix matrix =
      SampleLiteralAligned(opts, &rng, &pattern_rows, &pattern_cols);

  AlignedDetectorOptions detector_opts = SmallDetectorOptions();
  AlignedDetector detector(detector_opts);
  const AlignedDetection detection = detector.DetectInMatrix(matrix, 150);
  ASSERT_TRUE(detection.pattern_found);
  // The expansion should recover the large majority of all 40 planted
  // columns, including those outside the 150-column screen.
  std::size_t recovered = 0;
  for (std::size_t c : pattern_cols) {
    if (std::binary_search(detection.columns.begin(),
                           detection.columns.end(), c)) {
      ++recovered;
    }
  }
  EXPECT_GE(recovered, 30u);
}

TEST(AlignedDetectorTest, GammaSlackTradesRecallForPrecision) {
  // Fig 6 line 12: columns join the pattern when they share
  // >= weight(core) - gamma ones with the core. Larger gamma recovers at
  // least as many planted columns; tiny gamma keeps false columns near
  // zero.
  SyntheticAlignedOptions opts;
  opts.m = 120;
  opts.n = 3000;
  opts.n_prime = 150;
  opts.pattern_rows = 50;
  opts.pattern_cols = 40;
  Rng rng(13);
  std::vector<std::uint32_t> pattern_rows;
  std::vector<std::size_t> pattern_cols;
  const BitMatrix matrix =
      SampleLiteralAligned(opts, &rng, &pattern_rows, &pattern_cols);

  auto run = [&](std::uint32_t gamma) {
    AlignedDetectorOptions detector_opts = SmallDetectorOptions();
    detector_opts.gamma = gamma;
    AlignedDetector detector(detector_opts);
    return detector.DetectInMatrix(matrix, 150);
  };
  auto count_true = [&](const AlignedDetection& d) {
    std::size_t hits = 0;
    for (std::size_t c : pattern_cols) {
      if (std::binary_search(d.columns.begin(), d.columns.end(), c)) ++hits;
    }
    return hits;
  };

  const AlignedDetection strict = run(0);
  const AlignedDetection loose = run(3);
  ASSERT_TRUE(strict.pattern_found);
  ASSERT_TRUE(loose.pattern_found);
  const std::size_t strict_true = count_true(strict);
  const std::size_t loose_true = count_true(loose);
  EXPECT_GE(loose_true, strict_true);
  EXPECT_GE(loose_true, 30u);
  // Precision: false columns are a small fraction even with slack 3
  // (P[noise column matches] ~ binocdf tail at core weight - 3).
  EXPECT_LE(loose.columns.size() - loose_true, loose_true / 4);
}

TEST(AlignedDetectorTest, NaivePathOnTinyMatrixMatches) {
  // Screen width == matrix width turns the refined search into the naive
  // algorithm; on a tiny matrix both must find the planted block.
  SyntheticAlignedOptions opts;
  opts.m = 60;
  opts.n = 400;
  opts.n_prime = 400;
  opts.pattern_rows = 25;
  opts.pattern_cols = 10;
  Rng rng(7);
  std::vector<std::uint32_t> pattern_rows;
  std::vector<std::size_t> pattern_cols;
  const BitMatrix matrix =
      SampleLiteralAligned(opts, &rng, &pattern_rows, &pattern_cols);
  AlignedDetectorOptions detector_opts;
  detector_opts.first_iteration_hopefuls = 400;
  detector_opts.hopefuls = 200;
  AlignedDetector detector(detector_opts);
  const AlignedDetection detection = detector.DetectInMatrix(matrix, 400);
  EXPECT_TRUE(detection.pattern_found);
}

}  // namespace
}  // namespace dcs
