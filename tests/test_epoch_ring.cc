// Differential soak suite for the EpochRing (docs/STREAMING.md): a long
// epoch stream through the ring must be bit-identical to one-shot
// DcsMonitor analysis of the same digests — at thread counts 1, 2, and 8,
// with incremental weights hot-starting the screen, with shedding on and
// off, and with a FaultPlan quarantining a router mid-stream. The running
// column counts are also cross-checked against the BitMatrix::ColumnWeights
// oracle every epoch.

#include "dcs/epoch_ring.h"

#include <cstdint>
#include <vector>

#include <gtest/gtest.h>

#include "common/bit_matrix.h"
#include "common/rng.h"
#include "common/thread_pool.h"
#include "analysis/incremental_weights.h"
#include "testing/fault_injector.h"

namespace dcs {
namespace {

constexpr std::uint32_t kRouters = 16;
constexpr std::size_t kBits = 1024;
constexpr std::size_t kPatternRouters = 12;
constexpr std::size_t kPatternCols = 20;

// Deterministic per-(epoch, router) Bernoulli(1/2) bitmap — the paper's
// aligned noise model — with a 12x20 all-1 pattern planted on every fourth
// epoch across routers 0..11.
Digest SynthesizeDigest(std::uint64_t epoch, std::uint32_t router) {
  Digest digest;
  digest.router_id = router;
  digest.epoch_id = epoch;
  digest.kind = DigestKind::kAligned;
  digest.packets_covered = 100;
  digest.raw_bytes_covered = 100000;
  BitVector row(kBits);
  Rng rng(epoch * 1000003 + router * 7919 + 1);
  for (std::size_t i = 0; i < kBits; ++i) {
    if (rng.Bernoulli(0.5)) row.Set(i);
  }
  if (epoch % 4 == 0 && router < kPatternRouters) {
    for (std::size_t c = 0; c < kPatternCols; ++c) row.Set(37 + 11 * c);
  }
  digest.rows.push_back(std::move(row));
  return digest;
}

AlignedPipelineOptions RingAligned(bool incremental) {
  AlignedPipelineOptions aligned;
  aligned.n_prime = 96;
  aligned.detector.first_iteration_hopefuls = 96;
  aligned.detector.hopefuls = 48;
  aligned.incremental_weights = incremental;
  return aligned;
}

EpochRingOptions RingOptions(ShedPolicy policy) {
  EpochRingOptions options;
  options.capacity = 4;
  options.policy = policy;
  options.aligned = RingAligned(/*incremental=*/true);
  return options;
}

// One-shot reference: a fresh monitor per epoch, cold weight screen, same
// pinned ingest the ring applies to its slots.
DcsReport OneShotReport(std::uint64_t epoch, const AnalysisContext& context) {
  IngestOptions pinned;
  pinned.lock_epoch_to_first = false;
  pinned.expected_epoch = epoch;
  pinned.max_epoch_skew = 0;
  DcsMonitor monitor(RingAligned(/*incremental=*/false),
                     UnalignedPipelineOptions{}, context, pinned);
  for (std::uint32_t r = 0; r < kRouters; ++r) {
    EXPECT_TRUE(monitor.AddDigest(SynthesizeDigest(epoch, r)).ok());
  }
  DcsReport report;
  report.epoch_id = epoch;
  report.aligned = monitor.AnalyzeAligned();
  report.unaligned = monitor.AnalyzeUnaligned();
  report.digests_accepted = monitor.ingest_stats().accepted;
  report.digests_rejected = monitor.ingest_stats().rejected_total();
  report.observed_routers = monitor.ingest_stats().observed_routers;
  return report;
}

TEST(IncrementalWeightsTest, MatchesColumnWeightsOracle) {
  Rng rng(99);
  IncrementalColumnWeights incremental;
  BitMatrix matrix;
  for (std::size_t r = 0; r < 32; ++r) {
    BitVector row(517);  // Deliberately not word-aligned.
    for (std::size_t i = 0; i < row.size(); ++i) {
      if (rng.Bernoulli(0.37)) row.Set(i);
    }
    matrix.AppendRow(row);
    incremental.AddRow(row);
    ASSERT_EQ(incremental.weights(), matrix.ColumnWeights())
        << "after row " << r;
  }
  incremental.Reset();
  EXPECT_EQ(incremental.num_rows(), 0u);
  EXPECT_TRUE(incremental.weights().empty());
}

TEST(IncrementalWeightsTest, RejectsNothingButTracksEmptyWidth) {
  IncrementalColumnWeights incremental;
  BitVector empty(0);
  incremental.AddRow(empty);
  EXPECT_EQ(incremental.num_rows(), 1u);
  EXPECT_EQ(incremental.num_cols(), 0u);
}

// The tentpole property: N epochs through the ring, at several thread
// counts, produce reports bit-identical to one-shot cold-screen analysis;
// the slot's incremental weights equal the oracle at every epoch.
TEST(EpochRingDifferentialTest, BitIdenticalToOneShotAcrossThreadCounts) {
  constexpr std::uint64_t kEpochs = 24;

  // Serial reference reports, cold screen.
  std::vector<DcsReport> reference;
  for (std::uint64_t e = 0; e < kEpochs; ++e) {
    reference.push_back(OneShotReport(e, AnalysisContext{}));
  }
  std::size_t detections = 0;
  for (const DcsReport& r : reference) {
    detections += r.aligned.common_content_detected;
  }
  // The planted pattern must actually fire, or the differential is vacuous.
  ASSERT_GE(detections, kEpochs / 4);

  for (const std::size_t threads : {std::size_t{1}, std::size_t{2},
                                    std::size_t{8}}) {
    ThreadPool pool(threads);
    AnalysisContext context{&pool};
    EpochRing ring(RingOptions(ShedPolicy::kBlock), context);

    for (std::uint64_t e = 0; e < kEpochs; ++e) {
      for (std::uint32_t r = 0; r < kRouters; ++r) {
        ASSERT_TRUE(ring.Offer(SynthesizeDigest(e, r)).ok());
      }
      // Oracle cross-check while the epoch is still in flight: the slot's
      // running counts must equal a freshly stacked matrix's weights.
      const DcsMonitor* slot = ring.monitor_for_epoch(e);
      ASSERT_NE(slot, nullptr);
      BitMatrix oracle;
      for (std::uint32_t r = 0; r < kRouters; ++r) {
        oracle.AppendRow(SynthesizeDigest(e, r).rows.front());
      }
      ASSERT_EQ(slot->incremental_column_weights().weights(),
                oracle.ColumnWeights())
          << "epoch " << e << " threads " << threads;
    }
    ring.Drain();
    const std::vector<DcsReport> reports = ring.TakeReports();
    ASSERT_EQ(reports.size(), kEpochs);
    for (std::uint64_t e = 0; e < kEpochs; ++e) {
      EXPECT_EQ(reports[e], reference[e])
          << "epoch " << e << " diverged at " << threads << " threads";
    }
    EXPECT_EQ(ring.stats().epochs_analyzed, kEpochs);
    EXPECT_EQ(ring.stats().epochs_shed, 0u);
    EXPECT_EQ(ring.tracker().gaps_seen(), 0u);
  }
}

// Shedding on: epochs arriving in strides force drop-oldest closes. The
// epochs that are analyzed must still match one-shot analysis exactly.
TEST(EpochRingDifferentialTest, AnalyzedEpochsMatchOneShotUnderShedding) {
  EpochRingOptions options = RingOptions(ShedPolicy::kDropOldest);
  options.capacity = 2;
  options.analysis_budget_per_offer = 1;
  EpochRing ring(options);

  // Epoch stride 3 with capacity 2: each advance closes 3 heads — one
  // within budget (analyzed), two over (shed).
  constexpr std::uint64_t kStride = 3;
  constexpr std::uint64_t kLast = 27;
  for (std::uint64_t e = 0; e <= kLast; e += kStride) {
    for (std::uint32_t r = 0; r < kRouters; ++r) {
      ASSERT_TRUE(ring.Offer(SynthesizeDigest(e, r)).ok());
    }
  }
  ring.Drain();
  const std::vector<DcsReport> reports = ring.TakeReports();
  ASSERT_EQ(reports.size(), kLast + 1);
  std::size_t shed = 0;
  for (std::uint64_t e = 0; e <= kLast; ++e) {
    EXPECT_EQ(reports[e].epoch_id, e) << "report stream not contiguous";
    if (reports[e].shed) {
      ++shed;
      EXPECT_FALSE(reports[e].aligned.common_content_detected);
      continue;
    }
    if (e % kStride == 0) {
      // Offered epochs that survived shedding: full differential check.
      EXPECT_EQ(reports[e], OneShotReport(e, AnalysisContext{}))
          << "epoch " << e;
    } else {
      EXPECT_EQ(reports[e].digests_accepted, 0u);
    }
  }
  EXPECT_GT(shed, 0u);
  EXPECT_EQ(ring.stats().epochs_shed, shed);
  EXPECT_EQ(ring.tracker().gaps_seen(), shed);
}

TEST(EpochRingTest, SilentEpochsGetContiguousEmptyReports) {
  EpochRingOptions options = RingOptions(ShedPolicy::kBlock);
  options.capacity = 8;
  EpochRing ring(options);
  for (std::uint32_t r = 0; r < kRouters; ++r) {
    ASSERT_TRUE(ring.Offer(SynthesizeDigest(0, r)).ok());
    ASSERT_TRUE(ring.Offer(SynthesizeDigest(5, r)).ok());
  }
  ring.Drain();
  const std::vector<DcsReport> reports = ring.TakeReports();
  ASSERT_EQ(reports.size(), 6u);
  for (std::uint64_t e = 0; e < 6; ++e) {
    EXPECT_EQ(reports[e].epoch_id, e);
    EXPECT_FALSE(reports[e].shed);
    EXPECT_EQ(reports[e].digests_accepted, e == 0 || e == 5 ? kRouters : 0u);
  }
}

TEST(EpochRingTest, StaleDigestIsRefusedWithoutTouchingSlots) {
  EpochRing ring(RingOptions(ShedPolicy::kBlock));
  ASSERT_TRUE(ring.Offer(SynthesizeDigest(10, 0)).ok());
  const Status stale = ring.Offer(SynthesizeDigest(3, 1));
  EXPECT_EQ(stale.code(), Status::Code::kFailedPrecondition);
  EXPECT_EQ(ring.stats().stale_digests, 1u);
  EXPECT_EQ(ring.epochs_in_flight(), 1u);
}

TEST(EpochRingTest, SlotRecyclingReusesMonitors) {
  EpochRingOptions options = RingOptions(ShedPolicy::kBlock);
  options.capacity = 2;
  EpochRing ring(options);
  for (std::uint64_t e = 0; e < 10; ++e) {
    for (std::uint32_t r = 0; r < 4; ++r) {
      ASSERT_TRUE(ring.Offer(SynthesizeDigest(e, r)).ok());
    }
  }
  EXPECT_EQ(ring.stats().max_in_flight, 2u);
  EXPECT_EQ(ring.head_epoch(), 8u);
  ring.Drain();
  EXPECT_EQ(ring.epochs_in_flight(), 0u);
  EXPECT_EQ(ring.TakeReports().size(), 10u);
}

// FaultPlan-seeded variant: mid-stream, one router replays its digest
// (quarantine via duplicate) and another ships a resealed lying-shape
// header (quarantine via Corruption). Both quarantines must stay confined
// to their epoch's slot, and the incremental weights of every epoch —
// poisoned or clean — must keep matching one-shot analysis of the same
// delivered messages (a poisoned count would flip the screen and diverge
// the report).
TEST(EpochRingDifferentialTest, QuarantineMidStreamDoesNotPoisonLaterEpochs) {
  constexpr std::uint64_t kEpochs = 12;
  constexpr std::uint32_t kReplayRouter = 5;
  constexpr std::uint32_t kLiarRouter = 9;

  // The replayer's fate comes from a materialized FaultPlan, so the
  // scenario replays bit-for-bit from the seed alone.
  FaultPlan plan;
  plan.seed = 7;
  plan.faults.resize(kRouters);  // Indexed by router id, default kNone.
  for (std::uint32_t r = 0; r < kRouters; ++r) plan.faults[r].router_id = r;
  plan.faults[kReplayRouter].kind = FaultKind::kDuplicate;
  plan.faults[kReplayRouter].mutation_seed = 500;
  const FaultInjector injector(plan);

  EpochRing ring(RingOptions(ShedPolicy::kBlock));
  std::vector<DcsReport> reference;
  bool saw_quarantine = false;

  for (std::uint64_t e = 0; e < kEpochs; ++e) {
    // Epochs 4..7 are the faulty stretch.
    const bool faulty_epoch = e >= 4 && e < 8;

    IngestOptions pinned;
    pinned.lock_epoch_to_first = false;
    pinned.expected_epoch = e;
    pinned.max_epoch_skew = 0;
    DcsMonitor one_shot(RingAligned(/*incremental=*/false),
                        UnalignedPipelineOptions{}, AnalysisContext{},
                        pinned);

    for (std::uint32_t r = 0; r < kRouters; ++r) {
      std::vector<std::vector<std::uint8_t>> messages;
      std::vector<std::uint8_t> bytes = SynthesizeDigest(e, r).Encode();
      if (faulty_epoch && r == kReplayRouter) {
        messages = injector.Apply(r, bytes);  // Two copies: a replay.
      } else if (faulty_epoch && r == kLiarRouter) {
        // Claim num_groups = 4 on an aligned digest carrying one row, then
        // reseal so only structural validation can catch the lie.
        bytes[DigestWireLayout::kNumGroupsOffset] = 4;
        Digest::ResealChecksum(&bytes);
        messages = {bytes};
      } else {
        messages = {bytes};
      }
      for (const std::vector<std::uint8_t>& message : messages) {
        Digest delivered;
        if (!Digest::Decode(message, &delivered).ok()) continue;
        const Status ring_status = ring.Offer(delivered);
        const Status one_shot_status = one_shot.AddDigest(delivered);
        EXPECT_EQ(ring_status.code(), one_shot_status.code())
            << "epoch " << e << " router " << r;
      }
    }
    if (one_shot.IsQuarantined(kReplayRouter)) {
      saw_quarantine = true;
      EXPECT_TRUE(one_shot.IsQuarantined(kLiarRouter));
    }

    DcsReport expected;
    expected.epoch_id = e;
    expected.aligned = one_shot.AnalyzeAligned();
    expected.unaligned = one_shot.AnalyzeUnaligned();
    expected.digests_accepted = one_shot.ingest_stats().accepted;
    expected.digests_rejected = one_shot.ingest_stats().rejected_total();
    expected.observed_routers = one_shot.ingest_stats().observed_routers;
    reference.push_back(expected);
  }
  // The faults must actually have bitten, or this test proves nothing.
  ASSERT_TRUE(saw_quarantine);

  ring.Drain();
  const std::vector<DcsReport> reports = ring.TakeReports();
  ASSERT_EQ(reports.size(), kEpochs);
  for (std::uint64_t e = 0; e < kEpochs; ++e) {
    EXPECT_EQ(reports[e], reference[e]) << "epoch " << e;
  }
  // The replayed router's first (accepted) copy stays in the analysis, the
  // liar's row never lands: 15 of 16 routers contribute in faulty epochs.
  EXPECT_EQ(reports[5].digests_accepted, kRouters - 1);
  EXPECT_EQ(reports[5].observed_routers, kRouters - 1);
  EXPECT_GE(reports[5].digests_rejected, 2u);
  // After the faulty stretch both routers are accepted again: the
  // quarantines died with their epoch's slot.
  EXPECT_EQ(reports[kEpochs - 1].digests_accepted, kRouters);
  EXPECT_EQ(reports[kEpochs - 1].observed_routers, kRouters);
}

}  // namespace
}  // namespace dcs
