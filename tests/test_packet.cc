#include "net/packet.h"

#include <gtest/gtest.h>

namespace dcs {
namespace {

Packet MakePacket(std::string payload) {
  Packet pkt;
  pkt.flow = FlowLabel{0x0A000001, 0x0A000002, 1234, 80, 6};
  pkt.payload = std::move(payload);
  return pkt;
}

TEST(FlowLabelTest, EqualityIsFieldwise) {
  FlowLabel a{1, 2, 3, 4, 6};
  FlowLabel b = a;
  EXPECT_EQ(a, b);
  b.dst_port = 5;
  EXPECT_NE(a, b);
}

TEST(FlowLabelTest, HashDeterministicAndSeeded) {
  FlowLabel flow{1, 2, 3, 4, 6};
  EXPECT_EQ(HashFlowLabel(flow, 9), HashFlowLabel(flow, 9));
  EXPECT_NE(HashFlowLabel(flow, 9), HashFlowLabel(flow, 10));
}

TEST(FlowLabelTest, HashSensitiveToEveryField) {
  const FlowLabel base{1, 2, 3, 4, 6};
  const std::uint64_t h = HashFlowLabel(base, 1);
  FlowLabel mutated = base;
  mutated.src_ip = 99;
  EXPECT_NE(HashFlowLabel(mutated, 1), h);
  mutated = base;
  mutated.dst_ip = 99;
  EXPECT_NE(HashFlowLabel(mutated, 1), h);
  mutated = base;
  mutated.src_port = 99;
  EXPECT_NE(HashFlowLabel(mutated, 1), h);
  mutated = base;
  mutated.dst_port = 99;
  EXPECT_NE(HashFlowLabel(mutated, 1), h);
  mutated = base;
  mutated.protocol = 17;
  EXPECT_NE(HashFlowLabel(mutated, 1), h);
}

TEST(PacketTest, WireBytesIncludesHeader) {
  Packet pkt = MakePacket(std::string(536, 'x'));
  EXPECT_EQ(pkt.wire_bytes(), 536u + 40u);
}

TEST(PacketTest, PayloadPrefixClamps) {
  Packet pkt = MakePacket("abcdef");
  EXPECT_EQ(pkt.PayloadPrefix(3), "abc");
  EXPECT_EQ(pkt.PayloadPrefix(100), "abcdef");
  EXPECT_EQ(pkt.PayloadPrefix(0), "");
}

TEST(PacketTest, PayloadRangeOffsets) {
  Packet pkt = MakePacket("0123456789");
  EXPECT_EQ(pkt.PayloadRange(2, 3), "234");
  EXPECT_EQ(pkt.PayloadRange(8, 5), "89");   // Clamped at end.
  EXPECT_EQ(pkt.PayloadRange(10, 3), "");    // Past the end.
  EXPECT_EQ(pkt.PayloadRange(0, 10), "0123456789");
}

}  // namespace
}  // namespace dcs
