#include "analysis/weight_screen.h"

#include <algorithm>
#include <numeric>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "common/thread_pool.h"

namespace dcs {
namespace {

TEST(TopKIndicesTest, BasicDescendingSelection) {
  const std::vector<std::uint32_t> values = {5, 9, 1, 7, 9, 3};
  const auto top3 = TopKIndices(values, 3);
  // Two nines (tie broken by lower index first), then the 7.
  EXPECT_EQ(top3, (std::vector<std::size_t>{1, 4, 3}));
}

TEST(TopKIndicesTest, KLargerThanInput) {
  const std::vector<std::uint32_t> values = {2, 1};
  const auto all = TopKIndices(values, 10);
  EXPECT_EQ(all, (std::vector<std::size_t>{0, 1}));
}

TEST(TopKIndicesTest, KZero) {
  EXPECT_TRUE(TopKIndices({1, 2, 3}, 0).empty());
}

TEST(TopKIndicesTest, AllEqualTiesByIndex) {
  const std::vector<std::uint32_t> values(6, 4);
  EXPECT_EQ(TopKIndices(values, 3), (std::vector<std::size_t>{0, 1, 2}));
}

TEST(TopKIndicesTest, MatchesSortOnRandomInput) {
  Rng rng(3);
  std::vector<std::uint32_t> values(500);
  for (auto& v : values) v = static_cast<std::uint32_t>(rng.UniformInt(50));
  const auto top = TopKIndices(values, 40);
  ASSERT_EQ(top.size(), 40u);
  // Verify: every selected value >= every unselected value.
  std::vector<char> selected(values.size(), 0);
  std::uint32_t min_selected = UINT32_MAX;
  for (std::size_t i : top) {
    selected[i] = 1;
    min_selected = std::min(min_selected, values[i]);
  }
  for (std::size_t i = 0; i < values.size(); ++i) {
    if (!selected[i]) {
      EXPECT_LE(values[i], min_selected);
    }
  }
  // And descending order.
  for (std::size_t i = 1; i < top.size(); ++i) {
    EXPECT_GE(values[top[i - 1]], values[top[i]]);
  }
}

TEST(ScreenHeaviestColumnsTest, SelectsHeaviest) {
  BitMatrix matrix(4, 6);
  // Column weights: c0=4, c1=1, c2=3, c3=0, c4=2, c5=3.
  for (std::size_t r = 0; r < 4; ++r) matrix.Set(r, 0);
  matrix.Set(0, 1);
  for (std::size_t r = 0; r < 3; ++r) matrix.Set(r, 2);
  matrix.Set(1, 4);
  matrix.Set(2, 4);
  for (std::size_t r = 1; r < 4; ++r) matrix.Set(r, 5);

  const ScreenedColumns screened = ScreenHeaviestColumns(matrix, 3);
  EXPECT_EQ(screened.original_ids, (std::vector<std::size_t>{0, 2, 5}));
  EXPECT_EQ(screened.weights, (std::vector<std::uint32_t>{4, 3, 3}));
  EXPECT_EQ(screened.num_rows, 4u);
  EXPECT_EQ(screened.num_source_columns, 6u);
  // Extracted bits match the matrix columns.
  for (std::size_t i = 0; i < screened.columns.size(); ++i) {
    EXPECT_TRUE(screened.columns[i] ==
                matrix.ExtractColumn(screened.original_ids[i]));
  }
}

TEST(ScreenHeaviestColumnsTest, NPrimeBeyondWidthTakesAll) {
  BitMatrix matrix(2, 3);
  matrix.Set(0, 1);
  const ScreenedColumns screened = ScreenHeaviestColumns(matrix, 10);
  EXPECT_EQ(screened.columns.size(), 3u);
}

TEST(TopKIndicesInRangeTest, RestrictsToRangeWithGlobalIds) {
  const std::vector<std::uint32_t> values = {9, 1, 7, 7, 8, 2};
  EXPECT_EQ(TopKIndicesInRange(values, 1, 5, 2),
            (std::vector<std::size_t>{4, 2}));
  EXPECT_EQ(TopKIndicesInRange(values, 0, values.size(), 3),
            TopKIndices(values, 3));
  EXPECT_TRUE(TopKIndicesInRange(values, 4, 4, 3).empty());
  // Out-of-bounds end clamps.
  EXPECT_EQ(TopKIndicesInRange(values, 5, 100, 2),
            (std::vector<std::size_t>{5}));
}

// Brute-force oracle: every column id, sorted by (weight desc, id asc).
std::vector<std::size_t> SortOracle(const std::vector<std::uint32_t>& weights,
                                    std::size_t n_prime) {
  std::vector<std::size_t> ids(weights.size());
  std::iota(ids.begin(), ids.end(), 0);
  std::sort(ids.begin(), ids.end(), [&](std::size_t a, std::size_t b) {
    return weights[a] != weights[b] ? weights[a] > weights[b] : a < b;
  });
  ids.resize(std::min(n_prime, ids.size()));
  return ids;
}

BitMatrix RandomBernoulliMatrix(std::size_t rows, std::size_t cols,
                                Rng* rng) {
  BitMatrix matrix(rows, cols);
  for (std::size_t r = 0; r < rows; ++r) {
    BitVector& row = matrix.row(r);
    std::uint64_t* words = row.mutable_words();
    for (std::size_t w = 0; w < row.num_words(); ++w) words[w] = rng->Next();
    if (cols % 64 != 0) {  // Bulk ops assume zero padding bits.
      words[row.num_words() - 1] &= (1ULL << (cols % 64)) - 1;
    }
  }
  return matrix;
}

void ExpectScreenMatchesOracle(const BitMatrix& matrix, std::size_t n_prime,
                               ThreadPool* pool) {
  const std::vector<std::uint32_t> weights = matrix.ColumnWeights();
  const std::vector<std::size_t> oracle = SortOracle(weights, n_prime);
  const ScreenedColumns screened =
      ScreenHeaviestColumns(matrix, n_prime, pool);
  ASSERT_EQ(screened.original_ids, oracle);
  ASSERT_EQ(screened.columns.size(), oracle.size());
  for (std::size_t i = 0; i < oracle.size(); ++i) {
    EXPECT_EQ(screened.weights[i], weights[oracle[i]]);
    EXPECT_TRUE(screened.columns[i] == matrix.ExtractColumn(oracle[i]));
  }
}

TEST(ScreenHeaviestColumnsTest, ShardedScreenMatchesSortOracle) {
  ThreadPool pool2(2);
  ThreadPool pool8(8);
  for (const std::uint64_t seed : {11u, 12u, 13u}) {
    Rng rng(seed);
    const BitMatrix matrix = RandomBernoulliMatrix(48, 1200, &rng);
    for (const std::size_t n_prime : {1u, 150u, 1200u, 5000u}) {
      ExpectScreenMatchesOracle(matrix, n_prime, nullptr);
      ExpectScreenMatchesOracle(matrix, n_prime, &pool2);
      ExpectScreenMatchesOracle(matrix, n_prime, &pool8);
    }
  }
}

TEST(ScreenHeaviestColumnsTest, TieHeavyScreenMatchesSortOracle) {
  // Three rows -> column weights in {0..3}: the cutoff weight is shared by
  // hundreds of columns, so the id tie-break does all the work.
  ThreadPool pool8(8);
  Rng rng(99);
  const BitMatrix matrix = RandomBernoulliMatrix(3, 2048, &rng);
  for (const std::size_t n_prime : {100u, 700u, 2000u}) {
    ExpectScreenMatchesOracle(matrix, n_prime, nullptr);
    ExpectScreenMatchesOracle(matrix, n_prime, &pool8);
  }
}

TEST(ScreenHeaviestColumnsTest, SerialAndPooledBitIdentical) {
  ThreadPool pool2(2);
  ThreadPool pool8(8);
  Rng rng(7);
  const BitMatrix matrix = RandomBernoulliMatrix(64, 777, &rng);
  const ScreenedColumns serial = ScreenHeaviestColumns(matrix, 99, nullptr);
  for (ThreadPool* pool : {&pool2, &pool8}) {
    const ScreenedColumns pooled = ScreenHeaviestColumns(matrix, 99, pool);
    EXPECT_EQ(pooled.original_ids, serial.original_ids);
    EXPECT_EQ(pooled.weights, serial.weights);
    ASSERT_EQ(pooled.columns.size(), serial.columns.size());
    for (std::size_t i = 0; i < serial.columns.size(); ++i) {
      EXPECT_TRUE(pooled.columns[i] == serial.columns[i]);
    }
  }
}

TEST(ScreenHeaviestColumnsTest, EmptyMatrix) {
  const ScreenedColumns screened = ScreenHeaviestColumns(BitMatrix(), 10);
  EXPECT_TRUE(screened.columns.empty());
  EXPECT_EQ(screened.num_source_columns, 0u);
}

}  // namespace
}  // namespace dcs
