#include "analysis/weight_screen.h"

#include <gtest/gtest.h>

#include "common/rng.h"

namespace dcs {
namespace {

TEST(TopKIndicesTest, BasicDescendingSelection) {
  const std::vector<std::uint32_t> values = {5, 9, 1, 7, 9, 3};
  const auto top3 = TopKIndices(values, 3);
  // Two nines (tie broken by lower index first), then the 7.
  EXPECT_EQ(top3, (std::vector<std::size_t>{1, 4, 3}));
}

TEST(TopKIndicesTest, KLargerThanInput) {
  const std::vector<std::uint32_t> values = {2, 1};
  const auto all = TopKIndices(values, 10);
  EXPECT_EQ(all, (std::vector<std::size_t>{0, 1}));
}

TEST(TopKIndicesTest, KZero) {
  EXPECT_TRUE(TopKIndices({1, 2, 3}, 0).empty());
}

TEST(TopKIndicesTest, AllEqualTiesByIndex) {
  const std::vector<std::uint32_t> values(6, 4);
  EXPECT_EQ(TopKIndices(values, 3), (std::vector<std::size_t>{0, 1, 2}));
}

TEST(TopKIndicesTest, MatchesSortOnRandomInput) {
  Rng rng(3);
  std::vector<std::uint32_t> values(500);
  for (auto& v : values) v = static_cast<std::uint32_t>(rng.UniformInt(50));
  const auto top = TopKIndices(values, 40);
  ASSERT_EQ(top.size(), 40u);
  // Verify: every selected value >= every unselected value.
  std::vector<char> selected(values.size(), 0);
  std::uint32_t min_selected = UINT32_MAX;
  for (std::size_t i : top) {
    selected[i] = 1;
    min_selected = std::min(min_selected, values[i]);
  }
  for (std::size_t i = 0; i < values.size(); ++i) {
    if (!selected[i]) EXPECT_LE(values[i], min_selected);
  }
  // And descending order.
  for (std::size_t i = 1; i < top.size(); ++i) {
    EXPECT_GE(values[top[i - 1]], values[top[i]]);
  }
}

TEST(ScreenHeaviestColumnsTest, SelectsHeaviest) {
  BitMatrix matrix(4, 6);
  // Column weights: c0=4, c1=1, c2=3, c3=0, c4=2, c5=3.
  for (std::size_t r = 0; r < 4; ++r) matrix.Set(r, 0);
  matrix.Set(0, 1);
  for (std::size_t r = 0; r < 3; ++r) matrix.Set(r, 2);
  matrix.Set(1, 4);
  matrix.Set(2, 4);
  for (std::size_t r = 1; r < 4; ++r) matrix.Set(r, 5);

  const ScreenedColumns screened = ScreenHeaviestColumns(matrix, 3);
  EXPECT_EQ(screened.original_ids, (std::vector<std::size_t>{0, 2, 5}));
  EXPECT_EQ(screened.weights, (std::vector<std::uint32_t>{4, 3, 3}));
  EXPECT_EQ(screened.num_rows, 4u);
  EXPECT_EQ(screened.num_source_columns, 6u);
  // Extracted bits match the matrix columns.
  for (std::size_t i = 0; i < screened.columns.size(); ++i) {
    EXPECT_TRUE(screened.columns[i] ==
                matrix.ExtractColumn(screened.original_ids[i]));
  }
}

TEST(ScreenHeaviestColumnsTest, NPrimeBeyondWidthTakesAll) {
  BitMatrix matrix(2, 3);
  matrix.Set(0, 1);
  const ScreenedColumns screened = ScreenHeaviestColumns(matrix, 10);
  EXPECT_EQ(screened.columns.size(), 3u);
}

}  // namespace
}  // namespace dcs
