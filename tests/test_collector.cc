#include "sketch/collector.h"

#include <gtest/gtest.h>

#include "traffic/content_catalog.h"
#include "traffic/flow_generator.h"

namespace dcs {
namespace {

PacketTrace SmallTrace(std::uint64_t seed, std::size_t packets) {
  Rng rng(seed);
  BackgroundTrafficOptions opts;
  FlowGenerator gen(opts, &rng);
  PacketTrace trace;
  gen.Generate(packets, &trace);
  return trace;
}

TEST(AlignedCollectorTest, ProducesOneRowDigestPerEpoch) {
  BitmapSketchOptions opts;
  opts.num_bits = 1 << 14;
  AlignedCollector collector(3, opts);
  const PacketTrace trace = SmallTrace(1, 2000);
  const auto epochs = trace.SplitIntoEpochs(1000);
  const Digest d0 = collector.ProcessEpoch(epochs[0]);
  EXPECT_EQ(d0.router_id, 3u);
  EXPECT_EQ(d0.epoch_id, 0u);
  EXPECT_EQ(d0.kind, DigestKind::kAligned);
  ASSERT_EQ(d0.rows.size(), 1u);
  EXPECT_GT(d0.rows[0].CountOnes(), 0u);
  EXPECT_GT(d0.raw_bytes_covered, 0u);

  const Digest d1 = collector.ProcessEpoch(epochs[1]);
  EXPECT_EQ(d1.epoch_id, 1u);
}

TEST(AlignedCollectorTest, SketchResetsBetweenEpochs) {
  BitmapSketchOptions opts;
  opts.num_bits = 1 << 14;
  AlignedCollector collector(0, opts);
  const PacketTrace trace = SmallTrace(2, 2000);
  const auto epochs = trace.SplitIntoEpochs(1000);
  const Digest d0 = collector.ProcessEpoch(epochs[0]);
  const Digest d1 = collector.ProcessEpoch(epochs[1]);
  // Different epochs' traffic: the digests must differ (reset happened and
  // fresh bits were recorded).
  EXPECT_FALSE(d0.rows[0] == d1.rows[0]);
}

TEST(AlignedCollectorTest, AdaptiveEpochsEndAtHalfFull) {
  // Section III-B: the epoch ends when the bitmap reaches half 1s.
  BitmapSketchOptions opts;
  opts.num_bits = 256;  // Tiny bitmap: ~178 distinct packets per epoch.
  AlignedCollector collector(4, opts);
  const PacketTrace trace = SmallTrace(9, 4000);
  const std::vector<Digest> digests = collector.ProcessTraceAdaptive(trace);
  ASSERT_GE(digests.size(), 3u);
  // Every digest except possibly the last is at least half full.
  for (std::size_t d = 0; d + 1 < digests.size(); ++d) {
    EXPECT_GE(digests[d].rows[0].CountOnes() * 2, 256u) << "epoch " << d;
    // And not grossly overfull: the epoch cut right at the boundary.
    EXPECT_LE(digests[d].rows[0].CountOnes() * 2, 256u + 2) << "epoch " << d;
  }
  // Epoch ids are consecutive.
  for (std::size_t d = 0; d < digests.size(); ++d) {
    EXPECT_EQ(digests[d].epoch_id, d);
  }
  // Raw-byte accounting partitions the trace.
  std::uint64_t total = 0;
  for (const Digest& digest : digests) total += digest.raw_bytes_covered;
  EXPECT_EQ(total, trace.TotalWireBytes());
}

TEST(UnalignedCollectorTest, DigestShapeMatchesOptions) {
  FlowSplitOptions opts;
  opts.num_groups = 4;
  opts.offset_options.num_arrays = 5;
  opts.offset_options.array_bits = 256;
  Rng rng(3);
  UnalignedCollector collector(9, opts, &rng);
  const PacketTrace trace = SmallTrace(4, 1500);
  const auto epochs = trace.SplitIntoEpochs(1500);
  const Digest digest = collector.ProcessEpoch(epochs[0]);
  EXPECT_EQ(digest.kind, DigestKind::kUnaligned);
  EXPECT_EQ(digest.num_groups, 4u);
  EXPECT_EQ(digest.arrays_per_group, 5u);
  EXPECT_EQ(digest.rows.size(), 20u);
  EXPECT_EQ(digest.rows[0].size(), 256u);
  EXPECT_GT(digest.packets_covered, 0u);
}

TEST(UnalignedCollectorTest, CompressionFactorIsLarge) {
  // The paper's headline: digests are ~3 orders of magnitude smaller than
  // the traffic they summarize.
  FlowSplitOptions opts;
  opts.num_groups = 8;
  opts.offset_options.array_bits = 1024;
  Rng rng(5);
  UnalignedCollector collector(1, opts, &rng);
  const PacketTrace trace = SmallTrace(6, 30000);
  const auto epochs = trace.SplitIntoEpochs(30000);
  const Digest digest = collector.ProcessEpoch(epochs[0]);
  EXPECT_GT(digest.CompressionFactor(), 1000.0);
}

}  // namespace
}  // namespace dcs
