#include "common/histogram.h"

#include <gtest/gtest.h>

namespace dcs {
namespace {

TEST(HistogramTest, EmptyBehaviour) {
  Histogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_DOUBLE_EQ(h.CdfAt(10), 0.0);
  EXPECT_DOUBLE_EQ(h.Mean(), 0.0);
  EXPECT_DOUBLE_EQ(h.FractionAbove(0), 0.0);
}

TEST(HistogramTest, CdfSteps) {
  Histogram h;
  for (std::int64_t v : {1, 2, 2, 5}) h.Add(v);
  EXPECT_DOUBLE_EQ(h.CdfAt(0), 0.0);
  EXPECT_DOUBLE_EQ(h.CdfAt(1), 0.25);
  EXPECT_DOUBLE_EQ(h.CdfAt(2), 0.75);
  EXPECT_DOUBLE_EQ(h.CdfAt(4), 0.75);
  EXPECT_DOUBLE_EQ(h.CdfAt(5), 1.0);
}

TEST(HistogramTest, QuantileAndExtremes) {
  Histogram h;
  for (std::int64_t v = 1; v <= 100; ++v) h.Add(v);
  EXPECT_EQ(h.Quantile(0.01), 1);
  EXPECT_EQ(h.Quantile(0.5), 50);
  EXPECT_EQ(h.Quantile(1.0), 100);
  EXPECT_EQ(h.Min(), 1);
  EXPECT_EQ(h.Max(), 100);
}

TEST(HistogramTest, MeanAndFractionAbove) {
  Histogram h;
  for (std::int64_t v : {10, 20, 30, 40}) h.Add(v);
  EXPECT_DOUBLE_EQ(h.Mean(), 25.0);
  EXPECT_DOUBLE_EQ(h.FractionAbove(20), 0.5);
  EXPECT_DOUBLE_EQ(h.FractionAbove(40), 0.0);
  EXPECT_DOUBLE_EQ(h.FractionAbove(-1), 1.0);
}

TEST(HistogramTest, InterleavedAddAndQuery) {
  Histogram h;
  h.Add(5);
  EXPECT_DOUBLE_EQ(h.CdfAt(5), 1.0);
  h.Add(1);  // Invalidates sort; next query must re-sort.
  EXPECT_EQ(h.Min(), 1);
  EXPECT_EQ(h.Max(), 5);
}

}  // namespace
}  // namespace dcs
