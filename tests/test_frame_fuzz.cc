// Wire fuzzing of the digest frame protocol (src/netio/frame.h,
// docs/DISTRIBUTED.md).
//
// Four properties, each over thousands of randomized trials:
//  1. Chunking invariance: a byte stream produces the identical event
//     sequence no matter how the socket splits or coalesces reads.
//  2. Malformed frames never reach the ring: every MutateFrameForFuzz
//     choice ends as a frame reject, a decode failure, or an identity
//     mismatch — digests_offered stays 0 and no router is quarantined.
//  3. Resync: an intact frame embedded in arbitrary garbage is still
//     delivered; only the garbage is discarded.
//  4. Truncation: a stream ending mid-frame flushes as one kTruncated
//     reject, never a hang or a partial frame.
//
// Trial count comes from DCS_TRIALS (default 10000; CI's fuzz-corpus job
// raises it to 100k+ under ASan/UBSan). Master seeds come from
// tests/corpus/frame_fuzz_seeds.txt so every failure is replayable; the
// failure message prints the (seed, trial) pair to add to the corpus.

#include <algorithm>
#include <cstdlib>
#include <fstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "dcs/epoch_ring.h"
#include "netio/dispatch.h"
#include "netio/frame.h"
#include "sketch/digest.h"
#include "sketch/digest_codec.h"
#include "testing/fault_injector.h"

namespace dcs {
namespace {

std::vector<std::uint64_t> LoadCorpusSeeds() {
  std::vector<std::uint64_t> seeds;
  std::ifstream in(std::string(DCS_CORPUS_DIR) + "/frame_fuzz_seeds.txt");
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty() || line[0] == '#') continue;
    seeds.push_back(std::strtoull(line.c_str(), nullptr, 10));
  }
  return seeds;
}

std::size_t TotalTrials() {
  const char* env = std::getenv("DCS_TRIALS");
  if (env == nullptr || env[0] == '\0') return 10000;
  const long long n = std::strtoll(env, nullptr, 10);
  return n > 0 ? static_cast<std::size_t>(n) : 10000;
}

// A random well-formed frame: random digest shape, either codec, envelope
// identity matching the payload.
std::vector<std::uint8_t> RandomFrame(Rng* rng, Digest* digest_out = nullptr) {
  Digest digest;
  digest.kind = DigestKind::kAligned;
  digest.router_id = static_cast<std::uint32_t>(rng->UniformInt(64));
  digest.epoch_id = rng->UniformInt(16);
  const std::size_t row_bits = 1 + rng->UniformInt(1024);
  BitVector row(row_bits);
  const double density[] = {0.0, 0.02, 0.5, 0.95};
  const double d = density[rng->UniformInt(4)];
  for (std::size_t i = 0; i < row_bits; ++i) {
    if (rng->Bernoulli(d)) row.Set(i);
  }
  digest.rows.push_back(std::move(row));
  digest.packets_covered = rng->UniformInt(1 << 16);
  digest.raw_bytes_covered = rng->UniformInt(1 << 24);
  const DigestCodecId codec =
      rng->Bernoulli(0.5) ? DigestCodecId::kRaw : DigestCodecId::kSparse;
  const std::vector<std::uint8_t> payload = EncodeDigestPayload(digest, codec);
  if (digest_out != nullptr) *digest_out = digest;
  return EncodeFrame(codec, digest.router_id, digest.epoch_id, payload);
}

// Parses `stream` in one Consume + Finish.
std::vector<FrameEvent> ParseWhole(const std::vector<std::uint8_t>& stream) {
  FrameParser parser;
  std::vector<FrameEvent> events;
  if (!stream.empty()) parser.Consume(stream.data(), stream.size(), &events);
  parser.Finish(&events);
  return events;
}

// Parses `stream` in random chunks (including empty and 1-byte reads).
std::vector<FrameEvent> ParseChunked(const std::vector<std::uint8_t>& stream,
                                     Rng* rng) {
  FrameParser parser;
  std::vector<FrameEvent> events;
  std::size_t at = 0;
  while (at < stream.size()) {
    const std::size_t chunk = std::min<std::size_t>(
        stream.size() - at, static_cast<std::size_t>(rng->UniformInt(97)));
    parser.Consume(stream.data() + at, chunk, &events);
    at += chunk;
  }
  parser.Finish(&events);
  return events;
}

// Chunking changes only how garbage runs are *batched*: a whole-stream
// parse coalesces a run into one kBadMagic event, while byte-at-a-time
// delivery can split it across Consume calls. Everything else — the frames
// delivered, every non-kBadMagic reject, and the total bytes skipped — must
// be identical.
void ExpectEquivalentStreams(const std::vector<FrameEvent>& a,
                             const std::vector<FrameEvent>& b,
                             std::uint64_t seed, std::size_t trial) {
  const auto significant = [](const std::vector<FrameEvent>& events) {
    std::vector<const FrameEvent*> out;
    for (const FrameEvent& event : events) {
      if (event.kind == FrameEvent::Kind::kFrame ||
          event.reason != FrameRejectReason::kBadMagic) {
        out.push_back(&event);
      }
    }
    return out;
  };
  const auto skipped_total = [](const std::vector<FrameEvent>& events) {
    std::size_t total = 0;
    for (const FrameEvent& event : events) {
      if (event.kind == FrameEvent::Kind::kReject) {
        total += event.skipped_bytes;
      }
    }
    return total;
  };
  const std::vector<const FrameEvent*> sa = significant(a);
  const std::vector<const FrameEvent*> sb = significant(b);
  ASSERT_EQ(sa.size(), sb.size()) << "seed=" << seed << " trial=" << trial;
  for (std::size_t i = 0; i < sa.size(); ++i) {
    EXPECT_EQ(static_cast<int>(sa[i]->kind), static_cast<int>(sb[i]->kind))
        << "seed=" << seed << " trial=" << trial << " event=" << i;
    EXPECT_TRUE(sa[i]->header == sb[i]->header)
        << "seed=" << seed << " trial=" << trial << " event=" << i;
    EXPECT_EQ(sa[i]->payload, sb[i]->payload)
        << "seed=" << seed << " trial=" << trial << " event=" << i;
    EXPECT_EQ(static_cast<int>(sa[i]->reason),
              static_cast<int>(sb[i]->reason))
        << "seed=" << seed << " trial=" << trial << " event=" << i;
    EXPECT_EQ(sa[i]->skipped_bytes, sb[i]->skipped_bytes)
        << "seed=" << seed << " trial=" << trial << " event=" << i;
  }
  EXPECT_EQ(skipped_total(a), skipped_total(b))
      << "seed=" << seed << " trial=" << trial;
}

// Property 1: split/coalesced reads cannot change what the parser emits.
// Streams mix valid frames, mutated frames, and raw garbage.
TEST(FrameFuzzTest, ChunkingInvariance) {
  const std::vector<std::uint64_t> seeds = LoadCorpusSeeds();
  ASSERT_FALSE(seeds.empty());
  const std::size_t trials_per_seed =
      (TotalTrials() + seeds.size() - 1) / (4 * seeds.size()) + 1;
  for (const std::uint64_t seed : seeds) {
    Rng rng(seed);
    for (std::size_t t = 0; t < trials_per_seed; ++t) {
      Rng shape_rng = rng.Fork();
      Rng chunk_rng = rng.Fork();
      std::vector<std::uint8_t> stream;
      const std::size_t pieces = 1 + shape_rng.UniformInt(5);
      for (std::size_t p = 0; p < pieces; ++p) {
        std::vector<std::uint8_t> piece = RandomFrame(&shape_rng);
        const std::uint64_t what = shape_rng.UniformInt(3);
        if (what == 1) {
          piece = FaultInjector::MutateFrameForFuzz(piece, &shape_rng);
        } else if (what == 2) {
          piece = FaultInjector::Garbage(shape_rng.UniformInt(64), &shape_rng);
        }
        stream.insert(stream.end(), piece.begin(), piece.end());
      }
      ExpectEquivalentStreams(ParseWhole(stream),
                              ParseChunked(stream, &chunk_rng), seed, t);
    }
  }
}

// Property 2: a mutated frame, shipped through the full parse + dispatch
// pipeline, never becomes a ring offer — and the reject path never
// quarantines the (unauthenticated) router id it claims.
TEST(FrameFuzzTest, MutatedFramesNeverReachTheRing) {
  const std::vector<std::uint64_t> seeds = LoadCorpusSeeds();
  ASSERT_FALSE(seeds.empty());
  const std::size_t trials_per_seed = TotalTrials() / seeds.size() + 1;
  for (const std::uint64_t seed : seeds) {
    Rng rng(seed);
    EpochRingOptions ring_options;
    ring_options.capacity = 4;
    EpochRing ring(ring_options, AnalysisContext{});
    FrameDispatcher dispatcher(&ring, nullptr);
    FrameParser parser;
    for (std::size_t t = 0; t < trials_per_seed; ++t) {
      Rng shape_rng = rng.Fork();
      Rng mutate_rng = rng.Fork();
      const std::vector<std::uint8_t> mutated = FaultInjector::MutateFrameForFuzz(
          RandomFrame(&shape_rng), &mutate_rng);
      std::vector<FrameEvent> events;
      parser.Consume(mutated.data(), mutated.size(), &events);
      parser.Finish(&events);  // Seal each trial: no cross-trial carryover.
      dispatcher.HandleEvents(events);
      ASSERT_EQ(dispatcher.stats().digests_offered, 0u)
          << "seed=" << seed << " trial=" << t
          << ": a mutated frame became a ring offer";
    }
    EXPECT_EQ(ring.stats().digests_offered, 0u) << "seed=" << seed;
  }
}

// Property 3: EmbedInGarbage keeps the frame intact, so the parser must
// deliver it — the garbage costs kBadMagic rejects, never the frame.
TEST(FrameFuzzTest, EmbeddedFrameSurvivesGarbageResync) {
  const std::vector<std::uint64_t> seeds = LoadCorpusSeeds();
  ASSERT_FALSE(seeds.empty());
  const std::size_t trials_per_seed =
      (TotalTrials() + seeds.size() - 1) / (4 * seeds.size()) + 1;
  for (const std::uint64_t seed : seeds) {
    Rng rng(seed);
    for (std::size_t t = 0; t < trials_per_seed; ++t) {
      Rng shape_rng = rng.Fork();
      Rng mutate_rng = rng.Fork();
      Rng chunk_rng = rng.Fork();
      Digest digest;
      const std::vector<std::uint8_t> frame = RandomFrame(&shape_rng, &digest);
      const std::vector<std::uint8_t> embedded =
          FaultInjector::EmbedInGarbage(frame, &mutate_rng);
      const std::vector<FrameEvent> events = ParseChunked(embedded, &chunk_rng);
      std::size_t frames = 0;
      for (const FrameEvent& event : events) {
        if (event.kind != FrameEvent::Kind::kFrame) continue;
        ++frames;
        EXPECT_EQ(event.header.router_id, digest.router_id)
            << "seed=" << seed << " trial=" << t;
        EXPECT_EQ(event.header.epoch_id, digest.epoch_id)
            << "seed=" << seed << " trial=" << t;
      }
      // The prepended garbage can contain a magic by chance; the parser may
      // then wait on a phantom frame whose claimed length swallows ours
      // (flushed as kTruncated at Finish). Delivery is only guaranteed when
      // no spurious magic precedes the real frame, so locate the frame
      // (first occurrence — a full-frame coincidence inside <=255 garbage
      // bytes is not a thing) and scan just the prefix. Magic cannot
      // straddle the garbage/frame boundary: the frame opens with the magic
      // itself, whose every proper prefix mismatches its own continuation.
      const std::vector<std::uint8_t> magic = {0x46, 0x53, 0x43, 0x44};
      const auto frame_begin = std::search(embedded.begin(), embedded.end(),
                                           frame.begin(), frame.end());
      ASSERT_TRUE(frame_begin != embedded.end());
      const bool spurious_magic_before =
          std::search(embedded.begin(), frame_begin, magic.begin(),
                      magic.end()) != frame_begin;
      if (!spurious_magic_before) {
        EXPECT_EQ(frames, 1u) << "seed=" << seed << " trial=" << t
                              << ": intact frame lost to resync";
      }
    }
  }
}

// Property 4: a stream cut anywhere mid-frame flushes as rejects on
// Finish() — nothing buffered forever, nothing delivered.
TEST(FrameFuzzTest, TruncatedStreamsFlushOnFinish) {
  const std::vector<std::uint64_t> seeds = LoadCorpusSeeds();
  ASSERT_FALSE(seeds.empty());
  const std::size_t trials_per_seed =
      (TotalTrials() + seeds.size() - 1) / (4 * seeds.size()) + 1;
  for (const std::uint64_t seed : seeds) {
    Rng rng(seed);
    for (std::size_t t = 0; t < trials_per_seed; ++t) {
      Rng shape_rng = rng.Fork();
      const std::vector<std::uint8_t> frame = RandomFrame(&shape_rng);
      const std::size_t cut = 1 + shape_rng.UniformInt(frame.size() - 1);
      const std::vector<std::uint8_t> truncated(frame.begin(),
                                                frame.begin() +
                                                    static_cast<std::ptrdiff_t>(cut));
      FrameParser parser;
      std::vector<FrameEvent> events;
      parser.Consume(truncated.data(), truncated.size(), &events);
      EXPECT_TRUE(events.empty()) << "seed=" << seed << " trial=" << t;
      parser.Finish(&events);
      ASSERT_EQ(events.size(), 1u) << "seed=" << seed << " trial=" << t;
      EXPECT_EQ(static_cast<int>(events[0].kind),
                static_cast<int>(FrameEvent::Kind::kReject));
      EXPECT_EQ(static_cast<int>(events[0].reason),
                static_cast<int>(FrameRejectReason::kTruncated));
      EXPECT_EQ(events[0].skipped_bytes, cut);
      EXPECT_EQ(parser.buffered_bytes(), 0u);
    }
  }
}

// Deterministic spot checks of each header-lie class: the reject reason
// must name the actual problem (the fuzz oracle only proves *rejection*).
TEST(FrameFuzzTest, HeaderLieRejectReasons) {
  Rng rng(99);
  const std::vector<std::uint8_t> frame = RandomFrame(&rng);

  const auto reason_of = [](std::vector<std::uint8_t> bytes) {
    std::vector<FrameEvent> events = ParseWhole(bytes);
    EXPECT_FALSE(events.empty());
    EXPECT_TRUE(events.empty() ||
                events[0].kind == FrameEvent::Kind::kReject);
    return events.empty() ? FrameRejectReason::kBadMagic : events[0].reason;
  };

  auto patched = frame;
  patched[FrameWireLayout::kVersionOffset] = 9;
  ResealFrameChecksum(&patched);
  EXPECT_EQ(static_cast<int>(reason_of(patched)),
            static_cast<int>(FrameRejectReason::kBadVersion));

  patched = frame;
  patched[FrameWireLayout::kFlagsOffset] = 0x80;
  ResealFrameChecksum(&patched);
  EXPECT_EQ(static_cast<int>(reason_of(patched)),
            static_cast<int>(FrameRejectReason::kBadFlags));

  patched = frame;
  patched[FrameWireLayout::kCodecOffset] = 7;
  ResealFrameChecksum(&patched);
  EXPECT_EQ(static_cast<int>(reason_of(patched)),
            static_cast<int>(FrameRejectReason::kUnknownCodec));

  patched = frame;
  const std::uint32_t absurd = FrameWireLayout::kMaxPayloadBytes + 1;
  for (std::size_t i = 0; i < 4; ++i) {
    patched[FrameWireLayout::kPayloadLenOffset + i] =
        static_cast<std::uint8_t>(absurd >> (8 * i));
  }
  ResealFrameChecksum(&patched);
  EXPECT_EQ(static_cast<int>(reason_of(patched)),
            static_cast<int>(FrameRejectReason::kOversizedPayload));

  patched = frame;
  patched[patched.size() - 1] ^= 0xFF;  // Damage the checksum itself.
  EXPECT_EQ(static_cast<int>(reason_of(patched)),
            static_cast<int>(FrameRejectReason::kChecksumMismatch));
}

// A damaged frame between two good ones costs only itself: both neighbors
// are delivered (the resync guarantee, deterministically).
TEST(FrameFuzzTest, DamagedFrameDoesNotTakeTheConnection) {
  Rng rng(7);
  Digest first;
  Digest last;
  const std::vector<std::uint8_t> a = RandomFrame(&rng, &first);
  std::vector<std::uint8_t> b = RandomFrame(&rng);
  const std::vector<std::uint8_t> c = RandomFrame(&rng, &last);
  b[FrameWireLayout::kHeaderBytes + 2] ^= 0x10;  // Payload damage, no reseal.

  std::vector<std::uint8_t> stream;
  stream.insert(stream.end(), a.begin(), a.end());
  stream.insert(stream.end(), b.begin(), b.end());
  stream.insert(stream.end(), c.begin(), c.end());
  const std::vector<FrameEvent> events = ParseWhole(stream);
  std::vector<const FrameEvent*> frames;
  for (const FrameEvent& event : events) {
    if (event.kind == FrameEvent::Kind::kFrame) frames.push_back(&event);
  }
  ASSERT_EQ(frames.size(), 2u);
  EXPECT_EQ(frames[0]->header.router_id, first.router_id);
  EXPECT_EQ(frames[1]->header.router_id, last.router_id);
}

}  // namespace
}  // namespace dcs
