#include <gtest/gtest.h>

#include "baseline/local_detector.h"
#include "baseline/raw_aggregation.h"
#include "net/packetizer.h"
#include "traffic/content_catalog.h"
#include "traffic/trace_synthesizer.h"

namespace dcs {
namespace {

// Shared scenario: content planted once at each of 6 of 8 routers, in
// unaligned mode.
std::vector<PacketTrace> WormScenario(const ContentCatalog& catalog) {
  ScenarioOptions scenario;
  scenario.num_routers = 8;
  scenario.background_packets_per_router = 800;
  PlantedContent plant;
  plant.content_id = 123;
  plant.content_bytes = 536 * 12;
  plant.router_ids = {0, 1, 2, 4, 6, 7};
  plant.aligned = false;
  scenario.planted = {plant};
  scenario.seed = 99;
  return SynthesizeScenario(scenario, catalog);
}

TEST(RawAggregationTest, FindsPlantedContentAcrossRouters) {
  ContentCatalog catalog(55);
  const auto traces = WormScenario(catalog);
  RawAggregationOptions opts;
  opts.min_routers = 4;
  RawAggregationDetector detector(opts);
  for (std::uint32_t r = 0; r < traces.size(); ++r) {
    detector.AddRouterTrace(r, traces[r]);
  }
  const auto findings = detector.Findings();
  ASSERT_FALSE(findings.empty());
  // The top finding spans the 6 planted routers.
  EXPECT_EQ(findings[0].routers,
            (std::vector<std::uint32_t>{0, 1, 2, 4, 6, 7}));
}

TEST(RawAggregationTest, NoFindingsOnPureBackground) {
  ScenarioOptions scenario;
  scenario.num_routers = 6;
  scenario.background_packets_per_router = 800;
  scenario.seed = 7;
  ContentCatalog catalog(1);
  const auto traces = SynthesizeScenario(scenario, catalog);
  RawAggregationOptions opts;
  opts.min_routers = 3;
  RawAggregationDetector detector(opts);
  for (std::uint32_t r = 0; r < traces.size(); ++r) {
    detector.AddRouterTrace(r, traces[r]);
  }
  EXPECT_TRUE(detector.Findings().empty());
}

TEST(RawAggregationTest, AccountsBytesShipped) {
  ContentCatalog catalog(55);
  const auto traces = WormScenario(catalog);
  RawAggregationDetector detector(RawAggregationOptions{});
  std::uint64_t expected = 0;
  for (std::uint32_t r = 0; r < traces.size(); ++r) {
    detector.AddRouterTrace(r, traces[r]);
    expected += traces[r].TotalWireBytes();
  }
  EXPECT_EQ(detector.bytes_shipped(), expected);
  EXPECT_GT(detector.bytes_shipped(), 1000000u);
}

TEST(LocalDetectorTest, BlindToDistributedContent) {
  // The paper's motivating claim: content crossing each link once never
  // reaches a local prevalence threshold.
  ContentCatalog catalog(55);
  const auto traces = WormScenario(catalog);
  LocalDetectorOptions opts;
  opts.prevalence_threshold = 3;
  LocalPrevalenceDetector local(opts);
  for (const Packet& pkt : traces[0]) local.Update(pkt);
  EXPECT_TRUE(local.PrevalentFingerprints().empty());
}

TEST(LocalDetectorTest, CatchesLocallyRepeatedContent) {
  ContentCatalog catalog(56);
  const std::string content = catalog.ContentBytes(5, 536 * 4);
  PacketizerOptions packetizer;
  LocalDetectorOptions opts;
  opts.prevalence_threshold = 3;
  LocalPrevalenceDetector local(opts);
  // The same object crosses this one link five times (different flows).
  for (std::uint32_t inst = 0; inst < 5; ++inst) {
    FlowLabel flow{inst, 2, 3, 4, 6};
    for (const Packet& pkt :
         PacketizeObject(flow, "", content, packetizer)) {
      local.Update(pkt);
    }
  }
  EXPECT_FALSE(local.PrevalentFingerprints().empty());
}

TEST(LocalDetectorTest, CountsArePerPacketNotPerWindow) {
  LocalDetectorOptions opts;
  opts.window_bytes = 8;
  opts.sample_bits = 0;  // Keep every window.
  opts.min_payload_bytes = 8;
  LocalPrevalenceDetector local(opts);
  Packet pkt;
  pkt.flow = FlowLabel{1, 2, 3, 4, 6};
  pkt.payload = std::string(64, 'A');  // All windows identical.
  local.Update(pkt);
  // One packet: every fingerprint counted once.
  for (std::uint64_t fp : local.PrevalentFingerprints()) {
    EXPECT_EQ(local.CountOf(fp), 1u);
  }
  EXPECT_EQ(local.table_size(), 1u);  // One distinct window value.
}

}  // namespace
}  // namespace dcs
