#include "graph/graph.h"

#include <gtest/gtest.h>

namespace dcs {
namespace {

TEST(GraphTest, EmptyGraph) {
  Graph g(5);
  g.Finalize();
  EXPECT_EQ(g.num_vertices(), 5u);
  EXPECT_EQ(g.num_edges(), 0u);
  EXPECT_EQ(g.degree(0), 0u);
  EXPECT_TRUE(g.neighbors(0).empty());
}

TEST(GraphTest, DegreesAndNeighbors) {
  Graph g(4);
  g.AddEdge(0, 1);
  g.AddEdge(0, 2);
  g.AddEdge(2, 3);
  g.Finalize();
  EXPECT_EQ(g.num_edges(), 3u);
  EXPECT_EQ(g.degree(0), 2u);
  EXPECT_EQ(g.degree(1), 1u);
  EXPECT_EQ(g.degree(2), 2u);
  EXPECT_EQ(g.degree(3), 1u);
  const auto n0 = g.neighbors(0);
  EXPECT_EQ(std::vector<Graph::VertexId>(n0.begin(), n0.end()),
            (std::vector<Graph::VertexId>{1, 2}));
}

TEST(GraphTest, DuplicateEdgesCollapse) {
  Graph g(3);
  g.AddEdge(0, 1);
  g.AddEdge(1, 0);
  g.AddEdge(0, 1);
  g.Finalize();
  EXPECT_EQ(g.num_edges(), 1u);
  EXPECT_EQ(g.degree(0), 1u);
  EXPECT_EQ(g.degree(1), 1u);
}

TEST(GraphTest, EdgesNormalizedLowHigh) {
  Graph g(3);
  g.AddEdge(2, 0);
  g.Finalize();
  ASSERT_EQ(g.edges().size(), 1u);
  EXPECT_EQ(g.edges()[0].first, 0u);
  EXPECT_EQ(g.edges()[0].second, 2u);
}

TEST(GraphTest, RefinalizeAfterMoreEdges) {
  Graph g(4);
  g.AddEdge(0, 1);
  g.Finalize();
  EXPECT_TRUE(g.finalized());
  g.AddEdge(2, 3);
  EXPECT_FALSE(g.finalized());
  g.Finalize();
  EXPECT_EQ(g.num_edges(), 2u);
  EXPECT_EQ(g.degree(3), 1u);
}

TEST(GraphTest, NeighborsSortedAscending) {
  Graph g(6);
  g.AddEdge(3, 5);
  g.AddEdge(3, 1);
  g.AddEdge(3, 4);
  g.AddEdge(3, 0);
  g.Finalize();
  const auto n = g.neighbors(3);
  EXPECT_EQ(std::vector<Graph::VertexId>(n.begin(), n.end()),
            (std::vector<Graph::VertexId>{0, 1, 4, 5}));
}

}  // namespace
}  // namespace dcs
