#include "analysis/correlation.h"

#include <mutex>
#include <set>

#include <gtest/gtest.h>

namespace dcs {
namespace {

TEST(CorrelateGroupsTest, FindsMaxPairExactly) {
  std::vector<BitVector> a(3, BitVector(64));
  std::vector<BitVector> b(2, BitVector(64));
  // a[1] and b[0] share 5 positions; everything else shares fewer.
  for (std::size_t i = 0; i < 5; ++i) {
    a[1].Set(i);
    b[0].Set(i);
  }
  a[0].Set(60);
  b[1].Set(60);
  const GroupPairCorrelation best = CorrelateGroups(a, b);
  EXPECT_EQ(best.max_common, 5u);
  EXPECT_EQ(best.row_a, 1u);
  EXPECT_EQ(best.row_b, 0u);
}

TEST(CorrelateGroupsTest, DisjointRowsGiveZero) {
  std::vector<BitVector> a(2, BitVector(32));
  std::vector<BitVector> b(2, BitVector(32));
  a[0].Set(1);
  b[0].Set(2);
  EXPECT_EQ(CorrelateGroups(a, b).max_common, 0u);
}

TEST(ForEachGroupPairTest, SerialCoversAllPairsOnce) {
  std::set<std::pair<std::uint32_t, std::uint32_t>> seen;
  PairScanOptions opts;
  const auto sampled = ForEachGroupPair(
      6, opts, [&](std::uint32_t a, std::uint32_t b) {
        EXPECT_LT(a, b);
        EXPECT_TRUE(seen.emplace(a, b).second);
      });
  EXPECT_EQ(seen.size(), 15u);
  EXPECT_EQ(sampled.size(), 6u);
}

TEST(ForEachGroupPairTest, ParallelCoversSamePairs) {
  ThreadPool pool(3);
  PairScanOptions opts;
  opts.pool = &pool;
  std::mutex mu;
  std::set<std::pair<std::uint32_t, std::uint32_t>> seen;
  ForEachGroupPair(10, opts, [&](std::uint32_t a, std::uint32_t b) {
    std::scoped_lock lock(mu);
    EXPECT_TRUE(seen.emplace(a, b).second);
  });
  EXPECT_EQ(seen.size(), 45u);
}

TEST(ForEachGroupPairTest, SamplingRestrictsPairs) {
  PairScanOptions opts;
  opts.group_sample_rate = 0.4;
  opts.sample_seed = 3;
  std::set<std::uint32_t> groups_seen;
  std::size_t pairs = 0;
  const auto sampled =
      ForEachGroupPair(100, opts, [&](std::uint32_t a, std::uint32_t b) {
        groups_seen.insert(a);
        groups_seen.insert(b);
        ++pairs;
      });
  EXPECT_EQ(sampled.size(), 40u);
  EXPECT_EQ(pairs, 40u * 39 / 2);
  for (std::uint32_t g : groups_seen) {
    EXPECT_TRUE(std::binary_search(sampled.begin(), sampled.end(), g));
  }
}

TEST(ForEachGroupPairTest, SamplingIsDeterministicBySeed) {
  PairScanOptions opts;
  opts.group_sample_rate = 0.3;
  opts.sample_seed = 5;
  const auto a = ForEachGroupPair(50, opts, [](std::uint32_t, std::uint32_t) {});
  const auto b = ForEachGroupPair(50, opts, [](std::uint32_t, std::uint32_t) {});
  EXPECT_EQ(a, b);
  opts.sample_seed = 6;
  const auto c = ForEachGroupPair(50, opts, [](std::uint32_t, std::uint32_t) {});
  EXPECT_NE(a, c);
}

}  // namespace
}  // namespace dcs
