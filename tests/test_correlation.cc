#include "analysis/correlation.h"

#include <set>

#include <gtest/gtest.h>

#include "common/sync.h"

namespace dcs {
namespace {

TEST(CorrelateGroupsTest, FindsMaxPairExactly) {
  std::vector<BitVector> a(3, BitVector(64));
  std::vector<BitVector> b(2, BitVector(64));
  // a[1] and b[0] share 5 positions; everything else shares fewer.
  for (std::size_t i = 0; i < 5; ++i) {
    a[1].Set(i);
    b[0].Set(i);
  }
  a[0].Set(60);
  b[1].Set(60);
  const GroupPairCorrelation best = CorrelateGroups(a, b);
  EXPECT_EQ(best.max_common, 5u);
  EXPECT_EQ(best.row_a, 1u);
  EXPECT_EQ(best.row_b, 0u);
}

TEST(CorrelateGroupsTest, DisjointRowsGiveZero) {
  std::vector<BitVector> a(2, BitVector(32));
  std::vector<BitVector> b(2, BitVector(32));
  a[0].Set(1);
  b[0].Set(2);
  EXPECT_EQ(CorrelateGroups(a, b).max_common, 0u);
}

TEST(ForEachGroupPairTest, SerialCoversAllPairsOnce) {
  std::set<std::pair<std::uint32_t, std::uint32_t>> seen;
  PairScanOptions opts;
  const auto sampled = ForEachGroupPair(
      6, opts, [&](std::uint32_t a, std::uint32_t b) {
        EXPECT_LT(a, b);
        EXPECT_TRUE(seen.emplace(a, b).second);
      });
  EXPECT_EQ(seen.size(), 15u);
  EXPECT_EQ(sampled.size(), 6u);
}

TEST(ForEachGroupPairTest, ParallelCoversSamePairs) {
  ThreadPool pool(3);
  PairScanOptions opts;
  opts.pool = &pool;
  Mutex mu;
  std::set<std::pair<std::uint32_t, std::uint32_t>> seen;
  ForEachGroupPair(10, opts, [&](std::uint32_t a, std::uint32_t b) {
    MutexLock lock(&mu);
    EXPECT_TRUE(seen.emplace(a, b).second);
  });
  EXPECT_EQ(seen.size(), 45u);
}

TEST(ForEachGroupPairTest, SamplingRestrictsPairs) {
  PairScanOptions opts;
  opts.group_sample_rate = 0.4;
  opts.sample_seed = 3;
  std::set<std::uint32_t> groups_seen;
  std::size_t pairs = 0;
  const auto sampled =
      ForEachGroupPair(100, opts, [&](std::uint32_t a, std::uint32_t b) {
        groups_seen.insert(a);
        groups_seen.insert(b);
        ++pairs;
      });
  EXPECT_EQ(sampled.size(), 40u);
  EXPECT_EQ(pairs, 40u * 39 / 2);
  for (std::uint32_t g : groups_seen) {
    EXPECT_TRUE(std::binary_search(sampled.begin(), sampled.end(), g));
  }
}

TEST(CorrelateGroupsTest, TieBreaksTowardLowestRowPair) {
  // Three identical rows on each side: every pair shares the same 4
  // positions, so the max is achieved 9 ways. The contract pins the result
  // to the lexicographically lowest (row_a, row_b) = (0, 0).
  std::vector<BitVector> a(3, BitVector(128));
  for (BitVector& row : a) {
    for (std::size_t i = 0; i < 4; ++i) row.Set(i * 17);
  }
  std::vector<BitVector> b = a;
  const GroupPairCorrelation best = CorrelateGroups(a, b);
  EXPECT_EQ(best.max_common, 4u);
  EXPECT_EQ(best.row_a, 0u);
  EXPECT_EQ(best.row_b, 0u);
}

TEST(CorrelateGroupsTest, TieBreakPrefersEarlierBRowWithinSameARow) {
  // b[1] and b[2] tie; b[0] loses. Lowest row_b among the winners must win.
  std::vector<BitVector> a(1, BitVector(64));
  std::vector<BitVector> b(3, BitVector(64));
  for (std::size_t i = 0; i < 6; ++i) a[0].Set(i);
  b[0].Set(0);
  for (std::size_t i = 0; i < 3; ++i) {
    b[1].Set(i);
    b[2].Set(i + 3);
  }
  const GroupPairCorrelation best = CorrelateGroups(a, b);
  EXPECT_EQ(best.max_common, 3u);
  EXPECT_EQ(best.row_a, 0u);
  EXPECT_EQ(best.row_b, 1u);
}

TEST(ForEachGroupPairTest, SamplingWithTooFewGroupsDoesNotAbort) {
  // Regression: with sampling on, the sampler used to ask for max(keep, 2)
  // groups even when fewer than 2 existed, tripping the k <= n contract of
  // SampleWithoutReplacement and aborting the process.
  PairScanOptions opts;
  opts.group_sample_rate = 0.1;
  std::size_t pairs = 0;
  const auto none =
      ForEachGroupPair(0, opts, [&](std::uint32_t, std::uint32_t) {
        ++pairs;
      });
  EXPECT_TRUE(none.empty());
  EXPECT_EQ(pairs, 0u);

  const auto one =
      ForEachGroupPair(1, opts, [&](std::uint32_t, std::uint32_t) {
        ++pairs;
      });
  EXPECT_EQ(one, std::vector<std::uint32_t>{0});
  EXPECT_EQ(pairs, 0u);
}

TEST(ForEachGroupPairTest, SamplingTwoGroupsKeepsBoth) {
  // The smallest population where sampling is possible: the keep floor of 2
  // must clamp to the population, not overshoot it.
  PairScanOptions opts;
  opts.group_sample_rate = 0.1;
  std::vector<std::pair<std::uint32_t, std::uint32_t>> visited;
  const auto sampled =
      ForEachGroupPair(2, opts, [&](std::uint32_t a, std::uint32_t b) {
        visited.emplace_back(a, b);
      });
  EXPECT_EQ(sampled, (std::vector<std::uint32_t>{0, 1}));
  ASSERT_EQ(visited.size(), 1u);
  EXPECT_EQ(visited[0], std::make_pair(0u, 1u));
}

TEST(ForEachGroupPairTest, SamplingIsDeterministicBySeed) {
  PairScanOptions opts;
  opts.group_sample_rate = 0.3;
  opts.sample_seed = 5;
  const auto a = ForEachGroupPair(50, opts, [](std::uint32_t, std::uint32_t) {});
  const auto b = ForEachGroupPair(50, opts, [](std::uint32_t, std::uint32_t) {});
  EXPECT_EQ(a, b);
  opts.sample_seed = 6;
  const auto c = ForEachGroupPair(50, opts, [](std::uint32_t, std::uint32_t) {});
  EXPECT_NE(a, c);
}

}  // namespace
}  // namespace dcs
