#include "obs/metrics.h"

#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "obs/exporter.h"
#include "obs/stage_timer.h"

namespace dcs {
namespace {

// All tests share the process-global registry, so each starts from a known
// state: enabled with zeroed values (registrations persist by design).
class MetricsTest : public ::testing::Test {
 protected:
  void SetUp() override {
    MetricsRegistry::Global().set_enabled(true);
    MetricsRegistry::Global().ResetValues();
  }
  void TearDown() override { MetricsRegistry::Global().set_enabled(false); }
};

TEST_F(MetricsTest, CounterGaugeBasics) {
  Counter& c = ObsCounter("test.counter");
  c.Increment();
  c.Add(41);
  EXPECT_EQ(c.value(), 42u);

  Gauge& g = ObsGauge("test.gauge");
  g.Set(0.25);
  g.Set(0.75);  // Last write wins.
  EXPECT_DOUBLE_EQ(g.value(), 0.75);
}

TEST_F(MetricsTest, InterningReturnsSameObject) {
  Counter& a = ObsCounter("test.interned");
  Counter& b = ObsCounter("test.interned");
  EXPECT_EQ(&a, &b);
  a.Increment();
  EXPECT_EQ(b.value(), 1u);
}

TEST_F(MetricsTest, ConcurrentCounterUpdatesAreLossless) {
  Counter& c = ObsCounter("test.concurrent");
  constexpr int kThreads = 8;
  constexpr int kPerThread = 20000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&c] {
      for (int i = 0; i < kPerThread; ++i) c.Increment();
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(c.value(), static_cast<std::uint64_t>(kThreads) * kPerThread);
}

TEST_F(MetricsTest, ConcurrentRegistrationIsSafe) {
  // Threads race to intern overlapping names while others snapshot;
  // interned references must be stable and unique per name.
  constexpr int kThreads = 8;
  std::vector<std::thread> threads;
  std::vector<Counter*> first(kThreads, nullptr);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([t, &first] {
      for (int i = 0; i < 50; ++i) {
        Counter& c =
            ObsCounter("test.race." + std::to_string(i % 5));
        c.Increment();
        if (i == 0) first[static_cast<std::size_t>(t)] = &c;
        (void)MetricsRegistry::Global().Snapshot();
      }
    });
  }
  for (std::thread& t : threads) t.join();
  for (int t = 1; t < kThreads; ++t) {
    EXPECT_EQ(first[static_cast<std::size_t>(t)], first[0]);  // Same name -> same object everywhere.
  }
  std::uint64_t total = 0;
  for (int i = 0; i < 5; ++i) {
    total += ObsCounter("test.race." + std::to_string(i)).value();
  }
  EXPECT_EQ(total, static_cast<std::uint64_t>(kThreads) * 50);
}

TEST_F(MetricsTest, HistogramBucketBoundaries) {
  // Bucket 0 holds exactly the value 0; bucket b holds [2^(b-1), 2^b).
  EXPECT_EQ(LatencyHistogram::BucketIndex(0), 0u);
  EXPECT_EQ(LatencyHistogram::BucketIndex(1), 1u);
  EXPECT_EQ(LatencyHistogram::BucketIndex(2), 2u);
  EXPECT_EQ(LatencyHistogram::BucketIndex(3), 2u);
  EXPECT_EQ(LatencyHistogram::BucketIndex(4), 3u);
  EXPECT_EQ(LatencyHistogram::BucketIndex(1023), 10u);
  EXPECT_EQ(LatencyHistogram::BucketIndex(1024), 11u);
  EXPECT_EQ(LatencyHistogram::BucketIndex(~0ULL),
            LatencyHistogram::kNumBuckets - 1);

  for (std::size_t b = 1; b + 1 < LatencyHistogram::kNumBuckets; ++b) {
    const std::uint64_t lo = LatencyHistogram::BucketLowerBound(b);
    const std::uint64_t hi = LatencyHistogram::BucketUpperBound(b);
    EXPECT_EQ(LatencyHistogram::BucketIndex(lo), b);
    EXPECT_EQ(LatencyHistogram::BucketIndex(hi - 1), b);
    EXPECT_EQ(LatencyHistogram::BucketIndex(hi), b + 1);
  }

  LatencyHistogram& h = ObsHistogram("test.hist.bounds");
  h.Record(0);
  h.Record(1);
  h.Record(7);
  h.Record(8);
  EXPECT_EQ(h.count(), 4u);
  EXPECT_EQ(h.sum(), 16u);
  EXPECT_EQ(h.bucket_count(0), 1u);  // 0
  EXPECT_EQ(h.bucket_count(1), 1u);  // 1
  EXPECT_EQ(h.bucket_count(3), 1u);  // 7 in [4,8)
  EXPECT_EQ(h.bucket_count(4), 1u);  // 8 in [8,16)
  EXPECT_DOUBLE_EQ(h.Mean(), 4.0);
}

TEST_F(MetricsTest, HistogramQuantiles) {
  LatencyHistogram& h = ObsHistogram("test.hist.quantiles");
  for (int i = 0; i < 99; ++i) h.Record(10);   // Bucket [8,16).
  h.Record(1000);                              // Bucket [512,1024).
  EXPECT_EQ(h.QuantileUpperBound(0.5), 15u);
  EXPECT_EQ(h.QuantileUpperBound(0.99), 15u);
  EXPECT_EQ(h.QuantileUpperBound(1.0), 1023u);
}

TEST_F(MetricsTest, DisabledModeIsANoOp) {
  Counter& c = ObsCounter("test.disabled.counter");
  Gauge& g = ObsGauge("test.disabled.gauge");
  LatencyHistogram& h = ObsHistogram("test.disabled.hist");
  MetricsRegistry::Global().set_enabled(false);
  c.Add(5);
  g.Set(1.0);
  h.Record(123);
  {
    ScopedStageTimer timer("test_disabled_stage");
    EXPECT_EQ(ScopedStageTimer::CurrentPath(), "");  // No path tracking.
  }
  MetricsRegistry::Global().set_enabled(true);
  EXPECT_EQ(c.value(), 0u);
  EXPECT_DOUBLE_EQ(g.value(), 0.0);
  EXPECT_EQ(h.count(), 0u);
  const MetricsSnapshot snapshot = MetricsRegistry::Global().Snapshot();
  EXPECT_EQ(snapshot.Find("stage.test_disabled_stage.ns"), nullptr);
}

TEST_F(MetricsTest, ScopedTimerNesting) {
  {
    ScopedStageTimer outer("outer");
    EXPECT_EQ(ScopedStageTimer::CurrentPath(), "outer");
    {
      ScopedStageTimer inner("inner");
      EXPECT_EQ(ScopedStageTimer::CurrentPath(), "outer/inner");
    }
    EXPECT_EQ(ScopedStageTimer::CurrentPath(), "outer");
  }
  EXPECT_EQ(ScopedStageTimer::CurrentPath(), "");

  const MetricsSnapshot snapshot = MetricsRegistry::Global().Snapshot();
  const MetricsSnapshot::Entry* outer = snapshot.Find("stage.outer.ns");
  const MetricsSnapshot::Entry* inner = snapshot.Find("stage.outer/inner.ns");
  ASSERT_NE(outer, nullptr);
  ASSERT_NE(inner, nullptr);
  EXPECT_EQ(outer->hist_count, 1u);
  EXPECT_EQ(inner->hist_count, 1u);
  EXPECT_GE(outer->hist_sum, inner->hist_sum);  // Outer contains inner.
}

TEST_F(MetricsTest, TimerPathIsPerThread) {
  ScopedStageTimer outer("main_thread_stage");
  std::thread other([] {
    EXPECT_EQ(ScopedStageTimer::CurrentPath(), "");
    ScopedStageTimer t("worker_stage");
    EXPECT_EQ(ScopedStageTimer::CurrentPath(), "worker_stage");
  });
  other.join();
  EXPECT_EQ(ScopedStageTimer::CurrentPath(), "main_thread_stage");
}

TEST_F(MetricsTest, ResetValuesKeepsRegistrations) {
  Counter& c = ObsCounter("test.reset");
  c.Add(7);
  const std::size_t metrics_before = MetricsRegistry::Global().num_metrics();
  MetricsRegistry::Global().ResetValues();
  EXPECT_EQ(c.value(), 0u);
  EXPECT_EQ(MetricsRegistry::Global().num_metrics(), metrics_before);
  c.Add(3);  // The interned reference stays live.
  EXPECT_EQ(c.value(), 3u);
}

TEST_F(MetricsTest, SnapshotIsSortedAndTyped) {
  ObsCounter("test.snap.b").Add(2);
  ObsGauge("test.snap.a").Set(1.5);
  const MetricsSnapshot snapshot = MetricsRegistry::Global().Snapshot();
  ASSERT_GE(snapshot.entries.size(), 2u);
  for (std::size_t i = 1; i < snapshot.entries.size(); ++i) {
    EXPECT_LT(snapshot.entries[i - 1].name, snapshot.entries[i].name);
  }
  const MetricsSnapshot::Entry* a = snapshot.Find("test.snap.a");
  const MetricsSnapshot::Entry* b = snapshot.Find("test.snap.b");
  ASSERT_NE(a, nullptr);
  ASSERT_NE(b, nullptr);
  EXPECT_EQ(a->type, MetricType::kGauge);
  EXPECT_DOUBLE_EQ(a->gauge_value, 1.5);
  EXPECT_EQ(b->type, MetricType::kCounter);
  EXPECT_EQ(b->counter_value, 2u);
  EXPECT_EQ(snapshot.Find("test.snap.missing"), nullptr);
}

TEST_F(MetricsTest, ExporterRoundTrip) {
  ObsCounter("test.rt.counter").Add(12);
  ObsGauge("test.rt.gauge").Set(0.5132);
  LatencyHistogram& h = ObsHistogram("test.rt.hist");
  h.Record(0);
  h.Record(9);
  h.Record(9);
  h.Record(900);

  MetricsSnapshot snapshot = MetricsRegistry::Global().Snapshot();
  snapshot.epoch_id = 3;
  const std::string text = SnapshotToJsonLines(snapshot);

  MetricsSnapshot parsed;
  ASSERT_TRUE(ParseJsonLines(text, &parsed).ok()) << text;
  EXPECT_EQ(parsed.epoch_id, 3u);
  ASSERT_EQ(parsed.entries.size(), snapshot.entries.size());
  for (std::size_t i = 0; i < parsed.entries.size(); ++i) {
    const MetricsSnapshot::Entry& want = snapshot.entries[i];
    const MetricsSnapshot::Entry& got = parsed.entries[i];
    EXPECT_EQ(got.name, want.name);
    EXPECT_EQ(got.type, want.type);
    EXPECT_EQ(got.counter_value, want.counter_value);
    EXPECT_DOUBLE_EQ(got.gauge_value, want.gauge_value);
    EXPECT_EQ(got.hist_count, want.hist_count);
    EXPECT_EQ(got.hist_sum, want.hist_sum);
    EXPECT_EQ(got.hist_buckets, want.hist_buckets);
  }
}

TEST_F(MetricsTest, ParseRejectsMixedEpochs) {
  const std::string text =
      "{\"epoch\":1,\"name\":\"a\",\"type\":\"counter\",\"value\":1}\n"
      "{\"epoch\":2,\"name\":\"b\",\"type\":\"counter\",\"value\":1}\n";
  MetricsSnapshot parsed;
  EXPECT_FALSE(ParseJsonLines(text, &parsed).ok());
}

}  // namespace
}  // namespace dcs
