#include "dcs/report.h"

#include <gtest/gtest.h>

namespace dcs {
namespace {

TEST(ReportJsonTest, AlignedJsonShape) {
  AlignedReport report;
  report.common_content_detected = true;
  report.matrix_rows = 24;
  report.matrix_cols = 8192;
  report.routers = {0, 3, 7};
  report.signature_columns = {11, 512};
  EXPECT_EQ(report.ToJson(),
            "{\"detected\":true,\"matrix_rows\":24,\"matrix_cols\":8192,"
            "\"routers\":[0,3,7],\"signature_columns\":[11,512]}");
}

TEST(ReportJsonTest, AlignedEmptyClear) {
  AlignedReport report;
  EXPECT_EQ(report.ToJson(),
            "{\"detected\":false,\"matrix_rows\":0,\"matrix_cols\":0,"
            "\"routers\":[],\"signature_columns\":[]}");
}

TEST(ReportJsonTest, UnalignedJsonWithClusters) {
  UnalignedReport report;
  report.common_content_detected = true;
  report.largest_component = 80;
  report.er_threshold = 50;
  report.num_vertices = 320;
  report.num_edges = 900;
  report.routers = {1, 2};
  report.clusters = {{GroupRef{1, 4}, GroupRef{2, 9}}, {GroupRef{1, 0}}};
  EXPECT_EQ(report.ToJson(),
            "{\"detected\":true,\"largest_component\":80,"
            "\"er_threshold\":50,\"num_vertices\":320,\"num_edges\":900,"
            "\"routers\":[1,2],\"clusters\":[[{\"router\":1,\"group\":4},"
            "{\"router\":2,\"group\":9}],[{\"router\":1,\"group\":0}]]}");
}

TEST(ReportJsonTest, UnalignedEmpty) {
  UnalignedReport report;
  EXPECT_EQ(report.ToJson(),
            "{\"detected\":false,\"largest_component\":0,"
            "\"er_threshold\":0,\"num_vertices\":0,\"num_edges\":0,"
            "\"routers\":[],\"clusters\":[]}");
}

}  // namespace
}  // namespace dcs
