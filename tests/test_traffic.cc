#include <algorithm>
#include <map>
#include <set>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "traffic/content_catalog.h"
#include "traffic/flow_generator.h"
#include "traffic/trace_synthesizer.h"

namespace dcs {
namespace {

TEST(ContentCatalogTest, DeterministicById) {
  ContentCatalog catalog(1);
  EXPECT_EQ(catalog.ContentBytes(7, 100), catalog.ContentBytes(7, 100));
  EXPECT_NE(catalog.ContentBytes(7, 100), catalog.ContentBytes(8, 100));
}

TEST(ContentCatalogTest, SeedSeparatesCatalogs) {
  ContentCatalog a(1);
  ContentCatalog b(2);
  EXPECT_NE(a.ContentBytes(7, 64), b.ContentBytes(7, 64));
}

TEST(ContentCatalogTest, PrefixStability) {
  // Longer requests extend, not reshuffle, the object.
  ContentCatalog catalog(1);
  const std::string small = catalog.ContentBytes(3, 50);
  const std::string big = catalog.ContentBytes(3, 100);
  EXPECT_EQ(big.substr(0, 50), small);
}

TEST(ContentCatalogTest, ContentForPacketsSizes) {
  ContentCatalog catalog(1);
  EXPECT_EQ(catalog.ContentForPackets(5, 10, 536).size(), 5360u);
}

TEST(FlowGeneratorTest, ProducesAtLeastRequestedPackets) {
  Rng rng(3);
  BackgroundTrafficOptions opts;
  FlowGenerator gen(opts, &rng);
  PacketTrace trace;
  gen.Generate(5000, &trace);
  EXPECT_GE(trace.size(), 5000u);
  // Overshoot bounded by one flow's tail.
  EXPECT_LT(trace.size(), 5000u + opts.max_flow_packets);
}

TEST(FlowGeneratorTest, PacketSizeMixRoughlyMatches) {
  Rng rng(4);
  BackgroundTrafficOptions opts;
  FlowGenerator gen(opts, &rng);
  PacketTrace trace;
  gen.Generate(20000, &trace);
  std::map<std::size_t, int> size_counts;
  for (const Packet& pkt : trace) ++size_counts[pkt.payload.size()];
  const double total = static_cast<double>(trace.size());
  EXPECT_NEAR(size_counts[0] / total, opts.frac_small, 0.05);
  EXPECT_NEAR(size_counts[536] / total, opts.frac_mss, 0.05);
  EXPECT_NEAR(size_counts[1460] / total, opts.frac_large, 0.05);
}

TEST(FlowGeneratorTest, PayloadsDifferAcrossFlows) {
  Rng rng(5);
  BackgroundTrafficOptions opts;
  opts.frac_small = 0.0;  // All packets carry payload.
  FlowGenerator gen(opts, &rng);
  PacketTrace trace;
  gen.Generate(2000, &trace);
  std::set<std::string> first_bytes;
  for (const Packet& pkt : trace) {
    first_bytes.insert(pkt.payload.substr(0, 16));
  }
  // Essentially all payload prefixes distinct (random 16-byte strings).
  EXPECT_GT(first_bytes.size(), trace.size() * 95 / 100);
}

TEST(TraceSynthesizerTest, ProducesOneTracePerRouter) {
  ScenarioOptions scenario;
  scenario.num_routers = 4;
  scenario.background_packets_per_router = 500;
  ContentCatalog catalog(9);
  const auto traces = SynthesizeScenario(scenario, catalog);
  ASSERT_EQ(traces.size(), 4u);
  for (const auto& trace : traces) EXPECT_GE(trace.size(), 500u);
}

TEST(TraceSynthesizerTest, AlignedPlantAppearsIdenticallyAtChosenRouters) {
  ScenarioOptions scenario;
  scenario.num_routers = 3;
  scenario.background_packets_per_router = 200;
  PlantedContent plant;
  plant.content_id = 42;
  plant.content_bytes = 536 * 5;
  plant.router_ids = {0, 2};
  plant.aligned = true;
  scenario.planted = {plant};
  ContentCatalog catalog(9);
  const auto traces = SynthesizeScenario(scenario, catalog);

  const std::string content = catalog.ContentBytes(42, 536 * 5);
  const std::string first_segment = content.substr(0, 536);
  auto contains_segment = [&](const PacketTrace& trace) {
    return std::any_of(trace.begin(), trace.end(), [&](const Packet& pkt) {
      return pkt.payload == first_segment;
    });
  };
  EXPECT_TRUE(contains_segment(traces[0]));
  EXPECT_FALSE(contains_segment(traces[1]));
  EXPECT_TRUE(contains_segment(traces[2]));
}

TEST(TraceSynthesizerTest, UnalignedPlantUsesOneFlowPerInstance) {
  ScenarioOptions scenario;
  scenario.num_routers = 1;
  scenario.background_packets_per_router = 100;
  PlantedContent plant;
  plant.content_id = 7;
  plant.content_bytes = 536 * 8;
  plant.router_ids = {0};
  plant.aligned = false;
  plant.instances_per_router = 3;
  scenario.planted = {plant};
  ContentCatalog catalog(1);
  const auto traces = SynthesizeScenario(scenario, catalog);

  // Count distinct flows that carry a known content byte sequence: the
  // middle segment (unaffected by prefix boundaries) must appear in 3
  // distinct flows only when shifts allow, but each instance must at least
  // put >= 8 packets into a single flow.
  std::map<std::uint64_t, int> packets_per_flow;
  for (const Packet& pkt : traces[0]) {
    ++packets_per_flow[HashFlowLabel(pkt.flow, 0)];
  }
  int big_flows = 0;
  for (const auto& [flow, count] : packets_per_flow) {
    if (count >= 8) ++big_flows;
  }
  EXPECT_GE(big_flows, 3);
}

TEST(TraceSynthesizerTest, DeterministicBySeed) {
  ScenarioOptions scenario;
  scenario.num_routers = 2;
  scenario.background_packets_per_router = 300;
  scenario.seed = 77;
  ContentCatalog catalog(3);
  const auto a = SynthesizeScenario(scenario, catalog);
  const auto b = SynthesizeScenario(scenario, catalog);
  ASSERT_EQ(a[0].size(), b[0].size());
  for (std::size_t i = 0; i < a[0].size(); ++i) {
    ASSERT_EQ(a[0][i].payload, b[0][i].payload) << "packet " << i;
  }
}

}  // namespace
}  // namespace dcs
