#include "analysis/cluster_separation.h"

#include <algorithm>

#include <gtest/gtest.h>

#include "analysis/unaligned_detector.h"
#include "common/rng.h"
#include "graph/er_random.h"

namespace dcs {
namespace {

TEST(ClusterSeparationTest, SplitsTwoDisjointCliques) {
  Graph g(20);
  for (std::uint32_t i = 0; i < 5; ++i) {
    for (std::uint32_t j = i + 1; j < 5; ++j) g.AddEdge(i, j);
  }
  for (std::uint32_t i = 10; i < 14; ++i) {
    for (std::uint32_t j = i + 1; j < 14; ++j) g.AddEdge(i, j);
  }
  g.Finalize();
  const std::vector<Graph::VertexId> detected = {0, 1, 2,  3,  4,
                                                 10, 11, 12, 13};
  const auto clusters =
      SeparateClusters(g, detected, ClusterSeparationOptions{});
  ASSERT_EQ(clusters.size(), 2u);
  EXPECT_EQ(clusters[0], (std::vector<Graph::VertexId>{0, 1, 2, 3, 4}));
  EXPECT_EQ(clusters[1], (std::vector<Graph::VertexId>{10, 11, 12, 13}));
}

TEST(ClusterSeparationTest, DropsSingletonNoise) {
  Graph g(10);
  g.AddEdge(0, 1);
  g.AddEdge(1, 2);
  g.AddEdge(0, 2);
  g.Finalize();
  // Vertex 7 was dragged in by expansion but connects to nothing detected.
  const std::vector<Graph::VertexId> detected = {0, 1, 2, 7};
  const auto clusters =
      SeparateClusters(g, detected, ClusterSeparationOptions{});
  ASSERT_EQ(clusters.size(), 1u);
  EXPECT_EQ(clusters[0], (std::vector<Graph::VertexId>{0, 1, 2}));
}

TEST(ClusterSeparationTest, LargestFirstOrdering) {
  Graph g(30);
  for (std::uint32_t i = 0; i < 4; ++i) {
    for (std::uint32_t j = i + 1; j < 4; ++j) g.AddEdge(i, j);
  }
  for (std::uint32_t i = 20; i < 27; ++i) {
    for (std::uint32_t j = i + 1; j < 27; ++j) g.AddEdge(i, j);
  }
  g.Finalize();
  std::vector<Graph::VertexId> detected = {0, 1, 2, 3};
  for (std::uint32_t v = 20; v < 27; ++v) detected.push_back(v);
  const auto clusters =
      SeparateClusters(g, detected, ClusterSeparationOptions{});
  ASSERT_EQ(clusters.size(), 2u);
  EXPECT_EQ(clusters[0].size(), 7u);
  EXPECT_EQ(clusters[1].size(), 4u);
}

TEST(ClusterSeparationTest, EmptyDetectionYieldsNoClusters) {
  Graph g(5);
  g.Finalize();
  EXPECT_TRUE(
      SeparateClusters(g, {}, ClusterSeparationOptions{}).empty());
}

TEST(ClusterSeparationTest, IgnoresEdgesToUndetectedVertices) {
  Graph g(6);
  // 0-1 detected; both connect to undetected hub 5, not to each other.
  g.AddEdge(0, 5);
  g.AddEdge(1, 5);
  g.Finalize();
  ClusterSeparationOptions opts;
  opts.min_cluster_size = 1;
  const auto clusters = SeparateClusters(g, {0, 1}, opts);
  // Two singletons: the hub must not glue them.
  EXPECT_EQ(clusters.size(), 2u);
}

// Shared fixture: two contents planted in disjoint group sets of one graph.
struct TwoContentGraph {
  Graph graph{0};
  std::vector<Graph::VertexId> first;
  std::vector<Graph::VertexId> second;
};

TwoContentGraph MakeTwoContentGraph(std::uint64_t seed) {
  Rng rng(seed);
  const std::size_t n = 8000;
  const double p1 = 8.2 / static_cast<double>(n);
  PlantedGraph planted = SamplePlantedGraph(n, p1, 70, 0.25, &rng);
  TwoContentGraph result;
  result.first = planted.pattern_vertices;
  for (Graph::VertexId v = 0; result.second.size() < 60; ++v) {
    if (!std::binary_search(result.first.begin(), result.first.end(), v)) {
      result.second.push_back(v);
    }
  }
  AddPlantedClique(&planted.graph, result.second, 0.25, &rng);
  planted.graph.Finalize();
  result.graph = std::move(planted.graph);
  return result;
}

std::size_t Overlap(const std::vector<Graph::VertexId>& a,
                    const std::vector<Graph::VertexId>& b) {
  std::vector<Graph::VertexId> common;
  std::set_intersection(a.begin(), a.end(), b.begin(), b.end(),
                        std::back_inserter(common));
  return common.size();
}

TEST(ClusterSeparationTest, WideCoreMixedClusterIsSeparated) {
  // With beta large enough for both contents, the single core mixes them;
  // separation with triangle support recovers the two sets.
  const TwoContentGraph tc = MakeTwoContentGraph(3);
  UnalignedDetectorOptions detector;
  detector.beta = 140;  // Room for both patterns.
  detector.expand_min_edges = 2;
  const UnalignedDetection detection =
      DetectUnalignedPattern(tc.graph, detector);
  // Sanity: the detection holds vertices from both contents.
  ASSERT_GT(Overlap(detection.detected, tc.first), 40u);
  ASSERT_GT(Overlap(detection.detected, tc.second), 30u);

  ClusterSeparationOptions sep;
  sep.min_cluster_size = 10;
  // Random background edges between the two clusters (~4 expected here)
  // would merge them; triangle support severs those bridges.
  sep.min_common_neighbors = 2;
  const auto clusters = SeparateClusters(tc.graph, detection.detected, sep);
  ASSERT_GE(clusters.size(), 2u);
  const std::size_t c0_first = Overlap(clusters[0], tc.first);
  const std::size_t c0_second = Overlap(clusters[0], tc.second);
  const std::size_t c1_first = Overlap(clusters[1], tc.first);
  const std::size_t c1_second = Overlap(clusters[1], tc.second);
  EXPECT_TRUE((c0_first > 3 * c0_second && c1_second > 3 * c1_first) ||
              (c0_second > 3 * c0_first && c1_first > 3 * c1_second))
      << c0_first << " " << c0_second << " / " << c1_first << " "
      << c1_second;
}

TEST(MultiPatternUnalignedTest, IterativeDetectionFindsBothContents) {
  // With a tight core (beta = 45), FindCore is winner-take-all: one pass
  // returns only the stronger content. The iterated API removes it and
  // finds the second.
  const TwoContentGraph tc = MakeTwoContentGraph(3);
  MultiPatternOptions options;
  options.detector.beta = 45;
  options.detector.expand_min_edges = 2;
  options.p_background = 8.2 / 8000.0;
  const auto detections =
      DetectMultipleUnalignedPatterns(tc.graph, options);
  ASSERT_GE(detections.size(), 2u);
  // First detection dominated by one content, second by the other.
  const bool first_is_a =
      Overlap(detections[0].detected, tc.first) >
      Overlap(detections[0].detected, tc.second);
  const auto& stronger = first_is_a ? tc.first : tc.second;
  const auto& weaker = first_is_a ? tc.second : tc.first;
  EXPECT_GT(Overlap(detections[0].detected, stronger), 40u);
  EXPECT_GT(Overlap(detections[1].detected, weaker), 30u);
}

TEST(MultiPatternUnalignedTest, StopsOnPureNoise) {
  Rng rng(9);
  const std::size_t n = 5000;
  const Graph g = SampleErGraph(n, 8.2 / static_cast<double>(n), &rng);
  MultiPatternOptions options;
  options.detector.beta = 30;
  options.p_background = 8.2 / static_cast<double>(n);
  EXPECT_TRUE(DetectMultipleUnalignedPatterns(g, options).empty());
}

TEST(MultiPatternUnalignedTest, SinglePatternSingleDetection) {
  Rng rng(10);
  const std::size_t n = 8000;
  const double p1 = 8.2 / static_cast<double>(n);
  const PlantedGraph planted = SamplePlantedGraph(n, p1, 80, 0.25, &rng);
  MultiPatternOptions options;
  options.detector.beta = 40;
  options.detector.expand_min_edges = 2;
  options.p_background = p1;
  const auto detections =
      DetectMultipleUnalignedPatterns(planted.graph, options);
  ASSERT_EQ(detections.size(), 1u);
  EXPECT_GT(Overlap(detections[0].detected, planted.pattern_vertices), 50u);
}

TEST(MultiPatternUnalignedTest, MaxPatternsCapRespected) {
  const TwoContentGraph tc = MakeTwoContentGraph(11);
  MultiPatternOptions options;
  options.detector.beta = 45;
  options.detector.expand_min_edges = 2;
  options.p_background = 8.2 / 8000.0;
  options.max_patterns = 1;
  EXPECT_EQ(DetectMultipleUnalignedPatterns(tc.graph, options).size(), 1u);
}

}  // namespace
}  // namespace dcs
