#include "dcs/monitor.h"

#include <gtest/gtest.h>

namespace dcs {
namespace {

Digest SmallAlignedDigest(std::uint32_t router, std::size_t bits) {
  Digest digest;
  digest.router_id = router;
  digest.kind = DigestKind::kAligned;
  digest.rows.push_back(BitVector(bits));
  digest.packets_covered = 10;
  digest.raw_bytes_covered = 10000;
  return digest;
}

DcsMonitor MakeMonitor() {
  AlignedPipelineOptions aligned;
  aligned.n_prime = 64;
  UnalignedPipelineOptions unaligned;
  return DcsMonitor(aligned, unaligned);
}

TEST(MonitorTest, RejectsEmptyDigest) {
  DcsMonitor monitor = MakeMonitor();
  Digest empty;
  EXPECT_EQ(monitor.AddDigest(empty).code(),
            Status::Code::kInvalidArgument);
}

TEST(MonitorTest, RejectsShapeMismatch) {
  DcsMonitor monitor = MakeMonitor();
  ASSERT_TRUE(monitor.AddDigest(SmallAlignedDigest(0, 1024)).ok());
  EXPECT_FALSE(monitor.AddDigest(SmallAlignedDigest(1, 2048)).ok());
  EXPECT_TRUE(monitor.AddDigest(SmallAlignedDigest(1, 1024)).ok());
  EXPECT_EQ(monitor.num_aligned_digests(), 2u);
}

TEST(MonitorTest, TracksByteAccounting) {
  DcsMonitor monitor = MakeMonitor();
  const Digest d = SmallAlignedDigest(0, 1024);
  ASSERT_TRUE(monitor.AddDigest(d).ok());
  EXPECT_EQ(monitor.raw_bytes_summarized(), 10000u);
  EXPECT_EQ(monitor.digest_bytes_received(), d.EncodedSizeBytes());
}

TEST(MonitorTest, ClearEpochResets) {
  DcsMonitor monitor = MakeMonitor();
  ASSERT_TRUE(monitor.AddDigest(SmallAlignedDigest(0, 1024)).ok());
  monitor.ClearEpoch();
  EXPECT_EQ(monitor.num_aligned_digests(), 0u);
  EXPECT_EQ(monitor.raw_bytes_summarized(), 0u);
  // A different shape is fine after clearing.
  EXPECT_TRUE(monitor.AddDigest(SmallAlignedDigest(0, 2048)).ok());
}

TEST(MonitorTest, AlignedAnalysisNeedsTwoDigests) {
  DcsMonitor monitor = MakeMonitor();
  ASSERT_TRUE(monitor.AddDigest(SmallAlignedDigest(0, 1024)).ok());
  const AlignedReport report = monitor.AnalyzeAligned();
  EXPECT_FALSE(report.common_content_detected);
  EXPECT_EQ(report.matrix_rows, 0u);
}

TEST(MonitorTest, EmptyBitmapsDetectNothing) {
  DcsMonitor monitor = MakeMonitor();
  for (std::uint32_t r = 0; r < 5; ++r) {
    ASSERT_TRUE(monitor.AddDigest(SmallAlignedDigest(r, 1024)).ok());
  }
  const AlignedReport report = monitor.AnalyzeAligned();
  EXPECT_FALSE(report.common_content_detected);
  EXPECT_EQ(report.matrix_rows, 5u);
  EXPECT_EQ(report.matrix_cols, 1024u);
}

TEST(MonitorTest, DuplicateRouterRejected) {
  DcsMonitor monitor = MakeMonitor();
  ASSERT_TRUE(monitor.AddDigest(SmallAlignedDigest(0, 1024)).ok());
  // Same router, same kind: a replay, even with identical content.
  EXPECT_EQ(monitor.AddDigest(SmallAlignedDigest(0, 1024)).code(),
            Status::Code::kInvalidArgument);
  EXPECT_EQ(monitor.num_aligned_digests(), 1u);
  EXPECT_EQ(monitor.ingest_stats().rejected_duplicate, 1u);
  // The offender is quarantined for the rest of the epoch.
  EXPECT_TRUE(monitor.IsQuarantined(0));
  EXPECT_EQ(monitor.AddDigest(SmallAlignedDigest(0, 1024)).code(),
            Status::Code::kFailedPrecondition);
}

TEST(MonitorTest, EpochSkewRejectedAfterLock) {
  DcsMonitor monitor = MakeMonitor();
  Digest first = SmallAlignedDigest(0, 1024);
  first.epoch_id = 41;
  ASSERT_TRUE(monitor.AddDigest(first).ok());  // Locks the epoch to 41.
  Digest stale = SmallAlignedDigest(1, 1024);
  stale.epoch_id = 40;
  EXPECT_EQ(monitor.AddDigest(stale).code(),
            Status::Code::kFailedPrecondition);
  EXPECT_EQ(monitor.ingest_stats().rejected_epoch_skew, 1u);
  // A wider window admits it (fresh monitor: options are pre-epoch only).
  IngestOptions ingest;
  ingest.max_epoch_skew = 1;
  DcsMonitor tolerant(AlignedPipelineOptions{}, UnalignedPipelineOptions{},
                      AnalysisContext{}, ingest);
  ASSERT_TRUE(tolerant.AddDigest(first).ok());
  EXPECT_TRUE(tolerant.AddDigest(stale).ok());
}

TEST(MonitorTest, InternalShapeLieRejectedBeforeAnalysis) {
  DcsMonitor monitor = MakeMonitor();
  Digest liar = SmallAlignedDigest(0, 1024);
  liar.num_groups = 7;  // An aligned digest must be 1 group x 1 array.
  EXPECT_EQ(monitor.AddDigest(liar).code(), Status::Code::kCorruption);
  EXPECT_EQ(monitor.ingest_stats().rejected_shape, 1u);

  // Unaligned: row count must equal num_groups * arrays_per_group, with
  // uniform row sizes — BuildUnalignedMatrix hard-asserts this later.
  // Each lie quarantines its sender, so every attempt gets a fresh router.
  Digest unaligned;
  unaligned.kind = DigestKind::kUnaligned;
  unaligned.num_groups = 2;
  unaligned.arrays_per_group = 2;
  unaligned.router_id = 1;
  unaligned.rows = {BitVector(64), BitVector(64), BitVector(64)};
  EXPECT_EQ(monitor.AddDigest(unaligned).code(), Status::Code::kCorruption);
  unaligned.router_id = 2;
  unaligned.rows.push_back(BitVector(32));  // Right count, ragged sizes.
  EXPECT_EQ(monitor.AddDigest(unaligned).code(), Status::Code::kCorruption);
  EXPECT_TRUE(monitor.IsQuarantined(1));
  EXPECT_TRUE(monitor.IsQuarantined(2));
  unaligned.router_id = 3;
  unaligned.rows.back() = BitVector(64);
  EXPECT_TRUE(monitor.AddDigest(unaligned).ok());
}

TEST(MonitorTest, IngestStatsAndCalibrationSurface) {
  AlignedPipelineOptions aligned;
  aligned.n_prime = 64;
  IngestOptions ingest;
  ingest.expected_routers = 4;
  DcsMonitor monitor(aligned, UnalignedPipelineOptions{}, AnalysisContext{},
                     ingest);
  ASSERT_TRUE(monitor.AddDigest(SmallAlignedDigest(0, 1024)).ok());
  ASSERT_TRUE(monitor.AddDigest(SmallAlignedDigest(1, 1024)).ok());

  const EpochIngestStats& stats = monitor.ingest_stats();
  EXPECT_EQ(stats.accepted, 2u);
  EXPECT_EQ(stats.observed_routers, 2u);
  EXPECT_EQ(stats.missing_routers(), 2u);
  EXPECT_TRUE(stats.degraded());
  EXPECT_NE(stats.ToString().find("DEGRADED"), std::string::npos);

  const AlignedReport report = monitor.AnalyzeAligned();
  EXPECT_TRUE(report.calibration.populated());
  EXPECT_TRUE(report.calibration.degraded);
  EXPECT_EQ(report.calibration.observed_routers, 2u);
  EXPECT_GT(report.calibration.aligned_min_nno_columns, 0);
  // The serialized forms carry the calibration...
  EXPECT_NE(report.ToJson().find("\"calibration\""), std::string::npos);
  EXPECT_NE(report.ToString().find("DEGRADED"), std::string::npos);
  // ...while a directly built report (no monitor) keeps the legacy forms.
  EXPECT_EQ(AlignedReport{}.ToJson().find("calibration"),
            std::string::npos);

  monitor.ClearEpoch();
  EXPECT_EQ(monitor.ingest_stats().accepted, 0u);
  EXPECT_EQ(monitor.ingest_stats().observed_routers, 0u);
}

TEST(MonitorTest, ReportToStringSmoke) {
  AlignedReport a;
  EXPECT_NE(a.ToString().find("clear"), std::string::npos);
  a.common_content_detected = true;
  EXPECT_NE(a.ToString().find("DETECTED"), std::string::npos);
  UnalignedReport u;
  u.largest_component = 7;
  EXPECT_NE(u.ToString().find("largest_cc=7"), std::string::npos);
}

}  // namespace
}  // namespace dcs
