#include "dcs/monitor.h"

#include <gtest/gtest.h>

namespace dcs {
namespace {

Digest SmallAlignedDigest(std::uint32_t router, std::size_t bits) {
  Digest digest;
  digest.router_id = router;
  digest.kind = DigestKind::kAligned;
  digest.rows.push_back(BitVector(bits));
  digest.packets_covered = 10;
  digest.raw_bytes_covered = 10000;
  return digest;
}

DcsMonitor MakeMonitor() {
  AlignedPipelineOptions aligned;
  aligned.n_prime = 64;
  UnalignedPipelineOptions unaligned;
  return DcsMonitor(aligned, unaligned);
}

TEST(MonitorTest, RejectsEmptyDigest) {
  DcsMonitor monitor = MakeMonitor();
  Digest empty;
  EXPECT_EQ(monitor.AddDigest(empty).code(),
            Status::Code::kInvalidArgument);
}

TEST(MonitorTest, RejectsShapeMismatch) {
  DcsMonitor monitor = MakeMonitor();
  ASSERT_TRUE(monitor.AddDigest(SmallAlignedDigest(0, 1024)).ok());
  EXPECT_FALSE(monitor.AddDigest(SmallAlignedDigest(1, 2048)).ok());
  EXPECT_TRUE(monitor.AddDigest(SmallAlignedDigest(1, 1024)).ok());
  EXPECT_EQ(monitor.num_aligned_digests(), 2u);
}

TEST(MonitorTest, TracksByteAccounting) {
  DcsMonitor monitor = MakeMonitor();
  const Digest d = SmallAlignedDigest(0, 1024);
  ASSERT_TRUE(monitor.AddDigest(d).ok());
  EXPECT_EQ(monitor.raw_bytes_summarized(), 10000u);
  EXPECT_EQ(monitor.digest_bytes_received(), d.EncodedSizeBytes());
}

TEST(MonitorTest, ClearEpochResets) {
  DcsMonitor monitor = MakeMonitor();
  ASSERT_TRUE(monitor.AddDigest(SmallAlignedDigest(0, 1024)).ok());
  monitor.ClearEpoch();
  EXPECT_EQ(monitor.num_aligned_digests(), 0u);
  EXPECT_EQ(monitor.raw_bytes_summarized(), 0u);
  // A different shape is fine after clearing.
  EXPECT_TRUE(monitor.AddDigest(SmallAlignedDigest(0, 2048)).ok());
}

TEST(MonitorTest, AlignedAnalysisNeedsTwoDigests) {
  DcsMonitor monitor = MakeMonitor();
  ASSERT_TRUE(monitor.AddDigest(SmallAlignedDigest(0, 1024)).ok());
  const AlignedReport report = monitor.AnalyzeAligned();
  EXPECT_FALSE(report.common_content_detected);
  EXPECT_EQ(report.matrix_rows, 0u);
}

TEST(MonitorTest, EmptyBitmapsDetectNothing) {
  DcsMonitor monitor = MakeMonitor();
  for (std::uint32_t r = 0; r < 5; ++r) {
    ASSERT_TRUE(monitor.AddDigest(SmallAlignedDigest(r, 1024)).ok());
  }
  const AlignedReport report = monitor.AnalyzeAligned();
  EXPECT_FALSE(report.common_content_detected);
  EXPECT_EQ(report.matrix_rows, 5u);
  EXPECT_EQ(report.matrix_cols, 1024u);
}

TEST(MonitorTest, ReportToStringSmoke) {
  AlignedReport a;
  EXPECT_NE(a.ToString().find("clear"), std::string::npos);
  a.common_content_detected = true;
  EXPECT_NE(a.ToString().find("DETECTED"), std::string::npos);
  UnalignedReport u;
  u.largest_component = 7;
  EXPECT_NE(u.ToString().find("largest_cc=7"), std::string::npos);
}

}  // namespace
}  // namespace dcs
