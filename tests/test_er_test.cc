#include "analysis/er_test.h"

#include <gtest/gtest.h>

#include "common/rng.h"
#include "graph/er_random.h"

namespace dcs {
namespace {

TEST(ErTestTest, NullGraphPassesBelowThreshold) {
  Rng rng(1);
  int false_positives = 0;
  const std::size_t n = 20000;
  const std::size_t threshold = DefaultErTestThreshold(n);
  for (int trial = 0; trial < 10; ++trial) {
    const Graph g = SampleErGraph(n, 0.665 / static_cast<double>(n), &rng);
    if (RunErTest(g, threshold).pattern_detected) ++false_positives;
  }
  EXPECT_EQ(false_positives, 0);
}

TEST(ErTestTest, PlantedPatternTripsTheTest) {
  Rng rng(2);
  const std::size_t n = 20000;
  const std::size_t threshold = DefaultErTestThreshold(n);
  int detected = 0;
  for (int trial = 0; trial < 10; ++trial) {
    // A pattern comfortably above threshold: 150 vertices at p2 = 0.17.
    const PlantedGraph planted = SamplePlantedGraph(
        n, 0.665 / static_cast<double>(n), 150, 0.17, &rng);
    if (RunErTest(planted.graph, threshold).pattern_detected) ++detected;
  }
  EXPECT_GE(detected, 9);
}

TEST(ErTestTest, LargestComponentReported) {
  Graph g(10);
  g.AddEdge(0, 1);
  g.AddEdge(1, 2);
  g.AddEdge(2, 3);
  g.Finalize();
  const ErTestResult result = RunErTest(g, 3);
  EXPECT_EQ(result.largest_component, 4u);
  EXPECT_TRUE(result.pattern_detected);
  EXPECT_FALSE(RunErTest(g, 4).pattern_detected);
}

TEST(ErTestTest, DefaultThresholdMatchesPaperAtScale) {
  // ~100 at the paper's n = 102,400.
  const std::size_t t = DefaultErTestThreshold(102400);
  EXPECT_GE(t, 95u);
  EXPECT_LE(t, 105u);
  // And sane at small n.
  EXPECT_GE(DefaultErTestThreshold(100), 8u);
  EXPECT_EQ(DefaultErTestThreshold(1), 1u);
}

TEST(ErTestTest, SensitivityGrowsWithPatternSize) {
  Rng rng(3);
  const std::size_t n = 20000;
  const std::size_t threshold = DefaultErTestThreshold(n);
  auto detection_rate = [&](std::size_t n1) {
    int detected = 0;
    for (int trial = 0; trial < 12; ++trial) {
      const PlantedGraph planted = SamplePlantedGraph(
          n, 0.665 / static_cast<double>(n), n1, 0.17, &rng);
      if (RunErTest(planted.graph, threshold).pattern_detected) ++detected;
    }
    return detected;
  };
  // Mirrors Fig 13: larger n1 => lower false negatives. A tiny pattern is
  // mostly missed; a large one is almost always caught.
  const int small = detection_rate(40);
  const int large = detection_rate(160);
  EXPECT_GE(large, 11);
  EXPECT_LT(small, large);
}

}  // namespace
}  // namespace dcs
