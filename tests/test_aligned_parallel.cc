// Differential determinism suite for the parallel aligned-analysis engine:
// Detect / DetectInMatrix / DetectMultipleInMatrix must return bit-identical
// results — rows, columns, the full weight trajectory, and the stop
// iteration — for the serial engine (no pool) and for pools of 1, 2, and 8
// threads. The serial engine is the reference greedy ASID search of Figs 5
// and 6; the sharded passes merge under a total order, so any divergence
// here is a scheduling leak into the detection output.

#include <cstdint>
#include <vector>

#include <gtest/gtest.h>

#include "common/bit_matrix.h"
#include "common/rng.h"
#include "common/thread_pool.h"
#include "analysis/aligned_detector.h"
#include "analysis/synthetic_matrix.h"

namespace dcs {
namespace {

AlignedDetectorOptions SmallDetectorOptions() {
  AlignedDetectorOptions opts;
  opts.first_iteration_hopefuls = 300;
  opts.hopefuls = 150;
  opts.max_iterations = 30;
  return opts;
}

void ExpectSameDetection(const AlignedDetection& serial,
                         const AlignedDetection& pooled,
                         std::size_t num_threads) {
  EXPECT_EQ(serial.pattern_found, pooled.pattern_found)
      << num_threads << " threads";
  EXPECT_EQ(serial.rows, pooled.rows) << num_threads << " threads";
  EXPECT_EQ(serial.columns, pooled.columns) << num_threads << " threads";
  EXPECT_EQ(serial.weight_trajectory, pooled.weight_trajectory)
      << num_threads << " threads";
  EXPECT_EQ(serial.stop_iteration, pooled.stop_iteration)
      << num_threads << " threads";
}

// Shared fixture owning one pool per tested thread count.
class AlignedParallelTest : public ::testing::Test {
 protected:
  AlignedParallelTest() : pool1_(1), pool2_(2), pool8_(8) {}

  std::vector<ThreadPool*> pools() { return {&pool1_, &pool2_, &pool8_}; }

  ThreadPool pool1_;
  ThreadPool pool2_;
  ThreadPool pool8_;
};

TEST_F(AlignedParallelTest, DetectOnScreenedColumns) {
  SyntheticAlignedOptions opts;
  opts.m = 200;
  opts.n = 20000;
  opts.n_prime = 300;
  opts.pattern_rows = 40;
  opts.pattern_cols = 14;
  const AlignedDetector serial(SmallDetectorOptions());
  for (std::uint64_t seed = 1; seed <= 4; ++seed) {
    Rng rng(seed);
    const SyntheticScreened s = SampleScreenedAligned(opts, &rng);
    const AlignedDetection reference = serial.Detect(s.screened);
    EXPECT_FALSE(reference.weight_trajectory.empty());
    for (ThreadPool* pool : pools()) {
      const AlignedDetector parallel(SmallDetectorOptions(),
                                     AnalysisContext{pool});
      ExpectSameDetection(reference, parallel.Detect(s.screened),
                          pool->num_threads());
    }
  }
}

TEST_F(AlignedParallelTest, DetectOnPureNoise) {
  SyntheticAlignedOptions opts;
  opts.m = 150;
  opts.n = 10000;
  opts.n_prime = 250;
  const AlignedDetector serial(SmallDetectorOptions());
  for (std::uint64_t seed = 20; seed <= 22; ++seed) {
    Rng rng(seed);
    const SyntheticScreened s = SampleScreenedAligned(opts, &rng);
    const AlignedDetection reference = serial.Detect(s.screened);
    EXPECT_FALSE(reference.pattern_found);
    for (ThreadPool* pool : pools()) {
      const AlignedDetector parallel(SmallDetectorOptions(),
                                     AnalysisContext{pool});
      ExpectSameDetection(reference, parallel.Detect(s.screened),
                          pool->num_threads());
    }
  }
}

TEST_F(AlignedParallelTest, DetectWithFullTrajectory) {
  // record_full_trajectory exercises every iteration up to the cap, so the
  // trajectories compare across the longest possible run.
  SyntheticAlignedOptions opts;
  opts.m = 200;
  opts.n = 20000;
  opts.n_prime = 300;
  opts.pattern_rows = 40;
  opts.pattern_cols = 14;
  AlignedDetectorOptions detector_opts = SmallDetectorOptions();
  detector_opts.record_full_trajectory = true;
  Rng rng(3);
  const SyntheticScreened s = SampleScreenedAligned(opts, &rng);
  const AlignedDetection reference =
      AlignedDetector(detector_opts).Detect(s.screened);
  for (ThreadPool* pool : pools()) {
    const AlignedDetector parallel(detector_opts, AnalysisContext{pool});
    ExpectSameDetection(reference, parallel.Detect(s.screened),
                        pool->num_threads());
  }
}

TEST_F(AlignedParallelTest, DetectInMatrixWithCoreScanExpansion) {
  // Pattern columns beyond the screen cutoff force the final core scan to
  // contribute columns, covering the sharded scan's merge too.
  SyntheticAlignedOptions opts;
  opts.m = 120;
  opts.n = 3000;
  opts.n_prime = 150;
  opts.pattern_rows = 50;
  opts.pattern_cols = 40;
  const AlignedDetector serial(SmallDetectorOptions());
  for (std::uint64_t seed = 6; seed <= 8; ++seed) {
    Rng rng(seed);
    std::vector<std::uint32_t> pattern_rows;
    std::vector<std::size_t> pattern_cols;
    const BitMatrix matrix =
        SampleLiteralAligned(opts, &rng, &pattern_rows, &pattern_cols);
    const AlignedDetection reference =
        serial.DetectInMatrix(matrix, opts.n_prime);
    ASSERT_TRUE(reference.pattern_found) << "seed " << seed;
    for (ThreadPool* pool : pools()) {
      const AlignedDetector parallel(SmallDetectorOptions(),
                                     AnalysisContext{pool});
      ExpectSameDetection(reference,
                          parallel.DetectInMatrix(matrix, opts.n_prime),
                          pool->num_threads());
    }
  }
}

// Bernoulli(1/2) noise with two disjoint all-1 blocks planted, for the
// multi-pattern detect-erase-repeat loop.
BitMatrix TwoPatternMatrix(Rng* rng) {
  const std::size_t m = 100;
  const std::size_t n = 2000;
  BitMatrix matrix(m, n);
  for (std::size_t r = 0; r < m; ++r) {
    BitVector& row = matrix.row(r);
    std::uint64_t* words = row.mutable_words();
    for (std::size_t w = 0; w < row.num_words(); ++w) words[w] = rng->Next();
    if (n % 64 != 0) words[row.num_words() - 1] &= (1ULL << (n % 64)) - 1;
  }
  // Pattern A: rows 5..49, columns 100..117.
  for (std::size_t r = 5; r < 50; ++r) {
    for (std::size_t c = 100; c < 118; ++c) matrix.Set(r, c);
  }
  // Pattern B: rows 55..94, columns 1500..1515.
  for (std::size_t r = 55; r < 95; ++r) {
    for (std::size_t c = 1500; c < 1516; ++c) matrix.Set(r, c);
  }
  return matrix;
}

TEST_F(AlignedParallelTest, DetectMultipleInMatrix) {
  const std::size_t n_prime = 200;
  const AlignedDetector serial(SmallDetectorOptions());
  for (std::uint64_t seed = 40; seed <= 42; ++seed) {
    Rng rng(seed);
    const BitMatrix matrix = TwoPatternMatrix(&rng);
    const std::vector<AlignedDetection> reference =
        serial.DetectMultipleInMatrix(matrix, n_prime, 4);
    ASSERT_GE(reference.size(), 2u) << "seed " << seed;
    for (ThreadPool* pool : pools()) {
      const AlignedDetector parallel(SmallDetectorOptions(),
                                     AnalysisContext{pool});
      const std::vector<AlignedDetection> detections =
          parallel.DetectMultipleInMatrix(matrix, n_prime, 4);
      ASSERT_EQ(detections.size(), reference.size())
          << "seed " << seed << ", " << pool->num_threads() << " threads";
      for (std::size_t i = 0; i < reference.size(); ++i) {
        ExpectSameDetection(reference[i], detections[i],
                            pool->num_threads());
      }
    }
  }
}

TEST_F(AlignedParallelTest, TieHeavyScreenedInput) {
  // A handful of rows makes almost every product weight collide, so the
  // total-order tie-breaks (not weights) decide the hopefuls lists.
  const std::size_t m = 12;
  const std::size_t n = 600;
  Rng rng(77);
  BitMatrix matrix(m, n);
  for (std::size_t r = 0; r < m; ++r) {
    BitVector& row = matrix.row(r);
    std::uint64_t* words = row.mutable_words();
    for (std::size_t w = 0; w < row.num_words(); ++w) words[w] = rng.Next();
    if (n % 64 != 0) words[row.num_words() - 1] &= (1ULL << (n % 64)) - 1;
  }
  AlignedDetectorOptions opts = SmallDetectorOptions();
  opts.record_full_trajectory = true;  // Keep iterating through the ties.
  const AlignedDetection reference =
      AlignedDetector(opts).DetectInMatrix(matrix, 128);
  for (ThreadPool* pool : pools()) {
    const AlignedDetector parallel(opts, AnalysisContext{pool});
    ExpectSameDetection(reference, parallel.DetectInMatrix(matrix, 128),
                        pool->num_threads());
  }
}

TEST_F(AlignedParallelTest, DegenerateInputsAreSafeOnPools) {
  for (ThreadPool* pool : pools()) {
    const AlignedDetector detector(SmallDetectorOptions(),
                                   AnalysisContext{pool});
    EXPECT_FALSE(detector.Detect(ScreenedColumns{}).pattern_found);
    BitMatrix tiny(2, 2);
    tiny.Set(0, 0);
    EXPECT_FALSE(detector.DetectInMatrix(tiny, 2).pattern_found);
    EXPECT_TRUE(detector.DetectMultipleInMatrix(tiny, 2, 3).empty());
  }
}

}  // namespace
}  // namespace dcs
