#include "sketch/digest.h"

#include <gtest/gtest.h>

namespace dcs {
namespace {

Digest MakeUnalignedDigest() {
  Digest digest;
  digest.router_id = 42;
  digest.epoch_id = 7;
  digest.kind = DigestKind::kUnaligned;
  digest.num_groups = 2;
  digest.arrays_per_group = 3;
  for (std::size_t r = 0; r < 6; ++r) {
    BitVector row(128);
    row.Set(r);
    row.Set(100 + r);
    digest.rows.push_back(row);
  }
  digest.packets_covered = 1234;
  digest.raw_bytes_covered = 1000000;
  return digest;
}

TEST(DigestTest, EncodeDecodeRoundTrip) {
  const Digest original = MakeUnalignedDigest();
  const std::vector<std::uint8_t> bytes = original.Encode();
  EXPECT_EQ(bytes.size(), original.EncodedSizeBytes());

  Digest decoded;
  ASSERT_TRUE(Digest::Decode(bytes, &decoded).ok());
  EXPECT_EQ(decoded.router_id, original.router_id);
  EXPECT_EQ(decoded.epoch_id, original.epoch_id);
  EXPECT_EQ(decoded.kind, original.kind);
  EXPECT_EQ(decoded.num_groups, original.num_groups);
  EXPECT_EQ(decoded.arrays_per_group, original.arrays_per_group);
  EXPECT_EQ(decoded.packets_covered, original.packets_covered);
  EXPECT_EQ(decoded.raw_bytes_covered, original.raw_bytes_covered);
  ASSERT_EQ(decoded.rows.size(), original.rows.size());
  for (std::size_t r = 0; r < decoded.rows.size(); ++r) {
    EXPECT_TRUE(decoded.rows[r] == original.rows[r]) << "row " << r;
  }
}

TEST(DigestTest, ChecksumCatchesBitFlip) {
  std::vector<std::uint8_t> bytes = MakeUnalignedDigest().Encode();
  bytes[bytes.size() / 2] ^= 0x20;
  Digest decoded;
  EXPECT_EQ(Digest::Decode(bytes, &decoded).code(),
            Status::Code::kCorruption);
}

TEST(DigestTest, TruncationRejected) {
  std::vector<std::uint8_t> bytes = MakeUnalignedDigest().Encode();
  bytes.resize(bytes.size() - 9);
  Digest decoded;
  EXPECT_FALSE(Digest::Decode(bytes, &decoded).ok());
}

TEST(DigestTest, TooShortBufferRejected) {
  Digest decoded;
  EXPECT_FALSE(Digest::Decode({1, 2, 3}, &decoded).ok());
}

TEST(DigestTest, CompressionFactorAccounting) {
  Digest digest = MakeUnalignedDigest();
  // Rows hold 2 bits each, so they encode sparse (~5 bytes/row) and the
  // whole digest is ~90 bytes against 1e6 raw bytes.
  const double factor = digest.CompressionFactor();
  EXPECT_GT(factor, 5000.0);
  EXPECT_LT(factor, 20000.0);
}

TEST(DigestTest, CompressionFactorOfEmptyCoverageIsZero) {
  // A digest that covered no traffic must report factor 0, not divide by
  // zero (the encoding itself is never empty — header + checksum).
  Digest idle;
  idle.kind = DigestKind::kAligned;
  idle.rows.push_back(BitVector(128));
  idle.packets_covered = 0;
  idle.raw_bytes_covered = 0;
  EXPECT_EQ(idle.CompressionFactor(), 0.0);
  EXPECT_GT(idle.EncodedSizeBytes(), 0u);

  Digest blank;  // No rows either.
  EXPECT_EQ(blank.CompressionFactor(), 0.0);
}

TEST(DigestTest, SparseRowsShrinkTheEncoding) {
  // A nearly-empty 4096-bit row must encode far below its 512-byte dense
  // size; a half-full row must stay dense.
  Digest sparse;
  sparse.kind = DigestKind::kAligned;
  BitVector light(4096);
  for (std::size_t i = 0; i < 20; ++i) light.Set(i * 200);
  sparse.rows.push_back(light);
  EXPECT_LT(sparse.EncodedSizeBytes(), 64u + 120u);

  Digest dense;
  dense.kind = DigestKind::kAligned;
  BitVector heavy(4096);
  for (std::size_t i = 0; i < 4096; i += 2) heavy.Set(i);
  dense.rows.push_back(heavy);
  EXPECT_GE(dense.EncodedSizeBytes(), 512u);
  EXPECT_LE(dense.EncodedSizeBytes(), 512u + 80u);

  // Both round-trip exactly.
  for (const Digest* d : {&sparse, &dense}) {
    Digest decoded;
    ASSERT_TRUE(Digest::Decode(d->Encode(), &decoded).ok());
    EXPECT_TRUE(decoded.rows[0] == d->rows[0]);
  }
}

TEST(DigestTest, MixedSparseAndDenseRowsRoundTrip) {
  Digest digest;
  digest.kind = DigestKind::kUnaligned;
  digest.num_groups = 1;
  digest.arrays_per_group = 3;
  BitVector empty(1024);
  BitVector full(1024);
  for (std::size_t i = 0; i < 1024; ++i) full.Set(i);
  BitVector half(1024);
  for (std::size_t i = 0; i < 1024; i += 2) half.Set(i);
  digest.rows = {empty, full, half};
  Digest decoded;
  ASSERT_TRUE(Digest::Decode(digest.Encode(), &decoded).ok());
  for (std::size_t r = 0; r < 3; ++r) {
    EXPECT_TRUE(decoded.rows[r] == digest.rows[r]) << r;
  }
}

TEST(DigestTest, AlignedSingleRowDigest) {
  Digest digest;
  digest.kind = DigestKind::kAligned;
  BitVector row(4096);
  row.Set(17);
  digest.rows.push_back(row);
  const auto bytes = digest.Encode();
  Digest decoded;
  ASSERT_TRUE(Digest::Decode(bytes, &decoded).ok());
  EXPECT_EQ(decoded.kind, DigestKind::kAligned);
  ASSERT_EQ(decoded.rows.size(), 1u);
  EXPECT_TRUE(decoded.rows[0].Test(17));
}

}  // namespace
}  // namespace dcs
