// Degraded-mode analysis (docs/ROBUSTNESS.md): when m' < m routers survive
// ingestion, the monitor recomputes the aligned NNO / detectable thresholds
// and the unaligned (p1, d) co-tuning for the matrix it actually has. These
// tests pin the two contracts:
//  * equivalence — a hardened monitor fed all m routers behaves exactly like
//    the pre-hardening monitor, and a degraded monitor's calibration equals
//    an oracle monitor built for m' expected routers from the start;
//  * resilience — losing routers degrades the thresholds but does not kill
//    detection while the pattern stays above the recomputed bar.

#include <gtest/gtest.h>

#include "analysis/aligned_thresholds.h"
#include "analysis/unaligned_thresholds.h"
#include "common/rng.h"
#include "dcs/monitor.h"

namespace dcs {
namespace {

constexpr std::size_t kBits = 512;
constexpr std::uint32_t kFleet = 16;

// One epoch of aligned digests: Bernoulli(1/4) noise (bitmap sketches are
// tuned to stay sparse) plus 24 content columns set at every router. The
// noise level matters for the resilience test below: the detector's NNO
// gate runs at the *screened* density, and at Bernoulli(1/2) an m' = 8 row
// all-ones block is naturally occurring among the heavy screened columns —
// losing half the fleet would legitimately push the pattern under the bar.
std::vector<Digest> AlignedFleet(std::uint32_t num_routers) {
  std::vector<Digest> fleet;
  Rng rng(2024);
  for (std::uint32_t r = 0; r < num_routers; ++r) {
    Digest digest;
    digest.router_id = r;
    digest.kind = DigestKind::kAligned;
    BitVector row(kBits);
    for (std::size_t i = 0; i < kBits; ++i) {
      if (rng.Bernoulli(0.25)) row.Set(i);
    }
    for (std::size_t c = 0; c < 24; ++c) row.Set(c * 20);  // The pattern.
    digest.rows.push_back(std::move(row));
    digest.packets_covered = 1000;
    digest.raw_bytes_covered = 1000000;
    fleet.push_back(std::move(digest));
  }
  return fleet;
}

std::vector<Digest> UnalignedFleet(std::uint32_t num_routers) {
  std::vector<Digest> fleet;
  Rng rng(77);
  for (std::uint32_t r = 0; r < num_routers; ++r) {
    Digest digest;
    digest.router_id = r;
    digest.kind = DigestKind::kUnaligned;
    digest.num_groups = 8;
    digest.arrays_per_group = 2;
    for (int row_index = 0; row_index < 16; ++row_index) {
      BitVector row(256);
      for (std::size_t i = 0; i < 256; ++i) {
        if (rng.Bernoulli(0.05)) row.Set(i);
      }
      digest.rows.push_back(std::move(row));
    }
    fleet.push_back(std::move(digest));
  }
  return fleet;
}

AlignedPipelineOptions SmallAlignedOptions() {
  AlignedPipelineOptions aligned;
  aligned.n_prime = 64;
  aligned.detector.first_iteration_hopefuls = 64;
  aligned.detector.hopefuls = 32;
  return aligned;
}

DcsMonitor HardenedMonitor(std::uint32_t expected_routers) {
  IngestOptions ingest;
  ingest.expected_routers = expected_routers;
  return DcsMonitor(SmallAlignedOptions(), UnalignedPipelineOptions{},
                    AnalysisContext{}, ingest);
}

TEST(DegradedModeTest, FullFleetMatchesLegacyMonitorExactly) {
  const std::vector<Digest> fleet = AlignedFleet(kFleet);

  DcsMonitor legacy(SmallAlignedOptions(), UnalignedPipelineOptions{});
  DcsMonitor hardened = HardenedMonitor(kFleet);
  for (const Digest& digest : fleet) {
    ASSERT_TRUE(legacy.AddDigest(digest).ok());
    ASSERT_TRUE(hardened.AddDigest(digest).ok());
  }

  const AlignedReport before = legacy.AnalyzeAligned();
  const AlignedReport after = hardened.AnalyzeAligned();
  EXPECT_TRUE(before.common_content_detected);
  EXPECT_EQ(after.common_content_detected, before.common_content_detected);
  EXPECT_EQ(after.routers, before.routers);
  EXPECT_EQ(after.signature_columns, before.signature_columns);
  EXPECT_EQ(after.matrix_rows, before.matrix_rows);
  EXPECT_EQ(after.matrix_cols, before.matrix_cols);

  // Nothing missing: not degraded, and ingestion saw a clean epoch.
  EXPECT_FALSE(after.calibration.degraded);
  EXPECT_EQ(after.calibration.observed_routers, kFleet);
  EXPECT_EQ(hardened.ingest_stats().rejected_total(), 0u);
}

TEST(DegradedModeTest, DegradedCalibrationEqualsOracleMonitor) {
  const std::vector<Digest> fleet = AlignedFleet(kFleet);
  for (const std::uint32_t survivors : {kFleet, kFleet - 1, kFleet / 2}) {
    // The degraded monitor expected the whole fleet; only m' reported.
    DcsMonitor degraded = HardenedMonitor(kFleet);
    // The oracle was configured for m' routers from the start.
    DcsMonitor oracle = HardenedMonitor(survivors);
    for (std::uint32_t r = 0; r < survivors; ++r) {
      ASSERT_TRUE(degraded.AddDigest(fleet[r]).ok());
      ASSERT_TRUE(oracle.AddDigest(fleet[r]).ok());
    }

    const EpochCalibration from_degraded = degraded.AlignedCalibration();
    const EpochCalibration from_oracle = oracle.AlignedCalibration();
    EXPECT_EQ(from_degraded.degraded, survivors < kFleet);
    EXPECT_FALSE(from_oracle.degraded);
    EXPECT_EQ(from_degraded.observed_routers, survivors);
    // The thresholds depend only on the observed matrix, never on the
    // original expectation.
    EXPECT_EQ(from_degraded.aligned_min_nno_columns,
              from_oracle.aligned_min_nno_columns)
        << "survivors=" << survivors;
    EXPECT_EQ(from_degraded.aligned_detectable_columns,
              from_oracle.aligned_detectable_columns)
        << "survivors=" << survivors;

    // And they match the Section III-C / V-A.2 formulas directly.
    const auto m = static_cast<std::int64_t>(survivors);
    EXPECT_EQ(from_degraded.aligned_min_nno_columns,
              MinNonNaturallyOccurringB(
                  m, static_cast<std::int64_t>(kBits), m,
                  SmallAlignedOptions().detector.nno_epsilon))
        << "survivors=" << survivors;

    // Detection itself is identical too.
    const AlignedReport a = degraded.AnalyzeAligned();
    const AlignedReport b = oracle.AnalyzeAligned();
    EXPECT_EQ(a.common_content_detected, b.common_content_detected);
    EXPECT_EQ(a.routers, b.routers);
    EXPECT_EQ(a.signature_columns, b.signature_columns);
  }
}

TEST(DegradedModeTest, UnalignedCalibrationTracksObservedVertices) {
  const std::vector<Digest> fleet = UnalignedFleet(10);
  for (const std::uint32_t survivors : {10u, 9u, 5u}) {
    DcsMonitor degraded = HardenedMonitor(10);
    DcsMonitor oracle = HardenedMonitor(survivors);
    for (std::uint32_t r = 0; r < survivors; ++r) {
      ASSERT_TRUE(degraded.AddDigest(fleet[r]).ok());
      ASSERT_TRUE(oracle.AddDigest(fleet[r]).ok());
    }
    const EpochCalibration from_degraded = degraded.UnalignedCalibration();
    const EpochCalibration from_oracle = oracle.UnalignedCalibration();
    EXPECT_EQ(from_degraded.unaligned_min_cluster,
              from_oracle.unaligned_min_cluster)
        << "survivors=" << survivors;
    EXPECT_EQ(from_degraded.unaligned_p1, from_oracle.unaligned_p1);
    EXPECT_EQ(from_degraded.unaligned_d, from_oracle.unaligned_d);

    // Direct check against the Eq-2/Eq-3 co-tuning with the vertex count
    // the correlation graph actually has: m' routers x 8 groups.
    UnalignedNnoOptions nno;
    nno.num_vertices = static_cast<std::int64_t>(survivors) * 8;
    nno.p2 = IngestOptions{}.calibration_p2;
    nno.max_m = nno.num_vertices;
    const UnalignedNnoResult expected =
        MinNonNaturallyOccurringClusterSize(nno);
    EXPECT_EQ(from_degraded.unaligned_min_cluster,
              expected.min_cluster_size)
        << "survivors=" << survivors;
    EXPECT_DOUBLE_EQ(from_degraded.unaligned_p1, expected.best_p1);
    EXPECT_EQ(from_degraded.unaligned_d, expected.best_d);
  }
}

TEST(DegradedModeTest, HalfFleetStillDetectsThePlantedPattern) {
  DcsMonitor monitor = HardenedMonitor(kFleet);
  const std::vector<Digest> fleet = AlignedFleet(kFleet);
  for (std::uint32_t r = 0; r < kFleet / 2; ++r) {
    ASSERT_TRUE(monitor.AddDigest(fleet[r]).ok());
  }
  const AlignedReport report = monitor.AnalyzeAligned();
  EXPECT_TRUE(report.common_content_detected);
  EXPECT_TRUE(report.calibration.degraded);
  EXPECT_EQ(report.calibration.observed_routers, kFleet / 2);
  EXPECT_EQ(report.calibration.expected_routers, kFleet);
  // The recomputed bar is stated, and the found pattern clears it.
  ASSERT_GT(report.calibration.aligned_min_nno_columns, 0);
  EXPECT_GE(static_cast<std::int64_t>(report.signature_columns.size()),
            report.calibration.aligned_min_nno_columns);
  // The degraded epoch is visible in the human-readable form too.
  EXPECT_NE(report.ToString().find("DEGRADED"), std::string::npos);
}

}  // namespace
}  // namespace dcs
