// Parameterized sweeps: the same invariants checked across the
// configuration space a deployment would actually explore.

#include <cmath>
#include <string>
#include <tuple>

#include <gtest/gtest.h>

#include "analysis/aligned_thresholds.h"
#include "analysis/lambda_table.h"
#include "analysis/unaligned_graph_builder.h"
#include "analysis/unaligned_thresholds.h"
#include "baseline/rabin.h"
#include "common/rng.h"
#include "common/stats_math.h"
#include "dcs/epoch_tracker.h"
#include "graph/core_decomposition.h"
#include "graph/er_random.h"
#include "sketch/digest.h"

namespace dcs {
namespace {

// ---------------------------------------------------------------------------
// Digest wire format across shapes.
// ---------------------------------------------------------------------------

using DigestShape = std::tuple<std::uint32_t /*groups*/,
                               std::uint32_t /*arrays*/,
                               std::size_t /*bits*/>;

class DigestShapeTest : public ::testing::TestWithParam<DigestShape> {};

TEST_P(DigestShapeTest, EncodeDecodeRoundTrip) {
  const auto [groups, arrays, bits] = GetParam();
  Digest digest;
  digest.router_id = 7;
  digest.epoch_id = 3;
  digest.kind = groups == 1 && arrays == 1 ? DigestKind::kAligned
                                           : DigestKind::kUnaligned;
  digest.num_groups = groups;
  digest.arrays_per_group = arrays;
  Rng rng(groups * 131 + arrays * 17 + bits);
  for (std::uint32_t r = 0; r < groups * arrays; ++r) {
    BitVector row(bits);
    for (std::size_t i = 0; i < bits; i += 1 + rng.UniformInt(7)) {
      row.Set(i);
    }
    digest.rows.push_back(std::move(row));
  }
  digest.packets_covered = 999;
  digest.raw_bytes_covered = 123456;

  Digest decoded;
  ASSERT_TRUE(Digest::Decode(digest.Encode(), &decoded).ok());
  ASSERT_EQ(decoded.rows.size(), digest.rows.size());
  for (std::size_t r = 0; r < decoded.rows.size(); ++r) {
    EXPECT_TRUE(decoded.rows[r] == digest.rows[r]) << "row " << r;
  }
  EXPECT_EQ(decoded.num_groups, groups);
  EXPECT_EQ(decoded.arrays_per_group, arrays);
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, DigestShapeTest,
    ::testing::Values(DigestShape{1, 1, 64}, DigestShape{1, 1, 4096},
                      DigestShape{4, 3, 256}, DigestShape{16, 10, 1024},
                      DigestShape{2, 10, 127} /* non-word-aligned width */));

// ---------------------------------------------------------------------------
// FindCore retains a planted clique for every beta <= clique size.
// ---------------------------------------------------------------------------

class FindCoreBetaTest : public ::testing::TestWithParam<std::size_t> {};

TEST_P(FindCoreBetaTest, CliqueSurvivesPeeling) {
  const std::size_t beta = GetParam();
  Rng rng(beta);
  const std::size_t n = 2000;
  constexpr std::size_t kClique = 24;
  PlantedGraph planted = SamplePlantedGraph(n, 1.0 / n, kClique, 1.0, &rng);
  const PeelResult result = FindCore(planted.graph, beta);
  if (beta <= kClique) {
    // Every survivor is a clique member.
    for (Graph::VertexId v : result.core) {
      EXPECT_TRUE(std::binary_search(planted.pattern_vertices.begin(),
                                     planted.pattern_vertices.end(), v))
          << "beta=" << beta;
    }
    EXPECT_EQ(result.core.size(), beta);
  } else {
    // The clique is contained in the (larger) core.
    for (Graph::VertexId v : planted.pattern_vertices) {
      EXPECT_TRUE(std::binary_search(result.core.begin(), result.core.end(),
                                     v))
          << "beta=" << beta;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Betas, FindCoreBetaTest,
                         ::testing::Values(4, 12, 24, 40, 100));

// ---------------------------------------------------------------------------
// Graph builder: injected correlation detected across group geometries.
// ---------------------------------------------------------------------------

using BuilderGeometry = std::tuple<std::size_t /*arrays*/, std::size_t /*bits*/>;

class GraphBuilderGeometryTest
    : public ::testing::TestWithParam<BuilderGeometry> {};

TEST_P(GraphBuilderGeometryTest, SignalEdgeSurvivesGeometry) {
  const auto [arrays, bits] = GetParam();
  Rng rng(arrays * 1000 + bits);
  const std::size_t groups = 12;
  BitMatrix matrix(groups * arrays, bits);
  // ~20% background fill.
  for (std::size_t r = 0; r < matrix.rows(); ++r) {
    for (std::size_t c = 0; c < bits; ++c) {
      if (rng.Bernoulli(0.2)) matrix.Set(r, c);
    }
  }
  // Signal: bits/5 shared indices in the first row of groups 2 and 9.
  for (std::size_t i = 0; i < bits / 5; ++i) {
    const std::size_t c = rng.UniformInt(bits);
    matrix.Set(2 * arrays, c);
    matrix.Set(9 * arrays, c);
  }
  LambdaTable lambda(bits, 1e-6);
  GraphBuilderOptions opts;
  opts.arrays_per_group = arrays;
  const Graph graph = BuildCorrelationGraph(matrix, lambda, opts);
  bool found = false;
  for (const auto& [u, v] : graph.edges()) {
    if (u == 2 && v == 9) found = true;
  }
  EXPECT_TRUE(found) << "arrays=" << arrays << " bits=" << bits;
}

INSTANTIATE_TEST_SUITE_P(Geometries, GraphBuilderGeometryTest,
                         ::testing::Values(BuilderGeometry{1, 512},
                                           BuilderGeometry{4, 1024},
                                           BuilderGeometry{10, 1024},
                                           BuilderGeometry{10, 256}));

// ---------------------------------------------------------------------------
// Monotonicity of the aligned thresholds in every argument.
// ---------------------------------------------------------------------------

TEST(ThresholdMonotonicityTest, NnoBInAllArguments) {
  // More routers seeing it -> fewer packets needed.
  EXPECT_GE(MinNonNaturallyOccurringB(1000, 1 << 22, 30, 1e-3),
            MinNonNaturallyOccurringB(1000, 1 << 22, 60, 1e-3));
  // Wider matrix (more columns of noise) -> more packets needed.
  EXPECT_LE(MinNonNaturallyOccurringB(1000, 1 << 18, 30, 1e-3),
            MinNonNaturallyOccurringB(1000, 1 << 22, 30, 1e-3));
  // More rows of noise -> more packets needed.
  EXPECT_LE(MinNonNaturallyOccurringB(500, 1 << 22, 30, 1e-3),
            MinNonNaturallyOccurringB(2000, 1 << 22, 30, 1e-3));
  // Stricter epsilon -> more packets needed.
  EXPECT_LE(MinNonNaturallyOccurringB(1000, 1 << 22, 30, 1e-2),
            MinNonNaturallyOccurringB(1000, 1 << 22, 30, 1e-6));
}

TEST(ThresholdMonotonicityTest, UnalignedMInVertexCount) {
  UnalignedNnoOptions small;
  small.num_vertices = 10'000;
  small.p2 = 0.08;
  UnalignedNnoOptions large = small;
  large.num_vertices = 1'000'000;
  const auto m_small = MinNonNaturallyOccurringClusterSize(small);
  const auto m_large = MinNonNaturallyOccurringClusterSize(large);
  ASSERT_GT(m_small.min_cluster_size, 0);
  ASSERT_GT(m_large.min_cluster_size, 0);
  // More vertices -> larger union bound -> larger minimum cluster.
  EXPECT_LE(m_small.min_cluster_size, m_large.min_cluster_size);
}

// ---------------------------------------------------------------------------
// Lambda tables across p_star levels and fills.
// ---------------------------------------------------------------------------

class LambdaSweepTest : public ::testing::TestWithParam<double> {};

TEST_P(LambdaSweepTest, ThresholdAboveMeanAndTight) {
  const double p_star = GetParam();
  LambdaTable table(1024, p_star);
  for (std::uint32_t fill : {128u, 400u, 512u, 800u}) {
    const std::int64_t lambda = table.Threshold(fill, fill);
    const double mean =
        static_cast<double>(fill) * static_cast<double>(fill) / 1024.0;
    EXPECT_GT(static_cast<double>(lambda), mean) << p_star << " " << fill;
    // Tightness: lambda - 1 must exceed the level.
    EXPECT_GT(std::exp(LogHypergeomSf(lambda - 1, 1024, fill, fill)), p_star);
  }
}

INSTANTIATE_TEST_SUITE_P(Levels, LambdaSweepTest,
                         ::testing::Values(1e-3, 1e-5, 1e-7, 1e-9));

// ---------------------------------------------------------------------------
// Rabin rolling == direct across window sizes (full sweep).
// ---------------------------------------------------------------------------

class RabinWindowTest : public ::testing::TestWithParam<std::size_t> {};

TEST_P(RabinWindowTest, RollingEqualsDirectEverywhere) {
  const std::size_t window = GetParam();
  Rng rng(window);
  std::string data(window * 3 + 37, '\0');
  for (char& c : data) c = static_cast<char>(rng.UniformInt(256));
  RabinFingerprinter fp(window);
  const auto rolled = fp.WindowFingerprints(data);
  ASSERT_EQ(rolled.size(), data.size() - window + 1);
  for (std::size_t i = 0; i < rolled.size(); ++i) {
    ASSERT_EQ(rolled[i],
              fp.Fingerprint(std::string_view(data).substr(i, window)))
        << "window " << window << " pos " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(Windows, RabinWindowTest,
                         ::testing::Values(1, 2, 7, 8, 9, 31, 32, 33, 40,
                                           64, 100));

// ---------------------------------------------------------------------------
// Epoch tracker k-of-w combinatorics.
// ---------------------------------------------------------------------------

using TrackerConfig = std::tuple<std::size_t /*w*/, std::size_t /*k*/>;

class EpochTrackerSweepTest
    : public ::testing::TestWithParam<TrackerConfig> {};

TEST_P(EpochTrackerSweepTest, AlarmExactlyAtKOfW) {
  const auto [w, k] = GetParam();
  EpochTrackerOptions opts;
  opts.window_epochs = w;
  opts.min_detections = k;
  EpochTracker tracker(opts);
  // k-1 detections at the tail of a full window: no alarm yet.
  for (std::size_t i = 0; i < w; ++i) {
    tracker.RecordEpoch(i >= w - (k - 1), {1});
  }
  EXPECT_FALSE(tracker.PersistentDetection()) << "w=" << w << " k=" << k;
  // One more detection while those k-1 are still inside the window: alarm.
  tracker.RecordEpoch(true, {1});
  EXPECT_EQ(tracker.detections_in_window(), k);
  EXPECT_TRUE(tracker.PersistentDetection()) << "w=" << w << " k=" << k;
}

INSTANTIATE_TEST_SUITE_P(Configs, EpochTrackerSweepTest,
                         ::testing::Values(TrackerConfig{3, 2},
                                           TrackerConfig{5, 2},
                                           TrackerConfig{5, 4},
                                           TrackerConfig{10, 3}));

// ---------------------------------------------------------------------------
// ER sampler edge-count law across (n, p).
// ---------------------------------------------------------------------------

using ErConfig = std::tuple<std::size_t, double>;

class ErEdgeCountTest : public ::testing::TestWithParam<ErConfig> {};

TEST_P(ErEdgeCountTest, EdgeCountWithinFiveSigma) {
  const auto [n, p] = GetParam();
  Rng rng(n + static_cast<std::uint64_t>(p * 1e9));
  const double pairs = static_cast<double>(n) * static_cast<double>(n - 1) / 2.0;
  const double expected = pairs * p;
  const double sigma = std::sqrt(expected * (1 - p));
  double total = 0.0;
  constexpr int kTrials = 5;
  for (int t = 0; t < kTrials; ++t) {
    total += static_cast<double>(SampleErGraph(n, p, &rng).num_edges());
  }
  EXPECT_NEAR(total / kTrials, expected,
              5.0 * sigma / std::sqrt(kTrials) + 1.0)
      << "n=" << n << " p=" << p;
}

INSTANTIATE_TEST_SUITE_P(
    Configs, ErEdgeCountTest,
    ::testing::Values(ErConfig{100, 0.5}, ErConfig{1000, 0.01},
                      ErConfig{20000, 1e-4}, ErConfig{100000, 1e-5}));

}  // namespace
}  // namespace dcs
