#include "common/distributions.h"

#include <algorithm>
#include <cmath>
#include <set>

#include <gtest/gtest.h>

#include "common/stats_math.h"

namespace dcs {
namespace {

TEST(BinomialTest, EdgeCases) {
  Rng rng(1);
  EXPECT_EQ(SampleBinomial(&rng, 0, 0.5), 0);
  EXPECT_EQ(SampleBinomial(&rng, 100, 0.0), 0);
  EXPECT_EQ(SampleBinomial(&rng, 100, 1.0), 100);
  EXPECT_EQ(SampleBinomial(&rng, 100, -0.5), 0);
}

TEST(BinomialTest, StaysInSupport) {
  Rng rng(2);
  for (int i = 0; i < 2000; ++i) {
    const std::int64_t x = SampleBinomial(&rng, 50, 0.3);
    ASSERT_GE(x, 0);
    ASSERT_LE(x, 50);
  }
}

// Moment checks across regimes (small-np inversion, mode-centered, and the
// symmetric p > 1/2 reflection).
struct BinomCase {
  std::int64_t n;
  double p;
};

class BinomialMomentsTest : public ::testing::TestWithParam<BinomCase> {};

TEST_P(BinomialMomentsTest, MeanAndVarianceMatch) {
  const auto [n, p] = GetParam();
  Rng rng(1234);
  constexpr int kDraws = 20000;
  double sum = 0.0;
  double sum_sq = 0.0;
  for (int i = 0; i < kDraws; ++i) {
    const double x = static_cast<double>(SampleBinomial(&rng, n, p));
    sum += x;
    sum_sq += x * x;
  }
  const double mean = sum / kDraws;
  const double var = sum_sq / kDraws - mean * mean;
  const double true_mean = static_cast<double>(n) * p;
  const double true_var = true_mean * (1.0 - p);
  const double mean_tol = 6.0 * std::sqrt(true_var / kDraws) + 1e-9;
  EXPECT_NEAR(mean, true_mean, mean_tol);
  EXPECT_NEAR(var, true_var, 0.1 * true_var + 0.05);
}

INSTANTIATE_TEST_SUITE_P(
    Regimes, BinomialMomentsTest,
    ::testing::Values(BinomCase{20, 0.5}, BinomCase{1000, 0.5},
                      BinomCase{1000, 0.02}, BinomCase{1000, 0.98},
                      BinomCase{4000000, 0.0007}, BinomCase{7, 0.9}));

TEST(HypergeometricTest, DegenerateSupport) {
  Rng rng(3);
  // Drawing everything returns all marked items.
  EXPECT_EQ(SampleHypergeometric(&rng, 10, 4, 10), 4);
  // Drawing nothing returns none.
  EXPECT_EQ(SampleHypergeometric(&rng, 10, 4, 0), 0);
  // No marked items.
  EXPECT_EQ(SampleHypergeometric(&rng, 10, 0, 5), 0);
}

TEST(HypergeometricTest, StaysInSupportAndMatchesMean) {
  Rng rng(4);
  const std::int64_t big_n = 1024;
  const std::int64_t i = 500;
  const std::int64_t j = 480;
  constexpr int kDraws = 20000;
  double sum = 0.0;
  for (int d = 0; d < kDraws; ++d) {
    const std::int64_t x = SampleHypergeometric(&rng, big_n, i, j);
    ASSERT_GE(x, 0);
    ASSERT_LE(x, std::min(i, j));
    sum += static_cast<double>(x);
  }
  const double true_mean =
      static_cast<double>(i) * static_cast<double>(j) / big_n;
  EXPECT_NEAR(sum / kDraws, true_mean, 0.5);
}

TEST(PoissonTest, MeanMatches) {
  Rng rng(5);
  for (double mean : {0.5, 8.0, 120.0}) {
    double sum = 0.0;
    constexpr int kDraws = 20000;
    for (int i = 0; i < kDraws; ++i) {
      sum += static_cast<double>(SamplePoisson(&rng, mean));
    }
    EXPECT_NEAR(sum / kDraws, mean, 6.0 * std::sqrt(mean / kDraws) + 1e-6);
  }
}

TEST(SampleWithoutReplacementTest, ProducesDistinctValuesInRange) {
  Rng rng(6);
  for (int trial = 0; trial < 50; ++trial) {
    const std::uint64_t n = 1 + rng.UniformInt(200);
    const std::uint64_t k = rng.UniformInt(n + 1);
    const std::vector<std::uint64_t> sample =
        SampleWithoutReplacement(&rng, n, k);
    EXPECT_EQ(sample.size(), k);
    std::set<std::uint64_t> distinct(sample.begin(), sample.end());
    EXPECT_EQ(distinct.size(), k);
    for (std::uint64_t v : sample) EXPECT_LT(v, n);
  }
}

TEST(SampleWithoutReplacementTest, FullDrawIsPermutationOfRange) {
  Rng rng(7);
  std::vector<std::uint64_t> sample = SampleWithoutReplacement(&rng, 20, 20);
  std::sort(sample.begin(), sample.end());
  for (std::uint64_t i = 0; i < 20; ++i) EXPECT_EQ(sample[i], i);
}

TEST(SampleWithoutReplacementTest, MarginalsAreUniform) {
  Rng rng(8);
  constexpr int kTrials = 30000;
  int count_zero = 0;
  for (int t = 0; t < kTrials; ++t) {
    for (std::uint64_t v : SampleWithoutReplacement(&rng, 10, 3)) {
      if (v == 0) ++count_zero;
    }
  }
  // P[0 in sample] = 3/10.
  EXPECT_NEAR(static_cast<double>(count_zero) / kTrials, 0.3, 0.02);
}

TEST(ZipfTest, PmfSumsToOneAndIsMonotone) {
  ZipfSampler zipf(100, 1.1);
  double total = 0.0;
  double prev = 1.0;
  for (std::uint64_t r = 1; r <= 100; ++r) {
    const double p = zipf.Pmf(r);
    EXPECT_LE(p, prev + 1e-12);
    prev = p;
    total += p;
  }
  EXPECT_NEAR(total, 1.0, 1e-9);
}

TEST(ZipfTest, EmpiricalFrequenciesTrackPmf) {
  ZipfSampler zipf(50, 1.0);
  Rng rng(9);
  constexpr int kDraws = 100000;
  std::vector<int> counts(51, 0);
  for (int i = 0; i < kDraws; ++i) {
    const std::uint64_t r = zipf.Sample(&rng);
    ASSERT_GE(r, 1u);
    ASSERT_LE(r, 50u);
    ++counts[r];
  }
  for (std::uint64_t r : {1ULL, 2ULL, 10ULL, 50ULL}) {
    const double expected = zipf.Pmf(r) * kDraws;
    EXPECT_NEAR(counts[r], expected, 6.0 * std::sqrt(expected) + 3.0)
        << "rank " << r;
  }
}

TEST(ZipfTest, HigherAlphaConcentratesOnRankOne) {
  ZipfSampler flat(100, 0.5);
  ZipfSampler steep(100, 2.0);
  EXPECT_GT(steep.Pmf(1), flat.Pmf(1));
}

}  // namespace
}  // namespace dcs
