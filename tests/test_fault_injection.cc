// Fault-injection subsystem (src/testing/fault_injector.h) and the hardened
// monitor ingestion it exists to exercise (docs/ROBUSTNESS.md).

#include <gtest/gtest.h>

#include "common/rng.h"
#include "dcs/monitor.h"
#include "testing/fault_injector.h"

namespace dcs {
namespace {

Digest SmallAlignedDigest(std::uint32_t router, std::size_t bits = 1024) {
  Digest digest;
  digest.router_id = router;
  digest.kind = DigestKind::kAligned;
  BitVector row(bits);
  row.Set(router % bits);
  digest.rows.push_back(row);
  digest.packets_covered = 10;
  digest.raw_bytes_covered = 10000;
  return digest;
}

DcsMonitor MakeHardenedMonitor(std::uint32_t expected_routers) {
  AlignedPipelineOptions aligned;
  aligned.n_prime = 64;
  UnalignedPipelineOptions unaligned;
  IngestOptions ingest;
  ingest.expected_routers = expected_routers;
  return DcsMonitor(aligned, unaligned, AnalysisContext{}, ingest);
}

TEST(FaultSpecTest, ParsesFullSpec) {
  FaultSpec spec;
  ASSERT_TRUE(FaultSpec::Parse(
                  "seed=9,drop=0.1,flip=0.2,truncate=0.05,garbage=0.05,"
                  "duplicate=0.1,stale=0.1,future=0.05,shape=0.1",
                  &spec)
                  .ok());
  EXPECT_EQ(spec.seed, 9u);
  EXPECT_DOUBLE_EQ(spec.drop, 0.1);
  EXPECT_DOUBLE_EQ(spec.bit_flip, 0.2);
  EXPECT_DOUBLE_EQ(spec.truncate, 0.05);
  EXPECT_DOUBLE_EQ(spec.garbage, 0.05);
  EXPECT_DOUBLE_EQ(spec.duplicate, 0.1);
  EXPECT_DOUBLE_EQ(spec.stale_epoch, 0.1);
  EXPECT_DOUBLE_EQ(spec.future_epoch, 0.05);
  EXPECT_DOUBLE_EQ(spec.lying_shape, 0.1);
}

TEST(FaultSpecTest, EmptySpecIsAllClear) {
  FaultSpec spec;
  ASSERT_TRUE(FaultSpec::Parse("", &spec).ok());
  const FaultPlan plan = MaterializeFaultPlan(spec, 16);
  for (const PlannedFault& fault : plan.faults) {
    EXPECT_EQ(fault.kind, FaultKind::kNone);
  }
}

TEST(FaultSpecTest, RejectsMalformedInput) {
  FaultSpec spec;
  EXPECT_FALSE(FaultSpec::Parse("drop", &spec).ok());
  EXPECT_FALSE(FaultSpec::Parse("unknown=0.1", &spec).ok());
  EXPECT_FALSE(FaultSpec::Parse("drop=banana", &spec).ok());
  EXPECT_FALSE(FaultSpec::Parse("drop=1.5", &spec).ok());
  EXPECT_FALSE(FaultSpec::Parse("drop=-0.1", &spec).ok());
  EXPECT_FALSE(FaultSpec::Parse("drop=0.6,flip=0.6", &spec).ok());
}

TEST(FaultPlanTest, MaterializationIsDeterministic) {
  FaultSpec spec;
  ASSERT_TRUE(
      FaultSpec::Parse("seed=11,drop=0.3,flip=0.3,stale=0.3", &spec).ok());
  const FaultPlan a = MaterializeFaultPlan(spec, 64);
  const FaultPlan b = MaterializeFaultPlan(spec, 64);
  ASSERT_EQ(a.faults.size(), 64u);
  for (std::size_t r = 0; r < a.faults.size(); ++r) {
    EXPECT_EQ(a.faults[r].kind, b.faults[r].kind) << r;
    EXPECT_EQ(a.faults[r].mutation_seed, b.faults[r].mutation_seed) << r;
  }
  // A different master seed reshuffles fates.
  spec.seed = 12;
  const FaultPlan c = MaterializeFaultPlan(spec, 64);
  bool any_difference = false;
  for (std::size_t r = 0; r < a.faults.size(); ++r) {
    any_difference = any_difference || a.faults[r].kind != c.faults[r].kind;
  }
  EXPECT_TRUE(any_difference);
}

TEST(FaultPlanTest, CertainFaultHitsEveryRouter) {
  FaultSpec spec;
  ASSERT_TRUE(FaultSpec::Parse("drop=1.0", &spec).ok());
  const FaultPlan plan = MaterializeFaultPlan(spec, 32);
  for (const PlannedFault& fault : plan.faults) {
    EXPECT_EQ(fault.kind, FaultKind::kDrop);
  }
}

TEST(FaultInjectorTest, ApplyIsDeterministicAndShapedByKind) {
  FaultPlan plan;
  plan.faults = {
      {0, FaultKind::kNone, 5},      {1, FaultKind::kDrop, 6},
      {2, FaultKind::kBitFlip, 7},   {3, FaultKind::kDuplicate, 8},
      {4, FaultKind::kGarbage, 9},
  };
  const FaultInjector injector(plan);
  const std::vector<std::uint8_t> encoded = SmallAlignedDigest(0).Encode();

  EXPECT_EQ(injector.Apply(0, encoded),
            std::vector<std::vector<std::uint8_t>>{encoded});
  EXPECT_TRUE(injector.Apply(1, encoded).empty());

  const auto flipped = injector.Apply(2, encoded);
  ASSERT_EQ(flipped.size(), 1u);
  EXPECT_NE(flipped[0], encoded);
  EXPECT_EQ(flipped[0], injector.Apply(2, encoded)[0]);  // Replayable.

  const auto duplicated = injector.Apply(3, encoded);
  ASSERT_EQ(duplicated.size(), 2u);
  EXPECT_EQ(duplicated[0], encoded);
  EXPECT_EQ(duplicated[1], encoded);

  // Routers beyond the plan are delivered untouched.
  EXPECT_EQ(injector.Apply(99, encoded),
            std::vector<std::vector<std::uint8_t>>{encoded});
}

// The canonical degraded-epoch rehearsal: eight expected routers, seven
// senders, one fault each. Exercises every rejection counter at once and
// pins the quarantine semantics.
TEST(FaultInjectionScenarioTest, MixedFaultsAcrossEightRouters) {
  FaultPlan plan;
  plan.faults = {
      {0, FaultKind::kNone, 100},       {1, FaultKind::kDrop, 101},
      {2, FaultKind::kBitFlip, 102},    {3, FaultKind::kTruncate, 103},
      {4, FaultKind::kDuplicate, 104},  {5, FaultKind::kStaleEpoch, 105},
      {6, FaultKind::kFutureEpoch, 106},
  };
  const FaultInjector injector(plan);

  DcsMonitor monitor = MakeHardenedMonitor(/*expected_routers=*/8);
  for (std::uint32_t r = 0; r < 7; ++r) {
    Digest digest = SmallAlignedDigest(r);
    digest.epoch_id = 5;  // Same live epoch at every honest router.
    for (const auto& message : injector.Apply(r, digest.Encode())) {
      (void)monitor.AddEncodedDigest(message);  // Rejections expected.
    }
  }

  const EpochIngestStats& stats = monitor.ingest_stats();
  EXPECT_EQ(stats.accepted, 2u);            // r0 + first copy of r4.
  EXPECT_EQ(stats.rejected_decode, 2u);     // r2 flip, r3 truncate.
  EXPECT_EQ(stats.rejected_duplicate, 1u);  // r4 second copy.
  EXPECT_EQ(stats.rejected_epoch_skew, 2u); // r5 stale, r6 future.
  EXPECT_EQ(stats.rejected_quarantined, 0u);
  EXPECT_EQ(stats.observed_routers, 2u);
  EXPECT_EQ(stats.expected_routers, 8u);
  EXPECT_EQ(stats.missing_routers(), 6u);
  EXPECT_TRUE(stats.degraded());

  // Semantic offenders are quarantined; transport corruption is not
  // attributable, so r2 and r3 are not.
  EXPECT_TRUE(monitor.IsQuarantined(4));
  EXPECT_TRUE(monitor.IsQuarantined(5));
  EXPECT_TRUE(monitor.IsQuarantined(6));
  EXPECT_FALSE(monitor.IsQuarantined(0));
  EXPECT_FALSE(monitor.IsQuarantined(2));
  EXPECT_FALSE(monitor.IsQuarantined(3));
  ASSERT_EQ(stats.quarantine.size(), 3u);
  EXPECT_EQ(stats.quarantine[0].router_id, 4u);

  // A quarantined router stays locked out for the rest of the epoch, even
  // with a perfectly well-formed follow-up...
  Digest retry = SmallAlignedDigest(5);
  retry.epoch_id = 5;
  EXPECT_EQ(monitor.AddDigest(retry).code(),
            Status::Code::kFailedPrecondition);
  EXPECT_EQ(monitor.ingest_stats().rejected_quarantined, 1u);

  // ...and is readmitted after ClearEpoch.
  monitor.ClearEpoch();
  EXPECT_FALSE(monitor.IsQuarantined(5));
  EXPECT_TRUE(monitor.AddDigest(retry).ok());

  // Everything above is replayable: the same plan over the same digests
  // produces the same stats.
  DcsMonitor replay = MakeHardenedMonitor(/*expected_routers=*/8);
  for (std::uint32_t r = 0; r < 7; ++r) {
    Digest digest = SmallAlignedDigest(r);
    digest.epoch_id = 5;
    for (const auto& message : injector.Apply(r, digest.Encode())) {
      (void)replay.AddEncodedDigest(message);
    }
  }
  EXPECT_EQ(replay.ingest_stats().accepted, 2u);
  EXPECT_EQ(replay.ingest_stats().rejected_decode, 2u);
  EXPECT_EQ(replay.ingest_stats().rejected_epoch_skew, 2u);
}

// A resealed header lie passes the checksum, so only the monitor's
// structural validation stands between it and BuildUnalignedMatrix's
// hard assert.
TEST(FaultInjectionScenarioTest, ResealedShapeLieIsRejectedNotCrashed) {
  Digest digest = SmallAlignedDigest(3);
  std::vector<std::uint8_t> bytes = digest.Encode();
  // Claim num_groups = 4 on an aligned digest carrying one row.
  bytes[DigestWireLayout::kNumGroupsOffset] = 4;
  Digest::ResealChecksum(&bytes);

  // The checksum is fine and the decoder has no cross-field opinion...
  Digest decoded;
  ASSERT_TRUE(Digest::Decode(bytes, &decoded).ok());
  EXPECT_EQ(decoded.num_groups, 4u);

  // ...so the monitor must be the one to refuse it, with a Status.
  DcsMonitor monitor = MakeHardenedMonitor(/*expected_routers=*/2);
  EXPECT_EQ(monitor.AddEncodedDigest(bytes).code(),
            Status::Code::kCorruption);
  EXPECT_EQ(monitor.ingest_stats().rejected_shape, 1u);
  EXPECT_TRUE(monitor.IsQuarantined(3));
}

TEST(FaultInjectionScenarioTest, EpochForgeryCannotPoisonPinnedReference) {
  // With the reference epoch pinned (lock_epoch_to_first = false), a forged
  // epoch in the first-arriving message is rejected and honest epoch-0
  // routers are unaffected.
  AlignedPipelineOptions aligned;
  aligned.n_prime = 64;
  IngestOptions ingest;
  ingest.expected_routers = 3;
  ingest.lock_epoch_to_first = false;
  ingest.expected_epoch = 0;
  DcsMonitor monitor(aligned, UnalignedPipelineOptions{}, AnalysisContext{},
                     ingest);

  const std::vector<std::uint8_t> forged = FaultInjector::RewriteEpoch(
      SmallAlignedDigest(0).Encode(), /*new_epoch=*/999);
  EXPECT_EQ(monitor.AddEncodedDigest(forged).code(),
            Status::Code::kFailedPrecondition);
  EXPECT_TRUE(monitor.AddDigest(SmallAlignedDigest(1)).ok());
  EXPECT_TRUE(monitor.AddDigest(SmallAlignedDigest(2)).ok());
  EXPECT_EQ(monitor.ingest_stats().accepted, 2u);
  EXPECT_EQ(monitor.ingest_stats().rejected_epoch_skew, 1u);
}

}  // namespace
}  // namespace dcs
