// End-to-end tests of the full DCS pipeline: synthesized multi-router
// traffic -> per-router streaming sketches -> encoded digests -> analysis
// center -> detection reports, cross-checked against the raw-aggregation
// ground truth.

#include <algorithm>

#include <gtest/gtest.h>

#include "baseline/raw_aggregation.h"
#include "dcs/dcs.h"
#include "traffic/content_catalog.h"
#include "traffic/trace_synthesizer.h"

namespace dcs {
namespace {

// ---------- Aligned pipeline ----------

struct AlignedScenarioResult {
  AlignedReport report;
  std::vector<std::uint32_t> planted_routers;
  double compression = 0.0;
};

AlignedScenarioResult RunAlignedScenario(bool plant_content,
                                         std::uint64_t seed) {
  ScenarioOptions scenario;
  scenario.num_routers = 30;
  scenario.background_packets_per_router = 8000;
  scenario.seed = seed;
  PlantedContent plant;
  if (plant_content) {
    plant.content_id = 77;
    plant.content_bytes = 536 * 20;  // b = 20 packets.
    for (std::uint32_t r = 0; r < 25; ++r) plant.router_ids.push_back(r);
    plant.aligned = true;
    scenario.planted = {plant};
  }
  ContentCatalog catalog(1234);
  const auto traces = SynthesizeScenario(scenario, catalog);

  AlignedPipelineOptions aligned;
  aligned.sketch.num_bits = 1 << 13;
  aligned.n_prime = 128;
  aligned.detector.first_iteration_hopefuls = 128;
  aligned.detector.hopefuls = 64;
  UnalignedPipelineOptions unaligned;
  DcsMonitor monitor(aligned, unaligned);

  AlignedScenarioResult result;
  for (std::uint32_t r = 0; r < scenario.num_routers; ++r) {
    AlignedCollector collector(r, aligned.sketch);
    const auto epochs = traces[r].SplitIntoEpochs(traces[r].size());
    Digest digest = collector.ProcessEpoch(epochs[0]);
    // Ship through the wire format to exercise encode/decode.
    Digest decoded;
    EXPECT_TRUE(Digest::Decode(digest.Encode(), &decoded).ok());
    result.compression += decoded.CompressionFactor();
    EXPECT_TRUE(monitor.AddDigest(decoded).ok());
  }
  result.compression /= static_cast<double>(scenario.num_routers);
  result.report = monitor.AnalyzeAligned();
  result.planted_routers = plant.router_ids;
  return result;
}

TEST(AlignedIntegrationTest, DetectsPlantedContentAndNamesRouters) {
  const AlignedScenarioResult result = RunAlignedScenario(true, 11);
  ASSERT_TRUE(result.report.common_content_detected);
  // The reported routers are (mostly) the planted ones.
  std::size_t genuine = 0;
  for (std::uint32_t r : result.report.routers) {
    if (std::binary_search(result.planted_routers.begin(),
                           result.planted_routers.end(), r)) {
      ++genuine;
    }
  }
  EXPECT_GE(genuine, 20u);
  EXPECT_GE(genuine * 10, result.report.routers.size() * 9);
  // And enough signature columns to be actionable.
  EXPECT_GE(result.report.signature_columns.size(), 10u);
}

TEST(AlignedIntegrationTest, CleanTrafficStaysClean) {
  for (std::uint64_t seed : {21u, 22u, 23u}) {
    const AlignedScenarioResult result = RunAlignedScenario(false, seed);
    EXPECT_FALSE(result.report.common_content_detected) << "seed " << seed;
  }
}

TEST(AlignedIntegrationTest, DigestsCompressTraffic) {
  const AlignedScenarioResult result = RunAlignedScenario(true, 31);
  // 8k packets x ~600 B vs a 1 KiB bitmap: >1000x at paper scale; here the
  // bitmap is deliberately small, so expect >100x.
  EXPECT_GT(result.compression, 100.0);
}

// ---------- Unaligned pipeline ----------

struct UnalignedScenarioResult {
  UnalignedReport report;
  std::vector<UnalignedReport> multi;
  std::vector<std::uint32_t> planted_routers;
};

UnalignedScenarioResult RunUnalignedScenario(bool plant_content,
                                             std::uint64_t seed) {
  ScenarioOptions scenario;
  scenario.num_routers = 20;
  scenario.background_packets_per_router = 9500;
  scenario.seed = seed;
  PlantedContent plant;
  if (plant_content) {
    plant.content_id = 99;
    plant.content_bytes = 536 * 100;  // g = 100 packets.
    for (std::uint32_t r = 0; r < 16; ++r) plant.router_ids.push_back(r);
    plant.aligned = false;
    plant.instances_per_router = 4;
    scenario.planted = {plant};
  }
  ContentCatalog catalog(555);
  const auto traces = SynthesizeScenario(scenario, catalog);

  UnalignedPipelineOptions unaligned;
  unaligned.sketch.num_groups = 16;
  unaligned.er_threshold = 50;
  unaligned.detector.beta = 30;
  unaligned.detector.expand_min_edges = 3;
  AlignedPipelineOptions aligned;
  DcsMonitor monitor(aligned, unaligned);

  Rng offsets_rng(seed * 31 + 7);
  for (std::uint32_t r = 0; r < scenario.num_routers; ++r) {
    UnalignedCollector collector(r, unaligned.sketch, &offsets_rng);
    const auto epochs = traces[r].SplitIntoEpochs(traces[r].size());
    EXPECT_TRUE(monitor.AddDigest(collector.ProcessEpoch(epochs[0])).ok());
  }
  UnalignedScenarioResult result;
  result.report = monitor.AnalyzeUnaligned();
  result.multi = monitor.AnalyzeUnalignedAll(2);
  result.planted_routers = plant.router_ids;
  return result;
}

TEST(UnalignedIntegrationTest, DetectsWormLikeContent) {
  const UnalignedScenarioResult result = RunUnalignedScenario(true, 5);
  ASSERT_TRUE(result.report.common_content_detected)
      << "largest cc " << result.report.largest_component;
  // Identified routers are mostly the planted ones.
  std::size_t genuine = 0;
  for (std::uint32_t r : result.report.routers) {
    if (std::binary_search(result.planted_routers.begin(),
                           result.planted_routers.end(), r)) {
      ++genuine;
    }
  }
  EXPECT_GE(genuine, 10u);
  EXPECT_GE(genuine * 10, result.report.routers.size() * 7);
  // One content was planted, so the per-content breakdown has one dominant
  // cluster holding most of the detected groups.
  ASSERT_FALSE(result.report.clusters.empty());
  EXPECT_GE(result.report.clusters[0].size() * 2,
            result.report.groups.size());
  // And the iterated analysis reports exactly one significant content whose
  // routers are mostly the planted ones.
  ASSERT_EQ(result.multi.size(), 1u);
  std::size_t multi_genuine = 0;
  for (std::uint32_t r : result.multi[0].routers) {
    if (std::binary_search(result.planted_routers.begin(),
                           result.planted_routers.end(), r)) {
      ++multi_genuine;
    }
  }
  EXPECT_GE(multi_genuine * 10, result.multi[0].routers.size() * 7);
}

TEST(UnalignedIntegrationTest, CleanTrafficPassesErTest) {
  const UnalignedScenarioResult result = RunUnalignedScenario(false, 6);
  EXPECT_FALSE(result.report.common_content_detected)
      << "largest cc " << result.report.largest_component;
}

// ---------- Cross-check against the raw-aggregation ground truth ----------

TEST(CrossCheckTest, DcsAgreesWithRawAggregationOnPlantedScenario) {
  ScenarioOptions scenario;
  scenario.num_routers = 12;
  scenario.background_packets_per_router = 4000;
  scenario.seed = 77;
  PlantedContent plant;
  plant.content_id = 400;
  plant.content_bytes = 536 * 25;
  plant.router_ids = {0, 1, 2, 3, 4, 5, 6, 7, 8, 9};
  plant.aligned = true;
  scenario.planted = {plant};
  ContentCatalog catalog(2);
  const auto traces = SynthesizeScenario(scenario, catalog);

  // Ground truth.
  RawAggregationOptions raw_opts;
  raw_opts.min_routers = 8;
  RawAggregationDetector truth(raw_opts);
  for (std::uint32_t r = 0; r < traces.size(); ++r) {
    truth.AddRouterTrace(r, traces[r]);
  }
  const auto findings = truth.Findings();
  ASSERT_FALSE(findings.empty());

  // DCS.
  AlignedPipelineOptions aligned;
  aligned.sketch.num_bits = 1 << 13;
  aligned.n_prime = 128;
  aligned.detector.first_iteration_hopefuls = 128;
  aligned.detector.hopefuls = 64;
  DcsMonitor monitor(aligned, UnalignedPipelineOptions{});
  std::uint64_t digest_bytes = 0;
  for (std::uint32_t r = 0; r < traces.size(); ++r) {
    AlignedCollector collector(r, aligned.sketch);
    const auto epochs = traces[r].SplitIntoEpochs(traces[r].size());
    const Digest digest = collector.ProcessEpoch(epochs[0]);
    digest_bytes += digest.EncodedSizeBytes();
    ASSERT_TRUE(monitor.AddDigest(digest).ok());
  }
  const AlignedReport report = monitor.AnalyzeAligned();
  EXPECT_TRUE(report.common_content_detected);

  // Same routers as the ground truth (allowing DCS a small superset/subset).
  std::vector<std::uint32_t> truth_routers = findings[0].routers;
  std::size_t overlap = 0;
  for (std::uint32_t r : report.routers) {
    if (std::binary_search(truth_routers.begin(), truth_routers.end(), r)) {
      ++overlap;
    }
  }
  EXPECT_GE(overlap, 8u);

  // And DCS shipped orders of magnitude fewer bytes than raw aggregation.
  EXPECT_GT(truth.bytes_shipped(), 50 * digest_bytes);
}

}  // namespace
}  // namespace dcs
