// Differential determinism suite for the sharded min-degree peel: FindCore
// must return bit-identical results — core, removal_order, wave and tail
// counts — for the serial path (no pool) and for pools of 1, 2, and 8
// threads, on graphs built to maximize degree ties. The canonical wave
// algorithm removes whole k-core complements (order-invariant sets) and
// only the final partial wave under a strict (degree, id) order, so any
// divergence here is a scheduling leak into the peel.

#include <cstddef>
#include <cstdint>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "common/thread_pool.h"
#include "graph/core_decomposition.h"
#include "graph/graph.h"

namespace dcs {
namespace {

// All vertices degree 2 — every peel decision is a tie.
Graph Cycle(std::size_t n) {
  Graph g(n);
  for (std::size_t v = 0; v < n; ++v) {
    g.AddEdge(static_cast<Graph::VertexId>(v),
              static_cast<Graph::VertexId>((v + 1) % n));
  }
  g.Finalize();
  return g;
}

// Two-dimensional grid: interior degree 4, edges 3, corners 2 — tie-heavy
// cascades whose waves sweep inward.
Graph Grid(std::size_t rows, std::size_t cols) {
  Graph g(rows * cols);
  auto id = [cols](std::size_t r, std::size_t c) {
    return static_cast<Graph::VertexId>(r * cols + c);
  };
  for (std::size_t r = 0; r < rows; ++r) {
    for (std::size_t c = 0; c < cols; ++c) {
      if (c + 1 < cols) g.AddEdge(id(r, c), id(r, c + 1));
      if (r + 1 < rows) g.AddEdge(id(r, c), id(r + 1, c));
    }
  }
  g.Finalize();
  return g;
}

// Every vertex has degree `left` or `right` — one giant bucket per side.
Graph CompleteBipartite(std::size_t left, std::size_t right) {
  Graph g(left + right);
  for (std::size_t a = 0; a < left; ++a) {
    for (std::size_t b = 0; b < right; ++b) {
      g.AddEdge(static_cast<Graph::VertexId>(a),
                static_cast<Graph::VertexId>(left + b));
    }
  }
  g.Finalize();
  return g;
}

// Sparse ER noise, optionally with a planted clique on the first
// `clique` vertices.
Graph ErGraph(std::size_t n, double p, std::uint64_t seed,
              std::size_t clique) {
  Rng rng(seed);
  Graph g(n);
  for (std::size_t u = 0; u < n; ++u) {
    for (std::size_t v = u + 1; v < n; ++v) {
      if (rng.Bernoulli(p)) {
        g.AddEdge(static_cast<Graph::VertexId>(u),
                  static_cast<Graph::VertexId>(v));
      }
    }
  }
  for (std::size_t u = 0; u < clique; ++u) {
    for (std::size_t v = u + 1; v < clique; ++v) {
      g.AddEdge(static_cast<Graph::VertexId>(u),
                static_cast<Graph::VertexId>(v));
    }
  }
  g.Finalize();
  return g;
}

void ExpectSamePeel(const PeelResult& serial, const PeelResult& pooled,
                    std::size_t num_threads) {
  EXPECT_EQ(serial.core, pooled.core) << num_threads << " threads";
  EXPECT_EQ(serial.removal_order, pooled.removal_order)
      << num_threads << " threads";
  EXPECT_EQ(serial.waves, pooled.waves) << num_threads << " threads";
  EXPECT_EQ(serial.tail_removals, pooled.tail_removals)
      << num_threads << " threads";
}

// The peel must partition the vertices: core ∪ removal_order = V, disjoint.
void ExpectPartition(const PeelResult& result, std::size_t n,
                     std::size_t beta) {
  EXPECT_EQ(result.core.size() + result.removal_order.size(), n);
  if (n > beta) {
    EXPECT_EQ(result.core.size(), beta);
  }
  std::vector<char> seen(n, 0);
  for (Graph::VertexId v : result.core) {
    EXPECT_EQ(seen[v], 0);
    seen[v] = 1;
  }
  for (Graph::VertexId v : result.removal_order) {
    EXPECT_EQ(seen[v], 0);
    seen[v] = 1;
  }
}

class PeelingParallelTest : public ::testing::Test {
 protected:
  PeelingParallelTest() : pool1_(1), pool2_(2), pool8_(8) {}

  std::vector<ThreadPool*> pools() { return {&pool1_, &pool2_, &pool8_}; }

  void ExpectDeterministicAcrossPools(const Graph& g, std::size_t beta) {
    const PeelResult reference = FindCore(g, beta);
    ExpectPartition(reference, g.num_vertices(), beta);
    for (ThreadPool* pool : pools()) {
      ExpectSamePeel(reference, FindCore(g, beta, pool),
                     pool->num_threads());
    }
  }

  ThreadPool pool1_;
  ThreadPool pool2_;
  ThreadPool pool8_;
};

TEST_F(PeelingParallelTest, CycleAllDecisionsAreTies) {
  // 5000 vertices crosses the peel's inline-execution threshold, so the
  // pooled runs genuinely shard the scans.
  const Graph g = Cycle(5000);
  for (std::size_t beta : {std::size_t{0}, std::size_t{100},
                           std::size_t{2500}, std::size_t{4999}}) {
    ExpectDeterministicAcrossPools(g, beta);
  }
}

TEST_F(PeelingParallelTest, GridCascadingWaves) {
  const Graph g = Grid(70, 70);
  for (std::size_t beta : {std::size_t{0}, std::size_t{50},
                           std::size_t{1000}}) {
    ExpectDeterministicAcrossPools(g, beta);
  }
}

TEST_F(PeelingParallelTest, CompleteBipartiteTwoGiantBuckets) {
  const Graph g = CompleteBipartite(60, 60);
  for (std::size_t beta : {std::size_t{10}, std::size_t{30},
                           std::size_t{90}}) {
    ExpectDeterministicAcrossPools(g, beta);
  }
}

TEST_F(PeelingParallelTest, SparseRandomGraphs) {
  for (std::uint64_t seed = 1; seed <= 3; ++seed) {
    const Graph g = ErGraph(3000, 3.0 / 3000.0, seed, 0);
    for (std::size_t beta : {std::size_t{0}, std::size_t{10},
                             std::size_t{500}}) {
      ExpectDeterministicAcrossPools(g, beta);
    }
  }
}

TEST_F(PeelingParallelTest, PlantedCliqueSurvivesOnEveryPool) {
  // Above the inline threshold, with ER noise around a 40-clique: the peel
  // must converge on the clique identically on every pool.
  const std::size_t clique = 40;
  const Graph g = ErGraph(4096, 2.0 / 4096.0, 7, clique);
  const PeelResult reference = FindCore(g, clique);
  ASSERT_EQ(reference.core.size(), clique);
  for (std::size_t i = 0; i < clique; ++i) {
    EXPECT_EQ(reference.core[i], static_cast<Graph::VertexId>(i));
  }
  for (ThreadPool* pool : pools()) {
    ExpectSamePeel(reference, FindCore(g, clique, pool),
                   pool->num_threads());
  }
}

TEST_F(PeelingParallelTest, StrictTailHandlesOvershootingWave) {
  // In a cycle the very first wave (degree 2) would cascade through every
  // vertex, overshooting beta — the whole peel runs in the strict tail.
  const Graph g = Cycle(64);
  const PeelResult reference = FindCore(g, 10);
  EXPECT_EQ(reference.waves, 0u);
  EXPECT_EQ(reference.tail_removals, 54u);
  ExpectPartition(reference, 64, 10);
  for (ThreadPool* pool : pools()) {
    ExpectSamePeel(reference, FindCore(g, 10, pool), pool->num_threads());
  }
}

TEST_F(PeelingParallelTest, EdgelessGraphPeelsByIdUnderTies) {
  // Every degree is 0; one wave would remove everything, so the tail rules
  // and the strict (degree, id) order must remove ascending ids.
  Graph g(20);
  g.Finalize();
  const PeelResult reference = FindCore(g, 5);
  ASSERT_EQ(reference.removal_order.size(), 15u);
  for (std::size_t i = 0; i < 15; ++i) {
    EXPECT_EQ(reference.removal_order[i], static_cast<Graph::VertexId>(i));
  }
  for (ThreadPool* pool : pools()) {
    ExpectSamePeel(reference, FindCore(g, 5, pool), pool->num_threads());
  }
}

TEST_F(PeelingParallelTest, DegenerateInputsAreSafeOnPools) {
  Graph empty(0);
  empty.Finalize();
  Graph one(1);
  one.Finalize();
  const Graph cycle = Cycle(8);
  for (ThreadPool* pool : pools()) {
    EXPECT_TRUE(FindCore(empty, 0, pool).core.empty());
    EXPECT_EQ(FindCore(one, 0, pool).removal_order.size(), 1u);
    // beta >= n: nothing to peel.
    const PeelResult whole = FindCore(cycle, 8, pool);
    EXPECT_EQ(whole.core.size(), 8u);
    EXPECT_TRUE(whole.removal_order.empty());
  }
}

TEST_F(PeelingParallelTest, RepeatedRunsAreIdentical) {
  const Graph g = ErGraph(2500, 4.0 / 2500.0, 11, 20);
  const PeelResult first = FindCore(g, 20, &pool8_);
  const PeelResult second = FindCore(g, 20, &pool8_);
  ExpectSamePeel(first, second, pool8_.num_threads());
}

}  // namespace
}  // namespace dcs
