#include "graph/er_random.h"

#include <cmath>

#include <gtest/gtest.h>

#include "graph/connected_components.h"

namespace dcs {
namespace {

TEST(ErRandomTest, ZeroProbabilityYieldsNoEdges) {
  Rng rng(1);
  const Graph g = SampleErGraph(100, 0.0, &rng);
  EXPECT_EQ(g.num_edges(), 0u);
}

TEST(ErRandomTest, ProbabilityOneYieldsCompleteGraph) {
  Rng rng(2);
  const Graph g = SampleErGraph(30, 1.0, &rng);
  EXPECT_EQ(g.num_edges(), 30u * 29 / 2);
  EXPECT_EQ(g.degree(7), 29u);
}

TEST(ErRandomTest, EdgeCountMatchesExpectation) {
  Rng rng(3);
  const std::size_t n = 2000;
  const double p = 0.002;
  const double expected = p * n * (n - 1) / 2.0;  // ~4000.
  double total = 0.0;
  constexpr int kTrials = 10;
  for (int t = 0; t < kTrials; ++t) {
    total += static_cast<double>(SampleErGraph(n, p, &rng).num_edges());
  }
  const double mean = total / kTrials;
  EXPECT_NEAR(mean, expected, 6.0 * std::sqrt(expected / kTrials));
}

TEST(ErRandomTest, DegreesConcentrateAroundNp) {
  Rng rng(4);
  const std::size_t n = 3000;
  const double p = 0.01;  // Mean degree 30.
  const Graph g = SampleErGraph(n, p, &rng);
  double sum = 0.0;
  for (std::size_t v = 0; v < n; ++v) {
    sum += static_cast<double>(g.degree(static_cast<Graph::VertexId>(v)));
  }
  EXPECT_NEAR(sum / static_cast<double>(n), 30.0, 1.5);
}

TEST(ErRandomTest, SubcriticalRegimeHasSmallComponents) {
  // p = 0.5/n: all components should be O(log n).
  Rng rng(5);
  const std::size_t n = 20000;
  const Graph g = SampleErGraph(n, 0.5 / static_cast<double>(n), &rng);
  EXPECT_LT(LargestComponentSize(g), 60u);
}

TEST(ErRandomTest, SupercriticalRegimeHasGiantComponent) {
  // p = 2/n: a giant component of Theta(n) emerges — the phase transition
  // the ER test leans on.
  Rng rng(6);
  const std::size_t n = 20000;
  const Graph g = SampleErGraph(n, 2.0 / static_cast<double>(n), &rng);
  EXPECT_GT(LargestComponentSize(g), n / 2);
}

TEST(PlantedGraphTest, PatternVerticesAreDistinctAndSorted) {
  Rng rng(7);
  const PlantedGraph planted = SamplePlantedGraph(1000, 0.0005, 50, 0.3,
                                                  &rng);
  EXPECT_EQ(planted.pattern_vertices.size(), 50u);
  for (std::size_t i = 1; i < planted.pattern_vertices.size(); ++i) {
    EXPECT_LT(planted.pattern_vertices[i - 1], planted.pattern_vertices[i]);
  }
}

TEST(PlantedGraphTest, PatternRaisesInternalDegree) {
  Rng rng(8);
  const std::size_t n = 5000;
  const std::size_t n1 = 100;
  const PlantedGraph planted =
      SamplePlantedGraph(n, 0.2 / static_cast<double>(n), n1, 0.3, &rng);
  std::vector<char> in_pattern(n, 0);
  for (Graph::VertexId v : planted.pattern_vertices) in_pattern[v] = 1;
  // Mean internal degree of pattern vertices ~ 0.3 * 99 ~ 30, while
  // background vertices have ~0.2 mean degree.
  double pattern_degree = 0.0;
  double background_degree = 0.0;
  for (std::size_t v = 0; v < n; ++v) {
    const double d = static_cast<double>(
        planted.graph.degree(static_cast<Graph::VertexId>(v)));
    if (in_pattern[v]) {
      pattern_degree += d;
    } else {
      background_degree += d;
    }
  }
  pattern_degree /= static_cast<double>(n1);
  background_degree /= static_cast<double>(n - n1);
  EXPECT_GT(pattern_degree, 20.0);
  EXPECT_LT(background_degree, 2.0);
}

TEST(PlantedGraphTest, ZeroPatternIsJustEr) {
  Rng rng(9);
  const PlantedGraph planted = SamplePlantedGraph(500, 0.001, 0, 0.9, &rng);
  EXPECT_TRUE(planted.pattern_vertices.empty());
}

}  // namespace
}  // namespace dcs
