#include "baseline/rabin.h"

#include <cmath>
#include <cstring>
#include <set>
#include <string>

#include <gtest/gtest.h>

#include "common/rng.h"

namespace dcs {
namespace {

std::string RandomBytes(Rng* rng, std::size_t n) {
  std::string s(n, '\0');
  for (char& c : s) c = static_cast<char>(rng->UniformInt(256));
  return s;
}

TEST(RabinTest, FingerprintDeterministic) {
  RabinFingerprinter fp(16);
  EXPECT_EQ(fp.Fingerprint("hello world fingerprint"),
            fp.Fingerprint("hello world fingerprint"));
  EXPECT_NE(fp.Fingerprint("hello world fingerprint"),
            fp.Fingerprint("hello world fingerprinT"));
}

TEST(RabinTest, RollingEqualsDirectPerWindow) {
  // The load-bearing property: the O(1) roll must equal recomputing each
  // window from scratch.
  Rng rng(1);
  const std::string data = RandomBytes(&rng, 300);
  for (std::size_t window : {1u, 8u, 40u, 64u}) {
    RabinFingerprinter fp(window);
    const std::vector<std::uint64_t> rolled = fp.WindowFingerprints(data);
    ASSERT_EQ(rolled.size(), data.size() - window + 1);
    for (std::size_t i = 0; i < rolled.size(); i += 17) {
      EXPECT_EQ(rolled[i],
                fp.Fingerprint(std::string_view(data).substr(i, window)))
          << "window " << window << " pos " << i;
    }
  }
}

TEST(RabinTest, ShortBufferYieldsNothing) {
  RabinFingerprinter fp(32);
  EXPECT_TRUE(fp.WindowFingerprints("tiny").empty());
}

TEST(RabinTest, ExactWindowSizeYieldsOne) {
  RabinFingerprinter fp(4);
  const auto fps = fp.WindowFingerprints("abcd");
  ASSERT_EQ(fps.size(), 1u);
  EXPECT_EQ(fps[0], fp.Fingerprint("abcd"));
}

TEST(RabinTest, SameSubstringSameFingerprintAnyPosition) {
  // Position independence: the common substring fingerprints identically
  // wherever it sits — the property that makes the baseline offset-proof.
  Rng rng(2);
  const std::string common = RandomBytes(&rng, 64);
  const std::string a = RandomBytes(&rng, 50) + common + RandomBytes(&rng, 10);
  const std::string b = RandomBytes(&rng, 7) + common + RandomBytes(&rng, 90);
  RabinFingerprinter fp(64);
  const auto fa = fp.WindowFingerprints(a);
  const auto fb = fp.WindowFingerprints(b);
  EXPECT_EQ(fa[50], fb[7]);
}

TEST(RabinTest, SampledFingerprintsAreSubset) {
  Rng rng(3);
  const std::string data = RandomBytes(&rng, 2000);
  RabinFingerprinter fp(40);
  const auto all = fp.WindowFingerprints(data);
  const auto sampled = fp.SampledWindowFingerprints(data, 4);
  // Every sampled fingerprint has its low 4 bits zero and appears in all.
  for (std::uint64_t s : sampled) {
    EXPECT_EQ(s & 0xF, 0u);
  }
  // Sampling rate ~ 1/16.
  EXPECT_NEAR(static_cast<double>(sampled.size()),
              static_cast<double>(all.size()) / 16.0,
              6.0 * std::sqrt(static_cast<double>(all.size()) / 16.0));
}

TEST(RabinTest, CollisionFreeOnDistinctShortInputs) {
  RabinFingerprinter fp(8);
  std::set<std::uint64_t> seen;
  for (std::uint32_t i = 0; i < 50000; ++i) {
    std::string data(8, '\0');
    std::memcpy(data.data(), &i, sizeof(i));
    seen.insert(fp.Fingerprint(data));
  }
  EXPECT_EQ(seen.size(), 50000u);
}

}  // namespace
}  // namespace dcs
