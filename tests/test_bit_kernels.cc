// Differential suite for the runtime-dispatched bit kernels: every table
// (whatever ActiveBitKernels resolved to on this host, plus the scalar
// reference) must produce bit-identical results on randomized, ragged, and
// extreme inputs. This is what lets the analysis pipelines keep their
// bit-identical-merge determinism guarantee while the instruction mix
// changes underneath them.

#include "common/bit_kernels.h"

#include <bit>
#include <cstddef>
#include <cstdint>
#include <string_view>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"

namespace dcs {
namespace {

// Naive single-word-at-a-time implementations, deliberately too simple to
// be wrong, as the oracle for both tables.
std::size_t NaiveCountOnes(const std::vector<std::uint64_t>& words) {
  std::size_t count = 0;
  for (std::uint64_t w : words) {
    count += static_cast<std::size_t>(std::popcount(w));
  }
  return count;
}

std::size_t NaiveAndCount(const std::vector<std::uint64_t>& a,
                          const std::vector<std::uint64_t>& b) {
  std::size_t count = 0;
  for (std::size_t w = 0; w < a.size(); ++w) {
    count += static_cast<std::size_t>(std::popcount(a[w] & b[w]));
  }
  return count;
}

std::vector<std::uint64_t> RandomWords(Rng* rng, std::size_t num_words) {
  std::vector<std::uint64_t> words(num_words);
  for (std::uint64_t& w : words) w = rng->Next();
  return words;
}

// The word lengths every test sweeps: zero, sub-stride raggedness around
// the SIMD widths (4-word AVX2 stride), the 31-vector popcount block
// boundary (124 words), and spans long enough to cross the batch kernel's
// 2048-word tile boundary.
const std::size_t kLengths[] = {0,  1,  2,   3,   4,   5,    7,    8,
                                9,  15, 16,  31,  32,  63,   64,   123,
                                124, 125, 128, 1000, 2048, 2049, 4100};

class BitKernelTablesTest : public ::testing::TestWithParam<const char*> {
 protected:
  const BitKernelOps& ops() const {
    return GetParam() == std::string_view("scalar") ? ScalarBitKernels()
                                                    : ActiveBitKernels();
  }
};

TEST_P(BitKernelTablesTest, CountOnesMatchesNaive) {
  Rng rng(101);
  for (std::size_t len : kLengths) {
    const auto words = RandomWords(&rng, len);
    EXPECT_EQ(ops().count_ones(words.data(), len), NaiveCountOnes(words))
        << "len=" << len;
  }
}

TEST_P(BitKernelTablesTest, CountOnesExtremes) {
  for (std::size_t len : kLengths) {
    const std::vector<std::uint64_t> zeros(len, 0);
    const std::vector<std::uint64_t> ones(len, ~0ULL);
    EXPECT_EQ(ops().count_ones(zeros.data(), len), 0u) << "len=" << len;
    EXPECT_EQ(ops().count_ones(ones.data(), len), len * 64) << "len=" << len;
  }
}

TEST_P(BitKernelTablesTest, AndCountMatchesNaive) {
  Rng rng(202);
  for (std::size_t len : kLengths) {
    const auto a = RandomWords(&rng, len);
    const auto b = RandomWords(&rng, len);
    EXPECT_EQ(ops().and_count(a.data(), b.data(), len), NaiveAndCount(a, b))
        << "len=" << len;
  }
}

TEST_P(BitKernelTablesTest, AndOrInplaceMatchNaive) {
  Rng rng(303);
  for (std::size_t len : kLengths) {
    const auto a = RandomWords(&rng, len);
    const auto b = RandomWords(&rng, len);
    std::vector<std::uint64_t> and_dst = a;
    std::vector<std::uint64_t> or_dst = a;
    ops().and_inplace(and_dst.data(), b.data(), len);
    ops().or_inplace(or_dst.data(), b.data(), len);
    for (std::size_t w = 0; w < len; ++w) {
      ASSERT_EQ(and_dst[w], a[w] & b[w]) << "len=" << len << " w=" << w;
      ASSERT_EQ(or_dst[w], a[w] | b[w]) << "len=" << len << " w=" << w;
    }
  }
}

TEST_P(BitKernelTablesTest, FoldsMatchNaive) {
  Rng rng(404);
  for (std::size_t len : {std::size_t{1}, std::size_t{7}, std::size_t{64},
                          std::size_t{200}}) {
    for (std::size_t num_rows : {std::size_t{1}, std::size_t{2},
                                 std::size_t{3}, std::size_t{17}}) {
      std::vector<std::vector<std::uint64_t>> rows;
      std::vector<const std::uint64_t*> ptrs;
      for (std::size_t r = 0; r < num_rows; ++r) {
        rows.push_back(RandomWords(&rng, len));
        ptrs.push_back(rows.back().data());
      }
      std::vector<std::uint64_t> and_out(len), or_out(len);
      ops().and_fold(ptrs.data(), num_rows, len, and_out.data());
      ops().or_fold(ptrs.data(), num_rows, len, or_out.data());
      for (std::size_t w = 0; w < len; ++w) {
        std::uint64_t want_and = ~0ULL, want_or = 0;
        for (std::size_t r = 0; r < num_rows; ++r) {
          want_and &= rows[r][w];
          want_or |= rows[r][w];
        }
        ASSERT_EQ(and_out[w], want_and) << "rows=" << num_rows << " w=" << w;
        ASSERT_EQ(or_out[w], want_or) << "rows=" << num_rows << " w=" << w;
      }
    }
  }
}

TEST_P(BitKernelTablesTest, EmptyFoldsAreIdentities) {
  std::vector<std::uint64_t> and_out(5, 0xDEAD), or_out(5, 0xDEAD);
  ops().and_fold(nullptr, 0, 5, and_out.data());
  ops().or_fold(nullptr, 0, 5, or_out.data());
  for (std::size_t w = 0; w < 5; ++w) {
    EXPECT_EQ(and_out[w], ~0ULL);
    EXPECT_EQ(or_out[w], 0ULL);
  }
}

TEST_P(BitKernelTablesTest, BatchMatchesPairwise) {
  Rng rng(505);
  // Crosses the 2048-word tile boundary and the 256-row stack-buffer limit
  // used by BitVector::CommonOnesBatch's pointer gather.
  for (std::size_t len : {std::size_t{0}, std::size_t{3}, std::size_t{64},
                          std::size_t{2050}}) {
    for (std::size_t num_rows : {std::size_t{0}, std::size_t{1},
                                 std::size_t{5}, std::size_t{300}}) {
      const auto left = RandomWords(&rng, len);
      std::vector<std::vector<std::uint64_t>> rows;
      std::vector<const std::uint64_t*> ptrs;
      for (std::size_t r = 0; r < num_rows; ++r) {
        rows.push_back(RandomWords(&rng, len));
        ptrs.push_back(rows.back().data());
      }
      std::vector<std::uint32_t> out(num_rows, 0xABABABAB);
      ops().and_count_batch(left.data(), ptrs.data(), num_rows, len,
                            out.data());
      for (std::size_t r = 0; r < num_rows; ++r) {
        ASSERT_EQ(out[r], NaiveAndCount(left, rows[r]))
            << "len=" << len << " rows=" << num_rows << " r=" << r;
      }
    }
  }
}

TEST_P(BitKernelTablesTest, RandomizedBitLengthFuzz) {
  // Randomized lengths in 0..8192 bits: allocate whole words, mask the tail
  // to the bit length (the BitVector zero-padding invariant), and check the
  // fused count against the naive oracle.
  Rng rng(606);
  for (int trial = 0; trial < 200; ++trial) {
    const std::size_t num_bits = rng.UniformInt(8193);
    const std::size_t num_words = (num_bits + 63) / 64;
    auto a = RandomWords(&rng, num_words);
    auto b = RandomWords(&rng, num_words);
    if (num_bits % 64 != 0) {
      const std::uint64_t mask = (1ULL << (num_bits % 64)) - 1;
      a.back() &= mask;
      b.back() &= mask;
    }
    ASSERT_EQ(ops().and_count(a.data(), b.data(), num_words),
              NaiveAndCount(a, b))
        << "bits=" << num_bits;
    ASSERT_EQ(ops().count_ones(a.data(), num_words), NaiveCountOnes(a))
        << "bits=" << num_bits;
  }
}

INSTANTIATE_TEST_SUITE_P(AllTables, BitKernelTablesTest,
                         ::testing::Values("scalar", "active"));

TEST(BitKernelDispatchTest, ForceScalarSelectsScalarTable) {
  EXPECT_STREQ(internal::SelectBitKernels(true).name, "scalar");
}

TEST(BitKernelDispatchTest, DefaultSelectionIsScalarOrSimd) {
  const BitKernelOps& selected = internal::SelectBitKernels(false);
  const std::string_view name = selected.name;
  EXPECT_TRUE(name == "scalar" || name == "avx2" || name == "neon")
      << "unexpected table: " << name;
  // When a SIMD table exists and the host supports it, the non-forced
  // selection must pick it; otherwise it must fall back to scalar.
  const BitKernelOps* simd = internal::SimdBitKernels();
  if (simd != nullptr) {
    EXPECT_EQ(&selected, simd);
  } else {
    EXPECT_EQ(&selected, &ScalarBitKernels());
  }
}

TEST(BitKernelDispatchTest, ActiveTableIsStable) {
  EXPECT_EQ(&ActiveBitKernels(), &ActiveBitKernels());
}

TEST(AccumulateColumnCountsTest, MatchesNaiveAcrossRowCounts) {
  Rng rng(707);
  // 0..40 rows exercises the empty case, the per-bit remainder path, one
  // full 15-row carry-save block, and blocks plus remainder.
  for (std::size_t num_rows = 0; num_rows <= 40; ++num_rows) {
    const std::size_t num_words = 9;
    std::vector<std::vector<std::uint64_t>> rows;
    std::vector<const std::uint64_t*> ptrs;
    for (std::size_t r = 0; r < num_rows; ++r) {
      rows.push_back(RandomWords(&rng, num_words));
      ptrs.push_back(rows.back().data());
    }
    std::vector<std::uint32_t> counts(num_words * 64, 0);
    AccumulateColumnCounts(ptrs.data(), num_rows, 0, num_words,
                           counts.data());
    for (std::size_t c = 0; c < num_words * 64; ++c) {
      std::uint32_t want = 0;
      for (std::size_t r = 0; r < num_rows; ++r) {
        want += static_cast<std::uint32_t>((rows[r][c / 64] >> (c % 64)) & 1);
      }
      ASSERT_EQ(counts[c], want) << "rows=" << num_rows << " col=" << c;
    }
  }
}

TEST(AccumulateColumnCountsTest, RespectsWordRangeAndAccumulates) {
  Rng rng(808);
  const std::size_t num_words = 6;
  std::vector<std::vector<std::uint64_t>> rows;
  std::vector<const std::uint64_t*> ptrs;
  for (std::size_t r = 0; r < 20; ++r) {
    rows.push_back(RandomWords(&rng, num_words));
    ptrs.push_back(rows.back().data());
  }
  // Two disjoint word ranges must partition the full-range result, and
  // counts outside the range must stay untouched (the sharded weight screen
  // depends on both properties).
  std::vector<std::uint32_t> split(num_words * 64, 0);
  AccumulateColumnCounts(ptrs.data(), rows.size(), 0, 2, split.data());
  AccumulateColumnCounts(ptrs.data(), rows.size(), 2, num_words,
                         split.data());
  std::vector<std::uint32_t> whole(num_words * 64, 0);
  AccumulateColumnCounts(ptrs.data(), rows.size(), 0, num_words,
                         whole.data());
  EXPECT_EQ(split, whole);

  std::vector<std::uint32_t> partial(num_words * 64, 0);
  AccumulateColumnCounts(ptrs.data(), rows.size(), 2, 4, partial.data());
  for (std::size_t c = 0; c < 2 * 64; ++c) {
    ASSERT_EQ(partial[c], 0u) << "col=" << c;
  }
  for (std::size_t c = 4 * 64; c < num_words * 64; ++c) {
    ASSERT_EQ(partial[c], 0u) << "col=" << c;
  }
}

}  // namespace
}  // namespace dcs
