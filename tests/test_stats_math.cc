#include "common/stats_math.h"

#include <cmath>

#include <gtest/gtest.h>

namespace dcs {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

TEST(LogChooseTest, SmallValuesExact) {
  EXPECT_NEAR(LogChoose(5, 2), std::log(10.0), 1e-12);
  EXPECT_NEAR(LogChoose(10, 0), 0.0, 1e-12);
  EXPECT_NEAR(LogChoose(10, 10), 0.0, 1e-12);
  EXPECT_EQ(LogChoose(5, 6), -kInf);
  EXPECT_EQ(LogChoose(5, -1), -kInf);
}

TEST(LogChooseTest, SymmetricInK) {
  EXPECT_NEAR(LogChoose(100, 30), LogChoose(100, 70), 1e-9);
}

TEST(LogSumExpTest, Basics) {
  EXPECT_NEAR(LogSumExp(std::log(2.0), std::log(3.0)), std::log(5.0), 1e-12);
  EXPECT_EQ(LogSumExp(-kInf, std::log(3.0)), std::log(3.0));
  EXPECT_EQ(LogSumExp(std::log(3.0), -kInf), std::log(3.0));
  // No overflow for large magnitudes.
  EXPECT_NEAR(LogSumExp(1000.0, 1000.0), 1000.0 + std::log(2.0), 1e-9);
}

TEST(LogBinomPmfTest, MatchesDirectComputation) {
  // Binomial(4, 0.5): pmf(2) = 6/16.
  EXPECT_NEAR(std::exp(LogBinomPmf(2, 4, 0.5)), 6.0 / 16.0, 1e-12);
  // Binomial(3, 0.2): pmf(1) = 3 * 0.2 * 0.64.
  EXPECT_NEAR(std::exp(LogBinomPmf(1, 3, 0.2)), 3 * 0.2 * 0.64, 1e-12);
  EXPECT_EQ(LogBinomPmf(-1, 5, 0.5), -kInf);
  EXPECT_EQ(LogBinomPmf(6, 5, 0.5), -kInf);
}

TEST(LogBinomPmfTest, DegenerateP) {
  EXPECT_EQ(LogBinomPmf(0, 5, 0.0), 0.0);
  EXPECT_EQ(LogBinomPmf(1, 5, 0.0), -kInf);
  EXPECT_EQ(LogBinomPmf(5, 5, 1.0), 0.0);
}

TEST(BinomCdfTest, SumsPmfExactly) {
  // Binomial(10, 0.3), check against direct summation.
  for (std::int64_t x = 0; x <= 10; ++x) {
    double direct = 0.0;
    for (std::int64_t k = 0; k <= x; ++k) {
      direct += std::exp(LogBinomPmf(k, 10, 0.3));
    }
    EXPECT_NEAR(BinomCdf(x, 10, 0.3), direct, 1e-12) << "x=" << x;
  }
}

TEST(BinomCdfTest, Boundaries) {
  EXPECT_EQ(BinomCdf(-1, 10, 0.5), 0.0);
  EXPECT_EQ(BinomCdf(10, 10, 0.5), 1.0);
  EXPECT_EQ(BinomCdf(3, 10, 0.0), 1.0);
}

TEST(BinomCdfTest, PaperExampleWeightScreen) {
  // Section V-A.2: 1 - binocdf(550, 1000, 0.5) ~ 0.00073.
  const double sf = 1.0 - BinomCdf(550, 1000, 0.5);
  EXPECT_NEAR(sf, 0.00073, 0.0001);
  // The paper quotes 1 - binocdf(7, 30, 0.55) = 0.988; the exact value is
  // 0.9996 (the paper rounded a slightly different intermediate), and either
  // way the detection probability clears its 0.95 bar.
  EXPECT_NEAR(1.0 - BinomCdf(7, 30, 0.55), 0.9996, 1e-3);
  EXPECT_GT(1.0 - BinomCdf(7, 30, 0.55), 0.988);
}

TEST(LogBinomSfTest, ComplementsCdf) {
  for (std::int64_t x : {0, 5, 9}) {
    const double sf = std::exp(LogBinomSf(x, 10, 0.4));
    EXPECT_NEAR(sf, 1.0 - BinomCdf(x, 10, 0.4), 1e-10);
  }
  EXPECT_EQ(LogBinomSf(10, 10, 0.4), -kInf);
  EXPECT_EQ(LogBinomSf(-1, 10, 0.4), 0.0);
}

TEST(LogBinomSfTest, DeepTailIsFiniteAndMonotone) {
  // P[Bin(45000, 1e-5) > d] for growing d: should decrease steeply and stay
  // finite in the log domain far past double underflow.
  double prev = 0.0;
  for (std::int64_t d = 0; d <= 60; d += 10) {
    const double log_sf = LogBinomSf(d, 45000, 1e-5);
    EXPECT_LT(log_sf, prev);
    EXPECT_TRUE(std::isfinite(log_sf));
    prev = log_sf;
  }
  // d = 60 tail is around e^-242: far below double range but finite here.
  EXPECT_LT(LogBinomSf(60, 45000, 1e-5), -200.0);
}

TEST(BinomQuantileTest, InvertsCdf) {
  for (double q : {0.01, 0.5, 0.9, 0.999}) {
    const std::int64_t x = BinomQuantile(q, 100, 0.3);
    EXPECT_GE(BinomCdf(x, 100, 0.3), q);
    if (x > 0) {
      EXPECT_LT(BinomCdf(x - 1, 100, 0.3), q);
    }
  }
}

TEST(HypergeomPmfTest, MatchesHandComputation) {
  // N=10, i=4 marked, draw j=3: P[k=2] = C(4,2) C(6,1) / C(10,3) = 36/120.
  EXPECT_NEAR(std::exp(LogHypergeomPmf(2, 10, 4, 3)), 36.0 / 120.0, 1e-12);
  EXPECT_EQ(LogHypergeomPmf(5, 10, 4, 3), -kInf);  // k > min(i, j).
}

TEST(HypergeomPmfTest, SupportLowerBound) {
  // N=10, i=8, j=7: k >= i + j - N = 5.
  EXPECT_EQ(LogHypergeomPmf(4, 10, 8, 7), -kInf);
  EXPECT_GT(std::exp(LogHypergeomPmf(5, 10, 8, 7)), 0.0);
}

TEST(HypergeomCdfTest, FullSupportSumsToOne) {
  EXPECT_NEAR(HypergeomCdf(3, 10, 4, 3), 1.0, 1e-12);
  EXPECT_EQ(HypergeomCdf(-1, 10, 4, 3), 0.0);
  double acc = 0.0;
  for (std::int64_t k = 0; k <= 3; ++k) {
    acc += std::exp(LogHypergeomPmf(k, 10, 4, 3));
    EXPECT_NEAR(HypergeomCdf(k, 10, 4, 3), acc, 1e-12);
  }
}

TEST(LogHypergeomSfTest, ComplementsCdf) {
  for (std::int64_t x = 0; x <= 3; ++x) {
    EXPECT_NEAR(std::exp(LogHypergeomSf(x, 10, 4, 3)),
                1.0 - HypergeomCdf(x, 10, 4, 3), 1e-10);
  }
}

TEST(HypergeomUpperThresholdTest, ThresholdIsTight) {
  // Paper-sized rows: N=1024, i=j=512.
  const double p_star = 1e-5;
  const std::int64_t lambda = HypergeomUpperThreshold(p_star, 1024, 512, 512);
  EXPECT_LE(std::exp(LogHypergeomSf(lambda, 1024, 512, 512)), p_star);
  EXPECT_GT(std::exp(LogHypergeomSf(lambda - 1, 1024, 512, 512)), p_star);
  // Mean overlap is 256 with sigma ~ 8; a 1e-5 threshold sits ~4.3 sigma
  // above the mean.
  EXPECT_GT(lambda, 256 + 3 * 8);
  EXPECT_LT(lambda, 256 + 6 * 8);
}

TEST(NormalCdfTest, StandardValues) {
  EXPECT_NEAR(NormalCdf(0.0), 0.5, 1e-12);
  EXPECT_NEAR(NormalCdf(1.96), 0.975, 1e-3);
  EXPECT_NEAR(NormalCdf(-1.96), 0.025, 1e-3);
}

}  // namespace
}  // namespace dcs
