#include "graph/union_find.h"

#include <gtest/gtest.h>

namespace dcs {
namespace {

TEST(UnionFindTest, StartsAsSingletons) {
  UnionFind uf(5);
  EXPECT_EQ(uf.num_sets(), 5u);
  for (std::uint32_t i = 0; i < 5; ++i) {
    EXPECT_EQ(uf.Find(i), i);
    EXPECT_EQ(uf.SetSize(i), 1u);
  }
}

TEST(UnionFindTest, UnionMergesAndReportsNovelty) {
  UnionFind uf(4);
  EXPECT_TRUE(uf.Union(0, 1));
  EXPECT_FALSE(uf.Union(1, 0));
  EXPECT_EQ(uf.num_sets(), 3u);
  EXPECT_EQ(uf.Find(0), uf.Find(1));
  EXPECT_NE(uf.Find(0), uf.Find(2));
  EXPECT_EQ(uf.SetSize(1), 2u);
}

TEST(UnionFindTest, TransitiveMerge) {
  UnionFind uf(6);
  uf.Union(0, 1);
  uf.Union(2, 3);
  uf.Union(1, 2);
  EXPECT_EQ(uf.Find(0), uf.Find(3));
  EXPECT_EQ(uf.SetSize(0), 4u);
  EXPECT_EQ(uf.num_sets(), 3u);
}

TEST(UnionFindTest, ChainCompresses) {
  UnionFind uf(1000);
  for (std::uint32_t i = 0; i + 1 < 1000; ++i) uf.Union(i, i + 1);
  EXPECT_EQ(uf.num_sets(), 1u);
  EXPECT_EQ(uf.SetSize(0), 1000u);
  EXPECT_EQ(uf.Find(999), uf.Find(0));
}

}  // namespace
}  // namespace dcs
