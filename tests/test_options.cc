#include "dcs/options.h"

#include "dcs/report.h"

#include <gtest/gtest.h>

namespace dcs {
namespace {

TEST(OptionsTest, AlignedDefaultsMatchPaper) {
  const AlignedPipelineOptions opts;
  EXPECT_EQ(opts.sketch.num_bits, 4u << 20);  // 4 Mbit for OC-48.
  EXPECT_EQ(opts.n_prime, 4000u);             // Theorem 2 screen.
}

TEST(OptionsTest, UnalignedDefaultsMatchPaper) {
  const UnalignedPipelineOptions opts;
  EXPECT_EQ(opts.sketch.num_groups, 128u);
  EXPECT_EQ(opts.sketch.offset_options.num_arrays, 10u);
  EXPECT_EQ(opts.sketch.offset_options.array_bits, 1024u);
  EXPECT_EQ(opts.sketch.offset_options.offset_period, 536u);
  // ER-test p1 below the phase transition, core p1 well above: at the
  // paper's n = 102,400 these give 0.65e-5 and 0.8e-4.
  EXPECT_NEAR(opts.er_p1_times_n / 102400.0, 0.65e-5, 0.05e-5);
  EXPECT_NEAR(opts.core_p1_times_n / 102400.0, 0.8e-4, 0.05e-4);
  EXPECT_LT(opts.er_p1_times_n, 1.0);   // Subcritical.
  EXPECT_GT(opts.core_p1_times_n, 1.0); // Supercritical.
}

TEST(OptionsTest, SmallUnalignedDefaultsScaleDown) {
  const UnalignedPipelineOptions opts = SmallUnalignedDefaults(16);
  EXPECT_EQ(opts.sketch.num_groups, 16u);
  EXPECT_LT(opts.detector.beta, UnalignedPipelineOptions{}.detector.beta);
  EXPECT_GE(opts.detector.expand_min_edges, 1u);
}

TEST(OptionsTest, GroupRefEquality) {
  const GroupRef a{1, 2};
  GroupRef b = a;
  EXPECT_EQ(a, b);
  b.group_index = 3;
  EXPECT_NE(a, b);
}

}  // namespace
}  // namespace dcs
