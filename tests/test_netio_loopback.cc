// Loopback differential proof of the distributed digest plane
// (docs/DISTRIBUTED.md): N simulated routers shipping digests through real
// sockets (UDS and TCP) into dcs_ingestd's server core must produce a
// DcsReport stream *identical* (operator==, i.e. byte-identical fields) to
// offering the same digests to an in-process EpochRing — at thread counts
// 1, 2, and 8, under both payload codecs and auto negotiation, for aligned
// and unaligned digests alike.
//
// The canonical replay order is epoch-major, router-minor over a single
// connection, matching `dcs_workbench send`. A concurrent-connection
// variant (one socket per router) checks that aligned analysis is arrival-
// order invariant when every epoch stays inside the ring window.

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cstdint>
#include <cstring>
#include <filesystem>
#include <functional>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "common/thread_pool.h"
#include "dcs/epoch_ring.h"
#include "netio/digest_sender.h"
#include "netio/dispatch.h"
#include "netio/ingest_server.h"

namespace dcs {
namespace {

constexpr std::uint32_t kRouters = 8;
constexpr std::size_t kBits = 1024;

// Deterministic per-(epoch, router) aligned digest: Bernoulli(1/2) noise
// with a planted pattern on every other epoch (same model as
// tests/test_epoch_ring.cc, smaller).
Digest AlignedDigest(std::uint64_t epoch, std::uint32_t router) {
  Digest digest;
  digest.router_id = router;
  digest.epoch_id = epoch;
  digest.kind = DigestKind::kAligned;
  digest.packets_covered = 100;
  digest.raw_bytes_covered = 100000;
  BitVector row(kBits);
  Rng rng(epoch * 1000003 + router * 7919 + 1);
  for (std::size_t i = 0; i < kBits; ++i) {
    if (rng.Bernoulli(0.5)) row.Set(i);
  }
  if (epoch % 2 == 0 && router < 6) {
    for (std::size_t c = 0; c < 16; ++c) row.Set(31 + 13 * c);
  }
  digest.rows.push_back(std::move(row));
  return digest;
}

// Deterministic unaligned digest: 8 groups x 2 arrays of 256-bit rows with
// per-row densities spanning empty to half full, so every row encoding
// (dense, sparse, RLE) rides the wire.
Digest UnalignedDigest(std::uint64_t epoch, std::uint32_t router) {
  Digest digest;
  digest.router_id = router;
  digest.epoch_id = epoch;
  digest.kind = DigestKind::kUnaligned;
  digest.num_groups = 8;
  digest.arrays_per_group = 2;
  digest.packets_covered = 64;
  digest.raw_bytes_covered = 64 * 536;
  Rng rng(epoch * 900001 + router * 104729 + 5);
  for (std::size_t r = 0; r < 16; ++r) {
    BitVector row(256);
    const double density[] = {0.0, 0.01, 0.1, 0.5};
    const double d = density[r % 4];
    for (std::size_t i = 0; i < 256; ++i) {
      if (rng.Bernoulli(d)) row.Set(i);
    }
    digest.rows.push_back(std::move(row));
  }
  return digest;
}

EpochRingOptions RingOptions() {
  EpochRingOptions options;
  options.capacity = 4;
  options.aligned.n_prime = 96;
  options.aligned.detector.first_iteration_hopefuls = 96;
  options.aligned.detector.hopefuls = 48;
  options.aligned.incremental_weights = true;
  options.unaligned.detector.beta = 8;
  return options;
}

// Epoch-major, router-minor: the canonical replay order.
std::vector<Digest> CanonicalStream(std::uint64_t epochs, bool aligned) {
  std::vector<Digest> digests;
  for (std::uint64_t e = 0; e < epochs; ++e) {
    for (std::uint32_t r = 0; r < kRouters; ++r) {
      digests.push_back(aligned ? AlignedDigest(e, r) : UnalignedDigest(e, r));
    }
  }
  return digests;
}

std::unique_ptr<ThreadPool> MakePool(std::size_t threads,
                                     AnalysisContext* context) {
  if (threads <= 1) return nullptr;
  auto pool = std::make_unique<ThreadPool>(threads);
  context->pool = pool.get();
  return pool;
}

// The in-process half of the differential: same ring options, same thread
// pool shape, digests offered directly.
std::vector<DcsReport> InProcessReports(const std::vector<Digest>& digests,
                                        std::size_t threads) {
  AnalysisContext context;
  std::unique_ptr<ThreadPool> pool = MakePool(threads, &context);
  EpochRing ring(RingOptions(), context);
  for (const Digest& digest : digests) {
    (void)ring.Offer(digest);  // Verdicts are part of the report stream.
  }
  ring.Drain();
  return ring.TakeReports();
}

struct Endpoint {
  bool tcp = false;
  std::uint16_t port = 0;
  std::string uds;
};

Status Connect(const Endpoint& endpoint, DigestSender* out) {
  return endpoint.tcp ? DigestSender::ConnectTcp("127.0.0.1", endpoint.port, out)
                      : DigestSender::ConnectUds(endpoint.uds, out);
}

struct NetResult {
  std::vector<DcsReport> reports;
  DispatchStats dispatch;
  IngestServerStats server;
};

// The networked half: a real IngestServer on an ephemeral endpoint, the
// client callback shipping digests from this thread, the server winding
// down once all `expected_connections` have come and gone.
NetResult ServeLoopback(std::size_t threads, bool tcp,
                        std::size_t expected_connections,
                        const std::function<void(const Endpoint&)>& client) {
  AnalysisContext context;
  std::unique_ptr<ThreadPool> pool = MakePool(threads, &context);
  EpochRing ring(RingOptions(), context);
  FrameDispatcher dispatcher(&ring, pool.get());

  const IngestServer* server_ptr = nullptr;
  IngestServerOptions options;
  // The same pool drives analysis decode *and* the server's parallel read
  // stage, so the t2/t8 parameterizations exercise the multi-threaded
  // server end to end — the differential below is the proof that worker
  // count never changes the report stream.
  options.pool = pool.get();
  options.poll_timeout_ms = 5;
  options.after_round = [&server_ptr, expected_connections]() {
    if (server_ptr == nullptr) return true;
    const IngestServerStats& stats = server_ptr->stats();
    return stats.connections_closed < expected_connections;
  };
  IngestServer server(options, &dispatcher);
  server_ptr = &server;

  Endpoint endpoint;
  endpoint.tcp = tcp;
  static int counter = 0;
  endpoint.uds = (std::filesystem::temp_directory_path() /
                  ("dcs_loopback_" + std::to_string(::getpid()) + "_" +
                   std::to_string(counter++) + ".sock"))
                     .string();
  if (tcp) {
    EXPECT_TRUE(server.ListenTcp(0).ok());
    endpoint.port = server.bound_tcp_port();
  } else {
    EXPECT_TRUE(server.ListenUds(endpoint.uds).ok());
  }

  Status serve_status;
  std::thread serve_thread(
      [&server, &serve_status] { serve_status = server.Serve(); });
  client(endpoint);
  serve_thread.join();
  EXPECT_TRUE(serve_status.ok()) << serve_status.ToString();

  ring.Drain();
  NetResult result;
  result.reports = ring.TakeReports();
  result.dispatch = dispatcher.stats();
  result.server = server.stats();
  return result;
}

// Ships `digests` in order over one connection.
std::function<void(const Endpoint&)> SingleConnectionClient(
    const std::vector<Digest>& digests, CodecMode mode) {
  return [&digests, mode](const Endpoint& endpoint) {
    DigestSender sender;
    ASSERT_TRUE(Connect(endpoint, &sender).ok());
    for (const Digest& digest : digests) {
      ASSERT_TRUE(sender.Send(digest, mode).ok());
    }
    sender.Close();
  };
}

void ExpectSameReports(const std::vector<DcsReport>& expected,
                       const NetResult& actual) {
  ASSERT_EQ(expected.size(), actual.reports.size());
  for (std::size_t i = 0; i < expected.size(); ++i) {
    EXPECT_TRUE(expected[i] == actual.reports[i]) << "report " << i;
  }
}

class LoopbackDifferentialTest
    : public ::testing::TestWithParam<std::tuple<std::size_t, CodecMode>> {};

// The core differential: UDS transport, canonical single-connection order,
// aligned digests — networked report stream == in-process report stream.
TEST_P(LoopbackDifferentialTest, AlignedStreamMatchesInProcess) {
  const auto [threads, mode] = GetParam();
  const std::vector<Digest> digests = CanonicalStream(6, /*aligned=*/true);
  const std::vector<DcsReport> expected = InProcessReports(digests, threads);
  ASSERT_EQ(expected.size(), 6u);
  const NetResult actual = ServeLoopback(
      threads, /*tcp=*/false, 1, SingleConnectionClient(digests, mode));
  ExpectSameReports(expected, actual);
  EXPECT_EQ(actual.dispatch.frames, digests.size());
  EXPECT_EQ(actual.dispatch.digests_accepted, digests.size());
  EXPECT_EQ(actual.dispatch.frame_rejects, 0u);
  EXPECT_EQ(actual.dispatch.decode_failures, 0u);
}

// Same differential with unaligned multi-row digests.
TEST_P(LoopbackDifferentialTest, UnalignedStreamMatchesInProcess) {
  const auto [threads, mode] = GetParam();
  const std::vector<Digest> digests = CanonicalStream(5, /*aligned=*/false);
  const std::vector<DcsReport> expected = InProcessReports(digests, threads);
  ASSERT_EQ(expected.size(), 5u);
  const NetResult actual = ServeLoopback(
      threads, /*tcp=*/false, 1, SingleConnectionClient(digests, mode));
  ExpectSameReports(expected, actual);
  EXPECT_EQ(actual.dispatch.digests_accepted, digests.size());
}

INSTANTIATE_TEST_SUITE_P(
    ThreadsAndCodecs, LoopbackDifferentialTest,
    ::testing::Combine(::testing::Values(std::size_t{1}, std::size_t{2},
                                         std::size_t{8}),
                       ::testing::Values(CodecMode::kRaw, CodecMode::kSparse,
                                         CodecMode::kAuto)),
    [](const ::testing::TestParamInfo<std::tuple<std::size_t, CodecMode>>&
           param) {
      std::string name = "t";
      name += std::to_string(std::get<0>(param.param));
      name += "_";
      name += CodecModeName(std::get<1>(param.param));
      return name;
    });

// TCP transport carries the identical stream (the differential repeated on
// the other socket family, single thread count — the transports share every
// byte of parse/dispatch code above the fd).
TEST(NetioLoopbackTest, TcpMatchesInProcess) {
  const std::vector<Digest> digests = CanonicalStream(4, /*aligned=*/true);
  const std::vector<DcsReport> expected = InProcessReports(digests, 2);
  const NetResult actual = ServeLoopback(
      2, /*tcp=*/true, 1, SingleConnectionClient(digests, CodecMode::kSparse));
  ExpectSameReports(expected, actual);
  EXPECT_EQ(actual.server.connections_accepted, 1u);
  EXPECT_EQ(actual.server.connections_closed, 1u);
}

// One connection per router, all sending concurrently. Aligned analysis is
// arrival-order invariant, and with every epoch inside the ring window
// (epochs <= capacity) no interleaving can force an early close — so any
// arrival order yields the canonical reports. At `threads` > 1 the server
// drains those connections on its worker pool — the multi-connection proof
// that the parallel read stage preserves the report stream.
void RunConcurrentRouters(std::size_t threads) {
  constexpr std::uint64_t kEpochs = 3;  // < RingOptions().capacity.
  const std::vector<Digest> canonical =
      CanonicalStream(kEpochs, /*aligned=*/true);
  const std::vector<DcsReport> expected = InProcessReports(canonical, threads);
  const NetResult actual = ServeLoopback(
      threads, /*tcp=*/false, kRouters, [](const Endpoint& endpoint) {
        std::vector<std::thread> routers;
        for (std::uint32_t r = 0; r < kRouters; ++r) {
          routers.emplace_back([&endpoint, r] {
            DigestSender sender;
            ASSERT_TRUE(Connect(endpoint, &sender).ok());
            for (std::uint64_t e = 0; e < kEpochs; ++e) {
              ASSERT_TRUE(
                  sender.Send(AlignedDigest(e, r), CodecMode::kAuto).ok());
            }
            sender.Close();
          });
        }
        for (std::thread& t : routers) t.join();
      });
  ExpectSameReports(expected, actual);
  EXPECT_EQ(actual.server.connections_accepted, kRouters);
  EXPECT_EQ(actual.dispatch.digests_accepted, kRouters * kEpochs);
}

TEST(NetioLoopbackTest, ConcurrentRouterConnectionsMatchCanonical) {
  RunConcurrentRouters(1);
}

TEST(NetioLoopbackTest, ConcurrentRouterConnectionsMatchCanonicalThreaded) {
  RunConcurrentRouters(4);
}

// Codec accounting: a raw-mode stream is all raw frames, a sparse-mode
// stream all sparse, and sparse ships strictly fewer payload bytes for the
// near-empty unaligned digests.
TEST(NetioLoopbackTest, CodecAccountingAndSparseSavings) {
  const std::vector<Digest> digests = CanonicalStream(2, /*aligned=*/false);
  const NetResult raw = ServeLoopback(
      1, /*tcp=*/false, 1, SingleConnectionClient(digests, CodecMode::kRaw));
  const NetResult sparse = ServeLoopback(
      1, /*tcp=*/false, 1,
      SingleConnectionClient(digests, CodecMode::kSparse));
  EXPECT_EQ(raw.dispatch.raw_frames, digests.size());
  EXPECT_EQ(raw.dispatch.sparse_frames, 0u);
  EXPECT_EQ(sparse.dispatch.sparse_frames, digests.size());
  EXPECT_EQ(sparse.dispatch.raw_frames, 0u);
  EXPECT_LT(sparse.dispatch.payload_bytes, raw.dispatch.payload_bytes);
  // Both decode to the same digests, so the dense-equivalent accounting
  // (what the payloads *would* cost raw) agrees.
  EXPECT_EQ(sparse.dispatch.dense_bytes, raw.dispatch.dense_bytes);
  EXPECT_EQ(raw.dispatch.payload_bytes, raw.dispatch.dense_bytes);
  ExpectSameReports(raw.reports, sparse);
}

// A stale socket file — the previous daemon died without unlinking — is
// reclaimed: ListenUds probes it, gets connection-refused, and binds.
TEST(NetioLoopbackTest, StaleUdsSocketPathReclaimed) {
  const std::string path =
      (std::filesystem::temp_directory_path() /
       ("dcs_stale_uds_" + std::to_string(::getpid()) + ".sock"))
          .string();
  // Manufacture the stale file: bind a raw listener, then close it without
  // unlinking — exactly what a crashed daemon leaves behind (nothing
  // answers the socket file any more, so a probe connect is refused).
  {
    const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    ASSERT_GE(fd, 0);
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
    ASSERT_EQ(::bind(fd, reinterpret_cast<const sockaddr*>(&addr),
                     sizeof(addr)),
              0);
    ASSERT_EQ(::listen(fd, 1), 0);
    ::close(fd);  // Socket file survives; nothing answers it.
  }
  EpochRing ring(RingOptions(), AnalysisContext{});
  FrameDispatcher dispatcher(&ring, nullptr);
  IngestServer server(IngestServerOptions{}, &dispatcher);
  EXPECT_TRUE(server.ListenUds(path).ok());
}

// A *live* socket path — another daemon is serving it — must be refused,
// not hijacked: unlinking it would silently orphan the running server.
TEST(NetioLoopbackTest, LiveUdsSocketPathRefused) {
  const std::string path =
      (std::filesystem::temp_directory_path() /
       ("dcs_live_uds_" + std::to_string(::getpid()) + ".sock"))
          .string();
  EpochRing ring(RingOptions(), AnalysisContext{});
  FrameDispatcher dispatcher(&ring, nullptr);
  IngestServerOptions options;
  options.poll_timeout_ms = 5;
  IngestServer live(options, &dispatcher);
  ASSERT_TRUE(live.ListenUds(path).ok());
  std::thread serve_thread([&live] { (void)live.Serve(); });

  EpochRing ring2(RingOptions(), AnalysisContext{});
  FrameDispatcher dispatcher2(&ring2, nullptr);
  IngestServer usurper(IngestServerOptions{}, &dispatcher2);
  const Status status = usurper.ListenUds(path);
  EXPECT_EQ(status.code(), Status::Code::kFailedPrecondition);

  // The incumbent is unharmed: a client still connects and ships. (It sees
  // two connections total — the usurper's probe is itself a short-lived
  // accept-then-EOF connection, which is exactly how the probe avoids
  // false "stale" verdicts.)
  DigestSender sender;
  EXPECT_TRUE(DigestSender::ConnectUds(path, &sender).ok());
  EXPECT_TRUE(sender.Send(AlignedDigest(0, 0), CodecMode::kAuto).ok());
  sender.Close();
  // Wait (scheduling yields, no timing assumption) for the server to see
  // the connections come and go before winding it down.
  while (live.stats().connections_closed < 2) std::this_thread::yield();
  live.RequestStop();
  serve_thread.join();
  EXPECT_EQ(live.stats().connections_accepted, 2u);
}

// An identity lie — the frame envelope claiming a different router than the
// digest inside — is dropped before the ring, and the rest of the stream
// still lands.
TEST(NetioLoopbackTest, EnvelopeIdentityMismatchDropped) {
  const std::vector<Digest> digests = CanonicalStream(2, /*aligned=*/true);
  const NetResult actual = ServeLoopback(
      1, /*tcp=*/false, 1, [&digests](const Endpoint& endpoint) {
        DigestSender sender;
        ASSERT_TRUE(Connect(endpoint, &sender).ok());
        for (std::size_t i = 0; i < digests.size(); ++i) {
          if (i == 3) {
            // Hand-frame a payload whose envelope lies about the router.
            const std::vector<std::uint8_t> payload =
                EncodeDigestPayload(digests[i], DigestCodecId::kSparse);
            const std::vector<std::uint8_t> frame =
                EncodeFrame(DigestCodecId::kSparse,
                            digests[i].router_id + 1000,
                            digests[i].epoch_id, payload);
            ASSERT_TRUE(sender.SendRaw(frame).ok());
          } else {
            ASSERT_TRUE(sender.Send(digests[i], CodecMode::kSparse).ok());
          }
        }
        sender.Close();
      });
  EXPECT_EQ(actual.dispatch.identity_mismatches, 1u);
  EXPECT_EQ(actual.dispatch.digests_offered, digests.size() - 1);
  EXPECT_EQ(actual.dispatch.frame_rejects, 0u);  // The frame itself is fine.
  // The mismatched digest is simply missing from its epoch.
  ASSERT_EQ(actual.reports.size(), 2u);
  EXPECT_EQ(actual.reports[0].digests_accepted, kRouters - 1);
  EXPECT_EQ(actual.reports[1].digests_accepted, kRouters);
}

}  // namespace
}  // namespace dcs
