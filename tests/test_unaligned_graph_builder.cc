#include "analysis/unaligned_graph_builder.h"

#include <gtest/gtest.h>

#include "common/rng.h"

namespace dcs {
namespace {

// Builds a matrix of `groups` groups x `arrays` rows of `bits` bits, each
// row filled with ~fill ones at random.
BitMatrix RandomGroupMatrix(std::size_t groups, std::size_t arrays,
                            std::size_t bits, double fill, Rng* rng) {
  BitMatrix matrix(groups * arrays, bits);
  for (std::size_t r = 0; r < matrix.rows(); ++r) {
    for (std::size_t c = 0; c < bits; ++c) {
      if (rng->Bernoulli(fill)) matrix.Set(r, c);
    }
  }
  return matrix;
}

// Injects a shared signal: `count` common indices set in one row of each
// listed group.
void InjectSignal(BitMatrix* matrix, std::size_t arrays,
                  const std::vector<std::size_t>& groups, std::size_t count,
                  Rng* rng) {
  std::vector<std::size_t> indices;
  while (indices.size() < count) {
    const std::size_t c = rng->UniformInt(matrix->cols());
    indices.push_back(c);
  }
  for (std::size_t g : groups) {
    const std::size_t row = g * arrays;  // First array of the group.
    for (std::size_t c : indices) matrix->Set(row, c);
  }
}

TEST(GraphBuilderTest, NoSignalMeansSparseGraph) {
  Rng rng(1);
  BitMatrix matrix = RandomGroupMatrix(40, 4, 512, 0.45, &rng);
  LambdaTable lambda(512, 1e-6);
  GraphBuilderOptions opts;
  opts.arrays_per_group = 4;
  const Graph graph = BuildCorrelationGraph(matrix, lambda, opts);
  EXPECT_EQ(graph.num_vertices(), 40u);
  // 780 group pairs x 16 row pairs x 1e-6 ~ 0.012 expected edges.
  EXPECT_LE(graph.num_edges(), 1u);
}

TEST(GraphBuilderTest, InjectedSignalCreatesEdges) {
  // At lower fill (the weak-signal effect makes a 60-index signal invisible
  // inside 45%-full rows — exactly the paper's motivation for flow
  // splitting), 100 shared indices in 20%-full rows are decisive.
  Rng rng(2);
  BitMatrix matrix = RandomGroupMatrix(40, 4, 512, 0.20, &rng);
  InjectSignal(&matrix, 4, {3, 17, 29}, 100, &rng);
  LambdaTable lambda(512, 1e-6);
  GraphBuilderOptions opts;
  opts.arrays_per_group = 4;
  const Graph graph = BuildCorrelationGraph(matrix, lambda, opts);
  // The three signal groups form a triangle.
  auto has_edge = [&](Graph::VertexId a, Graph::VertexId b) {
    for (Graph::VertexId w : graph.neighbors(a)) {
      if (w == b) return true;
    }
    return false;
  };
  EXPECT_TRUE(has_edge(3, 17));
  EXPECT_TRUE(has_edge(3, 29));
  EXPECT_TRUE(has_edge(17, 29));
}

TEST(GraphBuilderTest, ParallelMatchesSerial) {
  Rng rng(3);
  BitMatrix matrix = RandomGroupMatrix(30, 3, 256, 0.4, &rng);
  InjectSignal(&matrix, 3, {1, 20}, 40, &rng);
  LambdaTable lambda(256, 1e-5);
  GraphBuilderOptions serial;
  serial.arrays_per_group = 3;
  const Graph g1 = BuildCorrelationGraph(matrix, lambda, serial);

  ThreadPool pool(4);
  GraphBuilderOptions parallel = serial;
  parallel.scan.pool = &pool;
  const Graph g2 = BuildCorrelationGraph(matrix, lambda, parallel);
  EXPECT_EQ(g1.edges(), g2.edges());
}

TEST(GraphBuilderTest, SampledScanOnlySeesSampledGroups) {
  Rng rng(4);
  BitMatrix matrix = RandomGroupMatrix(50, 2, 256, 0.4, &rng);
  // Strong global signal among many groups.
  InjectSignal(&matrix, 2, {0, 5, 10, 15, 20, 25, 30, 35, 40, 45}, 50, &rng);
  LambdaTable lambda(256, 1e-5);
  GraphBuilderOptions opts;
  opts.arrays_per_group = 2;
  opts.scan.group_sample_rate = 0.4;
  opts.scan.sample_seed = 9;
  const Graph graph = BuildCorrelationGraph(matrix, lambda, opts);
  // Edges only between sampled vertices; fewer than the full 45 signal
  // pairs.
  EXPECT_LT(graph.num_edges(), 45u);
  EXPECT_GT(graph.num_edges(), 0u);
}

TEST(GraphBuilderTest, LowerFillRowsUseLowerThresholds) {
  // Two groups share 40 common ones in rows that are only ~15% full; with
  // per-(i,j) thresholds this is a blazing signal, while a fixed
  // half-full-calibrated threshold would miss it.
  Rng rng(5);
  BitMatrix matrix = RandomGroupMatrix(10, 2, 512, 0.15, &rng);
  InjectSignal(&matrix, 2, {2, 7}, 40, &rng);
  LambdaTable lambda(512, 1e-6);
  GraphBuilderOptions opts;
  opts.arrays_per_group = 2;
  const Graph graph = BuildCorrelationGraph(matrix, lambda, opts);
  bool found = false;
  for (const auto& [u, v] : graph.edges()) {
    if (u == 2 && v == 7) found = true;
  }
  EXPECT_TRUE(found);
}

}  // namespace
}  // namespace dcs
