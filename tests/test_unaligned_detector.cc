#include "analysis/unaligned_detector.h"

#include <algorithm>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "graph/er_random.h"

namespace dcs {
namespace {

TEST(ScoreDetectionTest, PerfectDetection) {
  const std::vector<Graph::VertexId> truth = {1, 5, 9};
  const DetectionScore score = ScoreDetection(truth, truth);
  EXPECT_EQ(score.true_positives, 3u);
  EXPECT_DOUBLE_EQ(score.false_positive, 0.0);
  EXPECT_DOUBLE_EQ(score.false_negative, 0.0);
}

TEST(ScoreDetectionTest, PartialOverlap) {
  const std::vector<Graph::VertexId> detected = {1, 2, 5};
  const std::vector<Graph::VertexId> truth = {1, 5, 9, 11};
  const DetectionScore score = ScoreDetection(detected, truth);
  EXPECT_EQ(score.true_positives, 2u);
  EXPECT_DOUBLE_EQ(score.false_positive, 1.0 / 3.0);
  EXPECT_DOUBLE_EQ(score.false_negative, 0.5);
}

TEST(ScoreDetectionTest, EmptyCases) {
  const DetectionScore none = ScoreDetection({}, {1, 2});
  EXPECT_DOUBLE_EQ(none.false_negative, 1.0);
  EXPECT_DOUBLE_EQ(none.false_positive, 0.0);
  const DetectionScore no_truth = ScoreDetection({1}, {});
  EXPECT_DOUBLE_EQ(no_truth.false_positive, 1.0);
  EXPECT_DOUBLE_EQ(no_truth.false_negative, 0.0);
}

TEST(UnalignedDetectorTest, RecoversPlantedPattern) {
  Rng rng(1);
  const std::size_t n = 10000;
  // Core-finding regime: p1 well above 1/n (the paper's G').
  const double p1 = 8.2 / static_cast<double>(n);
  const PlantedGraph planted = SamplePlantedGraph(n, p1, 120, 0.17, &rng);

  UnalignedDetectorOptions opts;
  opts.beta = 40;
  opts.expand_min_edges = 3;
  const UnalignedDetection detection =
      DetectUnalignedPattern(planted.graph, opts);
  const DetectionScore score =
      ScoreDetection(detection.detected, planted.pattern_vertices);
  // Most of the report is genuine and most of the pattern is found
  // (Table I regime).
  EXPECT_LT(score.false_positive, 0.15);
  EXPECT_GT(score.true_positives, 60u);
}

TEST(UnalignedDetectorTest, CoreIsMostlyGenuine) {
  Rng rng(2);
  const std::size_t n = 10000;
  const PlantedGraph planted =
      SamplePlantedGraph(n, 8.2 / static_cast<double>(n), 140, 0.17, &rng);
  UnalignedDetectorOptions opts;
  opts.beta = 40;
  const UnalignedDetection detection =
      DetectUnalignedPattern(planted.graph, opts);
  EXPECT_EQ(detection.core.size(), 40u);
  std::size_t genuine = 0;
  for (Graph::VertexId v : detection.core) {
    if (std::binary_search(planted.pattern_vertices.begin(),
                           planted.pattern_vertices.end(), v)) {
      ++genuine;
    }
  }
  EXPECT_GE(genuine, 36u);
}

TEST(UnalignedDetectorTest, SecondCoreAddsVertices) {
  Rng rng(3);
  const std::size_t n = 10000;
  const PlantedGraph planted =
      SamplePlantedGraph(n, 8.2 / static_cast<double>(n), 150, 0.2, &rng);
  UnalignedDetectorOptions opts;
  opts.beta = 30;
  opts.expand_min_edges = 3;
  const UnalignedDetection detection =
      DetectUnalignedPattern(planted.graph, opts);
  EXPECT_GT(detection.second_core.size(), 0u);
  EXPECT_GT(detection.detected.size(), detection.core.size());
  // Union contains the core.
  for (Graph::VertexId v : detection.core) {
    EXPECT_TRUE(std::binary_search(detection.detected.begin(),
                                   detection.detected.end(), v));
  }
}

TEST(UnalignedDetectorTest, NoPatternYieldsMostlyNoise) {
  // Without a pattern the pipeline still returns beta + expansion vertices,
  // but they are arbitrary — the upstream ER test is what gates this. Here
  // we only require it not to crash and to respect beta.
  Rng rng(4);
  const std::size_t n = 5000;
  const Graph g = SampleErGraph(n, 8.2 / static_cast<double>(n), &rng);
  UnalignedDetectorOptions opts;
  opts.beta = 25;
  const UnalignedDetection detection = DetectUnalignedPattern(g, opts);
  EXPECT_EQ(detection.core.size(), 25u);
}

TEST(UnalignedDetectorTest, DetectionImprovesWithPatternDensity) {
  Rng rng(5);
  const std::size_t n = 8000;
  auto recovered = [&](double p2) {
    const PlantedGraph planted =
        SamplePlantedGraph(n, 8.2 / static_cast<double>(n), 100, p2, &rng);
    UnalignedDetectorOptions opts;
    opts.beta = 35;
    const UnalignedDetection detection =
        DetectUnalignedPattern(planted.graph, opts);
    return ScoreDetection(detection.detected, planted.pattern_vertices)
        .true_positives;
  };
  // Table I's trend: denser pattern edges (larger g) => better recovery.
  EXPECT_GT(recovered(0.25), recovered(0.06));
}

}  // namespace
}  // namespace dcs
