// Cross-module property tests: each checks that an implemented mechanism
// agrees with the closed-form law the paper derives for it.

#include <cmath>
#include <string>

#include <gtest/gtest.h>

#include "analysis/aligned_detector.h"
#include "analysis/aligned_thresholds.h"
#include "analysis/synthetic_matrix.h"
#include "common/rng.h"
#include "common/stats_math.h"
#include "graph/connected_components.h"
#include "graph/er_random.h"
#include "net/packetizer.h"
#include "sketch/bitmap_sketch.h"
#include "sketch/digest.h"
#include "sketch/offset_sampling.h"
#include "traffic/content_catalog.h"

namespace dcs {
namespace {

// ---------------------------------------------------------------------------
// Section IV-A: using k offsets amplifies the probability that two routers'
// sketches match on a shared content to ~1 - e^{-k^2/536}.
// ---------------------------------------------------------------------------

class OffsetAmplificationTest : public ::testing::TestWithParam<std::size_t> {
};

TEST_P(OffsetAmplificationTest, MatchProbabilityFollowsKSquaredLaw) {
  const std::size_t k = GetParam();
  OffsetSamplingOptions opts;
  opts.num_arrays = k;
  opts.array_bits = 4096;  // Large arrays: chance overlaps stay tiny.
  const std::size_t g = 40;

  ContentCatalog catalog(77);
  const std::string content = catalog.ContentBytes(5, g * 536);
  PacketizerOptions packetizer;
  packetizer.mss = 536;
  const FlowLabel flow{1, 2, 3, 4, 6};

  Rng rng(1000 + k);
  const int trials = 300;
  int matches = 0;
  for (int t = 0; t < trials; ++t) {
    OffsetSamplingArrays router1(opts, &rng);
    OffsetSamplingArrays router2(opts, &rng);  // Independent offsets.
    const std::size_t l1 = rng.UniformInt(536);
    const std::size_t l2 = rng.UniformInt(536);
    for (const Packet& pkt : PacketizeObject(
             flow, std::string(l1, 'A'), content, packetizer)) {
      router1.Update(pkt);
    }
    for (const Packet& pkt : PacketizeObject(
             flow, std::string(l2, 'B'), content, packetizer)) {
      router2.Update(pkt);
    }
    // A matched array pair shares ~g fragment hashes; chance pairs share
    // ~g^2/4096 < 1. Threshold halfway.
    bool matched = false;
    for (const BitVector& a : router1.arrays()) {
      for (const BitVector& b : router2.arrays()) {
        if (a.CommonOnes(b) >= g / 2) {
          matched = true;
          break;
        }
      }
      if (matched) break;
    }
    matches += matched;
  }
  const double empirical = static_cast<double>(matches) / trials;
  const double k2 = static_cast<double>(k) * static_cast<double>(k);
  const double predicted = 1.0 - std::exp(-k2 / 536.0);
  // Binomial noise plus the slight offset-range restriction (offsets leave
  // room for a fragment): allow 4 sigma + 15% of the prediction.
  const double tolerance =
      4.0 * std::sqrt(predicted * (1 - predicted) / trials) +
      0.15 * predicted + 0.01;
  EXPECT_NEAR(empirical, predicted, tolerance) << "k = " << k;
}

INSTANTIATE_TEST_SUITE_P(KSweep, OffsetAmplificationTest,
                         ::testing::Values(3, 6, 10, 16));

// ---------------------------------------------------------------------------
// Bloom-filter arithmetic (Section III-A): after d distinct insertions an
// l-bit array holds ~l(1 - e^{-d/l}) ones.
// ---------------------------------------------------------------------------

struct FillCase {
  std::size_t bits;
  std::size_t insertions;
};

class BloomFillTest : public ::testing::TestWithParam<FillCase> {};

TEST_P(BloomFillTest, FillMatchesExpectation) {
  const auto [bits, insertions] = GetParam();
  BitmapSketchOptions opts;
  opts.num_bits = bits;
  BitmapSketch sketch(opts);
  Rng rng(bits + insertions);
  for (std::size_t i = 0; i < insertions; ++i) {
    Packet pkt;
    pkt.flow = FlowLabel{1, 2, 3, 4, 6};
    pkt.payload.resize(16);
    for (char& c : pkt.payload) {
      c = static_cast<char>(rng.UniformInt(256));
    }
    sketch.Update(pkt);
  }
  const double expected =
      1.0 - std::exp(-static_cast<double>(insertions) /
                     static_cast<double>(bits));
  EXPECT_NEAR(sketch.FillRatio(), expected,
              4.0 * std::sqrt(expected / static_cast<double>(bits)) + 0.01);
}

INSTANTIATE_TEST_SUITE_P(
    Sizes, BloomFillTest,
    ::testing::Values(FillCase{1 << 12, 1 << 11}, FillCase{1 << 12, 1 << 12},
                      FillCase{1 << 14, 11355},  // (ln 2) l: half full.
                      FillCase{1 << 16, 1 << 15}));

// ---------------------------------------------------------------------------
// Erdős–Rényi phase transition (Section IV-B): subcritical c < 1 gives
// O(log n) components; supercritical c > 1 gives a Theta(n) giant.
// ---------------------------------------------------------------------------

struct PhaseCase {
  std::size_t n;
  double c;  // p = c / n.
  bool giant_expected;
};

class PhaseTransitionTest : public ::testing::TestWithParam<PhaseCase> {};

TEST_P(PhaseTransitionTest, LargestComponentRegime) {
  const auto [n, c, giant_expected] = GetParam();
  Rng rng(static_cast<std::uint64_t>(n) * 31 +
          static_cast<std::uint64_t>(c * 100));
  const Graph g = SampleErGraph(n, c / static_cast<double>(n), &rng);
  const std::size_t largest = LargestComponentSize(g);
  if (giant_expected) {
    EXPECT_GT(largest, n / 5) << "n=" << n << " c=" << c;
  } else {
    EXPECT_LT(largest,
              static_cast<std::size_t>(
                  12.0 * std::log(static_cast<double>(n))))
        << "n=" << n << " c=" << c;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Regimes, PhaseTransitionTest,
    ::testing::Values(PhaseCase{30000, 0.5, false},
                      PhaseCase{30000, 0.67, false},  // The paper's margin.
                      PhaseCase{30000, 1.5, true},
                      PhaseCase{30000, 2.0, true},
                      PhaseCase{100000, 0.67, false},
                      PhaseCase{100000, 1.5, true}));

// ---------------------------------------------------------------------------
// Detector vs analytic detectability (Sections III-C / V-A.2): patterns
// comfortably above the analytic frontier are detected; patterns that are
// naturally occurring are not reported.
// ---------------------------------------------------------------------------

struct DetectCase {
  std::size_t a;
  std::size_t b;
  bool expect_detect;
};

class DetectorCalculatorTest : public ::testing::TestWithParam<DetectCase> {};

TEST_P(DetectorCalculatorTest, AgreesWithAnalyticFrontier) {
  const auto [a, b, expect_detect] = GetParam();
  SyntheticAlignedOptions matrix_opts;
  matrix_opts.m = 300;
  matrix_opts.n = 100000;
  matrix_opts.n_prime = 500;
  matrix_opts.pattern_rows = a;
  matrix_opts.pattern_cols = b;

  DetectabilityOptions calc;
  calc.n_prime = 500;
  const DetectabilityAnalysis analysis = AnalyzeDetectability(
      300, 100000, static_cast<std::int64_t>(a),
      static_cast<std::int64_t>(b), calc);

  AlignedDetectorOptions detector_opts;
  detector_opts.first_iteration_hopefuls = 500;
  detector_opts.hopefuls = 250;
  AlignedDetector detector(detector_opts);

  Rng rng(a * 1000 + b);
  int detected = 0;
  const int trials = 5;
  for (int t = 0; t < trials; ++t) {
    const SyntheticScreened instance =
        SampleScreenedAligned(matrix_opts, &rng);
    if (detector.Detect(instance.screened).pattern_found) ++detected;
  }
  if (expect_detect) {
    // Only parameter points with analytic detection probability ~1 are in
    // this bucket; allow one unlucky trial.
    EXPECT_GE(analysis.detection_prob, 0.9);
    EXPECT_GE(detected, trials - 1) << "a=" << a << " b=" << b;
  } else {
    EXPECT_EQ(detected, 0) << "a=" << a << " b=" << b;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Frontier, DetectorCalculatorTest,
    ::testing::Values(DetectCase{60, 30, true}, DetectCase{80, 20, true},
                      DetectCase{100, 15, true},
                      // Far below the frontier: tiny patterns.
                      DetectCase{6, 3, false}, DetectCase{4, 6, false}));

// ---------------------------------------------------------------------------
// Robustness: Decode never crashes and flags corruption, for arbitrary
// buffers and for random single-byte mutations of a valid digest.
// ---------------------------------------------------------------------------

TEST(DigestFuzzTest, RandomBuffersAreRejectedCleanly) {
  Rng rng(42);
  for (int t = 0; t < 2000; ++t) {
    std::vector<std::uint8_t> bytes(rng.UniformInt(200));
    for (auto& b : bytes) b = static_cast<std::uint8_t>(rng.UniformInt(256));
    Digest out;
    const Status status = Digest::Decode(bytes, &out);
    EXPECT_FALSE(status.ok());
  }
}

TEST(DigestFuzzTest, MutatedValidDigestsAreRejected) {
  Digest digest;
  digest.router_id = 1;
  digest.kind = DigestKind::kUnaligned;
  digest.num_groups = 2;
  digest.arrays_per_group = 2;
  for (std::size_t r = 0; r < 4; ++r) {
    BitVector row(256);
    row.Set(r * 10);
    digest.rows.push_back(row);
  }
  const std::vector<std::uint8_t> valid = digest.Encode();
  Rng rng(43);
  for (int t = 0; t < 500; ++t) {
    std::vector<std::uint8_t> mutated = valid;
    const std::size_t pos = rng.UniformInt(mutated.size());
    const auto flip = static_cast<std::uint8_t>(1 + rng.UniformInt(255));
    mutated[pos] ^= flip;
    Digest out;
    const Status status = Digest::Decode(mutated, &out);
    EXPECT_FALSE(status.ok()) << "mutation at byte " << pos;
  }
}

// ---------------------------------------------------------------------------
// Numeric cross-checks on random parameters.
// ---------------------------------------------------------------------------

TEST(StatsConsistencyTest, HypergeomSfComplementsCdfRandomSweep) {
  Rng rng(44);
  for (int t = 0; t < 200; ++t) {
    const std::int64_t big_n =
        16 + static_cast<std::int64_t>(rng.UniformInt(2048));
    const auto uniform = [&rng](std::int64_t bound) {
      return static_cast<std::int64_t>(
          rng.UniformInt(static_cast<std::uint64_t>(bound)));
    };
    const std::int64_t i = uniform(big_n + 1);
    const std::int64_t j = uniform(big_n + 1);
    const std::int64_t x = uniform(std::min(i, j) + 1);
    const double cdf = HypergeomCdf(x, big_n, i, j);
    const double sf = std::exp(LogHypergeomSf(x, big_n, i, j));
    EXPECT_NEAR(cdf + sf, 1.0, 1e-9)
        << "N=" << big_n << " i=" << i << " j=" << j << " x=" << x;
  }
}

TEST(StatsConsistencyTest, BinomSfComplementsCdfRandomSweep) {
  Rng rng(45);
  for (int t = 0; t < 200; ++t) {
    const std::int64_t n =
        1 + static_cast<std::int64_t>(rng.UniformInt(5000));
    const double p = rng.UniformDouble();
    const std::int64_t x = static_cast<std::int64_t>(
        rng.UniformInt(static_cast<std::uint64_t>(n + 1)));
    const double cdf = BinomCdf(x, n, p);
    const double sf = std::exp(LogBinomSf(x, n, p));
    EXPECT_NEAR(cdf + sf, 1.0, 1e-9) << "n=" << n << " p=" << p;
  }
}

TEST(StatsConsistencyTest, BinomQuantileMonotoneInQ) {
  for (std::int64_t n : {10, 1000}) {
    std::int64_t prev = -1;
    for (double q : {0.01, 0.1, 0.5, 0.9, 0.99}) {
      const std::int64_t x = BinomQuantile(q, n, 0.37);
      EXPECT_GE(x, prev);
      prev = x;
    }
  }
}

}  // namespace
}  // namespace dcs
