#include "graph/core_decomposition.h"

#include <algorithm>

#include <gtest/gtest.h>

#include "graph/er_random.h"

namespace dcs {
namespace {

Graph CliquePlusTail(std::size_t clique, std::size_t tail) {
  // Vertices [0, clique) form a clique; [clique, clique+tail) a path
  // hanging off vertex 0.
  Graph g(clique + tail);
  for (std::uint32_t i = 0; i < clique; ++i) {
    for (std::uint32_t j = i + 1; j < clique; ++j) g.AddEdge(i, j);
  }
  std::uint32_t prev = 0;
  for (std::uint32_t t = 0; t < tail; ++t) {
    const auto v = static_cast<std::uint32_t>(clique + t);
    g.AddEdge(prev, v);
    prev = v;
  }
  g.Finalize();
  return g;
}

TEST(FindCoreTest, MinDegreePeelingKeepsTheClique) {
  const Graph g = CliquePlusTail(8, 30);
  const PeelResult result = FindCore(g, 8);
  ASSERT_EQ(result.core.size(), 8u);
  for (std::uint32_t i = 0; i < 8; ++i) {
    EXPECT_EQ(result.core[i], i);
  }
  EXPECT_EQ(result.removal_order.size(), 30u);
}

TEST(FindCoreTest, BetaLargerThanGraphReturnsEverything) {
  const Graph g = CliquePlusTail(4, 2);
  const PeelResult result = FindCore(g, 100);
  EXPECT_EQ(result.core.size(), 6u);
  EXPECT_TRUE(result.removal_order.empty());
}

TEST(FindCoreTest, BetaZeroRemovesEverything) {
  const Graph g = CliquePlusTail(3, 3);
  const PeelResult result = FindCore(g, 0);
  EXPECT_TRUE(result.core.empty());
  EXPECT_EQ(result.removal_order.size(), 6u);
}

TEST(FindCoreTest, RemovalOrderPlusCoreIsAPartition) {
  const Graph g = CliquePlusTail(6, 10);
  const PeelResult result = FindCore(g, 5);
  std::vector<Graph::VertexId> all = result.core;
  all.insert(all.end(), result.removal_order.begin(),
             result.removal_order.end());
  std::sort(all.begin(), all.end());
  for (std::size_t v = 0; v < g.num_vertices(); ++v) {
    EXPECT_EQ(all[v], v);
  }
}

TEST(FindCoreTest, TailPeeledBeforeCliqueEverStarts) {
  const Graph g = CliquePlusTail(5, 20);
  const PeelResult result = FindCore(g, 5);
  // All removed vertices are tail vertices (ids >= 5).
  for (Graph::VertexId v : result.removal_order) {
    EXPECT_GE(v, 5u);
  }
}

TEST(PeelStrategyTest, MaxDegreeDestroysTheClique) {
  const Graph g = CliquePlusTail(8, 30);
  const PeelResult result =
      PeelToSize(g, 8, PeelStrategy::kMaxDegree, nullptr);
  // Max-degree peeling eats the clique first; the survivors are mostly
  // tail vertices.
  std::size_t clique_survivors = 0;
  for (Graph::VertexId v : result.core) {
    if (v < 8) ++clique_survivors;
  }
  EXPECT_LT(clique_survivors, 4u);
}

TEST(PeelStrategyTest, RandomPeelingIsBetweenTheTwo) {
  Rng rng(42);
  const Graph g = CliquePlusTail(10, 90);
  int survivors_total = 0;
  for (int trial = 0; trial < 50; ++trial) {
    const PeelResult result =
        PeelToSize(g, 10, PeelStrategy::kRandom, &rng);
    for (Graph::VertexId v : result.core) {
      if (v < 10) ++survivors_total;
    }
  }
  // Random keeps ~10% of clique vertices per slot on average: far fewer
  // than min-degree (all 10) but typically more than max-degree (~0).
  EXPECT_GT(survivors_total, 10);
  EXPECT_LT(survivors_total, 400);
}

TEST(PeelStrategyTest, MinDegreeBeatsBaselinesOnPlantedPattern) {
  // The stochastic-optimality claim, checked empirically: min-degree
  // peeling retains more pattern vertices than random or max-degree.
  Rng rng(7);
  std::size_t kept_min = 0;
  std::size_t kept_rand = 0;
  std::size_t kept_max = 0;
  for (int trial = 0; trial < 10; ++trial) {
    const PlantedGraph planted = SamplePlantedGraph(
        2000, 1.0 / 2000.0, 60, 0.25, &rng);
    std::vector<char> in_pattern(2000, 0);
    for (Graph::VertexId v : planted.pattern_vertices) in_pattern[v] = 1;
    auto count_kept = [&](PeelStrategy strategy) {
      const PeelResult r = PeelToSize(planted.graph, 40, strategy, &rng);
      std::size_t kept = 0;
      for (Graph::VertexId v : r.core) {
        kept += static_cast<std::size_t>(in_pattern[v]);
      }
      return kept;
    };
    kept_min += count_kept(PeelStrategy::kMinDegree);
    kept_rand += count_kept(PeelStrategy::kRandom);
    kept_max += count_kept(PeelStrategy::kMaxDegree);
  }
  EXPECT_GT(kept_min, kept_rand);
  EXPECT_GE(kept_rand, kept_max);
  // And min-degree actually finds most of the pattern.
  EXPECT_GT(kept_min, 10u * 30);
}

TEST(PeelStrategyTest, DeterministicForDegreeStrategies) {
  const Graph g = CliquePlusTail(6, 12);
  const PeelResult a = PeelToSize(g, 6, PeelStrategy::kMinDegree, nullptr);
  const PeelResult b = PeelToSize(g, 6, PeelStrategy::kMinDegree, nullptr);
  EXPECT_EQ(a.core, b.core);
  EXPECT_EQ(a.removal_order, b.removal_order);
}

}  // namespace
}  // namespace dcs
