#include "graph/connected_components.h"

#include <algorithm>

#include <gtest/gtest.h>

namespace dcs {
namespace {

TEST(ConnectedComponentsTest, AllSingletons) {
  Graph g(4);
  const ComponentStats stats = ConnectedComponents(g);
  EXPECT_EQ(stats.component_sizes.size(), 4u);
  EXPECT_EQ(stats.largest, 1u);
}

TEST(ConnectedComponentsTest, TwoComponents) {
  Graph g(6);
  g.AddEdge(0, 1);
  g.AddEdge(1, 2);
  g.AddEdge(3, 4);
  const ComponentStats stats = ConnectedComponents(g);
  EXPECT_EQ(stats.component_sizes.size(), 3u);  // {0,1,2}, {3,4}, {5}.
  EXPECT_EQ(stats.largest, 3u);
  EXPECT_EQ(stats.component_of[0], stats.component_of[2]);
  EXPECT_NE(stats.component_of[0], stats.component_of[3]);
}

TEST(ConnectedComponentsTest, LargestComponentSizeShortcut) {
  Graph g(5);
  g.AddEdge(0, 1);
  g.AddEdge(2, 3);
  g.AddEdge(3, 4);
  EXPECT_EQ(LargestComponentSize(g), 3u);
}

TEST(ConnectedComponentsTest, LargestComponentVertices) {
  Graph g(7);
  g.AddEdge(1, 2);
  g.AddEdge(2, 5);
  g.AddEdge(0, 6);
  const auto vertices = LargestComponentVertices(g);
  EXPECT_EQ(vertices, (std::vector<Graph::VertexId>{1, 2, 5}));
}

TEST(ConnectedComponentsTest, EmptyGraphIsSafe) {
  Graph g(0);
  const ComponentStats stats = ConnectedComponents(g);
  EXPECT_EQ(stats.largest, 0u);
  EXPECT_TRUE(LargestComponentVertices(g).empty());
}

TEST(ConnectedComponentsTest, SizesSumToVertexCount) {
  Graph g(20);
  g.AddEdge(0, 5);
  g.AddEdge(5, 9);
  g.AddEdge(10, 11);
  const ComponentStats stats = ConnectedComponents(g);
  std::size_t total = 0;
  for (std::size_t s : stats.component_sizes) total += s;
  EXPECT_EQ(total, 20u);
}

}  // namespace
}  // namespace dcs
