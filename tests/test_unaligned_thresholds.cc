#include "analysis/unaligned_thresholds.h"

#include <gtest/gtest.h>

#include "analysis/lambda_table.h"
#include "analysis/unaligned_model.h"

namespace dcs {
namespace {

UnalignedNnoOptions BaseOptions(double p2) {
  UnalignedNnoOptions opts;
  opts.num_vertices = 102400;
  opts.p2 = p2;
  return opts;
}

TEST(UnalignedNnoTest, FindsAFrontier) {
  const UnalignedNnoResult result =
      MinNonNaturallyOccurringClusterSize(BaseOptions(0.1));
  ASSERT_GT(result.min_cluster_size, 2);
  EXPECT_LT(result.min_cluster_size, 400);
  EXPECT_GT(result.best_p1, 0.0);
  EXPECT_GT(result.best_d, 0);
  EXPECT_LE(result.achieved_false_positive, 1e-10);
  EXPECT_GE(result.achieved_true_positive, 0.95);
}

TEST(UnalignedNnoTest, FrontierIsMinimal) {
  const UnalignedNnoOptions opts = BaseOptions(0.1);
  const UnalignedNnoResult result =
      MinNonNaturallyOccurringClusterSize(opts);
  UnalignedNnoResult scratch;
  EXPECT_TRUE(
      ClusterSizeIsSignificant(result.min_cluster_size, opts, &scratch));
  EXPECT_FALSE(
      ClusterSizeIsSignificant(result.min_cluster_size - 1, opts, &scratch));
}

TEST(UnalignedNnoTest, LargerP2NeedsFewerVertices) {
  // Table II's trend: more packets (larger p2) => smaller minimum cluster.
  const std::int64_t m_weak =
      MinNonNaturallyOccurringClusterSize(BaseOptions(0.03)).min_cluster_size;
  const std::int64_t m_strong =
      MinNonNaturallyOccurringClusterSize(BaseOptions(0.15)).min_cluster_size;
  ASSERT_GT(m_weak, 0);
  ASSERT_GT(m_strong, 0);
  EXPECT_GT(m_weak, m_strong);
}

TEST(UnalignedNnoTest, TinyClustersAreNeverSignificant) {
  UnalignedNnoResult scratch;
  EXPECT_FALSE(ClusterSizeIsSignificant(2, BaseOptions(0.1), &scratch));
  EXPECT_FALSE(ClusterSizeIsSignificant(1, BaseOptions(0.1), &scratch));
}

TEST(UnalignedNnoTest, InfeasibleP2ReturnsMinusOne) {
  UnalignedNnoOptions opts = BaseOptions(1e-7);  // Weaker than any p1 gap.
  opts.max_m = 64;
  const UnalignedNnoResult result =
      MinNonNaturallyOccurringClusterSize(opts);
  EXPECT_EQ(result.min_cluster_size, -1);
}

TEST(UnalignedNnoTest, EndToEndWithSignalModelReproducesTable2Shape) {
  // Derive p2(g) from the physical model (co-tuned with p1, since the
  // lambda table drives both) and check the Table II shape: m(g) falls
  // steeply in g, with magnitudes in the paper's range (297 at g=80 down to
  // 23 at g=150).
  const UnalignedSignalModel model(UnalignedModelOptions{});
  std::int64_t prev = 1 << 20;
  for (std::size_t g : {100u, 120u, 150u}) {
    const UnalignedNnoResult result =
        MinClusterSizeForContent(model, g, 10, BaseOptions(0.0));
    ASSERT_GT(result.min_cluster_size, 0) << "g=" << g;
    EXPECT_LT(result.min_cluster_size, prev) << "g=" << g;
    prev = result.min_cluster_size;
    EXPECT_LT(result.min_cluster_size, 500) << "g=" << g;
    EXPECT_GE(result.min_cluster_size, 5) << "g=" << g;
  }
}

TEST(UnalignedNnoTest, ModelCoupledSearchBeatsOrMatchesFixedP1) {
  // Co-tuning over p1 can only improve on any single fixed p1.
  const UnalignedSignalModel model(UnalignedModelOptions{});
  const double p1 = 0.8e-4;
  const double p_star = LambdaTable::PStarFromEdgeProb(p1, 10);
  UnalignedNnoOptions fixed = BaseOptions(
      model.PatternEdgeProb(120, p_star, p1));
  fixed.p1_grid = {p1};
  const UnalignedNnoResult fixed_result =
      MinNonNaturallyOccurringClusterSize(fixed);
  const UnalignedNnoResult tuned =
      MinClusterSizeForContent(model, 120, 10, BaseOptions(0.0));
  ASSERT_GT(tuned.min_cluster_size, 0);
  if (fixed_result.min_cluster_size > 0) {
    EXPECT_LE(tuned.min_cluster_size, fixed_result.min_cluster_size);
  }
}

}  // namespace
}  // namespace dcs
