// The digest payload codecs (src/sketch/digest_codec.h,
// docs/DISTRIBUTED.md).
//
// The raw codec is the trivially-correct oracle: every property of the
// sparse codec is checked differentially against it — identical decoded
// digest, never a larger wire image than it needs, strict rejection of rows
// a codec is not allowed to emit.

#include <cstdint>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "sketch/digest.h"
#include "sketch/digest_codec.h"

namespace dcs {
namespace {

// One-row aligned digest with `ones` set bits scattered by `rng` (or evenly
// when rng == nullptr).
Digest MakeDigest(std::size_t row_bits, std::size_t ones, Rng* rng = nullptr) {
  Digest digest;
  digest.kind = DigestKind::kAligned;
  digest.router_id = 3;
  digest.epoch_id = 9;
  BitVector row(row_bits);
  if (rng != nullptr) {
    std::size_t set = 0;
    while (set < ones) {
      const std::size_t i = rng->UniformInt(row_bits);
      if (!row.Test(i)) {
        row.Set(i);
        ++set;
      }
    }
  } else {
    for (std::size_t k = 0; k < ones; ++k) {
      row.Set(k * row_bits / (ones == 0 ? 1 : ones));
    }
  }
  digest.rows.push_back(std::move(row));
  digest.packets_covered = 100;
  digest.raw_bytes_covered = 53600;
  return digest;
}

TEST(DigestCodecTest, CodecNamesAndKnownIds) {
  EXPECT_STREQ(DigestCodecName(DigestCodecId::kRaw), "raw");
  EXPECT_STREQ(DigestCodecName(DigestCodecId::kSparse), "sparse");
  EXPECT_TRUE(KnownDigestCodecId(0));
  EXPECT_TRUE(KnownDigestCodecId(1));
  for (int raw = 2; raw < 256; ++raw) {
    EXPECT_FALSE(KnownDigestCodecId(static_cast<std::uint8_t>(raw)));
  }
}

// Both codecs round-trip to the identical digest across the whole fill
// range, including all-zero, single-bit, near-full, and ragged-tail rows.
TEST(DigestCodecTest, RoundTripAcrossFillFractions) {
  Rng rng(7);
  const std::size_t sizes[] = {1, 63, 64, 65, 512, 1000, 4096};
  const double fills[] = {0.0, 0.001, 0.01, 0.05, 0.25, 0.5, 0.9, 1.0};
  for (const std::size_t row_bits : sizes) {
    for (const double fill : fills) {
      const std::size_t ones =
          static_cast<std::size_t>(fill * static_cast<double>(row_bits));
      const Digest original = MakeDigest(row_bits, ones, &rng);
      for (const DigestCodecId codec :
           {DigestCodecId::kRaw, DigestCodecId::kSparse}) {
        const std::vector<std::uint8_t> bytes =
            EncodeDigestPayload(original, codec);
        Digest decoded;
        const Status status = DecodeDigestPayload(bytes, codec, &decoded);
        ASSERT_TRUE(status.ok()) << "bits=" << row_bits << " fill=" << fill
                                 << " codec=" << DigestCodecName(codec) << ": "
                                 << status.ToString();
        EXPECT_TRUE(decoded == original)
            << "bits=" << row_bits << " fill=" << fill
            << " codec=" << DigestCodecName(codec);
      }
    }
  }
}

// Raw and sparse payloads of the same digest are decode-equivalent: the
// sparse image may differ on the wire but never in meaning.
TEST(DigestCodecTest, RawVsSparseDecodeEquivalenceOracle) {
  Rng rng(21);
  for (std::size_t trial = 0; trial < 200; ++trial) {
    const std::size_t row_bits = 1 + rng.UniformInt(3000);
    const std::size_t ones = rng.UniformInt(row_bits + 1);
    const Digest original = MakeDigest(row_bits, ones, &rng);
    Digest from_raw;
    Digest from_sparse;
    ASSERT_TRUE(DecodeDigestPayload(EncodeDigestPayload(original,
                                                        DigestCodecId::kRaw),
                                    DigestCodecId::kRaw, &from_raw)
                    .ok());
    ASSERT_TRUE(
        DecodeDigestPayload(EncodeDigestPayload(original,
                                                DigestCodecId::kSparse),
                            DigestCodecId::kSparse, &from_sparse)
            .ok());
    EXPECT_TRUE(from_raw == from_sparse) << "trial " << trial;
    EXPECT_TRUE(from_raw == original) << "trial " << trial;
  }
}

// The sparse codec never loses to raw by more than the per-row tag (which
// both codecs pay), and its size grows monotonically in fill until it hands
// over to the dense fallback — after which it is pinned at the raw size.
TEST(DigestCodecTest, SparseNeverBeatenByRawAndMonotoneUntilDense) {
  const std::size_t row_bits = 4096;
  const std::size_t raw_size =
      EncodeDigestPayload(MakeDigest(row_bits, 0), DigestCodecId::kRaw).size();
  EXPECT_EQ(raw_size, RawPayloadSizeBytes(MakeDigest(row_bits, 0)));
  std::size_t prev = 0;
  bool dense_reached = false;
  for (std::size_t ones = 0; ones <= row_bits; ones += 64) {
    const Digest digest = MakeDigest(row_bits, ones);
    const std::size_t sparse_size =
        EncodeDigestPayload(digest, DigestCodecId::kSparse).size();
    EXPECT_LE(sparse_size, raw_size) << "ones=" << ones;
    EXPECT_EQ(RawPayloadSizeBytes(digest), raw_size);
    if (dense_reached) {
      EXPECT_EQ(sparse_size, raw_size) << "ones=" << ones;
    } else if (sparse_size == raw_size && ones > row_bits / 2) {
      dense_reached = true;
    } else if (ones > 0) {
      // Evenly-spread fills: more set bits never shrink the sparse image.
      EXPECT_GE(sparse_size, prev) << "ones=" << ones;
    }
    prev = sparse_size;
  }
  EXPECT_TRUE(dense_reached) << "full rows must fall back to dense";
}

// The acceptance target from EXPERIMENTS.md: at most 1% fill the sparse
// codec is at least a 4x reduction over the dense wire size.
TEST(DigestCodecTest, SparseAtLeastFourXAtOnePercentFill) {
  Rng rng(4);
  for (const std::size_t row_bits : {8192u, 65536u, 1u << 20}) {
    const std::size_t ones = row_bits / 100;
    const Digest digest = MakeDigest(row_bits, ones, &rng);
    const std::size_t raw_size = RawPayloadSizeBytes(digest);
    const std::size_t sparse_size =
        EncodeDigestPayload(digest, DigestCodecId::kSparse).size();
    EXPECT_GE(raw_size, 4 * sparse_size) << "bits=" << row_bits;
  }
}

// Strictness: a payload that declares kRaw but carries a compressed row is
// malformed, even though the bytes are a perfectly valid kSparse payload.
TEST(DigestCodecTest, RawCodecRejectsCompressedRows) {
  Rng rng(11);
  const Digest sparse_digest = MakeDigest(4096, 10, &rng);
  const std::vector<std::uint8_t> sparse_bytes =
      EncodeDigestPayload(sparse_digest, DigestCodecId::kSparse);
  Digest out;
  ASSERT_TRUE(
      DecodeDigestPayload(sparse_bytes, DigestCodecId::kSparse, &out).ok());
  const Status status =
      DecodeDigestPayload(sparse_bytes, DigestCodecId::kRaw, &out);
  EXPECT_EQ(status.code(), Status::Code::kCorruption);
}

// A raw payload is all-dense, so it happens to be a valid sparse payload
// too — the degenerate overlap the negotiation relies on (auto mode can
// pick raw and the receiver may still be told sparse... it is not: the
// codec travels in the frame. This checks the *decoder* contract only).
TEST(DigestCodecTest, RawPayloadDecodesUnderSparseCodec) {
  Rng rng(13);
  const Digest digest = MakeDigest(4096, 2000, &rng);
  const std::vector<std::uint8_t> raw_bytes =
      EncodeDigestPayload(digest, DigestCodecId::kRaw);
  Digest out;
  ASSERT_TRUE(
      DecodeDigestPayload(raw_bytes, DigestCodecId::kSparse, &out).ok());
  EXPECT_TRUE(out == digest);
}

// Auto negotiation: near-empty digests ship sparse, dense digests ship raw,
// and the payload always matches the returned codec.
TEST(DigestCodecTest, AutoNegotiationPicksThePayingCodec) {
  Rng rng(17);
  std::vector<std::uint8_t> payload;
  const Digest sparse_case = MakeDigest(8192, 40, &rng);
  EXPECT_EQ(EncodeDigestPayloadAuto(sparse_case, &payload),
            DigestCodecId::kSparse);
  Digest out;
  ASSERT_TRUE(
      DecodeDigestPayload(payload, DigestCodecId::kSparse, &out).ok());
  EXPECT_TRUE(out == sparse_case);

  const Digest dense_case = MakeDigest(8192, 4000, &rng);
  EXPECT_EQ(EncodeDigestPayloadAuto(dense_case, &payload), DigestCodecId::kRaw);
  ASSERT_TRUE(DecodeDigestPayload(payload, DigestCodecId::kRaw, &out).ok());
  EXPECT_TRUE(out == dense_case);
  EXPECT_EQ(payload.size(), RawPayloadSizeBytes(dense_case));
}

// Digest::Encode is the kSparse payload, byte for byte — the digest plane
// and the on-disk format cannot drift apart.
TEST(DigestCodecTest, DigestEncodeIsTheSparsePayload) {
  Rng rng(19);
  for (const std::size_t ones : {0u, 5u, 300u, 4096u}) {
    const Digest digest = MakeDigest(4096, ones, &rng);
    EXPECT_EQ(digest.Encode(),
              EncodeDigestPayload(digest, DigestCodecId::kSparse));
  }
}

// --- Row-level strictness -------------------------------------------------

// Encodes `row` with kSparse, returning (tag, bytes-after-tag position).
std::vector<std::uint8_t> EncodeOneRow(const BitVector& row,
                                       DigestCodecId codec) {
  std::vector<std::uint8_t> out;
  EncodeRow(row, codec, &out);
  return out;
}

TEST(DigestCodecTest, DenseRowTailGarbageRejected) {
  BitVector row(70);  // 64 < bits < 128: the last word has 58 dead bits.
  row.Set(0);
  row.Set(69);
  std::vector<std::uint8_t> bytes = EncodeOneRow(row, DigestCodecId::kRaw);
  ASSERT_EQ(bytes.size(), 1 + 2 * 8);
  ASSERT_EQ(bytes[0], RowWire::kDense);
  std::size_t pos = 0;
  BitVector decoded(70);
  ASSERT_TRUE(DecodeRow(bytes, &pos, DigestCodecId::kRaw, &decoded).ok());
  EXPECT_TRUE(decoded == row);

  // Set a bit past size() in the trailing word.
  bytes.back() |= 0x80;
  pos = 0;
  const Status status = DecodeRow(bytes, &pos, DigestCodecId::kRaw, &decoded);
  EXPECT_EQ(status.code(), Status::Code::kCorruption);
}

TEST(DigestCodecTest, SparseRowOutOfRangeIndexRejected) {
  BitVector row(100);
  row.Set(99);
  std::vector<std::uint8_t> bytes = EncodeOneRow(row, DigestCodecId::kSparse);
  ASSERT_EQ(bytes[0], RowWire::kSparse);
  std::size_t pos = 0;
  BitVector decoded(100);
  ASSERT_TRUE(DecodeRow(bytes, &pos, DigestCodecId::kSparse, &decoded).ok());
  EXPECT_TRUE(decoded == row);

  // Decode the same bytes into a *smaller* row: index 99 is out of range.
  pos = 0;
  BitVector small(50);
  const Status status =
      DecodeRow(bytes, &pos, DigestCodecId::kSparse, &small);
  EXPECT_EQ(status.code(), Status::Code::kCorruption);
}

TEST(DigestCodecTest, RleRowMalformedTokensRejected) {
  // A long zero run with a literal island — the shape RLE wins on.
  BitVector row(4096);
  for (std::size_t i = 2048; i < 2048 + 64; ++i) row.Set(i);
  std::vector<std::uint8_t> bytes = EncodeOneRow(row, DigestCodecId::kSparse);
  ASSERT_EQ(bytes[0], RowWire::kRle);
  std::size_t pos = 0;
  BitVector decoded(4096);
  ASSERT_TRUE(DecodeRow(bytes, &pos, DigestCodecId::kSparse, &decoded).ok());
  EXPECT_TRUE(decoded == row);

  // Hand-built malformed variants.
  const auto expect_reject = [](const std::vector<std::uint8_t>& in) {
    std::size_t p = 0;
    BitVector out(128);  // 2 words.
    EXPECT_EQ(DecodeRow(in, &p, DigestCodecId::kSparse, &out).code(),
              Status::Code::kCorruption);
  };
  // Empty token: zeros == 0 && literals == 0 never covers ground.
  expect_reject({RowWire::kRle, 0, 0});
  // Run overflowing the row: 3 zero words in a 2-word row.
  expect_reject({RowWire::kRle, 3, 0});
  // Token stream ending short of the row: 1 zero word covers 1 of 2.
  expect_reject({RowWire::kRle, 1, 0});
  // Literal count claiming more words than the encoding carries.
  expect_reject({RowWire::kRle, 1, 1});
}

TEST(DigestCodecTest, UnknownRowTagRejected) {
  std::size_t pos = 0;
  BitVector out(64);
  const std::vector<std::uint8_t> bytes = {3, 0, 0, 0, 0, 0, 0, 0, 0};
  EXPECT_EQ(DecodeRow(bytes, &pos, DigestCodecId::kSparse, &out).code(),
            Status::Code::kCorruption);
}

// Multi-row unaligned digests mix row encodings freely under kSparse: each
// row independently picks its cheapest form.
TEST(DigestCodecTest, MixedRowEncodingsInOnePayload) {
  Rng rng(23);
  Digest digest;
  digest.kind = DigestKind::kUnaligned;
  digest.router_id = 8;
  digest.epoch_id = 2;
  digest.num_groups = 3;
  digest.arrays_per_group = 1;
  BitVector empty(1024);                       // RLE or sparse.
  BitVector dense(1024);                       // Dense fallback.
  for (std::size_t i = 0; i < 1024; ++i) dense.Set(i);
  BitVector sparse(1024);                      // A few scattered bits.
  for (std::size_t k = 0; k < 6; ++k) sparse.Set(rng.UniformInt(1024));
  digest.rows = {empty, dense, sparse};
  digest.packets_covered = 1;
  digest.raw_bytes_covered = 1;

  const std::vector<std::uint8_t> bytes =
      EncodeDigestPayload(digest, DigestCodecId::kSparse);
  Digest decoded;
  ASSERT_TRUE(
      DecodeDigestPayload(bytes, DigestCodecId::kSparse, &decoded).ok());
  EXPECT_TRUE(decoded == digest);
  EXPECT_LT(bytes.size(), RawPayloadSizeBytes(digest));
}

}  // namespace
}  // namespace dcs
