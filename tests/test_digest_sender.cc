// DigestSender lifecycle tests (src/netio/digest_sender.h): move semantics
// leave the moved-from shell stats-clean, an I/O failure mid-stream breaks
// the sender until Reconnect() starts a clean frame stream, and frame
// coalescing defers socket writes (and stats credit) to the flush.
//
// The peer here is a bare AF_UNIX listener, not an IngestServer: these are
// tests of the sender's failure model, so the test needs to close sockets
// mid-stream and inspect the raw bytes a receiver would see.

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cstdint>
#include <cstring>
#include <filesystem>
#include <string>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "netio/digest_sender.h"
#include "netio/frame.h"
#include "sketch/digest.h"

namespace dcs {
namespace {

// A bare Unix-domain stream listener the tests drive by hand.
class UdsListener {
 public:
  UdsListener() {
    static int counter = 0;
    path_ = (std::filesystem::temp_directory_path() /
             ("dcs_sender_test_" + std::to_string(::getpid()) + "_" +
              std::to_string(counter++) + ".sock"))
                .string();
    fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    std::memcpy(addr.sun_path, path_.c_str(), path_.size() + 1);
    (void)::bind(fd_, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr));
    (void)::listen(fd_, 8);
  }

  ~UdsListener() {
    CloseListener();
    ::unlink(path_.c_str());
  }

  const std::string& path() const { return path_; }

  // Blocks until the next pending connection; the caller owns the fd.
  int Accept() { return ::accept(fd_, nullptr, nullptr); }

  void CloseListener() {
    if (fd_ >= 0) {
      ::close(fd_);
      fd_ = -1;
    }
  }

 private:
  std::string path_;
  int fd_ = -1;
};

// Reads `fd` to EOF.
std::vector<std::uint8_t> ReadAll(int fd) {
  std::vector<std::uint8_t> bytes;
  std::uint8_t chunk[4096];
  for (;;) {
    const ssize_t n = ::recv(fd, chunk, sizeof(chunk), 0);
    if (n <= 0) break;
    bytes.insert(bytes.end(), chunk, chunk + n);
  }
  return bytes;
}

// Parses a received byte stream and returns (frames, rejects).
std::pair<std::size_t, std::size_t> ParseStream(
    const std::vector<std::uint8_t>& bytes) {
  FrameParser parser;
  std::vector<FrameEvent> events;
  parser.Consume(bytes.data(), bytes.size(), &events);
  parser.Finish(&events);
  std::size_t frames = 0;
  std::size_t rejects = 0;
  for (const FrameEvent& event : events) {
    if (event.kind == FrameEvent::Kind::kFrame) {
      ++frames;
    } else {
      ++rejects;
    }
  }
  return {frames, rejects};
}

// A minimal valid aligned digest (one 64-bit row).
Digest TinyDigest(std::uint64_t epoch, std::uint32_t router) {
  Digest digest;
  digest.router_id = router;
  digest.epoch_id = epoch;
  digest.kind = DigestKind::kAligned;
  digest.packets_covered = 10;
  digest.raw_bytes_covered = 5360;
  BitVector row(64);
  for (std::size_t i = router % 7; i < 64; i += 7) row.Set(i);
  digest.rows.push_back(std::move(row));
  return digest;
}

// The wire size of TinyDigest under the raw codec (for coalesce thresholds).
std::size_t TinyFrameBytes() {
  const Digest digest = TinyDigest(0, 0);
  const std::vector<std::uint8_t> payload =
      EncodeDigestPayload(digest, DigestCodecId::kRaw);
  return EncodeFrame(DigestCodecId::kRaw, digest.router_id, digest.epoch_id,
                     payload)
      .size();
}

TEST(DigestSenderMoveTest, MoveResetsSourceStatsAndConnection) {
  UdsListener listener;
  DigestSender sender;
  ASSERT_TRUE(DigestSender::ConnectUds(listener.path(), &sender).ok());
  const int peer = listener.Accept();
  ASSERT_GE(peer, 0);

  ASSERT_TRUE(sender.Send(TinyDigest(0, 1), CodecMode::kRaw).ok());
  ASSERT_TRUE(sender.Send(TinyDigest(0, 2), CodecMode::kRaw).ok());
  ASSERT_EQ(sender.stats().frames_sent, 2u);
  const std::uint64_t bytes_before = sender.stats().bytes_sent;
  ASSERT_GT(bytes_before, 0u);

  // Move construction: the stats travel with the connection; the moved-from
  // shell must read as a fresh sender (reusing it after a move used to
  // double-count every frame it ever shipped).
  DigestSender moved(std::move(sender));
  EXPECT_EQ(moved.stats().frames_sent, 2u);
  EXPECT_EQ(moved.stats().bytes_sent, bytes_before);
  EXPECT_TRUE(moved.connected());
  EXPECT_EQ(sender.stats().frames_sent, 0u);
  EXPECT_EQ(sender.stats().bytes_sent, 0u);
  EXPECT_FALSE(sender.connected());
  EXPECT_FALSE(sender.broken());

  // Move assignment resets the source the same way.
  DigestSender assigned;
  assigned = std::move(moved);
  EXPECT_EQ(assigned.stats().frames_sent, 2u);
  EXPECT_EQ(moved.stats().frames_sent, 0u);
  EXPECT_FALSE(moved.connected());

  // The surviving sender still works; the stream stays parseable.
  ASSERT_TRUE(assigned.Send(TinyDigest(1, 1), CodecMode::kRaw).ok());
  EXPECT_EQ(assigned.stats().frames_sent, 3u);
  assigned.Close();
  const auto [frames, rejects] = ParseStream(ReadAll(peer));
  EXPECT_EQ(frames, 3u);
  EXPECT_EQ(rejects, 0u);
  ::close(peer);
}

TEST(DigestSenderFailureTest, IoErrorBreaksSenderUntilReconnect) {
  UdsListener listener;
  SenderOptions options;
  options.coalesce_bytes = 1 << 20;  // Buffer everything until Flush().
  options.reconnect_attempts = 4;
  options.reconnect_backoff_ms = 1;
  DigestSender sender;
  ASSERT_TRUE(DigestSender::ConnectUds(listener.path(), &sender, options).ok());
  const int peer = listener.Accept();
  ASSERT_GE(peer, 0);

  // Two frames buffered, nothing on the wire yet.
  ASSERT_TRUE(sender.Send(TinyDigest(0, 1), CodecMode::kRaw).ok());
  ASSERT_TRUE(sender.Send(TinyDigest(0, 2), CodecMode::kRaw).ok());
  ASSERT_EQ(sender.stats().frames_sent, 0u);

  // Peer hangs up; the flush hits EPIPE and must break the sender.
  ::close(peer);
  const Status flush = sender.Flush();
  ASSERT_FALSE(flush.ok());
  EXPECT_EQ(flush.code(), Status::Code::kIoError);
  EXPECT_TRUE(sender.broken());
  EXPECT_FALSE(sender.connected());
  EXPECT_EQ(sender.stats().send_failures, 1u);
  EXPECT_EQ(sender.stats().frames_dropped, 2u);
  EXPECT_EQ(sender.stats().frames_sent, 0u);

  // Broken is sticky: every send path fails fast without touching a socket.
  EXPECT_EQ(sender.Send(TinyDigest(1, 1), CodecMode::kRaw).code(),
            Status::Code::kFailedPrecondition);
  EXPECT_EQ(sender.SendRaw({0x00}).code(), Status::Code::kFailedPrecondition);
  EXPECT_EQ(sender.Flush().code(), Status::Code::kFailedPrecondition);

  // The listener still exists, so Reconnect() succeeds and the new stream
  // is clean — it starts at a frame boundary with no replayed tail.
  ASSERT_TRUE(sender.Reconnect().ok());
  EXPECT_FALSE(sender.broken());
  EXPECT_TRUE(sender.connected());
  EXPECT_EQ(sender.stats().reconnects, 1u);
  const int peer2 = listener.Accept();
  ASSERT_GE(peer2, 0);
  for (std::uint64_t e = 0; e < 3; ++e) {
    ASSERT_TRUE(sender.Send(TinyDigest(e, 7), CodecMode::kAuto).ok());
  }
  ASSERT_TRUE(sender.Flush().ok());
  EXPECT_EQ(sender.stats().frames_sent, 3u);
  sender.Close();
  const auto [frames, rejects] = ParseStream(ReadAll(peer2));
  EXPECT_EQ(frames, 3u);
  EXPECT_EQ(rejects, 0u);
  ::close(peer2);
}

TEST(DigestSenderFailureTest, ReconnectExhaustsAttemptsWhenListenerGone) {
  SenderOptions options;
  options.reconnect_attempts = 2;
  options.reconnect_backoff_ms = 1;
  DigestSender sender;
  std::string path;
  {
    UdsListener listener;
    path = listener.path();
    ASSERT_TRUE(DigestSender::ConnectUds(path, &sender, options).ok());
    const int peer = listener.Accept();
    ASSERT_GE(peer, 0);
    ::close(peer);
    // Listener destructor closes the socket and unlinks the path.
  }
  // Peer closed: an immediate-mode send surfaces the I/O error.
  Status send = Status::Ok();
  for (int i = 0; i < 8 && send.ok(); ++i) {
    send = sender.Send(TinyDigest(0, 1), CodecMode::kRaw);
  }
  ASSERT_FALSE(send.ok());
  ASSERT_TRUE(sender.broken());

  // Nothing listens there any more: every attempt fails, the sender stays
  // broken, and no reconnect is counted.
  const Status reconnect = sender.Reconnect();
  ASSERT_FALSE(reconnect.ok());
  EXPECT_EQ(reconnect.code(), Status::Code::kIoError);
  EXPECT_TRUE(sender.broken());
  EXPECT_EQ(sender.stats().reconnects, 0u);
}

TEST(DigestSenderFailureTest, ReconnectWithoutEndpointFailsPrecondition) {
  DigestSender sender;
  EXPECT_EQ(sender.Reconnect().code(), Status::Code::kFailedPrecondition);
}

TEST(DigestSenderCoalesceTest, BuffersUntilThresholdThenFlushes) {
  UdsListener listener;
  const std::size_t frame_bytes = TinyFrameBytes();
  SenderOptions options;
  options.coalesce_bytes = 2 * frame_bytes;  // Third send crosses it.
  DigestSender sender;
  ASSERT_TRUE(DigestSender::ConnectUds(listener.path(), &sender, options).ok());
  const int peer = listener.Accept();
  ASSERT_GE(peer, 0);

  ASSERT_TRUE(sender.Send(TinyDigest(0, 1), CodecMode::kRaw).ok());
  EXPECT_EQ(sender.stats().frames_sent, 0u);
  EXPECT_EQ(sender.stats().bytes_sent, 0u);
  EXPECT_EQ(sender.stats().flushes, 0u);
  ASSERT_TRUE(sender.Send(TinyDigest(0, 2), CodecMode::kRaw).ok());
  // Two frames reached exactly coalesce_bytes: one flush, both credited.
  EXPECT_EQ(sender.stats().frames_sent, 2u);
  EXPECT_EQ(sender.stats().bytes_sent, 2 * frame_bytes);
  EXPECT_EQ(sender.stats().flushes, 1u);
  EXPECT_EQ(sender.stats().raw_frames, 2u);

  // A third frame buffers; explicit Flush() pushes it.
  ASSERT_TRUE(sender.Send(TinyDigest(0, 3), CodecMode::kRaw).ok());
  EXPECT_EQ(sender.stats().frames_sent, 2u);
  ASSERT_TRUE(sender.Flush().ok());
  EXPECT_EQ(sender.stats().frames_sent, 3u);
  EXPECT_EQ(sender.stats().flushes, 2u);

  // SendRaw preserves stream order by flushing coalesced frames first.
  ASSERT_TRUE(sender.Send(TinyDigest(0, 4), CodecMode::kRaw).ok());
  const Digest fifth = TinyDigest(0, 5);
  const std::vector<std::uint8_t> raw_frame =
      EncodeFrame(DigestCodecId::kRaw, fifth.router_id, fifth.epoch_id,
                  EncodeDigestPayload(fifth, DigestCodecId::kRaw));
  ASSERT_TRUE(sender.SendRaw(raw_frame).ok());
  EXPECT_EQ(sender.stats().frames_sent, 4u);  // SendRaw bytes aren't frames.
  sender.Close();  // Close flushes any tail (none here).

  const auto [frames, rejects] = ParseStream(ReadAll(peer));
  EXPECT_EQ(frames, 5u);
  EXPECT_EQ(rejects, 0u);
  ::close(peer);
}

TEST(DigestSenderCoalesceTest, CloseFlushesBufferedFrames) {
  UdsListener listener;
  SenderOptions options;
  options.coalesce_bytes = 1 << 20;
  DigestSender sender;
  ASSERT_TRUE(DigestSender::ConnectUds(listener.path(), &sender, options).ok());
  const int peer = listener.Accept();
  ASSERT_GE(peer, 0);
  ASSERT_TRUE(sender.Send(TinyDigest(0, 1), CodecMode::kSparse).ok());
  ASSERT_TRUE(sender.Send(TinyDigest(0, 2), CodecMode::kSparse).ok());
  EXPECT_EQ(sender.stats().frames_sent, 0u);
  sender.Close();
  EXPECT_EQ(sender.stats().frames_sent, 2u);
  EXPECT_EQ(sender.stats().sparse_frames, 2u);
  const auto [frames, rejects] = ParseStream(ReadAll(peer));
  EXPECT_EQ(frames, 2u);
  EXPECT_EQ(rejects, 0u);
  ::close(peer);
}

TEST(DigestSenderCoalesceTest, ClosedSenderCanReconnect) {
  UdsListener listener;
  DigestSender sender;
  ASSERT_TRUE(DigestSender::ConnectUds(listener.path(), &sender).ok());
  const int peer = listener.Accept();
  ASSERT_GE(peer, 0);
  sender.Close();
  EXPECT_FALSE(sender.connected());
  EXPECT_EQ(sender.Send(TinyDigest(0, 1), CodecMode::kRaw).code(),
            Status::Code::kFailedPrecondition);

  // Close() remembers the endpoint, so a deliberate reconnect works.
  ASSERT_TRUE(sender.Reconnect().ok());
  const int peer2 = listener.Accept();
  ASSERT_GE(peer2, 0);
  ASSERT_TRUE(sender.Send(TinyDigest(0, 1), CodecMode::kRaw).ok());
  sender.Close();
  const auto [frames, rejects] = ParseStream(ReadAll(peer2));
  EXPECT_EQ(frames, 1u);
  EXPECT_EQ(rejects, 0u);
  ::close(peer);
  ::close(peer2);
}

}  // namespace
}  // namespace dcs
