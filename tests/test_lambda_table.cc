#include "analysis/lambda_table.h"

#include <cmath>

#include <gtest/gtest.h>

#include "common/stats_math.h"
#include "common/thread_pool.h"

namespace dcs {
namespace {

TEST(LambdaTableTest, MatchesDirectComputation) {
  LambdaTable table(1024, 1e-5);
  for (std::uint32_t i : {100u, 450u, 512u}) {
    for (std::uint32_t j : {80u, 500u}) {
      EXPECT_EQ(table.Threshold(i, j),
                HypergeomUpperThreshold(1e-5, 1024, i, j))
          << i << "," << j;
    }
  }
}

TEST(LambdaTableTest, SymmetricInArguments) {
  LambdaTable table(1024, 1e-4);
  EXPECT_EQ(table.Threshold(300, 400), table.Threshold(400, 300));
}

TEST(LambdaTableTest, MonotoneInRowFill) {
  LambdaTable table(1024, 1e-5);
  EXPECT_LE(table.Threshold(200, 300), table.Threshold(400, 300));
  EXPECT_LE(table.Threshold(400, 300), table.Threshold(400, 600));
}

TEST(LambdaTableTest, FalseAlarmLevelIsRespected) {
  const double p_star = 1e-4;
  LambdaTable table(1024, p_star);
  const std::int64_t lambda = table.Threshold(470, 490);
  EXPECT_LE(std::exp(LogHypergeomSf(lambda, 1024, 470, 490)), p_star);
  EXPECT_GT(std::exp(LogHypergeomSf(lambda - 1, 1024, 470, 490)), p_star);
}

TEST(LambdaTableTest, CacheIsStableAcrossRepeatedCalls) {
  LambdaTable table(512, 1e-4);
  const std::int64_t first = table.Threshold(250, 260);
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(table.Threshold(250, 260), first);
  }
}

TEST(LambdaTableTest, ConcurrentLookupsAgree) {
  LambdaTable table(1024, 1e-5);
  ThreadPool pool(4);
  std::vector<std::int64_t> results(64);
  pool.ParallelFor(64, [&](std::size_t i) {
    results[i] = table.Threshold(static_cast<std::uint32_t>(400 + i % 8),
                                 static_cast<std::uint32_t>(450 + i % 5));
  });
  for (std::size_t i = 0; i < 64; ++i) {
    EXPECT_EQ(results[i],
              table.Threshold(static_cast<std::uint32_t>(400 + i % 8),
                              static_cast<std::uint32_t>(450 + i % 5)));
  }
}

TEST(LambdaTableTest, EdgeProbPStarRoundTrip) {
  for (double p1 : {1e-5, 1e-4, 1e-2}) {
    const double p_star = LambdaTable::PStarFromEdgeProb(p1, 10);
    EXPECT_NEAR(LambdaTable::EdgeProbFromPStar(p_star, 10), p1,
                p1 * 1e-9);
  }
}

TEST(LambdaTableTest, EdgeProbIsAboutPairsTimesPStar) {
  // For tiny p_star, p1 ~ arrays^2 * p_star.
  const double p1 = LambdaTable::EdgeProbFromPStar(1e-8, 10);
  EXPECT_NEAR(p1, 100 * 1e-8, 1e-10);
}

}  // namespace
}  // namespace dcs
