#include "dcs/epoch_tracker.h"

#include <gtest/gtest.h>

namespace dcs {
namespace {

EpochTrackerOptions DefaultOptions() {
  EpochTrackerOptions opts;
  opts.window_epochs = 5;
  opts.min_detections = 2;
  opts.min_router_fraction = 0.5;
  return opts;
}

TEST(EpochTrackerTest, NoAlarmOnSingleDetection) {
  EpochTracker tracker(DefaultOptions());
  tracker.RecordEpoch(false, {});
  tracker.RecordEpoch(true, {1, 2});
  EXPECT_FALSE(tracker.PersistentDetection());
  EXPECT_EQ(tracker.detections_in_window(), 1u);
}

TEST(EpochTrackerTest, AlarmsOnSecondDetectionInWindow) {
  EpochTracker tracker(DefaultOptions());
  tracker.RecordEpoch(true, {1, 2});
  tracker.RecordEpoch(false, {});
  tracker.RecordEpoch(true, {2, 3});
  EXPECT_TRUE(tracker.PersistentDetection());
}

TEST(EpochTrackerTest, OldDetectionsAgeOut) {
  EpochTracker tracker(DefaultOptions());
  tracker.RecordEpoch(true, {1});
  for (int i = 0; i < 5; ++i) tracker.RecordEpoch(false, {});
  tracker.RecordEpoch(true, {1});
  // The first detection slid out of the 5-epoch window.
  EXPECT_FALSE(tracker.PersistentDetection());
  EXPECT_EQ(tracker.epochs_seen(), 7u);
}

TEST(EpochTrackerTest, StableRoutersRequireFraction) {
  EpochTracker tracker(DefaultOptions());
  tracker.RecordEpoch(true, {1, 2, 9});
  tracker.RecordEpoch(true, {1, 2});
  tracker.RecordEpoch(true, {1, 7});
  // Router 1: 3/3; router 2: 2/3; routers 7, 9: 1/3 < 0.5 -> dropped.
  EXPECT_EQ(tracker.StableRouters(), (std::vector<std::uint32_t>{1, 2}));
}

TEST(EpochTrackerTest, StableRoutersEmptyWithoutDetections) {
  EpochTracker tracker(DefaultOptions());
  tracker.RecordEpoch(false, {});
  EXPECT_TRUE(tracker.StableRouters().empty());
}

TEST(EpochTrackerTest, DuplicateRoutersInOneEpochCountOnce) {
  EpochTracker tracker(DefaultOptions());
  tracker.RecordEpoch(true, {4, 4, 4});
  tracker.RecordEpoch(true, {4});
  EXPECT_EQ(tracker.StableRouters(), (std::vector<std::uint32_t>{4}));
}

TEST(EpochTrackerTest, MissedEpochInBetweenStillCatches) {
  // The paper's point: per-epoch false negatives are tolerable because the
  // pattern spans epochs.
  EpochTrackerOptions opts = DefaultOptions();
  opts.window_epochs = 4;
  opts.min_router_fraction = 0.6;  // 1-of-2 appearances is not enough.
  EpochTracker tracker(opts);
  tracker.RecordEpoch(true, {5, 6});
  tracker.RecordEpoch(false, {});  // Missed epoch (FN).
  tracker.RecordEpoch(true, {5, 6, 7});
  EXPECT_TRUE(tracker.PersistentDetection());
  const auto stable = tracker.StableRouters();
  EXPECT_EQ(stable, (std::vector<std::uint32_t>{5, 6}));
}

TEST(EpochTrackerTest, GapOccupiesAWindowSlot) {
  // A shed epoch must age the window like a real one: without RecordGap,
  // k-of-w alarm logic is silently optimistic under load shedding — old
  // detections would linger past window_epochs wall epochs.
  EpochTracker tracker(DefaultOptions());
  tracker.RecordEpoch(true, {1});
  for (int i = 0; i < 5; ++i) tracker.RecordGap();
  tracker.RecordEpoch(true, {1});
  // The first detection slid out through the gaps.
  EXPECT_FALSE(tracker.PersistentDetection());
  EXPECT_EQ(tracker.detections_in_window(), 1u);
  EXPECT_EQ(tracker.epochs_seen(), 7u);
  EXPECT_EQ(tracker.gaps_seen(), 5u);
  // Window of 5 holds the last 4 gaps plus the new detection.
  EXPECT_EQ(tracker.gaps_in_window(), 4u);
}

TEST(EpochTrackerTest, GapIsNotADetection) {
  EpochTracker tracker(DefaultOptions());
  tracker.RecordEpoch(true, {3});
  tracker.RecordGap();
  tracker.RecordEpoch(true, {3});
  // Gaps neither add nor block detections; two real ones still alarm.
  EXPECT_TRUE(tracker.PersistentDetection());
  EXPECT_EQ(tracker.detections_in_window(), 2u);
  EXPECT_EQ(tracker.gaps_in_window(), 1u);
  EXPECT_EQ(tracker.StableRouters(), (std::vector<std::uint32_t>{3}));
}

TEST(EpochTrackerTest, GapsAgeOutOfTheWindow) {
  EpochTracker tracker(DefaultOptions());
  tracker.RecordGap();
  tracker.RecordGap();
  for (int i = 0; i < 5; ++i) tracker.RecordEpoch(false, {});
  EXPECT_EQ(tracker.gaps_in_window(), 0u);
  EXPECT_EQ(tracker.gaps_seen(), 2u);
  EXPECT_EQ(tracker.epochs_seen(), 7u);
}

TEST(EpochTrackerTest, WindowOfOneDegeneratesToPerEpoch) {
  EpochTrackerOptions opts;
  opts.window_epochs = 1;
  opts.min_detections = 1;
  EpochTracker tracker(opts);
  tracker.RecordEpoch(true, {1});
  EXPECT_TRUE(tracker.PersistentDetection());
  tracker.RecordEpoch(false, {});
  EXPECT_FALSE(tracker.PersistentDetection());
}

}  // namespace
}  // namespace dcs
