#include "common/status.h"

#include <gtest/gtest.h>

namespace dcs {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), Status::Code::kOk);
  EXPECT_EQ(s.ToString(), "OK");
  EXPECT_TRUE(s.message().empty());
}

TEST(StatusTest, FactoryOk) { EXPECT_TRUE(Status::Ok().ok()); }

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::InvalidArgument("bad width");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), Status::Code::kInvalidArgument);
  EXPECT_EQ(s.message(), "bad width");
  EXPECT_EQ(s.ToString(), "InvalidArgument: bad width");
}

TEST(StatusTest, EachFactoryMapsToItsCode) {
  EXPECT_EQ(Status::NotFound("x").code(), Status::Code::kNotFound);
  EXPECT_EQ(Status::Corruption("x").code(), Status::Code::kCorruption);
  EXPECT_EQ(Status::IoError("x").code(), Status::Code::kIoError);
  EXPECT_EQ(Status::FailedPrecondition("x").code(),
            Status::Code::kFailedPrecondition);
  EXPECT_EQ(Status::OutOfRange("x").code(), Status::Code::kOutOfRange);
  EXPECT_EQ(Status::Internal("x").code(), Status::Code::kInternal);
}

TEST(StatusTest, CopyPreservesState) {
  Status s = Status::Corruption("checksum");
  Status t = s;
  EXPECT_EQ(t.code(), Status::Code::kCorruption);
  EXPECT_EQ(t.message(), "checksum");
}

Status FailsThenPropagates() {
  DCS_RETURN_IF_ERROR(Status::IoError("disk gone"));
  return Status::Ok();
}

Status SucceedsThrough() {
  DCS_RETURN_IF_ERROR(Status::Ok());
  return Status::Internal("reached");
}

TEST(StatusTest, ReturnIfErrorPropagatesFailure) {
  EXPECT_EQ(FailsThenPropagates().code(), Status::Code::kIoError);
}

TEST(StatusTest, ReturnIfErrorPassesOkThrough) {
  EXPECT_EQ(SucceedsThrough().code(), Status::Code::kInternal);
}

}  // namespace
}  // namespace dcs
