#include "dcs/signature_filter.h"

#include <gtest/gtest.h>

#include "common/rng.h"
#include "dcs/dcs.h"
#include "net/packetizer.h"
#include "traffic/content_catalog.h"
#include "traffic/trace_synthesizer.h"

namespace dcs {
namespace {

BitmapSketchOptions SketchOptions() {
  BitmapSketchOptions opts;
  opts.num_bits = 1 << 13;
  return opts;
}

Packet MakePacket(std::string payload) {
  Packet pkt;
  pkt.flow = FlowLabel{1, 2, 3, 4, 6};
  pkt.payload = std::move(payload);
  return pkt;
}

TEST(SignatureFilterTest, MatchesPacketsWhoseHashIsInSignature) {
  const BitmapSketchOptions opts = SketchOptions();
  // Derive the signature from the sketch itself: insert a packet, find its
  // bit, build a filter on it.
  BitmapSketch sketch(opts);
  Packet pkt = MakePacket("the worm body segment");
  sketch.Update(pkt);
  std::vector<std::size_t> columns;
  sketch.bits().AppendSetBits(&columns);
  ASSERT_EQ(columns.size(), 1u);

  SignatureFilter filter(columns, opts);
  EXPECT_TRUE(filter.Matches(pkt));
  EXPECT_FALSE(filter.Matches(MakePacket("innocent other payload")));
  EXPECT_FALSE(filter.Matches(MakePacket("")));  // No payload: not sketched.
}

TEST(SignatureFilterTest, FalseMatchRateTracksSignatureSize) {
  const BitmapSketchOptions opts = SketchOptions();
  std::vector<std::size_t> columns;
  for (std::size_t c = 0; c < 64; ++c) columns.push_back(c * 128);
  SignatureFilter filter(columns, opts);
  EXPECT_DOUBLE_EQ(filter.FalseMatchProbability(), 64.0 / 8192.0);

  Rng rng(3);
  int matches = 0;
  const int trials = 20000;
  for (int t = 0; t < trials; ++t) {
    std::string payload(32, '\0');
    for (char& c : payload) c = static_cast<char>(rng.UniformInt(256));
    matches += filter.Matches(MakePacket(payload)) ? 1 : 0;
  }
  const double empirical = static_cast<double>(matches) / trials;
  EXPECT_NEAR(empirical, 64.0 / 8192.0, 0.004);
}

TEST(SignatureFilterTest, EndToEndDetectionToFiltering) {
  // Full loop: plant content, detect, build a filter from the report, and
  // verify the filter flags exactly the content's packets at a router.
  ScenarioOptions scenario;
  scenario.num_routers = 24;
  scenario.background_packets_per_router = 4000;
  PlantedContent plant;
  plant.content_id = 7;
  plant.content_bytes = 536 * 15;
  for (std::uint32_t r = 0; r < 18; ++r) plant.router_ids.push_back(r);
  plant.aligned = true;
  scenario.planted = {plant};
  ContentCatalog catalog(21);
  const auto traces = SynthesizeScenario(scenario, catalog);

  AlignedPipelineOptions options;
  options.sketch = SketchOptions();
  options.n_prime = 128;
  options.detector.first_iteration_hopefuls = 128;
  options.detector.hopefuls = 64;
  DcsMonitor monitor(options, UnalignedPipelineOptions{});
  for (std::uint32_t r = 0; r < scenario.num_routers; ++r) {
    AlignedCollector collector(r, options.sketch);
    const auto epochs = traces[r].SplitIntoEpochs(traces[r].size());
    ASSERT_TRUE(monitor.AddDigest(collector.ProcessEpoch(epochs[0])).ok());
  }
  const AlignedReport report = monitor.AnalyzeAligned();
  ASSERT_TRUE(report.common_content_detected);

  SignatureFilter filter(report.signature_columns, options.sketch);
  // The content's own packets must match.
  PacketizerOptions packetizer;
  const auto content_packets = PacketizeObject(
      FlowLabel{9, 9, 9, 9, 6}, "", catalog.ContentBytes(7, 536 * 15),
      packetizer);
  std::size_t content_matches = 0;
  for (const Packet& pkt : content_packets) {
    content_matches += filter.Matches(pkt) ? 1u : 0u;
  }
  EXPECT_GE(content_matches, content_packets.size() - 1);

  // Background traffic rarely matches (signature ~15-25 of 8192 bits).
  std::size_t background_matches = 0;
  std::size_t background_total = 0;
  for (const Packet& pkt : traces[20]) {  // A router without the content.
    if (pkt.payload.empty()) continue;
    ++background_total;
    background_matches += filter.Matches(pkt) ? 1u : 0u;
  }
  EXPECT_LT(static_cast<double>(background_matches) /
                static_cast<double>(background_total),
            4.0 * filter.FalseMatchProbability() + 0.01);
}

TEST(MonitorEncodedDigestTest, AddEncodedRoundTrip) {
  AlignedPipelineOptions aligned;
  DcsMonitor monitor(aligned, UnalignedPipelineOptions{});
  Digest digest;
  digest.router_id = 3;
  digest.kind = DigestKind::kAligned;
  digest.rows.push_back(BitVector(512));
  ASSERT_TRUE(monitor.AddEncodedDigest(digest.Encode()).ok());
  EXPECT_EQ(monitor.num_aligned_digests(), 1u);
  // Corrupt bytes are rejected with Corruption, not added.
  std::vector<std::uint8_t> bad = digest.Encode();
  bad[10] ^= 0xFF;
  EXPECT_EQ(monitor.AddEncodedDigest(bad).code(), Status::Code::kCorruption);
  EXPECT_EQ(monitor.num_aligned_digests(), 1u);
}

TEST(MonitorMultiPatternTest, AnalyzeAlignedAllFindsTwoContents) {
  ScenarioOptions scenario;
  scenario.num_routers = 26;
  scenario.background_packets_per_router = 4000;
  PlantedContent first;
  first.content_id = 1;
  first.content_bytes = 536 * 15;
  for (std::uint32_t r = 0; r < 18; ++r) first.router_ids.push_back(r);
  first.aligned = true;
  PlantedContent second = first;
  second.content_id = 2;
  second.router_ids.clear();
  for (std::uint32_t r = 8; r < 26; ++r) second.router_ids.push_back(r);
  scenario.planted = {first, second};
  ContentCatalog catalog(33);
  const auto traces = SynthesizeScenario(scenario, catalog);

  AlignedPipelineOptions options;
  options.sketch = SketchOptions();
  options.n_prime = 160;
  options.detector.first_iteration_hopefuls = 160;
  options.detector.hopefuls = 80;
  DcsMonitor monitor(options, UnalignedPipelineOptions{});
  for (std::uint32_t r = 0; r < scenario.num_routers; ++r) {
    AlignedCollector collector(r, options.sketch);
    const auto epochs = traces[r].SplitIntoEpochs(traces[r].size());
    ASSERT_TRUE(monitor.AddDigest(collector.ProcessEpoch(epochs[0])).ok());
  }
  const auto reports = monitor.AnalyzeAlignedAll(4);
  ASSERT_GE(reports.size(), 2u);
  for (const AlignedReport& report : reports) {
    EXPECT_TRUE(report.common_content_detected);
    EXPECT_GE(report.routers.size(), 14u);
  }
}

}  // namespace
}  // namespace dcs
