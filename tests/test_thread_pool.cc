#include "common/thread_pool.h"

#include <atomic>
#include <chrono>
#include <functional>
#include <numeric>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

namespace dcs {
namespace {

TEST(ThreadPoolTest, RunsScheduledTasks) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  for (int i = 0; i < 100; ++i) {
    pool.Schedule([&counter] { counter.fetch_add(1); });
  }
  pool.Wait();
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPoolTest, WaitOnIdlePoolReturnsImmediately) {
  ThreadPool pool(2);
  pool.Wait();  // Must not deadlock.
  SUCCEED();
}

TEST(ThreadPoolTest, ParallelForCoversEveryIndexOnce) {
  ThreadPool pool(3);
  std::vector<std::atomic<int>> hits(1000);
  pool.ParallelFor(1000, [&hits](std::size_t i) { hits[i].fetch_add(1); });
  for (std::size_t i = 0; i < hits.size(); ++i) {
    EXPECT_EQ(hits[i].load(), 1) << "index " << i;
  }
}

TEST(ThreadPoolTest, ParallelForZeroCountIsNoop) {
  ThreadPool pool(2);
  pool.ParallelFor(0, [](std::size_t) { FAIL(); });
}

TEST(ThreadPoolTest, ParallelForCountSmallerThanThreads) {
  ThreadPool pool(8);
  std::atomic<int> sum{0};
  pool.ParallelFor(3, [&sum](std::size_t i) {
    sum.fetch_add(static_cast<int>(i));
  });
  EXPECT_EQ(sum.load(), 0 + 1 + 2);
}

TEST(ThreadPoolTest, TasksCanScheduleMoreWorkBeforeWait) {
  ThreadPool pool(2);
  std::atomic<int> counter{0};
  pool.Schedule([&] {
    counter.fetch_add(1);
  });
  pool.Wait();
  pool.Schedule([&] { counter.fetch_add(10); });
  pool.Wait();
  EXPECT_EQ(counter.load(), 11);
}

TEST(ThreadPoolTest, DestructorJoinsCleanly) {
  std::atomic<int> counter{0};
  {
    ThreadPool pool(4);
    for (int i = 0; i < 50; ++i) {
      pool.Schedule([&counter] { counter.fetch_add(1); });
    }
    pool.Wait();
  }
  EXPECT_EQ(counter.load(), 50);
}

TEST(ThreadPoolTest, SingleThreadPoolStillWorks) {
  ThreadPool pool(1);
  std::vector<int> order;
  for (int i = 0; i < 5; ++i) {
    pool.Schedule([&order, i] { order.push_back(i); });
  }
  pool.Wait();
  // One worker executes in FIFO order.
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(MakeShardsTest, CoversRangeExactlyOnce) {
  for (const std::size_t count : {1u, 2u, 7u, 64u, 1000u}) {
    for (const std::size_t max_shards : {1u, 3u, 8u, 2000u}) {
      const auto shards = MakeShards(count, max_shards);
      ASSERT_FALSE(shards.empty());
      EXPECT_LE(shards.size(), std::min(count, max_shards));
      std::size_t next = 0;
      for (std::size_t s = 0; s < shards.size(); ++s) {
        EXPECT_EQ(shards[s].index, s);
        EXPECT_EQ(shards[s].begin, next);
        EXPECT_LT(shards[s].begin, shards[s].end) << "empty shard";
        next = shards[s].end;
      }
      EXPECT_EQ(next, count);
    }
  }
}

TEST(MakeShardsTest, ZeroCountAndZeroShards) {
  EXPECT_TRUE(MakeShards(0, 4).empty());
  // max_shards clamps to 1 rather than silently dropping the range.
  const auto shards = MakeShards(5, 0);
  ASSERT_EQ(shards.size(), 1u);
  EXPECT_EQ(shards[0].begin, 0u);
  EXPECT_EQ(shards[0].end, 5u);
}

TEST(MakeShardsTest, NearEqualSizes) {
  const auto shards = MakeShards(10, 3);
  ASSERT_EQ(shards.size(), 3u);
  // 10 = 4 + 3 + 3.
  EXPECT_EQ(shards[0].end - shards[0].begin, 4u);
  EXPECT_EQ(shards[1].end - shards[1].begin, 3u);
  EXPECT_EQ(shards[2].end - shards[2].begin, 3u);
}

TEST(ThreadPoolTest, RunShardsExecutesEveryShardOnce) {
  ThreadPool pool(4);
  const auto shards = pool.ShardsFor(100);
  std::vector<std::atomic<int>> hits(100);
  pool.RunShards(shards, [&hits](const ShardRange& shard) {
    for (std::size_t i = shard.begin; i < shard.end; ++i) {
      hits[i].fetch_add(1);
    }
  });
  for (std::size_t i = 0; i < hits.size(); ++i) {
    EXPECT_EQ(hits[i].load(), 1) << "index " << i;
  }
}

TEST(ThreadPoolTest, RunTasksExecutesEveryTaskOnce) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(37);
  std::vector<std::function<void()>> tasks;
  for (std::size_t i = 0; i < hits.size(); ++i) {
    tasks.push_back([&hits, i] { hits[i].fetch_add(1); });
  }
  pool.RunTasks(tasks);
  for (std::size_t i = 0; i < hits.size(); ++i) {
    EXPECT_EQ(hits[i].load(), 1) << "task " << i;
  }
}

TEST(ThreadPoolTest, RunTasksEmptyAndSingle) {
  ThreadPool pool(2);
  pool.RunTasks({});  // Must not deadlock.
  std::atomic<int> counter{0};
  pool.RunTasks({[&counter] { counter.fetch_add(1); }});
  EXPECT_EQ(counter.load(), 1);
}

TEST(ThreadPoolTest, NestedRunTasksRunsInlineInBatchOrder) {
  // RunTasks from a worker thread must not deadlock waiting on itself; it
  // degrades to inline execution, preserving batch order. (A two-task
  // batch, because a single task runs inline on the caller and would not
  // reach a worker thread at all.)
  ThreadPool pool(2);
  std::vector<int> order;
  std::atomic<int> other{0};
  pool.RunTasks({[&pool, &order] {
                   EXPECT_TRUE(pool.OnWorkerThread());
                   std::vector<std::function<void()>> inner;
                   for (int i = 0; i < 5; ++i) {
                     inner.push_back([&order, i] { order.push_back(i); });
                   }
                   pool.RunTasks(inner);
                 },
                 [&other] { other.fetch_add(1); }});
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
  EXPECT_EQ(other.load(), 1);
}

TEST(ThreadPoolTest, NestedParallelForRunsInline) {
  // A ParallelFor issued from inside a pool task must not deadlock waiting
  // on itself; it degrades to inline execution on the worker.
  ThreadPool pool(3);
  std::atomic<int> inner_total{0};
  std::atomic<int> inline_calls{0};
  pool.ParallelFor(6, [&](std::size_t) {
    EXPECT_TRUE(pool.OnWorkerThread());
    inline_calls.fetch_add(1);
    pool.ParallelFor(50, [&inner_total](std::size_t) {
      inner_total.fetch_add(1);
    });
  });
  EXPECT_EQ(inline_calls.load(), 6);
  EXPECT_EQ(inner_total.load(), 6 * 50);
  EXPECT_FALSE(pool.OnWorkerThread());
}

TEST(ThreadPoolTest, BackToBackParallelFor) {
  ThreadPool pool(4);
  for (int round = 0; round < 20; ++round) {
    std::atomic<std::size_t> sum{0};
    pool.ParallelFor(101, [&sum](std::size_t i) { sum.fetch_add(i); });
    EXPECT_EQ(sum.load(), 101u * 100u / 2u) << "round " << round;
  }
}

TEST(ThreadPoolTest, ConcurrentRunShardsCallersAreIndependent) {
  // Two external threads drive the same pool at once; each caller's
  // RunShards must return only after its own shards completed.
  ThreadPool pool(4);
  std::atomic<int> a_done{0};
  std::atomic<int> b_done{0};
  std::thread ta([&] {
    pool.RunShards(pool.ShardsFor(64),
                   [&a_done](const ShardRange& shard) {
                     a_done.fetch_add(static_cast<int>(shard.end - shard.begin));
                   });
    EXPECT_EQ(a_done.load(), 64);
  });
  std::thread tb([&] {
    pool.RunShards(pool.ShardsFor(32),
                   [&b_done](const ShardRange& shard) {
                     b_done.fetch_add(static_cast<int>(shard.end - shard.begin));
                   });
    EXPECT_EQ(b_done.load(), 32);
  });
  ta.join();
  tb.join();
  EXPECT_EQ(a_done.load(), 64);
  EXPECT_EQ(b_done.load(), 32);
}

TEST(ThreadPoolTest, WaitUnderContention) {
  // Several threads Wait() while work keeps arriving; everyone returns once
  // the queue drains.
  ThreadPool pool(2);
  std::atomic<int> counter{0};
  for (int i = 0; i < 200; ++i) {
    pool.Schedule([&counter] { counter.fetch_add(1); });
  }
  std::vector<std::thread> waiters;
  for (int w = 0; w < 4; ++w) {
    waiters.emplace_back([&pool] { pool.Wait(); });
  }
  for (std::thread& t : waiters) t.join();
  pool.Wait();
  EXPECT_EQ(counter.load(), 200);
}

// ---------------------------------------------------------------------------
// Teardown edges. These are the races TSan is pointed at explicitly in CI
// (ctest -R "test_sync|test_thread_pool" in the sanitizer job): destruction
// overlapping queued work, nested shard runs during shutdown, and waiter
// release ordering against the final drain.
// ---------------------------------------------------------------------------

TEST(ThreadPoolTeardownTest, DestructorDrainsTasksStillQueued) {
  // The destructor's contract is drain-then-join, not abandon: tasks that
  // were accepted must run even when nobody calls Wait(). One worker with a
  // slow head task guarantees a deep queue at destruction time.
  std::atomic<int> counter{0};
  {
    ThreadPool pool(1);
    pool.Schedule(
        [] { std::this_thread::sleep_for(std::chrono::milliseconds(20)); });
    for (int i = 0; i < 100; ++i) {
      pool.Schedule([&counter] { counter.fetch_add(1); });
    }
  }
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPoolTeardownTest, NestedRunShardsDuringShutdownRunsInline) {
  // A worker task that fans out with RunShards/ParallelFor while the
  // destructor has already flagged shutdown must complete inline — the
  // nested call may not Schedule (new work is refused during teardown) and
  // may not deadlock waiting for workers that are busy winding down.
  std::atomic<int> inner{0};
  {
    ThreadPool pool(2);
    pool.Schedule([&] {
      std::this_thread::sleep_for(std::chrono::milliseconds(20));
      pool.ParallelFor(64, [&inner](std::size_t) { inner.fetch_add(1); });
    });
    // Leave scope immediately: the destructor runs while the task sleeps,
    // so the nested ParallelFor starts with shutting_down_ already set.
  }
  EXPECT_EQ(inner.load(), 64);
}

TEST(ThreadPoolTeardownTest, WaitersAreReleasedBeforeTeardown) {
  // Waiters blocked in Wait() while the final tasks drain must all be
  // released by the last worker's broadcast, immediately ahead of the
  // destructor's own shutdown handshake on the same mutex.
  std::atomic<int> counter{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 32; ++i) {
      pool.Schedule([&counter] {
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
        counter.fetch_add(1);
      });
    }
    std::vector<std::thread> waiters;
    for (int w = 0; w < 4; ++w) {
      waiters.emplace_back([&] {
        pool.Wait();
        EXPECT_EQ(counter.load(), 32);  // Wait() returned after the drain.
      });
    }
    for (std::thread& t : waiters) t.join();
  }
  EXPECT_EQ(counter.load(), 32);
}

TEST(ThreadPoolTest, ParallelForManyMoreShardsThanThreads) {
  ThreadPool pool(2);
  std::vector<std::atomic<int>> hits(10000);
  pool.ParallelFor(10000, [&hits](std::size_t i) { hits[i].fetch_add(1); });
  for (std::size_t i = 0; i < hits.size(); ++i) {
    ASSERT_EQ(hits[i].load(), 1) << "index " << i;
  }
}

}  // namespace
}  // namespace dcs
