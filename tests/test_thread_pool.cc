#include "common/thread_pool.h"

#include <atomic>
#include <numeric>
#include <vector>

#include <gtest/gtest.h>

namespace dcs {
namespace {

TEST(ThreadPoolTest, RunsScheduledTasks) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  for (int i = 0; i < 100; ++i) {
    pool.Schedule([&counter] { counter.fetch_add(1); });
  }
  pool.Wait();
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPoolTest, WaitOnIdlePoolReturnsImmediately) {
  ThreadPool pool(2);
  pool.Wait();  // Must not deadlock.
  SUCCEED();
}

TEST(ThreadPoolTest, ParallelForCoversEveryIndexOnce) {
  ThreadPool pool(3);
  std::vector<std::atomic<int>> hits(1000);
  pool.ParallelFor(1000, [&hits](std::size_t i) { hits[i].fetch_add(1); });
  for (std::size_t i = 0; i < hits.size(); ++i) {
    EXPECT_EQ(hits[i].load(), 1) << "index " << i;
  }
}

TEST(ThreadPoolTest, ParallelForZeroCountIsNoop) {
  ThreadPool pool(2);
  pool.ParallelFor(0, [](std::size_t) { FAIL(); });
}

TEST(ThreadPoolTest, ParallelForCountSmallerThanThreads) {
  ThreadPool pool(8);
  std::atomic<int> sum{0};
  pool.ParallelFor(3, [&sum](std::size_t i) {
    sum.fetch_add(static_cast<int>(i));
  });
  EXPECT_EQ(sum.load(), 0 + 1 + 2);
}

TEST(ThreadPoolTest, TasksCanScheduleMoreWorkBeforeWait) {
  ThreadPool pool(2);
  std::atomic<int> counter{0};
  pool.Schedule([&] {
    counter.fetch_add(1);
  });
  pool.Wait();
  pool.Schedule([&] { counter.fetch_add(10); });
  pool.Wait();
  EXPECT_EQ(counter.load(), 11);
}

TEST(ThreadPoolTest, DestructorJoinsCleanly) {
  std::atomic<int> counter{0};
  {
    ThreadPool pool(4);
    for (int i = 0; i < 50; ++i) {
      pool.Schedule([&counter] { counter.fetch_add(1); });
    }
    pool.Wait();
  }
  EXPECT_EQ(counter.load(), 50);
}

TEST(ThreadPoolTest, SingleThreadPoolStillWorks) {
  ThreadPool pool(1);
  std::vector<int> order;
  for (int i = 0; i < 5; ++i) {
    pool.Schedule([&order, i] { order.push_back(i); });
  }
  pool.Wait();
  // One worker executes in FIFO order.
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

}  // namespace
}  // namespace dcs
