#include "analysis/aligned_thresholds.h"

#include <cmath>

#include <gtest/gtest.h>

namespace dcs {
namespace {

constexpr std::int64_t kM = 1000;       // Routers.
constexpr std::int64_t kN = 4'000'000;  // Bitmap bits.

TEST(NnoBoundTest, MatchesHandComputedSmallCase) {
  // 2x2 all-1s in a 4x4 matrix: C(4,2)^2 * 2^-4 = 36/16.
  EXPECT_NEAR(std::exp(LogNaturalOccurrenceBound(4, 4, 2, 2)), 36.0 / 16.0,
              1e-9);
}

TEST(NnoBoundTest, MonotoneDecreasingInPatternArea) {
  const double base = LogNaturalOccurrenceBound(kM, kN, 30, 20);
  EXPECT_LT(LogNaturalOccurrenceBound(kM, kN, 30, 25), base);
  EXPECT_LT(LogNaturalOccurrenceBound(kM, kN, 40, 20), base);
}

TEST(NnoBoundTest, PaperFig12LowerCurvePoints) {
  // "when a is 28, b has to be at least 21": our epsilon choice shifts the
  // frontier by a column or two, so assert the +-2 band.
  const std::int64_t b28 = MinNonNaturallyOccurringB(kM, kN, 28, 1e-3);
  EXPECT_GE(b28, 19);
  EXPECT_LE(b28, 23);
  // "when a becomes 70, b only needs to be no less than 10" — the Markov
  // bound alone gives ~8-10 depending on epsilon.
  const std::int64_t b70 = MinNonNaturallyOccurringB(kM, kN, 70, 1e-3);
  EXPECT_GE(b70, 7);
  EXPECT_LE(b70, 11);
  // The tradeoff direction is the paper's headline: larger a => smaller b.
  EXPECT_LT(b70, b28);
}

TEST(NnoBoundTest, IsNonNaturallyOccurringConsistentWithMinB) {
  const std::int64_t b = MinNonNaturallyOccurringB(kM, kN, 50, 1e-3);
  ASSERT_GT(b, 1);
  EXPECT_TRUE(IsNonNaturallyOccurring(kM, kN, 50, b, 1e-3));
  EXPECT_FALSE(IsNonNaturallyOccurring(kM, kN, 50, b - 1, 1e-3));
}

TEST(DetectabilityTest, PaperWorkedExampleAt100x30) {
  // Section V-A.2: t = 550, ~2900 surviving noise columns, pattern column
  // survival ~0.55, core width 8, detection probability ~0.988+.
  DetectabilityOptions opts;
  const DetectabilityAnalysis analysis =
      AnalyzeDetectability(kM, kN, 100, 30, opts);
  EXPECT_EQ(analysis.weight_threshold, 550);
  EXPECT_NEAR(analysis.expected_noise_columns, 2900.0, 300.0);
  // P[100 + Binomial(900, 1/2) > 550] is exactly 0.4867; the paper rounds
  // its intermediate to "about 0.55".
  EXPECT_NEAR(analysis.pattern_survival_prob, 0.487, 0.01);
  EXPECT_GE(analysis.min_core_columns, 5);
  EXPECT_LE(analysis.min_core_columns, 9);
  EXPECT_GT(analysis.detection_prob, 0.95);
}

TEST(DetectabilityTest, DetectionProbMonotoneInB) {
  DetectabilityOptions opts;
  double prev = 0.0;
  for (std::int64_t b : {10, 20, 30, 60}) {
    const double p = AnalyzeDetectability(kM, kN, 100, b, opts).detection_prob;
    EXPECT_GE(p, prev);
    prev = p;
  }
}

TEST(DetectabilityTest, Fig12UpperCurveShape) {
  DetectabilityOptions opts;
  // a = 100 -> b ~ 30 (the paper's headline point).
  const std::int64_t b100 = DetectableThresholdB(kM, kN, 100, 0.95, kN, opts);
  EXPECT_GE(b100, 15);
  EXPECT_LE(b100, 40);
  // a = 70 -> b ~ 99 in the paper; same order here.
  const std::int64_t b70 = DetectableThresholdB(kM, kN, 70, 0.95, kN, opts);
  EXPECT_GE(b70, 60);
  EXPECT_LE(b70, 200);
  // a = 25: detectability blows up by two orders of magnitude (paper: 3029).
  const std::int64_t b25 = DetectableThresholdB(kM, kN, 25, 0.95, kN, opts);
  EXPECT_GT(b25, 1000);
  EXPECT_LT(b25, 20000);
  // Monotone: more routers => fewer packets needed.
  EXPECT_LT(b100, b70);
  EXPECT_LT(b70, b25);
}

TEST(DetectabilityTest, DetectableAlwaysAboveNno) {
  // The paper's Fig 12 observation: the detectable curve lies strictly
  // above the non-naturally-occurring curve.
  DetectabilityOptions opts;
  for (std::int64_t a : {30, 50, 70, 100}) {
    const std::int64_t nno = MinNonNaturallyOccurringB(kM, kN, a, opts.epsilon);
    const std::int64_t detectable =
        DetectableThresholdB(kM, kN, a, 0.95, kN, opts);
    ASSERT_GT(nno, 0);
    ASSERT_GT(detectable, 0);
    EXPECT_GT(detectable, nno) << "a=" << a;
  }
}

TEST(DetectabilityTest, InfeasibleReturnsMinusOne) {
  DetectabilityOptions opts;
  // One router can never make an all-1 submatrix significant at 95%.
  EXPECT_EQ(DetectableThresholdB(kM, kN, 1, 0.95, 100000, opts), -1);
}

}  // namespace
}  // namespace dcs
