#include "sketch/flow_split_sketch.h"

#include <gtest/gtest.h>

#include "net/packetizer.h"
#include "traffic/content_catalog.h"

namespace dcs {
namespace {

FlowSplitOptions SmallOptions() {
  FlowSplitOptions opts;
  opts.num_groups = 8;
  opts.offset_options.num_arrays = 4;
  opts.offset_options.array_bits = 512;
  return opts;
}

Packet PayloadPacket(const FlowLabel& flow, std::string payload) {
  Packet pkt;
  pkt.flow = flow;
  pkt.payload = std::move(payload);
  return pkt;
}

TEST(FlowSplitTest, AllGroupsShareOffsets) {
  Rng rng(1);
  FlowSplitSketch sketch(SmallOptions(), &rng);
  const auto& offsets = sketch.group(0).small_offsets();
  for (std::size_t g = 1; g < sketch.num_groups(); ++g) {
    EXPECT_EQ(sketch.group(g).small_offsets(), offsets) << "group " << g;
  }
}

TEST(FlowSplitTest, SameFlowAlwaysSameGroup) {
  Rng rng(2);
  FlowSplitSketch sketch(SmallOptions(), &rng);
  const FlowLabel flow{5, 6, 7, 8, 6};
  const std::size_t group = sketch.GroupOf(flow);
  for (int i = 0; i < 20; ++i) {
    EXPECT_EQ(sketch.GroupOf(flow), group);
  }
}

TEST(FlowSplitTest, PacketsLandOnlyInTheirGroup) {
  Rng rng(3);
  FlowSplitSketch sketch(SmallOptions(), &rng);
  ContentCatalog catalog(1);
  const FlowLabel flow{5, 6, 7, 8, 6};
  const std::size_t group = sketch.GroupOf(flow);
  sketch.Update(PayloadPacket(flow, catalog.ContentBytes(1, 536)));
  for (std::size_t g = 0; g < sketch.num_groups(); ++g) {
    std::size_t ones = 0;
    for (const BitVector& array : sketch.group(g).arrays()) {
      ones += array.CountOnes();
    }
    if (g == group) {
      EXPECT_GT(ones, 0u);
    } else {
      EXPECT_EQ(ones, 0u) << "group " << g;
    }
  }
}

TEST(FlowSplitTest, WholeFlowConcentratesInOneGroupArray) {
  // The signal-magnification property: all g packets of one instance mark
  // the same group's arrays.
  Rng rng(4);
  FlowSplitSketch sketch(SmallOptions(), &rng);
  ContentCatalog catalog(2);
  const FlowLabel flow{9, 9, 9, 9, 6};
  PacketizerOptions packetizer;
  packetizer.mss = 536;
  const auto packets = PacketizeObject(
      flow, "", catalog.ContentBytes(7, 536 * 30), packetizer);
  for (const Packet& pkt : packets) sketch.Update(pkt);
  const std::size_t group = sketch.GroupOf(flow);
  // Each of the group's arrays saw all 30 fragments (maybe minus hash
  // collisions within 512 bits).
  for (const BitVector& array : sketch.group(group).arrays()) {
    EXPECT_GE(array.CountOnes(), 28u);
    EXPECT_LE(array.CountOnes(), 30u);
  }
}

TEST(FlowSplitTest, GroupsRoughlyBalancedOverManyFlows) {
  Rng rng(5);
  FlowSplitSketch sketch(SmallOptions(), &rng);
  ContentCatalog catalog(3);
  std::vector<int> per_group(sketch.num_groups(), 0);
  for (std::uint32_t f = 0; f < 4000; ++f) {
    FlowLabel flow{f, f * 7 + 1, static_cast<std::uint16_t>(f % 60000),
                   80, 6};
    ++per_group[sketch.GroupOf(flow)];
  }
  for (std::size_t g = 0; g < per_group.size(); ++g) {
    EXPECT_GT(per_group[g], 350) << "group " << g;  // 500 expected.
    EXPECT_LT(per_group[g], 650) << "group " << g;
  }
}

TEST(FlowSplitTest, ToMatrixLayoutIsGroupMajor) {
  Rng rng(6);
  FlowSplitOptions opts = SmallOptions();
  FlowSplitSketch sketch(opts, &rng);
  ContentCatalog catalog(4);
  const FlowLabel flow{1, 2, 3, 4, 6};
  sketch.Update(PayloadPacket(flow, catalog.ContentBytes(9, 536)));
  const std::size_t group = sketch.GroupOf(flow);

  const BitMatrix matrix = sketch.ToMatrix();
  EXPECT_EQ(matrix.rows(),
            opts.num_groups * opts.offset_options.num_arrays);
  EXPECT_EQ(matrix.cols(), opts.offset_options.array_bits);
  for (std::size_t a = 0; a < opts.offset_options.num_arrays; ++a) {
    EXPECT_EQ(matrix.row(group * opts.offset_options.num_arrays + a),
              sketch.group(group).arrays()[a]);
  }
}

TEST(FlowSplitTest, ResetClearsAllGroups) {
  Rng rng(7);
  FlowSplitSketch sketch(SmallOptions(), &rng);
  ContentCatalog catalog(5);
  sketch.Update(PayloadPacket(FlowLabel{1, 2, 3, 4, 6},
                              catalog.ContentBytes(1, 536)));
  sketch.Reset();
  EXPECT_EQ(sketch.packets_recorded(), 0u);
  for (std::size_t g = 0; g < sketch.num_groups(); ++g) {
    for (const BitVector& array : sketch.group(g).arrays()) {
      EXPECT_EQ(array.CountOnes(), 0u);
    }
  }
}

}  // namespace
}  // namespace dcs
