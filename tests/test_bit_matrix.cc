#include "common/bit_matrix.h"

#include <gtest/gtest.h>

#include "common/rng.h"

namespace dcs {
namespace {

TEST(BitMatrixTest, ConstructedShape) {
  BitMatrix m(3, 100);
  EXPECT_EQ(m.rows(), 3u);
  EXPECT_EQ(m.cols(), 100u);
  EXPECT_FALSE(m.Test(2, 99));
}

TEST(BitMatrixTest, SetAndTest) {
  BitMatrix m(2, 10);
  m.Set(0, 3);
  m.Set(1, 9);
  EXPECT_TRUE(m.Test(0, 3));
  EXPECT_TRUE(m.Test(1, 9));
  EXPECT_FALSE(m.Test(1, 3));
}

TEST(BitMatrixTest, AppendRowFixesColumnCount) {
  BitMatrix m;
  BitVector row(50);
  row.Set(7);
  m.AppendRow(row);
  EXPECT_EQ(m.rows(), 1u);
  EXPECT_EQ(m.cols(), 50u);
  EXPECT_TRUE(m.Test(0, 7));
  m.AppendRow(BitVector(50));
  EXPECT_EQ(m.rows(), 2u);
}

TEST(BitMatrixTest, ColumnWeightsCountPerColumn) {
  BitMatrix m(3, 70);
  m.Set(0, 0);
  m.Set(1, 0);
  m.Set(2, 0);
  m.Set(0, 69);
  const std::vector<std::uint32_t> weights = m.ColumnWeights();
  ASSERT_EQ(weights.size(), 70u);
  EXPECT_EQ(weights[0], 3u);
  EXPECT_EQ(weights[69], 1u);
  EXPECT_EQ(weights[1], 0u);
}

TEST(BitMatrixTest, ExtractColumnMatchesEntries) {
  BitMatrix m(4, 20);
  m.Set(1, 5);
  m.Set(3, 5);
  const BitVector col = m.ExtractColumn(5);
  ASSERT_EQ(col.size(), 4u);
  EXPECT_FALSE(col.Test(0));
  EXPECT_TRUE(col.Test(1));
  EXPECT_FALSE(col.Test(2));
  EXPECT_TRUE(col.Test(3));
}

TEST(BitMatrixTest, ExtractColumnsOrderFollowsRequest) {
  BitMatrix m(2, 8);
  m.Set(0, 1);
  m.Set(1, 6);
  const std::vector<BitVector> cols = m.ExtractColumns({6, 1});
  ASSERT_EQ(cols.size(), 2u);
  EXPECT_TRUE(cols[0].Test(1));   // Column 6.
  EXPECT_FALSE(cols[0].Test(0));
  EXPECT_TRUE(cols[1].Test(0));   // Column 1.
}

TEST(BitMatrixTest, ColumnWeightsMatchExtractedColumnsRandomized) {
  Rng rng(11);
  BitMatrix m(17, 200);
  for (std::size_t r = 0; r < m.rows(); ++r) {
    for (std::size_t c = 0; c < m.cols(); ++c) {
      if (rng.Bernoulli(0.3)) m.Set(r, c);
    }
  }
  const std::vector<std::uint32_t> weights = m.ColumnWeights();
  for (std::size_t c = 0; c < m.cols(); c += 13) {
    EXPECT_EQ(weights[c], m.ExtractColumn(c).CountOnes()) << "col " << c;
  }
}

}  // namespace
}  // namespace dcs
