#include "common/logging.h"

#include "common/status.h"

#include <sstream>

#include <gtest/gtest.h>

namespace dcs {
namespace {

// Captures std::cerr for the duration of a scope.
class CerrCapture {
 public:
  CerrCapture() : old_(std::cerr.rdbuf(buffer_.rdbuf())) {}
  ~CerrCapture() { std::cerr.rdbuf(old_); }
  std::string str() const { return buffer_.str(); }

 private:
  std::ostringstream buffer_;
  std::streambuf* old_;
};

TEST(LoggingTest, MessagesCarryLevelFileAndLine) {
  internal_logging::SetMinLogLevel(LogLevel::kInfo);
  CerrCapture capture;
  DCS_LOG(Info) << "hello " << 42;
  const std::string out = capture.str();
  EXPECT_NE(out.find("[INFO"), std::string::npos);
  EXPECT_NE(out.find("test_logging.cc"), std::string::npos);
  EXPECT_NE(out.find("hello 42"), std::string::npos);
}

TEST(LoggingTest, LevelFilterSuppressesBelowMin) {
  internal_logging::SetMinLogLevel(LogLevel::kWarning);
  CerrCapture capture;
  DCS_LOG(Info) << "should not appear";
  DCS_LOG(Warning) << "should appear";
  const std::string out = capture.str();
  EXPECT_EQ(out.find("should not appear"), std::string::npos);
  EXPECT_NE(out.find("should appear"), std::string::npos);
  internal_logging::SetMinLogLevel(LogLevel::kInfo);
}

TEST(LoggingTest, ErrorAlwaysAboveDefault) {
  internal_logging::SetMinLogLevel(LogLevel::kInfo);
  CerrCapture capture;
  DCS_LOG(Error) << "boom";
  EXPECT_NE(capture.str().find("[ERROR"), std::string::npos);
}

TEST(LoggingTest, CheckPassesSilently) {
  CerrCapture capture;
  DCS_CHECK(1 + 1 == 2) << "never evaluated";
  EXPECT_TRUE(capture.str().empty());
}

TEST(LoggingDeathTest, CheckFailureAborts) {
  EXPECT_DEATH({ DCS_CHECK(false) << "fatal detail"; }, "Check failed");
}

TEST(LoggingDeathTest, CheckOkAbortsOnError) {
  EXPECT_DEATH(DCS_CHECK_OK(Status::Internal("bad state")), "bad state");
}

}  // namespace
}  // namespace dcs
