#include "net/packetizer.h"

#include <string>

#include <gtest/gtest.h>

namespace dcs {
namespace {

FlowLabel TestFlow() { return FlowLabel{1, 2, 3, 4, 6}; }

std::string Content(std::size_t n) {
  std::string s(n, '\0');
  for (std::size_t i = 0; i < n; ++i) s[i] = static_cast<char>('a' + i % 26);
  return s;
}

TEST(PacketizerTest, ExactMultipleOfMss) {
  PacketizerOptions opts;
  opts.mss = 100;
  const std::vector<Packet> packets =
      PacketizeObject(TestFlow(), "", Content(300), opts);
  ASSERT_EQ(packets.size(), 3u);
  for (const Packet& pkt : packets) {
    EXPECT_EQ(pkt.payload.size(), 100u);
    EXPECT_EQ(pkt.flow, TestFlow());
  }
}

TEST(PacketizerTest, LastPacketShort) {
  PacketizerOptions opts;
  opts.mss = 100;
  const std::vector<Packet> packets =
      PacketizeObject(TestFlow(), "", Content(250), opts);
  ASSERT_EQ(packets.size(), 3u);
  EXPECT_EQ(packets[2].payload.size(), 50u);
}

TEST(PacketizerTest, ReassemblyRoundTrips) {
  PacketizerOptions opts;
  opts.mss = 64;
  const std::string content = Content(500);
  std::string reassembled;
  for (const Packet& pkt : PacketizeObject(TestFlow(), "", content, opts)) {
    reassembled += pkt.payload;
  }
  EXPECT_EQ(reassembled, content);
}

TEST(PacketizerTest, AlignedInstancesProduceIdenticalPackets) {
  PacketizerOptions opts;
  opts.mss = 536;
  const std::string content = Content(536 * 4);
  const auto a = PacketizeObject(TestFlow(), "", content, opts);
  FlowLabel other{9, 9, 9, 9, 6};
  const auto b = PacketizeObject(other, "", content, opts);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].payload, b[i].payload) << "packet " << i;
  }
}

TEST(PacketizerTest, PrefixShiftsContent) {
  PacketizerOptions opts;
  opts.mss = 100;
  const std::string content = Content(300);
  const auto shifted =
      PacketizeObject(TestFlow(), std::string(30, 'H'), content, opts);
  ASSERT_EQ(shifted.size(), 4u);  // 330 bytes over 100-byte segments.
  // First packet: 30 header bytes + first 70 content bytes.
  EXPECT_EQ(shifted[0].payload.substr(0, 30), std::string(30, 'H'));
  EXPECT_EQ(shifted[0].payload.substr(30), content.substr(0, 70));
  // Second packet starts at content offset 70: the unaligned shift.
  EXPECT_EQ(shifted[1].payload, content.substr(70, 100));
}

TEST(PacketizerTest, SamePrefixLengthRealigns) {
  // The unaligned design leans on this: equal prefix lengths (mod mss)
  // reproduce identical packet payloads from packet 1 onward.
  PacketizerOptions opts;
  opts.mss = 100;
  const std::string content = Content(300);
  const auto a =
      PacketizeObject(TestFlow(), std::string(42, 'A'), content, opts);
  const auto b =
      PacketizeObject(TestFlow(), std::string(42, 'B'), content, opts);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 1; i < a.size(); ++i) {
    EXPECT_EQ(a[i].payload, b[i].payload) << "packet " << i;
  }
  EXPECT_NE(a[0].payload, b[0].payload);  // Prefix bytes differ.
}

TEST(PacketizerTest, EmptyContentEmptyPrefix) {
  PacketizerOptions opts;
  EXPECT_TRUE(PacketizeObject(TestFlow(), "", "", opts).empty());
}

TEST(PacketizerTest, HeaderBytesPropagate) {
  PacketizerOptions opts;
  opts.mss = 50;
  opts.header_bytes = 48;
  const auto packets = PacketizeObject(TestFlow(), "", Content(50), opts);
  ASSERT_EQ(packets.size(), 1u);
  EXPECT_EQ(packets[0].header_bytes, 48u);
  EXPECT_EQ(packets[0].wire_bytes(), 98u);
}

}  // namespace
}  // namespace dcs
