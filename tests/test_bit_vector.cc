#include "common/bit_vector.h"

#include <gtest/gtest.h>

#include "common/rng.h"

namespace dcs {
namespace {

TEST(BitVectorTest, StartsAllZero) {
  BitVector v(130);
  EXPECT_EQ(v.size(), 130u);
  EXPECT_EQ(v.CountOnes(), 0u);
  for (std::size_t i = 0; i < v.size(); ++i) EXPECT_FALSE(v.Test(i));
}

TEST(BitVectorTest, SetTestClear) {
  BitVector v(100);
  v.Set(0);
  v.Set(63);
  v.Set(64);
  v.Set(99);
  EXPECT_TRUE(v.Test(0));
  EXPECT_TRUE(v.Test(63));
  EXPECT_TRUE(v.Test(64));
  EXPECT_TRUE(v.Test(99));
  EXPECT_FALSE(v.Test(1));
  EXPECT_EQ(v.CountOnes(), 4u);
  v.Clear(63);
  EXPECT_FALSE(v.Test(63));
  EXPECT_EQ(v.CountOnes(), 3u);
}

TEST(BitVectorTest, SetIsIdempotent) {
  BitVector v(10);
  v.Set(5);
  v.Set(5);
  EXPECT_EQ(v.CountOnes(), 1u);
}

TEST(BitVectorTest, ResetZeroesEverything) {
  BitVector v(200);
  for (std::size_t i = 0; i < 200; i += 3) v.Set(i);
  v.Reset();
  EXPECT_EQ(v.CountOnes(), 0u);
  EXPECT_EQ(v.size(), 200u);
}

TEST(BitVectorTest, CommonOnesCountsIntersection) {
  BitVector a(128);
  BitVector b(128);
  a.Set(1);
  a.Set(64);
  a.Set(100);
  b.Set(64);
  b.Set(100);
  b.Set(127);
  EXPECT_EQ(a.CommonOnes(b), 2u);
  EXPECT_EQ(b.CommonOnes(a), 2u);
}

TEST(BitVectorTest, InPlaceAndKeepsOnlyIntersection) {
  BitVector a(70);
  BitVector b(70);
  a.Set(0);
  a.Set(69);
  b.Set(69);
  a.InPlaceAnd(b);
  EXPECT_FALSE(a.Test(0));
  EXPECT_TRUE(a.Test(69));
  EXPECT_EQ(a.CountOnes(), 1u);
}

TEST(BitVectorTest, InPlaceOrTakesUnion) {
  BitVector a(70);
  BitVector b(70);
  a.Set(0);
  b.Set(69);
  a.InPlaceOr(b);
  EXPECT_TRUE(a.Test(0));
  EXPECT_TRUE(a.Test(69));
}

TEST(BitVectorTest, FillRatio) {
  BitVector v(64);
  EXPECT_DOUBLE_EQ(v.FillRatio(), 0.0);
  for (std::size_t i = 0; i < 32; ++i) v.Set(i);
  EXPECT_DOUBLE_EQ(v.FillRatio(), 0.5);
  EXPECT_DOUBLE_EQ(BitVector().FillRatio(), 0.0);
}

TEST(BitVectorTest, AppendSetBitsListsAscendingIndices) {
  BitVector v(130);
  v.Set(2);
  v.Set(63);
  v.Set(64);
  v.Set(129);
  std::vector<std::size_t> bits;
  v.AppendSetBits(&bits);
  EXPECT_EQ(bits, (std::vector<std::size_t>{2, 63, 64, 129}));
}

TEST(BitVectorTest, EqualityComparesSizeAndBits) {
  BitVector a(65);
  BitVector b(65);
  EXPECT_TRUE(a == b);
  a.Set(64);
  EXPECT_FALSE(a == b);
  b.Set(64);
  EXPECT_TRUE(a == b);
  EXPECT_FALSE(a == BitVector(64));
}

TEST(BitVectorTest, CommonOnesBatchMatchesPairwise) {
  Rng rng(11);
  const std::size_t n = 500;
  BitVector left(n);
  for (std::size_t i = 0; i < n; ++i) {
    if (rng.Bernoulli(0.5)) left.Set(i);
  }
  std::vector<BitVector> others(7, BitVector(n));
  for (BitVector& v : others) {
    for (std::size_t i = 0; i < n; ++i) {
      if (rng.Bernoulli(0.3)) v.Set(i);
    }
  }
  std::vector<std::uint32_t> counts(others.size(), 0);
  left.CommonOnesBatch(others, counts);
  for (std::size_t r = 0; r < others.size(); ++r) {
    EXPECT_EQ(counts[r], left.CommonOnes(others[r])) << "r=" << r;
  }
}

TEST(BitVectorTest, AssignAndEqualsCopyThenAnd) {
  Rng rng(12);
  const std::size_t n = 321;
  BitVector a(n);
  BitVector b(n);
  for (std::size_t i = 0; i < n; ++i) {
    if (rng.Bernoulli(0.5)) a.Set(i);
    if (rng.Bernoulli(0.5)) b.Set(i);
  }
  BitVector expected = a;
  expected.InPlaceAnd(b);
  BitVector got;  // Starts empty; AssignAnd must adopt the operand shape.
  got.AssignAnd(a, b);
  EXPECT_TRUE(got == expected);
  // Reassignment from a larger previous shape must also resize down.
  BitVector reused(2 * n);
  reused.Set(2 * n - 1);
  reused.AssignAnd(a, b);
  EXPECT_TRUE(reused == expected);
}

TEST(BitVectorTest, CommonOnesMatchesBruteForceOnRandomVectors) {
  Rng rng(7);
  for (int trial = 0; trial < 20; ++trial) {
    const std::size_t n = 1 + rng.UniformInt(300);
    BitVector a(n);
    BitVector b(n);
    std::size_t expected = 0;
    std::vector<bool> av(n), bv(n);
    for (std::size_t i = 0; i < n; ++i) {
      av[i] = rng.Bernoulli(0.4);
      bv[i] = rng.Bernoulli(0.4);
      if (av[i]) a.Set(i);
      if (bv[i]) b.Set(i);
      if (av[i] && bv[i]) ++expected;
    }
    EXPECT_EQ(a.CommonOnes(b), expected);
  }
}

}  // namespace
}  // namespace dcs
