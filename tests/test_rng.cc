#include "common/rng.h"

#include <cmath>
#include <set>

#include <gtest/gtest.h>

namespace dcs {
namespace {

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int equal = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.Next() == b.Next()) ++equal;
  }
  EXPECT_EQ(equal, 0);
}

TEST(RngTest, UniformIntStaysInBound) {
  Rng rng(5);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(rng.UniformInt(17), 17u);
  }
}

TEST(RngTest, UniformIntBoundOneIsAlwaysZero) {
  Rng rng(5);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(rng.UniformInt(1), 0u);
}

TEST(RngTest, UniformIntIsRoughlyUniform) {
  Rng rng(99);
  constexpr int kBuckets = 10;
  constexpr int kDraws = 100000;
  int counts[kBuckets] = {};
  for (int i = 0; i < kDraws; ++i) ++counts[rng.UniformInt(kBuckets)];
  // Chi-squared with 9 dof; 99.9th percentile ~ 27.9.
  double chi2 = 0.0;
  const double expected = static_cast<double>(kDraws) / kBuckets;
  for (int c : counts) {
    chi2 += (c - expected) * (c - expected) / expected;
  }
  EXPECT_LT(chi2, 27.9);
}

TEST(RngTest, UniformDoubleInHalfOpenUnitInterval) {
  Rng rng(3);
  double sum = 0.0;
  for (int i = 0; i < 20000; ++i) {
    const double u = rng.UniformDouble();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
    sum += u;
  }
  EXPECT_NEAR(sum / 20000, 0.5, 0.01);
}

TEST(RngTest, BernoulliEdgeCases) {
  Rng rng(4);
  for (int i = 0; i < 50; ++i) {
    EXPECT_FALSE(rng.Bernoulli(0.0));
    EXPECT_TRUE(rng.Bernoulli(1.0));
    EXPECT_FALSE(rng.Bernoulli(-1.0));
    EXPECT_TRUE(rng.Bernoulli(2.0));
  }
}

TEST(RngTest, BernoulliMatchesProbability) {
  Rng rng(6);
  int hits = 0;
  constexpr int kDraws = 50000;
  for (int i = 0; i < kDraws; ++i) hits += rng.Bernoulli(0.3) ? 1 : 0;
  // 5-sigma band around 0.3.
  const double sigma = std::sqrt(0.3 * 0.7 / kDraws);
  EXPECT_NEAR(static_cast<double>(hits) / kDraws, 0.3, 5 * sigma);
}

TEST(RngTest, ForkProducesIndependentStream) {
  Rng parent(77);
  Rng child = parent.Fork();
  std::set<std::uint64_t> values;
  for (int i = 0; i < 32; ++i) {
    values.insert(parent.Next());
    values.insert(child.Next());
  }
  EXPECT_EQ(values.size(), 64u);  // No collisions between the streams.
}

TEST(RngTest, SatisfiesUniformRandomBitGenerator) {
  static_assert(Rng::min() == 0);
  static_assert(Rng::max() == ~0ULL);
  Rng rng(1);
  EXPECT_NE(rng(), rng());
}

}  // namespace
}  // namespace dcs
