#include <algorithm>

#include <gtest/gtest.h>

#include "analysis/aligned_detector.h"
#include "analysis/synthetic_matrix.h"
#include "common/rng.h"

namespace dcs {
namespace {

AlignedDetectorOptions DetectorOptions() {
  AlignedDetectorOptions opts;
  opts.first_iteration_hopefuls = 200;
  opts.hopefuls = 100;
  return opts;
}

// Builds a literal matrix with two disjoint planted patterns.
BitMatrix TwoPatternMatrix(Rng* rng, std::vector<std::size_t>* cols_a,
                           std::vector<std::size_t>* cols_b) {
  SyntheticAlignedOptions opts;
  opts.m = 150;
  opts.n = 3000;
  opts.pattern_rows = 45;
  opts.pattern_cols = 16;
  std::vector<std::uint32_t> rows_a;
  BitMatrix matrix = SampleLiteralAligned(opts, rng, &rows_a, cols_a);

  // Second pattern: different rows and columns.
  std::vector<std::uint32_t> rows_b;
  for (std::uint32_t r = 0; rows_b.size() < 40; ++r) {
    if (!std::binary_search(rows_a.begin(), rows_a.end(), r)) {
      rows_b.push_back(r);
    }
  }
  cols_b->clear();
  for (std::size_t c = 0; cols_b->size() < 14; ++c) {
    if (!std::binary_search(cols_a->begin(), cols_a->end(), c)) {
      cols_b->push_back(c);
    }
  }
  for (std::uint32_t r : rows_b) {
    for (std::size_t c : *cols_b) matrix.Set(r, c);
  }
  return matrix;
}

TEST(MultiPatternTest, FindsBothPlantedPatterns) {
  Rng rng(5);
  std::vector<std::size_t> cols_a;
  std::vector<std::size_t> cols_b;
  const BitMatrix matrix = TwoPatternMatrix(&rng, &cols_a, &cols_b);

  AlignedDetector detector(DetectorOptions());
  const auto detections = detector.DetectMultipleInMatrix(matrix, 200, 4);
  ASSERT_GE(detections.size(), 2u);

  auto covers = [](const AlignedDetection& d,
                   const std::vector<std::size_t>& cols) {
    std::size_t hit = 0;
    for (std::size_t c : cols) {
      if (std::binary_search(d.columns.begin(), d.columns.end(), c)) ++hit;
    }
    return hit >= cols.size() * 3 / 4;
  };
  bool found_a = false;
  bool found_b = false;
  for (const AlignedDetection& d : detections) {
    found_a = found_a || covers(d, cols_a);
    found_b = found_b || covers(d, cols_b);
  }
  EXPECT_TRUE(found_a);
  EXPECT_TRUE(found_b);
}

TEST(MultiPatternTest, StopsAfterSinglePattern) {
  SyntheticAlignedOptions opts;
  opts.m = 150;
  opts.n = 3000;
  opts.pattern_rows = 45;
  opts.pattern_cols = 16;
  Rng rng(6);
  std::vector<std::uint32_t> rows;
  std::vector<std::size_t> cols;
  const BitMatrix matrix = SampleLiteralAligned(opts, &rng, &rows, &cols);
  AlignedDetector detector(DetectorOptions());
  const auto detections = detector.DetectMultipleInMatrix(matrix, 200, 4);
  EXPECT_EQ(detections.size(), 1u);
}

TEST(MultiPatternTest, NoPatternsOnNoise) {
  SyntheticAlignedOptions opts;
  opts.m = 150;
  opts.n = 3000;
  Rng rng(7);
  std::vector<std::uint32_t> rows;
  std::vector<std::size_t> cols;
  const BitMatrix matrix = SampleLiteralAligned(opts, &rng, &rows, &cols);
  AlignedDetector detector(DetectorOptions());
  EXPECT_TRUE(detector.DetectMultipleInMatrix(matrix, 200, 4).empty());
}

TEST(MultiPatternTest, MaxPatternsCapRespected) {
  Rng rng(8);
  std::vector<std::size_t> cols_a;
  std::vector<std::size_t> cols_b;
  const BitMatrix matrix = TwoPatternMatrix(&rng, &cols_a, &cols_b);
  AlignedDetector detector(DetectorOptions());
  const auto detections = detector.DetectMultipleInMatrix(matrix, 200, 1);
  EXPECT_EQ(detections.size(), 1u);
}

TEST(MultiPatternTest, InputMatrixUntouched) {
  Rng rng(9);
  std::vector<std::size_t> cols_a;
  std::vector<std::size_t> cols_b;
  const BitMatrix matrix = TwoPatternMatrix(&rng, &cols_a, &cols_b);
  const BitVector row0_before = matrix.row(0);
  AlignedDetector detector(DetectorOptions());
  (void)detector.DetectMultipleInMatrix(matrix, 200, 4);
  EXPECT_TRUE(matrix.row(0) == row0_before);
}

}  // namespace
}  // namespace dcs
