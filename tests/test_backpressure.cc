// Back-pressure / shedding policy tests for the EpochRing
// (docs/STREAMING.md): drop-oldest keeps the report stream contiguous and
// records every missed epoch as an EpochTracker gap; degrade mode analyzes
// with the cheaper options and recalibrates the evidence bar via
// EpochCalibration; block analyzes everything and only counts how often it
// had to; the ingest.* and soak.* metrics count what was dropped.

#include "dcs/epoch_ring.h"

#include <algorithm>
#include <cstdint>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "obs/metrics.h"

namespace dcs {
namespace {

constexpr std::uint32_t kRouters = 8;
constexpr std::size_t kBits = 512;

Digest NoiseDigest(std::uint64_t epoch, std::uint32_t router) {
  Digest digest;
  digest.router_id = router;
  digest.epoch_id = epoch;
  digest.kind = DigestKind::kAligned;
  digest.packets_covered = 10;
  digest.raw_bytes_covered = 10000;
  BitVector row(kBits);
  Rng rng(epoch * 104729 + router * 31 + 1);
  for (std::size_t i = 0; i < kBits; ++i) {
    if (rng.Bernoulli(0.5)) row.Set(i);
  }
  digest.rows.push_back(std::move(row));
  return digest;
}

EpochRingOptions SmallRing(ShedPolicy policy) {
  EpochRingOptions options;
  options.capacity = 2;
  options.analysis_budget_per_offer = 1;
  options.policy = policy;
  options.aligned.n_prime = 64;
  options.aligned.detector.first_iteration_hopefuls = 64;
  options.aligned.detector.hopefuls = 32;
  options.aligned.incremental_weights = true;
  options.ingest.expected_routers = kRouters;
  return options;
}

void OfferEpoch(EpochRing* ring, std::uint64_t epoch) {
  for (std::uint32_t r = 0; r < kRouters; ++r) {
    ASSERT_TRUE(ring->Offer(NoiseDigest(epoch, r)).ok());
  }
}

TEST(BackpressureTest, DropOldestKeepsWindowContiguousAndRecordsGaps) {
  EpochRing ring(SmallRing(ShedPolicy::kDropOldest));
  OfferEpoch(&ring, 0);
  OfferEpoch(&ring, 1);
  // Jump to epoch 9: heads 0..7 close in one advance — 0 within budget
  // (analyzed), 1..7 over budget (shed).
  OfferEpoch(&ring, 9);
  ring.Drain();

  const std::vector<DcsReport> reports = ring.TakeReports();
  ASSERT_EQ(reports.size(), 10u);
  for (std::uint64_t e = 0; e < reports.size(); ++e) {
    EXPECT_EQ(reports[e].epoch_id, e) << "window lost contiguity";
  }
  EXPECT_FALSE(reports[0].shed);
  for (std::uint64_t e = 1; e <= 7; ++e) {
    EXPECT_TRUE(reports[e].shed) << "epoch " << e;
    EXPECT_FALSE(reports[e].degraded_analysis);
  }
  EXPECT_FALSE(reports[8].shed);
  EXPECT_FALSE(reports[9].shed);
  // Epoch 1 had real digests when it was shed — the evidence is recorded
  // as lost, not silently forgotten.
  EXPECT_EQ(reports[1].digests_accepted, kRouters);

  EXPECT_EQ(ring.stats().epochs_shed, 7u);
  EXPECT_EQ(ring.stats().epochs_analyzed, 3u);
  EXPECT_EQ(ring.stats().blocked_advances, 0u);

  // Every missed epoch is an EpochTracker gap: the k-of-w window aged
  // through the shed stretch instead of staying optimistically stale.
  EXPECT_EQ(ring.tracker().gaps_seen(), 7u);
  EXPECT_EQ(ring.tracker().epochs_seen(), 10u);
  // Default window 5 holds epochs 5..9: gaps 5, 6, 7.
  EXPECT_EQ(ring.tracker().gaps_in_window(), 3u);
}

TEST(BackpressureTest, DegradeModeRecalibratesViaEpochCalibration) {
  EpochRing ring(SmallRing(ShedPolicy::kDegrade));
  OfferEpoch(&ring, 0);
  OfferEpoch(&ring, 1);
  // Advancing to epoch 3 closes head 0 (budget, full fidelity) and head 1
  // (over budget, degraded) — both with a full set of digests.
  OfferEpoch(&ring, 3);
  ring.Drain();

  const std::vector<DcsReport> reports = ring.TakeReports();
  ASSERT_EQ(reports.size(), 4u);
  EXPECT_FALSE(reports[0].degraded_analysis);
  EXPECT_TRUE(reports[1].degraded_analysis);
  EXPECT_FALSE(reports[1].shed);
  EXPECT_EQ(reports[1].digests_accepted, kRouters);
  EXPECT_EQ(ring.stats().epochs_degraded, 1u);
  EXPECT_EQ(ring.tracker().gaps_seen(), 0u);

  // The degraded epoch was analyzed against a narrower screen, and its
  // calibration says so: the detectable-width threshold was recomputed for
  // n' / 4 and differs from the full-fidelity one. (The direction depends
  // on the regime — with full-height patterns a narrower screen admits
  // fewer heavy noise columns — so only the recalibration itself is
  // asserted, not its sign.)
  const EpochCalibration& full = reports[0].aligned.calibration;
  const EpochCalibration& degraded = reports[1].aligned.calibration;
  ASSERT_TRUE(full.populated());
  ASSERT_TRUE(degraded.populated());
  EXPECT_EQ(full.observed_routers, kRouters);
  EXPECT_EQ(degraded.observed_routers, kRouters);
  ASSERT_GT(full.aligned_detectable_columns, 0);
  ASSERT_GT(degraded.aligned_detectable_columns, 0);
  EXPECT_NE(degraded.aligned_detectable_columns,
            full.aligned_detectable_columns);
  // The NNO bar itself depends only on the matrix shape, not the screen.
  EXPECT_EQ(degraded.aligned_min_nno_columns, full.aligned_min_nno_columns);

  // And the degraded analysis is exactly what a monitor configured with
  // the degraded options would have produced — no hidden third pipeline.
  EpochRingOptions base = SmallRing(ShedPolicy::kDegrade);
  AlignedPipelineOptions cheap = base.aligned;
  cheap.n_prime = base.aligned.n_prime / base.degraded_n_prime_divisor;
  cheap.detector.first_iteration_hopefuls =
      std::min(cheap.detector.first_iteration_hopefuls, cheap.n_prime);
  IngestOptions pinned = base.ingest;
  pinned.lock_epoch_to_first = false;
  pinned.expected_epoch = 1;
  pinned.max_epoch_skew = 0;
  DcsMonitor expected(cheap, UnalignedPipelineOptions{}, AnalysisContext{},
                      pinned);
  for (std::uint32_t r = 0; r < kRouters; ++r) {
    ASSERT_TRUE(expected.AddDigest(NoiseDigest(1, r)).ok());
  }
  EXPECT_EQ(reports[1].aligned, expected.AnalyzeAligned());
}

TEST(BackpressureTest, BlockPolicyAnalyzesEverythingAndCountsOverruns) {
  EpochRing ring(SmallRing(ShedPolicy::kBlock));
  OfferEpoch(&ring, 0);
  OfferEpoch(&ring, 1);
  OfferEpoch(&ring, 6);
  ring.Drain();

  const std::vector<DcsReport> reports = ring.TakeReports();
  ASSERT_EQ(reports.size(), 7u);
  for (const DcsReport& report : reports) {
    EXPECT_FALSE(report.shed);
    EXPECT_FALSE(report.degraded_analysis);
  }
  // Advancing 0 -> 5 closed five heads in one offer: one within budget,
  // four blocked.
  EXPECT_EQ(ring.stats().blocked_advances, 4u);
  EXPECT_EQ(ring.stats().epochs_shed, 0u);
  EXPECT_EQ(ring.stats().epochs_analyzed, 7u);
  EXPECT_EQ(ring.tracker().gaps_seen(), 0u);
}

TEST(BackpressureTest, ShedAndIngestMetricsCountDrops) {
  MetricsRegistry::Global().set_enabled(true);
  MetricsRegistry::Global().ResetValues();

  EpochRing ring(SmallRing(ShedPolicy::kDropOldest));
  OfferEpoch(&ring, 0);
  // A replayed digest: the slot monitor rejects it and ingest.* counts it.
  EXPECT_FALSE(ring.Offer(NoiseDigest(0, 0)).ok());
  OfferEpoch(&ring, 1);
  OfferEpoch(&ring, 9);  // Sheds epochs 1..7.
  // A digest for a closed epoch: stale, refused at the ring itself.
  EXPECT_FALSE(ring.Offer(NoiseDigest(2, 0)).ok());
  ring.Drain();

  const MetricsSnapshot snapshot = MetricsRegistry::Global().Snapshot();
  MetricsRegistry::Global().set_enabled(false);

  const auto counter = [&](const char* name) -> std::uint64_t {
    const MetricsSnapshot::Entry* entry = snapshot.Find(name);
    return entry == nullptr ? 0 : entry->counter_value;
  };
  EXPECT_EQ(counter("soak.shed_epochs"), 7u);
  EXPECT_EQ(counter("soak.analyzed_epochs"), 3u);
  EXPECT_EQ(counter("soak.stale_digests"), 1u);
  EXPECT_EQ(counter("soak.digests_offered"), 3 * kRouters + 2u);
  EXPECT_EQ(counter("soak.digests_accepted"), 3 * kRouters);
  EXPECT_EQ(counter("soak.digests_rejected"), 1u);
  EXPECT_EQ(counter("ingest.rejected.duplicate"), 1u);
  EXPECT_EQ(counter("ingest.accepted"), 3 * kRouters);
  EXPECT_EQ(counter("epoch.gaps"), 7u);
  // Shed epochs never reach the analyzers.
  EXPECT_EQ(counter("monitor.epochs_analyzed.aligned"), 10u - 7u);
}

}  // namespace
}  // namespace dcs
