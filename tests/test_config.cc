#include "common/config.h"

#include <cstdlib>

#include <gtest/gtest.h>

namespace dcs {
namespace {

TEST(ConfigTest, EnvInt64FallbackWhenUnset) {
  unsetenv("DCS_TEST_INT");
  EXPECT_EQ(EnvInt64("DCS_TEST_INT", 42), 42);
}

TEST(ConfigTest, EnvInt64ParsesValue) {
  setenv("DCS_TEST_INT", "123", 1);
  EXPECT_EQ(EnvInt64("DCS_TEST_INT", 42), 123);
  setenv("DCS_TEST_INT", "-7", 1);
  EXPECT_EQ(EnvInt64("DCS_TEST_INT", 42), -7);
  unsetenv("DCS_TEST_INT");
}

TEST(ConfigTest, EnvInt64RejectsGarbage) {
  setenv("DCS_TEST_INT", "12abc", 1);
  EXPECT_EQ(EnvInt64("DCS_TEST_INT", 42), 42);
  setenv("DCS_TEST_INT", "", 1);
  EXPECT_EQ(EnvInt64("DCS_TEST_INT", 42), 42);
  unsetenv("DCS_TEST_INT");
}

TEST(ConfigTest, EnvDoubleParsesAndFallsBack) {
  setenv("DCS_TEST_DBL", "0.25", 1);
  EXPECT_DOUBLE_EQ(EnvDouble("DCS_TEST_DBL", 1.0), 0.25);
  setenv("DCS_TEST_DBL", "zzz", 1);
  EXPECT_DOUBLE_EQ(EnvDouble("DCS_TEST_DBL", 1.0), 1.0);
  unsetenv("DCS_TEST_DBL");
}

TEST(ConfigTest, BenchScaleFromEnv) {
  unsetenv("DCS_SCALE");
  EXPECT_EQ(BenchScaleFromEnv(), BenchScale::kSmall);
  setenv("DCS_SCALE", "paper", 1);
  EXPECT_EQ(BenchScaleFromEnv(), BenchScale::kPaper);
  setenv("DCS_SCALE", "other", 1);
  EXPECT_EQ(BenchScaleFromEnv(), BenchScale::kSmall);
  unsetenv("DCS_SCALE");
}

TEST(ConfigTest, ScaleNames) {
  EXPECT_EQ(BenchScaleName(BenchScale::kSmall), "small");
  EXPECT_EQ(BenchScaleName(BenchScale::kPaper), "paper");
}

}  // namespace
}  // namespace dcs
