// Proof suite for the concurrency contract layer (common/sync.h,
// docs/STATIC_ANALYSIS.md §5), in three parts:
//
//  1. Wrapper equivalence: dcs::Mutex / MutexLock / CondVar behave exactly
//     like the std primitives they wrap — mutual exclusion, TryLock
//     semantics, producer/consumer wakeups — checked differentially against
//     a std::mutex control where that sharpens the claim.
//  2. Lock-order validator, hook level: the sync_internal hooks are always
//     compiled, so the graph mechanics (first-seen edges, cycle detection,
//     TryLock exemption, destruction cleanup) are provable in every build
//     type, including the NDEBUG builds where Mutex itself skips them.
//  3. Lock-order validator, end to end: in debug builds (!NDEBUG) a real
//     A->B / B->A inversion through Mutex::Lock aborts with both chains in
//     the message.

#include "common/sync.h"

#include <atomic>
#include <condition_variable>  // dcs-lint: allow(raw-sync-primitive)
#include <mutex>               // dcs-lint: allow(raw-sync-primitive)
#include <queue>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

namespace dcs {
namespace {

// ---------------------------------------------------------------------------
// Part 1: wrapper equivalence.
// ---------------------------------------------------------------------------

// Hammers `increments` lock-protected ++ operations per thread through
// `lock_fn`; the final count is exact iff the lock provides mutual
// exclusion.
template <typename LockFn>
long HammerCounter(int threads, int increments, LockFn lock_fn) {
  long count = 0;
  std::vector<std::thread> workers;
  workers.reserve(static_cast<std::size_t>(threads));
  for (int t = 0; t < threads; ++t) {
    workers.emplace_back([&] {
      for (int i = 0; i < increments; ++i) lock_fn(count);
    });
  }
  for (std::thread& w : workers) w.join();
  return count;
}

TEST(SyncMutexTest, MutualExclusionMatchesStdMutex) {
  constexpr int kThreads = 4;
  constexpr int kIncrements = 20000;

  Mutex dcs_mu("test.counter");
  const long dcs_count = HammerCounter(kThreads, kIncrements, [&](long& c) {
    MutexLock lock(&dcs_mu);
    ++c;
  });

  std::mutex std_mu;  // dcs-lint: allow(raw-sync-primitive)
  const long std_count = HammerCounter(kThreads, kIncrements, [&](long& c) {
    std::scoped_lock lock(std_mu);  // dcs-lint: allow(raw-sync-primitive)
    ++c;
  });

  EXPECT_EQ(dcs_count, kThreads * static_cast<long>(kIncrements));
  EXPECT_EQ(dcs_count, std_count);
}

TEST(SyncMutexTest, TryLockFailsWhileHeldAndSucceedsWhenFree) {
  Mutex mu("test.trylock");
  ASSERT_TRUE(mu.TryLock());
  // Contended TryLock must fail without blocking — probe from another
  // thread because relocking from this one would be UB on a std::mutex.
  bool contended_result = true;
  std::thread prober([&] { contended_result = mu.TryLock(); });
  prober.join();
  EXPECT_FALSE(contended_result);
  mu.Unlock();

  std::thread reacquirer([&] {
    ASSERT_TRUE(mu.TryLock());
    mu.Unlock();
  });
  reacquirer.join();
}

TEST(SyncMutexTest, MutexLockReleasesOnScopeExit) {
  Mutex mu("test.raii");
  { MutexLock lock(&mu); }
  ASSERT_TRUE(mu.TryLock());
  mu.Unlock();
}

TEST(SyncCondVarTest, ProducerConsumerDeliversEverythingInOrder) {
  constexpr int kItems = 1000;
  Mutex mu("test.queue");
  CondVar ready;
  std::queue<int> queue;
  bool done = false;

  std::vector<int> received;
  std::thread consumer([&] {
    while (true) {
      int item = -1;
      {
        MutexLock lock(&mu);
        while (queue.empty() && !done) ready.Wait(&lock);
        if (queue.empty()) return;  // done && drained
        item = queue.front();
        queue.pop();
      }
      received.push_back(item);
    }
  });

  for (int i = 0; i < kItems; ++i) {
    {
      MutexLock lock(&mu);
      queue.push(i);
    }
    ready.Signal();
  }
  {
    MutexLock lock(&mu);
    done = true;
  }
  ready.SignalAll();
  consumer.join();

  ASSERT_EQ(received.size(), static_cast<std::size_t>(kItems));
  for (int i = 0; i < kItems; ++i) EXPECT_EQ(received[static_cast<std::size_t>(i)], i);
}

TEST(SyncCondVarTest, SignalAllWakesEveryWaiter) {
  constexpr int kWaiters = 8;
  Mutex mu("test.barrier");
  // One condvar per condition. Sharing a single condvar here is a lost
  // wakeup: a waiter's arrival Signal() can be delivered to another waiter
  // (which rechecks `released` and sleeps again) instead of the releaser,
  // consuming the only notification that `waiting` changed.
  CondVar arrived;  // Waiters → releaser: `waiting` advanced.
  CondVar go;       // Releaser → waiters: `released` flipped.
  int waiting = 0;
  bool released = false;

  std::vector<std::thread> waiters;
  waiters.reserve(kWaiters);
  for (int t = 0; t < kWaiters; ++t) {
    waiters.emplace_back([&] {
      MutexLock lock(&mu);
      ++waiting;
      arrived.Signal();  // Tell the releaser we arrived.
      while (!released) go.Wait(&lock);
    });
  }

  {
    MutexLock lock(&mu);
    while (waiting < kWaiters) arrived.Wait(&lock);
    released = true;
  }
  go.SignalAll();
  for (std::thread& w : waiters) w.join();  // Hangs if anyone missed the wake.
}

// ---------------------------------------------------------------------------
// Part 2: lock-order validator, driven through the always-compiled hooks.
//
// The hooks maintain a per-thread held stack, so each test balances its
// Validate/Record calls; ResetOrderGraphForTest() isolates the first-seen
// edge graph between tests. In debug builds Mutex construction registers
// names automatically; RegisterMutex is idempotent, so calling it again
// keeps these tests build-type independent.
// ---------------------------------------------------------------------------

namespace si = sync_internal;

class LockOrderValidatorTest : public ::testing::Test {
 protected:
  void SetUp() override { si::ResetOrderGraphForTest(); }
  void TearDown() override {
    ASSERT_EQ(si::HeldDepth(), 0u) << "test leaked a held-stack entry";
    si::ResetOrderGraphForTest();
  }
};

TEST_F(LockOrderValidatorTest, HeldDepthTracksAcquireRelease) {
  Mutex a("order.a");
  Mutex b("order.b");
  EXPECT_EQ(si::HeldDepth(), 0u);
  si::ValidateAcquire(&a);
  EXPECT_EQ(si::HeldDepth(), 1u);
  si::ValidateAcquire(&b);
  EXPECT_EQ(si::HeldDepth(), 2u);
  si::RecordRelease(&b);
  si::RecordRelease(&a);
  EXPECT_EQ(si::HeldDepth(), 0u);
}

TEST_F(LockOrderValidatorTest, ConsistentOrderIsAccepted) {
  Mutex a("order.a");
  Mutex b("order.b");
  for (int round = 0; round < 3; ++round) {
    si::ValidateAcquire(&a);
    si::ValidateAcquire(&b);
    si::RecordRelease(&b);
    si::RecordRelease(&a);
  }
}

TEST_F(LockOrderValidatorTest, InversionAbortsWithBothChains) {
  Mutex a("order.a");
  Mutex b("order.b");
  si::RegisterMutex(&a, "order.a");
  si::RegisterMutex(&b, "order.b");
  si::ValidateAcquire(&a);
  si::ValidateAcquire(&b);  // Establishes a -> b.
  si::RecordRelease(&b);
  si::RecordRelease(&a);
  si::ValidateAcquire(&b);
  // The inversion diagnostic must name the rule and both mutex chains.
  EXPECT_DEATH(si::ValidateAcquire(&a),
               "lock-order inversion.*order\\.b.*order\\.a.*established "
               "order.*order\\.a.*order\\.b");
  si::RecordRelease(&b);
}

TEST_F(LockOrderValidatorTest, TransitiveInversionIsACycleToo) {
  Mutex a("order.a");
  Mutex b("order.b");
  Mutex c("order.c");
  si::RegisterMutex(&a, "order.a");
  si::RegisterMutex(&c, "order.c");
  si::ValidateAcquire(&a);
  si::ValidateAcquire(&b);  // a -> b
  si::RecordRelease(&b);
  si::RecordRelease(&a);
  si::ValidateAcquire(&b);
  si::ValidateAcquire(&c);  // b -> c
  si::RecordRelease(&c);
  si::RecordRelease(&b);
  si::ValidateAcquire(&c);
  EXPECT_DEATH(si::ValidateAcquire(&a),  // c -> a closes a 3-cycle.
               "lock-order inversion.*order\\.a.*order\\.c");
  si::RecordRelease(&c);
}

TEST_F(LockOrderValidatorTest, RecursiveAcquisitionAborts) {
  Mutex a("order.recursive");
  si::RegisterMutex(&a, "order.recursive");
  si::ValidateAcquire(&a);
  EXPECT_DEATH(si::ValidateAcquire(&a), "recursive acquisition");
  si::RecordRelease(&a);
}

TEST_F(LockOrderValidatorTest, ReleasingUnheldMutexAborts) {
  Mutex a("order.unheld");
  si::RegisterMutex(&a, "order.unheld");
  EXPECT_DEATH(si::RecordRelease(&a), "does not hold");
}

TEST_F(LockOrderValidatorTest, TryAcquireDoesNotConstrainTheOrder) {
  Mutex a("order.a");
  Mutex b("order.b");
  // TryLock cannot block, so holding a while try-acquiring b must NOT
  // record a -> b...
  si::ValidateAcquire(&a);
  si::RecordTryAcquire(&b);
  si::RecordRelease(&b);
  si::RecordRelease(&a);
  // ...and the opposite blocking order stays legal.
  si::ValidateAcquire(&b);
  si::ValidateAcquire(&a);
  si::RecordRelease(&a);
  si::RecordRelease(&b);
}

TEST_F(LockOrderValidatorTest, DestructionRemovesEdgesForAddressReuse) {
  Mutex a("order.a");
  {
    Mutex b("order.b");
    si::RegisterMutex(&b, "order.b");
    si::ValidateAcquire(&a);
    si::ValidateAcquire(&b);  // a -> b, with b short-lived.
    si::RecordRelease(&b);
    si::RecordRelease(&a);
    si::UnregisterMutex(&b);  // What ~Mutex does in debug builds.
    // A recycled mutex at b's address must start with a clean slate: the
    // stale a -> b edge would make this fresh b -> a order a false
    // inversion.
    si::RegisterMutex(&b, "order.b2");
    si::ValidateAcquire(&b);
    si::ValidateAcquire(&a);
    si::RecordRelease(&a);
    si::RecordRelease(&b);
    si::UnregisterMutex(&b);
    si::RegisterMutex(&b, "order.b");  // Rebalance for ~Mutex in debug.
  }
}

// ---------------------------------------------------------------------------
// Part 3: end to end through Mutex::Lock, debug builds only. Under NDEBUG
// the validator is compiled out of the lock path (mirroring DCS_DCHECK), so
// the inversion simply runs to completion there.
// ---------------------------------------------------------------------------

#ifndef NDEBUG
TEST(LockOrderEndToEndTest, RealInversionThroughMutexLockAborts) {
  si::ResetOrderGraphForTest();
  EXPECT_DEATH(
      {
        Mutex a("e2e.a");
        Mutex b("e2e.b");
        {
          MutexLock la(&a);
          MutexLock lb(&b);  // Establishes a -> b.
        }
        MutexLock lb(&b);
        MutexLock la(&a);  // Inversion: aborts before deadlock can happen.
      },
      "lock-order inversion.*e2e");
  si::ResetOrderGraphForTest();
}

TEST(LockOrderEndToEndTest, ValidatorIsWiredIntoTheLockPath) {
  si::ResetOrderGraphForTest();
  Mutex mu("e2e.depth");
  EXPECT_EQ(si::HeldDepth(), 0u);
  {
    MutexLock lock(&mu);
    EXPECT_EQ(si::HeldDepth(), 1u);
  }
  EXPECT_EQ(si::HeldDepth(), 0u);
  si::ResetOrderGraphForTest();
}
#endif  // !NDEBUG

}  // namespace
}  // namespace dcs
