#include "common/table_printer.h"

#include <sstream>

#include <gtest/gtest.h>

namespace dcs {
namespace {

TEST(TablePrinterTest, AlignsColumns) {
  TablePrinter table({"g", "value"});
  table.AddRow({"100", "1.5"});
  table.AddRow({"5", "12.25"});
  std::ostringstream os;
  table.Print(os);
  const std::string out = os.str();
  EXPECT_NE(out.find("| g   | value |"), std::string::npos);
  EXPECT_NE(out.find("| 100 | 1.5   |"), std::string::npos);
  EXPECT_NE(out.find("| 5   | 12.25 |"), std::string::npos);
  // Header separator present.
  EXPECT_NE(out.find("|-----|"), std::string::npos);
}

TEST(TablePrinterTest, FmtFormatsPrecision) {
  EXPECT_EQ(TablePrinter::Fmt(1.23456, 2), "1.23");
  EXPECT_EQ(TablePrinter::Fmt(1.0, 0), "1");
  EXPECT_EQ(TablePrinter::Fmt(0.98765, 3), "0.988");
}

TEST(TablePrinterTest, HeaderOnlyTable) {
  TablePrinter table({"a"});
  std::ostringstream os;
  table.Print(os);
  EXPECT_NE(os.str().find("| a |"), std::string::npos);
}

}  // namespace
}  // namespace dcs
