// Unit tests for the bench-snapshot differ (tools/bench_compare_lib):
// suffix classification, one-sided noise-aware thresholds per class,
// bench.-gauge filtering, overlap bookkeeping, and the JSON-lines file
// round trip the CLI depends on.

#include "bench_compare_lib.h"

#include <cstdio>
#include <fstream>
#include <string>

#include <gtest/gtest.h>

#include "obs/exporter.h"
#include "obs/metrics.h"

namespace dcs {
namespace bench_compare {
namespace {

MetricsSnapshot::Entry Gauge(const std::string& name, double value) {
  MetricsSnapshot::Entry entry;
  entry.name = name;
  entry.type = MetricType::kGauge;
  entry.gauge_value = value;
  return entry;
}

MetricsSnapshot Snapshot(std::vector<MetricsSnapshot::Entry> entries) {
  MetricsSnapshot snapshot;
  snapshot.entries = std::move(entries);
  return snapshot;
}

const MetricDelta* FindDelta(const BenchCompareResult& result,
                             const std::string& name) {
  for (const MetricDelta& delta : result.deltas) {
    if (delta.name == name) return &delta;
  }
  return nullptr;
}

TEST(ClassifyMetricTest, SuffixConvention) {
  EXPECT_EQ(ClassifyMetric("bench.soak.total_s"), MetricClass::kTiming);
  EXPECT_EQ(ClassifyMetric("bench.soak.p99_epoch_ms"), MetricClass::kTiming);
  EXPECT_EQ(ClassifyMetric("bench.soak.epochs_per_sec"),
            MetricClass::kTiming);
  EXPECT_EQ(ClassifyMetric("bench.soak.peak_rss_mb"), MetricClass::kMemory);
  EXPECT_EQ(ClassifyMetric("bench.soak.detection_ratio"),
            MetricClass::kQuality);
  EXPECT_EQ(ClassifyMetric("bench.soak.epochs"), MetricClass::kInfo);
  EXPECT_EQ(ClassifyMetric("bench.parallel_unaligned.g128.t2.speedup"),
            MetricClass::kInfo);
}

TEST(CompareSnapshotsTest, TimingGatesOnLenientFactorOnly) {
  const MetricsSnapshot baseline =
      Snapshot({Gauge("bench.x.total_s", 1.0)});
  BenchCompareOptions options;
  options.timing_factor = 4.0;

  // 3.9x slower: inside the factor (CI machines differ), not a regression.
  BenchCompareResult result = CompareSnapshots(
      baseline, Snapshot({Gauge("bench.x.total_s", 3.9)}), options);
  EXPECT_EQ(result.num_regressions, 0u);

  // 4.1x slower: regression.
  result = CompareSnapshots(
      baseline, Snapshot({Gauge("bench.x.total_s", 4.1)}), options);
  EXPECT_EQ(result.num_regressions, 1u);
  ASSERT_NE(FindDelta(result, "bench.x.total_s"), nullptr);
  EXPECT_TRUE(FindDelta(result, "bench.x.total_s")->regression);

  // 10x faster: never a regression (one-sided).
  result = CompareSnapshots(
      baseline, Snapshot({Gauge("bench.x.total_s", 0.1)}), options);
  EXPECT_EQ(result.num_regressions, 0u);
}

TEST(CompareSnapshotsTest, ThroughputJudgedOnReciprocal) {
  const MetricsSnapshot baseline =
      Snapshot({Gauge("bench.x.epochs_per_sec", 400.0)});
  BenchCompareOptions options;
  options.timing_factor = 4.0;

  // Throughput fell to 1/5th: implied per-epoch time grew 5x > 4x.
  BenchCompareResult result = CompareSnapshots(
      baseline, Snapshot({Gauge("bench.x.epochs_per_sec", 80.0)}), options);
  EXPECT_EQ(result.num_regressions, 1u);

  // Throughput fell to 1/3rd: within the factor.
  result = CompareSnapshots(
      baseline, Snapshot({Gauge("bench.x.epochs_per_sec", 133.0)}), options);
  EXPECT_EQ(result.num_regressions, 0u);

  // Throughput doubled: fine.
  result = CompareSnapshots(
      baseline, Snapshot({Gauge("bench.x.epochs_per_sec", 800.0)}), options);
  EXPECT_EQ(result.num_regressions, 0u);
}

TEST(CompareSnapshotsTest, MemoryUsesToleranceAndAbsoluteFloor) {
  BenchCompareOptions options;
  options.memory_tolerance = 0.5;
  options.memory_floor_mb = 16.0;
  const MetricsSnapshot baseline =
      Snapshot({Gauge("bench.x.peak_rss_mb", 10.0)});

  // 10 -> 30 MiB: under 10 * 1.5 + 16 = 31, allocator noise territory.
  BenchCompareResult result = CompareSnapshots(
      baseline, Snapshot({Gauge("bench.x.peak_rss_mb", 30.0)}), options);
  EXPECT_EQ(result.num_regressions, 0u);

  // 10 -> 32 MiB: past the floor, a real leak signal.
  result = CompareSnapshots(
      baseline, Snapshot({Gauge("bench.x.peak_rss_mb", 32.0)}), options);
  EXPECT_EQ(result.num_regressions, 1u);
}

TEST(CompareSnapshotsTest, QualityGatesTightlyOnDecreaseOnly) {
  BenchCompareOptions options;
  options.quality_tolerance = 0.10;
  const MetricsSnapshot baseline =
      Snapshot({Gauge("bench.x.detection_ratio", 0.97)});

  // Small dip (a planted epoch tie-losing its screen slot): tolerated.
  BenchCompareResult result = CompareSnapshots(
      baseline, Snapshot({Gauge("bench.x.detection_ratio", 0.90)}), options);
  EXPECT_EQ(result.num_regressions, 0u);

  // Collapse: regression.
  result = CompareSnapshots(
      baseline, Snapshot({Gauge("bench.x.detection_ratio", 0.50)}), options);
  EXPECT_EQ(result.num_regressions, 1u);

  // Improvement: fine.
  result = CompareSnapshots(
      baseline, Snapshot({Gauge("bench.x.detection_ratio", 1.0)}), options);
  EXPECT_EQ(result.num_regressions, 0u);
}

TEST(CompareSnapshotsTest, InfoMetricsNeverGate) {
  const BenchCompareResult result = CompareSnapshots(
      Snapshot({Gauge("bench.x.epochs", 1200.0),
                Gauge("bench.x.g128.t8.speedup", 4.0)}),
      Snapshot({Gauge("bench.x.epochs", 200.0),
                Gauge("bench.x.g128.t8.speedup", 0.5)}),
      BenchCompareOptions{});
  EXPECT_EQ(result.deltas.size(), 2u);
  EXPECT_EQ(result.num_regressions, 0u);
}

TEST(CompareSnapshotsTest, OnlySharedBenchGaugesCompared) {
  MetricsSnapshot::Entry counter;
  counter.name = "bench.x.some_count";
  counter.type = MetricType::kCounter;
  counter.counter_value = 7;

  const MetricsSnapshot baseline = Snapshot({
      Gauge("bench.x.total_s", 1.0),
      Gauge("bench.x.g1024.t1.total_s", 2.0),  // Full-run-only scenario.
      Gauge("detector.aligned.stop_iteration", 9.0),  // Not bench.*.
      counter,                                        // Not a gauge.
  });
  const MetricsSnapshot current = Snapshot({
      Gauge("bench.x.total_s", 1.1),
      Gauge("bench.x.new_quantity_s", 0.5),  // Added since the snapshot.
  });

  const BenchCompareResult result =
      CompareSnapshots(baseline, current, BenchCompareOptions{});
  EXPECT_EQ(result.deltas.size(), 1u);
  EXPECT_EQ(result.deltas.front().name, "bench.x.total_s");
  ASSERT_EQ(result.baseline_only.size(), 1u);
  EXPECT_EQ(result.baseline_only.front(), "bench.x.g1024.t1.total_s");
  ASSERT_EQ(result.current_only.size(), 1u);
  EXPECT_EQ(result.current_only.front(), "bench.x.new_quantity_s");
  // A disjoint pair compares nothing — the CLI exits 3 on this.
  const BenchCompareResult disjoint = CompareSnapshots(
      Snapshot({Gauge("bench.a.x_s", 1.0)}),
      Snapshot({Gauge("bench.b.x_s", 1.0)}), BenchCompareOptions{});
  EXPECT_TRUE(disjoint.deltas.empty());
}

TEST(CompareSnapshotsTest, FormatResultNamesRegressions) {
  const BenchCompareResult result = CompareSnapshots(
      Snapshot({Gauge("bench.x.detection_ratio", 1.0)}),
      Snapshot({Gauge("bench.x.detection_ratio", 0.2)}),
      BenchCompareOptions{});
  const std::string text = FormatResult(result);
  EXPECT_NE(text.find("bench.x.detection_ratio"), std::string::npos);
  EXPECT_NE(text.find("REGRESSION"), std::string::npos);
  EXPECT_NE(text.find("FAIL: 1 of 1"), std::string::npos);
}

TEST(LoadSnapshotFileTest, RoundTripsExporterOutput) {
  const MetricsSnapshot snapshot = Snapshot({
      Gauge("bench.x.total_s", 1.25),
      Gauge("bench.x.detection_ratio", 0.97),
  });
  const std::string path =
      ::testing::TempDir() + "/bench_compare_roundtrip.json";
  {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out << SnapshotToJsonLines(snapshot);
  }
  MetricsSnapshot loaded;
  std::string error;
  ASSERT_TRUE(LoadSnapshotFile(path, &loaded, &error)) << error;
  const BenchCompareResult result =
      CompareSnapshots(snapshot, loaded, BenchCompareOptions{});
  EXPECT_EQ(result.deltas.size(), 2u);
  EXPECT_EQ(result.num_regressions, 0u);
  for (const MetricDelta& delta : result.deltas) {
    EXPECT_DOUBLE_EQ(delta.ratio, 1.0) << delta.name;
  }
  std::remove(path.c_str());

  MetricsSnapshot missing;
  EXPECT_FALSE(LoadSnapshotFile("/nonexistent/bench.json", &missing, &error));
  EXPECT_FALSE(error.empty());
}

}  // namespace
}  // namespace bench_compare
}  // namespace dcs
