#include "sketch/bitmap_sketch.h"

#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"

namespace dcs {
namespace {

Packet MakePacket(std::string payload) {
  Packet pkt;
  pkt.flow = FlowLabel{1, 2, 3, 4, 6};
  pkt.payload = std::move(payload);
  return pkt;
}

BitmapSketchOptions SmallOptions() {
  BitmapSketchOptions opts;
  opts.num_bits = 1 << 12;
  return opts;
}

TEST(BitmapSketchTest, EmptyPayloadSkipped) {
  BitmapSketch sketch(SmallOptions());
  EXPECT_FALSE(sketch.Update(MakePacket("")));
  EXPECT_EQ(sketch.packets_recorded(), 0u);
  EXPECT_EQ(sketch.bits().CountOnes(), 0u);
}

TEST(BitmapSketchTest, SetsExactlyOneBitPerDistinctPacket) {
  BitmapSketch sketch(SmallOptions());
  EXPECT_TRUE(sketch.Update(MakePacket("payload-a")));
  EXPECT_EQ(sketch.bits().CountOnes(), 1u);
  EXPECT_TRUE(sketch.Update(MakePacket("payload-b")));
  EXPECT_EQ(sketch.bits().CountOnes(), 2u);
}

TEST(BitmapSketchTest, SamePayloadSameBit) {
  BitmapSketch sketch(SmallOptions());
  sketch.Update(MakePacket("identical"));
  sketch.Update(MakePacket("identical"));
  EXPECT_EQ(sketch.bits().CountOnes(), 1u);
  EXPECT_EQ(sketch.packets_recorded(), 2u);
}

TEST(BitmapSketchTest, TwoSketchesAgreeOnSharedContent) {
  // The whole aligned design rests on this: the same payload sets the same
  // index at every router.
  BitmapSketch a(SmallOptions());
  BitmapSketch b(SmallOptions());
  a.Update(MakePacket("common content segment"));
  b.Update(MakePacket("common content segment"));
  EXPECT_EQ(a.bits().CommonOnes(b.bits()), 1u);
}

TEST(BitmapSketchTest, OnlyPrefixLenBytesMatter) {
  BitmapSketchOptions opts = SmallOptions();
  opts.prefix_len = 8;
  BitmapSketch sketch(opts);
  sketch.Update(MakePacket("12345678_tail_one"));
  sketch.Update(MakePacket("12345678_other_tail"));
  EXPECT_EQ(sketch.bits().CountOnes(), 1u);  // Same 8-byte prefix.
}

TEST(BitmapSketchTest, ResetClearsState) {
  BitmapSketch sketch(SmallOptions());
  sketch.Update(MakePacket("x"));
  sketch.Reset();
  EXPECT_EQ(sketch.bits().CountOnes(), 0u);
  EXPECT_EQ(sketch.packets_recorded(), 0u);
  EXPECT_FALSE(sketch.IsHalfFull());
}

TEST(BitmapSketchTest, HalfFullEpochCondition) {
  BitmapSketchOptions opts;
  opts.num_bits = 256;
  BitmapSketch sketch(opts);
  Rng rng(5);
  int packets = 0;
  while (!sketch.IsHalfFull() && packets < 10000) {
    std::string payload(16, '\0');
    for (char& c : payload) c = static_cast<char>(rng.UniformInt(256));
    sketch.Update(MakePacket(payload));
    ++packets;
  }
  EXPECT_TRUE(sketch.IsHalfFull());
  // Bloom-filter arithmetic: ~(ln 2) * 256 ~ 177 distinct packets reach
  // half-full; allow generous slack.
  EXPECT_GT(packets, 100);
  EXPECT_LT(packets, 400);
  EXPECT_GE(sketch.FillRatio(), 0.5);
}

TEST(BitmapSketchTest, FillRatioTracksLoad) {
  BitmapSketch sketch(SmallOptions());
  Rng rng(6);
  for (int i = 0; i < 1 << 11; ++i) {  // Insertions = num_bits / 2.
    std::string payload(12, '\0');
    for (char& c : payload) c = static_cast<char>(rng.UniformInt(256));
    sketch.Update(MakePacket(payload));
  }
  // Expected fill 1 - e^{-1/2} ~ 0.394.
  EXPECT_NEAR(sketch.FillRatio(), 0.394, 0.04);
}

TEST(BitmapSketchTest, UpdateBatchMatchesPerPacketUpdates) {
  // The batched path must be observationally identical to per-packet
  // Update: same bitmap, same recorded/skipped counters, same ones count —
  // including empty-payload skips interleaved mid-batch and batches that
  // straddle the internal chunk size.
  BitmapSketch batched(SmallOptions());
  BitmapSketch serial(SmallOptions());
  Rng rng(42);
  std::vector<Packet> packets;
  for (int i = 0; i < 300; ++i) {
    if (i % 17 == 0) {
      packets.push_back(MakePacket(""));
      continue;
    }
    std::string payload(16, '\0');
    for (char& c : payload) c = static_cast<char>(rng.UniformInt(256));
    packets.push_back(MakePacket(std::move(payload)));
  }
  const std::size_t recorded = batched.UpdateBatch(packets);
  for (const Packet& pkt : packets) serial.Update(pkt);
  EXPECT_EQ(recorded, serial.packets_recorded());
  EXPECT_EQ(batched.packets_recorded(), serial.packets_recorded());
  EXPECT_EQ(batched.packets_skipped(), serial.packets_skipped());
  EXPECT_TRUE(batched.bits() == serial.bits());
  EXPECT_EQ(batched.IsHalfFull(), serial.IsHalfFull());
}

TEST(BitmapSketchTest, UpdateBatchEmptySpanIsNoOp) {
  BitmapSketch sketch(SmallOptions());
  EXPECT_EQ(sketch.UpdateBatch({}), 0u);
  EXPECT_EQ(sketch.packets_recorded(), 0u);
  EXPECT_EQ(sketch.packets_skipped(), 0u);
}

TEST(BitmapSketchTest, DifferentSeedsDecorrelate) {
  BitmapSketchOptions opts_a = SmallOptions();
  BitmapSketchOptions opts_b = SmallOptions();
  opts_b.hash_seed = opts_a.hash_seed + 1;
  BitmapSketch a(opts_a);
  BitmapSketch b(opts_b);
  a.Update(MakePacket("same content"));
  b.Update(MakePacket("same content"));
  // With 4096 bits the chance of accidental agreement is ~1/4096.
  EXPECT_EQ(a.bits().CommonOnes(b.bits()), 0u);
}

}  // namespace
}  // namespace dcs
