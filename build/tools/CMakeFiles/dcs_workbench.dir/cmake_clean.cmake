file(REMOVE_RECURSE
  "CMakeFiles/dcs_workbench.dir/dcs_workbench.cc.o"
  "CMakeFiles/dcs_workbench.dir/dcs_workbench.cc.o.d"
  "dcs_workbench"
  "dcs_workbench.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dcs_workbench.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
