# Empty compiler generated dependencies file for dcs_workbench.
# This may be replaced when dependencies are built.
