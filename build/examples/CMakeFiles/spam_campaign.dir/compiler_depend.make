# Empty compiler generated dependencies file for spam_campaign.
# This may be replaced when dependencies are built.
