file(REMOVE_RECURSE
  "CMakeFiles/hot_object.dir/hot_object.cpp.o"
  "CMakeFiles/hot_object.dir/hot_object.cpp.o.d"
  "hot_object"
  "hot_object.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hot_object.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
