# Empty dependencies file for hot_object.
# This may be replaced when dependencies are built.
