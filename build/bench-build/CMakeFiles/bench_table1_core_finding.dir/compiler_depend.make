# Empty compiler generated dependencies file for bench_table1_core_finding.
# This may be replaced when dependencies are built.
