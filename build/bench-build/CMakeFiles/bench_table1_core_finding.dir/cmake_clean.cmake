file(REMOVE_RECURSE
  "../bench/bench_table1_core_finding"
  "../bench/bench_table1_core_finding.pdb"
  "CMakeFiles/bench_table1_core_finding.dir/bench_table1_core_finding.cc.o"
  "CMakeFiles/bench_table1_core_finding.dir/bench_table1_core_finding.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table1_core_finding.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
