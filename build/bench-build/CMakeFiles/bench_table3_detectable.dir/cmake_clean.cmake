file(REMOVE_RECURSE
  "../bench/bench_table3_detectable"
  "../bench/bench_table3_detectable.pdb"
  "CMakeFiles/bench_table3_detectable.dir/bench_table3_detectable.cc.o"
  "CMakeFiles/bench_table3_detectable.dir/bench_table3_detectable.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table3_detectable.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
