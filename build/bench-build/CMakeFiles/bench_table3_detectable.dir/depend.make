# Empty dependencies file for bench_table3_detectable.
# This may be replaced when dependencies are built.
