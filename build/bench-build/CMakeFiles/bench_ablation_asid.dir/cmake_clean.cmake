file(REMOVE_RECURSE
  "../bench/bench_ablation_asid"
  "../bench/bench_ablation_asid.pdb"
  "CMakeFiles/bench_ablation_asid.dir/bench_ablation_asid.cc.o"
  "CMakeFiles/bench_ablation_asid.dir/bench_ablation_asid.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_asid.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
