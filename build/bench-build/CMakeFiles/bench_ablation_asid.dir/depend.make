# Empty dependencies file for bench_ablation_asid.
# This may be replaced when dependencies are built.
