file(REMOVE_RECURSE
  "../bench/bench_fig13_er_test"
  "../bench/bench_fig13_er_test.pdb"
  "CMakeFiles/bench_fig13_er_test.dir/bench_fig13_er_test.cc.o"
  "CMakeFiles/bench_fig13_er_test.dir/bench_fig13_er_test.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig13_er_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
