# Empty compiler generated dependencies file for bench_fig13_er_test.
# This may be replaced when dependencies are built.
