# Empty dependencies file for bench_stress_trace.
# This may be replaced when dependencies are built.
