file(REMOVE_RECURSE
  "../bench/bench_stress_trace"
  "../bench/bench_stress_trace.pdb"
  "CMakeFiles/bench_stress_trace.dir/bench_stress_trace.cc.o"
  "CMakeFiles/bench_stress_trace.dir/bench_stress_trace.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_stress_trace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
