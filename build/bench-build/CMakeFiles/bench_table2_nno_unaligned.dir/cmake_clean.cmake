file(REMOVE_RECURSE
  "../bench/bench_table2_nno_unaligned"
  "../bench/bench_table2_nno_unaligned.pdb"
  "CMakeFiles/bench_table2_nno_unaligned.dir/bench_table2_nno_unaligned.cc.o"
  "CMakeFiles/bench_table2_nno_unaligned.dir/bench_table2_nno_unaligned.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table2_nno_unaligned.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
