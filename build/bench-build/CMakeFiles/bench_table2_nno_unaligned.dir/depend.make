# Empty dependencies file for bench_table2_nno_unaligned.
# This may be replaced when dependencies are built.
