# Empty compiler generated dependencies file for bench_fig07_weight_loss.
# This may be replaced when dependencies are built.
