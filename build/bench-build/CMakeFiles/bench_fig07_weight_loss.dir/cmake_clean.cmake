file(REMOVE_RECURSE
  "../bench/bench_fig07_weight_loss"
  "../bench/bench_fig07_weight_loss.pdb"
  "CMakeFiles/bench_fig07_weight_loss.dir/bench_fig07_weight_loss.cc.o"
  "CMakeFiles/bench_fig07_weight_loss.dir/bench_fig07_weight_loss.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig07_weight_loss.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
