file(REMOVE_RECURSE
  "../bench/bench_sketch_throughput"
  "../bench/bench_sketch_throughput.pdb"
  "CMakeFiles/bench_sketch_throughput.dir/bench_sketch_throughput.cc.o"
  "CMakeFiles/bench_sketch_throughput.dir/bench_sketch_throughput.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_sketch_throughput.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
