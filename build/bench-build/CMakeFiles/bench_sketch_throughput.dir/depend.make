# Empty dependencies file for bench_sketch_throughput.
# This may be replaced when dependencies are built.
