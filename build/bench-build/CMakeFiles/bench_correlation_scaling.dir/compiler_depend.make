# Empty compiler generated dependencies file for bench_correlation_scaling.
# This may be replaced when dependencies are built.
