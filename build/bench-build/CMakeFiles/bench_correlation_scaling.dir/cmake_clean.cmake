file(REMOVE_RECURSE
  "../bench/bench_correlation_scaling"
  "../bench/bench_correlation_scaling.pdb"
  "CMakeFiles/bench_correlation_scaling.dir/bench_correlation_scaling.cc.o"
  "CMakeFiles/bench_correlation_scaling.dir/bench_correlation_scaling.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_correlation_scaling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
