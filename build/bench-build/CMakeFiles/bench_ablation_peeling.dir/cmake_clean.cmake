file(REMOVE_RECURSE
  "../bench/bench_ablation_peeling"
  "../bench/bench_ablation_peeling.pdb"
  "CMakeFiles/bench_ablation_peeling.dir/bench_ablation_peeling.cc.o"
  "CMakeFiles/bench_ablation_peeling.dir/bench_ablation_peeling.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_peeling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
