# Empty compiler generated dependencies file for bench_ablation_peeling.
# This may be replaced when dependencies are built.
