file(REMOVE_RECURSE
  "../bench/bench_fig12_thresholds"
  "../bench/bench_fig12_thresholds.pdb"
  "CMakeFiles/bench_fig12_thresholds.dir/bench_fig12_thresholds.cc.o"
  "CMakeFiles/bench_fig12_thresholds.dir/bench_fig12_thresholds.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig12_thresholds.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
