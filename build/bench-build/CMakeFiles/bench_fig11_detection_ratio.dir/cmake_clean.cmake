file(REMOVE_RECURSE
  "../bench/bench_fig11_detection_ratio"
  "../bench/bench_fig11_detection_ratio.pdb"
  "CMakeFiles/bench_fig11_detection_ratio.dir/bench_fig11_detection_ratio.cc.o"
  "CMakeFiles/bench_fig11_detection_ratio.dir/bench_fig11_detection_ratio.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig11_detection_ratio.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
