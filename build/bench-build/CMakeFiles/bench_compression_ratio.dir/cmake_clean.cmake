file(REMOVE_RECURSE
  "../bench/bench_compression_ratio"
  "../bench/bench_compression_ratio.pdb"
  "CMakeFiles/bench_compression_ratio.dir/bench_compression_ratio.cc.o"
  "CMakeFiles/bench_compression_ratio.dir/bench_compression_ratio.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_compression_ratio.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
