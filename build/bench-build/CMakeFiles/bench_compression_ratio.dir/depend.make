# Empty dependencies file for bench_compression_ratio.
# This may be replaced when dependencies are built.
