
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/analysis/aligned_detector.cc" "src/CMakeFiles/dcs.dir/analysis/aligned_detector.cc.o" "gcc" "src/CMakeFiles/dcs.dir/analysis/aligned_detector.cc.o.d"
  "/root/repo/src/analysis/aligned_thresholds.cc" "src/CMakeFiles/dcs.dir/analysis/aligned_thresholds.cc.o" "gcc" "src/CMakeFiles/dcs.dir/analysis/aligned_thresholds.cc.o.d"
  "/root/repo/src/analysis/cluster_separation.cc" "src/CMakeFiles/dcs.dir/analysis/cluster_separation.cc.o" "gcc" "src/CMakeFiles/dcs.dir/analysis/cluster_separation.cc.o.d"
  "/root/repo/src/analysis/correlation.cc" "src/CMakeFiles/dcs.dir/analysis/correlation.cc.o" "gcc" "src/CMakeFiles/dcs.dir/analysis/correlation.cc.o.d"
  "/root/repo/src/analysis/er_test.cc" "src/CMakeFiles/dcs.dir/analysis/er_test.cc.o" "gcc" "src/CMakeFiles/dcs.dir/analysis/er_test.cc.o.d"
  "/root/repo/src/analysis/lambda_table.cc" "src/CMakeFiles/dcs.dir/analysis/lambda_table.cc.o" "gcc" "src/CMakeFiles/dcs.dir/analysis/lambda_table.cc.o.d"
  "/root/repo/src/analysis/synthetic_matrix.cc" "src/CMakeFiles/dcs.dir/analysis/synthetic_matrix.cc.o" "gcc" "src/CMakeFiles/dcs.dir/analysis/synthetic_matrix.cc.o.d"
  "/root/repo/src/analysis/unaligned_detector.cc" "src/CMakeFiles/dcs.dir/analysis/unaligned_detector.cc.o" "gcc" "src/CMakeFiles/dcs.dir/analysis/unaligned_detector.cc.o.d"
  "/root/repo/src/analysis/unaligned_graph_builder.cc" "src/CMakeFiles/dcs.dir/analysis/unaligned_graph_builder.cc.o" "gcc" "src/CMakeFiles/dcs.dir/analysis/unaligned_graph_builder.cc.o.d"
  "/root/repo/src/analysis/unaligned_model.cc" "src/CMakeFiles/dcs.dir/analysis/unaligned_model.cc.o" "gcc" "src/CMakeFiles/dcs.dir/analysis/unaligned_model.cc.o.d"
  "/root/repo/src/analysis/unaligned_thresholds.cc" "src/CMakeFiles/dcs.dir/analysis/unaligned_thresholds.cc.o" "gcc" "src/CMakeFiles/dcs.dir/analysis/unaligned_thresholds.cc.o.d"
  "/root/repo/src/analysis/weight_screen.cc" "src/CMakeFiles/dcs.dir/analysis/weight_screen.cc.o" "gcc" "src/CMakeFiles/dcs.dir/analysis/weight_screen.cc.o.d"
  "/root/repo/src/baseline/local_detector.cc" "src/CMakeFiles/dcs.dir/baseline/local_detector.cc.o" "gcc" "src/CMakeFiles/dcs.dir/baseline/local_detector.cc.o.d"
  "/root/repo/src/baseline/rabin.cc" "src/CMakeFiles/dcs.dir/baseline/rabin.cc.o" "gcc" "src/CMakeFiles/dcs.dir/baseline/rabin.cc.o.d"
  "/root/repo/src/baseline/raw_aggregation.cc" "src/CMakeFiles/dcs.dir/baseline/raw_aggregation.cc.o" "gcc" "src/CMakeFiles/dcs.dir/baseline/raw_aggregation.cc.o.d"
  "/root/repo/src/common/bit_matrix.cc" "src/CMakeFiles/dcs.dir/common/bit_matrix.cc.o" "gcc" "src/CMakeFiles/dcs.dir/common/bit_matrix.cc.o.d"
  "/root/repo/src/common/bit_vector.cc" "src/CMakeFiles/dcs.dir/common/bit_vector.cc.o" "gcc" "src/CMakeFiles/dcs.dir/common/bit_vector.cc.o.d"
  "/root/repo/src/common/config.cc" "src/CMakeFiles/dcs.dir/common/config.cc.o" "gcc" "src/CMakeFiles/dcs.dir/common/config.cc.o.d"
  "/root/repo/src/common/distributions.cc" "src/CMakeFiles/dcs.dir/common/distributions.cc.o" "gcc" "src/CMakeFiles/dcs.dir/common/distributions.cc.o.d"
  "/root/repo/src/common/hash.cc" "src/CMakeFiles/dcs.dir/common/hash.cc.o" "gcc" "src/CMakeFiles/dcs.dir/common/hash.cc.o.d"
  "/root/repo/src/common/histogram.cc" "src/CMakeFiles/dcs.dir/common/histogram.cc.o" "gcc" "src/CMakeFiles/dcs.dir/common/histogram.cc.o.d"
  "/root/repo/src/common/logging.cc" "src/CMakeFiles/dcs.dir/common/logging.cc.o" "gcc" "src/CMakeFiles/dcs.dir/common/logging.cc.o.d"
  "/root/repo/src/common/rng.cc" "src/CMakeFiles/dcs.dir/common/rng.cc.o" "gcc" "src/CMakeFiles/dcs.dir/common/rng.cc.o.d"
  "/root/repo/src/common/stats_math.cc" "src/CMakeFiles/dcs.dir/common/stats_math.cc.o" "gcc" "src/CMakeFiles/dcs.dir/common/stats_math.cc.o.d"
  "/root/repo/src/common/status.cc" "src/CMakeFiles/dcs.dir/common/status.cc.o" "gcc" "src/CMakeFiles/dcs.dir/common/status.cc.o.d"
  "/root/repo/src/common/table_printer.cc" "src/CMakeFiles/dcs.dir/common/table_printer.cc.o" "gcc" "src/CMakeFiles/dcs.dir/common/table_printer.cc.o.d"
  "/root/repo/src/common/thread_pool.cc" "src/CMakeFiles/dcs.dir/common/thread_pool.cc.o" "gcc" "src/CMakeFiles/dcs.dir/common/thread_pool.cc.o.d"
  "/root/repo/src/dcs/epoch_tracker.cc" "src/CMakeFiles/dcs.dir/dcs/epoch_tracker.cc.o" "gcc" "src/CMakeFiles/dcs.dir/dcs/epoch_tracker.cc.o.d"
  "/root/repo/src/dcs/monitor.cc" "src/CMakeFiles/dcs.dir/dcs/monitor.cc.o" "gcc" "src/CMakeFiles/dcs.dir/dcs/monitor.cc.o.d"
  "/root/repo/src/dcs/options.cc" "src/CMakeFiles/dcs.dir/dcs/options.cc.o" "gcc" "src/CMakeFiles/dcs.dir/dcs/options.cc.o.d"
  "/root/repo/src/dcs/report.cc" "src/CMakeFiles/dcs.dir/dcs/report.cc.o" "gcc" "src/CMakeFiles/dcs.dir/dcs/report.cc.o.d"
  "/root/repo/src/dcs/signature_filter.cc" "src/CMakeFiles/dcs.dir/dcs/signature_filter.cc.o" "gcc" "src/CMakeFiles/dcs.dir/dcs/signature_filter.cc.o.d"
  "/root/repo/src/graph/connected_components.cc" "src/CMakeFiles/dcs.dir/graph/connected_components.cc.o" "gcc" "src/CMakeFiles/dcs.dir/graph/connected_components.cc.o.d"
  "/root/repo/src/graph/core_decomposition.cc" "src/CMakeFiles/dcs.dir/graph/core_decomposition.cc.o" "gcc" "src/CMakeFiles/dcs.dir/graph/core_decomposition.cc.o.d"
  "/root/repo/src/graph/er_random.cc" "src/CMakeFiles/dcs.dir/graph/er_random.cc.o" "gcc" "src/CMakeFiles/dcs.dir/graph/er_random.cc.o.d"
  "/root/repo/src/graph/graph.cc" "src/CMakeFiles/dcs.dir/graph/graph.cc.o" "gcc" "src/CMakeFiles/dcs.dir/graph/graph.cc.o.d"
  "/root/repo/src/graph/union_find.cc" "src/CMakeFiles/dcs.dir/graph/union_find.cc.o" "gcc" "src/CMakeFiles/dcs.dir/graph/union_find.cc.o.d"
  "/root/repo/src/net/packet.cc" "src/CMakeFiles/dcs.dir/net/packet.cc.o" "gcc" "src/CMakeFiles/dcs.dir/net/packet.cc.o.d"
  "/root/repo/src/net/packetizer.cc" "src/CMakeFiles/dcs.dir/net/packetizer.cc.o" "gcc" "src/CMakeFiles/dcs.dir/net/packetizer.cc.o.d"
  "/root/repo/src/net/trace.cc" "src/CMakeFiles/dcs.dir/net/trace.cc.o" "gcc" "src/CMakeFiles/dcs.dir/net/trace.cc.o.d"
  "/root/repo/src/sketch/bitmap_sketch.cc" "src/CMakeFiles/dcs.dir/sketch/bitmap_sketch.cc.o" "gcc" "src/CMakeFiles/dcs.dir/sketch/bitmap_sketch.cc.o.d"
  "/root/repo/src/sketch/collector.cc" "src/CMakeFiles/dcs.dir/sketch/collector.cc.o" "gcc" "src/CMakeFiles/dcs.dir/sketch/collector.cc.o.d"
  "/root/repo/src/sketch/digest.cc" "src/CMakeFiles/dcs.dir/sketch/digest.cc.o" "gcc" "src/CMakeFiles/dcs.dir/sketch/digest.cc.o.d"
  "/root/repo/src/sketch/flow_split_sketch.cc" "src/CMakeFiles/dcs.dir/sketch/flow_split_sketch.cc.o" "gcc" "src/CMakeFiles/dcs.dir/sketch/flow_split_sketch.cc.o.d"
  "/root/repo/src/sketch/offset_sampling.cc" "src/CMakeFiles/dcs.dir/sketch/offset_sampling.cc.o" "gcc" "src/CMakeFiles/dcs.dir/sketch/offset_sampling.cc.o.d"
  "/root/repo/src/traffic/content_catalog.cc" "src/CMakeFiles/dcs.dir/traffic/content_catalog.cc.o" "gcc" "src/CMakeFiles/dcs.dir/traffic/content_catalog.cc.o.d"
  "/root/repo/src/traffic/flow_generator.cc" "src/CMakeFiles/dcs.dir/traffic/flow_generator.cc.o" "gcc" "src/CMakeFiles/dcs.dir/traffic/flow_generator.cc.o.d"
  "/root/repo/src/traffic/trace_synthesizer.cc" "src/CMakeFiles/dcs.dir/traffic/trace_synthesizer.cc.o" "gcc" "src/CMakeFiles/dcs.dir/traffic/trace_synthesizer.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
