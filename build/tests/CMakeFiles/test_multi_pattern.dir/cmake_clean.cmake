file(REMOVE_RECURSE
  "CMakeFiles/test_multi_pattern.dir/test_multi_pattern.cc.o"
  "CMakeFiles/test_multi_pattern.dir/test_multi_pattern.cc.o.d"
  "test_multi_pattern"
  "test_multi_pattern.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_multi_pattern.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
