# Empty compiler generated dependencies file for test_multi_pattern.
# This may be replaced when dependencies are built.
