file(REMOVE_RECURSE
  "CMakeFiles/test_bitmap_sketch.dir/test_bitmap_sketch.cc.o"
  "CMakeFiles/test_bitmap_sketch.dir/test_bitmap_sketch.cc.o.d"
  "test_bitmap_sketch"
  "test_bitmap_sketch.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_bitmap_sketch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
