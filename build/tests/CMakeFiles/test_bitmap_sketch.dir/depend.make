# Empty dependencies file for test_bitmap_sketch.
# This may be replaced when dependencies are built.
