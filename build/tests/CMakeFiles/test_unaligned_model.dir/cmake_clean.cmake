file(REMOVE_RECURSE
  "CMakeFiles/test_unaligned_model.dir/test_unaligned_model.cc.o"
  "CMakeFiles/test_unaligned_model.dir/test_unaligned_model.cc.o.d"
  "test_unaligned_model"
  "test_unaligned_model.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_unaligned_model.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
