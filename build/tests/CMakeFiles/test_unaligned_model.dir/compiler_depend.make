# Empty compiler generated dependencies file for test_unaligned_model.
# This may be replaced when dependencies are built.
