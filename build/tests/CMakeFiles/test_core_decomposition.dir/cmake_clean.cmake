file(REMOVE_RECURSE
  "CMakeFiles/test_core_decomposition.dir/test_core_decomposition.cc.o"
  "CMakeFiles/test_core_decomposition.dir/test_core_decomposition.cc.o.d"
  "test_core_decomposition"
  "test_core_decomposition.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_core_decomposition.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
