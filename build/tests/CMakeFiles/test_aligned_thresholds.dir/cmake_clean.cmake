file(REMOVE_RECURSE
  "CMakeFiles/test_aligned_thresholds.dir/test_aligned_thresholds.cc.o"
  "CMakeFiles/test_aligned_thresholds.dir/test_aligned_thresholds.cc.o.d"
  "test_aligned_thresholds"
  "test_aligned_thresholds.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_aligned_thresholds.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
