# Empty dependencies file for test_aligned_thresholds.
# This may be replaced when dependencies are built.
