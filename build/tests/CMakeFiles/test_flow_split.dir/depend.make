# Empty dependencies file for test_flow_split.
# This may be replaced when dependencies are built.
