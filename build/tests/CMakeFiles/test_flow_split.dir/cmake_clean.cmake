file(REMOVE_RECURSE
  "CMakeFiles/test_flow_split.dir/test_flow_split.cc.o"
  "CMakeFiles/test_flow_split.dir/test_flow_split.cc.o.d"
  "test_flow_split"
  "test_flow_split.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_flow_split.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
