file(REMOVE_RECURSE
  "CMakeFiles/test_synthetic_matrix.dir/test_synthetic_matrix.cc.o"
  "CMakeFiles/test_synthetic_matrix.dir/test_synthetic_matrix.cc.o.d"
  "test_synthetic_matrix"
  "test_synthetic_matrix.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_synthetic_matrix.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
