# Empty compiler generated dependencies file for test_synthetic_matrix.
# This may be replaced when dependencies are built.
