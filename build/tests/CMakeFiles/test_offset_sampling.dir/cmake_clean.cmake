file(REMOVE_RECURSE
  "CMakeFiles/test_offset_sampling.dir/test_offset_sampling.cc.o"
  "CMakeFiles/test_offset_sampling.dir/test_offset_sampling.cc.o.d"
  "test_offset_sampling"
  "test_offset_sampling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_offset_sampling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
