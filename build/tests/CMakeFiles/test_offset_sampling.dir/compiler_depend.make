# Empty compiler generated dependencies file for test_offset_sampling.
# This may be replaced when dependencies are built.
