file(REMOVE_RECURSE
  "CMakeFiles/test_connected_components.dir/test_connected_components.cc.o"
  "CMakeFiles/test_connected_components.dir/test_connected_components.cc.o.d"
  "test_connected_components"
  "test_connected_components.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_connected_components.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
