# Empty dependencies file for test_weight_screen.
# This may be replaced when dependencies are built.
