file(REMOVE_RECURSE
  "CMakeFiles/test_weight_screen.dir/test_weight_screen.cc.o"
  "CMakeFiles/test_weight_screen.dir/test_weight_screen.cc.o.d"
  "test_weight_screen"
  "test_weight_screen.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_weight_screen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
