file(REMOVE_RECURSE
  "CMakeFiles/test_signature_filter.dir/test_signature_filter.cc.o"
  "CMakeFiles/test_signature_filter.dir/test_signature_filter.cc.o.d"
  "test_signature_filter"
  "test_signature_filter.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_signature_filter.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
