# Empty dependencies file for test_signature_filter.
# This may be replaced when dependencies are built.
