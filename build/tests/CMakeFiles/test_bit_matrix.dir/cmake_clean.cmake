file(REMOVE_RECURSE
  "CMakeFiles/test_bit_matrix.dir/test_bit_matrix.cc.o"
  "CMakeFiles/test_bit_matrix.dir/test_bit_matrix.cc.o.d"
  "test_bit_matrix"
  "test_bit_matrix.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_bit_matrix.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
