# Empty compiler generated dependencies file for test_bit_matrix.
# This may be replaced when dependencies are built.
