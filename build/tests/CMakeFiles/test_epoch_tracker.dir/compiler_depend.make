# Empty compiler generated dependencies file for test_epoch_tracker.
# This may be replaced when dependencies are built.
