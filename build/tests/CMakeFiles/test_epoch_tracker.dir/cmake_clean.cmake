file(REMOVE_RECURSE
  "CMakeFiles/test_epoch_tracker.dir/test_epoch_tracker.cc.o"
  "CMakeFiles/test_epoch_tracker.dir/test_epoch_tracker.cc.o.d"
  "test_epoch_tracker"
  "test_epoch_tracker.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_epoch_tracker.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
