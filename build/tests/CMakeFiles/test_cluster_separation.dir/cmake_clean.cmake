file(REMOVE_RECURSE
  "CMakeFiles/test_cluster_separation.dir/test_cluster_separation.cc.o"
  "CMakeFiles/test_cluster_separation.dir/test_cluster_separation.cc.o.d"
  "test_cluster_separation"
  "test_cluster_separation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_cluster_separation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
