# Empty dependencies file for test_cluster_separation.
# This may be replaced when dependencies are built.
