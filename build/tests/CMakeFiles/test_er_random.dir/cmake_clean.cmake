file(REMOVE_RECURSE
  "CMakeFiles/test_er_random.dir/test_er_random.cc.o"
  "CMakeFiles/test_er_random.dir/test_er_random.cc.o.d"
  "test_er_random"
  "test_er_random.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_er_random.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
