# Empty compiler generated dependencies file for test_er_random.
# This may be replaced when dependencies are built.
