file(REMOVE_RECURSE
  "CMakeFiles/test_unaligned_thresholds.dir/test_unaligned_thresholds.cc.o"
  "CMakeFiles/test_unaligned_thresholds.dir/test_unaligned_thresholds.cc.o.d"
  "test_unaligned_thresholds"
  "test_unaligned_thresholds.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_unaligned_thresholds.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
