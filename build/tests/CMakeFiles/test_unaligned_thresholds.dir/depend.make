# Empty dependencies file for test_unaligned_thresholds.
# This may be replaced when dependencies are built.
