# Empty compiler generated dependencies file for test_rabin.
# This may be replaced when dependencies are built.
