file(REMOVE_RECURSE
  "CMakeFiles/test_rabin.dir/test_rabin.cc.o"
  "CMakeFiles/test_rabin.dir/test_rabin.cc.o.d"
  "test_rabin"
  "test_rabin.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_rabin.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
