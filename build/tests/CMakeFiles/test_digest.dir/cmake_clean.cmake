file(REMOVE_RECURSE
  "CMakeFiles/test_digest.dir/test_digest.cc.o"
  "CMakeFiles/test_digest.dir/test_digest.cc.o.d"
  "test_digest"
  "test_digest.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_digest.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
