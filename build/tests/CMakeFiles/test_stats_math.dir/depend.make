# Empty dependencies file for test_stats_math.
# This may be replaced when dependencies are built.
