file(REMOVE_RECURSE
  "CMakeFiles/test_stats_math.dir/test_stats_math.cc.o"
  "CMakeFiles/test_stats_math.dir/test_stats_math.cc.o.d"
  "test_stats_math"
  "test_stats_math.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_stats_math.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
