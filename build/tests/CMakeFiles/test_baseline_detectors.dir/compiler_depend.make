# Empty compiler generated dependencies file for test_baseline_detectors.
# This may be replaced when dependencies are built.
