file(REMOVE_RECURSE
  "CMakeFiles/test_baseline_detectors.dir/test_baseline_detectors.cc.o"
  "CMakeFiles/test_baseline_detectors.dir/test_baseline_detectors.cc.o.d"
  "test_baseline_detectors"
  "test_baseline_detectors.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_baseline_detectors.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
