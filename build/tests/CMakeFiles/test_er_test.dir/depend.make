# Empty dependencies file for test_er_test.
# This may be replaced when dependencies are built.
