file(REMOVE_RECURSE
  "CMakeFiles/test_er_test.dir/test_er_test.cc.o"
  "CMakeFiles/test_er_test.dir/test_er_test.cc.o.d"
  "test_er_test"
  "test_er_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_er_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
