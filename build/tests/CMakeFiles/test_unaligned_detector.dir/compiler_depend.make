# Empty compiler generated dependencies file for test_unaligned_detector.
# This may be replaced when dependencies are built.
