file(REMOVE_RECURSE
  "CMakeFiles/test_unaligned_detector.dir/test_unaligned_detector.cc.o"
  "CMakeFiles/test_unaligned_detector.dir/test_unaligned_detector.cc.o.d"
  "test_unaligned_detector"
  "test_unaligned_detector.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_unaligned_detector.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
