file(REMOVE_RECURSE
  "CMakeFiles/test_lambda_table.dir/test_lambda_table.cc.o"
  "CMakeFiles/test_lambda_table.dir/test_lambda_table.cc.o.d"
  "test_lambda_table"
  "test_lambda_table.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_lambda_table.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
