file(REMOVE_RECURSE
  "CMakeFiles/test_packetizer.dir/test_packetizer.cc.o"
  "CMakeFiles/test_packetizer.dir/test_packetizer.cc.o.d"
  "test_packetizer"
  "test_packetizer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_packetizer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
