file(REMOVE_RECURSE
  "CMakeFiles/test_aligned_detector.dir/test_aligned_detector.cc.o"
  "CMakeFiles/test_aligned_detector.dir/test_aligned_detector.cc.o.d"
  "test_aligned_detector"
  "test_aligned_detector.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_aligned_detector.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
