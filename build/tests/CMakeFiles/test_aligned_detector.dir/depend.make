# Empty dependencies file for test_aligned_detector.
# This may be replaced when dependencies are built.
