file(REMOVE_RECURSE
  "CMakeFiles/test_unaligned_graph_builder.dir/test_unaligned_graph_builder.cc.o"
  "CMakeFiles/test_unaligned_graph_builder.dir/test_unaligned_graph_builder.cc.o.d"
  "test_unaligned_graph_builder"
  "test_unaligned_graph_builder.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_unaligned_graph_builder.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
