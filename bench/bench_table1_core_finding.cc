// Table I: average size / false negatives / false positives of the cores
// found by the greedy min-degree algorithm (Fig 10) plus the step-3
// expansion, at the paper's full scale: n = 102,400 vertices, core-graph
// null edge probability p1' = 0.8e-4, content sizes g in {100, 110, 120}
// with the n1 grid of the paper's rows.

#include <algorithm>
#include <cstdio>
#include <iostream>
#include <vector>

#include "analysis/lambda_table.h"
#include "analysis/unaligned_detector.h"
#include "analysis/unaligned_model.h"
#include "bench_util.h"
#include "common/rng.h"
#include "common/table_printer.h"
#include "graph/er_random.h"

int main() {
  using namespace dcs;
  const BenchScale scale = BenchScaleFromEnv();
  bench::Banner("Table I", "average core size found by the greedy algorithm",
                scale);

  const std::size_t n = 102'400;
  const double p1 = 0.8e-4;  // The paper's denser core-finding graph G'.
  const int trials = bench::Trials(scale, 5, 25);

  const UnalignedSignalModel model{UnalignedModelOptions{}};
  const double p_star = LambdaTable::PStarFromEdgeProb(p1, 10);

  struct Row {
    std::size_t g;
    std::vector<std::size_t> n1_values;
  };
  // The paper's own n1 grid per content size.
  const std::vector<Row> rows = {{100, {125, 144, 165}},
                                 {110, {67, 77, 89}},
                                 {120, {44, 51, 57}}};

  Rng rng(bench::EnvSeed("DCS_SEED", 17));

  const double t0 = bench::NowSeconds();
  TablePrinter table({"packets g", "p2(g)", "n1", "avg detected",
                      "avg false negative", "avg false positive"});
  for (const Row& row : rows) {
    const double p2 = model.PatternEdgeProb(row.g, p_star, p1);
    for (std::size_t n1 : row.n1_values) {
      // beta and d are configured per operating point by Monte-Carlo in the
      // paper; here beta targets half the pattern and d sits at half the
      // expected pattern-to-core connectivity (>= 1), which reproduces that
      // tuning.
      UnalignedDetectorOptions detector;
      detector.beta = n1 / 2;
      detector.expand_min_edges = std::max<std::size_t>(
          1, static_cast<std::size_t>(0.5 * p2 * static_cast<double>(detector.beta)));
      detector.second_beta = std::max<std::size_t>(4, detector.beta / 2);
      double detected_sum = 0.0;
      double fn_sum = 0.0;
      double fp_sum = 0.0;
      for (int t = 0; t < trials; ++t) {
        const PlantedGraph planted = SamplePlantedGraph(n, p1, n1, p2, &rng);
        const UnalignedDetection detection =
            DetectUnalignedPattern(planted.graph, detector);
        const DetectionScore score =
            ScoreDetection(detection.detected, planted.pattern_vertices);
        detected_sum += static_cast<double>(score.true_positives);
        fn_sum += score.false_negative;
        fp_sum += score.false_positive;
      }
      table.AddRow({std::to_string(row.g), TablePrinter::Fmt(p2, 4),
                    std::to_string(n1),
                    TablePrinter::Fmt(detected_sum / trials, 1),
                    TablePrinter::Fmt(fn_sum / trials, 3),
                    TablePrinter::Fmt(fp_sum / trials, 3)});
    }
  }
  std::printf("%d trials per cell (paper rows: g=100 n1=125 -> core 65.3, "
              "FN 0.485, FP 0.014, etc.):\n", trials);
  table.Print(std::cout);
  std::printf("elapsed: %.1f s\n", bench::NowSeconds() - t0);
  return 0;
}
