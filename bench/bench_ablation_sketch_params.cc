// Design-choice ablations for the unaligned sketch (Section IV-A):
//  * offsets per array k — match probability grows ~k^2/536, so doubling k
//    quadruples the chance two routers align on a shared content;
//  * flow-split group count at a fixed total bit budget — more groups mean
//    smaller arrays and a stronger per-array signal (the "magnifying signal
//    strength" argument), at the price of more rows for the analysis.
// Both sweeps report the model-derived q(g), pattern edge probability p2,
// and the minimum statistically-meaningful cluster size they induce.

#include <cstdio>
#include <iostream>

#include "analysis/lambda_table.h"
#include "analysis/unaligned_model.h"
#include "analysis/unaligned_thresholds.h"
#include "bench_util.h"
#include "common/table_printer.h"

int main() {
  using namespace dcs;
  const BenchScale scale = BenchScaleFromEnv();
  bench::Banner("Sketch ablations",
                "offset count k and flow-split group count", scale);

  const std::size_t g = 100;  // Content size for all rows.
  UnalignedNnoOptions nno;
  nno.num_vertices = 102'400;

  // --- Sweep 1: offsets per array (group geometry fixed at 1024 bits).
  {
    TablePrinter table({"offsets k", "P[offset match]", "q(100)",
                        "p2(100) at p1'=0.8e-4", "min cluster m"});
    for (std::size_t k : {3u, 5u, 10u, 20u}) {
      UnalignedModelOptions opts;
      opts.num_offsets = k;
      const UnalignedSignalModel model(opts);
      const double p1 = 0.8e-4;
      const double p_star = LambdaTable::PStarFromEdgeProb(p1, k);
      const double q = model.MatchExceedProb(g, p_star);
      const double p2 = model.PatternEdgeProb(g, p_star, p1);
      const UnalignedNnoResult m = MinClusterSizeForContent(model, g, k, nno);
      table.AddRow({std::to_string(k),
                    TablePrinter::Fmt(model.p_offset_match(), 4),
                    TablePrinter::Fmt(q, 3), TablePrinter::Fmt(p2, 4),
                    m.min_cluster_size > 0
                        ? std::to_string(m.min_cluster_size)
                        : "infeasible"});
    }
    std::printf("offsets-per-array sweep (k^2 amplification; the paper "
                "fixes k = 10):\n");
    table.Print(std::cout);
  }

  // --- Sweep 2: group count at a fixed 131,072-bit budget and fixed
  //     50,000 background insertions per link epoch.
  {
    TablePrinter table({"groups", "array bits", "fill", "q(100)",
                        "p2(100)", "min cluster m"});
    const double total_insertions = 50'000.0;
    for (std::size_t groups : {16u, 32u, 128u, 512u}) {
      UnalignedModelOptions opts;
      opts.array_bits = (128u * 1024u) / groups / 10u * 10u;  // Budget split.
      opts.array_bits = (1u << 17) / groups;
      opts.background_insertions =
          total_insertions / static_cast<double>(groups);
      const UnalignedSignalModel model(opts);
      const double p1 = 0.8e-4;
      const double p_star =
          LambdaTable::PStarFromEdgeProb(p1, opts.num_offsets);
      const double q = model.MatchExceedProb(g, p_star);
      const double p2 = model.PatternEdgeProb(g, p_star, p1);
      const UnalignedNnoResult m =
          MinClusterSizeForContent(model, g, opts.num_offsets, nno);
      table.AddRow({std::to_string(groups), std::to_string(opts.array_bits),
                    TablePrinter::Fmt(model.background_row_ones() /
                                          static_cast<double>(opts.array_bits),
                                      3),
                    TablePrinter::Fmt(q, 3), TablePrinter::Fmt(p2, 4),
                    m.min_cluster_size > 0
                        ? std::to_string(m.min_cluster_size)
                        : "infeasible"});
    }
    std::printf("\nflow-split sweep (fixed 2^17-bit budget; the paper picks "
                "128 x 1024):\n");
    table.Print(std::cout);
    std::printf(
        "\nFewer, larger arrays dilute the per-array signal (the paper's "
        "'100 common 1s\nbetween two 131,072-bit arrays is too weak'); many "
        "tiny arrays saturate.\n");
  }
  return 0;
}
