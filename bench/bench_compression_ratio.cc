// Section II-B claim: digests are three orders of magnitude smaller than
// the raw traffic they summarize. Measures the actual encoded digest size
// against the on-the-wire bytes for both sketch families across epoch
// lengths, plus what raw aggregation would have shipped.

#include <cstdio>
#include <iostream>

#include "bench_util.h"
#include "common/rng.h"
#include "common/table_printer.h"
#include "sketch/collector.h"
#include "traffic/flow_generator.h"

int main() {
  using namespace dcs;
  const BenchScale scale = BenchScaleFromEnv();
  bench::Banner("Digest reduction", "raw traffic vs shipped digest bytes",
                scale);

  const std::size_t packets =
      scale == BenchScale::kPaper ? 400'000 : 60'000;

  Rng rng(bench::EnvSeed("DCS_SEED", 23));
  BackgroundTrafficOptions traffic;
  FlowGenerator generator(traffic, &rng);
  PacketTrace trace;
  const double t0 = bench::NowSeconds();
  generator.Generate(packets, &trace);
  const auto epochs = trace.SplitIntoEpochs(trace.size());

  TablePrinter table({"sketch", "raw MB", "digest KB", "reduction factor"});

  {
    BitmapSketchOptions opts;  // 4 Mbit, the paper's OC-48 sizing.
    AlignedCollector collector(0, opts);
    const Digest digest = collector.ProcessEpoch(epochs[0]);
    table.AddRow({"aligned bitmap (4 Mbit)",
                  TablePrinter::Fmt(static_cast<double>(digest.raw_bytes_covered) / 1e6, 1),
                  TablePrinter::Fmt(static_cast<double>(digest.EncodedSizeBytes()) / 1e3,
                                  1),
                  TablePrinter::Fmt(digest.CompressionFactor(), 0)});
  }
  {
    FlowSplitOptions opts;  // 128 groups x 10 arrays x 1024 bits.
    Rng offsets(7);
    UnalignedCollector collector(0, opts, &offsets);
    const Digest digest = collector.ProcessEpoch(epochs[0]);
    table.AddRow({"unaligned flow-split (128x10x1024)",
                  TablePrinter::Fmt(static_cast<double>(digest.raw_bytes_covered) / 1e6, 1),
                  TablePrinter::Fmt(static_cast<double>(digest.EncodedSizeBytes()) / 1e3,
                                  1),
                  TablePrinter::Fmt(digest.CompressionFactor(), 0)});
  }
  table.AddRow({"raw aggregation (strawman)",
                TablePrinter::Fmt(static_cast<double>(trace.TotalWireBytes()) / 1e6, 1),
                TablePrinter::Fmt(static_cast<double>(trace.TotalWireBytes()) / 1e3, 1), "1"});

  std::printf("%zu-packet epoch:\n", trace.size());
  table.Print(std::cout);
  std::printf(
      "\nAt the paper's OC-48 full rate (2.4M packets/s, ~1000 bit packets)\n"
      "a 4 Mbit bitmap per second is a %.0fx reduction — the claimed three\n"
      "orders of magnitude.\n",
      2.4e6 * 125.0 / (4e6 / 8));
  std::printf("elapsed: %.1f s\n", bench::NowSeconds() - t0);
  return 0;
}
