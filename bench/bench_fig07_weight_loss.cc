// Fig 7: weight of the heaviest b'-product vs iteration for a 1000 x 4M
// matrix with a planted 100 x 30 pattern, S1 = the 4,000 heaviest columns.
// The curve dives exponentially while noise rows are zeroed out, flattens
// while the product absorbs pattern columns, and dives again once they are
// exhausted; the termination procedure stops right around the number of
// pattern columns that survived the screen (15 in the paper's instance).

#include <cstdio>

#include "analysis/aligned_detector.h"
#include "analysis/synthetic_matrix.h"
#include "bench_util.h"
#include "common/rng.h"
#include "common/table_printer.h"

#include <iostream>

int main() {
  using namespace dcs;
  const BenchScale scale = BenchScaleFromEnv();
  bench::Banner("Fig 7", "weight-loss trajectory of the greedy k-product search",
                scale);

  SyntheticAlignedOptions matrix_opts;
  matrix_opts.m = 1000;
  matrix_opts.n = 4u << 20;
  matrix_opts.n_prime = 4000;
  matrix_opts.pattern_rows = 100;
  matrix_opts.pattern_cols = 30;
  if (scale != BenchScale::kPaper) {
    // Same geometry at one quarter the screen width: the three-phase shape
    // is identical and the run completes in seconds.
    matrix_opts.n_prime = 2000;
  }

  AlignedDetectorOptions detector_opts;
  detector_opts.first_iteration_hopefuls = matrix_opts.n_prime;
  detector_opts.hopefuls = 1024;
  detector_opts.max_iterations = 26;
  detector_opts.record_full_trajectory = true;

  Rng rng(bench::EnvSeed("DCS_SEED", 7));
  const double t0 = bench::NowSeconds();
  const SyntheticScreened instance =
      SampleScreenedAligned(matrix_opts, &rng);
  std::printf("planted 100 x 30 pattern; %zu pattern columns survived the "
              "heaviest-%zu screen\n",
              instance.pattern_columns_in_screen, matrix_opts.n_prime);

  AlignedDetector detector(detector_opts);
  const AlignedDetection detection = detector.Detect(instance.screened);
  const double elapsed = bench::NowSeconds() - t0;

  TablePrinter table({"iteration b'", "heaviest b'-product weight",
                      "loss ratio vs previous"});
  for (std::size_t i = 0; i < detection.weight_trajectory.size(); ++i) {
    const std::size_t iteration = i + 2;
    std::string ratio = "-";
    if (i > 0 && detection.weight_trajectory[i - 1] > 0) {
      ratio = TablePrinter::Fmt(
          static_cast<double>(detection.weight_trajectory[i]) /
              static_cast<double>(detection.weight_trajectory[i - 1]),
          3);
    }
    table.AddRow({std::to_string(iteration),
                  std::to_string(detection.weight_trajectory[i]), ratio});
  }
  table.Print(std::cout);
  std::printf("\ntermination procedure stopped at iteration %zu "
              "(pattern columns in screen: %zu); pattern %s\n",
              detection.stop_iteration, instance.pattern_columns_in_screen,
              detection.pattern_found ? "FOUND" : "not found");
  std::printf("elapsed: %.1f s\n", elapsed);
  return 0;
}
