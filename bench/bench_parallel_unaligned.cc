// Section IV-D: strong-scaling of the unaligned analysis pipeline. Times
// BuildCorrelationGraph (row weights, lambda calibration, pair scan) and
// DetectUnalignedPattern (min-degree peel, survivor expansion, second
// core) — all sharded on the ThreadPool — at 1/2/4/8 threads against the
// serial engine, and asserts the graph edges and the detection are
// bit-identical before reporting a speedup (a fast wrong answer would be
// worthless).
//
// Flags:
//   --smoke        128-group scenario (the CI scalar-kernels pass).
//   --out <path>   Where to write the machine-readable results as JSON
//                  lines via the obs exporter (default
//                  BENCH_parallel_unaligned.json in the working directory).

#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "analysis/lambda_table.h"
#include "analysis/unaligned_detector.h"
#include "analysis/unaligned_graph_builder.h"
#include "bench_util.h"
#include "common/bit_matrix.h"
#include "common/rng.h"
#include "common/table_printer.h"
#include "common/thread_pool.h"
#include "obs/exporter.h"
#include "obs/metrics.h"

namespace {

// Group-major matrix of `groups` x `arrays` rows: ~1/4-full random rows
// (two ANDed random words per word) with a planted cluster — `planted`
// groups sharing `signal` common indices in their first array, the paper's
// common-content model at measurement scale.
dcs::BitMatrix PlantedGroupMatrix(std::size_t groups, std::size_t arrays,
                                  std::size_t bits, std::size_t planted,
                                  std::size_t signal, dcs::Rng* rng) {
  dcs::BitMatrix matrix(groups * arrays, bits);
  for (std::size_t r = 0; r < matrix.rows(); ++r) {
    dcs::BitVector& row = matrix.row(r);
    std::uint64_t* words = row.mutable_words();
    for (std::size_t w = 0; w < row.num_words(); ++w) {
      words[w] = rng->Next() & rng->Next();
    }
    if (bits % 64 != 0) {
      words[row.num_words() - 1] &= (1ULL << (bits % 64)) - 1;
    }
  }
  const std::size_t stride = groups / planted;
  for (std::size_t k = 0; k < planted; ++k) {
    const std::size_t row = (k * stride) * arrays;
    for (std::size_t s = 0; s < signal; ++s) {
      matrix.Set(row, (s * 797 + 31) % bits);  // Scattered shared content.
    }
  }
  return matrix;
}

bool SameDetection(const dcs::UnalignedDetection& a,
                   const dcs::UnalignedDetection& b) {
  return a.core == b.core && a.second_core == b.second_core &&
         a.detected == b.detected;
}

// One gauge per measured quantity, named so the JSON is self-describing:
// bench.parallel_unaligned.g<groups>.t<threads>.<quantity>.
void RecordGauge(std::size_t groups, const std::string& threads,
                 const char* quantity, double value) {
  const std::string name = "bench.parallel_unaligned.g" +
                           std::to_string(groups) + ".t" + threads + "." +
                           quantity;
  dcs::ObsGauge(name).Set(value);
}

}  // namespace

int main(int argc, char** argv) {
  using namespace dcs;
  bool smoke = false;
  std::string out_path = "BENCH_parallel_unaligned.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    } else if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
      out_path = argv[++i];
    } else {
      std::printf("usage: %s [--smoke] [--out <path>]\n", argv[0]);
      return std::strcmp(argv[i], "--help") == 0 ? 0 : 2;
    }
  }

  const BenchScale scale = BenchScaleFromEnv();
  bench::Banner("Section IV-D", "unaligned-analysis strong scaling", scale);

  // Full runs include the smoke scenario (128 groups) so a committed full
  // snapshot and a CI --smoke run share metric names for tools/bench_compare.
  const std::vector<std::size_t> group_counts =
      smoke ? std::vector<std::size_t>{128}
            : (scale == BenchScale::kPaper
                   ? std::vector<std::size_t>{128, 1024, 2048}
                   : std::vector<std::size_t>{128, 1024});
  const std::size_t arrays = 4;
  const std::size_t bits = 1024;
  const std::vector<std::size_t> thread_counts = {1, 2, 4, 8};

  MetricsRegistry::Global().set_enabled(true);

  Rng rng(bench::EnvSeed("DCS_SEED", 43));
  TablePrinter table(
      {"groups", "threads", "graph s", "detect s", "total s", "speedup"});
  for (std::size_t groups : group_counts) {
    const std::size_t planted = groups / 16;
    const BitMatrix matrix =
        PlantedGroupMatrix(groups, arrays, bits, planted, 160, &rng);

    // The pipeline's core-graph calibration: p* from the null edge
    // probability 8.2/n (Section IV-B).
    const double p_star = LambdaTable::PStarFromEdgeProb(
        8.2 / static_cast<double>(groups), arrays);
    GraphBuilderOptions builder;
    builder.arrays_per_group = arrays;
    UnalignedDetectorOptions detector;
    detector.beta = planted < 8 ? planted : planted - 4;
    detector.expand_min_edges = 2;

    const LambdaTable serial_lambda(bits, p_star);
    double t = bench::NowSeconds();
    const Graph reference_graph =
        BuildCorrelationGraph(matrix, serial_lambda, builder);
    const double serial_graph_s = bench::NowSeconds() - t;
    t = bench::NowSeconds();
    const UnalignedDetection reference =
        DetectUnalignedPattern(reference_graph, detector);
    const double serial_detect_s = bench::NowSeconds() - t;
    const double serial_total_s = serial_graph_s + serial_detect_s;
    if (reference.core.size() != detector.beta) {
      std::fprintf(stderr, "FATAL: serial core has %zu vertices, want %zu\n",
                   reference.core.size(), detector.beta);
      return 1;
    }
    table.AddRow({std::to_string(groups), "serial",
                  TablePrinter::Fmt(serial_graph_s, 3),
                  TablePrinter::Fmt(serial_detect_s, 3),
                  TablePrinter::Fmt(serial_total_s, 3), "1.00"});
    RecordGauge(groups, "serial", "graph_s", serial_graph_s);
    RecordGauge(groups, "serial", "detect_s", serial_detect_s);
    RecordGauge(groups, "serial", "total_s", serial_total_s);

    for (std::size_t threads : thread_counts) {
      ThreadPool pool(threads);
      GraphBuilderOptions pooled_builder = builder;
      pooled_builder.scan.pool = &pool;
      // A fresh table per run: calibration cost is part of the measurement.
      const LambdaTable lambda(bits, p_star);
      t = bench::NowSeconds();
      const Graph graph = BuildCorrelationGraph(matrix, lambda, pooled_builder);
      const double graph_s = bench::NowSeconds() - t;
      t = bench::NowSeconds();
      const UnalignedDetection detection =
          DetectUnalignedPattern(graph, detector, AnalysisContext{&pool});
      const double detect_s = bench::NowSeconds() - t;
      const double total_s = graph_s + detect_s;
      if (graph.edges() != reference_graph.edges()) {
        std::fprintf(stderr,
                     "FATAL: graph diverged at %zu threads, groups=%zu\n",
                     threads, groups);
        return 1;
      }
      if (!SameDetection(reference, detection)) {
        std::fprintf(stderr,
                     "FATAL: detection diverged at %zu threads, groups=%zu\n",
                     threads, groups);
        return 1;
      }
      const double speedup = serial_total_s / total_s;
      table.AddRow({std::to_string(groups), std::to_string(threads),
                    TablePrinter::Fmt(graph_s, 3),
                    TablePrinter::Fmt(detect_s, 3),
                    TablePrinter::Fmt(total_s, 3),
                    TablePrinter::Fmt(speedup, 2)});
      const std::string t_label = std::to_string(threads);
      RecordGauge(groups, t_label, "graph_s", graph_s);
      RecordGauge(groups, t_label, "detect_s", detect_s);
      RecordGauge(groups, t_label, "total_s", total_s);
      RecordGauge(groups, t_label, "speedup", speedup);
    }
  }
  table.Print(std::cout);
  std::printf(
      "\nAll graphs and detections bit-identical to the serial engine\n"
      "(edges, core, second core, detected set). Speedups are bounded by\n"
      "the machine's core count: on a single-core container every row\n"
      "measures scheduling overhead, not scaling.\n");

  const MetricsSnapshot snapshot = MetricsRegistry::Global().Snapshot();
  std::ofstream out(out_path, std::ios::binary | std::ios::trunc);
  if (!out) {
    std::fprintf(stderr, "FATAL: cannot write %s\n", out_path.c_str());
    return 1;
  }
  out << SnapshotToJsonLines(snapshot);
  out.close();
  std::printf("wrote %zu metrics to %s\n", snapshot.entries.size(),
              out_path.c_str());
  return 0;
}
