// Fig 11: Monte-Carlo detection ratio of the refined greedy detector in the
// aligned case. 1000 x 4M matrix, screen of 4,000; curves for pattern widths
// b in {20, 30, 40} packets over a range of pattern heights a (routers).
// Paper anchor: (a=100, b=30) detects with probability ~0.988.

#include <cstdio>
#include <iostream>
#include <vector>

#include "analysis/aligned_detector.h"
#include "analysis/synthetic_matrix.h"
#include "bench_util.h"
#include "common/rng.h"
#include "common/table_printer.h"

int main() {
  using namespace dcs;
  const BenchScale scale = BenchScaleFromEnv();
  bench::Banner("Fig 11", "detection ratio of the aligned greedy detector",
                scale);

  const int trials = bench::Trials(scale, 6, 100);
  const std::vector<std::size_t> b_values = {20, 30, 40};
  const std::vector<std::size_t> a_values =
      scale == BenchScale::kPaper
          ? std::vector<std::size_t>{60, 80, 100, 120, 140}
          : std::vector<std::size_t>{60, 100, 140};

  SyntheticAlignedOptions matrix_opts;
  matrix_opts.m = 1000;
  matrix_opts.n = 4u << 20;
  matrix_opts.n_prime = 4000;

  AlignedDetectorOptions detector_opts;
  detector_opts.first_iteration_hopefuls =
      scale == BenchScale::kPaper ? 4000 : 2000;
  detector_opts.hopefuls = scale == BenchScale::kPaper ? 1024 : 256;
  detector_opts.max_iterations = 30;

  AlignedDetector detector(detector_opts);
  Rng rng(bench::EnvSeed("DCS_SEED", 11));

  TablePrinter table({"a (routers)", "b=20", "b=30", "b=40"});
  const double t0 = bench::NowSeconds();
  for (std::size_t a : a_values) {
    std::vector<std::string> row = {std::to_string(a)};
    for (std::size_t b : b_values) {
      matrix_opts.pattern_rows = a;
      matrix_opts.pattern_cols = b;
      int detected = 0;
      for (int t = 0; t < trials; ++t) {
        const SyntheticScreened instance =
            SampleScreenedAligned(matrix_opts, &rng);
        const AlignedDetection detection = detector.Detect(instance.screened);
        if (detection.pattern_found) ++detected;
      }
      row.push_back(TablePrinter::Fmt(
          static_cast<double>(detected) / trials, 3));
    }
    table.AddRow(std::move(row));
  }
  std::printf("detection ratio over %d trials per cell "
              "(paper anchor: 0.988 at a=100, b=30):\n", trials);
  table.Print(std::cout);
  std::printf("elapsed: %.1f s\n", bench::NowSeconds() - t0);
  return 0;
}
