#ifndef DCS_BENCH_BENCH_UTIL_H_
#define DCS_BENCH_BENCH_UTIL_H_

#include <chrono>
#include <cstdint>
#include <cstdio>
#include <string>

#include "common/config.h"

namespace dcs {
namespace bench {

/// Prints the standard experiment banner: which paper artifact this binary
/// regenerates and at what scale it is running.
inline void Banner(const char* artifact, const char* description,
                   BenchScale scale) {
  std::printf("==============================================================\n");
  std::printf("%s — %s\n", artifact, description);
  std::printf("scale: %s   (set DCS_SCALE=paper for full scale, "
              "DCS_TRIALS=<k> to override trials)\n",
              BenchScaleName(scale).c_str());
  std::printf("==============================================================\n");
}

/// Monotonic wall-clock seconds.
inline double NowSeconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// RNG seed from the environment (DCS_SEED convention), as the unsigned
/// value Rng's constructor takes. Negative values wrap, which is fine for a
/// seed but is made explicit here so -Wsign-conversion stays clean.
inline std::uint64_t EnvSeed(const char* name, std::int64_t default_value) {
  return static_cast<std::uint64_t>(EnvInt64(name, default_value));
}

/// Trials with a scale-dependent default, overridable via DCS_TRIALS.
inline int Trials(BenchScale scale, int small_default, int paper_default) {
  const std::int64_t env = EnvInt64("DCS_TRIALS", 0);
  if (env > 0) return static_cast<int>(env);
  return scale == BenchScale::kPaper ? paper_default : small_default;
}

}  // namespace bench
}  // namespace dcs

#endif  // DCS_BENCH_BENCH_UTIL_H_
