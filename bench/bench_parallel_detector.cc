// Section IV-D: strong-scaling of the aligned analysis pipeline. Times
// DetectInMatrix — weight screen, pair pass, hopefuls iterations, core
// scan, all sharded on the ThreadPool — at 1/2/4/8 threads against the
// serial engine, and asserts the detections are bit-identical before
// reporting a speedup (a fast wrong answer would be worthless).

#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <memory>
#include <vector>

#include "analysis/aligned_detector.h"
#include "bench_util.h"
#include "common/bit_matrix.h"
#include "common/rng.h"
#include "common/table_printer.h"
#include "common/thread_pool.h"

namespace {

// Bernoulli(1/2) noise with a planted 40-row x 30-column core, matching the
// paper's aligned model at measurement scale.
dcs::BitMatrix PlantedMatrix(std::size_t rows, std::size_t cols,
                             dcs::Rng* rng) {
  dcs::BitMatrix matrix(rows, cols);
  for (std::size_t r = 0; r < rows; ++r) {
    dcs::BitVector& row = matrix.row(r);
    std::uint64_t* words = row.mutable_words();
    for (std::size_t w = 0; w < row.num_words(); ++w) words[w] = rng->Next();
    if (cols % 64 != 0) words[row.num_words() - 1] &= (1ULL << (cols % 64)) - 1;
  }
  for (std::size_t r = 20; r < 60; ++r) {
    for (std::size_t c = 0; c < 30; ++c) {
      matrix.Set(r, (c * 997 + 13) % cols);  // Scattered pattern columns.
    }
  }
  return matrix;
}

bool SameDetection(const dcs::AlignedDetection& a,
                   const dcs::AlignedDetection& b) {
  return a.pattern_found == b.pattern_found && a.rows == b.rows &&
         a.columns == b.columns &&
         a.weight_trajectory == b.weight_trajectory &&
         a.stop_iteration == b.stop_iteration;
}

}  // namespace

int main() {
  using namespace dcs;
  const BenchScale scale = BenchScaleFromEnv();
  bench::Banner("Section IV-D", "aligned-analysis strong scaling", scale);

  const std::size_t rows = 128;
  const std::size_t n_prime = 2000;
  const std::vector<std::size_t> sizes =
      scale == BenchScale::kPaper
          ? std::vector<std::size_t>{1u << 20, 4u << 20}
          : std::vector<std::size_t>{1u << 18, 1u << 20};
  const std::vector<std::size_t> thread_counts = {1, 2, 4, 8};

  AlignedDetectorOptions options;
  options.first_iteration_hopefuls = n_prime;

  Rng rng(bench::EnvSeed("DCS_SEED", 41));
  TablePrinter table({"columns n", "threads", "detect s", "speedup"});
  for (std::size_t n : sizes) {
    const BitMatrix matrix = PlantedMatrix(rows, n, &rng);

    const AlignedDetector serial(options);
    double t = bench::NowSeconds();
    const AlignedDetection reference = serial.DetectInMatrix(matrix, n_prime);
    const double serial_s = bench::NowSeconds() - t;
    table.AddRow({std::to_string(n), "serial",
                  TablePrinter::Fmt(serial_s, 3), "1.00"});

    for (std::size_t threads : thread_counts) {
      ThreadPool pool(threads);
      const AlignedDetector parallel(options, AnalysisContext{&pool});
      t = bench::NowSeconds();
      const AlignedDetection detection =
          parallel.DetectInMatrix(matrix, n_prime);
      const double pool_s = bench::NowSeconds() - t;
      if (!SameDetection(reference, detection)) {
        std::fprintf(stderr,
                     "FATAL: detection diverged at %zu threads, n=%zu\n",
                     threads, n);
        return 1;
      }
      table.AddRow({std::to_string(n), std::to_string(threads),
                    TablePrinter::Fmt(pool_s, 3),
                    TablePrinter::Fmt(serial_s / pool_s, 2)});
    }
  }
  table.Print(std::cout);
  std::printf(
      "\nAll detections bit-identical to the serial engine (rows, columns,\n"
      "weight trajectory, stop iteration). Speedups are bounded by the\n"
      "machine's core count: on a single-core container every row measures\n"
      "scheduling overhead, not scaling.\n");
  return 0;
}
