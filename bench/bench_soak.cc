// Sustained-throughput soak of the continuous-operation layer
// (docs/STREAMING.md): >= 1000 synthesized epochs through the EpochRing —
// slot recycling, incremental column weights hot-starting the screen, the
// epoch tracker aging its k-of-w window — measuring steady-state
// epochs/sec, p50/p99 epoch latency, and peak RSS. The bench fails (exit
// 1) if memory does not plateau once the ring is warm, or if the planted
// pattern stops being detected: a fast leaky ring, or a fast blind one,
// would be worthless.
//
// Flags:
//   --smoke        short run for CI (200 epochs).
//   --epochs <n>   override the epoch count.
//   --out <path>   machine-readable results as JSON lines via the obs
//                  exporter (default BENCH_soak.json).

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "bench_util.h"
#include "common/rng.h"
#include "common/table_printer.h"
#include "dcs/epoch_ring.h"
#include "obs/exporter.h"
#include "obs/metrics.h"

namespace {

constexpr std::uint32_t kRouters = 16;
constexpr std::size_t kBits = 4096;
constexpr std::size_t kPatternRouters = 15;
constexpr std::size_t kPatternCols = 32;
constexpr std::uint64_t kPatternEvery = 7;

// Bernoulli(1/2) bitmap per (epoch, router) — the paper's aligned noise
// model — with a 15x32 all-1 pattern planted on every seventh epoch. The
// pattern must clear the natural-occurrence gate at this shape: with 4096
// columns the heaviest-96 screen runs dense (~0.8), which weakens the
// union bound enough that a 12-row pattern is no longer significant.
dcs::Digest SynthesizeDigest(std::uint64_t epoch, std::uint32_t router) {
  dcs::Digest digest;
  digest.router_id = router;
  digest.epoch_id = epoch;
  digest.kind = dcs::DigestKind::kAligned;
  digest.packets_covered = 1000;
  digest.raw_bytes_covered = 1000 * 536;
  dcs::BitVector row(kBits);
  dcs::Rng rng(epoch * 1000003 + router * 7919 + 1);
  std::uint64_t* words = row.mutable_words();
  for (std::size_t w = 0; w < row.num_words(); ++w) words[w] = rng.Next();
  if (epoch % kPatternEvery == 0 && router < kPatternRouters) {
    for (std::size_t c = 0; c < kPatternCols; ++c) row.Set(61 + 120 * c);
  }
  digest.rows.push_back(std::move(row));
  return digest;
}

// VmHWM (peak resident set) in MiB from /proc/self/status; 0 when
// unavailable (non-Linux), which disables the plateau gate.
double PeakRssMb() {
  std::ifstream status("/proc/self/status");
  std::string line;
  while (std::getline(status, line)) {
    if (line.rfind("VmHWM:", 0) == 0) {
      return std::strtod(line.c_str() + 6, nullptr) / 1024.0;
    }
  }
  return 0.0;
}

double Percentile(std::vector<double> sorted_copy, double p) {
  if (sorted_copy.empty()) return 0.0;
  std::sort(sorted_copy.begin(), sorted_copy.end());
  const auto idx = static_cast<std::size_t>(
      p * static_cast<double>(sorted_copy.size() - 1));
  return sorted_copy[idx];
}

}  // namespace

int main(int argc, char** argv) {
  using namespace dcs;
  bool smoke = false;
  std::uint64_t num_epochs = 0;
  std::string out_path = "BENCH_soak.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    } else if (std::strcmp(argv[i], "--epochs") == 0 && i + 1 < argc) {
      num_epochs = static_cast<std::uint64_t>(
          std::strtoull(argv[++i], nullptr, 10));
    } else if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
      out_path = argv[++i];
    } else {
      std::printf("usage: %s [--smoke] [--epochs <n>] [--out <path>]\n",
                  argv[0]);
      return std::strcmp(argv[i], "--help") == 0 ? 0 : 2;
    }
  }
  if (num_epochs == 0) num_epochs = smoke ? 200 : 1200;

  const BenchScale scale = BenchScaleFromEnv();
  bench::Banner("Section V-B.1", "sustained-operation soak (EpochRing)",
                scale);
  std::printf("epochs: %llu   routers: %u   bits/bitmap: %zu\n",
              static_cast<unsigned long long>(num_epochs), kRouters, kBits);

  MetricsRegistry::Global().set_enabled(true);

  EpochRingOptions options;
  options.capacity = 8;
  options.policy = ShedPolicy::kBlock;
  options.aligned.n_prime = 96;
  options.aligned.detector.first_iteration_hopefuls = 96;
  options.aligned.detector.hopefuls = 48;
  options.aligned.incremental_weights = true;
  options.ingest.expected_routers = kRouters;
  EpochRing ring(options);

  const std::uint64_t warmup = num_epochs / 4;
  std::vector<double> epoch_seconds;
  epoch_seconds.reserve(num_epochs);
  double warm_rss_mb = 0.0;
  double warm_started_at = 0.0;

  const double bench_start = bench::NowSeconds();
  for (std::uint64_t e = 0; e < num_epochs; ++e) {
    const double t = bench::NowSeconds();
    for (std::uint32_t r = 0; r < kRouters; ++r) {
      const Status status = ring.Offer(SynthesizeDigest(e, r));
      if (!status.ok()) {
        std::fprintf(stderr, "FATAL: epoch %llu router %u refused: %s\n",
                     static_cast<unsigned long long>(e), r,
                     status.ToString().c_str());
        return 1;
      }
    }
    epoch_seconds.push_back(bench::NowSeconds() - t);
    if (e + 1 == warmup) {
      // Ring is warm: every slot has been through at least one recycle.
      warm_rss_mb = PeakRssMb();
      warm_started_at = bench::NowSeconds();
    }
  }
  ring.Drain();
  const double total_s = bench::NowSeconds() - bench_start;
  const double steady_s = bench::NowSeconds() - warm_started_at;
  const double peak_rss_mb = PeakRssMb();

  const std::vector<DcsReport> reports = ring.TakeReports();
  std::uint64_t detections = 0;
  std::uint64_t planted = 0;
  for (const DcsReport& report : reports) {
    detections += report.aligned.common_content_detected ? 1 : 0;
    planted += report.epoch_id % kPatternEvery == 0 ? 1 : 0;
  }

  const double steady_epochs = static_cast<double>(num_epochs - warmup);
  const double epochs_per_sec =
      steady_s > 0.0 ? steady_epochs / steady_s : 0.0;
  const std::vector<double> steady_lat(
      epoch_seconds.begin() + static_cast<std::ptrdiff_t>(warmup),
      epoch_seconds.end());
  const double p50_ms = Percentile(steady_lat, 0.50) * 1e3;
  const double p99_ms = Percentile(steady_lat, 0.99) * 1e3;

  TablePrinter table({"quantity", "value"});
  table.AddRow({"epochs", std::to_string(num_epochs)});
  table.AddRow({"steady epochs/sec", TablePrinter::Fmt(epochs_per_sec, 1)});
  table.AddRow({"p50 epoch ms", TablePrinter::Fmt(p50_ms, 3)});
  table.AddRow({"p99 epoch ms", TablePrinter::Fmt(p99_ms, 3)});
  table.AddRow({"peak RSS MiB", TablePrinter::Fmt(peak_rss_mb, 1)});
  table.AddRow({"detections", std::to_string(detections) + "/" +
                                  std::to_string(planted) + " planted"});
  table.Print(std::cout);

  // Gate 1 — the ring must detect what was planted (throughput of a blind
  // pipeline is meaningless). A small shortfall is tolerated: a planted
  // column can tie-lose its screen slot to noise in rare epochs.
  if (detections * 10 < planted * 8) {
    std::fprintf(stderr, "FATAL: only %llu of %llu planted epochs detected\n",
                 static_cast<unsigned long long>(detections),
                 static_cast<unsigned long long>(planted));
    return 1;
  }
  // Gate 2 — memory plateau: once every slot has been recycled, peak RSS
  // must stop growing (10% + 16 MiB slack for allocator noise). A drifting
  // peak means per-epoch state is escaping the ring.
  if (warm_rss_mb > 0.0 && peak_rss_mb > warm_rss_mb * 1.10 + 16.0) {
    std::fprintf(stderr,
                 "FATAL: peak RSS did not plateau: %.1f MiB warm vs %.1f "
                 "MiB final\n",
                 warm_rss_mb, peak_rss_mb);
    return 1;
  }
  std::printf(
      "\nPeak RSS plateaued (%.1f MiB warm vs %.1f MiB final) and every\n"
      "slot recycled %llu+ times — per-epoch state stays inside the ring.\n",
      warm_rss_mb, peak_rss_mb,
      static_cast<unsigned long long>(num_epochs / options.capacity));

  // Scale-independent names so a smoke run diffs against a full-run
  // snapshot (tools/bench_compare): bench.soak.<quantity>. Throughput and
  // latency are machine-dependent — the compare tool treats them with
  // noise-aware thresholds — while detection_ratio is exact.
  ObsGauge("bench.soak.epochs").Set(static_cast<double>(num_epochs));
  ObsGauge("bench.soak.epochs_per_sec").Set(epochs_per_sec);
  ObsGauge("bench.soak.p50_epoch_ms").Set(p50_ms);
  ObsGauge("bench.soak.p99_epoch_ms").Set(p99_ms);
  ObsGauge("bench.soak.peak_rss_mb").Set(peak_rss_mb);
  ObsGauge("bench.soak.detection_ratio")
      .Set(planted > 0
               ? static_cast<double>(detections) / static_cast<double>(planted)
               : 0.0);
  ObsGauge("bench.soak.total_s").Set(total_s);

  const MetricsSnapshot snapshot = MetricsRegistry::Global().Snapshot();
  std::ofstream out(out_path, std::ios::binary | std::ios::trunc);
  if (!out) {
    std::fprintf(stderr, "FATAL: cannot write %s\n", out_path.c_str());
    return 1;
  }
  out << SnapshotToJsonLines(snapshot);
  out.close();
  std::printf("wrote %zu metrics to %s\n", snapshot.entries.size(),
              out_path.c_str());
  return 0;
}
