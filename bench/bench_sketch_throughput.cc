// Section III-A line-speed claim: the data collection modules must keep up
// with OC-48 (2.4M packets/s) or faster. google-benchmark microbenchmarks
// of the per-packet update paths; items_per_second is packets per second.

#include <benchmark/benchmark.h>

#include "common/hash.h"
#include "common/rng.h"
#include "net/packet.h"
#include "sketch/bitmap_sketch.h"
#include "sketch/flow_split_sketch.h"
#include "sketch/offset_sampling.h"

namespace dcs {
namespace {

std::vector<Packet> MakePackets(std::size_t count, std::size_t payload) {
  Rng rng(1);
  std::vector<Packet> packets(count);
  for (Packet& pkt : packets) {
    pkt.flow.src_ip = static_cast<std::uint32_t>(rng.Next());
    pkt.flow.dst_ip = static_cast<std::uint32_t>(rng.Next());
    pkt.flow.src_port = static_cast<std::uint16_t>(rng.UniformInt(65536));
    pkt.flow.dst_port = static_cast<std::uint16_t>(rng.UniformInt(65536));
    pkt.payload.resize(payload);
    for (char& c : pkt.payload) {
      c = static_cast<char>(rng.UniformInt(256));
    }
  }
  return packets;
}

void BM_AlignedBitmapUpdate(benchmark::State& state) {
  BitmapSketchOptions opts;  // 4 Mbit paper sizing.
  BitmapSketch sketch(opts);
  const auto packets = MakePackets(4096, static_cast<std::size_t>(state.range(0)));
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(sketch.Update(packets[i]));
    i = (i + 1) & 4095;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_AlignedBitmapUpdate)->Arg(536)->Arg(1460);

void BM_OffsetSamplingUpdate(benchmark::State& state) {
  OffsetSamplingOptions opts;  // 10 arrays x 1024 bits.
  Rng rng(2);
  OffsetSamplingArrays arrays(opts, &rng);
  const auto packets = MakePackets(4096, static_cast<std::size_t>(state.range(0)));
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(arrays.Update(packets[i]));
    i = (i + 1) & 4095;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_OffsetSamplingUpdate)->Arg(536)->Arg(1460);

void BM_FlowSplitUpdate(benchmark::State& state) {
  FlowSplitOptions opts;  // 128 groups, paper sizing.
  Rng rng(3);
  FlowSplitSketch sketch(opts, &rng);
  const auto packets = MakePackets(4096, 536);
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(sketch.Update(packets[i]));
    i = (i + 1) & 4095;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_FlowSplitUpdate);

void BM_PayloadHash(benchmark::State& state) {
  const auto packets = MakePackets(256, static_cast<std::size_t>(state.range(0)));
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        Hash64(packets[i].PayloadPrefix(64), 0x5EED));
    i = (i + 1) & 255;
  }
  state.SetItemsProcessed(state.iterations());
  state.SetBytesProcessed(state.iterations() * 64);
}
BENCHMARK(BM_PayloadHash)->Arg(536);

}  // namespace
}  // namespace dcs

BENCHMARK_MAIN();
