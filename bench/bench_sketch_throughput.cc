// Section III-A line-speed claim: the data collection modules must keep up
// with OC-48 (2.4M packets/s) or faster. Measures the per-packet update
// paths (aligned bitmap, offset sampling, flow-split, payload hash) in
// packets/sec, plus the digest codec (docs/DISTRIBUTED.md): encode
// throughput and the sparse-vs-raw size reduction across fill fractions.
//
// The bench fails (exit 1) if the sparse codec stops paying >= 4x at 1%
// fill — that reduction is what makes shipping early-epoch digests from
// many routers cheap, and a fast codec that stopped compressing would
// regress the distributed plane silently.
//
// Flags:
//   --smoke        short run for CI (fewer packets per path).
//   --out <path>   machine-readable results as JSON lines via the obs
//                  exporter (default BENCH_sketch_throughput.json).

#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "bench_util.h"
#include "common/hash.h"
#include "common/rng.h"
#include "common/table_printer.h"
#include "net/packet.h"
#include "obs/exporter.h"
#include "obs/metrics.h"
#include "sketch/bitmap_sketch.h"
#include "sketch/digest.h"
#include "sketch/digest_codec.h"
#include "sketch/flow_split_sketch.h"
#include "sketch/offset_sampling.h"

namespace {

using namespace dcs;

std::vector<Packet> MakePackets(std::size_t count, std::size_t payload) {
  Rng rng(1);
  std::vector<Packet> packets(count);
  for (Packet& pkt : packets) {
    pkt.flow.src_ip = static_cast<std::uint32_t>(rng.Next());
    pkt.flow.dst_ip = static_cast<std::uint32_t>(rng.Next());
    pkt.flow.src_port = static_cast<std::uint16_t>(rng.UniformInt(65536));
    pkt.flow.dst_port = static_cast<std::uint16_t>(rng.UniformInt(65536));
    pkt.payload.resize(payload);
    for (char& c : pkt.payload) {
      c = static_cast<char>(rng.UniformInt(256));
    }
  }
  return packets;
}

// Runs `iters` packet updates through `update`, cycling the packet pool,
// and returns packets/sec. The sink accumulator defeats dead-code
// elimination without a compiler barrier.
template <typename UpdateFn>
double MeasurePacketsPerSec(const std::vector<Packet>& packets,
                            std::uint64_t iters, UpdateFn update) {
  const std::size_t mask = packets.size() - 1;  // Pool sizes are powers of 2.
  std::uint64_t sink = 0;
  const double start = bench::NowSeconds();
  for (std::uint64_t i = 0; i < iters; ++i) {
    sink += update(packets[i & mask]);
  }
  const double elapsed = bench::NowSeconds() - start;
  if (sink == 0xDEADBEEF) std::printf("(unreachable sink)\n");
  return elapsed > 0.0 ? static_cast<double>(iters) / elapsed : 0.0;
}

// One aligned digest row at the requested fill fraction; set bits are
// uniformly scattered, the regime the sparse codec is negotiated for.
Digest DigestAtFill(std::size_t row_bits, double fill, Rng* rng) {
  Digest digest;
  digest.router_id = 7;
  digest.epoch_id = 3;
  digest.kind = DigestKind::kAligned;
  digest.packets_covered = 1000;
  digest.raw_bytes_covered = 1000 * 536;
  BitVector row(row_bits);
  const auto target =
      static_cast<std::size_t>(fill * static_cast<double>(row_bits));
  std::size_t set = 0;
  while (set < target) {
    const std::uint64_t bit = rng->UniformInt(row_bits);
    if (row.Test(bit)) continue;
    row.Set(bit);
    ++set;
  }
  digest.rows.push_back(std::move(row));
  return digest;
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  std::string out_path = "BENCH_sketch_throughput.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    } else if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
      out_path = argv[++i];
    } else {
      std::printf("usage: %s [--smoke] [--out <path>]\n", argv[0]);
      return std::strcmp(argv[i], "--help") == 0 ? 0 : 2;
    }
  }

  const BenchScale scale = BenchScaleFromEnv();
  bench::Banner("Section III-A", "per-packet update paths + digest codec",
                scale);

  const std::uint64_t iters = smoke ? (1u << 17) : (1u << 21);
  const auto packets = MakePackets(4096, 536);
  MetricsRegistry::Global().set_enabled(true);

  TablePrinter table({"path", "packets/sec", "vs OC-48 (2.4M)"});
  const auto add_timing = [&table](const char* label, const char* metric,
                                   double per_sec) {
    table.AddRow({label, TablePrinter::Fmt(per_sec / 1e6, 2) + "M",
                  TablePrinter::Fmt(per_sec / 2.4e6, 2) + "x"});
    ObsGauge(metric).Set(per_sec);
  };

  {
    BitmapSketchOptions opts;  // 4 Mbit paper sizing.
    BitmapSketch sketch(opts);
    add_timing("aligned bitmap update",
               "bench.sketch_throughput.aligned_update_per_sec",
               MeasurePacketsPerSec(packets, iters, [&sketch](const Packet& p) {
                 return sketch.Update(p) ? 1u : 0u;
               }));
  }
  {
    OffsetSamplingOptions opts;  // 10 arrays x 1024 bits.
    Rng rng(2);
    OffsetSamplingArrays arrays(opts, &rng);
    add_timing("offset sampling update",
               "bench.sketch_throughput.offset_update_per_sec",
               MeasurePacketsPerSec(packets, iters, [&arrays](const Packet& p) {
                 return arrays.Update(p) ? 1u : 0u;
               }));
  }
  {
    FlowSplitOptions opts;  // 128 groups, paper sizing.
    Rng rng(3);
    FlowSplitSketch sketch(opts, &rng);
    add_timing("flow-split update",
               "bench.sketch_throughput.flow_split_update_per_sec",
               MeasurePacketsPerSec(packets, iters, [&sketch](const Packet& p) {
                 return sketch.Update(p) ? 1u : 0u;
               }));
  }
  add_timing("payload hash (64B prefix)",
             "bench.sketch_throughput.payload_hash_per_sec",
             MeasurePacketsPerSec(packets, iters, [](const Packet& p) {
               return static_cast<unsigned>(
                   Hash64(p.PayloadPrefix(64), 0x5EED) & 1u);
             }));
  table.Print(std::cout);

  // Codec: sparse-vs-raw size reduction at a fixed 1 Mbit aligned row —
  // the shape is scale-independent so a smoke run diffs against the
  // committed full-run snapshot. Fill fractions bracket the early-epoch
  // (near-empty) through steady-state (half-full) regimes.
  constexpr std::size_t kCodecBits = 1 << 20;
  struct FillCase {
    double fill;
    const char* label;
    const char* metric;  // nullptr => informational row only.
  };
  const FillCase fills[] = {
      {0.001, "0.1%", "bench.sketch_throughput.sparse_reduction_0p1pct_ratio"},
      {0.01, "1%", "bench.sketch_throughput.sparse_reduction_1pct_ratio"},
      {0.10, "10%", "bench.sketch_throughput.sparse_reduction_10pct_ratio"},
      {0.50, "50%", nullptr},
  };

  TablePrinter codec_table(
      {"fill", "raw bytes", "sparse bytes", "reduction", "codec chosen"});
  Rng codec_rng(17);
  double reduction_at_1pct = 0.0;
  double sparse_encode_mb_per_sec = 0.0;
  for (const FillCase& fc : fills) {
    const Digest digest = DigestAtFill(kCodecBits, fc.fill, &codec_rng);
    const auto raw_bytes = static_cast<double>(RawPayloadSizeBytes(digest));

    // Encode throughput in dense-equivalent MB/s: how fast a router turns
    // bitmap state into wire bytes. Only the 1% case is exported — one
    // representative regime keeps the timing metric set small.
    const int reps = smoke ? 20 : 200;
    const double start = bench::NowSeconds();
    std::vector<std::uint8_t> payload;
    for (int r = 0; r < reps; ++r) {
      payload = EncodeDigestPayload(digest, DigestCodecId::kSparse);
    }
    const double elapsed = bench::NowSeconds() - start;
    const double mb_per_sec =
        elapsed > 0.0 ? raw_bytes * reps / elapsed / 1e6 : 0.0;

    const double reduction = raw_bytes / static_cast<double>(payload.size());
    std::vector<std::uint8_t> negotiated;
    const DigestCodecId chosen = EncodeDigestPayloadAuto(digest, &negotiated);
    codec_table.AddRow(
        {fc.label, TablePrinter::Fmt(raw_bytes / 1024.0, 1) + " KiB",
         TablePrinter::Fmt(static_cast<double>(payload.size()) / 1024.0, 1) +
             " KiB",
         TablePrinter::Fmt(reduction, 2) + "x", DigestCodecName(chosen)});
    if (fc.metric != nullptr) ObsGauge(fc.metric).Set(reduction);
    if (fc.fill == 0.01) {
      reduction_at_1pct = reduction;
      sparse_encode_mb_per_sec = mb_per_sec;
    }
  }
  std::printf("\ndigest codec, %zu-bit aligned row:\n",
              static_cast<std::size_t>(kCodecBits));
  codec_table.Print(std::cout);
  ObsGauge("bench.sketch_throughput.sparse_encode_mb_per_sec")
      .Set(sparse_encode_mb_per_sec);

  // Gate — the distributed plane's sizing argument (EXPERIMENTS.md) rests
  // on near-empty digests compressing >= 4x; below that, per-frame
  // negotiation would keep choosing raw and the sparse path is dead code.
  if (reduction_at_1pct < 4.0) {
    std::fprintf(stderr,
                 "FATAL: sparse reduction at 1%% fill is %.2fx (< 4x)\n",
                 reduction_at_1pct);
    return 1;
  }
  std::printf(
      "\nsparse codec pays %.1fx at 1%% fill (gate: >= 4x), encoding\n"
      "%.0f MB/s of dense-equivalent bitmap state.\n",
      reduction_at_1pct, sparse_encode_mb_per_sec);

  const MetricsSnapshot snapshot = MetricsRegistry::Global().Snapshot();
  std::ofstream out(out_path, std::ios::binary | std::ios::trunc);
  if (!out) {
    std::fprintf(stderr, "FATAL: cannot write %s\n", out_path.c_str());
    return 1;
  }
  out << SnapshotToJsonLines(snapshot);
  out.close();
  std::printf("wrote %zu metrics to %s\n", snapshot.entries.size(),
              out_path.c_str());
  return 0;
}
