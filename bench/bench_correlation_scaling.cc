// Section IV-D: the pairwise row-correlation cost that dominates the
// analysis center, and the paper's mitigations — parallelism
// (embarrassingly parallel over group pairs) and vertex sampling (scan 10%
// of the groups). Measures wall time for growing group counts and
// extrapolates to the paper's n = 102,400.

#include <cstdio>
#include <iostream>
#include <vector>

#include "analysis/lambda_table.h"
#include "analysis/unaligned_graph_builder.h"
#include "bench_util.h"
#include "common/bit_matrix.h"
#include "common/rng.h"
#include "common/table_printer.h"
#include "common/thread_pool.h"

namespace {

dcs::BitMatrix RandomMatrix(std::size_t groups, std::size_t arrays,
                            std::size_t bits, dcs::Rng* rng) {
  dcs::BitMatrix matrix(groups * arrays, bits);
  for (std::size_t r = 0; r < matrix.rows(); ++r) {
    std::uint64_t* words = matrix.row(r).mutable_words();
    for (std::size_t w = 0; w < matrix.row(r).num_words(); ++w) {
      words[w] = rng->Next() & rng->Next();  // ~25% fill.
    }
  }
  return matrix;
}

}  // namespace

int main() {
  using namespace dcs;
  const BenchScale scale = BenchScaleFromEnv();
  bench::Banner("Section IV-D", "row-correlation cost and mitigations",
                scale);

  const std::size_t arrays = 10;
  const std::size_t bits = 1024;
  const std::vector<std::size_t> group_counts =
      scale == BenchScale::kPaper
          ? std::vector<std::size_t>{256, 512, 1024, 2048}
          : std::vector<std::size_t>{128, 256, 512};

  Rng rng(bench::EnvSeed("DCS_SEED", 29));
  LambdaTable lambda(bits, 1e-6);
  ThreadPool pool(4);

  TablePrinter table({"groups n", "serial s", "4-thread pool s",
                      "10% sampled s", "serial edges"});
  double last_serial = 0.0;
  std::size_t last_n = 0;
  for (std::size_t n : group_counts) {
    const BitMatrix matrix = RandomMatrix(n, arrays, bits, &rng);
    GraphBuilderOptions serial;
    serial.arrays_per_group = arrays;

    double t = bench::NowSeconds();
    const Graph g_serial = BuildCorrelationGraph(matrix, lambda, serial);
    const double serial_s = bench::NowSeconds() - t;

    GraphBuilderOptions parallel = serial;
    parallel.scan.pool = &pool;
    t = bench::NowSeconds();
    (void)BuildCorrelationGraph(matrix, lambda, parallel);
    const double parallel_s = bench::NowSeconds() - t;

    GraphBuilderOptions sampled = serial;
    sampled.scan.group_sample_rate = 0.1;
    t = bench::NowSeconds();
    (void)BuildCorrelationGraph(matrix, lambda, sampled);
    const double sampled_s = bench::NowSeconds() - t;

    table.AddRow({std::to_string(n), TablePrinter::Fmt(serial_s, 3),
                  TablePrinter::Fmt(parallel_s, 3),
                  TablePrinter::Fmt(sampled_s, 3),
                  std::to_string(g_serial.num_edges())});
    last_serial = serial_s;
    last_n = n;
  }
  table.Print(std::cout);
  const double scale_factor =
      (102400.0 / static_cast<double>(last_n)) *
      (102400.0 / static_cast<double>(last_n));
  std::printf(
      "\nextrapolated serial cost at the paper's n = 102,400: %.0f s "
      "(~%.1f h) per epoch —\nmatching the paper's 'a few hours in "
      "software... but the network generates such a workload every second'.\n"
      "Sampling 10%% of vertices buys ~100x; the scan is embarrassingly "
      "parallel for the rest.\n",
      last_serial * scale_factor, last_serial * scale_factor / 3600.0);
  return 0;
}
