// Appendix ablation: the stochastic-optimality claim for min-degree
// peeling. Plays the paper's deletion game with three strategies —
// min-degree (the paper's FindCore), uniformly random, and max-degree — on
// planted-pattern graphs, reporting the expected number of pattern vertices
// surviving after t deletions, E[N(t, .)], and the final core composition.

#include <cstdio>
#include <iostream>
#include <vector>

#include "bench_util.h"
#include "common/rng.h"
#include "common/table_printer.h"
#include "graph/core_decomposition.h"
#include "graph/er_random.h"

namespace {

struct SurvivalCurve {
  std::vector<double> pattern_alive;  // Indexed by checkpoint.
  double core_hits = 0.0;
};

SurvivalCurve Measure(dcs::PeelStrategy strategy, std::size_t n, double p1,
                      std::size_t n1, double p2, std::size_t beta,
                      const std::vector<std::size_t>& checkpoints, int trials,
                      dcs::Rng* rng) {
  SurvivalCurve curve;
  curve.pattern_alive.assign(checkpoints.size(), 0.0);
  for (int t = 0; t < trials; ++t) {
    const dcs::PlantedGraph planted =
        dcs::SamplePlantedGraph(n, p1, n1, p2, rng);
    std::vector<char> in_pattern(n, 0);
    for (auto v : planted.pattern_vertices) in_pattern[v] = 1;
    const dcs::PeelResult result =
        dcs::PeelToSize(planted.graph, beta, strategy, rng);
    // Pattern vertices deleted by each checkpoint.
    std::size_t deleted_pattern = 0;
    std::size_t checkpoint = 0;
    for (std::size_t i = 0; i < result.removal_order.size(); ++i) {
      while (checkpoint < checkpoints.size() &&
             i == checkpoints[checkpoint]) {
        curve.pattern_alive[checkpoint] +=
            static_cast<double>(n1 - deleted_pattern);
        ++checkpoint;
      }
      deleted_pattern +=
          static_cast<std::size_t>(in_pattern[result.removal_order[i]]);
    }
    while (checkpoint < checkpoints.size()) {
      curve.pattern_alive[checkpoint] +=
          static_cast<double>(n1 - deleted_pattern);
      ++checkpoint;
    }
    for (auto v : result.core) curve.core_hits += in_pattern[v];
  }
  for (double& v : curve.pattern_alive) v /= trials;
  curve.core_hits /= trials;
  return curve;
}

}  // namespace

int main() {
  using namespace dcs;
  const BenchScale scale = BenchScaleFromEnv();
  bench::Banner("Appendix ablation",
                "min-degree peeling vs baselines, E[N(t)] survival", scale);

  const std::size_t n = scale == BenchScale::kPaper ? 51200 : 10000;
  const double p1 = 8.2 / static_cast<double>(n);
  const std::size_t n1 = 120;
  const std::size_t beta = 40;
  const int trials = bench::Trials(scale, 10, 40);
  const double p2 = 0.17 * 0.5;  // Mid-strength pattern.

  const std::vector<std::size_t> checkpoints = {
      n / 4, n / 2, 3 * n / 4, n - 2 * beta, n - beta - 1};

  Rng rng(bench::EnvSeed("DCS_SEED", 31));
  const double t0 = bench::NowSeconds();

  TablePrinter table({"strategy", "E[N] @25% peeled", "@50%", "@75%",
                      "@n-2b", "@n-b-1", "pattern in final core (of 40)"});
  struct Named {
    const char* name;
    PeelStrategy strategy;
  };
  for (const Named s : {Named{"min-degree (paper)", PeelStrategy::kMinDegree},
                        Named{"random", PeelStrategy::kRandom},
                        Named{"max-degree", PeelStrategy::kMaxDegree}}) {
    const SurvivalCurve curve = Measure(s.strategy, n, p1, n1, p2, beta,
                                        checkpoints, trials, &rng);
    table.AddRow({s.name, TablePrinter::Fmt(curve.pattern_alive[0], 1),
                  TablePrinter::Fmt(curve.pattern_alive[1], 1),
                  TablePrinter::Fmt(curve.pattern_alive[2], 1),
                  TablePrinter::Fmt(curve.pattern_alive[3], 1),
                  TablePrinter::Fmt(curve.pattern_alive[4], 1),
                  TablePrinter::Fmt(curve.core_hits, 1)});
  }
  std::printf("n = %zu, n1 = %zu pattern vertices, p2 = %.3f, beta = %zu, "
              "%d trials:\n", n, n1, p2, beta, trials);
  table.Print(std::cout);
  std::printf("\nCorollary 4 empirically: min-degree stochastically "
              "dominates both baselines at every t.\n");
  std::printf("elapsed: %.1f s\n", bench::NowSeconds() - t0);
  return 0;
}
