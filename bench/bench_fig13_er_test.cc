// Fig 13: sensitivity of the Erdős–Rényi phase-transition test. Graph-level
// Monte-Carlo at the paper's full scale: n = 102,400 group vertices, null
// edge probability p1 = 0.65e-5 (below the 1/n transition), content of 100
// packets, pattern sizes n1 in {120, 130, 140}. Reports the largest-CC
// distribution and the false negative rate at the paper's threshold of 100.
// Paper anchors: FN = 16.6% / 5.2% / 1.0%, FP ~ 0.

#include <cstdio>
#include <iostream>
#include <vector>

#include "analysis/er_test.h"
#include "analysis/lambda_table.h"
#include "analysis/unaligned_model.h"
#include "bench_util.h"
#include "common/histogram.h"
#include "common/rng.h"
#include "common/table_printer.h"
#include "graph/er_random.h"

int main() {
  using namespace dcs;
  const BenchScale scale = BenchScaleFromEnv();
  bench::Banner("Fig 13", "Erdős–Rényi test false positives/negatives",
                scale);

  const std::size_t n = 102'400;
  const double p1 = 0.65e-5;
  const std::size_t threshold = 100;
  const int trials = bench::Trials(scale, 40, 200);

  // Pattern edge probability from the physical signal model at g = 100.
  const UnalignedSignalModel model{UnalignedModelOptions{}};
  const double p_star = LambdaTable::PStarFromEdgeProb(p1, 10);
  const double p2 = model.PatternEdgeProb(100, p_star, p1);
  std::printf("n = %zu, p1 = %.3g (phase transition at %.3g), threshold = "
              "%zu\nmodel-derived pattern edge probability p2(g=100) = %.4f\n\n",
              n, p1, 1.0 / static_cast<double>(n), threshold, p2);

  Rng rng(bench::EnvSeed("DCS_SEED", 13));
  const double t0 = bench::NowSeconds();

  TablePrinter table({"configuration", "largest CC p25/p50/p75/max",
                      "false positive", "false negative"});

  // Null hypothesis: pure G(n, p1).
  {
    Histogram h;
    int fired = 0;
    for (int t = 0; t < trials; ++t) {
      const Graph g = SampleErGraph(n, p1, &rng);
      const ErTestResult r = RunErTest(g, threshold);
      h.Add(static_cast<std::int64_t>(r.largest_component));
      if (r.pattern_detected) ++fired;
    }
    table.AddRow({"null (no content)",
                  std::to_string(h.Quantile(0.25)) + "/" +
                      std::to_string(h.Quantile(0.5)) + "/" +
                      std::to_string(h.Quantile(0.75)) + "/" +
                      std::to_string(h.Max()),
                  TablePrinter::Fmt(static_cast<double>(fired) / trials, 3),
                  "-"});
  }

  // The paper's n1 = 120/130/140 plus smaller patterns so the
  // false-negative transition region is visible under our calibration.
  for (std::size_t n1 : {50u, 65u, 80u, 120u, 130u, 140u}) {
    Histogram h;
    int missed = 0;
    for (int t = 0; t < trials; ++t) {
      const PlantedGraph planted = SamplePlantedGraph(n, p1, n1, p2, &rng);
      const ErTestResult r = RunErTest(planted.graph, threshold);
      h.Add(static_cast<std::int64_t>(r.largest_component));
      if (!r.pattern_detected) ++missed;
    }
    table.AddRow({"pattern n1 = " + std::to_string(n1),
                  std::to_string(h.Quantile(0.25)) + "/" +
                      std::to_string(h.Quantile(0.5)) + "/" +
                      std::to_string(h.Quantile(0.75)) + "/" +
                      std::to_string(h.Max()),
                  "-",
                  TablePrinter::Fmt(static_cast<double>(missed) / trials,
                                    3)});
  }
  std::printf("%d trials per row (paper: FN 16.6%% / 5.2%% / 1.0%% for n1 = "
              "120/130/140):\n", trials);
  table.Print(std::cout);
  std::printf("elapsed: %.1f s\n", bench::NowSeconds() - t0);
  return 0;
}
