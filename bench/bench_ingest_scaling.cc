// Ingest-plane strong scaling: frames/sec through the multi-threaded
// IngestServer (leader poll thread + worker drain stage, ingest_server.h)
// at 1/2/4/8 server threads, with 8 concurrent sender connections shipping
// pre-encoded frames over a Unix-domain socket.
//
// The measured work is the server's receive path — chunked socket reads,
// frame checksum validation, strict payload decode, ordered ring offers —
// with analysis cost held to the floor: the ring runs at the minimum
// analysis budget with kDropOldest and a deliberately tiny detector
// configuration, so closing an epoch costs a screen over 8 rows, dwarfed
// by parsing its 64 KiB of frames. Senders cost nothing but the syscalls
// (their streams are fully encoded before the clock starts).
//
// Every configuration must ingest the identical frame count; the bench
// exits nonzero if any frame goes missing (a fast server that drops frames
// would be worthless). Throughput is bounded by the machine's core count:
// on a single-core container the multi-thread rows measure the pool's
// scheduling overhead, not scaling.
//
// Flags:
//   --smoke        Small frame count (the CI perf-gate pass).
//   --out <path>   Machine-readable results as JSON lines (default
//                  BENCH_ingest_scaling.json in the working directory).

#include <unistd.h>

#include <cstdint>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "analysis/analysis_context.h"
#include "bench_util.h"
#include "common/rng.h"
#include "common/table_printer.h"
#include "common/thread_pool.h"
#include "dcs/epoch_ring.h"
#include "netio/digest_sender.h"
#include "netio/dispatch.h"
#include "netio/frame.h"
#include "netio/ingest_server.h"
#include "obs/exporter.h"
#include "obs/metrics.h"

namespace {

constexpr std::uint32_t kConnections = 8;
constexpr std::size_t kBits = 65536;  // 8 KiB payload per aligned digest.

// One connection's whole wire stream, pre-encoded: `epochs` aligned
// digests for router `router`, framed back to back.
std::vector<std::uint8_t> EncodeStream(std::uint32_t router,
                                       std::uint64_t epochs, dcs::Rng* rng) {
  std::vector<std::uint8_t> stream;
  for (std::uint64_t e = 0; e < epochs; ++e) {
    dcs::Digest digest;
    digest.router_id = router;
    digest.epoch_id = e;
    digest.kind = dcs::DigestKind::kAligned;
    digest.packets_covered = 1000;
    digest.raw_bytes_covered = 536000;
    dcs::BitVector row(kBits);
    std::uint64_t* words = row.mutable_words();
    for (std::size_t w = 0; w < row.num_words(); ++w) {
      words[w] = rng->Next() & rng->Next();  // ~1/4 fill.
    }
    digest.rows.push_back(std::move(row));
    const std::vector<std::uint8_t> payload =
        dcs::EncodeDigestPayload(digest, dcs::DigestCodecId::kRaw);
    const std::vector<std::uint8_t> frame = dcs::EncodeFrame(
        dcs::DigestCodecId::kRaw, router, e, payload);
    stream.insert(stream.end(), frame.begin(), frame.end());
  }
  return stream;
}

// Runs one full ingest at `server_threads`; returns elapsed seconds.
// Exits the process on any dropped frame.
double RunOnce(std::size_t server_threads,
               const std::vector<std::vector<std::uint8_t>>& streams,
               std::uint64_t total_frames) {
  using namespace dcs;
  // Minimum analysis budget + drop-oldest + a tiny detector: the clock
  // sees the ingest path, not the analysis engines (they have their own
  // scaling bench, bench_parallel_unaligned).
  EpochRingOptions ring_options;
  ring_options.capacity = 4;
  ring_options.policy = ShedPolicy::kDropOldest;
  ring_options.analysis_budget_per_offer = 1;
  ring_options.aligned.sketch.num_bits = kBits;
  ring_options.aligned.n_prime = 16;
  ring_options.aligned.detector.first_iteration_hopefuls = 16;
  ring_options.aligned.detector.hopefuls = 8;
  ring_options.aligned.incremental_weights = true;
  EpochRing ring(ring_options, AnalysisContext{});

  std::unique_ptr<ThreadPool> pool;
  if (server_threads > 1) pool = std::make_unique<ThreadPool>(server_threads);
  FrameDispatcher dispatcher(&ring, pool.get());

  IngestServerOptions options;
  options.pool = pool.get();
  // Large read chunks: the point is frame-parse throughput, so each drain
  // task should do kernel-buffer-sized work, not poll-round bookkeeping.
  options.read_chunk_bytes = 256 * 1024;
  options.poll_timeout_ms = 5;
  options.after_round = [&dispatcher, total_frames]() {
    return dispatcher.stats().frames < total_frames;
  };
  IngestServer server(options, &dispatcher);

  static int counter = 0;
  const std::string uds_path =
      (std::filesystem::temp_directory_path() /
       ("dcs_bench_ingest_" + std::to_string(::getpid()) + "_" +
        std::to_string(counter++) + ".sock"))
          .string();
  if (!server.ListenUds(uds_path).ok()) {
    std::fprintf(stderr, "FATAL: cannot listen on %s\n", uds_path.c_str());
    std::exit(1);
  }

  const double t0 = dcs::bench::NowSeconds();
  Status serve_status;
  std::thread serve_thread(
      [&server, &serve_status] { serve_status = server.Serve(); });
  std::vector<std::thread> senders;
  for (std::uint32_t c = 0; c < kConnections; ++c) {
    senders.emplace_back([&uds_path, &streams, c] {
      DigestSender sender;
      if (!DigestSender::ConnectUds(uds_path, &sender).ok()) {
        std::fprintf(stderr, "FATAL: sender %u cannot connect\n", c);
        std::exit(1);
      }
      if (!sender.SendRaw(streams[c]).ok()) {
        std::fprintf(stderr, "FATAL: sender %u send failed\n", c);
        std::exit(1);
      }
      sender.Close();
    });
  }
  for (std::thread& t : senders) t.join();
  serve_thread.join();  // after_round stops once every frame landed.
  const double elapsed = dcs::bench::NowSeconds() - t0;

  if (!serve_status.ok()) {
    std::fprintf(stderr, "FATAL: serve: %s\n",
                 serve_status.ToString().c_str());
    std::exit(1);
  }
  const DispatchStats& stats = dispatcher.stats();
  if (stats.frames != total_frames || stats.frame_rejects != 0 ||
      stats.decode_failures != 0 || stats.digests_offered != total_frames) {
    std::fprintf(stderr,
                 "FATAL: t=%zu ingested %llu/%llu frames "
                 "(%llu rejects, %llu decode failures)\n",
                 server_threads,
                 static_cast<unsigned long long>(stats.frames),
                 static_cast<unsigned long long>(total_frames),
                 static_cast<unsigned long long>(stats.frame_rejects),
                 static_cast<unsigned long long>(stats.decode_failures));
    std::exit(1);
  }
  return elapsed;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace dcs;
  bool smoke = false;
  std::string out_path = "BENCH_ingest_scaling.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    } else if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
      out_path = argv[++i];
    } else {
      std::printf("usage: %s [--smoke] [--out <path>]\n", argv[0]);
      return std::strcmp(argv[i], "--help") == 0 ? 0 : 2;
    }
  }

  const BenchScale scale = BenchScaleFromEnv();
  bench::Banner("ingest plane", "multi-threaded server strong scaling",
                scale);

  const std::uint64_t epochs_per_conn =
      smoke ? 60 : (scale == BenchScale::kPaper ? 4000 : 1000);
  const int reps = smoke ? 1 : 3;
  const std::uint64_t total_frames = kConnections * epochs_per_conn;
  const std::vector<std::size_t> thread_counts = {1, 2, 4, 8};

  Rng rng(bench::EnvSeed("DCS_SEED", 47));
  std::vector<std::vector<std::uint8_t>> streams;
  std::uint64_t total_bytes = 0;
  for (std::uint32_t c = 0; c < kConnections; ++c) {
    streams.push_back(EncodeStream(c, epochs_per_conn, &rng));
    total_bytes += streams.back().size();
  }
  std::printf("%llu frames over %u connections, %.1f MiB on the wire\n",
              static_cast<unsigned long long>(total_frames), kConnections,
              static_cast<double>(total_bytes) / (1024.0 * 1024.0));

  MetricsRegistry::Global().set_enabled(true);

  TablePrinter table({"threads", "seconds", "frames/s", "MiB/s", "speedup"});
  double single_fps = 0.0;
  for (const std::size_t threads : thread_counts) {
    // Best of `reps`: the quantity of interest is what the pipeline can
    // sustain, not the scheduler noise of a loaded CI box.
    double best = -1.0;
    for (int r = 0; r < reps; ++r) {
      const double elapsed = RunOnce(threads, streams, total_frames);
      if (best < 0.0 || elapsed < best) best = elapsed;
    }
    const double fps = static_cast<double>(total_frames) / best;
    if (threads == 1) single_fps = fps;
    const double speedup = fps / single_fps;
    table.AddRow({std::to_string(threads), TablePrinter::Fmt(best, 3),
                  TablePrinter::Fmt(fps, 0),
                  TablePrinter::Fmt(static_cast<double>(total_bytes) / best /
                                        (1024.0 * 1024.0),
                                    1),
                  TablePrinter::Fmt(speedup, 2)});
    const std::string prefix =
        "bench.ingest_scaling.t" + std::to_string(threads) + ".";
    ObsGauge(prefix + "frames_per_sec").Set(fps);
    ObsGauge(prefix + "speedup").Set(speedup);
  }
  table.Print(std::cout);
  std::printf("\nEvery configuration ingested all %llu frames with zero "
              "rejects;\nthe report streams are covered by the loopback "
              "differential suite, not here.\n",
              static_cast<unsigned long long>(total_frames));

  const MetricsSnapshot snapshot = MetricsRegistry::Global().Snapshot();
  std::ofstream out(out_path, std::ios::binary | std::ios::trunc);
  if (!out) {
    std::fprintf(stderr, "FATAL: cannot write %s\n", out_path.c_str());
    return 1;
  }
  out << SnapshotToJsonLines(snapshot);
  out.close();
  std::printf("wrote %zu metrics to %s\n", snapshot.entries.size(),
              out_path.c_str());
  return 0;
}
