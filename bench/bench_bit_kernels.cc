// Micro-benchmark for the runtime-dispatched bit kernels (the AND+popcount
// hot path every detector bottoms out in). Compares three implementations
// of each primitive:
//   seed    — the word-at-a-time loop the repo shipped with (reproduced
//             here verbatim as the baseline),
//   scalar  — the portable kernel table (multi-accumulator loops),
//   active  — whatever ActiveBitKernels() dispatched to on this host
//             (AVX2 / NEON / scalar; DCS_FORCE_SCALAR=1 pins it to scalar).
// The headline number is CommonOnesBatch: one row against many rows, tiled
// so the left operand stays cache-resident — the inner loop of the pair
// scan and of the aligned extension pass.

#include <algorithm>
#include <bit>
#include <cstdint>
#include <cstdio>
#include <iostream>
#include <string>
#include <vector>

#include "bench_util.h"
#include "common/bit_kernels.h"
#include "common/rng.h"
#include "common/table_printer.h"

namespace {

// The seed implementation: one popcount per word, one serial accumulator.
std::size_t SeedAndCount(const std::uint64_t* a, const std::uint64_t* b,
                         std::size_t num_words) {
  std::size_t count = 0;
  for (std::size_t w = 0; w < num_words; ++w) {
    count += static_cast<std::size_t>(std::popcount(a[w] & b[w]));
  }
  return count;
}

std::size_t SeedCountOnes(const std::uint64_t* words, std::size_t num_words) {
  std::size_t count = 0;
  for (std::size_t w = 0; w < num_words; ++w) {
    count += static_cast<std::size_t>(std::popcount(words[w]));
  }
  return count;
}

std::vector<std::uint64_t> RandomWords(dcs::Rng* rng, std::size_t num_words) {
  std::vector<std::uint64_t> words(num_words);
  for (std::uint64_t& w : words) w = rng->Next();
  return words;
}

// Wall time per call, amortized over enough repetitions to outlast timer
// noise; the checksum defeats dead-code elimination.
template <typename Fn>
double SecsPerCall(int reps, std::uint64_t* checksum, Fn&& fn) {
  const double t = dcs::bench::NowSeconds();
  for (int r = 0; r < reps; ++r) *checksum += fn();
  return (dcs::bench::NowSeconds() - t) / reps;
}

}  // namespace

int main() {
  using namespace dcs;
  const BenchScale scale = BenchScaleFromEnv();
  bench::Banner("bit kernels", "AND+popcount hot-path dispatch layer", scale);
  std::printf("active kernel table: %s\n\n", ActiveBitKernels().name);

  Rng rng(bench::EnvSeed("DCS_SEED", 77));
  std::uint64_t checksum = 0;

  // --- Pairwise and_count across span lengths (64 Kbit .. 4 Mbit).
  {
    TablePrinter table({"bits", "seed GB/s", "scalar GB/s", "active GB/s",
                        "active/seed"});
    for (std::size_t bits : {std::size_t{1} << 16, std::size_t{1} << 20,
                             std::size_t{4} << 20}) {
      const std::size_t words = bits / 64;
      const auto a = RandomWords(&rng, words);
      const auto b = RandomWords(&rng, words);
      const int reps = bits > (1u << 18) ? 200 : 2000;
      const double seed_s = SecsPerCall(reps, &checksum, [&] {
        return SeedAndCount(a.data(), b.data(), words);
      });
      const double scalar_s = SecsPerCall(reps, &checksum, [&] {
        return ScalarBitKernels().and_count(a.data(), b.data(), words);
      });
      const double active_s = SecsPerCall(reps, &checksum, [&] {
        return ActiveBitKernels().and_count(a.data(), b.data(), words);
      });
      // Two operand streams are read per call.
      const double bytes = 2.0 * static_cast<double>(words) * 8.0;
      table.AddRow({std::to_string(bits),
                    TablePrinter::Fmt(bytes / seed_s / 1e9, 2),
                    TablePrinter::Fmt(bytes / scalar_s / 1e9, 2),
                    TablePrinter::Fmt(bytes / active_s / 1e9, 2),
                    TablePrinter::Fmt(seed_s / active_s, 2)});
    }
    std::printf("and_count (pairwise AND+popcount):\n");
    table.Print(std::cout);
  }

  // --- count_ones on one stream.
  {
    TablePrinter table({"bits", "seed GB/s", "scalar GB/s", "active GB/s",
                        "active/seed"});
    for (std::size_t bits : {std::size_t{1} << 20, std::size_t{4} << 20}) {
      const std::size_t words = bits / 64;
      const auto a = RandomWords(&rng, words);
      const int reps = 400;
      const double seed_s = SecsPerCall(
          reps, &checksum, [&] { return SeedCountOnes(a.data(), words); });
      const double scalar_s = SecsPerCall(reps, &checksum, [&] {
        return ScalarBitKernels().count_ones(a.data(), words);
      });
      const double active_s = SecsPerCall(reps, &checksum, [&] {
        return ActiveBitKernels().count_ones(a.data(), words);
      });
      const double bytes = static_cast<double>(words) * 8.0;
      table.AddRow({std::to_string(bits),
                    TablePrinter::Fmt(bytes / seed_s / 1e9, 2),
                    TablePrinter::Fmt(bytes / scalar_s / 1e9, 2),
                    TablePrinter::Fmt(bytes / active_s / 1e9, 2),
                    TablePrinter::Fmt(seed_s / active_s, 2)});
    }
    std::printf("\ncount_ones (weight):\n");
    table.Print(std::cout);
  }

  // --- CommonOnesBatch: one 4 Mbit row against many (the pair-scan shape).
  // The seed baseline is the unbatched loop: one SeedAndCount per row.
  {
    TablePrinter table({"rows", "seed ms", "scalar-batch ms",
                        "active-batch ms", "active/seed"});
    const std::size_t bits = std::size_t{4} << 20;
    const std::size_t words = bits / 64;
    const auto left = RandomWords(&rng, words);
    double headline = 0.0;
    // Past ~32 rows x 4 Mbit the working set outgrows L3 and every
    // implementation converges on DRAM bandwidth; the cache-resident rows
    // are where the kernel's advantage shows.
    for (std::size_t num_rows : {std::size_t{8}, std::size_t{32},
                                 std::size_t{128}}) {
      std::vector<std::vector<std::uint64_t>> rows;
      std::vector<const std::uint64_t*> ptrs;
      for (std::size_t r = 0; r < num_rows; ++r) {
        rows.push_back(RandomWords(&rng, words));
        ptrs.push_back(rows.back().data());
      }
      std::vector<std::uint32_t> out(num_rows);
      const int reps = num_rows >= 128 ? 5 : 20;
      const double seed_s = SecsPerCall(reps, &checksum, [&] {
        std::uint64_t sum = 0;
        for (std::size_t r = 0; r < num_rows; ++r) {
          sum += SeedAndCount(left.data(), ptrs[r], words);
        }
        return sum;
      });
      const double scalar_s = SecsPerCall(reps, &checksum, [&] {
        ScalarBitKernels().and_count_batch(left.data(), ptrs.data(),
                                           num_rows, words, out.data());
        return static_cast<std::uint64_t>(out[0]);
      });
      const double active_s = SecsPerCall(reps, &checksum, [&] {
        ActiveBitKernels().and_count_batch(left.data(), ptrs.data(),
                                           num_rows, words, out.data());
        return static_cast<std::uint64_t>(out[0]);
      });
      table.AddRow({std::to_string(num_rows),
                    TablePrinter::Fmt(seed_s * 1e3, 2),
                    TablePrinter::Fmt(scalar_s * 1e3, 2),
                    TablePrinter::Fmt(active_s * 1e3, 2),
                    TablePrinter::Fmt(seed_s / active_s, 2)});
      headline = std::max(headline, seed_s / active_s);
    }
    std::printf("\nCommonOnesBatch (one 4 Mbit row vs many):\n");
    table.Print(std::cout);
    std::printf("\nheadline: best CommonOnesBatch active/seed speedup "
                "= %.2fx\n", headline);
  }

  std::printf("(checksum %llu)\n",
              static_cast<unsigned long long>(checksum));
  return 0;
}
