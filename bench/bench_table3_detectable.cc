// Table III: the detectable threshold — the smallest pattern size n1 at
// which the greedy core-finding pipeline recovers at least half of the
// pattern on average — with the average core size at that point.
// Paper rows: g=100 -> m=150 (core 56), g=125 -> 80 (50), g=150 -> 50 (30).

#include <algorithm>
#include <cstdio>
#include <iostream>
#include <vector>

#include "analysis/lambda_table.h"
#include "analysis/unaligned_detector.h"
#include "analysis/unaligned_model.h"
#include "bench_util.h"
#include "common/rng.h"
#include "common/table_printer.h"
#include "graph/er_random.h"

namespace {

struct Measured {
  double avg_core = 0.0;
  double avg_detected = 0.0;
  double avg_fp = 0.0;
};

Measured MeasureAt(std::size_t n, double p1, double p2, std::size_t n1,
                   int trials, dcs::Rng* rng) {
  dcs::UnalignedDetectorOptions detector;
  detector.beta = n1 / 2;
  detector.expand_min_edges = std::max<std::size_t>(
      1, static_cast<std::size_t>(0.5 * p2 * static_cast<double>(detector.beta)));
  detector.second_beta = std::max<std::size_t>(4, detector.beta / 2);
  Measured m;
  for (int t = 0; t < trials; ++t) {
    const dcs::PlantedGraph planted =
        dcs::SamplePlantedGraph(n, p1, n1, p2, rng);
    const dcs::UnalignedDetection detection =
        dcs::DetectUnalignedPattern(planted.graph, detector);
    const dcs::DetectionScore core_score =
        dcs::ScoreDetection(detection.core, planted.pattern_vertices);
    const dcs::DetectionScore full_score =
        dcs::ScoreDetection(detection.detected, planted.pattern_vertices);
    m.avg_core += static_cast<double>(core_score.true_positives);
    m.avg_detected += static_cast<double>(full_score.true_positives);
    m.avg_fp += full_score.false_positive;
  }
  m.avg_core /= trials;
  m.avg_detected /= trials;
  m.avg_fp /= trials;
  return m;
}

}  // namespace

int main() {
  using namespace dcs;
  const BenchScale scale = BenchScaleFromEnv();
  bench::Banner("Table III", "detectable threshold of the greedy pipeline",
                scale);

  const std::size_t n = 102'400;
  const double p1 = 0.8e-4;
  const int trials = bench::Trials(scale, 4, 20);
  const UnalignedSignalModel model{UnalignedModelOptions{}};
  const double p_star = LambdaTable::PStarFromEdgeProb(p1, 10);

  Rng rng(bench::EnvSeed("DCS_SEED", 19));
  const double t0 = bench::NowSeconds();

  TablePrinter table({"packets g", "p2(g)", "detectable n1 (>=50% found)",
                      "paper n1", "avg core hits", "avg detected",
                      "avg false positive"});
  struct PaperRow {
    std::size_t g;
    int paper_n1;
  };
  for (const PaperRow row : {PaperRow{100, 150}, PaperRow{125, 80},
                             PaperRow{150, 50}}) {
    const double p2 = model.PatternEdgeProb(row.g, p_star, p1);
    // Scan upward over candidate n1 until half the pattern is recovered.
    std::size_t detectable = 0;
    Measured at_detectable;
    for (std::size_t n1 = 30; n1 <= 400; n1 += (n1 < 100 ? 10 : 20)) {
      const Measured m = MeasureAt(n, p1, p2, n1, trials, &rng);
      if (m.avg_detected >= 0.5 * static_cast<double>(n1)) {
        detectable = n1;
        at_detectable = m;
        break;
      }
    }
    table.AddRow({std::to_string(row.g), TablePrinter::Fmt(p2, 4),
                  detectable > 0 ? std::to_string(detectable) : ">400",
                  std::to_string(row.paper_n1),
                  TablePrinter::Fmt(at_detectable.avg_core, 1),
                  TablePrinter::Fmt(at_detectable.avg_detected, 1),
                  TablePrinter::Fmt(at_detectable.avg_fp, 3)});
  }
  std::printf("%d trials per point:\n", trials);
  table.Print(std::cout);
  std::printf("elapsed: %.1f s\n", bench::NowSeconds() - t0);
  return 0;
}
