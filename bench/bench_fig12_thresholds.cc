// Fig 12: the non-naturally-occurring frontier (Eq 1) and the detectable
// frontier (Section V-A.2 screening analysis) for the 1000 x 4M aligned
// matrix with a heaviest-4000 screen. Paper anchors: NNO (28, 21), (70, 10);
// detectable (25, 3029), (70, 99), (100, 30).

#include <cstdio>
#include <iostream>

#include "analysis/aligned_thresholds.h"
#include "bench_util.h"
#include "common/table_printer.h"

int main() {
  using namespace dcs;
  const BenchScale scale = BenchScaleFromEnv();
  bench::Banner("Fig 12",
                "non-naturally-occurring vs detectable thresholds (aligned)",
                scale);

  constexpr std::int64_t kM = 1000;
  constexpr std::int64_t kN = 4LL << 20;
  DetectabilityOptions opts;  // n' = 4000, eps = 1e-3, as in the paper.

  TablePrinter table({"a (routers)", "min b non-naturally-occurring",
                      "min b detectable (95%)", "detectability gap"});
  const int step = scale == BenchScale::kPaper ? 5 : 10;
  for (std::int64_t a = 20; a <= 140; a += step) {
    const std::int64_t nno = MinNonNaturallyOccurringB(kM, kN, a, opts.epsilon);
    const std::int64_t detectable =
        DetectableThresholdB(kM, kN, a, 0.95, kN, opts);
    std::string gap = "-";
    if (nno > 0 && detectable > 0) {
      gap = TablePrinter::Fmt(
          static_cast<double>(detectable) / static_cast<double>(nno), 1);
    }
    table.AddRow({std::to_string(a),
                  nno > 0 ? std::to_string(nno) : "-",
                  detectable > 0 ? std::to_string(detectable) : "-", gap});
  }
  table.Print(std::cout);
  std::printf(
      "\npaper anchors: NNO a=28->b=21, a=70->b=10; detectable a=25->3029, "
      "a=70->99, a=100->30.\nThe gap is the price of running the quadratic "
      "search on 4,000 instead of 4M columns.\n");
  return 0;
}
