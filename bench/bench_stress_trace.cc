// Section V-B.4: stress test on bursty (ISP-like) traffic. The paper cut a
// tier-1 backbone trace into one-second segments, split each into 32 groups
// by flow hash, and found that burstiness (Zipfian flows concentrating in
// few groups) slightly *helps* detection versus the evenly-split
// Monte-Carlo model. We reproduce the pipeline with the synthetic trace
// substrate: real packets -> flow-split sketches -> lambda graph -> greedy
// cores, sweeping flow-size burstiness, against the balanced graph-level
// model as the reference.

#include <cstdio>
#include <iostream>
#include <string>
#include <vector>

#include "analysis/lambda_table.h"
#include "analysis/unaligned_detector.h"
#include "analysis/unaligned_graph_builder.h"
#include "analysis/unaligned_model.h"
#include "bench_util.h"
#include "common/bit_matrix.h"
#include "common/rng.h"
#include "common/table_printer.h"
#include "graph/er_random.h"
#include "net/packetizer.h"
#include "sketch/flow_split_sketch.h"
#include "traffic/content_catalog.h"
#include "traffic/flow_generator.h"

namespace {

using namespace dcs;

constexpr std::size_t kGroupsPerSegment = 32;
constexpr std::size_t kArrays = 10;
constexpr std::size_t kArrayBits = 1024;
constexpr std::size_t kContentPackets = 100;
constexpr double kTargetInsertions = 400.0;

struct StressResult {
  double avg_pattern_found = 0.0;
  double avg_false_positive = 0.0;
};

// One trial: synthesize `segments` bursty segments, plant the content in n1
// random groups, run the full matrix pipeline, score the detection.
StressResult RunTrial(std::size_t segments, std::size_t n1,
                      double zipf_alpha, std::uint64_t max_flow, Rng* rng,
                      const ContentCatalog& catalog) {
  const std::size_t total_groups = segments * kGroupsPerSegment;

  // Pattern groups, chosen globally.
  std::vector<char> is_pattern(total_groups, 0);
  std::vector<Graph::VertexId> pattern_vertices;
  for (std::uint64_t v :
       SampleWithoutReplacement(rng, total_groups, n1)) {
    is_pattern[v] = 1;
    pattern_vertices.push_back(static_cast<Graph::VertexId>(v));
  }
  std::sort(pattern_vertices.begin(), pattern_vertices.end());

  const std::string content =
      catalog.ContentBytes(1, kContentPackets * 536);
  PacketizerOptions packetizer;
  packetizer.mss = 536;

  BitMatrix matrix;
  BackgroundTrafficOptions traffic;
  traffic.zipf_alpha = zipf_alpha;
  traffic.max_flow_packets = max_flow;
  // Payload packets needed per segment for ~kTargetInsertions per array.
  const auto payload_target = static_cast<std::size_t>(
      kGroupsPerSegment * kTargetInsertions);
  const double payload_fraction =
      traffic.frac_mss + traffic.frac_large;
  const auto packets_per_segment =
      static_cast<std::size_t>(payload_target / payload_fraction);

  for (std::size_t seg = 0; seg < segments; ++seg) {
    // Each segment models a distinct router epoch: its own offsets.
    FlowSplitOptions sketch_opts;
    sketch_opts.num_groups = kGroupsPerSegment;
    sketch_opts.offset_options.num_arrays = kArrays;
    sketch_opts.offset_options.array_bits = kArrayBits;
    sketch_opts.flow_hash_seed = rng->Next();
    FlowSplitSketch sketch(sketch_opts, rng);

    Rng traffic_rng = rng->Fork();
    FlowGenerator generator(traffic, &traffic_rng);
    PacketTrace trace;
    generator.Generate(packets_per_segment, &trace);
    for (const Packet& pkt : trace) sketch.Update(pkt);

    // Plant one content instance into each pattern group of this segment.
    for (std::size_t g = 0; g < kGroupsPerSegment; ++g) {
      const std::size_t global = seg * kGroupsPerSegment + g;
      if (!is_pattern[global]) continue;
      // Find a flow label hashing to group g.
      FlowLabel flow;
      do {
        flow.src_ip = static_cast<std::uint32_t>(rng->Next());
        flow.dst_ip = static_cast<std::uint32_t>(rng->Next());
        flow.src_port = static_cast<std::uint16_t>(rng->UniformInt(65536));
        flow.dst_port = static_cast<std::uint16_t>(rng->UniformInt(65536));
      } while (sketch.GroupOf(flow) != g);
      const std::size_t prefix_len = rng->UniformInt(536);
      for (const Packet& pkt : PacketizeObject(
               flow, std::string(prefix_len, 'H'), content, packetizer)) {
        sketch.Update(pkt);
      }
    }

    const BitMatrix segment_matrix = sketch.ToMatrix();
    for (std::size_t r = 0; r < segment_matrix.rows(); ++r) {
      matrix.AppendRow(segment_matrix.row(r));
    }
  }

  // Analysis: lambda graph at the core-finding operating point, then the
  // greedy pipeline.
  const double p1 = 8.2 / static_cast<double>(total_groups);
  LambdaTable lambda(kArrayBits, LambdaTable::PStarFromEdgeProb(p1, kArrays));
  GraphBuilderOptions builder;
  builder.arrays_per_group = kArrays;
  const Graph graph = BuildCorrelationGraph(matrix, lambda, builder);

  UnalignedDetectorOptions detector;
  detector.beta = 30;
  detector.expand_min_edges = 3;
  const UnalignedDetection detection =
      DetectUnalignedPattern(graph, detector);
  const DetectionScore score =
      ScoreDetection(detection.detected, pattern_vertices);
  return StressResult{static_cast<double>(score.true_positives),
                      score.false_positive};
}

// Balanced-splitting reference: the graph-level Monte-Carlo with the
// model-derived p2 at the same fill.
StressResult BalancedReference(std::size_t total_groups, std::size_t n1,
                               int trials, Rng* rng) {
  UnalignedModelOptions model_opts;
  model_opts.array_bits = kArrayBits;
  model_opts.num_offsets = kArrays;
  model_opts.background_insertions = kTargetInsertions;
  const UnalignedSignalModel model(model_opts);
  const double p1 = 8.2 / static_cast<double>(total_groups);
  const double p_star = LambdaTable::PStarFromEdgeProb(p1, kArrays);
  const double p2 = model.PatternEdgeProb(kContentPackets, p_star, p1);

  UnalignedDetectorOptions detector;
  detector.beta = 30;
  detector.expand_min_edges = 3;
  StressResult result;
  for (int t = 0; t < trials; ++t) {
    const PlantedGraph planted =
        SamplePlantedGraph(total_groups, p1, n1, p2, rng);
    const UnalignedDetection detection =
        DetectUnalignedPattern(planted.graph, detector);
    const DetectionScore score =
        ScoreDetection(detection.detected, planted.pattern_vertices);
    result.avg_pattern_found += static_cast<double>(score.true_positives);
    result.avg_false_positive += score.false_positive;
  }
  result.avg_pattern_found /= trials;
  result.avg_false_positive /= trials;
  return result;
}

}  // namespace

int main() {
  const BenchScale scale = BenchScaleFromEnv();
  bench::Banner("Section V-B.4",
                "stress test: bursty trace vs balanced-split model", scale);

  const std::size_t segments = scale == BenchScale::kPaper ? 40 : 16;
  const std::size_t total_groups = segments * kGroupsPerSegment;
  const std::size_t n1 = total_groups / 9;
  const int trials = bench::Trials(scale, 2, 8);

  Rng rng(bench::EnvSeed("DCS_SEED", 37));
  const ContentCatalog catalog(4242);
  const double t0 = bench::NowSeconds();

  std::printf("%zu groups (%zu segments x %zu), pattern n1 = %zu, content "
              "g = %zu packets, %d trials/row\n\n",
              total_groups, segments, kGroupsPerSegment, n1,
              kContentPackets, trials);

  TablePrinter table({"traffic model", "avg pattern groups found",
                      "avg false positive"});
  struct Sweep {
    const char* label;
    double alpha;
    std::uint64_t max_flow;
  };
  for (const Sweep sweep :
       {Sweep{"mild burst (zipf 0.9, flows<=200)", 0.9, 200},
        Sweep{"ISP-like (zipf 1.1, flows<=2000)", 1.1, 2000},
        Sweep{"heavy burst (zipf 1.3, flows<=8000)", 1.3, 8000}}) {
    StressResult total;
    for (int t = 0; t < trials; ++t) {
      const StressResult r = RunTrial(segments, n1, sweep.alpha,
                                      sweep.max_flow, &rng, catalog);
      total.avg_pattern_found += r.avg_pattern_found;
      total.avg_false_positive += r.avg_false_positive;
    }
    table.AddRow({sweep.label,
                  TablePrinter::Fmt(total.avg_pattern_found / trials, 1),
                  TablePrinter::Fmt(total.avg_false_positive / trials, 3)});
  }
  const StressResult balanced =
      BalancedReference(total_groups, n1, trials * 3, &rng);
  table.AddRow({"balanced-split model (reference)",
                TablePrinter::Fmt(balanced.avg_pattern_found, 1),
                TablePrinter::Fmt(balanced.avg_false_positive, 3)});
  table.Print(std::cout);
  std::printf(
      "\nReading: the end-to-end pipeline on real (hash-collision,\n"
      "unevenly-split) traffic recovers nearly as much of the pattern as\n"
      "the idealized balanced-split model, and is insensitive to the\n"
      "burstiness level — consistent with the paper's finding that Zipfian\n"
      "burstiness does not hurt (they saw it mildly help: 121 vs 125\n"
      "vertices needed at g=100, because heavy flows concentrate load in a\n"
      "few arrays and quiet the rest).\n");
  std::printf("elapsed: %.1f s\n", bench::NowSeconds() - t0);
  return 0;
}
