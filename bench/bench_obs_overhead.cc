// Observability overhead check: the metrics layer must cost <2% on the
// sketch hot loop. The per-packet path carries no registry calls at all —
// sketches count into plain members and flush at epoch boundaries
// (PublishEpochMetrics) — so the only candidate costs are the epoch-end
// flush and whatever the optimizer does around the extra members. This
// binary measures BitmapSketch::Update over identical packet streams with
// the registry disabled and enabled, interleaved across trials, and prints
// the relative overhead.

#include <algorithm>
#include <cstdio>
#include <iostream>
#include <string>
#include <vector>

#include "bench_util.h"
#include "common/rng.h"
#include "common/table_printer.h"
#include "net/packet.h"
#include "obs/metrics.h"
#include "sketch/bitmap_sketch.h"

namespace {

using namespace dcs;

constexpr std::size_t kPayloadBytes = 512;

std::vector<Packet> MakePackets(std::size_t count, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<Packet> packets(count);
  for (Packet& packet : packets) {
    packet.payload.resize(kPayloadBytes);
    for (char& c : packet.payload) {
      c = static_cast<char>(rng.UniformInt(256));
    }
  }
  return packets;
}

// One timed pass: `epochs` measurement epochs over the packet pool, with
// the epoch-boundary flush included (it is part of the instrumented path).
// Returns elapsed seconds; `sink` defeats dead-code elimination.
double RunEpochs(BitmapSketch* sketch, const std::vector<Packet>& packets,
                 std::size_t epochs, std::uint64_t* sink) {
  const double start = bench::NowSeconds();
  for (std::size_t e = 0; e < epochs; ++e) {
    for (const Packet& packet : packets) {
      *sink += sketch->Update(packet);
    }
    sketch->PublishEpochMetrics();
    *sink += sketch->packets_recorded();
    sketch->Reset();
  }
  return bench::NowSeconds() - start;
}

}  // namespace

int main() {
  const BenchScale scale = BenchScaleFromEnv();
  bench::Banner("obs overhead", "metrics layer cost on the sketch hot loop",
                scale);
  const std::size_t packets_per_epoch =
      scale == BenchScale::kPaper ? 200000 : 50000;
  const std::size_t epochs = scale == BenchScale::kPaper ? 20 : 8;
  const int trials = bench::Trials(scale, 5, 9);

  const std::vector<Packet> packets = MakePackets(packets_per_epoch, 42);
  BitmapSketchOptions options;
  options.num_bits = 1u << 20;

  // Interleave configurations within each trial so frequency scaling and
  // cache warmth hit both equally; keep the best (least-disturbed) time.
  double best_off = 1e30;
  double best_on = 1e30;
  std::uint64_t sink = 0;
  for (int t = 0; t < trials; ++t) {
    MetricsRegistry::Global().set_enabled(false);
    BitmapSketch sketch_off(options);
    best_off =
        std::min(best_off, RunEpochs(&sketch_off, packets, epochs, &sink));

    MetricsRegistry::Global().set_enabled(true);
    BitmapSketch sketch_on(options);
    best_on =
        std::min(best_on, RunEpochs(&sketch_on, packets, epochs, &sink));
  }
  MetricsRegistry::Global().set_enabled(false);

  const double total_packets =
      static_cast<double>(packets_per_epoch) * static_cast<double>(epochs);
  const double overhead_pct = (best_on / best_off - 1.0) * 100.0;

  TablePrinter table({"config", "Mpkt/s", "ns/packet", "overhead %"});
  table.AddRow({"obs disabled",
                TablePrinter::Fmt(total_packets / best_off / 1e6, 2),
                TablePrinter::Fmt(best_off / total_packets * 1e9, 1), "-"});
  table.AddRow({"obs enabled",
                TablePrinter::Fmt(total_packets / best_on / 1e6, 2),
                TablePrinter::Fmt(best_on / total_packets * 1e9, 1),
                TablePrinter::Fmt(overhead_pct, 2)});
  table.Print(std::cout);

  std::printf("\nacceptance: overhead %s 2%% (measured %.2f%%)\n",
              overhead_pct < 2.0 ? "<" : ">=", overhead_pct);
  std::printf("(sink=%llu)\n", static_cast<unsigned long long>(sink));
  return overhead_pct < 2.0 ? 0 : 1;
}
