// Table II: the minimum statistically-meaningful cluster size m(g) in the
// unaligned case — the smallest number of correlated groups such that some
// (p1, d) pair gives type-I error below 1e-10 and type-II error below 5%
// (Eqs 2 and 3, co-tuned by brute force as in Section IV-C).
// Paper column: g=80 -> 297, 90 -> 150, 100 -> 95, 110 -> 62, 120 -> 46,
// 130 -> 36, 140 -> 28, 150 -> 23.

#include <cstdio>
#include <iostream>

#include "analysis/lambda_table.h"
#include "analysis/unaligned_model.h"
#include "analysis/unaligned_thresholds.h"
#include "bench_util.h"
#include "common/table_printer.h"

int main() {
  using namespace dcs;
  const BenchScale scale = BenchScaleFromEnv();
  bench::Banner("Table II",
                "non-naturally-occurring cluster bound m(g), unaligned",
                scale);

  const UnalignedSignalModel model{UnalignedModelOptions{}};
  UnalignedNnoOptions opts;
  opts.num_vertices = 102'400;

  const double t0 = bench::NowSeconds();
  TablePrinter table({"content packets g", "min cluster size m", "paper",
                      "best p1", "best d", "q(g) at best p1"});
  const int paper[] = {297, 150, 95, 62, 46, 36, 28, 23};
  int idx = 0;
  for (std::size_t g = 80; g <= 150; g += 10, ++idx) {
    const UnalignedNnoResult result =
        MinClusterSizeForContent(model, g, 10, opts);
    const double p_star =
        result.best_p1 > 0 ? LambdaTable::PStarFromEdgeProb(result.best_p1, 10)
                           : 0.0;
    table.AddRow({std::to_string(g),
                  result.min_cluster_size > 0
                      ? std::to_string(result.min_cluster_size)
                      : "infeasible",
                  std::to_string(paper[idx]),
                  TablePrinter::Fmt(result.best_p1, 7),
                  std::to_string(result.best_d),
                  result.best_p1 > 0
                      ? TablePrinter::Fmt(model.MatchExceedProb(g, p_star), 3)
                      : "-"});
  }
  table.Print(std::cout);
  std::printf("elapsed: %.1f s\n", bench::NowSeconds() - t0);
  return 0;
}
