// Naive vs refined ASID detector (Section III-B): the naive algorithm
// searches all n columns (O(n^2 log n)); the refined algorithm searches the
// heaviest-n' screen and scans the rest (O(n log n)). Measures the wall-time
// gap on detectable patterns, then quantifies the sensitivity cost of
// screening analytically: the naive floor is the non-naturally-occurring
// frontier, the refined floor the (higher) detectable frontier of Fig 12.

#include <cstdio>
#include <iostream>

#include "analysis/aligned_detector.h"
#include "analysis/aligned_thresholds.h"
#include "analysis/synthetic_matrix.h"
#include "bench_util.h"
#include "common/rng.h"
#include "common/table_printer.h"

namespace {

using namespace dcs;

struct Outcome {
  int detected = 0;
  double seconds = 0.0;
};

Outcome Run(const BitMatrix& matrix, std::size_t n_prime, int trials_done) {
  AlignedDetectorOptions opts;
  opts.first_iteration_hopefuls = n_prime;
  opts.hopefuls = std::min<std::size_t>(512, n_prime);
  AlignedDetector detector(opts);
  Outcome out;
  const double t0 = bench::NowSeconds();
  const AlignedDetection detection = detector.DetectInMatrix(matrix, n_prime);
  out.seconds = bench::NowSeconds() - t0;
  out.detected = detection.pattern_found ? 1 : 0;
  (void)trials_done;
  return out;
}

}  // namespace

int main() {
  const BenchScale scale = BenchScaleFromEnv();
  bench::Banner("ASID ablation", "naive (full matrix) vs refined (screen)",
                scale);

  const std::size_t m = 250;
  const std::size_t n = scale == BenchScale::kPaper ? 40000 : 12000;
  const std::size_t n_prime = 400;
  const int trials = bench::Trials(scale, 3, 10);

  Rng rng(bench::EnvSeed("DCS_SEED", 41));
  TablePrinter table({"pattern a x b", "algorithm", "searched columns",
                      "detected", "avg seconds"});

  struct Case {
    std::size_t a;
    std::size_t b;
    const char* note;
  };
  for (const Case c : {Case{70, 16, "comfortable"},
                       Case{45, 24, "moderate"}}) {
    Outcome naive_total;
    Outcome refined_total;
    for (int t = 0; t < trials; ++t) {
      SyntheticAlignedOptions mo;
      mo.m = m;
      mo.n = n;
      mo.pattern_rows = c.a;
      mo.pattern_cols = c.b;
      std::vector<std::uint32_t> rows;
      std::vector<std::size_t> cols;
      const BitMatrix matrix = SampleLiteralAligned(mo, &rng, &rows, &cols);
      const Outcome naive = Run(matrix, n, t);
      const Outcome refined = Run(matrix, n_prime, t);
      naive_total.detected += naive.detected;
      naive_total.seconds += naive.seconds;
      refined_total.detected += refined.detected;
      refined_total.seconds += refined.seconds;
    }
    const std::string label = std::to_string(c.a) + " x " +
                              std::to_string(c.b) + " (" + c.note + ")";
    table.AddRow({label, "naive", std::to_string(n),
                  TablePrinter::Fmt(
                      static_cast<double>(naive_total.detected) / trials, 2),
                  TablePrinter::Fmt(naive_total.seconds / trials, 2)});
    table.AddRow({label, "refined", std::to_string(n_prime),
                  TablePrinter::Fmt(
                      static_cast<double>(refined_total.detected) / trials,
                      2),
                  TablePrinter::Fmt(refined_total.seconds / trials, 2)});
  }
  std::printf("%zu x %zu matrices, %d trials per row:\n", m, n, trials);
  table.Print(std::cout);
  // Sensitivity cost of the screen, from the analytic frontiers.
  TablePrinter frontiers({"a (routers)", "naive floor: min NNO b",
                          "refined floor: min detectable b"});
  DetectabilityOptions calc;
  calc.n_prime = static_cast<std::int64_t>(n_prime);
  for (std::int64_t a : {40, 70, 100}) {
    const std::int64_t nno = MinNonNaturallyOccurringB(
        static_cast<std::int64_t>(m), static_cast<std::int64_t>(n), a,
        calc.epsilon);
    const std::int64_t detectable = DetectableThresholdB(
        static_cast<std::int64_t>(m), static_cast<std::int64_t>(n), a, 0.95,
        static_cast<std::int64_t>(n), calc);
    frontiers.AddRow({std::to_string(a),
                      nno > 0 ? std::to_string(nno) : "-",
                      detectable > 0 ? std::to_string(detectable) : "-"});
  }
  std::printf("\nsensitivity floors at this geometry (m = %zu, n = %zu, "
              "n' = %zu):\n", m, n, n_prime);
  frontiers.Print(std::cout);
  std::printf(
      "\nThe refined screen gives a ~(n/n')x speedup on the quadratic "
      "stage and pays for it\nwith the gap between the two floors — the "
      "tradeoff Fig 12 charts at paper scale.\n");
  return 0;
}
