// Hot object: aligned common content across epochs, with the raw-aggregation
// strawman for comparison.
//
// A newly released file spreads over P2P: identical byte-for-byte copies
// (the aligned case) cross a growing set of links over three measurement
// epochs. The monitor is re-armed each epoch; detection kicks in once the
// pattern crosses the detectable threshold. The raw-aggregation baseline
// finds the same content but has to ship every byte to the center.
//
// Build & run:   ./build/examples/hot_object

#include <cstdio>
#include <vector>

#include "baseline/raw_aggregation.h"
#include "dcs/dcs.h"
#include "dcs/epoch_tracker.h"
#include "traffic/content_catalog.h"
#include "traffic/trace_synthesizer.h"

namespace {

constexpr std::uint32_t kRouters = 30;

std::vector<dcs::PacketTrace> EpochTraffic(std::uint64_t epoch,
                                           std::uint32_t spread_routers,
                                           const dcs::ContentCatalog& catalog) {
  dcs::ScenarioOptions scenario;
  scenario.num_routers = kRouters;
  scenario.background_packets_per_router = 8000;
  scenario.seed = 1000 + epoch;
  if (spread_routers >= 2) {
    dcs::PlantedContent object;
    object.content_id = 31337;
    object.content_bytes = 536 * 25;  // 25-packet hot file.
    for (std::uint32_t r = 0; r < spread_routers; ++r) {
      object.router_ids.push_back(r);
    }
    object.aligned = true;
    scenario.planted = {object};
  }
  return dcs::SynthesizeScenario(scenario, catalog);
}

}  // namespace

int main() {
  dcs::ContentCatalog catalog(3);

  dcs::AlignedPipelineOptions options;
  options.sketch.num_bits = 1 << 13;
  options.n_prime = 128;
  options.detector.first_iteration_hopefuls = 128;
  options.detector.hopefuls = 64;

  dcs::DcsMonitor monitor(options, dcs::UnalignedPipelineOptions{});

  // Cross-epoch smoothing (the paper runs detection every second and lets
  // persistence separate real spreads from one-off flukes).
  dcs::EpochTrackerOptions tracker_opts;
  tracker_opts.window_epochs = 3;
  tracker_opts.min_detections = 2;
  dcs::EpochTracker tracker(tracker_opts);

  // The file reaches 4, 12, 24, then 24 links across four epochs.
  const std::uint32_t spread[] = {4, 12, 24, 24};
  for (std::uint64_t epoch = 0; epoch < 4; ++epoch) {
    const auto traces = EpochTraffic(epoch, spread[epoch], catalog);
    monitor.ClearEpoch();
    for (std::uint32_t router = 0; router < kRouters; ++router) {
      dcs::AlignedCollector collector(router, options.sketch);
      const auto epochs =
          traces[router].SplitIntoEpochs(traces[router].size());
      const dcs::Status status =
          monitor.AddDigest(collector.ProcessEpoch(epochs[0]));
      if (!status.ok()) {
        std::fprintf(stderr, "AddDigest: %s\n", status.ToString().c_str());
        return 1;
      }
    }
    const dcs::AlignedReport report = monitor.AnalyzeAligned();
    std::printf("epoch %llu: object on %2u links -> %s",
                static_cast<unsigned long long>(epoch), spread[epoch],
                report.common_content_detected ? "DETECTED" : "below threshold");
    if (report.common_content_detected) {
      std::printf(" (%zu routers, %zu signature columns)",
                  report.routers.size(), report.signature_columns.size());
    }
    tracker.RecordEpoch(report.common_content_detected, report.routers);
    if (tracker.PersistentDetection()) {
      std::printf("\n          persistent across epochs -> ALARM; stable "
                  "routers: %zu\n", tracker.StableRouters().size());
    } else {
      std::printf("\n");
    }

    // Raw-aggregation comparison on the final epoch.
    if (epoch == 3) {
      dcs::RawAggregationOptions raw_opts;
      raw_opts.min_routers = 10;
      dcs::RawAggregationDetector raw(raw_opts);
      for (std::uint32_t r = 0; r < kRouters; ++r) {
        raw.AddRouterTrace(r, traces[r]);
      }
      const auto findings = raw.Findings();
      std::printf(
          "\n[raw aggregation strawman] found %zu common fingerprints but "
          "shipped %.1f MB to the center;\nDCS shipped %.1f KB "
          "(%.0fx less) for the same verdict.\n",
          findings.size(), static_cast<double>(raw.bytes_shipped()) / 1e6,
          static_cast<double>(monitor.digest_bytes_received()) / 1e3,
          static_cast<double>(raw.bytes_shipped()) /
              static_cast<double>(monitor.digest_bytes_received()));
    }
  }
  return 0;
}
