// Quickstart: the smallest complete DCS deployment.
//
// Twenty-four routers each stream one epoch of traffic through an aligned-case
// bitmap sketch; the analysis center stacks the digests and looks for
// common content. A 15-packet object is planted at 18 of the routers.
//
// Build & run:   ./build/examples/quickstart

#include <cstdio>

#include "dcs/dcs.h"
#include "traffic/content_catalog.h"
#include "traffic/trace_synthesizer.h"

int main() {
  // --- 1. Describe the world: 24 routers, background noise, one common
  //        object crossing routers 0..17.
  dcs::ScenarioOptions scenario;
  scenario.num_routers = 24;
  scenario.background_packets_per_router = 4000;
  dcs::PlantedContent worm;
  worm.content_id = 1;
  worm.content_bytes = 536 * 15;  // 15 MSS-sized packets.
  for (std::uint32_t r = 0; r < 18; ++r) worm.router_ids.push_back(r);
  worm.aligned = true;
  scenario.planted = {worm};

  dcs::ContentCatalog catalog(/*seed=*/42);
  const std::vector<dcs::PacketTrace> traces =
      dcs::SynthesizeScenario(scenario, catalog);

  // --- 2. Each router runs its data-collection module and ships a digest.
  dcs::AlignedPipelineOptions options;
  options.sketch.num_bits = 1 << 13;  // Scaled for a demo epoch.
  options.n_prime = 128;
  options.detector.first_iteration_hopefuls = 128;
  options.detector.hopefuls = 64;

  dcs::DcsMonitor monitor(options, dcs::UnalignedPipelineOptions{});
  for (std::uint32_t router = 0; router < scenario.num_routers; ++router) {
    dcs::AlignedCollector collector(router, options.sketch);
    const auto epochs = traces[router].SplitIntoEpochs(traces[router].size());
    const dcs::Digest digest = collector.ProcessEpoch(epochs[0]);
    std::printf("router %u: %llu packets -> digest of %zu bytes (%.0fx)\n",
                router,
                static_cast<unsigned long long>(digest.packets_covered),
                digest.EncodedSizeBytes(), digest.CompressionFactor());
    const dcs::Status status = monitor.AddDigest(digest);
    if (!status.ok()) {
      std::fprintf(stderr, "AddDigest: %s\n", status.ToString().c_str());
      return 1;
    }
  }

  // --- 3. The analysis center correlates the digests.
  const dcs::AlignedReport report = monitor.AnalyzeAligned();
  std::printf("\n%s\n", report.ToString().c_str());
  if (!report.common_content_detected) return 2;
  std::printf("routers that saw the common content:");
  for (std::uint32_t r : report.routers) std::printf(" %u", r);
  std::printf("\nsignature spans %zu bitmap columns\n",
              report.signature_columns.size());

  // --- 4. Act on it: a router-side filter that flags the content's packets
  //        for logging (false-match rate = |signature| / bitmap bits).
  dcs::SignatureFilter filter(report.signature_columns, options.sketch);
  std::size_t flagged = 0;
  for (const dcs::Packet& pkt : traces[0]) {
    flagged += filter.Matches(pkt) ? 1u : 0u;
  }
  std::printf("router 0 filter: flagged %zu of %zu packets "
              "(false-match rate %.4f)\n",
              flagged, traces[0].size(), filter.FalseMatchProbability());
  return 0;
}
