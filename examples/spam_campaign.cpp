// Spam campaign: sizing a deployment with the paper's threshold machinery,
// then watching it fire.
//
// A spam run sends the same message body (behind per-recipient SMTP
// headers — the unaligned case) through many links. Before deploying, an
// operator can ask the Section IV-C calculators: for a message of g packets,
// how many groups must see it before the cluster is statistically
// meaningful, and what (p1, d) should the analysis use? We print that sizing
// table for the paper-scale deployment, then run a scaled-down live
// deployment against a campaign.
//
// Build & run:   ./build/examples/spam_campaign

#include <cstdio>
#include <iostream>

#include "analysis/unaligned_model.h"
#include "analysis/unaligned_thresholds.h"
#include "common/table_printer.h"
#include "dcs/dcs.h"
#include "traffic/content_catalog.h"
#include "traffic/trace_synthesizer.h"

int main() {
  std::printf("=== spam campaign (unaligned) ===\n\n");

  // --- Deployment sizing from the threshold calculators (paper scale).
  const dcs::UnalignedSignalModel model{dcs::UnalignedModelOptions{}};
  dcs::UnalignedNnoOptions nno;
  nno.num_vertices = 102'400;  // 800 OC-48 links x 128 groups.
  dcs::TablePrinter sizing({"message packets g", "min cluster m", "p1", "d"});
  for (std::size_t g : {100u, 120u, 150u}) {
    const dcs::UnalignedNnoResult r =
        dcs::MinClusterSizeForContent(model, g, 10, nno);
    sizing.AddRow({std::to_string(g), std::to_string(r.min_cluster_size),
                   dcs::TablePrinter::Fmt(r.best_p1, 7),
                   std::to_string(r.best_d)});
  }
  std::printf("minimum statistically-meaningful cluster size "
              "(102,400 groups):\n");
  sizing.Print(std::cout);

  // --- Scaled-down live run: 18 links, 14 of them carrying the campaign.
  dcs::ScenarioOptions scenario;
  scenario.num_routers = 18;
  scenario.background_packets_per_router = 9000;
  dcs::PlantedContent spam;
  spam.content_id = 419;
  spam.content_bytes = 536 * 120;  // Large HTML spam body.
  for (std::uint32_t r = 0; r < 14; ++r) spam.router_ids.push_back(r);
  spam.aligned = false;
  spam.instances_per_router = 5;  // Five recipients behind each link.
  scenario.planted = {spam};
  dcs::ContentCatalog catalog(11);
  const auto traces = dcs::SynthesizeScenario(scenario, catalog);

  dcs::UnalignedPipelineOptions options;
  options.sketch.num_groups = 16;
  options.er_threshold = 45;
  options.detector.beta = 30;
  options.detector.expand_min_edges = 3;

  dcs::DcsMonitor monitor(dcs::AlignedPipelineOptions{}, options);
  dcs::Rng offsets_rng(99);
  for (std::uint32_t router = 0; router < scenario.num_routers; ++router) {
    dcs::UnalignedCollector collector(router, options.sketch, &offsets_rng);
    const auto epochs = traces[router].SplitIntoEpochs(traces[router].size());
    const dcs::Status status =
        monitor.AddDigest(collector.ProcessEpoch(epochs[0]));
    if (!status.ok()) {
      std::fprintf(stderr, "AddDigest: %s\n", status.ToString().c_str());
      return 1;
    }
  }
  const dcs::UnalignedReport report = monitor.AnalyzeUnaligned();
  std::printf("\nlive run: %s\n", report.ToString().c_str());
  if (report.common_content_detected) {
    std::printf("links to fit with spam filters:");
    for (std::uint32_t r : report.routers) std::printf(" %u", r);
    std::printf("\n");
  }
  return report.common_content_detected ? 0 : 2;
}
