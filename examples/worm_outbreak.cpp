// Worm outbreak: the unaligned case end to end.
//
// An email worm (fixed body behind a variable SMTP header, Section II-A of
// the paper) spreads across 16 of 20 monitored links. Each instance has a
// random prefix, so the aligned sketch is blind to it; the offset-sampling +
// flow-splitting sketch catches it. We also run the EarlyBird-style local
// detector on one link to demonstrate why single-vantage monitoring misses
// distributed content entirely.
//
// Build & run:   ./build/examples/worm_outbreak

#include <cstdio>

#include "baseline/local_detector.h"
#include "dcs/dcs.h"
#include "traffic/content_catalog.h"
#include "traffic/trace_synthesizer.h"

int main() {
  std::printf("=== worm outbreak (unaligned common content) ===\n\n");

  dcs::ScenarioOptions scenario;
  scenario.num_routers = 20;
  scenario.background_packets_per_router = 9500;
  dcs::PlantedContent worm;
  worm.content_id = 666;
  worm.content_bytes = 536 * 100;  // 100-packet worm body.
  for (std::uint32_t r = 0; r < 16; ++r) worm.router_ids.push_back(r);
  worm.aligned = false;            // Variable SMTP-style prefix.
  worm.max_prefix_bytes = 535;
  worm.instances_per_router = 4;   // Four recipients behind each link.
  scenario.planted = {worm};

  dcs::ContentCatalog catalog(7);
  const auto traces = dcs::SynthesizeScenario(scenario, catalog);
  std::printf("synthesized %zu router traces (~%zu packets each)\n",
              traces.size(), traces[0].size());

  // --- Single-vantage baseline: blind by design.
  dcs::LocalDetectorOptions local_opts;
  local_opts.prevalence_threshold = 6;
  dcs::LocalPrevalenceDetector local(local_opts);
  for (const dcs::Packet& pkt : traces[0]) local.Update(pkt);
  std::printf(
      "\n[local baseline] router 0 sees %zu distinct fingerprints; "
      "prevalent (>=6 packets): %zu -> the worm is invisible locally\n",
      local.table_size(), local.PrevalentFingerprints().size());

  // --- DCS pipeline.
  dcs::UnalignedPipelineOptions options;
  options.sketch.num_groups = 16;
  options.er_threshold = 50;
  options.detector.beta = 30;
  options.detector.expand_min_edges = 3;

  dcs::DcsMonitor monitor(dcs::AlignedPipelineOptions{}, options);
  dcs::Rng offsets_rng(2026);
  std::uint64_t digest_bytes = 0;
  std::uint64_t raw_bytes = 0;
  for (std::uint32_t router = 0; router < scenario.num_routers; ++router) {
    dcs::UnalignedCollector collector(router, options.sketch, &offsets_rng);
    const auto epochs = traces[router].SplitIntoEpochs(traces[router].size());
    const dcs::Digest digest = collector.ProcessEpoch(epochs[0]);
    digest_bytes += digest.EncodedSizeBytes();
    raw_bytes += digest.raw_bytes_covered;
    const dcs::Status status = monitor.AddDigest(digest);
    if (!status.ok()) {
      std::fprintf(stderr, "AddDigest: %s\n", status.ToString().c_str());
      return 1;
    }
  }
  std::printf(
      "\n[collection] %.1f MB of traffic -> %.1f KB of digests (%.0fx "
      "reduction)\n",
      static_cast<double>(raw_bytes) / 1e6,
      static_cast<double>(digest_bytes) / 1e3,
      static_cast<double>(raw_bytes) / static_cast<double>(digest_bytes));

  const dcs::UnalignedReport report = monitor.AnalyzeUnaligned();
  std::printf("\n[analysis center] largest connected component: %zu "
              "(threshold %zu)\n",
              report.largest_component, report.er_threshold);
  std::printf("%s\n", report.ToString().c_str());
  if (!report.common_content_detected) {
    std::printf("no common content declared\n");
    return 2;
  }
  std::printf("\nrouters flagged for packet logging / IDS follow-up:");
  for (std::uint32_t r : report.routers) std::printf(" %u", r);
  std::printf("\n(%zu of them are genuinely infected links 0..15)\n",
              report.routers.size());
  return 0;
}
