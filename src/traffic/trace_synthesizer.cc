#include "traffic/trace_synthesizer.h"

#include <algorithm>
#include <string>

#include "common/hash.h"
#include "common/logging.h"
#include "net/packetizer.h"

namespace dcs {

std::vector<PacketTrace> SynthesizeScenario(const ScenarioOptions& options,
                                            const ContentCatalog& catalog) {
  std::vector<PacketTrace> traces(options.num_routers);
  Rng scenario_rng(options.seed);

  for (std::size_t r = 0; r < options.num_routers; ++r) {
    Rng router_rng = scenario_rng.Fork();
    FlowGenerator generator(options.background, &router_rng);
    generator.Generate(options.background_packets_per_router, &traces[r]);
  }

  PacketizerOptions packetizer;
  packetizer.mss = options.mss;

  for (const PlantedContent& plant : options.planted) {
    const std::string content =
        catalog.ContentBytes(plant.content_id, plant.content_bytes);
    for (std::uint32_t router : plant.router_ids) {
      DCS_CHECK(router < options.num_routers);
      for (std::size_t inst = 0; inst < plant.instances_per_router; ++inst) {
        // Each instance is its own flow with its own (possibly empty)
        // prefix.
        FlowLabel flow;
        flow.src_ip = static_cast<std::uint32_t>(scenario_rng.Next());
        flow.dst_ip = static_cast<std::uint32_t>(scenario_rng.Next());
        flow.src_port =
            static_cast<std::uint16_t>(scenario_rng.UniformInt(64512) + 1024);
        flow.dst_port =
            static_cast<std::uint16_t>(scenario_rng.UniformInt(64512) + 1024);

        std::string prefix;
        if (!plant.aligned && plant.max_prefix_bytes > 0) {
          const std::size_t prefix_len =
              scenario_rng.UniformInt(plant.max_prefix_bytes + 1);
          // Prefix bytes are instance-specific (e.g. per-recipient SMTP
          // headers), so they never correlate across instances.
          Rng prefix_rng(scenario_rng.Next());
          prefix.resize(prefix_len);
          for (std::size_t i = 0; i < prefix_len; ++i) {
            prefix[i] = static_cast<char>(prefix_rng.UniformInt(256));
          }
        }

        std::vector<Packet> packets =
            PacketizeObject(flow, prefix, content, packetizer);
        // Splice at a random position; sketches are order-insensitive.
        PacketTrace& trace = traces[router];
        PacketTrace merged;
        const std::size_t insert_at =
            trace.size() == 0 ? 0 : scenario_rng.UniformInt(trace.size());
        for (std::size_t i = 0; i < trace.size(); ++i) {
          if (i == insert_at) {
            for (Packet& pkt : packets) merged.Add(std::move(pkt));
          }
          merged.Add(trace[i]);
        }
        if (insert_at >= trace.size()) {
          for (Packet& pkt : packets) merged.Add(std::move(pkt));
        }
        trace = std::move(merged);
      }
    }
  }
  return traces;
}

}  // namespace dcs
