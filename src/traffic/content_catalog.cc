#include "traffic/content_catalog.h"

#include "common/hash.h"
#include "common/rng.h"

namespace dcs {

std::string ContentCatalog::ContentBytes(std::uint64_t content_id,
                                         std::size_t num_bytes) const {
  Rng rng(HashCombine(seed_, Mix64(content_id)));
  std::string bytes;
  bytes.resize(num_bytes);
  std::size_t pos = 0;
  while (pos < num_bytes) {
    const std::uint64_t word = rng.Next();
    for (int b = 0; b < 8 && pos < num_bytes; ++b, ++pos) {
      bytes[pos] = static_cast<char>((word >> (8 * b)) & 0xFF);
    }
  }
  return bytes;
}

std::string ContentCatalog::ContentForPackets(std::uint64_t content_id,
                                              std::size_t num_packets,
                                              std::size_t mss) const {
  return ContentBytes(content_id, num_packets * mss);
}

}  // namespace dcs
