#ifndef DCS_TRAFFIC_CONTENT_CATALOG_H_
#define DCS_TRAFFIC_CONTENT_CATALOG_H_

#include <cstdint>
#include <string>

namespace dcs {

/// \brief Deterministic factory for content objects (worm bodies, hot files,
/// spam messages).
///
/// A content id always yields the same byte string, so independently
/// synthesized router traces can carry instances of the same object — the
/// "common content" the detectors look for. Bytes are pseudo-random, which
/// matches the paper's observation that real payloads passed its randomness
/// test.
class ContentCatalog {
 public:
  /// Catalog keyed by `seed`; different seeds give disjoint object spaces.
  explicit ContentCatalog(std::uint64_t seed) : seed_(seed) {}

  /// The object with this id, `num_bytes` long.
  std::string ContentBytes(std::uint64_t content_id,
                           std::size_t num_bytes) const;

  /// Convenience: an object spanning exactly `num_packets` full MSS-sized
  /// segments.
  std::string ContentForPackets(std::uint64_t content_id,
                                std::size_t num_packets,
                                std::size_t mss) const;

 private:
  std::uint64_t seed_;
};

}  // namespace dcs

#endif  // DCS_TRAFFIC_CONTENT_CATALOG_H_
