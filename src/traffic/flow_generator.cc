#include "traffic/flow_generator.h"

#include "common/hash.h"
#include "common/logging.h"

namespace dcs {

FlowGenerator::FlowGenerator(const BackgroundTrafficOptions& options,
                             Rng* rng)
    : options_(options),
      rng_(rng),
      flow_size_sampler_(options.max_flow_packets, options.zipf_alpha) {
  DCS_CHECK(rng != nullptr);
  DCS_CHECK(options.frac_small + options.frac_mss + options.frac_large <=
            1.0 + 1e-9);
}

FlowLabel FlowGenerator::RandomFlow() {
  FlowLabel flow;
  flow.src_ip = static_cast<std::uint32_t>(rng_->Next());
  flow.dst_ip = static_cast<std::uint32_t>(rng_->Next());
  flow.src_port = static_cast<std::uint16_t>(rng_->UniformInt(64512) + 1024);
  flow.dst_port = static_cast<std::uint16_t>(rng_->UniformInt(64512) + 1024);
  flow.protocol = 6;
  return flow;
}

void FlowGenerator::Generate(std::size_t num_packets, PacketTrace* trace) {
  DCS_CHECK(trace != nullptr);
  std::size_t produced = 0;
  while (produced < num_packets) {
    const FlowLabel flow = RandomFlow();
    const std::uint64_t flow_packets = flow_size_sampler_.Sample(rng_);
    // Unique per-flow payload source; packets within the flow differ too.
    const std::uint64_t flow_seed =
        HashCombine(rng_->Next(), next_flow_serial_++);
    Rng payload_rng(flow_seed);
    for (std::uint64_t p = 0; p < flow_packets; ++p) {
      Packet pkt;
      pkt.flow = flow;
      const double u = rng_->UniformDouble();
      std::size_t payload_bytes;
      if (u < options_.frac_small) {
        payload_bytes = 0;  // 40 B header-only packet.
      } else if (u < options_.frac_small + options_.frac_large) {
        payload_bytes = 1460;  // 1500 B packet.
      } else {
        payload_bytes = 536;  // 576 B packet (the MSS default bucket).
      }
      pkt.payload.resize(payload_bytes);
      std::size_t pos = 0;
      while (pos < payload_bytes) {
        const std::uint64_t word = payload_rng.Next();
        for (int b = 0; b < 8 && pos < payload_bytes; ++b, ++pos) {
          pkt.payload[pos] = static_cast<char>((word >> (8 * b)) & 0xFF);
        }
      }
      trace->Add(std::move(pkt));
      ++produced;
    }
  }
}

}  // namespace dcs
