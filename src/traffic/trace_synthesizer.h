#ifndef DCS_TRAFFIC_TRACE_SYNTHESIZER_H_
#define DCS_TRAFFIC_TRACE_SYNTHESIZER_H_

#include <cstdint>
#include <vector>

#include "net/trace.h"
#include "traffic/content_catalog.h"
#include "traffic/flow_generator.h"

namespace dcs {

/// One planted common-content event in a multi-router scenario.
struct PlantedContent {
  /// Catalog id of the object all instances share.
  std::uint64_t content_id = 0;
  /// Object length in bytes (typically a multiple of the MSS so it spans
  /// `b` full packets — the paper's pattern width).
  std::size_t content_bytes = 0;
  /// Routers that see an instance of this object (the paper's `a` / `n1`).
  std::vector<std::uint32_t> router_ids;
  /// Aligned case: every instance starts at payload offset 0. Unaligned
  /// case: each instance gets a uniform random prefix in
  /// [0, max_prefix_bytes] — the variable SMTP-style header of Section II-A.
  bool aligned = true;
  std::size_t max_prefix_bytes = 535;
  /// Instances per listed router (flow splitting registers multiple
  /// instances in separate groups, further boosting the signal).
  std::size_t instances_per_router = 1;
};

/// Multi-router scenario description.
struct ScenarioOptions {
  std::size_t num_routers = 8;
  /// Background packets synthesized per router epoch.
  std::size_t background_packets_per_router = 20000;
  BackgroundTrafficOptions background;
  /// MSS used to packetize planted objects.
  std::size_t mss = 536;
  std::vector<PlantedContent> planted;
  std::uint64_t seed = 42;
};

/// \brief Synthesizes one epoch of per-router traces with planted common
/// content — the library's substitute for the paper's tier-1 ISP traces.
///
/// Each router gets independent background traffic; every planted instance
/// becomes its own flow (random 5-tuple) inserted at a random position in
/// the router's trace. The sketches are order-insensitive within an epoch,
/// so contiguous insertion is equivalent to interleaving.
std::vector<PacketTrace> SynthesizeScenario(const ScenarioOptions& options,
                                            const ContentCatalog& catalog);

}  // namespace dcs

#endif  // DCS_TRAFFIC_TRACE_SYNTHESIZER_H_
