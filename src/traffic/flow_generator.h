#ifndef DCS_TRAFFIC_FLOW_GENERATOR_H_
#define DCS_TRAFFIC_FLOW_GENERATOR_H_

#include <cstdint>

#include "common/distributions.h"
#include "common/rng.h"
#include "net/trace.h"

namespace dcs {

/// Background-traffic model parameters.
struct BackgroundTrafficOptions {
  /// Zipf exponent for flow sizes — the paper leans on the Zipfian nature of
  /// Internet traffic [10].
  double zipf_alpha = 1.1;
  /// Flow sizes are Zipf over [1, max_flow_packets]. Raising this makes the
  /// flow split burstier (Section V-B.4 stress axis).
  std::uint64_t max_flow_packets = 2000;
  /// Packet size mix, following the popular-sizes observation of [3]:
  /// fractions of 40 B (header only, no payload), 576 B (536 B payload) and
  /// 1500 B (1460 B payload) packets. Must sum to <= 1; the remainder is
  /// 576 B.
  double frac_small = 0.35;
  double frac_mss = 0.40;
  double frac_large = 0.25;
  /// Background payload entropy source: each flow carries its own random
  /// object, so cross-flow payload collisions have negligible probability.
  std::size_t payload_hash_bytes = 64;
};

/// \brief Generates background (noise) traffic for one router.
///
/// Flows are drawn until the requested packet budget is met: each flow gets
/// a random 5-tuple, a Zipf-distributed size in packets, and per-packet
/// sizes from the configured mix. Payload bytes are unique per flow.
class FlowGenerator {
 public:
  FlowGenerator(const BackgroundTrafficOptions& options, Rng* rng);

  /// Appends approximately `num_packets` background packets to `trace`
  /// (never fewer; the last flow may overshoot by its tail).
  void Generate(std::size_t num_packets, PacketTrace* trace);

  /// Draws a fresh random flow label.
  FlowLabel RandomFlow();

 private:
  BackgroundTrafficOptions options_;
  Rng* rng_;
  ZipfSampler flow_size_sampler_;
  std::uint64_t next_flow_serial_ = 0;
};

}  // namespace dcs

#endif  // DCS_TRAFFIC_FLOW_GENERATOR_H_
