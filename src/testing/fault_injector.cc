#include "testing/fault_injector.h"

#include <sstream>

#include "common/logging.h"
#include "netio/frame.h"
#include "sketch/digest.h"

namespace dcs {
namespace {

std::uint64_t ReadU64(const std::vector<std::uint8_t>& bytes,
                      std::size_t offset) {
  std::uint64_t v = 0;
  for (std::size_t i = 0; i < 8; ++i) {
    v |= static_cast<std::uint64_t>(bytes[offset + i]) << (8 * i);
  }
  return v;
}

void WriteU64(std::vector<std::uint8_t>* bytes, std::size_t offset,
              std::uint64_t v) {
  for (std::size_t i = 0; i < 8; ++i) {
    (*bytes)[offset + i] = static_cast<std::uint8_t>(v >> (8 * i));
  }
}

std::uint32_t ReadU32(const std::vector<std::uint8_t>& bytes,
                      std::size_t offset) {
  std::uint32_t v = 0;
  for (std::size_t i = 0; i < 4; ++i) {
    v |= static_cast<std::uint32_t>(bytes[offset + i]) << (8 * i);
  }
  return v;
}

void WriteU32(std::vector<std::uint8_t>* bytes, std::size_t offset,
              std::uint32_t v) {
  for (std::size_t i = 0; i < 4; ++i) {
    (*bytes)[offset + i] = static_cast<std::uint8_t>(v >> (8 * i));
  }
}

}  // namespace

const char* FaultKindName(FaultKind kind) {
  switch (kind) {
    case FaultKind::kNone:
      return "none";
    case FaultKind::kDrop:
      return "drop";
    case FaultKind::kBitFlip:
      return "bit_flip";
    case FaultKind::kTruncate:
      return "truncate";
    case FaultKind::kGarbage:
      return "garbage";
    case FaultKind::kDuplicate:
      return "duplicate";
    case FaultKind::kStaleEpoch:
      return "stale_epoch";
    case FaultKind::kFutureEpoch:
      return "future_epoch";
    case FaultKind::kLyingShape:
      return "lying_shape";
  }
  return "unknown";
}

Status FaultSpec::Parse(const std::string& text, FaultSpec* out) {
  DCS_CHECK(out != nullptr);
  FaultSpec spec;
  std::istringstream stream(text);
  std::string item;
  while (std::getline(stream, item, ',')) {
    if (item.empty()) continue;
    const std::size_t eq = item.find('=');
    if (eq == std::string::npos) {
      return Status::InvalidArgument("fault spec item missing '=': " + item);
    }
    const std::string key = item.substr(0, eq);
    const std::string value = item.substr(eq + 1);
    char* end = nullptr;
    if (key == "seed") {
      spec.seed = std::strtoull(value.c_str(), &end, 10);
    } else {
      const double p = std::strtod(value.c_str(), &end);
      if (p < 0.0 || p > 1.0) {
        return Status::InvalidArgument("fault probability out of [0,1]: " +
                                       item);
      }
      if (key == "drop") {
        spec.drop = p;
      } else if (key == "flip") {
        spec.bit_flip = p;
      } else if (key == "truncate") {
        spec.truncate = p;
      } else if (key == "garbage") {
        spec.garbage = p;
      } else if (key == "duplicate") {
        spec.duplicate = p;
      } else if (key == "stale") {
        spec.stale_epoch = p;
      } else if (key == "future") {
        spec.future_epoch = p;
      } else if (key == "shape") {
        spec.lying_shape = p;
      } else {
        return Status::InvalidArgument("unknown fault spec key: " + key);
      }
    }
    if (end == nullptr || *end != '\0') {
      return Status::InvalidArgument("bad fault spec value: " + item);
    }
  }
  const double total = spec.drop + spec.bit_flip + spec.truncate +
                       spec.garbage + spec.duplicate + spec.stale_epoch +
                       spec.future_epoch + spec.lying_shape;
  if (total > 1.0) {
    return Status::InvalidArgument("fault probabilities sum above 1");
  }
  *out = spec;
  return Status::Ok();
}

std::string FaultPlan::ToString() const {
  std::ostringstream os;
  os << "FaultPlan{seed=" << seed;
  for (const PlannedFault& fault : faults) {
    if (fault.kind == FaultKind::kNone) continue;
    os << " " << fault.router_id << ":" << FaultKindName(fault.kind);
  }
  os << "}";
  return os.str();
}

FaultPlan MaterializeFaultPlan(const FaultSpec& spec,
                               std::uint32_t num_routers) {
  FaultPlan plan;
  plan.seed = spec.seed;
  plan.faults.reserve(num_routers);
  Rng rng(spec.seed);
  // Cumulative thresholds in a fixed kind order keep the plan stable under
  // spec-field reordering.
  const struct {
    double p;
    FaultKind kind;
  } table[] = {
      {spec.drop, FaultKind::kDrop},
      {spec.bit_flip, FaultKind::kBitFlip},
      {spec.truncate, FaultKind::kTruncate},
      {spec.garbage, FaultKind::kGarbage},
      {spec.duplicate, FaultKind::kDuplicate},
      {spec.stale_epoch, FaultKind::kStaleEpoch},
      {spec.future_epoch, FaultKind::kFutureEpoch},
      {spec.lying_shape, FaultKind::kLyingShape},
  };
  for (std::uint32_t r = 0; r < num_routers; ++r) {
    PlannedFault fault;
    fault.router_id = r;
    // Draw both values for every router so one router's outcome never
    // shifts another's randomness.
    const double u = rng.UniformDouble();
    fault.mutation_seed = rng.Next();
    double cumulative = 0.0;
    for (const auto& entry : table) {
      cumulative += entry.p;
      if (u < cumulative) {
        fault.kind = entry.kind;
        break;
      }
    }
    plan.faults.push_back(fault);
  }
  return plan;
}

FaultInjector::FaultInjector(FaultPlan plan) : plan_(std::move(plan)) {}

std::vector<std::vector<std::uint8_t>> FaultInjector::Apply(
    std::uint32_t router_id, const std::vector<std::uint8_t>& encoded) const {
  PlannedFault fault;
  if (router_id < plan_.faults.size()) fault = plan_.faults[router_id];
  Rng rng(fault.mutation_seed);
  switch (fault.kind) {
    case FaultKind::kNone:
      return {encoded};
    case FaultKind::kDrop:
      return {};
    case FaultKind::kBitFlip:
      return {FlipBits(encoded, &rng)};
    case FaultKind::kTruncate:
      return {Truncate(encoded, &rng)};
    case FaultKind::kGarbage:
      return {Garbage(encoded.size(), &rng)};
    case FaultKind::kDuplicate:
      return {encoded, encoded};
    case FaultKind::kStaleEpoch:
    case FaultKind::kFutureEpoch: {
      if (encoded.size() <
          DigestWireLayout::kEpochIdOffset + 8 +
              DigestWireLayout::kChecksumBytes) {
        return {encoded};
      }
      const std::uint64_t epoch =
          ReadU64(encoded, DigestWireLayout::kEpochIdOffset);
      const std::uint64_t skew = 1 + rng.UniformInt(100);
      // Unsigned wraparound for a stale epoch at 0 still lands far outside
      // any sane skew window, which is the point.
      const std::uint64_t lied = fault.kind == FaultKind::kStaleEpoch
                                     ? epoch - skew
                                     : epoch + skew;
      return {RewriteEpoch(encoded, lied)};
    }
    case FaultKind::kLyingShape:
      return {LieAboutShape(encoded, &rng)};
  }
  return {encoded};
}

std::vector<std::uint8_t> FaultInjector::FlipBits(
    std::vector<std::uint8_t> bytes, Rng* rng) {
  DCS_CHECK(rng != nullptr);
  if (bytes.empty()) return bytes;
  const std::uint64_t total_bits = bytes.size() * 8;
  const std::uint64_t flips =
      1 + rng->UniformInt(total_bits < 8 ? total_bits : 8);
  // Distinct positions: a bit flipped twice restores itself, and the fuzz
  // suite's contract is that every mutation actually changes the buffer.
  std::vector<std::uint64_t> chosen;
  while (chosen.size() < flips) {
    const std::uint64_t bit = rng->UniformInt(total_bits);
    bool fresh = true;
    for (const std::uint64_t seen : chosen) fresh = fresh && seen != bit;
    if (!fresh) continue;
    chosen.push_back(bit);
    bytes[bit >> 3] ^= static_cast<std::uint8_t>(1u << (bit & 7));
  }
  return bytes;
}

std::vector<std::uint8_t> FaultInjector::Truncate(
    std::vector<std::uint8_t> bytes, Rng* rng) {
  DCS_CHECK(rng != nullptr);
  if (bytes.empty()) return bytes;
  bytes.resize(rng->UniformInt(bytes.size()));  // Cuts at least one byte.
  return bytes;
}

std::vector<std::uint8_t> FaultInjector::Garbage(std::size_t num_bytes,
                                                 Rng* rng) {
  DCS_CHECK(rng != nullptr);
  std::vector<std::uint8_t> out(num_bytes);
  for (std::uint8_t& b : out) b = static_cast<std::uint8_t>(rng->Next());
  return out;
}

std::vector<std::uint8_t> FaultInjector::RewriteEpoch(
    std::vector<std::uint8_t> bytes, std::uint64_t new_epoch) {
  if (bytes.size() < DigestWireLayout::kEpochIdOffset + 8 +
                         DigestWireLayout::kChecksumBytes) {
    return bytes;
  }
  WriteU64(&bytes, DigestWireLayout::kEpochIdOffset, new_epoch);
  Digest::ResealChecksum(&bytes);
  return bytes;
}

std::vector<std::uint8_t> FaultInjector::LieAboutShape(
    std::vector<std::uint8_t> bytes, Rng* rng) {
  DCS_CHECK(rng != nullptr);
  if (bytes.size() < DigestWireLayout::kHeaderBytes +
                         DigestWireLayout::kChecksumBytes) {
    return bytes;
  }
  // Pick a field, then a lie: a small perturbation (off-by-a-few row
  // counts), or an absurdly large claim probing the decoder's allocation
  // bounds.
  const std::uint64_t field = rng->UniformInt(4);
  const bool absurd = rng->UniformInt(4) == 0;
  const std::uint64_t delta = 1 + rng->UniformInt(16);
  switch (field) {
    case 0: {
      const std::uint32_t v =
          ReadU32(bytes, DigestWireLayout::kNumGroupsOffset);
      WriteU32(&bytes, DigestWireLayout::kNumGroupsOffset,
               absurd ? 0xFFFFFFFFu : v + static_cast<std::uint32_t>(delta));
      break;
    }
    case 1: {
      const std::uint32_t v =
          ReadU32(bytes, DigestWireLayout::kArraysPerGroupOffset);
      WriteU32(&bytes, DigestWireLayout::kArraysPerGroupOffset,
               absurd ? 0xFFFFFFFFu : v + static_cast<std::uint32_t>(delta));
      break;
    }
    case 2: {
      const std::uint64_t v =
          ReadU64(bytes, DigestWireLayout::kNumRowsOffset);
      WriteU64(&bytes, DigestWireLayout::kNumRowsOffset,
               absurd ? (1ULL << 62) : v + delta);
      break;
    }
    default: {
      const std::uint64_t v =
          ReadU64(bytes, DigestWireLayout::kRowBitsOffset);
      WriteU64(&bytes, DigestWireLayout::kRowBitsOffset,
               absurd ? (1ULL << 62) : v + delta * 64);
      break;
    }
  }
  Digest::ResealChecksum(&bytes);
  return bytes;
}

std::vector<std::uint8_t> FaultInjector::MutateForFuzz(
    const std::vector<std::uint8_t>& bytes, Rng* rng) {
  DCS_CHECK(rng != nullptr);
  switch (bytes.empty() ? 2 : rng->UniformInt(5)) {
    case 0:
      return FlipBits(bytes, rng);
    case 1:
      return Truncate(bytes, rng);
    case 2:
      // Length in [0, 2|bytes|]: shorter-than-header, header-sized, and
      // longer-than-original garbage all get coverage.
      return Garbage(rng->UniformInt(2 * bytes.size() + 1), rng);
    case 3: {  // Insert one random byte at a random position.
      std::vector<std::uint8_t> out = bytes;
      const std::uint64_t pos = rng->UniformInt(out.size() + 1);
      out.insert(out.begin() + static_cast<std::ptrdiff_t>(pos),
                 static_cast<std::uint8_t>(rng->Next()));
      return out;
    }
    default: {  // Delete one byte.
      std::vector<std::uint8_t> out = bytes;
      const std::uint64_t pos = rng->UniformInt(out.size());
      out.erase(out.begin() + static_cast<std::ptrdiff_t>(pos));
      return out;
    }
  }
}

std::vector<std::uint8_t> FaultInjector::LieAboutFrameLength(
    std::vector<std::uint8_t> frame, Rng* rng) {
  DCS_CHECK(rng != nullptr);
  if (frame.size() <
      FrameWireLayout::kHeaderBytes + FrameWireLayout::kChecksumBytes) {
    return frame;
  }
  const std::uint32_t len =
      ReadU32(frame, FrameWireLayout::kPayloadLenOffset);
  const bool absurd = rng->UniformInt(4) == 0;
  std::uint32_t lied;
  if (absurd) {
    // Past the protocol max: the parser must refuse before buffering.
    lied = FrameWireLayout::kMaxPayloadBytes + 1 +
           static_cast<std::uint32_t>(rng->UniformInt(1u << 20));
  } else {
    // Off by a few, either direction, never the truth.
    const std::uint32_t delta =
        1 + static_cast<std::uint32_t>(rng->UniformInt(32));
    lied = rng->UniformInt(2) == 0 && len > delta ? len - delta : len + delta;
  }
  WriteU32(&frame, FrameWireLayout::kPayloadLenOffset, lied);
  ResealFrameChecksum(&frame);
  return frame;
}

std::vector<std::uint8_t> FaultInjector::CorruptFrameChecksum(
    std::vector<std::uint8_t> frame, Rng* rng) {
  DCS_CHECK(rng != nullptr);
  if (frame.size() < FrameWireLayout::kChecksumBytes) return frame;
  const std::size_t tail = frame.size() - FrameWireLayout::kChecksumBytes;
  const std::uint64_t old = ReadU64(frame, tail);
  std::uint64_t lied = old;
  while (lied == old) lied = rng->Next();
  WriteU64(&frame, tail, lied);
  return frame;
}

std::vector<std::uint8_t> FaultInjector::LieAboutFrameHeader(
    std::vector<std::uint8_t> frame, Rng* rng) {
  DCS_CHECK(rng != nullptr);
  if (frame.size() <
      FrameWireLayout::kHeaderBytes + FrameWireLayout::kChecksumBytes) {
    return frame;
  }
  switch (rng->UniformInt(5)) {
    case 0: {  // Version the parser does not speak.
      std::uint16_t v = FrameWireLayout::kVersion;
      while (v == FrameWireLayout::kVersion) {
        v = static_cast<std::uint16_t>(rng->Next());
      }
      frame[FrameWireLayout::kVersionOffset] =
          static_cast<std::uint8_t>(v & 0xFF);
      frame[FrameWireLayout::kVersionOffset + 1] =
          static_cast<std::uint8_t>(v >> 8);
      break;
    }
    case 1:  // Reserved flags set.
      frame[FrameWireLayout::kFlagsOffset] =
          static_cast<std::uint8_t>(1 + rng->UniformInt(255));
      break;
    case 2:  // Codec id outside the registry (0/1 are the known ids —
             // swapping those is a *negotiation* question the deterministic
             // codec tests cover, not a malformed frame).
      frame[FrameWireLayout::kCodecOffset] =
          static_cast<std::uint8_t>(2 + rng->UniformInt(254));
      break;
    case 3: {  // Envelope router differs from the payload's.
      const std::uint32_t v = ReadU32(frame, FrameWireLayout::kRouterIdOffset);
      WriteU32(&frame, FrameWireLayout::kRouterIdOffset,
               v + 1 + static_cast<std::uint32_t>(rng->UniformInt(1000)));
      break;
    }
    default: {  // Envelope epoch differs from the payload's.
      const std::uint64_t v = ReadU64(frame, FrameWireLayout::kEpochIdOffset);
      WriteU64(&frame, FrameWireLayout::kEpochIdOffset,
               v + 1 + rng->UniformInt(1000));
      break;
    }
  }
  ResealFrameChecksum(&frame);
  return frame;
}

std::vector<std::uint8_t> FaultInjector::CorruptFramePayload(
    std::vector<std::uint8_t> frame, Rng* rng) {
  DCS_CHECK(rng != nullptr);
  const std::size_t overhead =
      FrameWireLayout::kHeaderBytes + FrameWireLayout::kChecksumBytes;
  if (frame.size() <= overhead) return frame;
  const std::size_t payload_len = frame.size() - overhead;
  // Flip 1-8 payload bits; the digest payload's own checksum breaks, so the
  // strict decode must fail while the (resealed) frame still parses.
  const std::uint64_t flips =
      1 + rng->UniformInt(payload_len * 8 < 8 ? payload_len * 8 : 8);
  // Distinct positions: a bit flipped twice restores itself, and since the
  // frame checksum is resealed below, cancelling flips would hand back a
  // byte-identical intact frame.
  std::vector<std::uint64_t> chosen;
  while (chosen.size() < flips) {
    const std::uint64_t bit = rng->UniformInt(payload_len * 8);
    bool fresh = true;
    for (const std::uint64_t seen : chosen) fresh = fresh && seen != bit;
    if (!fresh) continue;
    chosen.push_back(bit);
    frame[FrameWireLayout::kHeaderBytes + (bit >> 3)] ^=
        static_cast<std::uint8_t>(1u << (bit & 7));
  }
  ResealFrameChecksum(&frame);
  return frame;
}

std::vector<std::uint8_t> FaultInjector::EmbedInGarbage(
    const std::vector<std::uint8_t>& frame, Rng* rng) {
  DCS_CHECK(rng != nullptr);
  std::vector<std::uint8_t> out =
      Garbage(rng->UniformInt(256), rng);
  out.insert(out.end(), frame.begin(), frame.end());
  const std::vector<std::uint8_t> tail = Garbage(rng->UniformInt(256), rng);
  out.insert(out.end(), tail.begin(), tail.end());
  return out;
}

std::vector<std::uint8_t> FaultInjector::MutateFrameForFuzz(
    const std::vector<std::uint8_t>& frame, Rng* rng) {
  DCS_CHECK(rng != nullptr);
  switch (frame.empty() ? 2 : rng->UniformInt(9)) {
    case 0:
      return FlipBits(frame, rng);
    case 1:
      return Truncate(frame, rng);
    case 2:
      return Garbage(rng->UniformInt(2 * frame.size() + 1), rng);
    case 3: {  // Insert one random byte strictly before the checksum field:
               // the covered window shifts, so the checksum cannot match.
               // Two insertions would merely *prepend garbage* to an intact
               // frame, which the parser rightly resyncs past and accepts:
               // position 0, and position 1 with a byte equal to frame[0]
               // (same buffer either way). Both are excluded — this
               // mutation must guarantee malformation.
      std::vector<std::uint8_t> out = frame;
      const std::size_t bound =
          out.size() > FrameWireLayout::kChecksumBytes
              ? out.size() - FrameWireLayout::kChecksumBytes
              : 1;
      const std::uint64_t pos =
          bound > 1 ? 1 + rng->UniformInt(bound - 1) : 0;
      std::uint8_t value = static_cast<std::uint8_t>(rng->Next());
      if (pos == 1 && !out.empty() && value == out[0]) {
        value = static_cast<std::uint8_t>(value ^ 0xFFu);
      }
      out.insert(out.begin() + static_cast<std::ptrdiff_t>(pos), value);
      return out;
    }
    case 4: {  // Delete one byte.
      std::vector<std::uint8_t> out = frame;
      const std::uint64_t pos = rng->UniformInt(out.size());
      out.erase(out.begin() + static_cast<std::ptrdiff_t>(pos));
      return out;
    }
    case 5:
      return LieAboutFrameLength(frame, rng);
    case 6:
      return CorruptFrameChecksum(frame, rng);
    case 7:
      return LieAboutFrameHeader(frame, rng);
    default:
      return CorruptFramePayload(frame, rng);
  }
}

}  // namespace dcs
