#ifndef DCS_TESTING_FAULT_INJECTOR_H_
#define DCS_TESTING_FAULT_INJECTOR_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/rng.h"
#include "common/status.h"

namespace dcs {

/// What the collection network does to one router's digest in transit.
///
/// The kinds split into two families the ingestion layer must tell apart:
///  * integrity-breaking (kBitFlip, kTruncate, kGarbage) — caught by the
///    wire checksum at Digest::Decode;
///  * semantically-lying (kStaleEpoch, kFutureEpoch, kLyingShape) — the
///    message is resealed so the checksum passes, and only the monitor's
///    structural/epoch validation can reject it. kDrop and kDuplicate
///    deliver zero or two well-formed copies.
enum class FaultKind : std::uint8_t {
  kNone = 0,     ///< Delivered untouched.
  kDrop,         ///< Message lost.
  kBitFlip,      ///< 1-8 random bit flips (checksum breaks).
  kTruncate,     ///< Random tail cut, at least one byte.
  kGarbage,      ///< Replaced with random bytes of the same length.
  kDuplicate,    ///< Delivered twice (replay).
  kStaleEpoch,   ///< epoch_id rewritten into the past, resealed.
  kFutureEpoch,  ///< epoch_id rewritten into the future, resealed.
  kLyingShape,   ///< One header shape field corrupted, resealed.
};

/// Human-readable kind name ("bit_flip", "stale_epoch", ...).
const char* FaultKindName(FaultKind kind);

/// \brief Per-router fault probabilities plus the master seed.
///
/// The residual mass (1 - sum of probabilities) is kNone. Parse() reads the
/// workbench's `--fault-plan` syntax:
///   "seed=7,drop=0.1,flip=0.2,truncate=0.1,garbage=0.05,duplicate=0.1,
///    stale=0.1,future=0.05,shape=0.1"
/// Every key is optional; unknown keys and probability mass above 1 are
/// rejected.
struct FaultSpec {
  std::uint64_t seed = 1;
  double drop = 0.0;
  double bit_flip = 0.0;
  double truncate = 0.0;
  double garbage = 0.0;
  double duplicate = 0.0;
  double stale_epoch = 0.0;
  double future_epoch = 0.0;
  double lying_shape = 0.0;

  static Status Parse(const std::string& text, FaultSpec* out);
};

/// One router's planned fate, with its own mutation sub-seed so the exact
/// mutation (which bits flip, how much tail is cut) replays bit-for-bit.
struct PlannedFault {
  std::uint32_t router_id = 0;
  FaultKind kind = FaultKind::kNone;
  std::uint64_t mutation_seed = 0;
};

/// \brief A fully materialized, replayable failure scenario.
///
/// Everything downstream of the (spec, num_routers) pair is deterministic:
/// the same plan applied to the same encoded digests produces the same
/// delivered messages, so any failure a fuzz run finds is reproducible from
/// the seed alone.
struct FaultPlan {
  std::uint64_t seed = 0;
  /// Indexed by router id.
  std::vector<PlannedFault> faults;

  /// "seed=7: 0:none 1:drop 2:bit_flip ..." — for logs and repro reports.
  std::string ToString() const;
};

/// Expands a spec into one planned fault per router, deterministically from
/// spec.seed.
FaultPlan MaterializeFaultPlan(const FaultSpec& spec,
                               std::uint32_t num_routers);

/// \brief Applies a FaultPlan to encoded digests in transit.
///
/// Sits between the collection stage and DcsMonitor::AddEncodedDigest in
/// tests and in `dcs_workbench analyze --fault-plan`, standing in for the
/// lossy collection network of Fig 2. Routers beyond the plan are delivered
/// untouched.
class FaultInjector {
 public:
  explicit FaultInjector(FaultPlan plan);

  /// The messages that actually arrive at the analysis center for this
  /// router: none (dropped), one, or two (duplicated).
  std::vector<std::vector<std::uint8_t>> Apply(
      std::uint32_t router_id,
      const std::vector<std::uint8_t>& encoded) const;

  const FaultPlan& plan() const { return plan_; }

  // Primitive mutations, deterministic in *rng. Public so the fuzz suite
  // can drive them directly.

  /// Flips 1-8 random bits. Returns the input unchanged when empty.
  static std::vector<std::uint8_t> FlipBits(std::vector<std::uint8_t> bytes,
                                            Rng* rng);
  /// Cuts a uniform tail of at least one byte (possibly all of them).
  static std::vector<std::uint8_t> Truncate(std::vector<std::uint8_t> bytes,
                                            Rng* rng);
  /// Random bytes of the given length.
  static std::vector<std::uint8_t> Garbage(std::size_t num_bytes, Rng* rng);
  /// Rewrites the header epoch_id and reseals the checksum. Returns the
  /// input unchanged when too short to carry the field.
  static std::vector<std::uint8_t> RewriteEpoch(
      std::vector<std::uint8_t> bytes, std::uint64_t new_epoch);
  /// Corrupts one of the header shape fields (num_groups, arrays_per_group,
  /// num_rows, row_bits) and reseals the checksum, so only structural
  /// validation can catch the lie. Returns the input unchanged when too
  /// short to carry a header.
  static std::vector<std::uint8_t> LieAboutShape(
      std::vector<std::uint8_t> bytes, Rng* rng);
  /// One integrity-breaking mutation (flip / truncate / garbage / insert a
  /// byte / delete a byte) picked by *rng — the fuzz-corpus generator.
  /// Every choice alters the buffer, so Digest::Decode must reject the
  /// result via the checksum.
  static std::vector<std::uint8_t> MutateForFuzz(
      const std::vector<std::uint8_t>& bytes, Rng* rng);

  // Frame-level primitives (netio/frame.h envelope; docs/DISTRIBUTED.md).
  // Each takes one well-formed frame from EncodeFrame. Lying mutations
  // reseal the frame checksum, so only the parser's structural validation
  // or the dispatcher's cross-checks can catch them.

  /// Rewrites payload_len (off-by-a-few, or absurdly past the protocol
  /// max) and reseals: the parser must refuse the oversized claim before
  /// buffering for it, and mis-framed streams must resync.
  static std::vector<std::uint8_t> LieAboutFrameLength(
      std::vector<std::uint8_t> frame, Rng* rng);
  /// Overwrites the trailing frame checksum with random bytes (transit
  /// damage the parser catches without touching the payload).
  static std::vector<std::uint8_t> CorruptFrameChecksum(
      std::vector<std::uint8_t> frame, Rng* rng);
  /// Rewrites one envelope field and reseals — version / flags / codec
  /// lies the parser rejects, or router / epoch identity lies only the
  /// dispatcher's payload cross-check can drop.
  static std::vector<std::uint8_t> LieAboutFrameHeader(
      std::vector<std::uint8_t> frame, Rng* rng);
  /// Flips bits inside the payload and reseals: the frame parses, the
  /// strict digest decode inside it must fail.
  static std::vector<std::uint8_t> CorruptFramePayload(
      std::vector<std::uint8_t> frame, Rng* rng);
  /// Wraps the buffer in random garbage runs before and/or after it —
  /// mid-stream resync coverage. Unlike the mutations, the framed bytes
  /// stay intact: the parser must still deliver the embedded frame.
  static std::vector<std::uint8_t> EmbedInGarbage(
      const std::vector<std::uint8_t>& frame, Rng* rng);
  /// One frame-level mutation picked by *rng — the wire-fuzz generator.
  /// Every choice yields a stream the dispatcher must never turn into an
  /// EpochRing offer (integrity broken, structurally invalid, or identity
  /// cross-check failure).
  static std::vector<std::uint8_t> MutateFrameForFuzz(
      const std::vector<std::uint8_t>& frame, Rng* rng);

 private:
  FaultPlan plan_;
};

}  // namespace dcs

#endif  // DCS_TESTING_FAULT_INJECTOR_H_
