#ifndef DCS_NETIO_DIGEST_SENDER_H_
#define DCS_NETIO_DIGEST_SENDER_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"
#include "netio/frame.h"
#include "sketch/digest.h"
#include "sketch/digest_codec.h"

namespace dcs {

/// How a sender picks the payload codec per digest.
enum class CodecMode {
  kRaw,     ///< Always dense — maximum decode speed, maximum bytes.
  kSparse,  ///< Always the adaptive codec.
  kAuto,    ///< EncodeDigestPayloadAuto: sparse only when it pays.
};

const char* CodecModeName(CodecMode mode);

/// Client-side tuning (docs/DISTRIBUTED.md). The defaults reproduce the
/// PR-8 behavior: every frame flushed immediately, no automatic retries.
struct SenderOptions {
  /// Frame coalescing: Send() appends frames to an output buffer that is
  /// flushed once it holds at least this many bytes (and on Flush()/
  /// Close()). 0 = flush every frame immediately. Batching amortizes
  /// syscalls when a router ships many per-epoch digests — the
  /// thousands-of-routers fan-in knob.
  std::size_t coalesce_bytes = 0;
  /// SO_KEEPALIVE on TCP sockets, so a monitor that silently disappears
  /// (pulled cable, dead VM) eventually surfaces as a send error instead
  /// of a sender blocked forever on a dead peer.
  bool tcp_keepalive = true;
  /// Reconnect(): connection attempts before giving up…
  std::uint32_t reconnect_attempts = 4;
  /// …starting at this backoff between attempts, doubling per failure…
  std::uint32_t reconnect_backoff_ms = 1;
  /// …capped here.
  std::uint32_t reconnect_backoff_max_ms = 1000;
};

/// Sender lifetime counters (mirrored into netio.sender.* metrics).
struct SenderStats {
  std::uint64_t frames_sent = 0;  ///< Frames whose bytes reached the socket.
  std::uint64_t bytes_sent = 0;
  std::uint64_t raw_frames = 0;
  std::uint64_t sparse_frames = 0;
  std::uint64_t flushes = 0;         ///< Buffer flushes that hit the socket.
  std::uint64_t send_failures = 0;   ///< I/O errors that broke the sender.
  std::uint64_t frames_dropped = 0;  ///< Buffered frames lost to a break.
  std::uint64_t reconnects = 0;      ///< Successful Reconnect() calls.
};

/// \brief Client side of the digest plane: frames digests onto a connected
/// stream socket (docs/DISTRIBUTED.md).
///
/// One sender per connection; not thread-safe. The router-side deployment
/// story is one sender per collector, shipping each epoch's digest as soon
/// as the epoch closes; `dcs_workbench send` drives the same library from
/// synthesized traces.
///
/// Failure model: any socket I/O error marks the sender **broken** — the
/// socket may hold a half-written frame, so continuing to write would
/// interleave bytes mid-frame and cost the receiver a resync. A broken
/// sender fails every Send/SendRaw/Flush with FailedPrecondition until
/// Reconnect() succeeds; Reconnect() (exponential backoff, remembers the
/// original endpoint) starts a clean frame stream — buffered unsent frames
/// are dropped (counted in stats().frames_dropped), never replayed into
/// the middle of a stream.
class DigestSender {
 public:
  DigestSender() = default;
  ~DigestSender();

  DigestSender(DigestSender&& other) noexcept;
  DigestSender& operator=(DigestSender&& other) noexcept;
  DigestSender(const DigestSender&) = delete;
  DigestSender& operator=(const DigestSender&) = delete;

  /// Connects to a TCP listener. `host` is a numeric IPv4 address
  /// (e.g. "127.0.0.1" — the digest plane does not resolve names).
  [[nodiscard]] static Status ConnectTcp(const std::string& host,
                                         std::uint16_t port, DigestSender* out,
                                         const SenderOptions& options = {});

  /// Connects to a Unix-domain stream listener at `path`.
  [[nodiscard]] static Status ConnectUds(const std::string& path,
                                         DigestSender* out,
                                         const SenderOptions& options = {});

  /// Frames one digest and queues it on the output buffer; flushes the
  /// buffer when it reaches options.coalesce_bytes (immediately when 0).
  /// The frame's envelope identity is taken from the digest itself, so a
  /// well-formed send always passes the receiver's identity cross-check.
  [[nodiscard]] Status Send(const Digest& digest, CodecMode mode);

  /// Sends raw bytes verbatim — the fault-injection hook the wire-fuzz
  /// suite uses to ship mutated frames through a real socket. Flushes any
  /// coalesced frames first so stream order is preserved.
  [[nodiscard]] Status SendRaw(const std::vector<std::uint8_t>& bytes);

  /// Pushes every coalesced frame to the socket now.
  [[nodiscard]] Status Flush();

  /// Re-establishes the connection after a break (or a Close): up to
  /// options.reconnect_attempts tries with exponential backoff between
  /// them. On success the sender is usable again and the frame stream
  /// restarts cleanly (pending unsent frames are dropped and counted).
  /// Fails with FailedPrecondition if the sender was never connected.
  [[nodiscard]] Status Reconnect();

  /// Flushes buffered frames (best effort), half-closes the write side
  /// (receiver sees EOF) and closes the socket. Idempotent; also run by
  /// the destructor. A closed sender can Reconnect().
  void Close();

  bool connected() const { return fd_ >= 0; }
  /// True after an I/O error: sends fail until Reconnect() succeeds.
  bool broken() const { return broken_; }
  const SenderStats& stats() const { return stats_; }
  const SenderOptions& options() const { return options_; }

 private:
  enum class EndpointKind : std::uint8_t { kNone, kTcp, kUds };

  // Opens a socket to the remembered endpoint (applying tcp_keepalive).
  Status ConnectEndpoint(int* out_fd) const;
  // Records an I/O failure: closes the socket, drops pending frames.
  void MarkBroken();
  // Sends the coalesced buffer; credits pending frame counts on success.
  Status FlushBuffer();
  void MoveFrom(DigestSender* other);

  int fd_ = -1;
  bool broken_ = false;
  SenderOptions options_;
  EndpointKind endpoint_kind_ = EndpointKind::kNone;
  std::string endpoint_host_or_path_;
  std::uint16_t endpoint_port_ = 0;
  /// Coalesced, not-yet-flushed frame bytes and their frame counts (the
  /// stats credit only on a successful flush — a frame that never reached
  /// the socket is never counted as sent).
  std::vector<std::uint8_t> out_buf_;
  std::uint64_t pending_frames_ = 0;
  std::uint64_t pending_raw_ = 0;
  std::uint64_t pending_sparse_ = 0;
  SenderStats stats_;
};

}  // namespace dcs

#endif  // DCS_NETIO_DIGEST_SENDER_H_
