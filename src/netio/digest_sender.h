#ifndef DCS_NETIO_DIGEST_SENDER_H_
#define DCS_NETIO_DIGEST_SENDER_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"
#include "netio/frame.h"
#include "sketch/digest.h"
#include "sketch/digest_codec.h"

namespace dcs {

/// How a sender picks the payload codec per digest.
enum class CodecMode {
  kRaw,     ///< Always dense — maximum decode speed, maximum bytes.
  kSparse,  ///< Always the adaptive codec.
  kAuto,    ///< EncodeDigestPayloadAuto: sparse only when it pays.
};

const char* CodecModeName(CodecMode mode);

/// Sender lifetime counters (mirrored into netio.sender.* metrics).
struct SenderStats {
  std::uint64_t frames_sent = 0;
  std::uint64_t bytes_sent = 0;
  std::uint64_t raw_frames = 0;
  std::uint64_t sparse_frames = 0;
};

/// \brief Client side of the digest plane: frames digests onto a connected
/// stream socket (docs/DISTRIBUTED.md).
///
/// One sender per connection; not thread-safe. The router-side deployment
/// story is one sender per collector, shipping each epoch's digest as soon
/// as the epoch closes; `dcs_workbench send` drives the same library from
/// synthesized traces.
class DigestSender {
 public:
  DigestSender() = default;
  ~DigestSender();

  DigestSender(DigestSender&& other) noexcept;
  DigestSender& operator=(DigestSender&& other) noexcept;
  DigestSender(const DigestSender&) = delete;
  DigestSender& operator=(const DigestSender&) = delete;

  /// Connects to a TCP listener. `host` is a numeric IPv4 address
  /// (e.g. "127.0.0.1" — the digest plane does not resolve names).
  [[nodiscard]] static Status ConnectTcp(const std::string& host,
                                         std::uint16_t port,
                                         DigestSender* out);

  /// Connects to a Unix-domain stream listener at `path`.
  [[nodiscard]] static Status ConnectUds(const std::string& path,
                                         DigestSender* out);

  /// Frames and sends one digest. The frame's envelope identity is taken
  /// from the digest itself, so a well-formed send always passes the
  /// receiver's identity cross-check.
  [[nodiscard]] Status Send(const Digest& digest, CodecMode mode);

  /// Sends raw bytes verbatim — the fault-injection hook the wire-fuzz
  /// suite uses to ship mutated frames through a real socket.
  [[nodiscard]] Status SendRaw(const std::vector<std::uint8_t>& bytes);

  /// Half-closes the write side (receiver sees EOF) and closes the socket.
  /// Idempotent; also run by the destructor.
  void Close();

  bool connected() const { return fd_ >= 0; }
  const SenderStats& stats() const { return stats_; }

 private:
  explicit DigestSender(int fd) : fd_(fd) {}

  int fd_ = -1;
  SenderStats stats_;
};

}  // namespace dcs

#endif  // DCS_NETIO_DIGEST_SENDER_H_
