#include "netio/ingest_server.h"

#include <fcntl.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "common/logging.h"
#include "obs/metrics.h"

namespace dcs {
namespace {

Status SetNonBlocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags < 0 || ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) < 0) {
    return Status::IoError("fcntl: " + ErrnoString(errno));
  }
  return Status::Ok();
}

}  // namespace

IngestServer::IngestServer(const IngestServerOptions& options,
                           FrameDispatcher* dispatcher)
    : options_(options), dispatcher_(dispatcher) {
  DCS_CHECK(dispatcher_ != nullptr);
  DCS_CHECK(options_.read_chunk_bytes > 0);
  MutexLock lock(&mu_);
  read_buf_.resize(options_.read_chunk_bytes);
}

IngestServer::~IngestServer() {
  MutexLock lock(&mu_);
  CloseAll();
}

Status IngestServer::ListenTcp(std::uint16_t port) {
  MutexLock lock(&mu_);
  DCS_CHECK(tcp_listen_fd_ < 0) << "ListenTcp called twice";
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    return Status::IoError("socket: " + ErrnoString(errno));
  }
  const int one = 1;
  (void)::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) != 0 ||
      ::listen(fd, SOMAXCONN) != 0) {
    const int err = errno;
    ::close(fd);
    return Status::IoError("bind/listen: " + ErrnoString(err));
  }
  sockaddr_in bound{};
  socklen_t bound_len = sizeof(bound);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&bound), &bound_len) != 0) {
    const int err = errno;
    ::close(fd);
    return Status::IoError("getsockname: " + ErrnoString(err));
  }
  const Status nb = SetNonBlocking(fd);
  if (!nb.ok()) {
    ::close(fd);
    return nb;
  }
  tcp_listen_fd_ = fd;
  tcp_port_ = ntohs(bound.sin_port);
  return Status::Ok();
}

Status IngestServer::ListenUds(const std::string& path) {
  MutexLock lock(&mu_);
  DCS_CHECK(uds_listen_fd_ < 0) << "ListenUds called twice";
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (path.size() + 1 > sizeof(addr.sun_path)) {
    return Status::InvalidArgument("unix socket path too long: " + path);
  }
  std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
  ::unlink(path.c_str());  // Stale socket file from a previous run.
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) {
    return Status::IoError("socket: " + ErrnoString(errno));
  }
  if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) != 0 ||
      ::listen(fd, SOMAXCONN) != 0) {
    const int err = errno;
    ::close(fd);
    return Status::IoError("bind/listen: " + ErrnoString(err));
  }
  const Status nb = SetNonBlocking(fd);
  if (!nb.ok()) {
    ::close(fd);
    return nb;
  }
  uds_listen_fd_ = fd;
  uds_path_ = path;
  return Status::Ok();
}

void IngestServer::AcceptPending(int listen_fd) {
  while (true) {
    const int fd = ::accept(listen_fd, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EAGAIN || errno == EWOULDBLOCK) return;  // Drained.
      if (errno == EINTR || errno == ECONNABORTED) continue;
      // EMFILE/ENFILE and friends: the listener stays readable, so the
      // loop will retry every round — count it so the stall is visible.
      ++stats_.accept_failures;
      ObsCounter("netio.server.accept_failures").Increment();
      DCS_LOG(Warning) << "accept: " << ErrnoString(errno);
      return;
    }
    if (connections_.size() >= options_.max_connections) {
      ::close(fd);
      ++stats_.connections_refused;
      ObsCounter("netio.server.connections_refused").Increment();
      continue;
    }
    // Non-blocking so a spurious POLLIN can never park the loop thread in
    // read() and stall every other connection (and RequestStop).
    if (!SetNonBlocking(fd).ok()) {
      ::close(fd);
      ++stats_.accept_failures;
      ObsCounter("netio.server.accept_failures").Increment();
      continue;
    }
    auto conn = std::make_unique<Connection>();
    conn->fd = fd;
    connections_.push_back(std::move(conn));
    ++stats_.connections_accepted;
    ObsCounter("netio.server.connections").Increment();
  }
}

bool IngestServer::ReadAndDispatch(Connection* conn) {
  const ssize_t n =
      ::read(conn->fd, read_buf_.data(), options_.read_chunk_bytes);
  if (n < 0) {
    if (errno == EINTR || errno == EAGAIN) return true;
    CloseConnection(conn);
    return false;
  }
  if (n == 0) {  // EOF: flush the parser tail (a truncated frame is an event).
    CloseConnection(conn);
    return false;
  }
  stats_.bytes_received += static_cast<std::uint64_t>(n);
  ObsCounter("netio.server.bytes_rx").Add(static_cast<std::uint64_t>(n));
  std::vector<FrameEvent> events;
  conn->parser.Consume(read_buf_.data(), static_cast<std::size_t>(n), &events);
  for (const FrameEvent& event : events) {
    if (event.kind == FrameEvent::Kind::kReject) ++conn->rejects;
  }
  dispatcher_->HandleEvents(events);
  if (conn->rejects > options_.max_rejects_per_connection) {
    ++stats_.penalty_closes;
    ObsCounter("netio.server.penalty_closes").Increment();
    CloseConnection(conn);
    return false;
  }
  return true;
}

void IngestServer::CloseConnection(Connection* conn) {
  if (conn->fd < 0) return;
  std::vector<FrameEvent> tail;
  conn->parser.Finish(&tail);
  dispatcher_->HandleEvents(tail);
  ::close(conn->fd);
  conn->fd = -1;
  ++stats_.connections_closed;
  ObsCounter("netio.server.connections_closed").Increment();
}

void IngestServer::CloseAll() {
  for (auto& conn : connections_) {
    CloseConnection(conn.get());
  }
  connections_.clear();
  if (tcp_listen_fd_ >= 0) {
    ::close(tcp_listen_fd_);
    tcp_listen_fd_ = -1;
  }
  if (uds_listen_fd_ >= 0) {
    ::close(uds_listen_fd_);
    uds_listen_fd_ = -1;
    ::unlink(uds_path_.c_str());
  }
}

Status IngestServer::Serve() {
  {
    MutexLock lock(&mu_);
    if (tcp_listen_fd_ < 0 && uds_listen_fd_ < 0) {
      return Status::FailedPrecondition("no listener configured");
    }
  }
  while (!stop_.load(std::memory_order_acquire)) {
    // Snapshot the fd set under the lock, then poll without it: poll() is
    // where this thread parks (up to poll_timeout_ms), and concurrent
    // stats() readers must not be shut out for that long. Only this thread
    // mutates the connection table, so the snapshot stays valid across the
    // unlocked poll.
    std::vector<pollfd> fds;
    int tcp_fd = -1;
    int uds_fd = -1;
    std::size_t first_conn = 0;
    std::size_t polled = 0;
    {
      MutexLock lock(&mu_);
      tcp_fd = tcp_listen_fd_;
      uds_fd = uds_listen_fd_;
      fds.reserve(2 + connections_.size());
      if (tcp_fd >= 0) fds.push_back(pollfd{tcp_fd, POLLIN, 0});
      if (uds_fd >= 0) fds.push_back(pollfd{uds_fd, POLLIN, 0});
      first_conn = fds.size();
      polled = connections_.size();
      for (const auto& conn : connections_) {
        fds.push_back(pollfd{conn->fd, POLLIN, 0});
      }
    }
    const int ready = ::poll(fds.data(), static_cast<nfds_t>(fds.size()),
                             options_.poll_timeout_ms);
    if (ready < 0) {
      if (errno == EINTR) continue;
      const int err = errno;
      MutexLock lock(&mu_);
      CloseAll();
      return Status::IoError("poll: " + ErrnoString(err));
    }
    if (ready == 0) {  // Timeout: run the hook, re-check the stop flag.
      if (options_.after_round && !options_.after_round()) break;
      continue;
    }
    {
      MutexLock lock(&mu_);
      std::size_t at = 0;
      if (tcp_fd >= 0) {
        if ((fds[at].revents & POLLIN) != 0) AcceptPending(tcp_fd);
        ++at;
      }
      if (uds_fd >= 0) {
        if ((fds[at].revents & POLLIN) != 0) AcceptPending(uds_fd);
        ++at;
      }
      // Read in connection order — with one loop thread this fixes the
      // offer order for any given arrival pattern. Bounded by the pre-poll
      // count: AcceptPending may have grown connections_ past fds, and the
      // fresh sockets have no revents yet anyway.
      for (std::size_t i = 0; i < polled; ++i) {
        const short revents = fds[first_conn + i].revents;
        if ((revents & (POLLIN | POLLHUP | POLLERR)) == 0) continue;
        (void)ReadAndDispatch(connections_[i].get());
      }
      // Compact closed connections.
      std::size_t kept = 0;
      for (auto& conn : connections_) {
        if (conn->fd >= 0) connections_[kept++] = std::move(conn);
      }
      connections_.resize(kept);
    }
    // The hook runs unlocked: it drives the dispatcher/ring (safe — they
    // are only ever touched from this thread) and must be free to call
    // back into stats().
    if (options_.after_round && !options_.after_round()) break;
  }
  MutexLock lock(&mu_);
  CloseAll();
  return Status::Ok();
}

}  // namespace dcs
