#include "netio/ingest_server.h"

#include <fcntl.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>

#include "common/logging.h"
#include "obs/metrics.h"

namespace dcs {
namespace {

Status SetNonBlocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags < 0 || ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) < 0) {
    return Status::IoError("fcntl: " + ErrnoString(errno));
  }
  return Status::Ok();
}

// Fills `addr` from `path`, rejecting paths that do not fit sun_path.
Status FillUdsAddr(const std::string& path, sockaddr_un* addr) {
  addr->sun_family = AF_UNIX;
  if (path.size() + 1 > sizeof(addr->sun_path)) {
    return Status::InvalidArgument("unix socket path too long: " + path);
  }
  std::memcpy(addr->sun_path, path.c_str(), path.size() + 1);
  return Status::Ok();
}

/// What a probe-connect against an existing socket file found.
enum class UdsProbe { kAbsent, kStale, kLive, kError };

// Probes `path` before binding over it: a live daemon answers the connect
// (the probe connection is closed immediately — the daemon just sees a
// no-byte EOF), a stale file refuses it, a missing file is free.
UdsProbe ProbeUds(const sockaddr_un& addr, int* probe_errno) {
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) {
    *probe_errno = errno;
    return UdsProbe::kError;
  }
  const int rc = ::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                           sizeof(addr));
  *probe_errno = rc == 0 ? 0 : errno;
  ::close(fd);
  if (rc == 0) return UdsProbe::kLive;
  if (*probe_errno == ECONNREFUSED) return UdsProbe::kStale;
  if (*probe_errno == ENOENT) return UdsProbe::kAbsent;
  return UdsProbe::kError;
}

}  // namespace

IngestServer::IngestServer(const IngestServerOptions& options,
                           FrameDispatcher* dispatcher)
    : options_(options), dispatcher_(dispatcher) {
  DCS_CHECK(dispatcher_ != nullptr);
  DCS_CHECK(options_.read_chunk_bytes > 0);
  DCS_CHECK(options_.accept_backoff_rounds > 0);
}

IngestServer::~IngestServer() {
  MutexLock lock(&mu_);
  CloseAll();
}

Status IngestServer::ListenTcp(std::uint16_t port) {
  MutexLock lock(&mu_);
  DCS_CHECK(tcp_listen_fd_ < 0) << "ListenTcp called twice";
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    return Status::IoError("socket: " + ErrnoString(errno));
  }
  const int one = 1;
  (void)::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) != 0 ||
      ::listen(fd, SOMAXCONN) != 0) {
    const int err = errno;
    ::close(fd);
    return Status::IoError("bind/listen: " + ErrnoString(err));
  }
  sockaddr_in bound{};
  socklen_t bound_len = sizeof(bound);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&bound), &bound_len) != 0) {
    const int err = errno;
    ::close(fd);
    return Status::IoError("getsockname: " + ErrnoString(err));
  }
  const Status nb = SetNonBlocking(fd);
  if (!nb.ok()) {
    ::close(fd);
    return nb;
  }
  tcp_listen_fd_ = fd;
  tcp_port_ = ntohs(bound.sin_port);
  return Status::Ok();
}

Status IngestServer::ListenUds(const std::string& path) {
  MutexLock lock(&mu_);
  DCS_CHECK(uds_listen_fd_ < 0) << "ListenUds called twice";
  sockaddr_un addr{};
  DCS_RETURN_IF_ERROR(FillUdsAddr(path, &addr));
  // Never blindly unlink: the file may be a *live* daemon's socket, and
  // destroying it would silently orphan that daemon (its clients connect
  // into nothing while it keeps serving a path that no longer exists).
  // Probe-connect first; only a refused connect proves the file stale.
  int probe_errno = 0;
  switch (ProbeUds(addr, &probe_errno)) {
    case UdsProbe::kAbsent:
      break;  // Nothing at the path; bind will create it.
    case UdsProbe::kStale:
      ::unlink(path.c_str());  // Dead owner's leftover; safe to reclaim.
      break;
    case UdsProbe::kLive:
      return Status::FailedPrecondition(
          "unix socket " + path +
          " is in use by a live server (connect succeeded)");
    case UdsProbe::kError:
      return Status::IoError("probing " + path + ": " +
                             ErrnoString(probe_errno));
  }
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) {
    return Status::IoError("socket: " + ErrnoString(errno));
  }
  if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) != 0 ||
      ::listen(fd, SOMAXCONN) != 0) {
    const int err = errno;
    ::close(fd);
    return Status::IoError("bind/listen: " + ErrnoString(err));
  }
  const Status nb = SetNonBlocking(fd);
  if (!nb.ok()) {
    ::close(fd);
    return nb;
  }
  uds_listen_fd_ = fd;
  uds_path_ = path;
  return Status::Ok();
}

bool IngestServer::AcceptPending(int listen_fd) {
  while (true) {
    const int fd = ::accept(listen_fd, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EAGAIN || errno == EWOULDBLOCK) return true;  // Drained.
      if (errno == EINTR || errno == ECONNABORTED) continue;
      // EMFILE/ENFILE and friends: the listener stays readable, so without
      // backoff every poll round would burn a wakeup retrying. The caller
      // deafens the listeners for an interval; count the failure here.
      ++stats_.accept_failures;
      ObsCounter("netio.server.accept_failures").Increment();
      DCS_LOG(Warning) << "accept: " << ErrnoString(errno);
      return false;
    }
    if (connections_.size() >= options_.max_connections) {
      ::close(fd);
      ++stats_.connections_refused;
      ObsCounter("netio.server.connections_refused").Increment();
      continue;
    }
    // Non-blocking so a spurious POLLIN can never park a drain task in
    // read() and stall the round (and RequestStop).
    if (!SetNonBlocking(fd).ok()) {
      ::close(fd);
      ++stats_.accept_failures;
      ObsCounter("netio.server.accept_failures").Increment();
      continue;
    }
    auto conn = std::make_unique<Connection>();
    conn->fd = fd;
    conn->read_buf.resize(options_.read_chunk_bytes);
    connections_.push_back(std::move(conn));
    ++stats_.connections_accepted;
    // A successful accept proves the resource squeeze is over.
    accept_backoff_next_ = options_.accept_backoff_rounds;
    ObsCounter("netio.server.connections").Increment();
  }
}

void IngestServer::DrainConnection(Connection* conn) const {
  conn->bytes_read = 0;
  const ssize_t n =
      ::read(conn->fd, conn->read_buf.data(), options_.read_chunk_bytes);
  if (n < 0) {
    if (errno == EINTR || errno == EAGAIN || errno == EWOULDBLOCK) return;
    conn->io_error = true;
    return;
  }
  if (n == 0) {  // EOF: the offer stage flushes the parser tail.
    conn->saw_eof = true;
    return;
  }
  conn->bytes_read = static_cast<std::size_t>(n);
  conn->parser.Consume(conn->read_buf.data(), conn->bytes_read, &conn->events);
}

bool IngestServer::OfferRound(Connection* conn) {
  if (conn->bytes_read > 0) {
    stats_.bytes_received += conn->bytes_read;
    ObsCounter("netio.server.bytes_rx").Add(conn->bytes_read);
  }
  if (!conn->events.empty()) {
    for (const FrameEvent& event : conn->events) {
      if (event.kind == FrameEvent::Kind::kReject) ++conn->rejects;
    }
    dispatcher_->HandleEvents(conn->events);
    conn->events.clear();
  }
  if (conn->io_error || conn->saw_eof) {
    CloseConnection(conn);
    return false;
  }
  if (conn->rejects > options_.max_rejects_per_connection) {
    ++stats_.penalty_closes;
    ObsCounter("netio.server.penalty_closes").Increment();
    CloseConnection(conn);
    return false;
  }
  return true;
}

void IngestServer::CloseConnection(Connection* conn) {
  if (conn->fd < 0) return;
  std::vector<FrameEvent> tail;
  conn->parser.Finish(&tail);
  dispatcher_->HandleEvents(tail);
  ::close(conn->fd);
  conn->fd = -1;
  ++stats_.connections_closed;
  ObsCounter("netio.server.connections_closed").Increment();
}

void IngestServer::CloseAll() {
  for (auto& conn : connections_) {
    CloseConnection(conn.get());
  }
  connections_.clear();
  if (tcp_listen_fd_ >= 0) {
    ::close(tcp_listen_fd_);
    tcp_listen_fd_ = -1;
  }
  if (uds_listen_fd_ >= 0) {
    ::close(uds_listen_fd_);
    uds_listen_fd_ = -1;
    ::unlink(uds_path_.c_str());
  }
}

Status IngestServer::Serve() {
  {
    MutexLock lock(&mu_);
    if (tcp_listen_fd_ < 0 && uds_listen_fd_ < 0) {
      return Status::FailedPrecondition("no listener configured");
    }
    accept_backoff_next_ = options_.accept_backoff_rounds;
  }
  while (!stop_.load(std::memory_order_acquire)) {
    // Snapshot the fd set under the lock, then poll without it: poll() is
    // where this thread parks (up to poll_timeout_ms), and concurrent
    // stats() readers must not be shut out for that long. Only this thread
    // mutates the connection table, so the snapshot stays valid across the
    // unlocked poll.
    std::vector<pollfd> fds;
    int tcp_fd = -1;
    int uds_fd = -1;
    std::size_t first_conn = 0;
    std::size_t polled = 0;
    {
      MutexLock lock(&mu_);
      // A backoff interval keeps the listeners out of the poll set — an
      // unacceptable connection cannot wake us, so the EMFILE retry costs
      // one interval, not one wakeup per round.
      if (accept_deaf_rounds_ > 0) {
        --accept_deaf_rounds_;
      } else {
        tcp_fd = tcp_listen_fd_;
        uds_fd = uds_listen_fd_;
      }
      fds.reserve(2 + connections_.size());
      if (tcp_fd >= 0) fds.push_back(pollfd{tcp_fd, POLLIN, 0});
      if (uds_fd >= 0) fds.push_back(pollfd{uds_fd, POLLIN, 0});
      first_conn = fds.size();
      polled = connections_.size();
      for (const auto& conn : connections_) {
        fds.push_back(pollfd{conn->fd, POLLIN, 0});
      }
    }
    int ready = 0;
    if (fds.empty()) {
      // Every listener deafened and no connections: sleep out one round.
      pollfd none{-1, 0, 0};
      ready = ::poll(&none, 1, options_.poll_timeout_ms);
    } else {
      ready = ::poll(fds.data(), static_cast<nfds_t>(fds.size()),
                     options_.poll_timeout_ms);
    }
    if (ready < 0) {
      if (errno == EINTR) continue;
      const int err = errno;
      MutexLock lock(&mu_);
      CloseAll();
      return Status::IoError("poll: " + ErrnoString(err));
    }
    if (ready == 0) {  // Timeout: run the hook, re-check the stop flag.
      if (options_.after_round && !options_.after_round()) break;
      continue;
    }
    {
      MutexLock lock(&mu_);
      std::size_t at = 0;
      bool accept_ok = true;
      if (tcp_fd >= 0) {
        if ((fds[at].revents & POLLIN) != 0) {
          accept_ok = AcceptPending(tcp_fd) && accept_ok;
        }
        ++at;
      }
      if (uds_fd >= 0) {
        if ((fds[at].revents & POLLIN) != 0) {
          accept_ok = AcceptPending(uds_fd) && accept_ok;
        }
        ++at;
      }
      if (!accept_ok) {
        // Resource failure: deafen the listeners for the current interval
        // and double the next one (capped). Established connections keep
        // being served throughout — only *new* peers wait.
        accept_deaf_rounds_ = accept_backoff_next_;
        accept_backoff_next_ = std::min(accept_backoff_next_ * 2,
                                        options_.accept_backoff_max_rounds);
        ++stats_.accept_backoffs;
        ObsCounter("netio.server.accept_backoff").Increment();
      }
      // Stage 1 — drain: collect the readable connections (bounded by the
      // pre-poll count: AcceptPending may have grown connections_ past
      // fds, and the fresh sockets have no revents yet anyway) and fan
      // their reads + frame parsing out across the pool. Each connection
      // owns its buffer and parser, so the tasks share nothing; the pool's
      // completion latch hands their results back to this thread.
      std::vector<Connection*> readable;
      readable.reserve(polled);
      for (std::size_t i = 0; i < polled; ++i) {
        const short revents = fds[first_conn + i].revents;
        if ((revents & (POLLIN | POLLHUP | POLLERR)) == 0) continue;
        readable.push_back(connections_[i].get());
      }
      if (options_.pool != nullptr && readable.size() > 1) {
        std::vector<std::function<void()>> tasks;
        tasks.reserve(readable.size());
        for (Connection* conn : readable) {
          tasks.emplace_back([this, conn] { DrainConnection(conn); });
        }
        options_.pool->RunTasks(tasks);
      } else {
        for (Connection* conn : readable) DrainConnection(conn);
      }
      // Stage 2 — ordered offer: always on this thread, always in
      // connection order. One funnel into the dispatcher/ring is what
      // keeps the report stream identical at any worker count.
      for (Connection* conn : readable) {
        (void)OfferRound(conn);
      }
      // Compact closed connections.
      std::size_t kept = 0;
      for (auto& conn : connections_) {
        if (conn->fd >= 0) connections_[kept++] = std::move(conn);
      }
      connections_.resize(kept);
    }
    // The hook runs unlocked: it drives the dispatcher/ring (safe — they
    // are only ever touched from this thread) and must be free to call
    // back into stats().
    if (options_.after_round && !options_.after_round()) break;
  }
  MutexLock lock(&mu_);
  CloseAll();
  return Status::Ok();
}

}  // namespace dcs
