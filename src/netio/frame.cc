#include "netio/frame.h"

#include <cstring>

#include "common/hash.h"
#include "common/logging.h"

namespace dcs {
namespace {

void AppendU16(std::vector<std::uint8_t>* out, std::uint16_t v) {
  out->push_back(static_cast<std::uint8_t>(v & 0xFF));
  out->push_back(static_cast<std::uint8_t>(v >> 8));
}

void AppendU32(std::vector<std::uint8_t>* out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) out->push_back((v >> (8 * i)) & 0xFF);
}

void AppendU64(std::vector<std::uint8_t>* out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) out->push_back((v >> (8 * i)) & 0xFF);
}

std::uint16_t ReadU16(const std::uint8_t* p) {
  return static_cast<std::uint16_t>(static_cast<std::uint16_t>(p[0]) |
                                    static_cast<std::uint16_t>(p[1]) << 8);
}

std::uint32_t ReadU32(const std::uint8_t* p) {
  std::uint32_t v = 0;
  for (std::size_t i = 0; i < 4; ++i) {
    v |= static_cast<std::uint32_t>(p[i]) << (8 * i);
  }
  return v;
}

std::uint64_t ReadU64(const std::uint8_t* p) {
  std::uint64_t v = 0;
  for (std::size_t i = 0; i < 8; ++i) {
    v |= static_cast<std::uint64_t>(p[i]) << (8 * i);
  }
  return v;
}

// Best-effort header fields for reject events (untrusted, logging only).
FrameHeader PeekHeader(const std::uint8_t* p) {
  FrameHeader h;
  h.version = ReadU16(p + FrameWireLayout::kVersionOffset);
  h.codec = static_cast<DigestCodecId>(p[FrameWireLayout::kCodecOffset]);
  h.flags = p[FrameWireLayout::kFlagsOffset];
  h.router_id = ReadU32(p + FrameWireLayout::kRouterIdOffset);
  h.epoch_id = ReadU64(p + FrameWireLayout::kEpochIdOffset);
  h.payload_len = ReadU32(p + FrameWireLayout::kPayloadLenOffset);
  return h;
}

FrameEvent MakeReject(FrameRejectReason reason, std::size_t skipped,
                      const FrameHeader& header = FrameHeader{}) {
  FrameEvent event;
  event.kind = FrameEvent::Kind::kReject;
  event.reason = reason;
  event.skipped_bytes = skipped;
  event.header = header;
  return event;
}

}  // namespace

const char* FrameRejectReasonName(FrameRejectReason reason) {
  switch (reason) {
    case FrameRejectReason::kBadMagic:
      return "bad_magic";
    case FrameRejectReason::kBadVersion:
      return "bad_version";
    case FrameRejectReason::kBadFlags:
      return "bad_flags";
    case FrameRejectReason::kUnknownCodec:
      return "unknown_codec";
    case FrameRejectReason::kOversizedPayload:
      return "oversized_payload";
    case FrameRejectReason::kChecksumMismatch:
      return "checksum_mismatch";
    case FrameRejectReason::kTruncated:
      return "truncated";
  }
  return "unknown";
}

std::vector<std::uint8_t> EncodeFrame(DigestCodecId codec,
                                      std::uint32_t router_id,
                                      std::uint64_t epoch_id,
                                      const std::vector<std::uint8_t>& payload) {
  DCS_CHECK(payload.size() <= FrameWireLayout::kMaxPayloadBytes)
      << "frame payload " << payload.size() << " bytes exceeds protocol max";
  std::vector<std::uint8_t> out;
  out.reserve(FrameWireLayout::TotalBytes(payload.size()));
  // Field order defines FrameWireLayout; keep the two in sync.
  AppendU32(&out, FrameWireLayout::kMagic);
  AppendU16(&out, FrameWireLayout::kVersion);
  out.push_back(static_cast<std::uint8_t>(codec));
  out.push_back(0);  // flags
  AppendU32(&out, router_id);
  AppendU64(&out, epoch_id);
  AppendU32(&out, static_cast<std::uint32_t>(payload.size()));
  out.insert(out.end(), payload.begin(), payload.end());
  AppendU64(&out,
            Hash64(out.data(), out.size(), /*seed=*/FrameWireLayout::kMagic));
  return out;
}

void ResealFrameChecksum(std::vector<std::uint8_t>* frame) {
  DCS_CHECK(frame != nullptr);
  if (frame->size() <
      FrameWireLayout::kHeaderBytes + FrameWireLayout::kChecksumBytes) {
    return;
  }
  const std::uint64_t checksum =
      Hash64(frame->data(), frame->size() - FrameWireLayout::kChecksumBytes,
             /*seed=*/FrameWireLayout::kMagic);
  std::uint8_t* tail =
      frame->data() + frame->size() - FrameWireLayout::kChecksumBytes;
  for (std::size_t i = 0; i < FrameWireLayout::kChecksumBytes; ++i) {
    tail[i] = static_cast<std::uint8_t>(checksum >> (8 * i));
  }
}

void FrameParser::Consume(const std::uint8_t* data, std::size_t len,
                          std::vector<FrameEvent>* out) {
  DCS_CHECK(out != nullptr);
  if (len != 0) {
    DCS_CHECK(data != nullptr);
    buffer_.insert(buffer_.end(), data, data + len);
  }
  Drain(out);
  Compact();
}

void FrameParser::Finish(std::vector<FrameEvent>* out) {
  DCS_CHECK(out != nullptr);
  Drain(out);
  const std::size_t leftover = buffer_.size() - consumed_;
  if (leftover != 0) {
    FrameHeader claimed;
    if (leftover >= FrameWireLayout::kHeaderBytes &&
        ReadU32(buffer_.data() + consumed_) == FrameWireLayout::kMagic) {
      claimed = PeekHeader(buffer_.data() + consumed_);
    }
    out->push_back(MakeReject(FrameRejectReason::kTruncated, leftover, claimed));
  }
  buffer_.clear();
  consumed_ = 0;
}

std::size_t FrameParser::FindMagic(std::size_t from) const {
  // The magic's little-endian byte sequence.
  std::uint8_t magic[4];
  for (std::size_t i = 0; i < 4; ++i) {
    magic[i] = static_cast<std::uint8_t>(FrameWireLayout::kMagic >> (8 * i));
  }
  if (buffer_.size() < 4) return buffer_.size();
  for (std::size_t at = from; at + 4 <= buffer_.size(); ++at) {
    if (std::memcmp(buffer_.data() + at, magic, 4) == 0) return at;
  }
  return buffer_.size();
}

void FrameParser::Drain(std::vector<FrameEvent>* out) {
  while (true) {
    std::size_t avail = buffer_.size() - consumed_;
    // Resynchronize: discard bytes until a full magic sequence starts at the
    // read position. A tail that is a *prefix* of the magic is kept — it may
    // complete on the next read.
    if (avail != 0 &&
        (avail < 4 ||
         ReadU32(buffer_.data() + consumed_) != FrameWireLayout::kMagic)) {
      std::size_t next = FindMagic(consumed_ + 1);
      if (next == buffer_.size()) {
        // No full magic ahead. Keep the longest buffer suffix that is a
        // proper magic prefix (1-3 bytes) — a magic sequence split across
        // reads must survive — and discard everything before it.
        std::uint8_t magic[4];
        for (std::size_t i = 0; i < 4; ++i) {
          magic[i] =
              static_cast<std::uint8_t>(FrameWireLayout::kMagic >> (8 * i));
        }
        std::size_t keep = 0;
        for (std::size_t pref = 3; pref >= 1; --pref) {
          if (buffer_.size() - consumed_ < pref) continue;
          if (std::memcmp(buffer_.data() + buffer_.size() - pref, magic,
                          pref) == 0) {
            keep = pref;
            break;
          }
        }
        next = buffer_.size() - keep;
      }
      if (next > consumed_) {
        out->push_back(MakeReject(FrameRejectReason::kBadMagic,
                                  next - consumed_));
        consumed_ = next;
      }
      avail = buffer_.size() - consumed_;
      if (avail < 4 ||
          ReadU32(buffer_.data() + consumed_) != FrameWireLayout::kMagic) {
        return;  // Partial magic tail (or nothing) kept for the next read.
      }
    }
    if (avail < FrameWireLayout::kHeaderBytes) return;

    const std::uint8_t* head = buffer_.data() + consumed_;
    const FrameHeader claimed = PeekHeader(head);

    // Header validation. A bad header consumes only the 4 magic bytes, then
    // resyncs — the rest of the "frame" is untrusted garbage that may hold
    // the next real frame boundary.
    FrameRejectReason reason{};
    bool header_ok = true;
    if (claimed.version != FrameWireLayout::kVersion) {
      reason = FrameRejectReason::kBadVersion;
      header_ok = false;
    } else if (claimed.flags != 0) {
      reason = FrameRejectReason::kBadFlags;
      header_ok = false;
    } else if (!KnownDigestCodecId(static_cast<std::uint8_t>(claimed.codec))) {
      reason = FrameRejectReason::kUnknownCodec;
      header_ok = false;
    } else if (claimed.payload_len > FrameWireLayout::kMaxPayloadBytes) {
      reason = FrameRejectReason::kOversizedPayload;
      header_ok = false;
    }
    if (!header_ok) {
      out->push_back(MakeReject(reason, 4, claimed));
      consumed_ += 4;
      continue;
    }

    const std::size_t total = FrameWireLayout::TotalBytes(claimed.payload_len);
    if (avail < total) return;  // Wait for the rest of the frame.

    const std::uint64_t stored = ReadU64(
        head + FrameWireLayout::kHeaderBytes + claimed.payload_len);
    const std::uint64_t computed =
        Hash64(head, FrameWireLayout::kHeaderBytes + claimed.payload_len,
               /*seed=*/FrameWireLayout::kMagic);
    if (stored != computed) {
      // Damaged in transit (or a length lie that swallowed the neighbour).
      // Consume only the magic and resync inside the damaged region.
      out->push_back(
          MakeReject(FrameRejectReason::kChecksumMismatch, 4, claimed));
      consumed_ += 4;
      continue;
    }

    FrameEvent event;
    event.kind = FrameEvent::Kind::kFrame;
    event.header = claimed;
    event.payload.assign(head + FrameWireLayout::kHeaderBytes,
                         head + FrameWireLayout::kHeaderBytes +
                             claimed.payload_len);
    out->push_back(std::move(event));
    consumed_ += total;
  }
}

void FrameParser::Compact() {
  if (consumed_ == 0) return;
  // Reclaim once the dead prefix dominates, or the buffer is fully drained.
  if (consumed_ == buffer_.size()) {
    buffer_.clear();
    consumed_ = 0;
    return;
  }
  if (consumed_ >= 4096 && consumed_ * 2 >= buffer_.size()) {
    buffer_.erase(buffer_.begin(),
                  buffer_.begin() + static_cast<std::ptrdiff_t>(consumed_));
    consumed_ = 0;
  }
}

}  // namespace dcs
