#include "netio/digest_sender.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <utility>

#include "obs/metrics.h"

namespace dcs {
namespace {

Status SendAll(int fd, const std::uint8_t* data, std::size_t len) {
  std::size_t sent = 0;
  while (sent < len) {
    // MSG_NOSIGNAL: a peer that closed mid-send must surface as EPIPE, not
    // kill the process with SIGPIPE.
    const ssize_t n = ::send(fd, data + sent, len - sent, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return Status::IoError("send: " + ErrnoString(errno));
    }
    sent += static_cast<std::size_t>(n);
  }
  return Status::Ok();
}

}  // namespace

const char* CodecModeName(CodecMode mode) {
  switch (mode) {
    case CodecMode::kRaw:
      return "raw";
    case CodecMode::kSparse:
      return "sparse";
    case CodecMode::kAuto:
      return "auto";
  }
  return "unknown";
}

DigestSender::~DigestSender() { Close(); }

DigestSender::DigestSender(DigestSender&& other) noexcept
    : fd_(std::exchange(other.fd_, -1)), stats_(other.stats_) {}

DigestSender& DigestSender::operator=(DigestSender&& other) noexcept {
  if (this != &other) {
    Close();
    fd_ = std::exchange(other.fd_, -1);
    stats_ = other.stats_;
  }
  return *this;
}

Status DigestSender::ConnectTcp(const std::string& host, std::uint16_t port,
                                DigestSender* out) {
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    return Status::InvalidArgument("not a numeric IPv4 address: " + host);
  }
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    return Status::IoError("socket: " + ErrnoString(errno));
  }
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                sizeof(addr)) != 0) {
    const int err = errno;
    ::close(fd);
    return Status::IoError("connect: " + ErrnoString(err));
  }
  *out = DigestSender(fd);
  return Status::Ok();
}

Status DigestSender::ConnectUds(const std::string& path, DigestSender* out) {
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (path.size() + 1 > sizeof(addr.sun_path)) {
    return Status::InvalidArgument("unix socket path too long: " + path);
  }
  std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) {
    return Status::IoError("socket: " + ErrnoString(errno));
  }
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                sizeof(addr)) != 0) {
    const int err = errno;
    ::close(fd);
    return Status::IoError("connect: " + ErrnoString(err));
  }
  *out = DigestSender(fd);
  return Status::Ok();
}

Status DigestSender::Send(const Digest& digest, CodecMode mode) {
  if (fd_ < 0) return Status::FailedPrecondition("sender not connected");
  std::vector<std::uint8_t> payload;
  DigestCodecId codec = DigestCodecId::kSparse;
  switch (mode) {
    case CodecMode::kRaw:
      codec = DigestCodecId::kRaw;
      payload = EncodeDigestPayload(digest, codec);
      break;
    case CodecMode::kSparse:
      payload = EncodeDigestPayload(digest, codec);
      break;
    case CodecMode::kAuto:
      codec = EncodeDigestPayloadAuto(digest, &payload);
      break;
  }
  if (payload.size() > FrameWireLayout::kMaxPayloadBytes) {
    return Status::InvalidArgument("digest too large for one frame");
  }
  const std::vector<std::uint8_t> frame =
      EncodeFrame(codec, digest.router_id, digest.epoch_id, payload);
  DCS_RETURN_IF_ERROR(SendAll(fd_, frame.data(), frame.size()));
  ++stats_.frames_sent;
  stats_.bytes_sent += frame.size();
  if (codec == DigestCodecId::kRaw) {
    ++stats_.raw_frames;
  } else {
    ++stats_.sparse_frames;
  }
  ObsCounter("netio.sender.frames").Increment();
  ObsCounter("netio.sender.bytes").Add(frame.size());
  return Status::Ok();
}

Status DigestSender::SendRaw(const std::vector<std::uint8_t>& bytes) {
  if (fd_ < 0) return Status::FailedPrecondition("sender not connected");
  DCS_RETURN_IF_ERROR(SendAll(fd_, bytes.data(), bytes.size()));
  stats_.bytes_sent += bytes.size();
  ObsCounter("netio.sender.bytes").Add(bytes.size());
  return Status::Ok();
}

void DigestSender::Close() {
  if (fd_ < 0) return;
  ::shutdown(fd_, SHUT_WR);
  ::close(fd_);
  fd_ = -1;
}

}  // namespace dcs
