#include "netio/digest_sender.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <thread>
#include <utility>

#include "obs/metrics.h"

namespace dcs {
namespace {

Status SendAll(int fd, const std::uint8_t* data, std::size_t len) {
  std::size_t sent = 0;
  while (sent < len) {
    // MSG_NOSIGNAL: a peer that closed mid-send must surface as EPIPE, not
    // kill the process with SIGPIPE.
    const ssize_t n = ::send(fd, data + sent, len - sent, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return Status::IoError("send: " + ErrnoString(errno));
    }
    sent += static_cast<std::size_t>(n);
  }
  return Status::Ok();
}

}  // namespace

const char* CodecModeName(CodecMode mode) {
  switch (mode) {
    case CodecMode::kRaw:
      return "raw";
    case CodecMode::kSparse:
      return "sparse";
    case CodecMode::kAuto:
      return "auto";
  }
  return "unknown";
}

DigestSender::~DigestSender() { Close(); }

void DigestSender::MoveFrom(DigestSender* other) {
  fd_ = std::exchange(other->fd_, -1);
  broken_ = std::exchange(other->broken_, false);
  options_ = other->options_;
  endpoint_kind_ = std::exchange(other->endpoint_kind_, EndpointKind::kNone);
  endpoint_host_or_path_ = std::move(other->endpoint_host_or_path_);
  other->endpoint_host_or_path_.clear();
  endpoint_port_ = std::exchange(other->endpoint_port_, 0);
  out_buf_ = std::move(other->out_buf_);
  other->out_buf_.clear();
  pending_frames_ = std::exchange(other->pending_frames_, 0);
  pending_raw_ = std::exchange(other->pending_raw_, 0);
  pending_sparse_ = std::exchange(other->pending_sparse_, 0);
  // The counters travel with the connection; the moved-from shell must
  // read as a fresh sender, or reusing it double-counts every frame it
  // ever shipped.
  stats_ = std::exchange(other->stats_, SenderStats{});
}

DigestSender::DigestSender(DigestSender&& other) noexcept { MoveFrom(&other); }

DigestSender& DigestSender::operator=(DigestSender&& other) noexcept {
  if (this != &other) {
    Close();
    MoveFrom(&other);
  }
  return *this;
}

Status DigestSender::ConnectEndpoint(int* out_fd) const {
  if (endpoint_kind_ == EndpointKind::kTcp) {
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(endpoint_port_);
    if (::inet_pton(AF_INET, endpoint_host_or_path_.c_str(), &addr.sin_addr) !=
        1) {
      return Status::InvalidArgument("not a numeric IPv4 address: " +
                                     endpoint_host_or_path_);
    }
    const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0) {
      return Status::IoError("socket: " + ErrnoString(errno));
    }
    if (options_.tcp_keepalive) {
      const int one = 1;
      (void)::setsockopt(fd, SOL_SOCKET, SO_KEEPALIVE, &one, sizeof(one));
    }
    if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                  sizeof(addr)) != 0) {
      const int err = errno;
      ::close(fd);
      return Status::IoError("connect: " + ErrnoString(err));
    }
    *out_fd = fd;
    return Status::Ok();
  }
  if (endpoint_kind_ == EndpointKind::kUds) {
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    if (endpoint_host_or_path_.size() + 1 > sizeof(addr.sun_path)) {
      return Status::InvalidArgument("unix socket path too long: " +
                                     endpoint_host_or_path_);
    }
    std::memcpy(addr.sun_path, endpoint_host_or_path_.c_str(),
                endpoint_host_or_path_.size() + 1);
    const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (fd < 0) {
      return Status::IoError("socket: " + ErrnoString(errno));
    }
    if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                  sizeof(addr)) != 0) {
      const int err = errno;
      ::close(fd);
      return Status::IoError("connect: " + ErrnoString(err));
    }
    *out_fd = fd;
    return Status::Ok();
  }
  return Status::FailedPrecondition("sender has no endpoint to connect to");
}

Status DigestSender::ConnectTcp(const std::string& host, std::uint16_t port,
                                DigestSender* out,
                                const SenderOptions& options) {
  DigestSender sender;
  sender.options_ = options;
  sender.endpoint_kind_ = EndpointKind::kTcp;
  sender.endpoint_host_or_path_ = host;
  sender.endpoint_port_ = port;
  int fd = -1;
  DCS_RETURN_IF_ERROR(sender.ConnectEndpoint(&fd));
  sender.fd_ = fd;
  *out = std::move(sender);
  return Status::Ok();
}

Status DigestSender::ConnectUds(const std::string& path, DigestSender* out,
                                const SenderOptions& options) {
  DigestSender sender;
  sender.options_ = options;
  sender.endpoint_kind_ = EndpointKind::kUds;
  sender.endpoint_host_or_path_ = path;
  int fd = -1;
  DCS_RETURN_IF_ERROR(sender.ConnectEndpoint(&fd));
  sender.fd_ = fd;
  *out = std::move(sender);
  return Status::Ok();
}

void DigestSender::MarkBroken() {
  // The socket may hold a half-written frame: any further write would land
  // mid-frame and cost the receiver a resync scan. Drop the connection and
  // the unsent tail; Reconnect() restarts the stream at a frame boundary.
  ++stats_.send_failures;
  ObsCounter("netio.sender.send_failures").Increment();
  if (pending_frames_ > 0) {
    stats_.frames_dropped += pending_frames_;
    ObsCounter("netio.sender.frames_dropped").Add(pending_frames_);
  }
  out_buf_.clear();
  pending_frames_ = pending_raw_ = pending_sparse_ = 0;
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
  broken_ = true;
}

Status DigestSender::FlushBuffer() {
  if (out_buf_.empty()) return Status::Ok();
  const Status sent = SendAll(fd_, out_buf_.data(), out_buf_.size());
  if (!sent.ok()) {
    MarkBroken();
    return sent;
  }
  stats_.bytes_sent += out_buf_.size();
  stats_.frames_sent += pending_frames_;
  stats_.raw_frames += pending_raw_;
  stats_.sparse_frames += pending_sparse_;
  ++stats_.flushes;
  ObsCounter("netio.sender.bytes").Add(out_buf_.size());
  if (pending_frames_ > 0) {
    ObsCounter("netio.sender.frames").Add(pending_frames_);
  }
  out_buf_.clear();
  pending_frames_ = pending_raw_ = pending_sparse_ = 0;
  return Status::Ok();
}

Status DigestSender::Send(const Digest& digest, CodecMode mode) {
  if (broken_) {
    return Status::FailedPrecondition(
        "sender broken by an earlier I/O error; Reconnect() first");
  }
  if (fd_ < 0) return Status::FailedPrecondition("sender not connected");
  std::vector<std::uint8_t> payload;
  DigestCodecId codec = DigestCodecId::kSparse;
  switch (mode) {
    case CodecMode::kRaw:
      codec = DigestCodecId::kRaw;
      payload = EncodeDigestPayload(digest, codec);
      break;
    case CodecMode::kSparse:
      payload = EncodeDigestPayload(digest, codec);
      break;
    case CodecMode::kAuto:
      codec = EncodeDigestPayloadAuto(digest, &payload);
      break;
  }
  if (payload.size() > FrameWireLayout::kMaxPayloadBytes) {
    return Status::InvalidArgument("digest too large for one frame");
  }
  const std::vector<std::uint8_t> frame =
      EncodeFrame(codec, digest.router_id, digest.epoch_id, payload);
  out_buf_.insert(out_buf_.end(), frame.begin(), frame.end());
  ++pending_frames_;
  if (codec == DigestCodecId::kRaw) {
    ++pending_raw_;
  } else {
    ++pending_sparse_;
  }
  if (out_buf_.size() >= options_.coalesce_bytes) {
    return FlushBuffer();
  }
  return Status::Ok();
}

Status DigestSender::SendRaw(const std::vector<std::uint8_t>& bytes) {
  if (broken_) {
    return Status::FailedPrecondition(
        "sender broken by an earlier I/O error; Reconnect() first");
  }
  if (fd_ < 0) return Status::FailedPrecondition("sender not connected");
  // Preserve stream order relative to coalesced frames.
  DCS_RETURN_IF_ERROR(FlushBuffer());
  const Status sent = SendAll(fd_, bytes.data(), bytes.size());
  if (!sent.ok()) {
    MarkBroken();
    return sent;
  }
  stats_.bytes_sent += bytes.size();
  ObsCounter("netio.sender.bytes").Add(bytes.size());
  return Status::Ok();
}

Status DigestSender::Flush() {
  if (broken_) {
    return Status::FailedPrecondition(
        "sender broken by an earlier I/O error; Reconnect() first");
  }
  if (fd_ < 0) return Status::FailedPrecondition("sender not connected");
  return FlushBuffer();
}

Status DigestSender::Reconnect() {
  if (endpoint_kind_ == EndpointKind::kNone) {
    return Status::FailedPrecondition("sender was never connected");
  }
  // Whatever is pending belongs to the dead stream; replaying it after a
  // partial write could interleave with the half-sent frame's bytes.
  if (pending_frames_ > 0) {
    stats_.frames_dropped += pending_frames_;
    ObsCounter("netio.sender.frames_dropped").Add(pending_frames_);
  }
  out_buf_.clear();
  pending_frames_ = pending_raw_ = pending_sparse_ = 0;
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
  Status last = Status::Ok();
  std::uint32_t backoff_ms = options_.reconnect_backoff_ms;
  for (std::uint32_t attempt = 0; attempt < options_.reconnect_attempts;
       ++attempt) {
    if (attempt > 0) {
      // Scheduling delay only — no clock is read, so dcs_lint's
      // wall-clock determinism rule holds.
      std::this_thread::sleep_for(std::chrono::milliseconds(backoff_ms));
      backoff_ms = std::min(backoff_ms * 2, options_.reconnect_backoff_max_ms);
    }
    int fd = -1;
    last = ConnectEndpoint(&fd);
    if (last.ok()) {
      fd_ = fd;
      broken_ = false;
      ++stats_.reconnects;
      ObsCounter("netio.sender.reconnects").Increment();
      return Status::Ok();
    }
    if (last.code() == Status::Code::kInvalidArgument) break;  // Unfixable.
  }
  return last;
}

void DigestSender::Close() {
  if (fd_ < 0) return;
  (void)FlushBuffer();  // Best effort; a failure here closed the fd already.
  if (fd_ >= 0) {
    ::shutdown(fd_, SHUT_WR);
    ::close(fd_);
    fd_ = -1;
  }
}

}  // namespace dcs
