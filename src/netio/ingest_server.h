#ifndef DCS_NETIO_INGEST_SERVER_H_
#define DCS_NETIO_INGEST_SERVER_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "common/sync.h"
#include "common/thread_pool.h"
#include "netio/dispatch.h"
#include "netio/frame.h"

namespace dcs {

/// Tuning for the ingestion service (docs/DISTRIBUTED.md).
struct IngestServerOptions {
  /// Concurrent connections accepted; excess connects are closed on sight.
  std::size_t max_connections = 64;
  /// Bytes read per readable socket per poll round.
  std::size_t read_chunk_bytes = 64 * 1024;
  /// Frame-level rejects tolerated before a connection is closed (the
  /// penalty box). Closing the *connection* is safe where quarantining the
  /// claimed router would not be: the peer proved itself noisy, while the
  /// router ids in its garbage are unauthenticated.
  std::uint64_t max_rejects_per_connection = 64;
  /// poll() timeout between stop-flag checks. Pure scheduling — the server
  /// never reads a wall clock.
  int poll_timeout_ms = 50;
  /// After an accept() resource failure (EMFILE and friends) the listener
  /// stays readable, so polling it again immediately would burn a wakeup
  /// per round making no progress. Instead the listeners are left out of
  /// the poll set ("deafened") for this many rounds, doubling on every
  /// consecutive failure up to `accept_backoff_max_rounds`; a successful
  /// accept resets the interval. Measured in poll rounds (each at most
  /// poll_timeout_ms), never in wall-clock time.
  std::size_t accept_backoff_rounds = 8;
  std::size_t accept_backoff_max_rounds = 512;
  /// Optional worker pool for the read pipeline. When set, each poll round
  /// fans the readable connections out across the pool — every connection
  /// owns its buffer and parser, so reads and frame parsing are
  /// embarrassingly parallel — and the decoded events are then offered
  /// through the single ordered stage on the poll thread (see class
  /// comment). nullptr = everything on the poll thread (the PR-8 behavior).
  /// The pool must outlive the server and must not be polled from inside
  /// `after_round` (the server owns it for the duration of a round).
  ThreadPool* pool = nullptr;
  /// Called on the Serve() thread after every poll round (so it may safely
  /// touch the dispatcher and ring — they are only ever driven from that
  /// thread). Returning false winds the server down like RequestStop().
  /// The daemon uses this to stream closed-epoch reports out of the ring.
  std::function<bool()> after_round;
};

/// Server lifetime counters (mirrored into netio.server.* metrics).
struct IngestServerStats {
  std::uint64_t connections_accepted = 0;
  std::uint64_t connections_closed = 0;
  std::uint64_t connections_refused = 0;  ///< Over max_connections.
  std::uint64_t accept_failures = 0;      ///< accept()/setup errors (EMFILE…).
  std::uint64_t accept_backoffs = 0;      ///< Listener deafen intervals begun.
  std::uint64_t penalty_closes = 0;       ///< Reject budget exhausted.
  std::uint64_t bytes_received = 0;
};

/// \brief The analysis center's ingestion daemon core: accept → parse →
/// validate → dispatch.
///
/// Listens on TCP and/or Unix-domain stream sockets, feeds every
/// connection's bytes through its own FrameParser, and hands the resulting
/// events to the FrameDispatcher (strict payload decode + identity
/// cross-check + EpochRing offer — see dispatch.h for the trust boundary).
///
/// Threading (docs/DISTRIBUTED.md): Serve() runs the poll loop on the
/// calling thread — the *leader*. Each round the leader polls, accepts, and
/// splits the rest of the round in two stages:
///
///  1. **Drain** (parallel when options.pool is set): every readable
///     connection is one task — read a chunk off the socket into the
///     connection's own buffer and run its own FrameParser. Connections
///     share no mutable state, so any schedule produces the same
///     per-connection event lists.
///  2. **Ordered offer** (always the leader, always in connection order):
///     the parsed events are accounted and handed to the FrameDispatcher,
///     which offers decoded digests to the EpochRing serially. This single
///     funnel is what keeps the report stream byte-identical to the
///     in-process path at any worker count — the proof is the loopback
///     differential suite at server threads 1/2/8.
///
/// RequestStop() is safe from any thread; Serve() notices within
/// poll_timeout_ms, flushes, closes every socket, and returns. The
/// connection table and lifetime counters are guarded by `mu_` (held across
/// each poll round, released while blocked in poll()), so stats() is safe
/// from any thread at any time.
class IngestServer {
 public:
  /// `dispatcher` must outlive the server.
  IngestServer(const IngestServerOptions& options, FrameDispatcher* dispatcher);
  ~IngestServer();

  IngestServer(const IngestServer&) = delete;
  IngestServer& operator=(const IngestServer&) = delete;

  /// Binds a TCP listener on 127.0.0.1:`port` (0 = ephemeral; see
  /// bound_tcp_port()). Call before Serve().
  [[nodiscard]] Status ListenTcp(std::uint16_t port);

  /// Binds a Unix-domain stream listener at `path`. An existing socket file
  /// is probed first: if a peer answers the connect, a live daemon owns the
  /// path and this returns FailedPrecondition instead of destroying its
  /// socket; only a stale file (connect refused — the previous owner died
  /// without unlinking) is removed. The path is unlinked on shutdown. Call
  /// before Serve().
  [[nodiscard]] Status ListenUds(const std::string& path);

  /// The TCP port actually bound (after ListenTcp with port 0).
  std::uint16_t bound_tcp_port() const DCS_EXCLUDES(mu_) {
    MutexLock lock(&mu_);
    return tcp_port_;
  }

  /// Runs the accept/read/dispatch loop until RequestStop(). Returns an
  /// error only when no listener was configured.
  [[nodiscard]] Status Serve();

  /// Asks Serve() to wind down. Safe from any thread and before Serve().
  void RequestStop() { stop_.store(true, std::memory_order_release); }

  /// Consistent copy of the lifetime counters. Safe from any thread, even
  /// while Serve() is running (blocks at most one poll round, including any
  /// epoch analysis that round triggers).
  IngestServerStats stats() const DCS_EXCLUDES(mu_) {
    MutexLock lock(&mu_);
    return stats_;
  }

 private:
  /// Per-connection state. The buffer, parser, and round results are
  /// confined to the one drain task the leader assigns per round (workers
  /// are synchronized with the leader through the pool's completion latch),
  /// so they need no lock of their own; everything else is leader-only
  /// under mu_.
  struct Connection {
    int fd = -1;
    FrameParser parser;
    std::uint64_t rejects = 0;
    /// Own read buffer: read_chunk_bytes, allocated on accept, reused every
    /// round — no shared scratch between connections.
    std::vector<std::uint8_t> read_buf;
    /// Drain-stage results, consumed and cleared by the offer stage.
    std::vector<FrameEvent> events;
    std::size_t bytes_read = 0;
    bool saw_eof = false;
    bool io_error = false;
  };

  // Accepts every pending connection on `listen_fd`. Returns false on an
  // accept resource failure (the caller starts a backoff interval).
  bool AcceptPending(int listen_fd) DCS_REQUIRES(mu_);
  // Drain stage: one chunked read + parse into conn-local state. Runs on a
  // pool worker (or the leader); touches no guarded state.
  void DrainConnection(Connection* conn) const;
  // Ordered offer stage: accounts the round's bytes/rejects, hands events
  // to the dispatcher, applies penalty/EOF/error closes. Leader only.
  // False when the connection was closed.
  bool OfferRound(Connection* conn) DCS_REQUIRES(mu_);
  // Flushes the parser tail and closes the socket.
  void CloseConnection(Connection* conn) DCS_REQUIRES(mu_);
  void CloseAll() DCS_REQUIRES(mu_);

  IngestServerOptions options_;
  FrameDispatcher* dispatcher_;
  /// Guards every piece of state the serve loop mutates. The leader holds
  /// it across each poll round (released while blocked in poll()); workers
  /// never take it — their connection state is handed over through the
  /// pool's completion latch instead.
  mutable Mutex mu_{"IngestServer.mu"};
  int tcp_listen_fd_ DCS_GUARDED_BY(mu_) = -1;
  int uds_listen_fd_ DCS_GUARDED_BY(mu_) = -1;
  std::uint16_t tcp_port_ DCS_GUARDED_BY(mu_) = 0;
  std::string uds_path_ DCS_GUARDED_BY(mu_);
  std::atomic<bool> stop_{false};  ///< Lock-free by design: RequestStop()
                                   ///< must never block behind a poll round.
  std::vector<std::unique_ptr<Connection>> connections_ DCS_GUARDED_BY(mu_);
  /// Accept-backoff state: rounds the listeners stay out of the poll set,
  /// and the length of the next interval (doubles per consecutive failure).
  std::size_t accept_deaf_rounds_ DCS_GUARDED_BY(mu_) = 0;
  std::size_t accept_backoff_next_ DCS_GUARDED_BY(mu_) = 0;
  IngestServerStats stats_ DCS_GUARDED_BY(mu_);
};

}  // namespace dcs

#endif  // DCS_NETIO_INGEST_SERVER_H_
