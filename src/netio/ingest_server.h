#ifndef DCS_NETIO_INGEST_SERVER_H_
#define DCS_NETIO_INGEST_SERVER_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "common/sync.h"
#include "netio/dispatch.h"
#include "netio/frame.h"

namespace dcs {

/// Tuning for the ingestion service (docs/DISTRIBUTED.md).
struct IngestServerOptions {
  /// Concurrent connections accepted; excess connects are closed on sight.
  std::size_t max_connections = 64;
  /// Bytes read per readable socket per poll round.
  std::size_t read_chunk_bytes = 64 * 1024;
  /// Frame-level rejects tolerated before a connection is closed (the
  /// penalty box). Closing the *connection* is safe where quarantining the
  /// claimed router would not be: the peer proved itself noisy, while the
  /// router ids in its garbage are unauthenticated.
  std::uint64_t max_rejects_per_connection = 64;
  /// poll() timeout between stop-flag checks. Pure scheduling — the server
  /// never reads a wall clock.
  int poll_timeout_ms = 50;
  /// Called on the Serve() thread after every poll round (so it may safely
  /// touch the dispatcher and ring — they are only ever driven from that
  /// thread). Returning false winds the server down like RequestStop().
  /// The daemon uses this to stream closed-epoch reports out of the ring.
  std::function<bool()> after_round;
};

/// Server lifetime counters (mirrored into netio.server.* metrics).
struct IngestServerStats {
  std::uint64_t connections_accepted = 0;
  std::uint64_t connections_closed = 0;
  std::uint64_t connections_refused = 0;  ///< Over max_connections.
  std::uint64_t accept_failures = 0;      ///< accept()/setup errors (EMFILE…).
  std::uint64_t penalty_closes = 0;       ///< Reject budget exhausted.
  std::uint64_t bytes_received = 0;
};

/// \brief The analysis center's ingestion daemon core: accept → parse →
/// validate → dispatch.
///
/// Listens on TCP and/or Unix-domain stream sockets, feeds every
/// connection's bytes through its own FrameParser, and hands the resulting
/// events to the FrameDispatcher (strict payload decode + identity
/// cross-check + EpochRing offer — see dispatch.h for the trust boundary).
///
/// Threading: Serve() runs the whole accept/read/dispatch loop on the
/// calling thread — EpochRing is single-threaded, and one reader keeps the
/// offer order well-defined. Payload decoding still fans out on the
/// dispatcher's pool per read batch. RequestStop() is safe from any thread;
/// Serve() notices within poll_timeout_ms, flushes, closes every socket,
/// and returns. The connection table and lifetime counters are guarded by
/// `mu_` (held across each poll round, released while blocked in poll()),
/// so stats() is safe from any thread at any time — and the locking
/// discipline is already the one the roadmap's multi-threaded connection
/// handling will need, checked by clang -Wthread-safety today.
class IngestServer {
 public:
  /// `dispatcher` must outlive the server.
  IngestServer(const IngestServerOptions& options, FrameDispatcher* dispatcher);
  ~IngestServer();

  IngestServer(const IngestServer&) = delete;
  IngestServer& operator=(const IngestServer&) = delete;

  /// Binds a TCP listener on 127.0.0.1:`port` (0 = ephemeral; see
  /// bound_tcp_port()). Call before Serve().
  [[nodiscard]] Status ListenTcp(std::uint16_t port);

  /// Binds a Unix-domain stream listener at `path` (unlinked first if it
  /// exists, and unlinked again on shutdown). Call before Serve().
  [[nodiscard]] Status ListenUds(const std::string& path);

  /// The TCP port actually bound (after ListenTcp with port 0).
  std::uint16_t bound_tcp_port() const DCS_EXCLUDES(mu_) {
    MutexLock lock(&mu_);
    return tcp_port_;
  }

  /// Runs the accept/read/dispatch loop until RequestStop(). Returns an
  /// error only when no listener was configured.
  [[nodiscard]] Status Serve();

  /// Asks Serve() to wind down. Safe from any thread and before Serve().
  void RequestStop() { stop_.store(true, std::memory_order_release); }

  /// Consistent copy of the lifetime counters. Safe from any thread, even
  /// while Serve() is running (blocks at most one poll round).
  IngestServerStats stats() const DCS_EXCLUDES(mu_) {
    MutexLock lock(&mu_);
    return stats_;
  }

 private:
  struct Connection {
    int fd = -1;
    FrameParser parser;
    std::uint64_t rejects = 0;
  };

  // Accepts every pending connection on `listen_fd`.
  void AcceptPending(int listen_fd) DCS_REQUIRES(mu_);
  // One chunked read + parse + dispatch. False when the connection is done
  // (EOF, error, or penalty) and has been closed.
  bool ReadAndDispatch(Connection* conn) DCS_REQUIRES(mu_);
  // Flushes the parser tail and closes the socket.
  void CloseConnection(Connection* conn) DCS_REQUIRES(mu_);
  void CloseAll() DCS_REQUIRES(mu_);

  IngestServerOptions options_;
  FrameDispatcher* dispatcher_;
  /// Guards every piece of state the serve loop mutates. Today there is one
  /// mutator (the Serve() thread) and concurrent readers (stats()); the
  /// lock held per poll round is what lets tomorrow's connection-handling
  /// threads land without re-deriving the invariants.
  mutable Mutex mu_{"IngestServer.mu"};
  int tcp_listen_fd_ DCS_GUARDED_BY(mu_) = -1;
  int uds_listen_fd_ DCS_GUARDED_BY(mu_) = -1;
  std::uint16_t tcp_port_ DCS_GUARDED_BY(mu_) = 0;
  std::string uds_path_ DCS_GUARDED_BY(mu_);
  std::atomic<bool> stop_{false};  ///< Lock-free by design: RequestStop()
                                   ///< must never block behind a poll round.
  std::vector<std::unique_ptr<Connection>> connections_ DCS_GUARDED_BY(mu_);
  std::vector<std::uint8_t> read_buf_ DCS_GUARDED_BY(mu_);
  IngestServerStats stats_ DCS_GUARDED_BY(mu_);
};

}  // namespace dcs

#endif  // DCS_NETIO_INGEST_SERVER_H_
