#ifndef DCS_NETIO_FRAME_H_
#define DCS_NETIO_FRAME_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "sketch/digest_codec.h"

namespace dcs {

/// Fixed little-endian byte offsets of the digest frame header — the
/// length-prefixed envelope routers wrap around an encoded digest payload
/// for transport (docs/DISTRIBUTED.md). Like DigestWireLayout, the offsets
/// are public so the fault-injection harness can patch fields directly and
/// the parser's validation is tested against every one of them.
///
/// Layout: header (24 bytes), payload (payload_len bytes), trailing u64
/// checksum = Hash64(header + payload, seed = kMagic). The checksum is an
/// integrity check, not an authenticator.
struct FrameWireLayout {
  /// "DCSF" — also the Hash64 checksum seed.
  static constexpr std::uint32_t kMagic = 0x44435346;
  static constexpr std::uint16_t kVersion = 1;

  static constexpr std::size_t kMagicOffset = 0;       ///< u32
  static constexpr std::size_t kVersionOffset = 4;     ///< u16
  static constexpr std::size_t kCodecOffset = 6;       ///< u8 (DigestCodecId)
  static constexpr std::size_t kFlagsOffset = 7;       ///< u8, must be 0
  static constexpr std::size_t kRouterIdOffset = 8;    ///< u32
  static constexpr std::size_t kEpochIdOffset = 12;    ///< u64
  static constexpr std::size_t kPayloadLenOffset = 20; ///< u32
  static constexpr std::size_t kHeaderBytes = 24;
  static constexpr std::size_t kChecksumBytes = 8;

  /// Upper bound on payload_len the parser will buffer for. Half of
  /// DigestWireLayout::kMaxTotalRowBytes — a frame that claims more cannot
  /// hold a decodable digest, so the parser refuses it *before* allocating
  /// (a lying length prefix must not drive the analysis center out of
  /// memory).
  static constexpr std::uint32_t kMaxPayloadBytes = 1u << 27;

  static constexpr std::size_t TotalBytes(std::size_t payload_len) {
    return kHeaderBytes + payload_len + kChecksumBytes;
  }
};

/// Parsed frame header. router_id / epoch_id duplicate the digest payload's
/// own header so the receiver can account for a frame (and route rejects)
/// without decoding the payload; the dispatcher cross-checks the two and
/// rejects frames whose envelope disagrees with their contents.
struct FrameHeader {
  std::uint16_t version = FrameWireLayout::kVersion;
  DigestCodecId codec = DigestCodecId::kSparse;
  std::uint8_t flags = 0;
  std::uint32_t router_id = 0;
  std::uint64_t epoch_id = 0;
  std::uint32_t payload_len = 0;

  friend bool operator==(const FrameHeader&, const FrameHeader&) = default;
};

/// Serializes one frame: header + payload + checksum. `payload` is an
/// encoded digest from EncodeDigestPayload(digest, codec) — the codec byte
/// in the envelope must match how the payload was encoded, or the strict
/// decoder on the other side will reject it.
[[nodiscard]] std::vector<std::uint8_t> EncodeFrame(
    DigestCodecId codec, std::uint32_t router_id, std::uint64_t epoch_id,
    const std::vector<std::uint8_t>& payload);

/// Recomputes and overwrites the trailing frame checksum in place (no-op
/// for buffers shorter than header + checksum). Like
/// Digest::ResealChecksum, this is an integrity check, not an
/// authenticator: the fault-injection harness reseals frames whose envelope
/// fields lie, which is exactly what the dispatcher's cross-checks must
/// survive.
void ResealFrameChecksum(std::vector<std::uint8_t>* frame);

/// Why the parser refused bytes (FrameEvent::reason).
enum class FrameRejectReason : std::uint8_t {
  kBadMagic = 0,        ///< Garbage between frames; skipped to next magic.
  kBadVersion,          ///< Unknown protocol version.
  kBadFlags,            ///< Reserved flags set.
  kUnknownCodec,        ///< Codec byte not a DigestCodecId.
  kOversizedPayload,    ///< payload_len > kMaxPayloadBytes.
  kChecksumMismatch,    ///< Frame arrived damaged.
  kTruncated,           ///< Stream ended mid-frame (Finish()).
};

const char* FrameRejectReasonName(FrameRejectReason reason);

/// One parser outcome: a complete validated frame, or a span of refused
/// bytes with the reason.
struct FrameEvent {
  enum class Kind : std::uint8_t { kFrame = 0, kReject = 1 };
  Kind kind = Kind::kFrame;

  /// kFrame: the validated header. kReject for header-level reasons: the
  /// claimed (unvalidated, untrusted) fields, for logging only.
  FrameHeader header;
  /// kFrame only: the payload bytes, checksum already verified.
  std::vector<std::uint8_t> payload;

  /// kReject only.
  FrameRejectReason reason = FrameRejectReason::kBadMagic;
  /// kReject only: bytes discarded from the stream for this event (resync
  /// scans coalesce a whole garbage run into one kBadMagic event).
  std::size_t skipped_bytes = 0;
};

/// \brief Incremental frame stream parser.
///
/// Feed arbitrary chunks of a byte stream (sockets deliver split and
/// coalesced reads); complete frames and rejected spans come out as
/// FrameEvents in stream order. After any malformed header or checksum
/// failure the parser resynchronizes by scanning forward for the next magic
/// sequence, so one damaged frame costs at most its own bytes, never the
/// rest of the connection.
///
/// The parser never interprets payload bytes — digest decoding (and its own
/// hardening) happens in the dispatcher. Single-threaded; one parser per
/// connection.
class FrameParser {
 public:
  FrameParser() = default;

  /// Appends `len` bytes of stream and emits every event that completes.
  void Consume(const std::uint8_t* data, std::size_t len,
               std::vector<FrameEvent>* out);

  /// Signals end-of-stream: a buffered partial frame (or partial magic) is
  /// flushed as one kTruncated reject. The parser is reusable afterwards.
  void Finish(std::vector<FrameEvent>* out);

  /// Bytes buffered awaiting a frame completion.
  std::size_t buffered_bytes() const { return buffer_.size() - consumed_; }

 private:
  // Parses events out of buffer_[consumed_..]; stops at a partial frame.
  void Drain(std::vector<FrameEvent>* out);
  // Scans buffer_[from..] for the magic sequence; buffer_.size() if absent.
  std::size_t FindMagic(std::size_t from) const;
  // Reclaims consumed_ prefix when it dominates the buffer.
  void Compact();

  std::vector<std::uint8_t> buffer_;
  std::size_t consumed_ = 0;
};

}  // namespace dcs

#endif  // DCS_NETIO_FRAME_H_
