#ifndef DCS_NETIO_DISPATCH_H_
#define DCS_NETIO_DISPATCH_H_

#include <cstdint>
#include <vector>

#include "common/thread_pool.h"
#include "dcs/epoch_ring.h"
#include "netio/frame.h"

namespace dcs {

/// Dispatcher lifetime counters (mirrored into netio.* metrics).
struct DispatchStats {
  std::uint64_t frames = 0;            ///< Valid frames handled.
  std::uint64_t frame_rejects = 0;     ///< Parser reject events handled.
  std::uint64_t resync_bytes = 0;      ///< Stream bytes discarded to resync.
  std::uint64_t decode_failures = 0;   ///< Payload failed strict decode.
  std::uint64_t identity_mismatches = 0;  ///< Envelope != payload identity.
  std::uint64_t raw_frames = 0;        ///< Valid frames, kRaw codec.
  std::uint64_t sparse_frames = 0;     ///< Valid frames, kSparse codec.
  std::uint64_t payload_bytes = 0;     ///< Wire payload bytes of valid frames.
  std::uint64_t dense_bytes = 0;       ///< Their dense-equivalent (kRaw) size.
  std::uint64_t digests_offered = 0;   ///< Decoded digests offered to the ring.
  std::uint64_t digests_accepted = 0;
  std::uint64_t digests_rejected = 0;  ///< Ring-level (shape, dup, stale...).
};

/// \brief Bridges parsed frame events into EpochRing ingestion.
///
/// The trust boundary of the digest plane (docs/DISTRIBUTED.md): a payload
/// is decoded with the strict per-frame codec, the envelope identity is
/// cross-checked against the decoded digest's own header, and only then is
/// the digest offered to the ring — which applies the full
/// DcsMonitor::AddDigest hardening (shape, duplicate, epoch window,
/// per-router quarantine) exactly as for in-process ingestion. Malformed
/// payloads never construct a Digest that reaches the ring.
///
/// Frame-level failures (parse rejects, decode failures, identity
/// mismatches) never quarantine a router: every identity in a damaged or
/// forged frame is unauthenticated, so acting on it would let an attacker
/// quarantine an honest router by spraying garbage. Quarantine remains a
/// ring-level verdict about *well-formed* digests only.
///
/// Threading: deliberately unlocked. HandleEvent/HandleEvents must be
/// called from one thread at a time (the server's ingest loop) — the ring's
/// offer path is thread-confined, and serial offers are what keep the
/// report stream deterministic, so a mutex here would buy nothing and hide
/// a contract violation that TSan should catch instead. `stats_` is part of
/// that confinement (read stats() from the ingest thread, e.g. in the
/// server's after_round hook). HandleEvents additionally decodes payloads
/// on the AnalysisContext pool, then offers the results serially in arrival
/// order, so the report stream is identical to HandleEvent one at a time.
/// The multi-threaded IngestServer preserves this contract: connection
/// reads and frame *parsing* fan out across its worker pool, but every
/// HandleEvents call happens on the leader thread, one connection at a
/// time, in connection order (the "ordered offer" stage).
class FrameDispatcher {
 public:
  /// `ring` must outlive the dispatcher. `pool` may be nullptr (serial
  /// decode); it is only used for batch decoding, never for offering.
  FrameDispatcher(EpochRing* ring, ThreadPool* pool);

  /// Handles one parser event serially.
  void HandleEvent(const FrameEvent& event);

  /// Handles a batch: payload decodes fan out on the pool, ring offers stay
  /// serial in arrival order (bit-identical to the serial path).
  void HandleEvents(const std::vector<FrameEvent>& events);

  const DispatchStats& stats() const { return stats_; }

 private:
  struct Decoded;
  // Frame-event bookkeeping + payload decode (no ring access, thread-safe).
  Decoded DecodeOne(const FrameEvent& event) const;
  // Serial half: stats, metrics, and the ring offer.
  void Account(const FrameEvent& event, const Decoded& decoded);

  EpochRing* ring_;
  ThreadPool* pool_;
  DispatchStats stats_;
};

}  // namespace dcs

#endif  // DCS_NETIO_DISPATCH_H_
