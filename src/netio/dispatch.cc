#include "netio/dispatch.h"

#include <utility>

#include "common/logging.h"
#include "obs/metrics.h"
#include "sketch/digest_codec.h"

namespace dcs {

struct FrameDispatcher::Decoded {
  bool is_frame = false;     ///< Event was a valid frame (not a reject).
  bool decode_ok = false;    ///< Payload passed the strict codec decode.
  bool identity_ok = false;  ///< Envelope matches the payload's own header.
  Digest digest;
  std::size_t dense_bytes = 0;  ///< Dense-equivalent payload size.
};

FrameDispatcher::FrameDispatcher(EpochRing* ring, ThreadPool* pool)
    : ring_(ring), pool_(pool) {
  DCS_CHECK(ring_ != nullptr);
}

FrameDispatcher::Decoded FrameDispatcher::DecodeOne(
    const FrameEvent& event) const {
  Decoded d;
  if (event.kind != FrameEvent::Kind::kFrame) return d;
  d.is_frame = true;
  d.decode_ok =
      DecodeDigestPayload(event.payload, event.header.codec, &d.digest).ok();
  if (!d.decode_ok) return d;
  d.identity_ok = d.digest.router_id == event.header.router_id &&
                  d.digest.epoch_id == event.header.epoch_id;
  d.dense_bytes = RawPayloadSizeBytes(d.digest);
  return d;
}

void FrameDispatcher::Account(const FrameEvent& event, const Decoded& decoded) {
  if (!decoded.is_frame) {
    ++stats_.frame_rejects;
    stats_.resync_bytes += event.skipped_bytes;
    ObsCounter("netio.frames.rejected").Increment();
    ObsCounter("netio.frames.resync_bytes").Add(event.skipped_bytes);
    return;
  }
  ++stats_.frames;
  stats_.payload_bytes += event.payload.size();
  ObsCounter("netio.frames.accepted").Increment();
  ObsCounter("netio.payload.bytes").Add(event.payload.size());
  if (event.header.codec == DigestCodecId::kRaw) {
    ++stats_.raw_frames;
    ObsCounter("netio.payload.raw_frames").Increment();
  } else {
    ++stats_.sparse_frames;
    ObsCounter("netio.payload.sparse_frames").Increment();
  }
  if (!decoded.decode_ok) {
    ++stats_.decode_failures;
    ObsCounter("netio.decode.failures").Increment();
    return;
  }
  stats_.dense_bytes += decoded.dense_bytes;
  ObsCounter("netio.payload.dense_bytes").Add(decoded.dense_bytes);
  if (!decoded.identity_ok) {
    // The envelope lies about who/when relative to its own payload. Either
    // half could be the forged one, so the digest is dropped before the
    // ring sees it (and nobody is quarantined — see the class comment).
    ++stats_.identity_mismatches;
    ObsCounter("netio.decode.identity_mismatch").Increment();
    return;
  }
  ++stats_.digests_offered;
  ObsCounter("netio.digests.offered").Increment();
  if (ring_->Offer(decoded.digest).ok()) {
    ++stats_.digests_accepted;
    ObsCounter("netio.digests.accepted").Increment();
  } else {
    ++stats_.digests_rejected;
    ObsCounter("netio.digests.rejected").Increment();
  }
}

void FrameDispatcher::HandleEvent(const FrameEvent& event) {
  Account(event, DecodeOne(event));
}

void FrameDispatcher::HandleEvents(const std::vector<FrameEvent>& events) {
  if (events.empty()) return;
  std::vector<Decoded> decoded(events.size());
  if (pool_ != nullptr && events.size() > 1) {
    pool_->ParallelFor(events.size(), [&](std::size_t i) {
      decoded[i] = DecodeOne(events[i]);
    });
  } else {
    for (std::size_t i = 0; i < events.size(); ++i) {
      decoded[i] = DecodeOne(events[i]);
    }
  }
  // Offers stay serial and in arrival order: the ring's window advance and
  // duplicate detection are order-sensitive, and this order is the one the
  // serial path would use.
  for (std::size_t i = 0; i < events.size(); ++i) {
    Account(events[i], decoded[i]);
  }
}

}  // namespace dcs
