#include "common/thread_pool.h"

#include <algorithm>

#include "common/logging.h"

namespace dcs {

ThreadPool::ThreadPool(std::size_t num_threads) {
  DCS_CHECK(num_threads >= 1);
  threads_.reserve(num_threads);
  for (std::size_t i = 0; i < num_threads; ++i) {
    threads_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::unique_lock<std::mutex> lock(mu_);
    shutting_down_ = true;
  }
  work_available_.notify_all();
  for (std::thread& t : threads_) t.join();
}

void ThreadPool::Schedule(std::function<void()> task) {
  {
    std::unique_lock<std::mutex> lock(mu_);
    DCS_CHECK(!shutting_down_);
    queue_.push(std::move(task));
    ++in_flight_;
  }
  work_available_.notify_one();
}

void ThreadPool::Wait() {
  std::unique_lock<std::mutex> lock(mu_);
  all_done_.wait(lock, [this] { return in_flight_ == 0; });
}

void ThreadPool::ParallelFor(std::size_t count,
                             const std::function<void(std::size_t)>& fn) {
  if (count == 0) return;
  const std::size_t shards = std::min(count, threads_.size() * 4);
  const std::size_t chunk = (count + shards - 1) / shards;
  for (std::size_t s = 0; s < shards; ++s) {
    const std::size_t begin = s * chunk;
    const std::size_t end = std::min(count, begin + chunk);
    if (begin >= end) break;
    Schedule([begin, end, &fn] {
      for (std::size_t i = begin; i < end; ++i) fn(i);
    });
  }
  Wait();
}

void ThreadPool::WorkerLoop() {
  while (true) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_available_.wait(
          lock, [this] { return shutting_down_ || !queue_.empty(); });
      if (queue_.empty()) return;  // shutting_down_ and drained.
      task = std::move(queue_.front());
      queue_.pop();
    }
    task();
    {
      std::unique_lock<std::mutex> lock(mu_);
      --in_flight_;
      if (in_flight_ == 0) all_done_.notify_all();
    }
  }
}

}  // namespace dcs
