#include "common/thread_pool.h"

#include <algorithm>
#include <atomic>

#include "common/logging.h"

namespace dcs {
namespace {

// Which pool (if any) owns the calling thread. Lets RunShards degrade to
// inline execution when invoked from one of its own workers, where waiting
// would deadlock (the caller's task counts as in-flight).
thread_local const ThreadPool* current_worker_pool = nullptr;

}  // namespace

std::vector<ShardRange> MakeShards(std::size_t count, std::size_t max_shards) {
  std::vector<ShardRange> shards;
  if (count == 0) return shards;
  const std::size_t n = std::min(count, std::max<std::size_t>(max_shards, 1));
  const std::size_t base = count / n;
  const std::size_t extra = count % n;  // First `extra` shards get +1.
  shards.reserve(n);
  std::size_t begin = 0;
  for (std::size_t s = 0; s < n; ++s) {
    const std::size_t len = base + (s < extra ? 1 : 0);
    shards.push_back(ShardRange{s, begin, begin + len});
    begin += len;
  }
  DCS_CHECK(begin == count);
  return shards;
}

ThreadPool::ThreadPool(std::size_t num_threads) {
  DCS_CHECK(num_threads >= 1);
  threads_.reserve(num_threads);
  for (std::size_t i = 0; i < num_threads; ++i) {
    threads_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    MutexLock lock(&mu_);
    shutting_down_ = true;
  }
  work_available_.SignalAll();
  for (std::thread& t : threads_) t.join();
}

bool ThreadPool::OnWorkerThread() const {
  return current_worker_pool == this;
}

void ThreadPool::Schedule(std::function<void()> task) {
  {
    MutexLock lock(&mu_);
    DCS_CHECK(!shutting_down_);
    queue_.push(std::move(task));
    ++in_flight_;
  }
  work_available_.Signal();
}

void ThreadPool::Wait() {
  DCS_CHECK(!OnWorkerThread());  // A worker waiting on itself would hang.
  MutexLock lock(&mu_);
  while (in_flight_ != 0) all_done_.Wait(&lock);
}

std::vector<ShardRange> ThreadPool::ShardsFor(std::size_t count) const {
  return MakeShards(count, threads_.size() * 4);
}

void ThreadPool::RunShards(const std::vector<ShardRange>& shards,
                           const std::function<void(const ShardRange&)>& fn) {
  if (shards.empty()) return;
  // The deterministic-merge contract: shard indices are their positions and
  // ranges tile [begin, end) without gaps, so per-shard partials can be
  // merged in ascending index order regardless of execution schedule.
  for (std::size_t s = 0; s < shards.size(); ++s) {
    DCS_DCHECK(shards[s].index == s)
        << "shard " << s << " carries index " << shards[s].index;
    DCS_DCHECK(shards[s].begin <= shards[s].end)
        << "shard " << s << " has inverted range";
    DCS_DCHECK(s == 0 || shards[s].begin == shards[s - 1].end)
        << "shard " << s << " is not contiguous with its predecessor";
  }
  if (OnWorkerThread() || shards.size() == 1) {
    // Nested call (or nothing to spread): run inline. Shard contents and
    // merge order are schedule-independent, so results are unchanged.
    for (const ShardRange& shard : shards) fn(shard);
    return;
  }
  // Per-call completion latch, so concurrent RunShards callers (and
  // unrelated Schedule traffic) never wait on each other's work. The
  // counter is the latch state (decremented outside the lock); done_mu only
  // serializes the sleep/notify handshake, which is why it guards no data.
  std::atomic<std::size_t> remaining{shards.size()};
  Mutex done_mu{"ThreadPool.RunShards.done_mu"};
  CondVar done_cv;
  for (const ShardRange& shard : shards) {
    Schedule([&fn, &shard, &remaining, &done_mu, &done_cv] {
      fn(shard);
      if (remaining.fetch_sub(1, std::memory_order_acq_rel) == 1) {
        MutexLock lock(&done_mu);
        done_cv.SignalAll();
      }
    });
  }
  MutexLock lock(&done_mu);
  while (remaining.load(std::memory_order_acquire) != 0) {
    done_cv.Wait(&lock);
  }
}

void ThreadPool::ParallelFor(std::size_t count,
                             const std::function<void(std::size_t)>& fn) {
  RunShards(ShardsFor(count), [&fn](const ShardRange& shard) {
    for (std::size_t i = shard.begin; i < shard.end; ++i) fn(i);
  });
}

void ThreadPool::RunTasks(const std::vector<std::function<void()>>& tasks) {
  if (tasks.empty()) return;
  if (OnWorkerThread() || tasks.size() == 1) {
    // Nested call (or nothing to spread): run inline. Tasks carry no
    // ordering contract, so the batch-order schedule is as good as any.
    for (const auto& task : tasks) task();
    return;
  }
  // Per-call completion latch, exactly as in RunShards: concurrent callers
  // (and unrelated Schedule traffic) never wait on each other's work.
  std::atomic<std::size_t> remaining{tasks.size()};
  Mutex done_mu{"ThreadPool.RunTasks.done_mu"};
  CondVar done_cv;
  for (const auto& task : tasks) {
    Schedule([&task, &remaining, &done_mu, &done_cv] {
      task();
      if (remaining.fetch_sub(1, std::memory_order_acq_rel) == 1) {
        MutexLock lock(&done_mu);
        done_cv.SignalAll();
      }
    });
  }
  MutexLock lock(&done_mu);
  while (remaining.load(std::memory_order_acquire) != 0) {
    done_cv.Wait(&lock);
  }
}

void ThreadPool::WorkerLoop() {
  current_worker_pool = this;
  while (true) {
    std::function<void()> task;
    {
      MutexLock lock(&mu_);
      while (!shutting_down_ && queue_.empty()) work_available_.Wait(&lock);
      if (queue_.empty()) return;  // shutting_down_ and drained.
      task = std::move(queue_.front());
      queue_.pop();
    }
    task();
    {
      MutexLock lock(&mu_);
      --in_flight_;
      if (in_flight_ == 0) all_done_.SignalAll();
    }
  }
}

}  // namespace dcs
