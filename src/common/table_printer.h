#ifndef DCS_COMMON_TABLE_PRINTER_H_
#define DCS_COMMON_TABLE_PRINTER_H_

#include <ostream>
#include <string>
#include <vector>

namespace dcs {

/// \brief Column-aligned console tables for the benchmark harnesses.
///
/// Every experiment binary reports the paper's rows/series through this so
/// that test_output/bench_output transcripts are readable and diffable.
class TablePrinter {
 public:
  /// Creates a table with the given column headers.
  explicit TablePrinter(std::vector<std::string> headers);

  /// Adds one row; must have as many cells as there are headers.
  void AddRow(std::vector<std::string> cells);

  /// Convenience: formats doubles with `precision` digits after the point.
  static std::string Fmt(double value, int precision = 3);

  /// Renders the table with padded columns.
  void Print(std::ostream& os) const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace dcs

#endif  // DCS_COMMON_TABLE_PRINTER_H_
