#include "common/distributions.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/logging.h"
#include "common/stats_math.h"

namespace dcs {
namespace {

// Generic mode-centered inversion given the log pmf at the mode and ratio
// functions pmf(k+1)/pmf(k), pmf(k-1)/pmf(k). Support is [lo_support,
// hi_support]. Exact up to floating-point rounding; expected cost O(sigma).
template <typename UpRatio, typename DownRatio>
std::int64_t ModeCenteredInversion(Rng* rng, std::int64_t mode,
                                   double log_pmf_mode,
                                   std::int64_t lo_support,
                                   std::int64_t hi_support, UpRatio up_ratio,
                                   DownRatio down_ratio) {
  const double u = rng->UniformDouble();
  const double pmf_mode = std::exp(log_pmf_mode);
  double cum = pmf_mode;
  if (u < cum) return mode;

  std::int64_t lo = mode;
  std::int64_t hi = mode;
  double p_lo = pmf_mode;
  double p_hi = pmf_mode;
  while (true) {
    const bool can_down = lo > lo_support;
    const bool can_up = hi < hi_support;
    if (!can_down && !can_up) {
      // Floating-point shortfall: the remaining mass rounds to the boundary
      // with the larger residual probability.
      return p_lo >= p_hi ? lo_support : hi_support;
    }
    const double next_down = can_down ? p_lo * down_ratio(lo) : -1.0;
    const double next_up = can_up ? p_hi * up_ratio(hi) : -1.0;
    if (next_down >= next_up) {
      --lo;
      p_lo = next_down;
      cum += p_lo;
      if (u < cum) return lo;
    } else {
      ++hi;
      p_hi = next_up;
      cum += p_hi;
      if (u < cum) return hi;
    }
  }
}

}  // namespace

std::int64_t SampleBinomial(Rng* rng, std::int64_t n, double p) {
  DCS_CHECK(n >= 0);
  if (n == 0 || p <= 0.0) return 0;
  if (p >= 1.0) return n;
  if (p > 0.5) return n - SampleBinomial(rng, n, 1.0 - p);

  const double np = static_cast<double>(n) * p;
  if (np < 30.0) {
    // Sequential inversion from zero: cum pmf recurrence, expected O(np).
    const double q = 1.0 - p;
    const double ratio = p / q;
    double pmf = std::pow(q, static_cast<double>(n));
    if (pmf > 0.0) {
      double cum = pmf;
      const double u = rng->UniformDouble();
      std::int64_t k = 0;
      while (u >= cum && k < n) {
        pmf *= ratio * static_cast<double>(n - k) /
               static_cast<double>(k + 1);
        ++k;
        cum += pmf;
      }
      return k;
    }
    // q^n underflowed (huge n, tiny p, but np < 30): Poisson is exact to
    // within O(p) here.
    return std::min<std::int64_t>(n, SamplePoisson(rng, np));
  }

  const auto mode = static_cast<std::int64_t>(
      std::floor((static_cast<double>(n) + 1) * p));
  const double log_pmf_mode = LogBinomPmf(mode, n, p);
  const double odds = p / (1.0 - p);
  return ModeCenteredInversion(
      rng, mode, log_pmf_mode, 0, n,
      [n, odds](std::int64_t k) {
        return odds * static_cast<double>(n - k) / static_cast<double>(k + 1);
      },
      [n, odds](std::int64_t k) {
        return static_cast<double>(k) /
               (static_cast<double>(n - k + 1) * odds);
      });
}

std::int64_t SampleHypergeometric(Rng* rng, std::int64_t big_n, std::int64_t i,
                                  std::int64_t j) {
  DCS_CHECK(i >= 0 && i <= big_n && j >= 0 && j <= big_n);
  const std::int64_t k_min = std::max<std::int64_t>(0, i + j - big_n);
  const std::int64_t k_max = std::min(i, j);
  if (k_min == k_max) return k_min;
  const auto mode = std::clamp<std::int64_t>(
      static_cast<std::int64_t>(
          std::floor(static_cast<double>((i + 1) * (j + 1)) /
                     static_cast<double>(big_n + 2))),
      k_min, k_max);
  const double log_pmf_mode = LogHypergeomPmf(mode, big_n, i, j);
  // pmf(k+1)/pmf(k) = (i-k)(j-k) / ((k+1)(N-i-j+k+1))
  return ModeCenteredInversion(
      rng, mode, log_pmf_mode, k_min, k_max,
      [big_n, i, j](std::int64_t k) {
        return static_cast<double>((i - k) * (j - k)) /
               static_cast<double>((k + 1) * (big_n - i - j + k + 1));
      },
      [big_n, i, j](std::int64_t k) {
        return static_cast<double>(k * (big_n - i - j + k)) /
               static_cast<double>((i - k + 1) * (j - k + 1));
      });
}

std::int64_t SamplePoisson(Rng* rng, double mean) {
  DCS_CHECK(mean >= 0.0);
  if (mean == 0.0) return 0;
  if (mean < 30.0) {
    // Knuth inversion in the log domain is unnecessary at this size.
    const double limit = std::exp(-mean);
    double prod = rng->UniformDouble();
    std::int64_t k = 0;
    while (prod > limit) {
      prod *= rng->UniformDouble();
      ++k;
    }
    return k;
  }
  const auto mode = static_cast<std::int64_t>(std::floor(mean));
  const double log_pmf_mode = static_cast<double>(mode) * std::log(mean) -
                              mean - std::lgamma(static_cast<double>(mode) + 1);
  return ModeCenteredInversion(
      rng, mode, log_pmf_mode, 0,
      std::numeric_limits<std::int64_t>::max(),
      [mean](std::int64_t k) { return mean / static_cast<double>(k + 1); },
      [mean](std::int64_t k) { return static_cast<double>(k) / mean; });
}

std::vector<std::uint64_t> SampleWithoutReplacement(Rng* rng, std::uint64_t n,
                                                    std::uint64_t k) {
  DCS_CHECK(k <= n);
  // Floyd's algorithm: k iterations, O(k) expected set operations.
  std::vector<std::uint64_t> result;
  result.reserve(k);
  // A small open-addressing set would be faster, but k is modest in all our
  // uses; std::vector + sorted lookup keeps it simple.
  std::vector<std::uint64_t> chosen;
  chosen.reserve(k);
  for (std::uint64_t r = n - k; r < n; ++r) {
    const std::uint64_t candidate = rng->UniformInt(r + 1);
    const std::uint64_t pick =
        std::binary_search(chosen.begin(), chosen.end(), candidate)
            ? r
            : candidate;
    chosen.insert(std::lower_bound(chosen.begin(), chosen.end(), pick), pick);
    result.push_back(pick);
  }
  return result;
}

ZipfSampler::ZipfSampler(std::uint64_t n, double alpha) {
  DCS_CHECK(n >= 1);
  cdf_.resize(n);
  double total = 0.0;
  for (std::uint64_t r = 1; r <= n; ++r) {
    total += std::pow(static_cast<double>(r), -alpha);
    cdf_[r - 1] = total;
  }
  for (double& c : cdf_) c /= total;
  cdf_.back() = 1.0;
}

std::uint64_t ZipfSampler::Sample(Rng* rng) const {
  const double u = rng->UniformDouble();
  const auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
  return static_cast<std::uint64_t>(it - cdf_.begin()) + 1;
}

double ZipfSampler::Pmf(std::uint64_t r) const {
  DCS_CHECK(r >= 1 && r <= cdf_.size());
  const double hi = cdf_[r - 1];
  const double lo = r >= 2 ? cdf_[r - 2] : 0.0;
  return hi - lo;
}

}  // namespace dcs
