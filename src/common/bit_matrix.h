#ifndef DCS_COMMON_BIT_MATRIX_H_
#define DCS_COMMON_BIT_MATRIX_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/bit_vector.h"

namespace dcs {

/// \brief Row-major 0/1 matrix backed by BitVector rows.
///
/// This is the analysis center's view of the aggregated digests: one row per
/// router bitmap (aligned case) or per sketch array (unaligned case), one
/// column per hash index. Provides the column-oriented helpers the ASID
/// detectors need (column weights, column extraction) without materializing a
/// transpose.
class BitMatrix {
 public:
  /// An empty matrix.
  BitMatrix() = default;

  /// `rows` x `cols` matrix of zeroes.
  BitMatrix(std::size_t rows, std::size_t cols);

  std::size_t rows() const { return rows_.size(); }
  std::size_t cols() const { return cols_; }

  /// Mutable row access.
  BitVector& row(std::size_t r) {
    DCS_CHECK(r < rows_.size());
    return rows_[r];
  }

  /// Read-only row access.
  const BitVector& row(std::size_t r) const {
    DCS_CHECK(r < rows_.size());
    return rows_[r];
  }

  /// Sets entry (r, c) to 1.
  void Set(std::size_t r, std::size_t c) { row(r).Set(c); }

  /// Returns entry (r, c).
  bool Test(std::size_t r, std::size_t c) const { return row(r).Test(c); }

  /// Appends a row (takes ownership). The first appended row fixes the column
  /// count; later rows must match it.
  void AppendRow(BitVector row);

  /// Weight (number of 1s) of every column. Cost O(rows * set bits); columns
  /// are counted by scanning rows word-wise.
  std::vector<std::uint32_t> ColumnWeights() const;

  /// Extracts column `c` as a BitVector of length rows().
  BitVector ExtractColumn(std::size_t c) const;

  /// Extracts the listed columns; result[i] is column cols_to_take[i].
  /// One pass over the matrix regardless of how many columns are taken.
  std::vector<BitVector> ExtractColumns(
      const std::vector<std::size_t>& cols_to_take) const;

 private:
  std::size_t cols_ = 0;
  std::vector<BitVector> rows_;
};

}  // namespace dcs

#endif  // DCS_COMMON_BIT_MATRIX_H_
