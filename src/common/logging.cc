#include "common/logging.h"

#include <atomic>
#include <cstring>

namespace dcs {
namespace internal_logging {
namespace {

std::atomic<int> g_min_level{static_cast<int>(LogLevel::kInfo)};

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarning:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
  }
  return "?";
}

void InitFromEnv() {
  // NOLINTNEXTLINE(concurrency-mt-unsafe): environment is never mutated.
  const char* env = std::getenv("DCS_LOG_LEVEL");
  if (env == nullptr) return;
  if (std::strcmp(env, "debug") == 0) {
    g_min_level = static_cast<int>(LogLevel::kDebug);
  } else if (std::strcmp(env, "info") == 0) {
    g_min_level = static_cast<int>(LogLevel::kInfo);
  } else if (std::strcmp(env, "warning") == 0) {
    g_min_level = static_cast<int>(LogLevel::kWarning);
  } else if (std::strcmp(env, "error") == 0) {
    g_min_level = static_cast<int>(LogLevel::kError);
  }
}

const char* Basename(const char* path) {
  const char* slash = std::strrchr(path, '/');
  return slash != nullptr ? slash + 1 : path;
}

}  // namespace

LogLevel MinLogLevel() {
  // Thread-safe one-time init via a magic static — not std::call_once,
  // which would pull <mutex> into the one layer beneath common/sync.h
  // (DCS_CHECK is what the sync wrappers abort through).
  static const bool env_applied = [] {
    InitFromEnv();
    return true;
  }();
  (void)env_applied;
  return static_cast<LogLevel>(g_min_level.load());
}

void SetMinLogLevel(LogLevel level) {
  g_min_level = static_cast<int>(level);
}

LogMessage::LogMessage(LogLevel level, const char* file, int line)
    : level_(level) {
  stream_ << "[" << LevelName(level) << " " << Basename(file) << ":" << line
          << "] ";
}

LogMessage::~LogMessage() {
  if (level_ >= MinLogLevel()) {
    stream_ << "\n";
    std::cerr << stream_.str();
  }
}

FatalLogMessage::FatalLogMessage(const char* file, int line,
                                 const char* condition) {
  stream_ << "[FATAL " << Basename(file) << ":" << line << "] Check failed: "
          << condition << " ";
}

FatalLogMessage::~FatalLogMessage() {
  stream_ << "\n";
  std::cerr << stream_.str();
  std::abort();
}

}  // namespace internal_logging
}  // namespace dcs
