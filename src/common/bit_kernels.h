#ifndef DCS_COMMON_BIT_KERNELS_H_
#define DCS_COMMON_BIT_KERNELS_H_

#include <cstddef>
#include <cstdint>

namespace dcs {

/// \brief Runtime-dispatched kernels for the AND+popcount hot path.
///
/// Every detector in the system — the aligned k-product search, the weight
/// screen, and the unaligned pair scan — bottoms out in "AND two word spans
/// and count the ones" (Section IV-D: "the vast majority of the
/// computational complexity ... comes from computing, for any two rows, the
/// number of indices in which both rows have value 1"). This table binds
/// those primitives to the best implementation the host supports (AVX2 on
/// x86-64, NEON on AArch64, portable scalar otherwise), selected once at
/// startup.
///
/// Contract: every implementation of an operation returns bit-identical
/// results to the scalar reference for every input, including ragged word
/// counts and zero-length spans. The differential suite in
/// tests/test_bit_kernels.cc enforces this, which is what lets the analysis
/// pipelines keep their bit-identical-merge determinism guarantee (PR 2)
/// while the instruction mix changes underneath them.
///
/// All word counts are in 64-bit words; callers guarantee that padding bits
/// past a vector's logical size are zero (the BitVector invariant).
struct BitKernelOps {
  /// Implementation name for logs, benches, and tests: "scalar", "avx2",
  /// or "neon".
  const char* name;

  /// Number of set bits in words[0, num_words).
  std::size_t (*count_ones)(const std::uint64_t* words, std::size_t num_words);

  /// Fused AND+popcount: number of positions where a and b are both 1.
  /// Never materializes the AND.
  std::size_t (*and_count)(const std::uint64_t* a, const std::uint64_t* b,
                           std::size_t num_words);

  /// dst[w] &= src[w] for w in [0, num_words).
  void (*and_inplace)(std::uint64_t* dst, const std::uint64_t* src,
                      std::size_t num_words);

  /// dst[w] |= src[w] for w in [0, num_words).
  void (*or_inplace)(std::uint64_t* dst, const std::uint64_t* src,
                     std::size_t num_words);

  /// out[w] = AND over rows of rows[r][w]. With num_rows == 0 the fold is
  /// the identity: out is set to all-ones words.
  void (*and_fold)(const std::uint64_t* const* rows, std::size_t num_rows,
                   std::size_t num_words, std::uint64_t* out);

  /// out[w] = OR over rows of rows[r][w]. With num_rows == 0, out is zeroed.
  void (*or_fold)(const std::uint64_t* const* rows, std::size_t num_rows,
                  std::size_t num_words, std::uint64_t* out);

  /// Blocked one-against-many AND+popcount: out[r] = and_count(left,
  /// rows[r], num_words) for every r. Tiled over the word range so `left`
  /// is re-read from cache, not memory, when the rows are long — the
  /// O(groups^2) pair scan and the hopefuls iterations call this with one
  /// shared left operand per inner loop.
  void (*and_count_batch)(const std::uint64_t* left,
                          const std::uint64_t* const* rows,
                          std::size_t num_rows, std::size_t num_words,
                          std::uint32_t* out);
};

/// The portable scalar reference implementation. Always available; the
/// differential tests compare every other table against it.
const BitKernelOps& ScalarBitKernels();

/// The table the process uses: the best SIMD table the host CPU supports,
/// unless the DCS_FORCE_SCALAR environment variable is set to anything but
/// "0" (differential testing / bisecting a suspected kernel bug), or the
/// build omitted the SIMD translation unit (DCS_SCALAR_KERNELS_ONLY=ON).
/// Selected once; subsequent calls return the same table.
const BitKernelOps& ActiveBitKernels();

/// Adds, for every word w in [word_begin, word_end) and every set bit b of
/// rows[r][w], one to counts[w * 64 + b]. This is the positional-popcount
/// ("column weights") primitive behind the weight screen, BitMatrix column
/// weights, and the aligned core scan. Runs a carry-save-adder reduction
/// over blocks of 15 rows so dense 4 Mbit rows cost ~5 plane scans per
/// block instead of 15 word scans. Portable and single-implementation by
/// design: its output is a plain integer histogram, so there is nothing to
/// dispatch on without risking divergence.
void AccumulateColumnCounts(const std::uint64_t* const* rows,
                            std::size_t num_rows, std::size_t word_begin,
                            std::size_t word_end, std::uint32_t* counts);

namespace internal {

/// The dispatch decision, factored out so tests can exercise both branches
/// without mutating the process environment: returns ScalarBitKernels()
/// when force_scalar is set, otherwise the SIMD table if one is compiled in
/// and the host supports it.
const BitKernelOps& SelectBitKernels(bool force_scalar);

/// Defined in src/common/bit_kernels_avx2.cc (the single translation unit
/// allowed target-specific intrinsics — see tools/dcs_lint). Returns the
/// SIMD table for this host, or nullptr when the CPU lacks the ISA. When
/// the build omits that TU (DCS_SCALAR_KERNELS_ONLY=ON), a fallback
/// definition in bit_kernels.cc returns nullptr unconditionally.
const BitKernelOps* SimdBitKernels();

}  // namespace internal

}  // namespace dcs

#endif  // DCS_COMMON_BIT_KERNELS_H_
