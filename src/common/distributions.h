#ifndef DCS_COMMON_DISTRIBUTIONS_H_
#define DCS_COMMON_DISTRIBUTIONS_H_

#include <cstdint>
#include <vector>

#include "common/rng.h"

namespace dcs {

/// Exact Binomial(n, p) draw. Mode-centered inversion with the pmf
/// recurrence, so cost is O(sqrt(n p (1-p))) per draw; reproducible across
/// platforms (unlike std::binomial_distribution).
std::int64_t SampleBinomial(Rng* rng, std::int64_t n, double p);

/// Exact hypergeometric draw: number of marked items when drawing j from a
/// population of big_n with i marked (the paper's X(i,j), N = 1024).
std::int64_t SampleHypergeometric(Rng* rng, std::int64_t big_n, std::int64_t i,
                                  std::int64_t j);

/// Poisson(mean) draw; inversion for small means, mode-centered otherwise.
std::int64_t SamplePoisson(Rng* rng, double mean);

/// k distinct values uniform in [0, n), in unspecified order (Floyd's
/// algorithm). Requires k <= n.
std::vector<std::uint64_t> SampleWithoutReplacement(Rng* rng, std::uint64_t n,
                                                    std::uint64_t k);

/// \brief Bounded Zipf(alpha) sampler over ranks {1..n}.
///
/// Used by the traffic substrate: the paper leans on the "Zipfian nature of
/// the traffic" [10] for flow sizes, which makes flow splitting bursty
/// (Section V-B.4). Precomputes the normalized CDF once; draws are a binary
/// search.
class ZipfSampler {
 public:
  /// Distribution over {1..n} with P[r] proportional to r^-alpha.
  ZipfSampler(std::uint64_t n, double alpha);

  /// Draws a rank in [1, n].
  std::uint64_t Sample(Rng* rng) const;

  /// Probability of rank r (1-based).
  double Pmf(std::uint64_t r) const;

 private:
  std::vector<double> cdf_;
};

}  // namespace dcs

#endif  // DCS_COMMON_DISTRIBUTIONS_H_
