#include "common/hash.h"

#include <cstring>

namespace dcs {

std::uint64_t Mix64(std::uint64_t x) {
  x ^= x >> 33;
  x *= 0xFF51AFD7ED558CCDULL;
  x ^= x >> 33;
  x *= 0xC4CEB9FE1A85EC53ULL;
  x ^= x >> 33;
  return x;
}

std::uint64_t Hash64(const void* data, std::size_t len, std::uint64_t seed) {
  constexpr std::uint64_t kMul = 0x9DDFEA08EB382D69ULL;
  const auto* bytes = static_cast<const unsigned char*>(data);
  std::uint64_t h = seed ^ (len * kMul);

  while (len >= 8) {
    std::uint64_t word;
    std::memcpy(&word, bytes, 8);
    h ^= Mix64(word);
    h *= kMul;
    bytes += 8;
    len -= 8;
  }
  if (len > 0) {
    std::uint64_t tail = 0;
    std::memcpy(&tail, bytes, len);
    h ^= Mix64(tail ^ (static_cast<std::uint64_t>(len) << 56));
    h *= kMul;
  }
  return Mix64(h);
}

}  // namespace dcs
