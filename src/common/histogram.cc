#include "common/histogram.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"

namespace dcs {

void Histogram::Add(std::int64_t value) {
  samples_.push_back(value);
  sorted_ = false;
}

void Histogram::EnsureSorted() const {
  if (!sorted_) {
    auto* self = const_cast<Histogram*>(this);
    std::sort(self->samples_.begin(), self->samples_.end());
    self->sorted_ = true;
  }
}

double Histogram::CdfAt(std::int64_t x) const {
  if (samples_.empty()) return 0.0;
  EnsureSorted();
  const auto it = std::upper_bound(samples_.begin(), samples_.end(), x);
  return static_cast<double>(it - samples_.begin()) /
         static_cast<double>(samples_.size());
}

std::int64_t Histogram::Quantile(double q) const {
  DCS_CHECK(!samples_.empty());
  DCS_CHECK(q > 0.0 && q <= 1.0);
  EnsureSorted();
  const auto rank = static_cast<std::size_t>(
      std::ceil(q * static_cast<double>(samples_.size()))) - 1;
  return samples_[std::min(rank, samples_.size() - 1)];
}

double Histogram::Mean() const {
  if (samples_.empty()) return 0.0;
  double sum = 0.0;
  for (std::int64_t v : samples_) sum += static_cast<double>(v);
  return sum / static_cast<double>(samples_.size());
}

std::int64_t Histogram::Min() const {
  DCS_CHECK(!samples_.empty());
  EnsureSorted();
  return samples_.front();
}

std::int64_t Histogram::Max() const {
  DCS_CHECK(!samples_.empty());
  EnsureSorted();
  return samples_.back();
}

double Histogram::FractionAbove(std::int64_t x) const {
  return samples_.empty() ? 0.0 : 1.0 - CdfAt(x);
}

}  // namespace dcs
