#ifndef DCS_COMMON_SYNC_H_
#define DCS_COMMON_SYNC_H_

// Concurrency contract layer (docs/STATIC_ANALYSIS.md §5).
//
// Every piece of cross-thread state in this tree names its lock: the data
// member carries DCS_GUARDED_BY(mu_), the functions that expect the lock
// carry DCS_REQUIRES(mu_), and clang's Thread Safety Analysis
// (-Wthread-safety, a dedicated CI leg) rejects any access that does not
// hold the named mutex — at compile time, on every path, independent of
// what schedules TSan happens to observe. On compilers without the
// annotation support (gcc) every macro is a no-op and the wrappers behave
// exactly like the std primitives they wrap.
//
// The wrappers add one runtime teeth to the static contract: in debug
// builds (!NDEBUG, mirroring DCS_DCHECK) dcs::Mutex feeds a process-wide
// lock-order validator — a per-thread held-lock stack recording first-seen
// acquisition-order edges into a global graph with cycle detection — so the
// first lock-order inversion anywhere in a test run aborts immediately with
// both conflicting chains printed, instead of deadlocking once in a
// thousand schedules. Under NDEBUG the validator compiles out of the
// lock/unlock paths entirely.
//
// This header (with sync.cc) is the only sanctioned home of the raw std
// synchronization primitives; the dcs_lint `raw-sync-primitive` and
// `manual-lock-unlock` rules keep them from reappearing elsewhere.

#include <condition_variable>  // dcs-lint: allow(raw-sync-primitive)
#include <cstddef>
#include <mutex>  // dcs-lint: allow(raw-sync-primitive)

// ---------------------------------------------------------------------------
// Thread Safety Analysis attribute macros.
//
// Portable spellings of clang's capability attributes
// (https://clang.llvm.org/docs/ThreadSafetyAnalysis.html). gcc defines none
// of these attributes, so DCS_THREAD_ANNOTATION expands to nothing there and
// annotated code stays warning-free on every compiler.
// ---------------------------------------------------------------------------

#if defined(__clang__) && defined(__has_attribute)
#if __has_attribute(capability)
#define DCS_THREAD_ANNOTATION(x) __attribute__((x))
#endif
#endif
#ifndef DCS_THREAD_ANNOTATION
#define DCS_THREAD_ANNOTATION(x)  // no-op outside clang
#endif

/// Marks a type as a lockable capability ("mutex" names the capability kind
/// in diagnostics).
#define DCS_CAPABILITY(x) DCS_THREAD_ANNOTATION(capability(x))

/// Marks an RAII type whose constructor acquires and destructor releases a
/// capability.
#define DCS_SCOPED_CAPABILITY DCS_THREAD_ANNOTATION(scoped_lockable)

/// Data member is protected by the given mutex: every read/write must hold it.
#define DCS_GUARDED_BY(x) DCS_THREAD_ANNOTATION(guarded_by(x))

/// Pointer member whose *pointee* is protected by the given mutex (the
/// pointer itself may be read freely).
#define DCS_PT_GUARDED_BY(x) DCS_THREAD_ANNOTATION(pt_guarded_by(x))

/// Function requires the listed capabilities held on entry (and does not
/// release them).
#define DCS_REQUIRES(...) \
  DCS_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))

/// Function acquires the listed capabilities (held on return).
#define DCS_ACQUIRE(...) \
  DCS_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))

/// Function releases the listed capabilities.
#define DCS_RELEASE(...) \
  DCS_THREAD_ANNOTATION(release_capability(__VA_ARGS__))

/// Function acquires the capability when it returns the given value.
#define DCS_TRY_ACQUIRE(...) \
  DCS_THREAD_ANNOTATION(try_acquire_capability(__VA_ARGS__))

/// Caller must NOT hold the listed capabilities (deadlock guard for
/// functions that acquire them internally).
#define DCS_EXCLUDES(...) DCS_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))

/// Declares that the annotated function returns a reference to the given
/// capability (for accessors exposing a member mutex).
#define DCS_RETURN_CAPABILITY(x) DCS_THREAD_ANNOTATION(lock_returned(x))

/// Escape hatch: disables the analysis for one function. Every use outside
/// the allowlist in docs/STATIC_ANALYSIS.md §5 fails CI — reach for a
/// narrower annotation first.
#define DCS_NO_THREAD_SAFETY_ANALYSIS \
  DCS_THREAD_ANNOTATION(no_thread_safety_analysis)

namespace dcs {

class Mutex;

namespace sync_internal {

// Debug lock-order validator hooks (always compiled in sync.cc so tests can
// drive them in any build type; the Mutex fast path only calls them when
// NDEBUG is not defined).
//
// The model: a thread about to *block* on `mu` while holding H1..Hk records
// the first-seen edges Hi -> mu into a global directed graph. An edge that
// would close a cycle is a lock-order inversion — some other code path
// acquires the same mutexes in the opposite order, so the two paths can
// deadlock each other — and the process aborts via DCS_CHECK with both
// chains printed. TryLock acquisitions cannot block, so they join the held
// stack without contributing edges.
void RegisterMutex(const Mutex* mu, const char* name);
void UnregisterMutex(const Mutex* mu);
// Cycle check + edge recording + held-stack push, called before blocking.
void ValidateAcquire(const Mutex* mu);
// Held-stack push without edge recording (successful TryLock).
void RecordTryAcquire(const Mutex* mu);
// Held-stack removal (any release order; RAII makes it LIFO in practice).
void RecordRelease(const Mutex* mu);
// Number of locks the calling thread currently holds (test hook).
std::size_t HeldDepth();
// Drops every edge in the global order graph (test isolation only — the
// production graph is append-only for the process lifetime).
void ResetOrderGraphForTest();

}  // namespace sync_internal

/// \brief Annotated exclusive mutex (wraps std::mutex).
///
/// Identical locking semantics to std::mutex; adds the TSA capability so
/// DCS_GUARDED_BY members can name it, and the debug lock-order validator.
/// Use through MutexLock — direct Lock/Unlock calls are flagged by the
/// dcs_lint `manual-lock-unlock` rule outside this header.
class DCS_CAPABILITY("mutex") Mutex {
 public:
  /// `name` (a string literal or other storage outliving the mutex) labels
  /// the mutex in lock-order diagnostics; nullptr prints as its address.
  explicit Mutex(const char* name = nullptr) : name_(name) {
#ifndef NDEBUG
    sync_internal::RegisterMutex(this, name_);
#endif
  }
  ~Mutex() {
#ifndef NDEBUG
    sync_internal::UnregisterMutex(this);
#endif
  }

  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void Lock() DCS_ACQUIRE() {
#ifndef NDEBUG
    sync_internal::ValidateAcquire(this);
#endif
    mu_.lock();  // dcs-lint: allow(manual-lock-unlock)
  }

  void Unlock() DCS_RELEASE() {
#ifndef NDEBUG
    sync_internal::RecordRelease(this);
#endif
    mu_.unlock();  // dcs-lint: allow(manual-lock-unlock)
  }

  /// Non-blocking acquire; true on success. Cannot deadlock, so the debug
  /// validator records the hold without constraining the order graph.
  bool TryLock() DCS_TRY_ACQUIRE(true) {
    const bool ok = mu_.try_lock();  // dcs-lint: allow(manual-lock-unlock)
#ifndef NDEBUG
    if (ok) sync_internal::RecordTryAcquire(this);
#endif
    return ok;
  }

  const char* name() const { return name_; }

 private:
  friend class CondVar;
  std::mutex mu_;
  const char* name_;
};

/// \brief RAII lock: acquires in the constructor, releases in the
/// destructor. The only way annotated code takes a dcs::Mutex.
class DCS_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex* mu) DCS_ACQUIRE(mu) : mu_(mu) { mu_->Lock(); }
  ~MutexLock() DCS_RELEASE() { mu_->Unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  friend class CondVar;
  Mutex* mu_;
};

/// \brief Condition variable paired with dcs::Mutex.
///
/// Wraps std::condition_variable on the Mutex's underlying std::mutex, so
/// wait/notify semantics (including spurious wakeups) are exactly the std
/// ones. Wait takes the MutexLock guarding the condition's state; TSA sees
/// the capability as held across the wait, which is sound — it is held at
/// every point the caller can observe. Callers re-test their predicate in a
/// while loop, which also keeps every guarded access visibly inside the
/// MutexLock scope for the analysis:
///
///   MutexLock lock(&mu_);
///   while (queue_.empty() && !shutting_down_) cv_.Wait(&lock);
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  /// Atomically releases `lock`'s mutex and blocks; re-acquires before
  /// returning. Subject to spurious wakeups, exactly like std::condition
  /// variables — always wait in a predicate loop.
  void Wait(MutexLock* lock);

  void Signal() { cv_.notify_one(); }
  void SignalAll() { cv_.notify_all(); }

 private:
  std::condition_variable cv_;
};

}  // namespace dcs

#endif  // DCS_COMMON_SYNC_H_
