#include "common/rng.h"

namespace dcs {
namespace {

std::uint64_t SplitMix64(std::uint64_t* state) {
  std::uint64_t z = (*state += 0x9E3779B97F4A7C15ULL);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

std::uint64_t RotL(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

Rng::Rng(std::uint64_t seed) {
  std::uint64_t state = seed;
  for (auto& lane : s_) lane = SplitMix64(&state);
}

std::uint64_t Rng::Next() {
  const std::uint64_t result = RotL(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = RotL(s_[3], 45);
  return result;
}

std::uint64_t Rng::UniformInt(std::uint64_t bound) {
  // Lemire 2019: multiply-shift with exact rejection of the biased region.
  std::uint64_t x = Next();
  __uint128_t m = static_cast<__uint128_t>(x) * bound;
  auto low = static_cast<std::uint64_t>(m);
  if (low < bound) {
    const std::uint64_t threshold = -bound % bound;
    while (low < threshold) {
      x = Next();
      m = static_cast<__uint128_t>(x) * bound;
      low = static_cast<std::uint64_t>(m);
    }
  }
  return static_cast<std::uint64_t>(m >> 64);
}

double Rng::UniformDouble() {
  return static_cast<double>(Next() >> 11) * 0x1.0p-53;
}

bool Rng::Bernoulli(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return UniformDouble() < p;
}

Rng Rng::Fork() { return Rng(Next() ^ 0xD1B54A32D192ED03ULL); }

}  // namespace dcs
