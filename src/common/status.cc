#include "common/status.h"

#include <system_error>

namespace dcs {
namespace {

const char* CodeName(Status::Code code) {
  switch (code) {
    case Status::Code::kOk:
      return "OK";
    case Status::Code::kInvalidArgument:
      return "InvalidArgument";
    case Status::Code::kNotFound:
      return "NotFound";
    case Status::Code::kCorruption:
      return "Corruption";
    case Status::Code::kIoError:
      return "IoError";
    case Status::Code::kFailedPrecondition:
      return "FailedPrecondition";
    case Status::Code::kOutOfRange:
      return "OutOfRange";
    case Status::Code::kInternal:
      return "Internal";
  }
  return "Unknown";
}

}  // namespace

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string result = CodeName(code_);
  result += ": ";
  result += message_;
  return result;
}

std::string ErrnoString(int errno_value) {
  return std::system_category().message(errno_value);
}

}  // namespace dcs
