#include "common/config.h"

#include <cstdlib>
#include <cstring>

namespace dcs {

BenchScale BenchScaleFromEnv() {
  // getenv is safe here: nothing in this process calls setenv/putenv, so the
  // environment block is immutable after main() starts (see .clang-tidy).
  const char* env = std::getenv("DCS_SCALE");  // NOLINT(concurrency-mt-unsafe)
  if (env != nullptr && std::strcmp(env, "paper") == 0) {
    return BenchScale::kPaper;
  }
  return BenchScale::kSmall;
}

std::int64_t EnvInt64(const char* name, std::int64_t fallback) {
  // NOLINTNEXTLINE(concurrency-mt-unsafe): environment is never mutated.
  const char* env = std::getenv(name);
  if (env == nullptr || *env == '\0') return fallback;
  char* end = nullptr;
  const long long value = std::strtoll(env, &end, 10);
  if (end == env || *end != '\0') return fallback;
  return value;
}

double EnvDouble(const char* name, double fallback) {
  // NOLINTNEXTLINE(concurrency-mt-unsafe): environment is never mutated.
  const char* env = std::getenv(name);
  if (env == nullptr || *env == '\0') return fallback;
  char* end = nullptr;
  const double value = std::strtod(env, &end);
  if (end == env || *end != '\0') return fallback;
  return value;
}

std::string BenchScaleName(BenchScale scale) {
  return scale == BenchScale::kPaper ? "paper" : "small";
}

}  // namespace dcs
