#include "common/bit_vector.h"

#include <algorithm>
#include <bit>

namespace dcs {

void BitVector::Reset() {
  std::fill(words_.begin(), words_.end(), 0ULL);
}

std::size_t BitVector::CountOnes() const {
  std::size_t count = 0;
  for (std::uint64_t w : words_) {
    count += static_cast<std::size_t>(std::popcount(w));
  }
  return count;
}

std::size_t BitVector::CommonOnes(const BitVector& other) const {
  DCS_CHECK(num_bits_ == other.num_bits_);
  std::size_t count = 0;
  const std::uint64_t* a = words_.data();
  const std::uint64_t* b = other.words_.data();
  for (std::size_t i = 0; i < words_.size(); ++i) {
    count += static_cast<std::size_t>(std::popcount(a[i] & b[i]));
  }
  return count;
}

void BitVector::InPlaceAnd(const BitVector& other) {
  DCS_CHECK(num_bits_ == other.num_bits_);
  for (std::size_t i = 0; i < words_.size(); ++i) {
    words_[i] &= other.words_[i];
  }
}

void BitVector::InPlaceOr(const BitVector& other) {
  DCS_CHECK(num_bits_ == other.num_bits_);
  for (std::size_t i = 0; i < words_.size(); ++i) {
    words_[i] |= other.words_[i];
  }
}

double BitVector::FillRatio() const {
  if (num_bits_ == 0) return 0.0;
  return static_cast<double>(CountOnes()) / static_cast<double>(num_bits_);
}

void BitVector::AppendSetBits(std::vector<std::size_t>* out) const {
  for (std::size_t w = 0; w < words_.size(); ++w) {
    std::uint64_t word = words_[w];
    while (word != 0) {
      const int bit = std::countr_zero(word);
      out->push_back((w << 6) + static_cast<std::size_t>(bit));
      word &= word - 1;
    }
  }
}

}  // namespace dcs
