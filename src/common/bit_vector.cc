#include "common/bit_vector.h"

#include <algorithm>
#include <bit>

#include "common/bit_kernels.h"

namespace dcs {

void BitVector::Reset() {
  std::fill(words_.begin(), words_.end(), 0ULL);
}

std::size_t BitVector::CountOnes() const {
  return ActiveBitKernels().count_ones(words_.data(), words_.size());
}

std::size_t BitVector::CommonOnes(const BitVector& other) const {
  DCS_CHECK(num_bits_ == other.num_bits_);
  return ActiveBitKernels().and_count(words_.data(), other.words_.data(),
                                      words_.size());
}

void BitVector::CommonOnesBatch(std::span<const BitVector> others,
                                std::span<std::uint32_t> out) const {
  DCS_CHECK(out.size() >= others.size());
  // The pointer gather is O(rows) against O(rows * words) of counting;
  // a stack buffer covers the common fan-outs without allocating.
  constexpr std::size_t kStackRows = 256;
  const std::uint64_t* stack_rows[kStackRows];
  std::vector<const std::uint64_t*> heap_rows;
  const std::uint64_t** rows = stack_rows;
  if (others.size() > kStackRows) {
    heap_rows.resize(others.size());
    rows = heap_rows.data();
  }
  for (std::size_t r = 0; r < others.size(); ++r) {
    DCS_CHECK(others[r].num_bits_ == num_bits_);
    rows[r] = others[r].words_.data();
  }
  ActiveBitKernels().and_count_batch(words_.data(), rows, others.size(),
                                     words_.size(), out.data());
}

void BitVector::InPlaceAnd(const BitVector& other) {
  DCS_CHECK(num_bits_ == other.num_bits_);
  ActiveBitKernels().and_inplace(words_.data(), other.words_.data(),
                                 words_.size());
}

void BitVector::InPlaceOr(const BitVector& other) {
  DCS_CHECK(num_bits_ == other.num_bits_);
  ActiveBitKernels().or_inplace(words_.data(), other.words_.data(),
                                words_.size());
}

void BitVector::AssignAnd(const BitVector& a, const BitVector& b) {
  DCS_CHECK(a.num_bits_ == b.num_bits_);
  num_bits_ = a.num_bits_;
  words_.resize(a.words_.size());
  const std::uint64_t* rows[2] = {a.words_.data(), b.words_.data()};
  ActiveBitKernels().and_fold(rows, 2, words_.size(), words_.data());
}

double BitVector::FillRatio() const {
  if (num_bits_ == 0) return 0.0;
  return static_cast<double>(CountOnes()) / static_cast<double>(num_bits_);
}

void BitVector::AppendSetBits(std::vector<std::size_t>* out) const {
  // One counting pass up front beats the repeated reallocation the growth
  // loop used to trigger on dense 4 Mbit rows.
  out->reserve(out->size() + CountOnes());
  for (std::size_t w = 0; w < words_.size(); ++w) {
    std::uint64_t word = words_[w];
    while (word != 0) {
      const int bit = std::countr_zero(word);
      out->push_back((w << 6) + static_cast<std::size_t>(bit));
      word &= word - 1;
    }
  }
}

}  // namespace dcs
