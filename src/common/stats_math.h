#ifndef DCS_COMMON_STATS_MATH_H_
#define DCS_COMMON_STATS_MATH_H_

#include <cstdint>

namespace dcs {

/// Natural log of n choose k; -inf when k < 0 or k > n.
double LogChoose(double n, double k);

/// log(exp(a) + exp(b)) without overflow.
double LogSumExp(double a, double b);

/// Natural log of the Binomial(n, p) probability mass at k.
/// Returns -inf outside the support.
double LogBinomPmf(std::int64_t k, std::int64_t n, double p);

/// P[X <= x] for X ~ Binomial(n, p). This is the paper's `binocdf(x, n, p)`.
/// Exact summation from whichever tail is shorter; stable for n up to ~1e9
/// when the short tail has O(1e6) terms or the result saturates at 0/1.
double BinomCdf(std::int64_t x, std::int64_t n, double p);

/// log P[X <= x]; usable when the lower tail underflows a double.
double LogBinomCdf(std::int64_t x, std::int64_t n, double p);

/// log P[X > x]; usable when the upper tail underflows a double.
double LogBinomSf(std::int64_t x, std::int64_t n, double p);

/// Smallest x such that BinomCdf(x, n, p) >= q, for q in (0,1).
std::int64_t BinomQuantile(double q, std::int64_t n, double p);

/// Natural log of the hypergeometric pmf: drawing j marked items without
/// replacement from a population of N of which i are marked, probability that
/// k of the drawn are marked. This is the paper's X(i, j) with N = 1024.
double LogHypergeomPmf(std::int64_t k, std::int64_t big_n, std::int64_t i,
                       std::int64_t j);

/// P[X <= x] for the hypergeometric above.
double HypergeomCdf(std::int64_t x, std::int64_t big_n, std::int64_t i,
                    std::int64_t j);

/// log P[X > x] for the hypergeometric above.
double LogHypergeomSf(std::int64_t x, std::int64_t big_n, std::int64_t i,
                      std::int64_t j);

/// Smallest threshold lambda such that P[X > lambda] <= p_star, i.e. the
/// paper's per-row-pair threshold lambda_{i,j} (Section IV-B).
std::int64_t HypergeomUpperThreshold(double p_star, std::int64_t big_n,
                                     std::int64_t i, std::int64_t j);

/// Standard normal CDF.
double NormalCdf(double z);

}  // namespace dcs

#endif  // DCS_COMMON_STATS_MATH_H_
