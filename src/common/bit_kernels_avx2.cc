// The single translation unit allowed target-specific intrinsics
// (tools/dcs_lint enforces this). On x86-64 it is compiled with -mavx2 and
// provides the AVX2 kernel table behind a runtime __builtin_cpu_supports
// check — nothing here executes on hosts without AVX2. On AArch64 it
// provides the NEON table (NEON is architecturally mandatory there, so no
// runtime check is needed). Everywhere else it compiles to a stub and the
// dispatcher falls back to the portable scalar table.
//
// Correctness contract: every kernel here must return bit-identical results
// to the scalar reference in bit_kernels.cc for every input shape. The
// differential suite in tests/test_bit_kernels.cc is the gate; run it with
// and without DCS_FORCE_SCALAR=1 when touching this file.

#include "common/bit_kernels.h"

#include <algorithm>
#include <bit>

#if defined(__x86_64__) || defined(_M_X64)

#include <immintrin.h>

namespace dcs {
namespace {

// Word-range tile for the one-against-many batch; 2048 words = 16 KiB of
// left operand held hot while rows stream past (mirrors the scalar batch).
constexpr std::size_t kTileWords = 2048;

// Per-byte popcount of a 256-bit lane via the classic nibble lookup
// (Mula): two shuffles and an add replace 32 scalar popcounts.
inline __m256i PopcountBytes(__m256i v) {
  const __m256i lookup =
      _mm256_setr_epi8(0, 1, 1, 2, 1, 2, 2, 3, 1, 2, 2, 3, 2, 3, 3, 4,  //
                       0, 1, 1, 2, 1, 2, 2, 3, 1, 2, 2, 3, 2, 3, 3, 4);
  const __m256i low_mask = _mm256_set1_epi8(0x0f);
  const __m256i lo = _mm256_and_si256(v, low_mask);
  const __m256i hi =
      _mm256_and_si256(_mm256_srli_epi16(v, 4), low_mask);
  return _mm256_add_epi8(_mm256_shuffle_epi8(lookup, lo),
                         _mm256_shuffle_epi8(lookup, hi));
}

inline std::uint64_t HorizontalSum64(__m256i v) {
  const __m128i lo = _mm256_castsi256_si128(v);
  const __m128i hi = _mm256_extracti128_si256(v, 1);
  const __m128i sum = _mm_add_epi64(lo, hi);
  return static_cast<std::uint64_t>(_mm_cvtsi128_si64(sum)) +
         static_cast<std::uint64_t>(_mm_extract_epi64(sum, 1));
}

// Core of both count kernels: popcount of (a[w] & b[w]) over the span, with
// b == nullptr meaning "no mask" (plain popcount). Byte counters absorb up
// to 31 vectors (31 * 8 = 248 < 256) before spilling into the 64-bit
// accumulator via SAD.
template <bool kMasked>
inline std::size_t CountImpl(const std::uint64_t* a, const std::uint64_t* b,
                             std::size_t num_words) {
  __m256i acc = _mm256_setzero_si256();
  std::size_t w = 0;
  while (num_words - w >= 4) {
    __m256i bytes = _mm256_setzero_si256();
    const std::size_t vectors_left = (num_words - w) / 4;
    const std::size_t block = std::min<std::size_t>(vectors_left, 31);
    for (std::size_t i = 0; i < block; ++i, w += 4) {
      __m256i v = _mm256_loadu_si256(
          reinterpret_cast<const __m256i*>(a + w));
      if constexpr (kMasked) {
        const __m256i m = _mm256_loadu_si256(
            reinterpret_cast<const __m256i*>(b + w));
        v = _mm256_and_si256(v, m);
      }
      bytes = _mm256_add_epi8(bytes, PopcountBytes(v));
    }
    acc = _mm256_add_epi64(acc,
                           _mm256_sad_epu8(bytes, _mm256_setzero_si256()));
  }
  std::size_t total = HorizontalSum64(acc);
  for (; w < num_words; ++w) {
    total += static_cast<std::size_t>(
        std::popcount(kMasked ? (a[w] & b[w]) : a[w]));
  }
  return total;
}

std::size_t Avx2CountOnes(const std::uint64_t* words, std::size_t num_words) {
  return CountImpl<false>(words, nullptr, num_words);
}

std::size_t Avx2AndCount(const std::uint64_t* a, const std::uint64_t* b,
                         std::size_t num_words) {
  return CountImpl<true>(a, b, num_words);
}

void Avx2AndInplace(std::uint64_t* dst, const std::uint64_t* src,
                    std::size_t num_words) {
  std::size_t w = 0;
  for (; w + 4 <= num_words; w += 4) {
    const __m256i d =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(dst + w));
    const __m256i s =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(src + w));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(dst + w),
                        _mm256_and_si256(d, s));
  }
  for (; w < num_words; ++w) dst[w] &= src[w];
}

void Avx2OrInplace(std::uint64_t* dst, const std::uint64_t* src,
                   std::size_t num_words) {
  std::size_t w = 0;
  for (; w + 4 <= num_words; w += 4) {
    const __m256i d =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(dst + w));
    const __m256i s =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(src + w));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(dst + w),
                        _mm256_or_si256(d, s));
  }
  for (; w < num_words; ++w) dst[w] |= src[w];
}

void Avx2AndFold(const std::uint64_t* const* rows, std::size_t num_rows,
                 std::size_t num_words, std::uint64_t* out) {
  if (num_rows == 0) {
    std::fill(out, out + num_words, ~0ULL);
    return;
  }
  std::copy(rows[0], rows[0] + num_words, out);
  for (std::size_t r = 1; r < num_rows; ++r) Avx2AndInplace(out, rows[r], num_words);
}

void Avx2OrFold(const std::uint64_t* const* rows, std::size_t num_rows,
                std::size_t num_words, std::uint64_t* out) {
  if (num_rows == 0) {
    std::fill(out, out + num_words, 0ULL);
    return;
  }
  std::copy(rows[0], rows[0] + num_words, out);
  for (std::size_t r = 1; r < num_rows; ++r) Avx2OrInplace(out, rows[r], num_words);
}

void Avx2AndCountBatch(const std::uint64_t* left,
                       const std::uint64_t* const* rows,
                       std::size_t num_rows, std::size_t num_words,
                       std::uint32_t* out) {
  // The detectors call this on short vectors too (an aligned-matrix column
  // is only rows/64 words); below a vector's worth of data the scalar loop
  // wins on latency and the batch still amortizes the dispatch.
  if (num_words < 8) {
    for (std::size_t r = 0; r < num_rows; ++r) {
      std::size_t count = 0;
      for (std::size_t w = 0; w < num_words; ++w) {
        count += static_cast<std::size_t>(std::popcount(left[w] & rows[r][w]));
      }
      out[r] = static_cast<std::uint32_t>(count);
    }
    return;
  }
  for (std::size_t r = 0; r < num_rows; ++r) out[r] = 0;
  for (std::size_t tile = 0; tile < num_words; tile += kTileWords) {
    const std::size_t len = std::min(kTileWords, num_words - tile);
    for (std::size_t r = 0; r < num_rows; ++r) {
      out[r] += static_cast<std::uint32_t>(
          Avx2AndCount(left + tile, rows[r] + tile, len));
    }
  }
}

constexpr BitKernelOps kAvx2Ops = {
    "avx2",        Avx2CountOnes, Avx2AndCount, Avx2AndInplace,
    Avx2OrInplace, Avx2AndFold,   Avx2OrFold,   Avx2AndCountBatch,
};

}  // namespace

namespace internal {

const BitKernelOps* SimdBitKernels() {
  return __builtin_cpu_supports("avx2") ? &kAvx2Ops : nullptr;
}

}  // namespace internal
}  // namespace dcs

#elif defined(__aarch64__)

#include <arm_neon.h>

namespace dcs {
namespace {

constexpr std::size_t kTileWords = 2048;

std::size_t NeonCountOnes(const std::uint64_t* words, std::size_t num_words) {
  uint64x2_t acc = vdupq_n_u64(0);
  std::size_t w = 0;
  for (; w + 2 <= num_words; w += 2) {
    const uint8x16_t v = vreinterpretq_u8_u64(vld1q_u64(words + w));
    acc = vaddq_u64(acc, vpaddlq_u32(vpaddlq_u16(vpaddlq_u8(vcntq_u8(v)))));
  }
  std::size_t total = static_cast<std::size_t>(vgetq_lane_u64(acc, 0)) +
                      static_cast<std::size_t>(vgetq_lane_u64(acc, 1));
  for (; w < num_words; ++w) {
    total += static_cast<std::size_t>(std::popcount(words[w]));
  }
  return total;
}

std::size_t NeonAndCount(const std::uint64_t* a, const std::uint64_t* b,
                         std::size_t num_words) {
  uint64x2_t acc = vdupq_n_u64(0);
  std::size_t w = 0;
  for (; w + 2 <= num_words; w += 2) {
    const uint8x16_t v = vreinterpretq_u8_u64(
        vandq_u64(vld1q_u64(a + w), vld1q_u64(b + w)));
    acc = vaddq_u64(acc, vpaddlq_u32(vpaddlq_u16(vpaddlq_u8(vcntq_u8(v)))));
  }
  std::size_t total = static_cast<std::size_t>(vgetq_lane_u64(acc, 0)) +
                      static_cast<std::size_t>(vgetq_lane_u64(acc, 1));
  for (; w < num_words; ++w) {
    total += static_cast<std::size_t>(std::popcount(a[w] & b[w]));
  }
  return total;
}

void NeonAndInplace(std::uint64_t* dst, const std::uint64_t* src,
                    std::size_t num_words) {
  std::size_t w = 0;
  for (; w + 2 <= num_words; w += 2) {
    vst1q_u64(dst + w, vandq_u64(vld1q_u64(dst + w), vld1q_u64(src + w)));
  }
  for (; w < num_words; ++w) dst[w] &= src[w];
}

void NeonOrInplace(std::uint64_t* dst, const std::uint64_t* src,
                   std::size_t num_words) {
  std::size_t w = 0;
  for (; w + 2 <= num_words; w += 2) {
    vst1q_u64(dst + w, vorrq_u64(vld1q_u64(dst + w), vld1q_u64(src + w)));
  }
  for (; w < num_words; ++w) dst[w] |= src[w];
}

void NeonAndFold(const std::uint64_t* const* rows, std::size_t num_rows,
                 std::size_t num_words, std::uint64_t* out) {
  if (num_rows == 0) {
    std::fill(out, out + num_words, ~0ULL);
    return;
  }
  std::copy(rows[0], rows[0] + num_words, out);
  for (std::size_t r = 1; r < num_rows; ++r) NeonAndInplace(out, rows[r], num_words);
}

void NeonOrFold(const std::uint64_t* const* rows, std::size_t num_rows,
                std::size_t num_words, std::uint64_t* out) {
  if (num_rows == 0) {
    std::fill(out, out + num_words, 0ULL);
    return;
  }
  std::copy(rows[0], rows[0] + num_words, out);
  for (std::size_t r = 1; r < num_rows; ++r) NeonOrInplace(out, rows[r], num_words);
}

void NeonAndCountBatch(const std::uint64_t* left,
                       const std::uint64_t* const* rows,
                       std::size_t num_rows, std::size_t num_words,
                       std::uint32_t* out) {
  for (std::size_t r = 0; r < num_rows; ++r) out[r] = 0;
  for (std::size_t tile = 0; tile < num_words; tile += kTileWords) {
    const std::size_t len = std::min(kTileWords, num_words - tile);
    for (std::size_t r = 0; r < num_rows; ++r) {
      out[r] += static_cast<std::uint32_t>(
          NeonAndCount(left + tile, rows[r] + tile, len));
    }
  }
}

constexpr BitKernelOps kNeonOps = {
    "neon",        NeonCountOnes, NeonAndCount, NeonAndInplace,
    NeonOrInplace, NeonAndFold,   NeonOrFold,   NeonAndCountBatch,
};

}  // namespace

namespace internal {

const BitKernelOps* SimdBitKernels() { return &kNeonOps; }

}  // namespace internal
}  // namespace dcs

#else  // No SIMD table for this target; dispatch stays on scalar.

namespace dcs {
namespace internal {

const BitKernelOps* SimdBitKernels() { return nullptr; }

}  // namespace internal
}  // namespace dcs

#endif
