#ifndef DCS_COMMON_RNG_H_
#define DCS_COMMON_RNG_H_

#include <cstdint>

namespace dcs {

/// \brief Fast, reproducible pseudo-random generator (xoshiro256**).
///
/// Satisfies the UniformRandomBitGenerator concept so it interoperates with
/// <random>, but the library's own distributions (see distributions.h) are
/// preferred because libstdc++ distributions are not reproducible across
/// platforms.
class Rng {
 public:
  using result_type = std::uint64_t;

  /// Seeds the four 64-bit lanes from `seed` via SplitMix64, so nearby seeds
  /// yield uncorrelated streams.
  explicit Rng(std::uint64_t seed = 0x9E3779B97F4A7C15ULL);

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~0ULL; }

  /// Next 64 uniform random bits.
  std::uint64_t Next();

  /// Alias for Next() to satisfy UniformRandomBitGenerator.
  result_type operator()() { return Next(); }

  /// Uniform integer in [0, bound). Requires bound > 0. Uses Lemire's
  /// nearly-divisionless method; the modulo bias is rejected exactly.
  std::uint64_t UniformInt(std::uint64_t bound);

  /// Uniform double in [0, 1) with 53 random bits.
  double UniformDouble();

  /// Bernoulli trial with success probability p (clamped to [0,1]).
  bool Bernoulli(double p);

  /// Forks an independent generator; the child stream is a hash of this
  /// stream's next output, so forked streams do not overlap in practice.
  Rng Fork();

 private:
  std::uint64_t s_[4];
};

}  // namespace dcs

#endif  // DCS_COMMON_RNG_H_
