#include "common/bit_kernels.h"

#include <algorithm>
#include <bit>
#include <cstdlib>
#include <string_view>

namespace dcs {
namespace {

// ---------------------------------------------------------------------------
// Portable scalar kernels.
//
// The count loops run four independent accumulators so the adds do not form
// one serial dependency chain (the seed implementation's `count +=
// popcount(...)` retired one word per cycle at best). The compiler is free
// to vectorize these further; correctness never depends on it.
// ---------------------------------------------------------------------------

std::size_t ScalarCountOnes(const std::uint64_t* words,
                            std::size_t num_words) {
  std::size_t c0 = 0, c1 = 0, c2 = 0, c3 = 0;
  std::size_t w = 0;
  for (; w + 4 <= num_words; w += 4) {
    c0 += static_cast<std::size_t>(std::popcount(words[w]));
    c1 += static_cast<std::size_t>(std::popcount(words[w + 1]));
    c2 += static_cast<std::size_t>(std::popcount(words[w + 2]));
    c3 += static_cast<std::size_t>(std::popcount(words[w + 3]));
  }
  for (; w < num_words; ++w) {
    c0 += static_cast<std::size_t>(std::popcount(words[w]));
  }
  return c0 + c1 + c2 + c3;
}

std::size_t ScalarAndCount(const std::uint64_t* a, const std::uint64_t* b,
                           std::size_t num_words) {
  std::size_t c0 = 0, c1 = 0, c2 = 0, c3 = 0;
  std::size_t w = 0;
  for (; w + 4 <= num_words; w += 4) {
    c0 += static_cast<std::size_t>(std::popcount(a[w] & b[w]));
    c1 += static_cast<std::size_t>(std::popcount(a[w + 1] & b[w + 1]));
    c2 += static_cast<std::size_t>(std::popcount(a[w + 2] & b[w + 2]));
    c3 += static_cast<std::size_t>(std::popcount(a[w + 3] & b[w + 3]));
  }
  for (; w < num_words; ++w) {
    c0 += static_cast<std::size_t>(std::popcount(a[w] & b[w]));
  }
  return c0 + c1 + c2 + c3;
}

void ScalarAndInplace(std::uint64_t* dst, const std::uint64_t* src,
                      std::size_t num_words) {
  for (std::size_t w = 0; w < num_words; ++w) dst[w] &= src[w];
}

void ScalarOrInplace(std::uint64_t* dst, const std::uint64_t* src,
                     std::size_t num_words) {
  for (std::size_t w = 0; w < num_words; ++w) dst[w] |= src[w];
}

void ScalarAndFold(const std::uint64_t* const* rows, std::size_t num_rows,
                   std::size_t num_words, std::uint64_t* out) {
  if (num_rows == 0) {
    std::fill(out, out + num_words, ~0ULL);
    return;
  }
  std::copy(rows[0], rows[0] + num_words, out);
  for (std::size_t r = 1; r < num_rows; ++r) {
    for (std::size_t w = 0; w < num_words; ++w) out[w] &= rows[r][w];
  }
}

void ScalarOrFold(const std::uint64_t* const* rows, std::size_t num_rows,
                  std::size_t num_words, std::uint64_t* out) {
  if (num_rows == 0) {
    std::fill(out, out + num_words, 0ULL);
    return;
  }
  std::copy(rows[0], rows[0] + num_words, out);
  for (std::size_t r = 1; r < num_rows; ++r) {
    for (std::size_t w = 0; w < num_words; ++w) out[w] |= rows[r][w];
  }
}

void ScalarAndCountBatch(const std::uint64_t* left,
                         const std::uint64_t* const* rows,
                         std::size_t num_rows, std::size_t num_words,
                         std::uint32_t* out) {
  // Tile the word range so `left` stays cache-resident while many long rows
  // stream past it. 2048 words = 16 KiB, comfortably inside L1d alongside
  // the row tile being consumed.
  constexpr std::size_t kTileWords = 2048;
  for (std::size_t r = 0; r < num_rows; ++r) out[r] = 0;
  for (std::size_t tile = 0; tile < num_words; tile += kTileWords) {
    const std::size_t len = std::min(kTileWords, num_words - tile);
    for (std::size_t r = 0; r < num_rows; ++r) {
      out[r] += static_cast<std::uint32_t>(
          ScalarAndCount(left + tile, rows[r] + tile, len));
    }
  }
}

constexpr BitKernelOps kScalarOps = {
    "scalar",        ScalarCountOnes, ScalarAndCount, ScalarAndInplace,
    ScalarOrInplace, ScalarAndFold,   ScalarOrFold,   ScalarAndCountBatch,
};

// ---------------------------------------------------------------------------
// Positional popcount (column weights).
// ---------------------------------------------------------------------------

// Full adder on 64 columns at once: {*h,*l} = a + b + c per bit lane.
inline void Csa(std::uint64_t* h, std::uint64_t* l, std::uint64_t a,
                std::uint64_t b, std::uint64_t c) {
  const std::uint64_t u = a ^ b;
  *h = (a & b) | (u & c);
  *l = u ^ c;
}

// counts[base + bit] += weight for every set bit of plane.
inline void AddPlane(std::uint64_t plane, std::uint32_t weight,
                     std::size_t base, std::uint32_t* counts) {
  while (plane != 0) {
    const int bit = std::countr_zero(plane);
    counts[base + static_cast<std::size_t>(bit)] += weight;
    plane &= plane - 1;
  }
}

}  // namespace

void AccumulateColumnCounts(const std::uint64_t* const* rows,
                            std::size_t num_rows, std::size_t word_begin,
                            std::size_t word_end, std::uint32_t* counts) {
  std::size_t r = 0;
  // Carry-save reduction: 15 rows compress to five planes of weights
  // 1/2/4/8/8, so a ~half-full word costs ~5 plane scans per block instead
  // of 15 (the seed walked every row's word bit by bit).
  for (; r + 15 <= num_rows; r += 15) {
    for (std::size_t w = word_begin; w < word_end; ++w) {
      const auto row = [&](std::size_t i) { return rows[r + i][w]; };
      std::uint64_t ones, twos, fours, twos_a, twos_b, fours_a, fours_b;
      std::uint64_t eights_a, eights_b;
      Csa(&twos_a, &ones, row(0), row(1), row(2));
      Csa(&twos_b, &ones, ones, row(3), row(4));
      Csa(&fours_a, &twos, twos_a, twos_b, 0);
      Csa(&twos_a, &ones, ones, row(5), row(6));
      Csa(&twos_b, &ones, ones, row(7), row(8));
      Csa(&fours_b, &twos, twos, twos_a, twos_b);
      Csa(&eights_a, &fours, fours_a, fours_b, 0);
      Csa(&twos_a, &ones, ones, row(9), row(10));
      Csa(&twos_b, &ones, ones, row(11), row(12));
      Csa(&fours_a, &twos, twos, twos_a, twos_b);
      Csa(&twos_a, &ones, ones, row(13), row(14));
      Csa(&fours_b, &twos, twos, twos_a, 0);
      Csa(&eights_b, &fours, fours, fours_a, fours_b);
      const std::size_t base = w << 6;
      AddPlane(ones, 1, base, counts);
      AddPlane(twos, 2, base, counts);
      AddPlane(fours, 4, base, counts);
      AddPlane(eights_a, 8, base, counts);
      AddPlane(eights_b, 8, base, counts);
    }
  }
  // Remainder rows: plain per-bit accumulation.
  for (; r < num_rows; ++r) {
    for (std::size_t w = word_begin; w < word_end; ++w) {
      AddPlane(rows[r][w], 1, w << 6, counts);
    }
  }
}

// ---------------------------------------------------------------------------
// Dispatch.
// ---------------------------------------------------------------------------

const BitKernelOps& ScalarBitKernels() { return kScalarOps; }

namespace internal {

#if !defined(DCS_WITH_SIMD_KERNELS)
// The SIMD translation unit was omitted from this build
// (DCS_SCALAR_KERNELS_ONLY=ON); there is no table to dispatch to.
const BitKernelOps* SimdBitKernels() { return nullptr; }
#endif

const BitKernelOps& SelectBitKernels(bool force_scalar) {
  if (force_scalar) return kScalarOps;
  if (const BitKernelOps* simd = SimdBitKernels()) return *simd;
  return kScalarOps;
}

}  // namespace internal

const BitKernelOps& ActiveBitKernels() {
  static const BitKernelOps* const table = [] {
    // NOLINTNEXTLINE(concurrency-mt-unsafe): environment is never mutated.
    const char* force = std::getenv("DCS_FORCE_SCALAR");
    const bool force_scalar =
        force != nullptr && *force != '\0' && std::string_view(force) != "0";
    return &internal::SelectBitKernels(force_scalar);
  }();
  return *table;
}

}  // namespace dcs
