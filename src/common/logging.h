#ifndef DCS_COMMON_LOGGING_H_
#define DCS_COMMON_LOGGING_H_

#include <cstdlib>
#include <iostream>
#include <sstream>

namespace dcs {

/// Severity levels for the minimal logger.
enum class LogLevel { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3 };

namespace internal_logging {

/// Returns the process-wide minimum severity that is actually printed.
LogLevel MinLogLevel();

/// Sets the process-wide minimum severity (also settable via DCS_LOG_LEVEL).
void SetMinLogLevel(LogLevel level);

/// One log statement; streams into itself and emits on destruction.
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();

  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  std::ostream& stream() { return stream_; }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

/// LogMessage that aborts the process in its destructor (for DCS_CHECK).
class FatalLogMessage {
 public:
  FatalLogMessage(const char* file, int line, const char* condition);
  [[noreturn]] ~FatalLogMessage();

  FatalLogMessage(const FatalLogMessage&) = delete;
  FatalLogMessage& operator=(const FatalLogMessage&) = delete;

  std::ostream& stream() { return stream_; }

 private:
  std::ostringstream stream_;
};

/// Swallows a fatal-message stream so DCS_CHECK is a single `void`
/// expression. operator& binds looser than operator<<, so every streamed
/// `<< extra` lands in the FatalLogMessage before it is voided.
class Voidify {
 public:
  void operator&(std::ostream&) {}
};

}  // namespace internal_logging

#define DCS_LOG(level)                                                  \
  ::dcs::internal_logging::LogMessage(::dcs::LogLevel::k##level,        \
                                      __FILE__, __LINE__)               \
      .stream()

/// Aborts with a message when `condition` is false. Used for programmer
/// errors (precondition violations), never for recoverable conditions.
/// Expands to a single expression, so it nests safely inside unbraced
/// if/else (no dangling-else) and supports message streaming:
///
///   DCS_CHECK(rows == cols) << "matrix must be square, got " << rows;
#define DCS_CHECK(condition)                                            \
  (condition)                                                           \
      ? (void)0                                                         \
      : ::dcs::internal_logging::Voidify() &                            \
            ::dcs::internal_logging::FatalLogMessage(__FILE__,          \
                                                     __LINE__,          \
                                                     #condition)        \
                .stream()

/// DCS_CHECK that compiles away in NDEBUG builds. The condition is never
/// evaluated when disabled but still typechecks, so DCHECK-only expressions
/// cannot rot. Use for per-element invariants on hot paths (shard bounds,
/// row indices) where an always-on check would show up in a profile.
#ifndef NDEBUG
#define DCS_DCHECK(condition) DCS_CHECK(condition)
#else
#define DCS_DCHECK(condition) DCS_CHECK(true || (condition))
#endif

/// Aborts when `expr` (a Status expression) is not OK, printing the status.
#define DCS_CHECK_OK(expr)                                   \
  do {                                                       \
    const ::dcs::Status _dcs_st = (expr);                    \
    DCS_CHECK(_dcs_st.ok()) << _dcs_st.ToString();           \
  } while (false)

/// DCS_CHECK_OK that compiles away in NDEBUG builds (expr not evaluated).
#ifndef NDEBUG
#define DCS_DCHECK_OK(expr) DCS_CHECK_OK(expr)
#else
#define DCS_DCHECK_OK(expr) \
  do {                      \
  } while (false)
#endif

}  // namespace dcs

#endif  // DCS_COMMON_LOGGING_H_
