#ifndef DCS_COMMON_LOGGING_H_
#define DCS_COMMON_LOGGING_H_

#include <cstdlib>
#include <iostream>
#include <sstream>

namespace dcs {

/// Severity levels for the minimal logger.
enum class LogLevel { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3 };

namespace internal_logging {

/// Returns the process-wide minimum severity that is actually printed.
LogLevel MinLogLevel();

/// Sets the process-wide minimum severity (also settable via DCS_LOG_LEVEL).
void SetMinLogLevel(LogLevel level);

/// One log statement; streams into itself and emits on destruction.
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();

  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  std::ostream& stream() { return stream_; }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

/// LogMessage that aborts the process in its destructor (for DCS_CHECK).
class FatalLogMessage {
 public:
  FatalLogMessage(const char* file, int line, const char* condition);
  [[noreturn]] ~FatalLogMessage();

  FatalLogMessage(const FatalLogMessage&) = delete;
  FatalLogMessage& operator=(const FatalLogMessage&) = delete;

  std::ostream& stream() { return stream_; }

 private:
  std::ostringstream stream_;
};

}  // namespace internal_logging

#define DCS_LOG(level)                                                  \
  ::dcs::internal_logging::LogMessage(::dcs::LogLevel::k##level,        \
                                      __FILE__, __LINE__)               \
      .stream()

/// Aborts with a message when `condition` is false. Used for programmer
/// errors (precondition violations), never for recoverable conditions.
#define DCS_CHECK(condition)                                            \
  if (condition) {                                                      \
  } else                                                                \
    ::dcs::internal_logging::FatalLogMessage(__FILE__, __LINE__,        \
                                             #condition)                \
        .stream()

#define DCS_CHECK_OK(expr)                                   \
  do {                                                       \
    ::dcs::Status _dcs_st = (expr);                          \
    DCS_CHECK(_dcs_st.ok()) << _dcs_st.ToString();           \
  } while (false)

}  // namespace dcs

#endif  // DCS_COMMON_LOGGING_H_
