#ifndef DCS_COMMON_HISTOGRAM_H_
#define DCS_COMMON_HISTOGRAM_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace dcs {

/// \brief Accumulates integer samples and reports empirical CDF points.
///
/// Used to report the Fig 13 largest-connected-component distributions and
/// similar Monte-Carlo outputs.
class Histogram {
 public:
  Histogram() = default;

  /// Records one sample.
  void Add(std::int64_t value);

  /// Number of samples recorded.
  std::size_t count() const { return samples_.size(); }

  /// Empirical P[X <= x]. Returns 0 when empty.
  double CdfAt(std::int64_t x) const;

  /// Smallest sample v such that P[X <= v] >= q (q in (0,1]); requires
  /// non-empty.
  std::int64_t Quantile(double q) const;

  /// Mean of the samples; 0 when empty.
  double Mean() const;

  /// Minimum / maximum sample; requires non-empty.
  std::int64_t Min() const;
  std::int64_t Max() const;

  /// Fraction of samples strictly greater than x.
  double FractionAbove(std::int64_t x) const;

 private:
  void EnsureSorted() const;

  std::vector<std::int64_t> samples_;
  mutable bool sorted_ = true;
};

}  // namespace dcs

#endif  // DCS_COMMON_HISTOGRAM_H_
