#ifndef DCS_COMMON_BIT_VECTOR_H_
#define DCS_COMMON_BIT_VECTOR_H_

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "common/logging.h"

namespace dcs {

/// \brief Fixed-size bit array with word-level bulk operations.
///
/// This is the workhorse of both the streaming sketches (a router bitmap is a
/// BitVector) and the analysis center (matrix columns/rows are BitVectors and
/// the detectors live on AND + popcount). Bulk operations run on the
/// runtime-dispatched kernel layer (common/bit_kernels.h): AVX2 or NEON
/// where the host supports it, portable scalar otherwise, with bit-identical
/// results either way.
class BitVector {
 public:
  /// An empty (zero-bit) vector.
  BitVector() = default;

  /// A vector of `num_bits` bits, all zero.
  explicit BitVector(std::size_t num_bits)
      : num_bits_(num_bits), words_((num_bits + 63) / 64, 0) {}

  BitVector(const BitVector&) = default;
  BitVector& operator=(const BitVector&) = default;
  BitVector(BitVector&&) = default;
  BitVector& operator=(BitVector&&) = default;

  /// Number of bits.
  std::size_t size() const { return num_bits_; }

  /// Number of backing 64-bit words.
  std::size_t num_words() const { return words_.size(); }

  /// Sets bit `i` to 1.
  void Set(std::size_t i) {
    DCS_CHECK(i < num_bits_);
    words_[i >> 6] |= (1ULL << (i & 63));
  }

  /// Sets bit `i` to 0.
  void Clear(std::size_t i) {
    DCS_CHECK(i < num_bits_);
    words_[i >> 6] &= ~(1ULL << (i & 63));
  }

  /// Returns bit `i`.
  bool Test(std::size_t i) const {
    DCS_CHECK(i < num_bits_);
    return (words_[i >> 6] >> (i & 63)) & 1ULL;
  }

  /// Zeroes every bit, keeping the size.
  void Reset();

  /// Number of 1 bits (the paper's "weight").
  std::size_t CountOnes() const;

  /// Number of positions where both this and `other` are 1 — the paper's
  /// "common 1s" statistic. Requires equal sizes.
  std::size_t CommonOnes(const BitVector& other) const;

  /// CommonOnes of this against every vector in `others` (all of equal
  /// size), written to out[i]. One blocked kernel call: the left operand is
  /// re-read from cache instead of memory on long rows, which is the hot
  /// loop of the O(groups^2) pair scan. `out` must have at least
  /// others.size() entries.
  void CommonOnesBatch(std::span<const BitVector> others,
                       std::span<std::uint32_t> out) const;

  /// this &= other. Requires equal sizes.
  void InPlaceAnd(const BitVector& other);

  /// this |= other. Requires equal sizes.
  void InPlaceOr(const BitVector& other);

  /// this = a & b in one pass (no copy-then-AND). `a` and `b` must have
  /// equal sizes; this vector is resized to match.
  void AssignAnd(const BitVector& a, const BitVector& b);

  /// Fraction of bits set, in [0,1]; 0 for an empty vector.
  double FillRatio() const;

  /// Appends the index of every set bit to `out`.
  void AppendSetBits(std::vector<std::size_t>* out) const;

  /// Raw word access (read-only), for serialization and tight loops.
  const std::uint64_t* words() const { return words_.data(); }

  /// Raw word access (mutable). Callers must not set padding bits past
  /// size(); bulk ops assume they are zero.
  std::uint64_t* mutable_words() { return words_.data(); }

  friend bool operator==(const BitVector& a, const BitVector& b) {
    return a.num_bits_ == b.num_bits_ && a.words_ == b.words_;
  }

 private:
  std::size_t num_bits_ = 0;
  std::vector<std::uint64_t> words_;
};

}  // namespace dcs

#endif  // DCS_COMMON_BIT_VECTOR_H_
