#ifndef DCS_COMMON_CONFIG_H_
#define DCS_COMMON_CONFIG_H_

#include <cstdint>
#include <string>

namespace dcs {

/// Scale regimes shared by the benchmark harnesses.
enum class BenchScale {
  kSmall,  ///< Laptop-safe defaults; each binary finishes in ~a minute.
  kPaper,  ///< Full paper-scale parameters (can take much longer).
};

/// Reads DCS_SCALE from the environment ("small" default, "paper").
BenchScale BenchScaleFromEnv();

/// Reads an integer environment variable, returning `fallback` when unset or
/// unparsable.
std::int64_t EnvInt64(const char* name, std::int64_t fallback);

/// Reads a double environment variable, returning `fallback` when unset or
/// unparsable.
double EnvDouble(const char* name, double fallback);

/// Human-readable label ("small" / "paper") for bench headers.
std::string BenchScaleName(BenchScale scale);

}  // namespace dcs

#endif  // DCS_COMMON_CONFIG_H_
