#ifndef DCS_COMMON_HASH_H_
#define DCS_COMMON_HASH_H_

#include <cstddef>
#include <cstdint>
#include <string_view>

namespace dcs {

/// \brief Hashes `len` bytes starting at `data` with the given seed.
///
/// 64-bit MurmurHash3-style mixer over 8-byte words with a strong finalizer;
/// stand-in for the hardware hash of Ramakrishna et al. [9] that the paper
/// assumes at line speed. Different seeds give (empirically) independent hash
/// functions, which the sketches use as their hash families.
std::uint64_t Hash64(const void* data, std::size_t len, std::uint64_t seed);

/// Convenience overload for string-like payloads.
inline std::uint64_t Hash64(std::string_view bytes, std::uint64_t seed) {
  return Hash64(bytes.data(), bytes.size(), seed);
}

/// Mixes a single 64-bit value (used to derive per-array seeds and to hash
/// flow labels).
std::uint64_t Mix64(std::uint64_t x);

/// Combines two 64-bit hashes into one.
inline std::uint64_t HashCombine(std::uint64_t a, std::uint64_t b) {
  return Mix64(a ^ (b + 0x9E3779B97F4A7C15ULL + (a << 6) + (a >> 2)));
}

}  // namespace dcs

#endif  // DCS_COMMON_HASH_H_
