#ifndef DCS_COMMON_THREAD_POOL_H_
#define DCS_COMMON_THREAD_POOL_H_

#include <cstddef>
#include <functional>
#include <queue>
#include <thread>
#include <vector>

#include "common/sync.h"

namespace dcs {

/// Contiguous slice [begin, end) of an index space, with its position in the
/// partition. The analysis engines compute per-shard partial results indexed
/// by `index` and merge them in ascending shard order, which is what makes
/// the parallel pipelines deterministic at any thread count.
struct ShardRange {
  std::size_t index = 0;
  std::size_t begin = 0;
  std::size_t end = 0;
};

/// Partitions [0, count) into at most `max_shards` (clamped to >= 1)
/// non-empty contiguous ranges of near-equal size (the first `count %
/// shards` ranges are one element longer). Deterministic in (count,
/// max_shards) only — never in the number of threads that will run the
/// shards.
std::vector<ShardRange> MakeShards(std::size_t count, std::size_t max_shards);

/// \brief Fixed-size worker pool.
///
/// The paper notes (Section IV-D) that the analysis center's work is
/// embarrassingly parallel and suggests spreading it over many CPUs. Both
/// pipelines run on this pool via RunShards / ParallelFor: the aligned one
/// (weight screen, hopefuls iterations, core scan) and the unaligned one
/// (row weights, lambda calibration, pair scan, min-degree peeling,
/// survivor expansion). See docs/PARALLELISM.md for the sharding and merge
/// architecture.
class ThreadPool {
 public:
  /// Starts `num_threads` workers (>= 1).
  explicit ThreadPool(std::size_t num_threads);

  /// Drains pending work and joins the workers.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues a task.
  void Schedule(std::function<void()> task);

  /// Blocks until every scheduled task has finished. Must not be called from
  /// a worker of this pool (the caller's own task could never be waited out).
  void Wait();

  /// Number of worker threads.
  std::size_t num_threads() const { return threads_.size(); }

  /// True when the calling thread is one of this pool's workers. Parallel
  /// drivers use this to degrade to inline execution instead of deadlocking
  /// on a nested Wait().
  bool OnWorkerThread() const;

  /// The partition RunShards/ParallelFor would use for `count` items:
  /// MakeShards(count, 4 * num_threads()). Oversharding by 4x lets the queue
  /// load-balance uneven shards (e.g. the triangular pair pass).
  std::vector<ShardRange> ShardsFor(std::size_t count) const;

  /// Runs fn(shard) for every shard across the pool and blocks until all
  /// complete. Safe to call from a worker thread of this pool: the shards
  /// then run inline on the caller (results are identical — only the
  /// schedule changes).
  void RunShards(const std::vector<ShardRange>& shards,
                 const std::function<void(const ShardRange&)>& fn);

  /// Runs fn(i) for i in [0, count) across the pool, partitioned with
  /// ShardsFor, and blocks until all complete. Safe on worker threads (runs
  /// inline, see RunShards).
  void ParallelFor(std::size_t count,
                   const std::function<void(std::size_t)>& fn);

  /// Runs a batch of heterogeneous tasks across the pool and blocks until
  /// all complete — the counterpart of RunShards for work that is not an
  /// index range (e.g. the ingest server draining one task per readable
  /// connection, where per-task cost varies with what the peer sent). Tasks
  /// may run in any order and must not depend on shared mutable state
  /// beyond their own closure. Safe to call from a worker thread of this
  /// pool: the tasks then run inline on the caller, in batch order.
  void RunTasks(const std::vector<std::function<void()>>& tasks);

 private:
  void WorkerLoop();

  /// One mutex covers the whole scheduling state: queue, completion latch,
  /// and shutdown flag move together (Schedule pushes and bumps in_flight_
  /// atomically; Wait reads in_flight_ against queue drain).
  Mutex mu_{"ThreadPool.mu"};
  CondVar work_available_;
  CondVar all_done_;
  std::queue<std::function<void()>> queue_ DCS_GUARDED_BY(mu_);
  std::size_t in_flight_ DCS_GUARDED_BY(mu_) = 0;
  bool shutting_down_ DCS_GUARDED_BY(mu_) = false;
  /// Written only by the constructor, joined only by the destructor; size()
  /// is read concurrently but the vector is immutable between the two, so
  /// no lock applies (deliberately unguarded).
  std::vector<std::thread> threads_;
};

}  // namespace dcs

#endif  // DCS_COMMON_THREAD_POOL_H_
