#ifndef DCS_COMMON_THREAD_POOL_H_
#define DCS_COMMON_THREAD_POOL_H_

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace dcs {

/// \brief Fixed-size worker pool.
///
/// The paper notes (Section IV-D) that the analysis center's pairwise row
/// correlation is embarrassingly parallel and suggests spreading it over many
/// CPUs; the correlation engine uses this pool for that.
class ThreadPool {
 public:
  /// Starts `num_threads` workers (>= 1).
  explicit ThreadPool(std::size_t num_threads);

  /// Drains pending work and joins the workers.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues a task.
  void Schedule(std::function<void()> task);

  /// Blocks until every scheduled task has finished.
  void Wait();

  /// Number of worker threads.
  std::size_t num_threads() const { return threads_.size(); }

  /// Runs fn(i) for i in [0, count) across the pool, partitioned into
  /// contiguous shards, and blocks until all complete.
  void ParallelFor(std::size_t count,
                   const std::function<void(std::size_t)>& fn);

 private:
  void WorkerLoop();

  std::mutex mu_;
  std::condition_variable work_available_;
  std::condition_variable all_done_;
  std::queue<std::function<void()>> queue_;
  std::size_t in_flight_ = 0;
  bool shutting_down_ = false;
  std::vector<std::thread> threads_;
};

}  // namespace dcs

#endif  // DCS_COMMON_THREAD_POOL_H_
