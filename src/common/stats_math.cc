#include "common/stats_math.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/logging.h"

namespace dcs {
namespace {

constexpr double kNegInf = -std::numeric_limits<double>::infinity();

// Cap on exact tail summations. The experiments in this library stay far
// below it; hitting the cap indicates a misuse, so we fall back to a normal
// approximation rather than loop for minutes.
constexpr std::int64_t kMaxExactTerms = 4'000'000;

double NormalTailLogApprox(double z) {
  // log P[Z > z] for large z via the asymptotic expansion of the Mills ratio.
  if (z < 8.0) return std::log(1.0 - 0.5 * std::erfc(z / std::sqrt(2.0)));
  return -0.5 * z * z - std::log(z) - 0.5 * std::log(2.0 * M_PI);
}

}  // namespace

double LogChoose(double n, double k) {
  if (k < 0 || k > n) return kNegInf;
  if (k == 0 || k == n) return 0.0;
  return std::lgamma(n + 1) - std::lgamma(k + 1) - std::lgamma(n - k + 1);
}

double LogSumExp(double a, double b) {
  if (a == kNegInf) return b;
  if (b == kNegInf) return a;
  const double hi = std::max(a, b);
  const double lo = std::min(a, b);
  return hi + std::log1p(std::exp(lo - hi));
}

double LogBinomPmf(std::int64_t k, std::int64_t n, double p) {
  if (k < 0 || k > n) return kNegInf;
  if (p <= 0.0) return k == 0 ? 0.0 : kNegInf;
  if (p >= 1.0) return k == n ? 0.0 : kNegInf;
  const double dk = static_cast<double>(k);
  const double dn = static_cast<double>(n);
  return LogChoose(dn, dk) + dk * std::log(p) + (dn - dk) * std::log1p(-p);
}

namespace {

// log of sum_{k=lo..hi} Binomial(n,p) pmf, summed with a streaming
// log-sum-exp using the pmf recurrence. Requires 0 <= lo <= hi <= n.
double LogBinomRangeSum(std::int64_t lo, std::int64_t hi, std::int64_t n,
                        double p) {
  if (lo > hi) return kNegInf;
  const double log_ratio_base = std::log(p) - std::log1p(-p);
  // Start at whichever end is closer to the mode so the first term is the
  // largest and the running max never needs rescaling.
  const auto mode = static_cast<std::int64_t>(
      std::floor((static_cast<double>(n) + 1) * p));
  std::int64_t start = std::clamp(mode, lo, hi);
  const double log_start = LogBinomPmf(start, n, p);
  if (log_start == kNegInf) return kNegInf;

  double total = 1.0;  // Terms scaled by exp(-log_start).
  // Walk down from start-1 to lo.
  double rel = 0.0;
  for (std::int64_t k = start; k > lo; --k) {
    // pmf(k-1)/pmf(k) = k / ((n-k+1) * (p/q))
    rel += std::log(static_cast<double>(k)) -
           std::log(static_cast<double>(n - k + 1)) - log_ratio_base;
    const double term = std::exp(rel);
    total += term;
    if (term < 1e-18 * total) break;
  }
  // Walk up from start+1 to hi.
  rel = 0.0;
  for (std::int64_t k = start; k < hi; ++k) {
    // pmf(k+1)/pmf(k) = (n-k)/(k+1) * (p/q)
    rel += std::log(static_cast<double>(n - k)) -
           std::log(static_cast<double>(k + 1)) + log_ratio_base;
    const double term = std::exp(rel);
    total += term;
    if (term < 1e-18 * total) break;
  }
  return log_start + std::log(total);
}

}  // namespace

double LogBinomCdf(std::int64_t x, std::int64_t n, double p) {
  if (x < 0) return kNegInf;
  if (x >= n) return 0.0;
  if (p <= 0.0) return 0.0;
  if (p >= 1.0) return kNegInf;
  const double mean = static_cast<double>(n) * p;
  const double sd = std::sqrt(mean * (1.0 - p));
  // Sum the shorter side exactly when affordable.
  if (x + 1 <= kMaxExactTerms) {
    return LogBinomRangeSum(0, x, n, p);
  }
  if (n - x <= kMaxExactTerms) {
    const double log_sf = LogBinomRangeSum(x + 1, n, n, p);
    const double sf = std::exp(log_sf);
    return sf < 1.0 ? std::log1p(-sf) : kNegInf;
  }
  // Fallback: normal approximation with continuity correction.
  const double z = (static_cast<double>(x) + 0.5 - mean) / sd;
  return z < 0 ? NormalTailLogApprox(-z) : std::log(NormalCdf(z));
}

double LogBinomSf(std::int64_t x, std::int64_t n, double p) {
  if (x < 0) return 0.0;
  if (x >= n) return kNegInf;
  if (p <= 0.0) return kNegInf;
  if (p >= 1.0) return 0.0;
  const double mean = static_cast<double>(n) * p;
  const double sd = std::sqrt(mean * (1.0 - p));
  if (n - x <= kMaxExactTerms) {
    return LogBinomRangeSum(x + 1, n, n, p);
  }
  if (x + 1 <= kMaxExactTerms) {
    const double log_cdf = LogBinomRangeSum(0, x, n, p);
    const double cdf = std::exp(log_cdf);
    return cdf < 1.0 ? std::log1p(-cdf) : kNegInf;
  }
  const double z = (static_cast<double>(x) + 0.5 - mean) / sd;
  return z > 0 ? NormalTailLogApprox(z) : std::log(1.0 - NormalCdf(z));
}

double BinomCdf(std::int64_t x, std::int64_t n, double p) {
  return std::exp(LogBinomCdf(x, n, p));
}

std::int64_t BinomQuantile(double q, std::int64_t n, double p) {
  DCS_CHECK(q > 0.0 && q < 1.0);
  std::int64_t lo = 0;
  std::int64_t hi = n;
  while (lo < hi) {
    const std::int64_t mid = lo + (hi - lo) / 2;
    if (BinomCdf(mid, n, p) >= q) {
      hi = mid;
    } else {
      lo = mid + 1;
    }
  }
  return lo;
}

double LogHypergeomPmf(std::int64_t k, std::int64_t big_n, std::int64_t i,
                       std::int64_t j) {
  DCS_CHECK(i >= 0 && i <= big_n);
  DCS_CHECK(j >= 0 && j <= big_n);
  const std::int64_t k_min = std::max<std::int64_t>(0, i + j - big_n);
  const std::int64_t k_max = std::min(i, j);
  if (k < k_min || k > k_max) return kNegInf;
  return LogChoose(static_cast<double>(i), static_cast<double>(k)) +
         LogChoose(static_cast<double>(big_n - i),
                   static_cast<double>(j - k)) -
         LogChoose(static_cast<double>(big_n), static_cast<double>(j));
}

namespace {

// log sum of hypergeometric pmf over [lo, hi], accumulated outward from the
// in-range point nearest the mode via the pmf recurrence.
double LogHypergeomRangeSum(std::int64_t lo, std::int64_t hi,
                            std::int64_t big_n, std::int64_t i,
                            std::int64_t j) {
  if (lo > hi) return kNegInf;
  const std::int64_t k_min = std::max<std::int64_t>(0, i + j - big_n);
  const std::int64_t k_max = std::min(i, j);
  lo = std::max(lo, k_min);
  hi = std::min(hi, k_max);
  if (lo > hi) return kNegInf;
  const auto mode = std::clamp<std::int64_t>(
      (i + 1) * (j + 1) / (big_n + 2), lo, hi);
  const double log_start = LogHypergeomPmf(mode, big_n, i, j);
  if (log_start == kNegInf) return kNegInf;
  double total = 1.0;  // Scaled by exp(-log_start).
  auto up_ratio = [&](std::int64_t k) {
    // pmf(k+1)/pmf(k).
    return std::log(static_cast<double>(i - k)) +
           std::log(static_cast<double>(j - k)) -
           std::log(static_cast<double>(k + 1)) -
           std::log(static_cast<double>(big_n - i - j + k + 1));
  };
  double rel = 0.0;
  for (std::int64_t k = mode; k < hi; ++k) {
    rel += up_ratio(k);
    const double term = std::exp(rel);
    total += term;
    if (term < 1e-18 * total) break;
  }
  rel = 0.0;
  for (std::int64_t k = mode; k > lo; --k) {
    rel -= up_ratio(k - 1);
    const double term = std::exp(rel);
    total += term;
    if (term < 1e-18 * total) break;
  }
  return log_start + std::log(total);
}

}  // namespace

double HypergeomCdf(std::int64_t x, std::int64_t big_n, std::int64_t i,
                    std::int64_t j) {
  const std::int64_t k_min = std::max<std::int64_t>(0, i + j - big_n);
  if (x < k_min) return 0.0;
  const std::int64_t k_max = std::min(i, j);
  if (x >= k_max) return 1.0;
  const auto mode = std::clamp<std::int64_t>(
      (i + 1) * (j + 1) / (big_n + 2), k_min, k_max);
  if (x >= mode) {
    // Short upper tail: 1 - SF.
    return 1.0 - std::exp(LogHypergeomRangeSum(x + 1, k_max, big_n, i, j));
  }
  return std::exp(LogHypergeomRangeSum(k_min, x, big_n, i, j));
}

double LogHypergeomSf(std::int64_t x, std::int64_t big_n, std::int64_t i,
                      std::int64_t j) {
  const std::int64_t k_max = std::min(i, j);
  if (x >= k_max) return kNegInf;
  const std::int64_t k_min = std::max<std::int64_t>(0, i + j - big_n);
  const std::int64_t lo = std::max(x + 1, k_min);
  const auto mode = std::clamp<std::int64_t>(
      (i + 1) * (j + 1) / (big_n + 2), k_min, k_max);
  if (lo <= mode) {
    // The sum includes the mode: compute via the complement, whose terms
    // decay away from the mode.
    const double log_cdf = LogHypergeomRangeSum(k_min, lo - 1, big_n, i, j);
    const double cdf = std::exp(log_cdf);
    return cdf < 1.0 ? std::log1p(-cdf) : kNegInf;
  }
  return LogHypergeomRangeSum(lo, k_max, big_n, i, j);
}

std::int64_t HypergeomUpperThreshold(double p_star, std::int64_t big_n,
                                     std::int64_t i, std::int64_t j) {
  DCS_CHECK(p_star > 0.0 && p_star < 1.0);
  const std::int64_t k_min = std::max<std::int64_t>(0, i + j - big_n);
  const std::int64_t k_max = std::min(i, j);
  const double log_p_star = std::log(p_star);
  std::int64_t lo = k_min - 1;  // P[X > k_min - 1] = 1 > p_star.
  std::int64_t hi = k_max;      // P[X > k_max] = 0 <= p_star.
  while (lo + 1 < hi) {
    const std::int64_t mid = lo + (hi - lo) / 2;
    if (LogHypergeomSf(mid, big_n, i, j) <= log_p_star) {
      hi = mid;
    } else {
      lo = mid;
    }
  }
  return hi;
}

double NormalCdf(double z) {
  return 0.5 * std::erfc(-z / std::sqrt(2.0));
}

}  // namespace dcs
