#ifndef DCS_COMMON_STATUS_H_
#define DCS_COMMON_STATUS_H_

#include <string>
#include <utility>

namespace dcs {

/// \brief Result of a fallible operation (RocksDB-style; the library does not
/// throw exceptions).
///
/// A default-constructed Status is OK. Non-OK statuses carry a code and a
/// human-readable message. Statuses are cheap to copy.
///
/// The type is [[nodiscard]]: a dropped Status is a dropped quarantine
/// decision or a swallowed decode failure, so ignoring one is a compile
/// error under DCS_WERROR. Call sites that genuinely do not care must say
/// so with an explicit cast: `(void)monitor.AddDigest(d);`.
class [[nodiscard]] Status {
 public:
  /// Error categories used across the library.
  enum class Code {
    kOk = 0,
    kInvalidArgument,
    kNotFound,
    kCorruption,
    kIoError,
    kFailedPrecondition,
    kOutOfRange,
    kInternal,
  };

  /// Constructs an OK status.
  Status() = default;

  Status(const Status&) = default;
  Status& operator=(const Status&) = default;
  Status(Status&&) = default;
  Status& operator=(Status&&) = default;

  /// Factory helpers, one per error category.
  static Status Ok() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(Code::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(Code::kNotFound, std::move(msg));
  }
  static Status Corruption(std::string msg) {
    return Status(Code::kCorruption, std::move(msg));
  }
  static Status IoError(std::string msg) {
    return Status(Code::kIoError, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(Code::kFailedPrecondition, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(Code::kOutOfRange, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(Code::kInternal, std::move(msg));
  }

  /// True iff the operation succeeded.
  bool ok() const { return code_ == Code::kOk; }

  /// The error category (Code::kOk for success).
  Code code() const { return code_; }

  /// The error message; empty for OK statuses.
  const std::string& message() const { return message_; }

  /// "OK" or "<category>: <message>", for logs and test failures.
  std::string ToString() const;

 private:
  Status(Code code, std::string message)
      : code_(code), message_(std::move(message)) {}

  Code code_ = Code::kOk;
  std::string message_;
};

/// The system error message for `errno_value`, via the thread-safe
/// std::system_category() machinery. Use this instead of std::strerror,
/// which may return a pointer into shared static storage (clang-tidy
/// concurrency-mt-unsafe) — the netio error paths run while other threads
/// are live.
std::string ErrnoString(int errno_value);

/// Evaluates `expr` (a Status expression) and returns it from the enclosing
/// function if it is not OK.
#define DCS_RETURN_IF_ERROR(expr)                  \
  do {                                             \
    ::dcs::Status _dcs_status = (expr);            \
    if (!_dcs_status.ok()) return _dcs_status;     \
  } while (false)

}  // namespace dcs

#endif  // DCS_COMMON_STATUS_H_
