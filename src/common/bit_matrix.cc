#include "common/bit_matrix.h"

#include "common/bit_kernels.h"

namespace dcs {

BitMatrix::BitMatrix(std::size_t rows, std::size_t cols) : cols_(cols) {
  rows_.reserve(rows);
  for (std::size_t r = 0; r < rows; ++r) rows_.emplace_back(cols);
}

void BitMatrix::AppendRow(BitVector row) {
  if (rows_.empty()) {
    cols_ = row.size();
  } else {
    DCS_CHECK(row.size() == cols_)
        << "appended row width " << row.size()
        << " does not match matrix width " << cols_;
  }
  rows_.push_back(std::move(row));
}

std::vector<std::uint32_t> BitMatrix::ColumnWeights() const {
  std::vector<std::uint32_t> weights(cols_, 0);
  if (rows_.empty() || cols_ == 0) return weights;
  std::vector<const std::uint64_t*> row_words;
  row_words.reserve(rows_.size());
  for (const BitVector& r : rows_) row_words.push_back(r.words());
  AccumulateColumnCounts(row_words.data(), row_words.size(), 0,
                         rows_.front().num_words(), weights.data());
  return weights;
}

BitVector BitMatrix::ExtractColumn(std::size_t c) const {
  DCS_CHECK(c < cols_) << "column " << c << " out of range for width "
                       << cols_;
  BitVector column(rows_.size());
  for (std::size_t r = 0; r < rows_.size(); ++r) {
    if (rows_[r].Test(c)) column.Set(r);
  }
  return column;
}

std::vector<BitVector> BitMatrix::ExtractColumns(
    const std::vector<std::size_t>& cols_to_take) const {
  for (std::size_t c : cols_to_take) {
    DCS_DCHECK(c < cols_) << "column " << c << " out of range for width "
                          << cols_;
  }
  std::vector<BitVector> result(cols_to_take.size(), BitVector(rows_.size()));
  for (std::size_t r = 0; r < rows_.size(); ++r) {
    const BitVector& row_bits = rows_[r];
    for (std::size_t i = 0; i < cols_to_take.size(); ++i) {
      if (row_bits.Test(cols_to_take[i])) result[i].Set(r);
    }
  }
  return result;
}

}  // namespace dcs
