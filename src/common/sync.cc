#include "common/sync.h"

#include <algorithm>
#include <map>
#include <set>
#include <sstream>
#include <vector>

#include "common/logging.h"

namespace dcs {

void CondVar::Wait(MutexLock* lock) {
  DCS_CHECK(lock != nullptr);
  Mutex* mu = lock->mu_;
  // Adopt the already-held std::mutex for the duration of the wait, then
  // release the unique_lock's ownership claim so the MutexLock destructor
  // remains the one true unlocker. The underlying mutex is atomically
  // released while blocked and re-held on return, exactly std semantics.
  // The debug validator's held stack keeps its entry across the wait: the
  // caller observably holds the mutex at every point before and after, and
  // the transient release cannot participate in a deadlock cycle (this
  // thread holds nothing it acquired *after* mu).
  std::unique_lock<std::mutex> adopted(  // dcs-lint: allow(raw-sync-primitive)
      mu->mu_, std::adopt_lock);
  cv_.wait(adopted);
  (void)adopted.release();
}

namespace sync_internal {
namespace {

// ---------------------------------------------------------------------------
// Lock-order validator state.
//
// One process-wide registry guarded by a *raw* std::mutex (a dcs::Mutex here
// would recurse into the validator). The registry maps every live annotated
// mutex to its diagnostic name and holds the first-seen acquisition-order
// graph: edges_[a] contains b when some thread has blocked on b while
// holding a. Mutex destruction removes the node and its edges — function-
// local mutexes (per-call latches) churn addresses, and a stale edge on a
// recycled address would be a false inversion.
//
// All validator containers are ordered (std::map/std::set over addresses):
// iteration order only affects diagnostic output, but deterministic-by-
// construction is the house style (docs/PARALLELISM.md §6).
// ---------------------------------------------------------------------------

struct Registry {
  std::mutex mu;  // dcs-lint: allow(raw-sync-primitive)
  std::map<const Mutex*, const char*> names;
  std::map<const Mutex*, std::set<const Mutex*>> edges;
};

Registry& GlobalRegistry() {
  static Registry* registry = new Registry();
  return *registry;
}

// The calling thread's held locks, in acquisition order. A plain vector:
// depth is tiny (2–3 in this tree), linear scans beat any indexed structure.
thread_local std::vector<const Mutex*> held_stack;

std::string MutexLabel(const Registry& reg, const Mutex* mu) {
  std::ostringstream out;
  const auto it = reg.names.find(mu);
  const char* name = it != reg.names.end() ? it->second : nullptr;
  if (name != nullptr) {
    out << "\"" << name << "\"";
  } else {
    out << "Mutex@" << static_cast<const void*>(mu);
  }
  return out.str();
}

// Depth-first path search a ->* b over the order graph. Returns the path
// (inclusive of both endpoints) when one exists.
bool FindPath(const Registry& reg, const Mutex* a, const Mutex* b,
              std::set<const Mutex*>* visited,
              std::vector<const Mutex*>* path) {
  if (!visited->insert(a).second) return false;
  path->push_back(a);
  if (a == b) return true;
  const auto it = reg.edges.find(a);
  if (it != reg.edges.end()) {
    for (const Mutex* next : it->second) {
      if (FindPath(reg, next, b, visited, path)) return true;
    }
  }
  path->pop_back();
  return false;
}

std::string ChainString(const Registry& reg,
                        const std::vector<const Mutex*>& chain) {
  std::ostringstream out;
  for (std::size_t i = 0; i < chain.size(); ++i) {
    if (i > 0) out << " -> ";
    out << MutexLabel(reg, chain[i]);
  }
  return out.str();
}

}  // namespace

void RegisterMutex(const Mutex* mu, const char* name) {
  Registry& reg = GlobalRegistry();
  std::scoped_lock lock(reg.mu);  // dcs-lint: allow(raw-sync-primitive)
  reg.names[mu] = name;
}

void UnregisterMutex(const Mutex* mu) {
  Registry& reg = GlobalRegistry();
  std::scoped_lock lock(reg.mu);  // dcs-lint: allow(raw-sync-primitive)
  reg.names.erase(mu);
  reg.edges.erase(mu);
  for (auto& [from, to] : reg.edges) to.erase(mu);
}

void ValidateAcquire(const Mutex* mu) {
  // Self-deadlock first: std::mutex relock is undefined behavior, and no
  // graph is needed to see it.
  DCS_CHECK(std::find(held_stack.begin(), held_stack.end(), mu) ==
            held_stack.end())
      << "recursive acquisition: thread already holds "
      << MutexLabel(GlobalRegistry(), mu)
      << " (chain: " << ChainString(GlobalRegistry(), held_stack) << ")";
  if (!held_stack.empty()) {
    Registry& reg = GlobalRegistry();
    std::scoped_lock lock(reg.mu);  // dcs-lint: allow(raw-sync-primitive)
    for (const Mutex* held : held_stack) {
      if (reg.edges[held].count(mu) != 0) continue;  // Edge already known.
      // Adding held -> mu: if mu already reaches held, the orders conflict.
      std::set<const Mutex*> visited;
      std::vector<const Mutex*> reverse_chain;
      if (FindPath(reg, mu, held, &visited, &reverse_chain)) {
        std::vector<const Mutex*> this_chain(held_stack.begin(),
                                             held_stack.end());
        this_chain.push_back(mu);
        DCS_CHECK(false)
            << "lock-order inversion: this thread acquires "
            << ChainString(reg, this_chain)
            << " but the established order is "
            << ChainString(reg, reverse_chain)
            << " — one of the two paths must reorder its acquisitions";
      }
      reg.edges[held].insert(mu);
    }
  }
  held_stack.push_back(mu);
}

void RecordTryAcquire(const Mutex* mu) { held_stack.push_back(mu); }

void RecordRelease(const Mutex* mu) {
  // Release order need not be LIFO (though RAII makes it so in practice);
  // erase the entry wherever it sits.
  const auto it = std::find(held_stack.rbegin(), held_stack.rend(), mu);
  DCS_CHECK(it != held_stack.rend())
      << "releasing a mutex this thread does not hold: "
      << MutexLabel(GlobalRegistry(), mu);
  held_stack.erase(std::next(it).base());
}

std::size_t HeldDepth() { return held_stack.size(); }

void ResetOrderGraphForTest() {
  Registry& reg = GlobalRegistry();
  std::scoped_lock lock(reg.mu);  // dcs-lint: allow(raw-sync-primitive)
  reg.edges.clear();
}

}  // namespace sync_internal
}  // namespace dcs
