#ifndef DCS_BASELINE_RABIN_H_
#define DCS_BASELINE_RABIN_H_

#include <cstddef>
#include <cstdint>
#include <string_view>
#include <vector>

namespace dcs {

/// \brief Rabin fingerprinting over GF(2) [22], as used by the
/// raw-aggregation baseline and the EarlyBird-style local detector [17].
///
/// Fingerprints are residues of the data polynomial modulo a fixed
/// irreducible degree-63 polynomial, computed byte-at-a-time with
/// precomputed tables; the rolling form slides a fixed window one byte at a
/// time in O(1).
class RabinFingerprinter {
 public:
  /// Fingerprinter for windows of `window_bytes` bytes.
  explicit RabinFingerprinter(std::size_t window_bytes);

  /// Fingerprint of a whole buffer (not windowed).
  std::uint64_t Fingerprint(std::string_view bytes) const;

  /// All rolling-window fingerprints of `bytes` (empty when the buffer is
  /// shorter than the window). Result[i] covers bytes [i, i + window).
  std::vector<std::uint64_t> WindowFingerprints(std::string_view bytes) const;

  /// Value-sampled window fingerprints: keeps fingerprints whose low
  /// `sample_bits` bits are zero (EarlyBird samples substrings this way so
  /// all observers pick the same positions of the same content).
  std::vector<std::uint64_t> SampledWindowFingerprints(
      std::string_view bytes, unsigned sample_bits) const;

  std::size_t window_bytes() const { return window_bytes_; }

 private:
  std::uint64_t AppendByte(std::uint64_t fp, std::uint8_t byte) const;

  std::size_t window_bytes_;
  // T[b]: reduction of b * x^63.. for the incoming top byte.
  std::uint64_t append_table_[256];
  // U[b]: b * x^{8*window} mod P, to cancel the outgoing byte.
  std::uint64_t remove_table_[256];
};

}  // namespace dcs

#endif  // DCS_BASELINE_RABIN_H_
