#ifndef DCS_BASELINE_RAW_AGGREGATION_H_
#define DCS_BASELINE_RAW_AGGREGATION_H_

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "net/trace.h"
#include "baseline/rabin.h"

namespace dcs {

/// Configuration of the centralized baseline.
struct RawAggregationOptions {
  std::size_t window_bytes = 40;
  unsigned sample_bits = 6;
  /// Report content seen at at least this many distinct routers.
  std::uint32_t min_routers = 3;
  std::size_t min_payload_bytes = 64;
};

/// One detected piece of common content.
struct CommonContentFinding {
  std::uint64_t fingerprint = 0;
  std::vector<std::uint32_t> routers;
};

/// \brief The "raw aggregation" strawman the paper rules out (Section II-B):
/// ship every packet to one place and string-match.
///
/// Exact and offset-insensitive (value-sampled Rabin windows), so it serves
/// as ground truth for integration tests — and its resource accounting
/// (bytes shipped, table size) quantifies why it cannot scale: shipping
/// 1,000 OC-192 links would require 10 Tbps of extra backbone capacity.
class RawAggregationDetector {
 public:
  explicit RawAggregationDetector(const RawAggregationOptions& options);

  /// Ingests one router's full raw trace (the "shipping").
  void AddRouterTrace(std::uint32_t router_id, const PacketTrace& trace);

  /// Contents seen at >= min_routers distinct routers, most-widespread
  /// first.
  std::vector<CommonContentFinding> Findings() const;

  /// Raw bytes that had to be shipped to the center.
  std::uint64_t bytes_shipped() const { return bytes_shipped_; }

  /// Number of tracked fingerprints (memory proxy).
  std::size_t table_size() const { return routers_by_fp_.size(); }

 private:
  RawAggregationOptions options_;
  RabinFingerprinter fingerprinter_;
  std::unordered_map<std::uint64_t, std::vector<std::uint32_t>>
      routers_by_fp_;
  std::uint64_t bytes_shipped_ = 0;
};

}  // namespace dcs

#endif  // DCS_BASELINE_RAW_AGGREGATION_H_
