#include "baseline/local_detector.h"

#include <algorithm>

namespace dcs {

LocalPrevalenceDetector::LocalPrevalenceDetector(
    const LocalDetectorOptions& options)
    : options_(options), fingerprinter_(options.window_bytes) {}

void LocalPrevalenceDetector::Update(const Packet& packet) {
  if (packet.payload.size() < options_.min_payload_bytes) return;
  std::vector<std::uint64_t> fps = fingerprinter_.SampledWindowFingerprints(
      packet.payload, options_.sample_bits);
  // Count each fingerprint once per packet (packets can repeat a window).
  std::sort(fps.begin(), fps.end());
  fps.erase(std::unique(fps.begin(), fps.end()), fps.end());
  for (std::uint64_t fp : fps) ++counts_[fp];
}

std::vector<std::uint64_t> LocalPrevalenceDetector::PrevalentFingerprints()
    const {
  std::vector<std::uint64_t> result;
  for (const auto& [fp, count] : counts_) {
    if (count >= options_.prevalence_threshold) result.push_back(fp);
  }
  std::sort(result.begin(), result.end());
  return result;
}

std::uint32_t LocalPrevalenceDetector::CountOf(
    std::uint64_t fingerprint) const {
  const auto it = counts_.find(fingerprint);
  return it == counts_.end() ? 0 : it->second;
}

}  // namespace dcs
