#include "baseline/raw_aggregation.h"

#include <algorithm>

namespace dcs {

RawAggregationDetector::RawAggregationDetector(
    const RawAggregationOptions& options)
    : options_(options), fingerprinter_(options.window_bytes) {}

void RawAggregationDetector::AddRouterTrace(std::uint32_t router_id,
                                            const PacketTrace& trace) {
  for (const Packet& packet : trace) {
    bytes_shipped_ += packet.wire_bytes();
    if (packet.payload.size() < options_.min_payload_bytes) continue;
    std::vector<std::uint64_t> fps =
        fingerprinter_.SampledWindowFingerprints(packet.payload,
                                                 options_.sample_bits);
    std::sort(fps.begin(), fps.end());
    fps.erase(std::unique(fps.begin(), fps.end()), fps.end());
    for (std::uint64_t fp : fps) {
      std::vector<std::uint32_t>& routers = routers_by_fp_[fp];
      if (routers.empty() || routers.back() != router_id) {
        // Traces are added router-by-router, so a per-fp router list stays
        // sorted and deduplicated by checking the tail.
        routers.push_back(router_id);
      }
    }
  }
}

std::vector<CommonContentFinding> RawAggregationDetector::Findings() const {
  std::vector<CommonContentFinding> findings;
  for (const auto& [fp, routers] : routers_by_fp_) {
    if (routers.size() >= options_.min_routers) {
      findings.push_back(CommonContentFinding{fp, routers});
    }
  }
  std::sort(findings.begin(), findings.end(),
            [](const CommonContentFinding& a, const CommonContentFinding& b) {
              if (a.routers.size() != b.routers.size()) {
                return a.routers.size() > b.routers.size();
              }
              return a.fingerprint < b.fingerprint;
            });
  return findings;
}

}  // namespace dcs
