#ifndef DCS_BASELINE_LOCAL_DETECTOR_H_
#define DCS_BASELINE_LOCAL_DETECTOR_H_

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "net/packet.h"
#include "baseline/rabin.h"

namespace dcs {

/// Configuration of the single-vantage baseline.
struct LocalDetectorOptions {
  /// Window size of the sampled substring fingerprints.
  std::size_t window_bytes = 40;
  /// Keep fingerprints whose low `sample_bits` bits are zero (1/2^bits of
  /// windows).
  unsigned sample_bits = 6;
  /// A fingerprint is reported when seen in at least this many distinct
  /// packets at this one vantage point.
  std::uint32_t prevalence_threshold = 3;
  /// Packets shorter than this are ignored.
  std::size_t min_payload_bytes = 64;
};

/// \brief EarlyBird-style single-vantage content-prevalence detector [17].
///
/// Maintains a table fingerprint -> packet count over one link's traffic.
/// This is the "traditional per-link monitoring" the paper argues is blind
/// to distributed common content: content that crosses each link only once
/// never reaches the prevalence threshold locally, however many links it
/// crosses in aggregate. Implemented as the contrast baseline for that
/// claim.
class LocalPrevalenceDetector {
 public:
  explicit LocalPrevalenceDetector(const LocalDetectorOptions& options);

  /// Processes one packet.
  void Update(const Packet& packet);

  /// Fingerprints whose packet count reached the threshold.
  std::vector<std::uint64_t> PrevalentFingerprints() const;

  /// Count for one fingerprint (0 when absent).
  std::uint32_t CountOf(std::uint64_t fingerprint) const;

  /// Memory-ish footprint: number of tracked fingerprints.
  std::size_t table_size() const { return counts_.size(); }

 private:
  LocalDetectorOptions options_;
  RabinFingerprinter fingerprinter_;
  std::unordered_map<std::uint64_t, std::uint32_t> counts_;
};

}  // namespace dcs

#endif  // DCS_BASELINE_LOCAL_DETECTOR_H_
