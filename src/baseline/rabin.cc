#include "baseline/rabin.h"

#include "common/logging.h"

namespace dcs {
namespace {

// Degree-64 modulus over GF(2) (the CRC-64/ECMA-182 generator): fingerprints
// are residues mod x^64 + kPoly.
constexpr std::uint64_t kPoly = 0x42F0E1EBA9EA3693ULL;

// Reduction of b * x^64 mod P for each byte value b.
std::uint64_t ReduceTopByte(std::uint8_t b) {
  std::uint64_t r = static_cast<std::uint64_t>(b) << 56;
  for (int bit = 0; bit < 8; ++bit) {
    const bool carry = (r >> 63) & 1;
    r <<= 1;
    if (carry) r ^= kPoly;
  }
  return r;
}

}  // namespace

RabinFingerprinter::RabinFingerprinter(std::size_t window_bytes)
    : window_bytes_(window_bytes) {
  DCS_CHECK(window_bytes >= 1);
  for (int b = 0; b < 256; ++b) {
    append_table_[b] = ReduceTopByte(static_cast<std::uint8_t>(b));
  }
  // remove_table_[b] = b * x^{8w + 64} mod P: append b, then w zero bytes.
  for (int b = 0; b < 256; ++b) {
    std::uint64_t fp = AppendByte(0, static_cast<std::uint8_t>(b));
    for (std::size_t i = 0; i < window_bytes_; ++i) fp = AppendByte(fp, 0);
    remove_table_[b] = fp;
  }
}

std::uint64_t RabinFingerprinter::AppendByte(std::uint64_t fp,
                                             std::uint8_t byte) const {
  // fp * x^8 + byte * x^64, reduced.
  return (fp << 8) ^ append_table_[(fp >> 56) & 0xFF] ^
         append_table_[byte] ^ 0;  // byte * x^64 is exactly T[byte].
}

std::uint64_t RabinFingerprinter::Fingerprint(std::string_view bytes) const {
  std::uint64_t fp = 0;
  for (char c : bytes) fp = AppendByte(fp, static_cast<std::uint8_t>(c));
  return fp;
}

std::vector<std::uint64_t> RabinFingerprinter::WindowFingerprints(
    std::string_view bytes) const {
  std::vector<std::uint64_t> result;
  if (bytes.size() < window_bytes_) return result;
  result.reserve(bytes.size() - window_bytes_ + 1);
  std::uint64_t fp = 0;
  for (std::size_t i = 0; i < window_bytes_; ++i) {
    fp = AppendByte(fp, static_cast<std::uint8_t>(bytes[i]));
  }
  result.push_back(fp);
  for (std::size_t i = window_bytes_; i < bytes.size(); ++i) {
    fp = AppendByte(fp, static_cast<std::uint8_t>(bytes[i])) ^
         remove_table_[static_cast<std::uint8_t>(bytes[i - window_bytes_])];
    result.push_back(fp);
  }
  return result;
}

std::vector<std::uint64_t> RabinFingerprinter::SampledWindowFingerprints(
    std::string_view bytes, unsigned sample_bits) const {
  DCS_CHECK(sample_bits < 64);
  const std::uint64_t mask = (1ULL << sample_bits) - 1;
  std::vector<std::uint64_t> sampled;
  for (std::uint64_t fp : WindowFingerprints(bytes)) {
    if ((fp & mask) == 0) sampled.push_back(fp);
  }
  return sampled;
}

}  // namespace dcs
