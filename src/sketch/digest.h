#ifndef DCS_SKETCH_DIGEST_H_
#define DCS_SKETCH_DIGEST_H_

#include <cstdint>
#include <vector>

#include "common/bit_vector.h"
#include "common/status.h"

namespace dcs {

/// Which streaming module produced a digest.
enum class DigestKind : std::uint8_t {
  kAligned = 1,    ///< One hashed-bitmap row (Section III).
  kUnaligned = 2,  ///< num_groups * arrays_per_group rows (Section IV).
};

/// \brief The message a router ships to the analysis center each epoch.
///
/// Carries the bitmap rows plus enough metadata for the center to stack them
/// into the analysis matrix, and raw-traffic accounting to audit the paper's
/// >=1000x reduction claim. Encoding is little-endian with a trailing
/// checksum.
struct Digest {
  std::uint32_t router_id = 0;
  std::uint64_t epoch_id = 0;
  DigestKind kind = DigestKind::kAligned;
  /// Unaligned layout; 1 x 1 for aligned digests.
  std::uint32_t num_groups = 1;
  std::uint32_t arrays_per_group = 1;
  /// Rows, group-major for unaligned digests.
  std::vector<BitVector> rows;
  /// Number of packets the sketch recorded this epoch.
  std::uint64_t packets_covered = 0;
  /// On-the-wire bytes of the traffic the sketch observed this epoch.
  std::uint64_t raw_bytes_covered = 0;

  /// Serializes to bytes. Each row is stored either dense (raw words) or
  /// sparse (varint-delta set-bit indices), whichever is smaller — a
  /// quarter-full epoch's bitmap ships at a fraction of its dense size
  /// while half-full rows stay dense.
  std::vector<std::uint8_t> Encode() const;

  /// Parses a digest previously produced by Encode. Validates structure and
  /// checksum.
  static Status Decode(const std::vector<std::uint8_t>& bytes, Digest* out);

  /// Size of the encoded form (equals Encode().size()).
  std::size_t EncodedSizeBytes() const;

  /// raw_bytes_covered / encoded size — the paper's compression factor.
  double CompressionFactor() const;
};

}  // namespace dcs

#endif  // DCS_SKETCH_DIGEST_H_
