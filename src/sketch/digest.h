#ifndef DCS_SKETCH_DIGEST_H_
#define DCS_SKETCH_DIGEST_H_

#include <cstdint>
#include <vector>

#include "common/bit_vector.h"
#include "common/status.h"

namespace dcs {

/// Which streaming module produced a digest.
enum class DigestKind : std::uint8_t {
  kAligned = 1,    ///< One hashed-bitmap row (Section III).
  kUnaligned = 2,  ///< num_groups * arrays_per_group rows (Section IV).
};

/// Fixed little-endian byte offsets of the encoded digest header. The
/// fault-injection harness (src/testing/fault_injector.h) patches these
/// fields directly to simulate routers that lie about their metadata, and
/// the decoder's structural validation is tested against every one of them.
struct DigestWireLayout {
  /// "DCSE" — also the Hash64 checksum seed.
  static constexpr std::uint32_t kMagic = 0x44435345;
  static constexpr std::size_t kMagicOffset = 0;            ///< u32
  static constexpr std::size_t kRouterIdOffset = 4;         ///< u32
  static constexpr std::size_t kEpochIdOffset = 8;          ///< u64
  static constexpr std::size_t kKindOffset = 16;            ///< u32
  static constexpr std::size_t kNumGroupsOffset = 20;       ///< u32
  static constexpr std::size_t kArraysPerGroupOffset = 24;  ///< u32
  static constexpr std::size_t kNumRowsOffset = 28;         ///< u64
  static constexpr std::size_t kRowBitsOffset = 36;         ///< u64
  static constexpr std::size_t kPacketsOffset = 44;         ///< u64
  static constexpr std::size_t kRawBytesOffset = 52;        ///< u64
  /// Rows start here; the trailing 8 bytes are the checksum.
  static constexpr std::size_t kHeaderBytes = 60;
  static constexpr std::size_t kChecksumBytes = 8;

  /// Decode refuses headers whose claimed dimensions could not have come
  /// from a real deployment, *before* allocating rows — the checksum is not
  /// cryptographic, so a corrupted or hostile sender can reseal a lying
  /// header and must not be able to drive the analysis center out of
  /// memory. 2^28 bits is 64x the paper's 4 Mbit OC-48 bitmap.
  static constexpr std::uint64_t kMaxRowBits = 1ULL << 28;
  /// Upper bound on num_rows * allocated bytes per row (2 GiB).
  static constexpr std::uint64_t kMaxTotalRowBytes = 1ULL << 31;
};

/// \brief The message a router ships to the analysis center each epoch.
///
/// Carries the bitmap rows plus enough metadata for the center to stack them
/// into the analysis matrix, and raw-traffic accounting to audit the paper's
/// >=1000x reduction claim. Encoding is little-endian with a trailing
/// checksum.
struct Digest {
  std::uint32_t router_id = 0;
  std::uint64_t epoch_id = 0;
  DigestKind kind = DigestKind::kAligned;
  /// Unaligned layout; 1 x 1 for aligned digests.
  std::uint32_t num_groups = 1;
  std::uint32_t arrays_per_group = 1;
  /// Rows, group-major for unaligned digests.
  std::vector<BitVector> rows;
  /// Number of packets the sketch recorded this epoch.
  std::uint64_t packets_covered = 0;
  /// On-the-wire bytes of the traffic the sketch observed this epoch.
  std::uint64_t raw_bytes_covered = 0;

  /// Serializes to bytes with the adaptive (kSparse) codec from
  /// sketch/digest_codec.h: each row is stored as the smallest of dense
  /// words, varint-delta set-bit indices, or zero-run RLE — a quarter-full
  /// epoch's bitmap ships at a fraction of its dense size while half-full
  /// rows stay dense.
  [[nodiscard]] std::vector<std::uint8_t> Encode() const;

  /// Parses a digest previously produced by Encode. Validates structure and
  /// checksum.
  [[nodiscard]] static Status Decode(const std::vector<std::uint8_t>& bytes,
                                     Digest* out);

  /// Size of the encoded form (equals Encode().size()).
  [[nodiscard]] std::size_t EncodedSizeBytes() const;

  /// raw_bytes_covered / encoded size — the paper's compression factor.
  /// Returns 0 for the pathological cases (nothing covered, or an empty
  /// encoding) instead of dividing by zero.
  [[nodiscard]] double CompressionFactor() const;

  /// Recomputes and overwrites the trailing checksum of an encoded digest
  /// in place (no-op for buffers shorter than the checksum). The checksum
  /// is an integrity check, not an authenticator: anyone can reseal a
  /// modified message. The fault-injection harness uses this to craft
  /// digests that pass the integrity check but lie in their header fields,
  /// which is exactly what the ingestion layer's structural validation must
  /// survive.
  static void ResealChecksum(std::vector<std::uint8_t>* bytes);

  /// Best-effort read of the claimed router/epoch identity from an encoded
  /// header *without* verifying the checksum — for quarantine accounting of
  /// messages that fail Decode. Returns false when the buffer is too short
  /// or the magic does not match; the values are untrusted either way.
  [[nodiscard]] static bool PeekHeader(const std::vector<std::uint8_t>& bytes,
                         std::uint32_t* router_id, std::uint64_t* epoch_id);

  /// Field-by-field equality, rows included (used by the round-trip
  /// property tests).
  friend bool operator==(const Digest&, const Digest&) = default;
};

}  // namespace dcs

#endif  // DCS_SKETCH_DIGEST_H_
