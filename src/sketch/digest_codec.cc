#include "sketch/digest_codec.h"

#include <cstring>

#include "common/hash.h"
#include "common/logging.h"
#include "obs/metrics.h"

namespace dcs {
namespace {

void AppendU32(std::vector<std::uint8_t>* out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) out->push_back((v >> (8 * i)) & 0xFF);
}

void AppendU64(std::vector<std::uint8_t>* out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) out->push_back((v >> (8 * i)) & 0xFF);
}

void AppendVarint(std::vector<std::uint8_t>* out, std::uint64_t v) {
  while (v >= 0x80) {
    out->push_back(static_cast<std::uint8_t>(v) | 0x80);
    v >>= 7;
  }
  out->push_back(static_cast<std::uint8_t>(v));
}

bool TakeU32(const std::vector<std::uint8_t>& in, std::size_t* pos,
             std::uint32_t* v) {
  if (*pos + 4 > in.size()) return false;
  *v = 0;
  for (std::size_t i = 0; i < 4; ++i) {
    *v |= static_cast<std::uint32_t>(in[*pos + i]) << (8 * i);
  }
  *pos += 4;
  return true;
}

bool TakeU64(const std::vector<std::uint8_t>& in, std::size_t* pos,
             std::uint64_t* v) {
  if (*pos + 8 > in.size()) return false;
  *v = 0;
  for (std::size_t i = 0; i < 8; ++i) {
    *v |= static_cast<std::uint64_t>(in[*pos + i]) << (8 * i);
  }
  *pos += 8;
  return true;
}

bool TakeVarint(const std::vector<std::uint8_t>& in, std::size_t* pos,
                std::uint64_t* v) {
  *v = 0;
  for (int shift = 0; shift < 64; shift += 7) {
    if (*pos >= in.size()) return false;
    const std::uint8_t byte = in[(*pos)++];
    *v |= static_cast<std::uint64_t>(byte & 0x7F) << shift;
    if ((byte & 0x80) == 0) return true;
  }
  return false;  // Over-long varint.
}

// The varint-delta set-bit form (RowWire::kSparse), without its tag byte.
std::vector<std::uint8_t> BuildSparseCandidate(const BitVector& row) {
  std::vector<std::uint8_t> sparse;
  std::vector<std::size_t> indices;
  row.AppendSetBits(&indices);
  AppendVarint(&sparse, indices.size());
  std::size_t prev = 0;
  for (std::size_t idx : indices) {
    AppendVarint(&sparse, idx - prev);  // First gap is the index itself.
    prev = idx;
  }
  return sparse;
}

// The zero-run RLE form (RowWire::kRle), without its tag byte: a sequence
// of (varint zero-word run, varint literal-word run, literal words) tokens
// covering every backing word exactly once. A canonical encoder splits on
// every zero word — a 2-byte token is always cheaper than an 8-byte zero
// literal — so literal runs contain only non-zero words.
std::vector<std::uint8_t> BuildRleCandidate(const BitVector& row) {
  std::vector<std::uint8_t> rle;
  const std::uint64_t* words = row.words();
  const std::size_t num_words = row.num_words();
  std::size_t w = 0;
  while (w < num_words) {
    std::size_t zeros = 0;
    while (w + zeros < num_words && words[w + zeros] == 0) ++zeros;
    std::size_t literals = 0;
    while (w + zeros + literals < num_words && words[w + zeros + literals] != 0) {
      ++literals;
    }
    AppendVarint(&rle, zeros);
    AppendVarint(&rle, literals);
    for (std::size_t i = 0; i < literals; ++i) {
      AppendU64(&rle, words[w + zeros + i]);
    }
    w += zeros + literals;
  }
  return rle;
}

void AppendDenseRow(const BitVector& row, std::vector<std::uint8_t>* out) {
  out->push_back(RowWire::kDense);
  for (std::size_t w = 0; w < row.num_words(); ++w) {
    AppendU64(out, row.words()[w]);
  }
}

// Bits of the last backing word that lie beyond size(); they must be zero
// in any well-formed row (BitVector maintains the invariant, and the
// decoder enforces it so a hostile dense/RLE payload cannot smuggle
// out-of-range bits into weight counts).
bool TailBitsClean(const BitVector& row) {
  const std::size_t tail = row.size() % 64;
  if (tail == 0 || row.num_words() == 0) return true;
  const std::uint64_t mask = ~((1ULL << tail) - 1);
  return (row.words()[row.num_words() - 1] & mask) == 0;
}

Status DecodeDenseRow(const std::vector<std::uint8_t>& in, std::size_t* pos,
                      BitVector* row) {
  for (std::size_t w = 0; w < row->num_words(); ++w) {
    std::uint64_t word = 0;
    if (!TakeU64(in, pos, &word)) {
      return Status::Corruption("truncated dense row");
    }
    row->mutable_words()[w] = word;
  }
  if (!TailBitsClean(*row)) {
    return Status::Corruption("dense row tail garbage");
  }
  return Status::Ok();
}

Status DecodeSparseRow(const std::vector<std::uint8_t>& in, std::size_t* pos,
                       BitVector* row) {
  std::uint64_t count = 0;
  if (!TakeVarint(in, pos, &count)) {
    return Status::Corruption("truncated sparse count");
  }
  if (count > row->size()) return Status::Corruption("sparse count too big");
  std::uint64_t index = 0;
  bool first = true;
  for (std::uint64_t i = 0; i < count; ++i) {
    std::uint64_t gap = 0;
    if (!TakeVarint(in, pos, &gap)) {
      return Status::Corruption("truncated sparse row");
    }
    // After the first index, gaps must step strictly forward without
    // wrapping: gap == 0 is a duplicate index and a gap past size() would
    // overflow index + gap back into range, both only producible by a
    // non-canonical (corrupt) payload.
    if (!first && (gap == 0 || gap > row->size() - index)) {
      return Status::Corruption("sparse gap out of range");
    }
    index = first ? gap : index + gap;
    first = false;
    if (index >= row->size()) {
      return Status::Corruption("sparse index out of range");
    }
    row->Set(index);
  }
  return Status::Ok();
}

Status DecodeRleRow(const std::vector<std::uint8_t>& in, std::size_t* pos,
                    BitVector* row) {
  const std::size_t num_words = row->num_words();
  std::size_t covered = 0;
  while (covered < num_words) {
    std::uint64_t zeros = 0;
    std::uint64_t literals = 0;
    if (!TakeVarint(in, pos, &zeros) || !TakeVarint(in, pos, &literals)) {
      return Status::Corruption("truncated rle token");
    }
    if (zeros == 0 && literals == 0) {
      return Status::Corruption("empty rle token");
    }
    if (zeros > num_words - covered ||
        literals > num_words - covered - zeros) {
      return Status::Corruption("rle run overflows row");
    }
    covered += static_cast<std::size_t>(zeros);  // Words are already zero.
    for (std::uint64_t i = 0; i < literals; ++i) {
      std::uint64_t word = 0;
      if (!TakeU64(in, pos, &word)) {
        return Status::Corruption("truncated rle literal");
      }
      row->mutable_words()[covered++] = word;
    }
  }
  if (!TailBitsClean(*row)) {
    return Status::Corruption("rle row tail garbage");
  }
  return Status::Ok();
}

}  // namespace

const char* DigestCodecName(DigestCodecId codec) {
  switch (codec) {
    case DigestCodecId::kRaw:
      return "raw";
    case DigestCodecId::kSparse:
      return "sparse";
  }
  return "unknown";
}

bool KnownDigestCodecId(std::uint8_t raw) {
  return raw == static_cast<std::uint8_t>(DigestCodecId::kRaw) ||
         raw == static_cast<std::uint8_t>(DigestCodecId::kSparse);
}

void EncodeRow(const BitVector& row, DigestCodecId codec,
               std::vector<std::uint8_t>* out) {
  if (codec == DigestCodecId::kRaw) {
    AppendDenseRow(row, out);
    return;
  }
  const std::size_t dense_bytes = row.num_words() * 8;
  const std::vector<std::uint8_t> sparse = BuildSparseCandidate(row);
  const std::vector<std::uint8_t> rle = BuildRleCandidate(row);
  // Tie-breaks keep pre-RLE encodings stable: sparse only when strictly
  // smaller than dense (the historical rule), RLE only when strictly
  // smaller than both.
  const std::uint8_t tag = rle.size() < dense_bytes && rle.size() < sparse.size()
                               ? RowWire::kRle
                           : sparse.size() < dense_bytes ? RowWire::kSparse
                                                         : RowWire::kDense;
  if (tag == RowWire::kDense) {
    AppendDenseRow(row, out);
  } else {
    out->push_back(tag);
    const std::vector<std::uint8_t>& body =
        tag == RowWire::kRle ? rle : sparse;
    out->insert(out->end(), body.begin(), body.end());
  }
}

Status DecodeRow(const std::vector<std::uint8_t>& in, std::size_t* pos,
                 DigestCodecId codec, BitVector* row) {
  DCS_CHECK(row != nullptr);
  if (*pos >= in.size()) return Status::Corruption("missing row tag");
  const std::uint8_t tag = in[(*pos)++];
  if (codec == DigestCodecId::kRaw && tag != RowWire::kDense) {
    return Status::Corruption("compressed row in raw-codec payload");
  }
  switch (tag) {
    case RowWire::kDense:
      return DecodeDenseRow(in, pos, row);
    case RowWire::kSparse:
      return DecodeSparseRow(in, pos, row);
    case RowWire::kRle:
      return DecodeRleRow(in, pos, row);
    default:
      return Status::Corruption("unknown row tag");
  }
}

std::vector<std::uint8_t> EncodeDigestPayload(const Digest& digest,
                                              DigestCodecId codec) {
  std::vector<std::uint8_t> out;
  const std::size_t row_bytes =
      digest.rows.empty() ? 0 : digest.rows.front().num_words() * 8;
  out.reserve(DigestWireLayout::kHeaderBytes +
              digest.rows.size() * (row_bytes + 1) +
              DigestWireLayout::kChecksumBytes);
  // Field order defines DigestWireLayout; keep the two in sync.
  AppendU32(&out, DigestWireLayout::kMagic);
  AppendU32(&out, digest.router_id);
  AppendU64(&out, digest.epoch_id);
  AppendU32(&out, static_cast<std::uint32_t>(digest.kind));
  AppendU32(&out, digest.num_groups);
  AppendU32(&out, digest.arrays_per_group);
  AppendU64(&out, digest.rows.size());
  AppendU64(&out, digest.rows.empty() ? 0 : digest.rows.front().size());
  AppendU64(&out, digest.packets_covered);
  AppendU64(&out, digest.raw_bytes_covered);
  for (const BitVector& row : digest.rows) {
    EncodeRow(row, codec, &out);
  }
  AppendU64(&out,
            Hash64(out.data(), out.size(), /*seed=*/DigestWireLayout::kMagic));
  // NOTE: EncodedSizeBytes() re-encodes, so these also count its calls — a
  // visible hint that callers doing size accounting pay the full encode.
  ObsCounter("digest.encode.calls").Increment();
  ObsCounter("digest.encode.bytes").Add(out.size());
  return out;
}

Status DecodeDigestPayload(const std::vector<std::uint8_t>& bytes,
                           DigestCodecId codec, Digest* out) {
  DCS_CHECK(out != nullptr);
  if (bytes.size() < 8) return Status::Corruption("digest too short");
  const std::uint64_t stored_checksum = [&] {
    std::uint64_t v = 0;
    std::memcpy(&v, bytes.data() + bytes.size() - 8, 8);
    return v;
  }();
  const std::uint64_t computed =
      Hash64(bytes.data(), bytes.size() - 8, /*seed=*/DigestWireLayout::kMagic);
  if (stored_checksum != computed) {
    ObsCounter("digest.decode.checksum_failures").Increment();
    return Status::Corruption("digest checksum mismatch");
  }
  ObsCounter("digest.decode.calls").Increment();
  ObsCounter("digest.decode.bytes").Add(bytes.size());

  std::size_t pos = 0;
  std::uint32_t magic = 0;
  std::uint32_t kind_raw = 0;
  std::uint64_t num_rows = 0;
  std::uint64_t row_bits = 0;
  Digest digest;
  if (!TakeU32(bytes, &pos, &magic) ||
      !TakeU32(bytes, &pos, &digest.router_id) ||
      !TakeU64(bytes, &pos, &digest.epoch_id) ||
      !TakeU32(bytes, &pos, &kind_raw) ||
      !TakeU32(bytes, &pos, &digest.num_groups) ||
      !TakeU32(bytes, &pos, &digest.arrays_per_group) ||
      !TakeU64(bytes, &pos, &num_rows) || !TakeU64(bytes, &pos, &row_bits) ||
      !TakeU64(bytes, &pos, &digest.packets_covered) ||
      !TakeU64(bytes, &pos, &digest.raw_bytes_covered)) {
    return Status::Corruption("truncated digest header");
  }
  if (magic != DigestWireLayout::kMagic) {
    return Status::Corruption("bad digest magic");
  }
  if (kind_raw != static_cast<std::uint32_t>(DigestKind::kAligned) &&
      kind_raw != static_cast<std::uint32_t>(DigestKind::kUnaligned)) {
    return Status::Corruption("unknown digest kind");
  }
  digest.kind = static_cast<DigestKind>(kind_raw);

  // Dimension sanity bounds (DigestWireLayout): the checksum is not
  // cryptographic, so a resealed lying header must not be able to drive
  // allocation. Every row costs at least its 1-byte tag on the wire, and the
  // claimed row size is capped before any BitVector is constructed.
  if (num_rows > bytes.size()) {
    return Status::Corruption("row count exceeds message size");
  }
  if (row_bits > DigestWireLayout::kMaxRowBits) {
    return Status::Corruption("row size implausibly large");
  }
  const std::uint64_t row_alloc_bytes = ((row_bits + 63) / 64) * 8;
  if (row_alloc_bytes != 0 &&
      num_rows > DigestWireLayout::kMaxTotalRowBytes / row_alloc_bytes) {
    return Status::Corruption("digest dimensions implausibly large");
  }

  digest.rows.reserve(num_rows);
  for (std::uint64_t r = 0; r < num_rows; ++r) {
    BitVector row(row_bits);
    DCS_RETURN_IF_ERROR(DecodeRow(bytes, &pos, codec, &row));
    digest.rows.push_back(std::move(row));
  }
  if (pos + 8 != bytes.size()) {
    return Status::Corruption("digest trailing bytes");
  }
  *out = std::move(digest);
  return Status::Ok();
}

std::size_t RawPayloadSizeBytes(const Digest& digest) {
  std::size_t rows = 0;
  for (const BitVector& row : digest.rows) {
    rows += 1 + row.num_words() * 8;  // Tag byte + dense words.
  }
  return DigestWireLayout::kHeaderBytes + rows +
         DigestWireLayout::kChecksumBytes;
}

DigestCodecId EncodeDigestPayloadAuto(const Digest& digest,
                                      std::vector<std::uint8_t>* out) {
  DCS_CHECK(out != nullptr);
  std::vector<std::uint8_t> sparse =
      EncodeDigestPayload(digest, DigestCodecId::kSparse);
  const std::size_t raw_size = RawPayloadSizeBytes(digest);
  // Keep the compressed form only when it pays for itself on the WAN: a
  // saving under 1/16 of the dense size is not worth the slower decode.
  if (sparse.size() + raw_size / 16 <= raw_size) {
    *out = std::move(sparse);
    return DigestCodecId::kSparse;
  }
  *out = EncodeDigestPayload(digest, DigestCodecId::kRaw);
  return DigestCodecId::kRaw;
}

}  // namespace dcs
