#ifndef DCS_SKETCH_BITMAP_SKETCH_H_
#define DCS_SKETCH_BITMAP_SKETCH_H_

#include <cstddef>
#include <cstdint>
#include <span>

#include "common/bit_vector.h"
#include "net/packet.h"

namespace dcs {

/// Configuration of the aligned-case online streaming module (Fig 3).
struct BitmapSketchOptions {
  /// Bitmap width. The paper sizes it at 4 Mbit so one OC-48 second
  /// (~2.4M packets) fills it to about half (Bloom-filter property [4]).
  std::size_t num_bits = 4u << 20;
  /// Number of leading payload bytes hashed — the paper's
  /// range(pkt.content, 0, len).
  std::size_t prefix_len = 64;
  /// Hash seed; all routers in a deployment must share it, otherwise their
  /// bitmaps are uncorrelated and no pattern can form.
  std::uint64_t hash_seed = 0x5EED5EED;
  /// Packets with an empty payload (pure ACKs) are skipped, per the paper.
  std::size_t min_payload_bytes = 1;
};

/// \brief Aligned-case streaming module: a hashed bitmap of payload prefixes.
///
/// Update cost is one hash plus one bit set per packet, matching the paper's
/// line-speed requirement. When the bitmap reaches half 1s the measurement
/// epoch ends and the bitmap ships to the analysis center as one matrix row.
class BitmapSketch {
 public:
  explicit BitmapSketch(const BitmapSketchOptions& options);

  /// Processes one packet (lines 4-6 of Fig 3). Returns true if the packet
  /// was recorded (had enough payload).
  bool Update(const Packet& packet);

  /// Processes a run of packets, equivalent to calling Update on each in
  /// order but with the hashing batched ahead of the bit sets, so the
  /// hash's data-dependent latency overlaps across packets instead of
  /// serializing behind each bitmap probe. Same skip rule, same counters,
  /// same final bitmap. Returns the number of packets recorded.
  std::size_t UpdateBatch(std::span<const Packet> packets);

  /// Number of packets recorded since the last Reset.
  std::uint64_t packets_recorded() const { return packets_recorded_; }

  /// Current fraction of 1 bits. NOTE: O(num_bits/64); intended for epoch
  /// boundaries, not per packet.
  double FillRatio() const { return bits_.FillRatio(); }

  /// True once the bitmap is at least half full — the paper's epoch-end
  /// condition. Tracked incrementally (O(1)).
  bool IsHalfFull() const { return ones_ * 2 >= bits_.size(); }

  /// The bitmap (one matrix row for the analysis center).
  const BitVector& bits() const { return bits_; }

  /// Packets rejected for not carrying enough payload since the last Reset.
  std::uint64_t packets_skipped() const { return packets_skipped_; }

  /// Clears the bitmap for the next measurement epoch.
  void Reset();

  /// Flushes this epoch's counters (packets hashed/skipped, bits set, fill
  /// ratio) to the global metrics registry under sketch.aligned.*. Intended
  /// at epoch boundaries; a no-op while observability is disabled.
  void PublishEpochMetrics() const;

  const BitmapSketchOptions& options() const { return options_; }

 private:
  BitmapSketchOptions options_;
  BitVector bits_;
  std::uint64_t packets_recorded_ = 0;
  std::uint64_t packets_skipped_ = 0;
  std::size_t ones_ = 0;
};

}  // namespace dcs

#endif  // DCS_SKETCH_BITMAP_SKETCH_H_
