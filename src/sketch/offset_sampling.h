#ifndef DCS_SKETCH_OFFSET_SAMPLING_H_
#define DCS_SKETCH_OFFSET_SAMPLING_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/bit_vector.h"
#include "common/rng.h"
#include "net/packet.h"

namespace dcs {

/// Configuration of the unaligned-case offset sampling (Fig 8).
struct OffsetSamplingOptions {
  /// Number of bit arrays (and offsets per size class per array). The paper
  /// fixes 10 arrays targeting 536-byte payloads.
  std::size_t num_arrays = 10;
  /// Bits per array (1,024 after flow splitting in the paper).
  std::size_t array_bits = 1024;
  /// Payload period small-packet offsets are drawn from — the MSS (536).
  /// Offsets are uniform in [0, offset_period - fragment_len].
  std::size_t offset_period = 536;
  /// Period for large packets (>= large_payload_bytes): content behind a
  /// variable prefix shifts modulo the *large* MSS, so those offsets must
  /// span it. The paper compensates the bigger modulus with ~sqrt(delta)
  /// more offsets per array (two here, delta ~ 2.7).
  std::size_t large_offset_period = 1460;
  /// Bytes hashed per sampled fragment.
  std::size_t fragment_len = 32;
  /// Packets below this payload size are skipped (the paper skips < 500 B).
  std::size_t min_payload_bytes = 500;
  /// Payloads at or above this size use two offsets per array (the paper:
  /// "for packets 1000 bytes and above, 20 different offsets").
  std::size_t large_payload_bytes = 1000;
  /// Hash seed shared across the deployment.
  std::uint64_t hash_seed = 0x0FF5E75;
};

/// \brief One group's offset-sampling arrays.
///
/// Each router draws its offsets once per epoch; every qualifying packet
/// contributes one fragment hash per (array, offset). Two routers that saw
/// the same content with prefix lengths l1, l2 produce identical index
/// sequences in arrays (i, j) whenever (l1 - l2) = (a_i - b_j) mod 536 —
/// probability amplified ~k^2 by using k offsets (Section IV-A).
class OffsetSamplingArrays {
 public:
  /// Draws offsets with `rng` (per-router randomness). All groups of one
  /// router must share the same offsets; construct once and CloneLayout for
  /// the other groups.
  OffsetSamplingArrays(const OffsetSamplingOptions& options, Rng* rng);

  /// A new instance with the same options and offsets but empty arrays.
  OffsetSamplingArrays CloneLayout() const;

  /// Processes one packet. Returns true if recorded (payload >= minimum).
  bool Update(const Packet& packet);

  /// The arrays; row i is the bit array of offset index i.
  const std::vector<BitVector>& arrays() const { return arrays_; }

  /// Offsets used for small packets (one per array).
  const std::vector<std::uint32_t>& small_offsets() const {
    return small_offsets_;
  }

  /// Offsets used for large packets (two per array).
  const std::vector<std::uint32_t>& large_offsets() const {
    return large_offsets_;
  }

  /// Packets recorded since construction/Reset.
  std::uint64_t packets_recorded() const { return packets_recorded_; }

  /// Clears the arrays for the next epoch (offsets are kept — the paper
  /// fixes them for a measurement epoch).
  void Reset();

  const OffsetSamplingOptions& options() const { return options_; }

 private:
  OffsetSamplingArrays(const OffsetSamplingOptions& options,
                       std::vector<std::uint32_t> small_offsets,
                       std::vector<std::uint32_t> large_offsets);

  OffsetSamplingOptions options_;
  std::vector<std::uint32_t> small_offsets_;
  std::vector<std::uint32_t> large_offsets_;
  std::vector<BitVector> arrays_;
  std::uint64_t packets_recorded_ = 0;
};

}  // namespace dcs

#endif  // DCS_SKETCH_OFFSET_SAMPLING_H_
