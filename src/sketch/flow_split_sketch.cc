#include "sketch/flow_split_sketch.h"

#include "common/logging.h"
#include "obs/metrics.h"

namespace dcs {

FlowSplitSketch::FlowSplitSketch(const FlowSplitOptions& options, Rng* rng)
    : options_(options) {
  DCS_CHECK(options.num_groups > 0);
  DCS_CHECK(rng != nullptr);
  groups_.reserve(options.num_groups);
  OffsetSamplingArrays prototype(options.offset_options, rng);
  for (std::size_t g = 0; g + 1 < options.num_groups; ++g) {
    groups_.push_back(prototype.CloneLayout());
  }
  groups_.push_back(std::move(prototype));
}

std::size_t FlowSplitSketch::GroupOf(const FlowLabel& flow) const {
  return HashFlowLabel(flow, options_.flow_hash_seed) % groups_.size();
}

bool FlowSplitSketch::Update(const Packet& packet) {
  const bool recorded = groups_[GroupOf(packet.flow)].Update(packet);
  if (recorded) {
    ++packets_recorded_;
  } else {
    ++packets_skipped_;
  }
  return recorded;
}

const OffsetSamplingArrays& FlowSplitSketch::group(std::size_t g) const {
  DCS_CHECK(g < groups_.size());
  return groups_[g];
}

BitMatrix FlowSplitSketch::ToMatrix() const {
  BitMatrix matrix;
  for (const OffsetSamplingArrays& group : groups_) {
    for (const BitVector& array : group.arrays()) {
      matrix.AppendRow(array);
    }
  }
  return matrix;
}

void FlowSplitSketch::Reset() {
  for (OffsetSamplingArrays& group : groups_) group.Reset();
  packets_recorded_ = 0;
  packets_skipped_ = 0;
}

void FlowSplitSketch::PublishEpochMetrics() const {
  if (!ObsEnabled()) return;
  static Counter& hashed = ObsCounter("sketch.unaligned.packets_hashed");
  static Counter& skipped = ObsCounter("sketch.unaligned.packets_skipped");
  static Counter& bits_set = ObsCounter("sketch.unaligned.bits_set");
  static Counter& epochs = ObsCounter("sketch.unaligned.epochs");
  static Gauge& fill = ObsGauge("sketch.unaligned.fill_ratio");
  std::uint64_t ones = 0;
  std::uint64_t total_bits = 0;
  for (const OffsetSamplingArrays& group : groups_) {
    for (const BitVector& array : group.arrays()) {
      ones += array.CountOnes();
      total_bits += array.size();
    }
  }
  hashed.Add(packets_recorded_);
  skipped.Add(packets_skipped_);
  bits_set.Add(ones);
  epochs.Increment();
  fill.Set(total_bits == 0
               ? 0.0
               : static_cast<double>(ones) / static_cast<double>(total_bits));
}

}  // namespace dcs
