#include "sketch/flow_split_sketch.h"

#include "common/logging.h"

namespace dcs {

FlowSplitSketch::FlowSplitSketch(const FlowSplitOptions& options, Rng* rng)
    : options_(options) {
  DCS_CHECK(options.num_groups > 0);
  DCS_CHECK(rng != nullptr);
  groups_.reserve(options.num_groups);
  OffsetSamplingArrays prototype(options.offset_options, rng);
  for (std::size_t g = 0; g + 1 < options.num_groups; ++g) {
    groups_.push_back(prototype.CloneLayout());
  }
  groups_.push_back(std::move(prototype));
}

std::size_t FlowSplitSketch::GroupOf(const FlowLabel& flow) const {
  return HashFlowLabel(flow, options_.flow_hash_seed) % groups_.size();
}

bool FlowSplitSketch::Update(const Packet& packet) {
  const bool recorded = groups_[GroupOf(packet.flow)].Update(packet);
  if (recorded) ++packets_recorded_;
  return recorded;
}

const OffsetSamplingArrays& FlowSplitSketch::group(std::size_t g) const {
  DCS_CHECK(g < groups_.size());
  return groups_[g];
}

BitMatrix FlowSplitSketch::ToMatrix() const {
  BitMatrix matrix;
  for (const OffsetSamplingArrays& group : groups_) {
    for (const BitVector& array : group.arrays()) {
      matrix.AppendRow(array);
    }
  }
  return matrix;
}

void FlowSplitSketch::Reset() {
  for (OffsetSamplingArrays& group : groups_) group.Reset();
  packets_recorded_ = 0;
}

}  // namespace dcs
