#ifndef DCS_SKETCH_DIGEST_CODEC_H_
#define DCS_SKETCH_DIGEST_CODEC_H_

#include <cstdint>
#include <vector>

#include "common/bit_vector.h"
#include "common/status.h"
#include "sketch/digest.h"

namespace dcs {

/// Payload codec negotiated per frame by the distributed digest plane
/// (docs/DISTRIBUTED.md). The codec is an *encoder-side* contract: both
/// codecs serialize the identical header (DigestWireLayout) and trailing
/// checksum, and differ only in how bitmap rows are written. Decoding is
/// strict — a payload that declares kRaw but carries compressed rows is
/// malformed and must be rejected, so a lying codec byte cannot smuggle a
/// different parser onto the hot path.
enum class DigestCodecId : std::uint8_t {
  /// Every row stored dense (raw 64-bit words). Trivially correct, fixed
  /// size, and the oracle the sparse codec is differentially tested
  /// against.
  kRaw = 0,
  /// Per-row smallest of {dense words, varint-delta set-bit indices,
  /// zero-run RLE over words}. Near-empty early-epoch bitmaps ship at a
  /// small fraction of their dense size (>= 4x at <= 1% fill, see
  /// EXPERIMENTS.md); rows past the break-even point fall back to dense.
  kSparse = 1,
};

/// "raw" / "sparse" for logs and metrics.
const char* DigestCodecName(DigestCodecId codec);

/// True when `raw` is a known DigestCodecId value (frame validation).
bool KnownDigestCodecId(std::uint8_t raw);

/// Per-row encoding tags shared by every payload codec (and by the digest's
/// own storage format — Digest::Encode emits kSparse payloads).
struct RowWire {
  static constexpr std::uint8_t kDense = 0;   ///< row words verbatim.
  static constexpr std::uint8_t kSparse = 1;  ///< varint count + index gaps.
  static constexpr std::uint8_t kRle = 2;     ///< (zero-run, literal-run)*.
};

/// Serializes `digest` as a self-contained payload (header + rows +
/// checksum) with the given codec. The output of both codecs decodes to the
/// identical Digest.
[[nodiscard]] std::vector<std::uint8_t> EncodeDigestPayload(
    const Digest& digest, DigestCodecId codec);

/// Parses a payload produced by EncodeDigestPayload with the same codec.
/// Validates the checksum, the structural header bounds (DigestWireLayout —
/// a resealed lying header must not drive allocation), and that every row
/// uses only encodings the declared codec is allowed to emit (kRaw => dense
/// rows only).
[[nodiscard]] Status DecodeDigestPayload(const std::vector<std::uint8_t>& bytes,
                                         DigestCodecId codec, Digest* out);

/// The payload size EncodeDigestPayload(digest, kRaw) would produce,
/// without encoding — the dense wire size the sparse codec's savings are
/// measured against.
[[nodiscard]] std::size_t RawPayloadSizeBytes(const Digest& digest);

/// Per-frame negotiation: encodes with kSparse, and keeps it only when it
/// saves at least 1/16 of the dense size (otherwise the fixed-size raw form
/// wins — its decode path is a straight word copy). Returns the chosen
/// codec and fills *out with the matching payload.
DigestCodecId EncodeDigestPayloadAuto(const Digest& digest,
                                      std::vector<std::uint8_t>* out);

/// Appends one row with the codec's row policy: kRaw always writes the
/// dense form; kSparse writes the smallest of the three encodings (ties
/// prefer sparse over RLE, dense over both, so pre-RLE encodings are
/// reproduced byte-for-byte).
void EncodeRow(const BitVector& row, DigestCodecId codec,
               std::vector<std::uint8_t>* out);

/// Decodes one row written by EncodeRow into `row` (which carries the
/// expected bit count). Rejects tags outside the codec's policy, indices or
/// runs beyond the row bounds, and dense/RLE words with garbage past the
/// last valid bit.
[[nodiscard]] Status DecodeRow(const std::vector<std::uint8_t>& in,
                               std::size_t* pos, DigestCodecId codec,
                               BitVector* row);

}  // namespace dcs

#endif  // DCS_SKETCH_DIGEST_CODEC_H_
