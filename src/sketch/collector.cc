#include "sketch/collector.h"

#include <span>

#include "obs/metrics.h"
#include "obs/stage_timer.h"

namespace dcs {

AlignedCollector::AlignedCollector(std::uint32_t router_id,
                                   const BitmapSketchOptions& options)
    : router_id_(router_id), sketch_(options) {}

Digest AlignedCollector::TakeDigest(std::uint64_t raw_bytes) {
  sketch_.PublishEpochMetrics();
  ObsCounter("collector.aligned.epochs").Increment();
  ObsCounter("collector.aligned.raw_bytes").Add(raw_bytes);
  Digest digest;
  digest.router_id = router_id_;
  digest.epoch_id = epoch_++;
  digest.kind = DigestKind::kAligned;
  digest.num_groups = 1;
  digest.arrays_per_group = 1;
  digest.rows.push_back(sketch_.bits());
  digest.packets_covered = sketch_.packets_recorded();
  digest.raw_bytes_covered = raw_bytes;
  sketch_.Reset();
  return digest;
}

Digest AlignedCollector::ProcessEpoch(const PacketTrace::EpochView& epoch) {
  ScopedStageTimer timer("collect_aligned");
  // Fixed epoch boundary, so the whole view can go through the batched
  // update (same bitmap and counters as per-packet, hashes pipelined).
  // The adaptive path below stays per-packet: its epoch boundary is the
  // IsHalfFull check, which must see every single update.
  sketch_.UpdateBatch(std::span<const Packet>(epoch.begin(), epoch.size()));
  std::uint64_t raw_bytes = 0;
  for (const Packet& pkt : epoch) raw_bytes += pkt.wire_bytes();
  return TakeDigest(raw_bytes);
}

std::vector<Digest> AlignedCollector::ProcessTraceAdaptive(
    const PacketTrace& trace) {
  std::vector<Digest> digests;
  std::uint64_t raw_bytes = 0;
  for (const Packet& pkt : trace) {
    sketch_.Update(pkt);
    raw_bytes += pkt.wire_bytes();
    if (sketch_.IsHalfFull()) {
      digests.push_back(TakeDigest(raw_bytes));
      raw_bytes = 0;
    }
  }
  if (sketch_.packets_recorded() > 0) {
    digests.push_back(TakeDigest(raw_bytes));
  }
  return digests;
}

UnalignedCollector::UnalignedCollector(std::uint32_t router_id,
                                       const FlowSplitOptions& options,
                                       Rng* rng)
    : router_id_(router_id), sketch_(options, rng) {}

Digest UnalignedCollector::ProcessEpoch(
    const PacketTrace::EpochView& epoch) {
  ScopedStageTimer timer("collect_unaligned");
  std::uint64_t raw_bytes = 0;
  for (const Packet& pkt : epoch) {
    sketch_.Update(pkt);
    raw_bytes += pkt.wire_bytes();
  }
  sketch_.PublishEpochMetrics();
  ObsCounter("collector.unaligned.epochs").Increment();
  ObsCounter("collector.unaligned.raw_bytes").Add(raw_bytes);
  Digest digest;
  digest.router_id = router_id_;
  digest.epoch_id = epoch_++;
  digest.kind = DigestKind::kUnaligned;
  digest.num_groups = static_cast<std::uint32_t>(sketch_.num_groups());
  digest.arrays_per_group = static_cast<std::uint32_t>(
      sketch_.options().offset_options.num_arrays);
  BitMatrix matrix = sketch_.ToMatrix();
  digest.rows.reserve(matrix.rows());
  for (std::size_t r = 0; r < matrix.rows(); ++r) {
    digest.rows.push_back(matrix.row(r));
  }
  digest.packets_covered = sketch_.packets_recorded();
  digest.raw_bytes_covered = raw_bytes;
  sketch_.Reset();
  return digest;
}

}  // namespace dcs
