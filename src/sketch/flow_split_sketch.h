#ifndef DCS_SKETCH_FLOW_SPLIT_SKETCH_H_
#define DCS_SKETCH_FLOW_SPLIT_SKETCH_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/bit_matrix.h"
#include "common/rng.h"
#include "net/packet.h"
#include "sketch/offset_sampling.h"

namespace dcs {

/// Configuration of the unaligned-case flow splitting (Fig 9).
struct FlowSplitOptions {
  /// Number of groups the traffic is hash-split into. The paper splits a
  /// 131,072-bit budget into 128 groups of 10 arrays x 1,024 bits.
  std::size_t num_groups = 128;
  /// Hash seed for the flow-label split (can differ per router; grouping is
  /// a local concern).
  std::uint64_t flow_hash_seed = 0xF10757;
  /// Per-group offset sampling configuration.
  OffsetSamplingOptions offset_options;
};

/// \brief Unaligned-case streaming module: flow splitting over offset
/// sampling (Fig 9).
///
/// Packets of one flow always land in the same group, so every packet of a
/// content instance marks the same group's arrays — this is what
/// concentrates the content's ~g common indices into one 1,024-bit array and
/// magnifies the signal by an order of magnitude (Section IV-A). All groups
/// share the router's per-epoch offsets.
class FlowSplitSketch {
 public:
  /// Draws the router's offsets from `rng`.
  FlowSplitSketch(const FlowSplitOptions& options, Rng* rng);

  /// Routes one packet to its group (line 3 of Fig 9) and updates that
  /// group's arrays. Returns true if recorded.
  bool Update(const Packet& packet);

  /// Group index a packet's flow maps to.
  std::size_t GroupOf(const FlowLabel& flow) const;

  std::size_t num_groups() const { return groups_.size(); }

  /// Arrays of one group.
  const OffsetSamplingArrays& group(std::size_t g) const;

  /// Flattens all groups into a (num_groups * num_arrays) x array_bits
  /// matrix — the digest rows shipped to the analysis center. Row ordering
  /// is group-major: row g * num_arrays + a is array a of group g.
  BitMatrix ToMatrix() const;

  /// Packets recorded since construction/Reset.
  std::uint64_t packets_recorded() const { return packets_recorded_; }

  /// Packets rejected (payload below the offset-sampling minimum) since
  /// construction/Reset.
  std::uint64_t packets_skipped() const { return packets_skipped_; }

  /// Clears every group for the next epoch (offsets kept).
  void Reset();

  /// Flushes this epoch's counters (packets hashed/skipped, bits set, mean
  /// array fill) to the global metrics registry under sketch.unaligned.*.
  /// Costs one pass over the arrays, so call at epoch boundaries only;
  /// a no-op while observability is disabled.
  void PublishEpochMetrics() const;

  const FlowSplitOptions& options() const { return options_; }

 private:
  FlowSplitOptions options_;
  std::vector<OffsetSamplingArrays> groups_;
  std::uint64_t packets_recorded_ = 0;
  std::uint64_t packets_skipped_ = 0;
};

}  // namespace dcs

#endif  // DCS_SKETCH_FLOW_SPLIT_SKETCH_H_
