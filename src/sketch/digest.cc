#include "sketch/digest.h"

#include "common/hash.h"
#include "common/logging.h"
#include "sketch/digest_codec.h"

namespace dcs {

// The payload serialization itself (header layout, adaptive row encodings,
// structural bounds, checksum) lives in sketch/digest_codec.cc, shared with
// the network frame plane. A digest's native storage format is the kSparse
// codec — the historical adaptive encoding.

std::vector<std::uint8_t> Digest::Encode() const {
  return EncodeDigestPayload(*this, DigestCodecId::kSparse);
}

Status Digest::Decode(const std::vector<std::uint8_t>& bytes, Digest* out) {
  return DecodeDigestPayload(bytes, DigestCodecId::kSparse, out);
}

std::size_t Digest::EncodedSizeBytes() const { return Encode().size(); }

double Digest::CompressionFactor() const {
  if (raw_bytes_covered == 0) return 0.0;
  const std::size_t encoded = EncodedSizeBytes();
  if (encoded == 0) return 0.0;
  return static_cast<double>(raw_bytes_covered) /
         static_cast<double>(encoded);
}

void Digest::ResealChecksum(std::vector<std::uint8_t>* bytes) {
  DCS_CHECK(bytes != nullptr);
  if (bytes->size() < DigestWireLayout::kChecksumBytes) return;
  const std::uint64_t checksum =
      Hash64(bytes->data(), bytes->size() - DigestWireLayout::kChecksumBytes,
             /*seed=*/DigestWireLayout::kMagic);
  std::uint8_t* tail =
      bytes->data() + bytes->size() - DigestWireLayout::kChecksumBytes;
  for (std::size_t i = 0; i < DigestWireLayout::kChecksumBytes; ++i) {
    tail[i] = static_cast<std::uint8_t>(checksum >> (8 * i));
  }
}

bool Digest::PeekHeader(const std::vector<std::uint8_t>& bytes,
                        std::uint32_t* router_id, std::uint64_t* epoch_id) {
  if (bytes.size() < DigestWireLayout::kEpochIdOffset + 8) return false;
  const auto read_u32 = [&bytes](std::size_t at) {
    std::uint32_t v = 0;
    for (std::size_t i = 0; i < 4; ++i) {
      v |= static_cast<std::uint32_t>(bytes[at + i]) << (8 * i);
    }
    return v;
  };
  if (read_u32(DigestWireLayout::kMagicOffset) != DigestWireLayout::kMagic) {
    return false;
  }
  if (router_id != nullptr) {
    *router_id = read_u32(DigestWireLayout::kRouterIdOffset);
  }
  if (epoch_id != nullptr) {
    std::uint64_t epoch = 0;
    for (std::size_t i = 0; i < 8; ++i) {
      epoch |= static_cast<std::uint64_t>(
                   bytes[DigestWireLayout::kEpochIdOffset + i])
               << (8 * i);
    }
    *epoch_id = epoch;
  }
  return true;
}

}  // namespace dcs
