#include "sketch/digest.h"

#include <cstring>

#include "common/hash.h"
#include "common/logging.h"
#include "obs/metrics.h"

namespace dcs {
namespace {

constexpr std::uint32_t kDigestMagic = 0x44435345;  // "DCSE" (v2: adaptive).

// Per-row encodings.
constexpr std::uint8_t kRowDense = 0;
constexpr std::uint8_t kRowSparse = 1;

void AppendU32(std::vector<std::uint8_t>* out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) out->push_back((v >> (8 * i)) & 0xFF);
}

void AppendU64(std::vector<std::uint8_t>* out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) out->push_back((v >> (8 * i)) & 0xFF);
}

void AppendVarint(std::vector<std::uint8_t>* out, std::uint64_t v) {
  while (v >= 0x80) {
    out->push_back(static_cast<std::uint8_t>(v) | 0x80);
    v >>= 7;
  }
  out->push_back(static_cast<std::uint8_t>(v));
}

bool TakeU32(const std::vector<std::uint8_t>& in, std::size_t* pos,
             std::uint32_t* v) {
  if (*pos + 4 > in.size()) return false;
  *v = 0;
  for (std::size_t i = 0; i < 4; ++i) {
    *v |= static_cast<std::uint32_t>(in[*pos + i]) << (8 * i);
  }
  *pos += 4;
  return true;
}

bool TakeU64(const std::vector<std::uint8_t>& in, std::size_t* pos,
             std::uint64_t* v) {
  if (*pos + 8 > in.size()) return false;
  *v = 0;
  for (std::size_t i = 0; i < 8; ++i) {
    *v |= static_cast<std::uint64_t>(in[*pos + i]) << (8 * i);
  }
  *pos += 8;
  return true;
}

bool TakeVarint(const std::vector<std::uint8_t>& in, std::size_t* pos,
                std::uint64_t* v) {
  *v = 0;
  for (int shift = 0; shift < 64; shift += 7) {
    if (*pos >= in.size()) return false;
    const std::uint8_t byte = in[(*pos)++];
    *v |= static_cast<std::uint64_t>(byte & 0x7F) << shift;
    if ((byte & 0x80) == 0) return true;
  }
  return false;  // Over-long varint.
}

// Appends one row, choosing the smaller of the dense and sparse forms.
void EncodeRow(const BitVector& row, std::vector<std::uint8_t>* out) {
  const std::size_t dense_bytes = row.num_words() * 8;

  // Build the sparse candidate (varint count + varint gaps).
  std::vector<std::uint8_t> sparse;
  std::vector<std::size_t> indices;
  row.AppendSetBits(&indices);
  AppendVarint(&sparse, indices.size());
  std::size_t prev = 0;
  for (std::size_t idx : indices) {
    AppendVarint(&sparse, idx - prev);  // First gap is the index itself.
    prev = idx;
  }

  if (sparse.size() < dense_bytes) {
    out->push_back(kRowSparse);
    out->insert(out->end(), sparse.begin(), sparse.end());
  } else {
    out->push_back(kRowDense);
    for (std::size_t w = 0; w < row.num_words(); ++w) {
      AppendU64(out, row.words()[w]);
    }
  }
}

Status DecodeRow(const std::vector<std::uint8_t>& in, std::size_t* pos,
                 BitVector* row) {
  if (*pos >= in.size()) return Status::Corruption("missing row tag");
  const std::uint8_t tag = in[(*pos)++];
  if (tag == kRowDense) {
    for (std::size_t w = 0; w < row->num_words(); ++w) {
      std::uint64_t word = 0;
      if (!TakeU64(in, pos, &word)) {
        return Status::Corruption("truncated dense row");
      }
      row->mutable_words()[w] = word;
    }
    return Status::Ok();
  }
  if (tag != kRowSparse) return Status::Corruption("unknown row tag");
  std::uint64_t count = 0;
  if (!TakeVarint(in, pos, &count)) {
    return Status::Corruption("truncated sparse count");
  }
  if (count > row->size()) return Status::Corruption("sparse count too big");
  std::uint64_t index = 0;
  bool first = true;
  for (std::uint64_t i = 0; i < count; ++i) {
    std::uint64_t gap = 0;
    if (!TakeVarint(in, pos, &gap)) {
      return Status::Corruption("truncated sparse row");
    }
    index = first ? gap : index + gap;
    first = false;
    if (index >= row->size()) {
      return Status::Corruption("sparse index out of range");
    }
    row->Set(index);
  }
  return Status::Ok();
}

}  // namespace

std::vector<std::uint8_t> Digest::Encode() const {
  std::vector<std::uint8_t> out;
  const std::size_t row_bytes =
      rows.empty() ? 0 : rows.front().num_words() * 8;
  out.reserve(64 + rows.size() * (row_bytes + 1) + 8);
  // Field order defines DigestWireLayout; keep the two in sync.
  AppendU32(&out, kDigestMagic);
  AppendU32(&out, router_id);
  AppendU64(&out, epoch_id);
  AppendU32(&out, static_cast<std::uint32_t>(kind));
  AppendU32(&out, num_groups);
  AppendU32(&out, arrays_per_group);
  AppendU64(&out, rows.size());
  AppendU64(&out, rows.empty() ? 0 : rows.front().size());
  AppendU64(&out, packets_covered);
  AppendU64(&out, raw_bytes_covered);
  for (const BitVector& row : rows) {
    EncodeRow(row, &out);
  }
  AppendU64(&out, Hash64(out.data(), out.size(), /*seed=*/kDigestMagic));
  // NOTE: EncodedSizeBytes() re-encodes, so these also count its calls —
  // a visible hint that callers doing size accounting pay the full encode.
  ObsCounter("digest.encode.calls").Increment();
  ObsCounter("digest.encode.bytes").Add(out.size());
  return out;
}

std::size_t Digest::EncodedSizeBytes() const { return Encode().size(); }

double Digest::CompressionFactor() const {
  if (raw_bytes_covered == 0) return 0.0;
  const std::size_t encoded = EncodedSizeBytes();
  if (encoded == 0) return 0.0;
  return static_cast<double>(raw_bytes_covered) /
         static_cast<double>(encoded);
}

void Digest::ResealChecksum(std::vector<std::uint8_t>* bytes) {
  DCS_CHECK(bytes != nullptr);
  if (bytes->size() < DigestWireLayout::kChecksumBytes) return;
  const std::uint64_t checksum =
      Hash64(bytes->data(), bytes->size() - DigestWireLayout::kChecksumBytes,
             /*seed=*/kDigestMagic);
  std::uint8_t* tail =
      bytes->data() + bytes->size() - DigestWireLayout::kChecksumBytes;
  for (std::size_t i = 0; i < DigestWireLayout::kChecksumBytes; ++i) {
    tail[i] = static_cast<std::uint8_t>(checksum >> (8 * i));
  }
}

bool Digest::PeekHeader(const std::vector<std::uint8_t>& bytes,
                        std::uint32_t* router_id, std::uint64_t* epoch_id) {
  std::size_t pos = DigestWireLayout::kMagicOffset;
  std::uint32_t magic = 0;
  if (!TakeU32(bytes, &pos, &magic) || magic != kDigestMagic) return false;
  std::uint32_t router = 0;
  std::uint64_t epoch = 0;
  if (!TakeU32(bytes, &pos, &router) || !TakeU64(bytes, &pos, &epoch)) {
    return false;
  }
  if (router_id != nullptr) *router_id = router;
  if (epoch_id != nullptr) *epoch_id = epoch;
  return true;
}

Status Digest::Decode(const std::vector<std::uint8_t>& bytes, Digest* out) {
  DCS_CHECK(out != nullptr);
  if (bytes.size() < 8) return Status::Corruption("digest too short");
  const std::uint64_t stored_checksum =
      [&] {
        std::uint64_t v = 0;
        std::memcpy(&v, bytes.data() + bytes.size() - 8, 8);
        return v;
      }();
  const std::uint64_t computed =
      Hash64(bytes.data(), bytes.size() - 8, /*seed=*/kDigestMagic);
  if (stored_checksum != computed) {
    ObsCounter("digest.decode.checksum_failures").Increment();
    return Status::Corruption("digest checksum mismatch");
  }
  ObsCounter("digest.decode.calls").Increment();
  ObsCounter("digest.decode.bytes").Add(bytes.size());

  std::size_t pos = 0;
  std::uint32_t magic = 0;
  std::uint32_t kind_raw = 0;
  std::uint64_t num_rows = 0;
  std::uint64_t row_bits = 0;
  Digest digest;
  if (!TakeU32(bytes, &pos, &magic) ||
      !TakeU32(bytes, &pos, &digest.router_id) ||
      !TakeU64(bytes, &pos, &digest.epoch_id) ||
      !TakeU32(bytes, &pos, &kind_raw) ||
      !TakeU32(bytes, &pos, &digest.num_groups) ||
      !TakeU32(bytes, &pos, &digest.arrays_per_group) ||
      !TakeU64(bytes, &pos, &num_rows) || !TakeU64(bytes, &pos, &row_bits) ||
      !TakeU64(bytes, &pos, &digest.packets_covered) ||
      !TakeU64(bytes, &pos, &digest.raw_bytes_covered)) {
    return Status::Corruption("truncated digest header");
  }
  if (magic != kDigestMagic) return Status::Corruption("bad digest magic");
  if (kind_raw != static_cast<std::uint32_t>(DigestKind::kAligned) &&
      kind_raw != static_cast<std::uint32_t>(DigestKind::kUnaligned)) {
    return Status::Corruption("unknown digest kind");
  }
  digest.kind = static_cast<DigestKind>(kind_raw);

  // Dimension sanity bounds (DigestWireLayout): the checksum is not
  // cryptographic, so a resealed lying header must not be able to drive
  // allocation. Every row costs at least its 1-byte tag on the wire, and the
  // claimed row size is capped before any BitVector is constructed.
  if (num_rows > bytes.size()) {
    return Status::Corruption("row count exceeds message size");
  }
  if (row_bits > DigestWireLayout::kMaxRowBits) {
    return Status::Corruption("row size implausibly large");
  }
  const std::uint64_t row_alloc_bytes = ((row_bits + 63) / 64) * 8;
  if (row_alloc_bytes != 0 &&
      num_rows > DigestWireLayout::kMaxTotalRowBytes / row_alloc_bytes) {
    return Status::Corruption("digest dimensions implausibly large");
  }

  digest.rows.reserve(num_rows);
  for (std::uint64_t r = 0; r < num_rows; ++r) {
    BitVector row(row_bits);
    DCS_RETURN_IF_ERROR(DecodeRow(bytes, &pos, &row));
    digest.rows.push_back(std::move(row));
  }
  if (pos + 8 != bytes.size()) {
    return Status::Corruption("digest trailing bytes");
  }
  *out = std::move(digest);
  return Status::Ok();
}

}  // namespace dcs
