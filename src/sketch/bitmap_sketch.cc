#include "sketch/bitmap_sketch.h"

#include "common/hash.h"
#include "common/logging.h"
#include "obs/metrics.h"

namespace dcs {

BitmapSketch::BitmapSketch(const BitmapSketchOptions& options)
    : options_(options), bits_(options.num_bits) {
  DCS_CHECK(options.num_bits > 0);
  DCS_CHECK(options.prefix_len > 0);
}

bool BitmapSketch::Update(const Packet& packet) {
  if (packet.payload.size() < options_.min_payload_bytes) {
    ++packets_skipped_;
    return false;
  }
  const std::string_view fragment =
      packet.PayloadPrefix(options_.prefix_len);
  const std::uint64_t index =
      Hash64(fragment, options_.hash_seed) % bits_.size();
  if (!bits_.Test(index)) {
    bits_.Set(index);
    ++ones_;
  }
  ++packets_recorded_;
  return true;
}

std::size_t BitmapSketch::UpdateBatch(std::span<const Packet> packets) {
  // Two-phase chunks: hash a block of prefixes into an index buffer (the
  // hashes are independent, so the CPU pipelines them), then walk the
  // buffer doing the Test/Set bookkeeping. Bit-for-bit the same bitmap and
  // counters as the per-packet loop in the same order.
  constexpr std::size_t kChunk = 64;
  std::uint64_t indices[kChunk];
  const std::size_t recorded_before = packets_recorded_;
  std::size_t pos = 0;
  while (pos < packets.size()) {
    std::size_t n = 0;
    while (pos < packets.size() && n < kChunk) {
      const Packet& packet = packets[pos++];
      if (packet.payload.size() < options_.min_payload_bytes) {
        ++packets_skipped_;
        continue;
      }
      indices[n++] = Hash64(packet.PayloadPrefix(options_.prefix_len),
                            options_.hash_seed) %
                     bits_.size();
    }
    for (std::size_t k = 0; k < n; ++k) {
      if (!bits_.Test(indices[k])) {
        bits_.Set(indices[k]);
        ++ones_;
      }
    }
    packets_recorded_ += n;
  }
  return packets_recorded_ - recorded_before;
}

void BitmapSketch::Reset() {
  bits_.Reset();
  packets_recorded_ = 0;
  packets_skipped_ = 0;
  ones_ = 0;
}

void BitmapSketch::PublishEpochMetrics() const {
  if (!ObsEnabled()) return;
  static Counter& hashed = ObsCounter("sketch.aligned.packets_hashed");
  static Counter& skipped = ObsCounter("sketch.aligned.packets_skipped");
  static Counter& bits_set = ObsCounter("sketch.aligned.bits_set");
  static Counter& epochs = ObsCounter("sketch.aligned.epochs");
  static Gauge& fill = ObsGauge("sketch.aligned.fill_ratio");
  hashed.Add(packets_recorded_);
  skipped.Add(packets_skipped_);
  bits_set.Add(ones_);
  epochs.Increment();
  fill.Set(static_cast<double>(ones_) / static_cast<double>(bits_.size()));
}

}  // namespace dcs
