#include "sketch/bitmap_sketch.h"

#include "common/hash.h"
#include "common/logging.h"
#include "obs/metrics.h"

namespace dcs {

BitmapSketch::BitmapSketch(const BitmapSketchOptions& options)
    : options_(options), bits_(options.num_bits) {
  DCS_CHECK(options.num_bits > 0);
  DCS_CHECK(options.prefix_len > 0);
}

bool BitmapSketch::Update(const Packet& packet) {
  if (packet.payload.size() < options_.min_payload_bytes) {
    ++packets_skipped_;
    return false;
  }
  const std::string_view fragment =
      packet.PayloadPrefix(options_.prefix_len);
  const std::uint64_t index =
      Hash64(fragment, options_.hash_seed) % bits_.size();
  if (!bits_.Test(index)) {
    bits_.Set(index);
    ++ones_;
  }
  ++packets_recorded_;
  return true;
}

void BitmapSketch::Reset() {
  bits_.Reset();
  packets_recorded_ = 0;
  packets_skipped_ = 0;
  ones_ = 0;
}

void BitmapSketch::PublishEpochMetrics() const {
  if (!ObsEnabled()) return;
  static Counter& hashed = ObsCounter("sketch.aligned.packets_hashed");
  static Counter& skipped = ObsCounter("sketch.aligned.packets_skipped");
  static Counter& bits_set = ObsCounter("sketch.aligned.bits_set");
  static Counter& epochs = ObsCounter("sketch.aligned.epochs");
  static Gauge& fill = ObsGauge("sketch.aligned.fill_ratio");
  hashed.Add(packets_recorded_);
  skipped.Add(packets_skipped_);
  bits_set.Add(ones_);
  epochs.Increment();
  fill.Set(static_cast<double>(ones_) / static_cast<double>(bits_.size()));
}

}  // namespace dcs
