#include "sketch/offset_sampling.h"

#include "common/hash.h"
#include "common/logging.h"

namespace dcs {

OffsetSamplingArrays::OffsetSamplingArrays(
    const OffsetSamplingOptions& options, Rng* rng)
    : options_(options) {
  DCS_CHECK(rng != nullptr);
  DCS_CHECK(options.num_arrays > 0);
  DCS_CHECK(options.array_bits > 0);
  DCS_CHECK(options.offset_period > 0);
  // Offsets leave room for a whole fragment before the MSS boundary;
  // otherwise fragments near the payload end would be clamped short and two
  // offset-matched routers would hash different byte counts, destroying the
  // match (Section IV-A).
  DCS_CHECK(options.fragment_len < options.offset_period);
  DCS_CHECK(options.fragment_len < options.large_offset_period);
  const std::uint64_t small_range =
      options.offset_period - options.fragment_len + 1;
  const std::uint64_t large_range =
      options.large_offset_period - options.fragment_len + 1;
  small_offsets_.reserve(options.num_arrays);
  large_offsets_.reserve(2 * options.num_arrays);
  for (std::size_t i = 0; i < options.num_arrays; ++i) {
    small_offsets_.push_back(
        static_cast<std::uint32_t>(rng->UniformInt(small_range)));
    large_offsets_.push_back(
        static_cast<std::uint32_t>(rng->UniformInt(large_range)));
    large_offsets_.push_back(
        static_cast<std::uint32_t>(rng->UniformInt(large_range)));
  }
  arrays_.assign(options.num_arrays, BitVector(options.array_bits));
}

OffsetSamplingArrays::OffsetSamplingArrays(
    const OffsetSamplingOptions& options,
    std::vector<std::uint32_t> small_offsets,
    std::vector<std::uint32_t> large_offsets)
    : options_(options),
      small_offsets_(std::move(small_offsets)),
      large_offsets_(std::move(large_offsets)),
      arrays_(options.num_arrays, BitVector(options.array_bits)) {}

OffsetSamplingArrays OffsetSamplingArrays::CloneLayout() const {
  return OffsetSamplingArrays(options_, small_offsets_, large_offsets_);
}

bool OffsetSamplingArrays::Update(const Packet& packet) {
  if (packet.payload.size() < options_.min_payload_bytes) return false;
  const bool large = packet.payload.size() >= options_.large_payload_bytes;
  for (std::size_t a = 0; a < arrays_.size(); ++a) {
    const std::size_t offsets_per_array = large ? 2 : 1;
    for (std::size_t k = 0; k < offsets_per_array; ++k) {
      const std::uint32_t offset =
          large ? large_offsets_[2 * a + k] : small_offsets_[a];
      const std::string_view fragment =
          packet.PayloadRange(offset, options_.fragment_len);
      if (fragment.empty()) continue;
      // One shared hash across all arrays and routers: array i of one router
      // must collide with array j of another when their offsets align
      // (Section IV-A), which a per-array seed would destroy.
      const std::uint64_t index =
          Hash64(fragment, options_.hash_seed) % options_.array_bits;
      arrays_[a].Set(index);
    }
  }
  ++packets_recorded_;
  return true;
}

void OffsetSamplingArrays::Reset() {
  for (BitVector& array : arrays_) array.Reset();
  packets_recorded_ = 0;
}

}  // namespace dcs
