#ifndef DCS_SKETCH_COLLECTOR_H_
#define DCS_SKETCH_COLLECTOR_H_

#include <cstdint>

#include "common/rng.h"
#include "net/trace.h"
#include "sketch/bitmap_sketch.h"
#include "sketch/digest.h"
#include "sketch/flow_split_sketch.h"

namespace dcs {

/// \brief Per-router data collection module for the aligned case.
///
/// Wraps a BitmapSketch with epoch/digest bookkeeping: feed it an epoch of
/// packets, take the digest, repeat. This is the "data collection module" box
/// of the paper's Fig 2.
class AlignedCollector {
 public:
  AlignedCollector(std::uint32_t router_id,
                   const BitmapSketchOptions& options);

  /// Runs the sketch over one epoch of packets and returns the digest.
  /// Resets the sketch afterwards and advances the epoch counter.
  Digest ProcessEpoch(const PacketTrace::EpochView& epoch);

  /// Adaptive epoching (Section III-B: "once about half of the n bits
  /// become 1's, the measurement epoch ends and the bitmap is sent"): runs
  /// over the whole trace, cutting a digest whenever the bitmap reaches
  /// half full, plus one final digest for the remainder (if any packets
  /// were recorded).
  std::vector<Digest> ProcessTraceAdaptive(const PacketTrace& trace);

  std::uint32_t router_id() const { return router_id_; }
  std::uint64_t current_epoch() const { return epoch_; }

 private:
  Digest TakeDigest(std::uint64_t raw_bytes);

  std::uint32_t router_id_;
  std::uint64_t epoch_ = 0;
  BitmapSketch sketch_;
};

/// \brief Per-router data collection module for the unaligned case
/// (flow splitting over offset sampling).
class UnalignedCollector {
 public:
  /// `rng` supplies the router's per-epoch offset randomness.
  UnalignedCollector(std::uint32_t router_id, const FlowSplitOptions& options,
                     Rng* rng);

  /// Runs the sketch over one epoch and returns the digest (one row per
  /// group array). Resets the sketch afterwards.
  Digest ProcessEpoch(const PacketTrace::EpochView& epoch);

  std::uint32_t router_id() const { return router_id_; }
  std::uint64_t current_epoch() const { return epoch_; }

  /// The underlying sketch (e.g. to inspect offsets in tests).
  const FlowSplitSketch& sketch() const { return sketch_; }

 private:
  std::uint32_t router_id_;
  std::uint64_t epoch_ = 0;
  FlowSplitSketch sketch_;
};

}  // namespace dcs

#endif  // DCS_SKETCH_COLLECTOR_H_
