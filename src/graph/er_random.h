#ifndef DCS_GRAPH_ER_RANDOM_H_
#define DCS_GRAPH_ER_RANDOM_H_

#include <cstdint>
#include <vector>

#include "common/rng.h"
#include "graph/graph.h"

namespace dcs {

/// Samples G(n, p): each of the n(n-1)/2 vertex pairs carries an edge
/// independently with probability p. Uses geometric skipping, so cost is
/// O(n + edges) rather than O(n^2) — essential at the paper's n = 102,400.
/// The returned graph is finalized.
Graph SampleErGraph(std::size_t n, double p, Rng* rng);

/// Adds, in place, edges among `vertices` with independent probability p
/// (geometric skipping over the pair indices of the subset). Caller must
/// re-Finalize().
void AddPlantedClique(Graph* graph,
                      const std::vector<Graph::VertexId>& vertices, double p,
                      Rng* rng);

/// \brief The paper's unaligned-case Monte-Carlo graph model.
///
/// Background pairs connect with probability p_background; pairs within the
/// planted pattern (the n1 groups that saw the common content) connect with
/// probability p_pattern (Sections IV-B, V-B). Pattern vertices are chosen
/// uniformly; they are returned so callers can score detection accuracy.
struct PlantedGraph {
  Graph graph;
  std::vector<Graph::VertexId> pattern_vertices;
};
PlantedGraph SamplePlantedGraph(std::size_t n, double p_background,
                                std::size_t n1, double p_pattern, Rng* rng);

}  // namespace dcs

#endif  // DCS_GRAPH_ER_RANDOM_H_
