#include "graph/er_random.h"

#include <algorithm>
#include <cmath>

#include "common/distributions.h"
#include "common/logging.h"

namespace dcs {
namespace {

// Calls visit(pair_index) for each sampled pair in [0, num_pairs) where each
// pair is included independently with probability p, via geometric skipping.
template <typename Visitor>
void GeometricSkip(std::uint64_t num_pairs, double p, Rng* rng,
                   Visitor visit) {
  if (p <= 0.0 || num_pairs == 0) return;
  if (p >= 1.0) {
    for (std::uint64_t i = 0; i < num_pairs; ++i) visit(i);
    return;
  }
  const double log_q = std::log1p(-p);
  double index = -1.0;
  while (true) {
    const double u = 1.0 - rng->UniformDouble();  // u in (0, 1].
    const double skip = std::floor(std::log(u) / log_q);
    index += skip + 1.0;
    if (index >= static_cast<double>(num_pairs)) return;
    visit(static_cast<std::uint64_t>(index));
  }
}

// Maps a linear upper-triangle index to the (row, col) pair, row < col, for
// an n-vertex graph. Row-major: pairs of row r occupy a contiguous block of
// (n - 1 - r) indices.
std::pair<std::uint32_t, std::uint32_t> PairFromIndex(std::uint64_t index,
                                                      std::uint64_t n) {
  // Solve the row via the quadratic formula, then fix up any floating-point
  // off-by-one exactly.
  const double dn = static_cast<double>(n);
  const double di = static_cast<double>(index);
  double guess =
      std::floor(dn - 0.5 - std::sqrt((dn - 0.5) * (dn - 0.5) - 2.0 * di));
  auto row = static_cast<std::uint64_t>(std::max(0.0, guess));
  auto row_start = [n](std::uint64_t r) {
    return r * (2 * n - r - 1) / 2;
  };
  while (row > 0 && row_start(row) > index) --row;
  while (row_start(row + 1) <= index) ++row;
  const std::uint64_t col = row + 1 + (index - row_start(row));
  return {static_cast<std::uint32_t>(row), static_cast<std::uint32_t>(col)};
}

}  // namespace

Graph SampleErGraph(std::size_t n, double p, Rng* rng) {
  Graph graph(n);
  const std::uint64_t num_pairs =
      static_cast<std::uint64_t>(n) * (n - 1) / 2;
  GeometricSkip(num_pairs, p, rng, [&](std::uint64_t index) {
    const auto [u, v] = PairFromIndex(index, n);
    graph.AddEdge(u, v);
  });
  graph.Finalize();
  return graph;
}

void AddPlantedClique(Graph* graph,
                      const std::vector<Graph::VertexId>& vertices, double p,
                      Rng* rng) {
  DCS_CHECK(graph != nullptr);
  const std::uint64_t k = vertices.size();
  if (k < 2) return;
  const std::uint64_t num_pairs = k * (k - 1) / 2;
  GeometricSkip(num_pairs, p, rng, [&](std::uint64_t index) {
    const auto [i, j] = PairFromIndex(index, k);
    graph->AddEdge(vertices[i], vertices[j]);
  });
}

PlantedGraph SamplePlantedGraph(std::size_t n, double p_background,
                                std::size_t n1, double p_pattern, Rng* rng) {
  DCS_CHECK(n1 <= n);
  PlantedGraph result{SampleErGraph(n, p_background, rng), {}};
  const std::vector<std::uint64_t> chosen =
      SampleWithoutReplacement(rng, n, n1);
  result.pattern_vertices.reserve(n1);
  for (std::uint64_t v : chosen) {
    result.pattern_vertices.push_back(static_cast<Graph::VertexId>(v));
  }
  std::sort(result.pattern_vertices.begin(), result.pattern_vertices.end());
  AddPlantedClique(&result.graph, result.pattern_vertices, p_pattern, rng);
  result.graph.Finalize();
  return result;
}

}  // namespace dcs
