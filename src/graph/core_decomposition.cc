#include "graph/core_decomposition.h"

#include <algorithm>
#include <cstdint>
#include <queue>
#include <tuple>

#include "common/logging.h"

namespace dcs {
namespace {

// Bucket-queue min-degree peeling (Batagelj–Zaveršnik): vertices live in an
// array sorted by current degree with per-degree bucket starts; deleting a
// vertex decrements each live neighbor's degree by swapping it one bucket
// down. O(V + E) total. Within a degree bucket, the vertex that has sat
// there longest is taken first; for a fixed input the result is
// deterministic.
PeelResult PeelMinDegreeBucket(const Graph& graph, std::size_t beta) {
  const std::size_t n = graph.num_vertices();
  PeelResult result;
  if (n == 0) return result;

  std::vector<std::size_t> degree(n);
  std::size_t max_degree = 0;
  for (std::size_t v = 0; v < n; ++v) {
    degree[v] = graph.degree(static_cast<Graph::VertexId>(v));
    max_degree = std::max(max_degree, degree[v]);
  }
  // Counting sort of vertices by degree.
  std::vector<std::size_t> bucket_start(max_degree + 2, 0);
  for (std::size_t v = 0; v < n; ++v) ++bucket_start[degree[v] + 1];
  for (std::size_t d = 1; d < bucket_start.size(); ++d) {
    bucket_start[d] += bucket_start[d - 1];
  }
  std::vector<Graph::VertexId> order(n);   // Vertices sorted by degree.
  std::vector<std::size_t> position(n);    // Index of v in `order`.
  {
    std::vector<std::size_t> cursor(bucket_start.begin(),
                                    bucket_start.end() - 1);
    for (std::size_t v = 0; v < n; ++v) {
      position[v] = cursor[degree[v]]++;
      order[position[v]] = static_cast<Graph::VertexId>(v);
    }
  }

  std::vector<char> removed(n, 0);
  result.removal_order.reserve(n > beta ? n - beta : 0);
  std::size_t remaining = n;
  for (std::size_t i = 0; i < n && remaining > beta; ++i) {
    const Graph::VertexId v = order[i];
    removed[v] = 1;
    --remaining;
    result.removal_order.push_back(v);
    const std::size_t dv = degree[v];
    for (Graph::VertexId w : graph.neighbors(v)) {
      // Classic BZ guard: only neighbors in strictly higher buckets move
      // down (their bucket fronts provably lie past position i, keeping
      // the processed prefix intact). A live neighbor at degree <= dv is
      // about to be processed at this level anyway.
      if (removed[w] || degree[w] <= dv) continue;
      const std::size_t dw = degree[w];
      const std::size_t front = bucket_start[dw];
      const Graph::VertexId other = order[front];
      if (other != w) {
        std::swap(order[position[w]], order[front]);
        std::swap(position[w], position[other]);
      }
      ++bucket_start[dw];
      --degree[w];
    }
  }
  for (std::size_t v = 0; v < n; ++v) {
    if (!removed[v]) result.core.push_back(static_cast<Graph::VertexId>(v));
  }
  return result;
}

// Lazy-deletion heap peeling for the max-degree ablation baseline.
// Entries are (key, vertex); stale entries (key != current degree) are
// skipped on pop. Total pushes are O(V + E), so cost is O((V+E) log V).
PeelResult PeelMaxDegreeHeap(const Graph& graph, std::size_t beta) {
  constexpr bool min_side = false;
  const std::size_t n = graph.num_vertices();
  std::vector<std::int64_t> degree(n);
  std::vector<char> removed(n, 0);

  using Entry = std::pair<std::int64_t, Graph::VertexId>;
  std::priority_queue<Entry, std::vector<Entry>, std::greater<Entry>> heap;
  for (std::size_t v = 0; v < n; ++v) {
    degree[v] = static_cast<std::int64_t>(graph.degree(
        static_cast<Graph::VertexId>(v)));
    const std::int64_t key = min_side ? degree[v] : -degree[v];
    heap.emplace(key, static_cast<Graph::VertexId>(v));
  }

  PeelResult result;
  result.removal_order.reserve(n > beta ? n - beta : 0);
  std::size_t remaining = n;
  while (remaining > beta && !heap.empty()) {
    const auto [key, v] = heap.top();
    heap.pop();
    const std::int64_t current = min_side ? degree[v] : -degree[v];
    if (removed[v] || key != current) continue;  // Stale entry.
    removed[v] = 1;
    --remaining;
    result.removal_order.push_back(v);
    for (Graph::VertexId w : graph.neighbors(v)) {
      if (removed[w]) continue;
      --degree[w];
      heap.emplace(min_side ? degree[w] : -degree[w], w);
    }
  }
  for (std::size_t v = 0; v < n; ++v) {
    if (!removed[v]) result.core.push_back(static_cast<Graph::VertexId>(v));
  }
  return result;
}

PeelResult PeelRandom(const Graph& graph, std::size_t beta, Rng* rng) {
  DCS_CHECK(rng != nullptr);
  const std::size_t n = graph.num_vertices();
  std::vector<Graph::VertexId> remaining(n);
  for (std::size_t v = 0; v < n; ++v) {
    remaining[v] = static_cast<Graph::VertexId>(v);
  }
  PeelResult result;
  while (remaining.size() > beta) {
    const std::size_t pick = rng->UniformInt(remaining.size());
    result.removal_order.push_back(remaining[pick]);
    remaining[pick] = remaining.back();
    remaining.pop_back();
  }
  std::sort(remaining.begin(), remaining.end());
  result.core = std::move(remaining);
  return result;
}

}  // namespace

PeelResult PeelToSize(const Graph& graph, std::size_t beta,
                      PeelStrategy strategy, Rng* rng) {
  DCS_CHECK(graph.finalized());
  switch (strategy) {
    case PeelStrategy::kMinDegree:
      return PeelMinDegreeBucket(graph, beta);
    case PeelStrategy::kMaxDegree:
      return PeelMaxDegreeHeap(graph, beta);
    case PeelStrategy::kRandom:
      return PeelRandom(graph, beta, rng);
  }
  DCS_CHECK(false) << "unknown strategy";
  return {};
}

}  // namespace dcs
